// Package opmap is a Go implementation of the Opportunity Map system
// from "Finding Actionable Knowledge via Automated Comparison"
// (Zhang, Liu, Benkler & Zhou, ICDE 2009): a diagnostic data-mining
// toolkit built on class association rules, rule cubes with OLAP
// operations, a general-impressions miner, and — the paper's
// contribution — an automated comparator that ranks attributes by how
// well they explain the difference between two sub-populations with
// respect to a target class.
//
// The typical pipeline is:
//
//	s, err := opmap.LoadCSVFile("calls.csv", opmap.LoadOptions{Class: "Disposition"})
//	// handle err
//	if err := s.Discretize(opmap.DiscretizeOptions{}); err != nil { ... }
//	if err := s.BuildCubes(); err != nil { ... }
//	cmp, err := s.Compare("Phone-Model", "ph1", "ph2", "dropped-in-progress", opmap.CompareOptions{})
//	// cmp.Top(5) now ranks the attributes that best distinguish the two
//	// phones on the drop rate; cmp.PropertyAttributes() holds the
//	// attributes set aside per Section IV.C of the paper.
//
// Fan-out comparisons — Sweep over every significant value pair, or
// CompareOneVsRestAll over every value of the attribute — declare
// their complete cube working set to the engine up front, which
// materializes all missing cubes in one shared dataset scan instead
// of one scan per pair.
//
// DrillDown searches past the one-attribute ranking for condition
// conjunctions: a beam search over rule cubes of three and more
// dimensions that surfaces sub-populations like {Terrain=hilly,
// Signal-Band=weak} whose class confidence exceeds what the pairwise
// comparison predicts, ranked by the paper's contribution measure (or
// lift/conviction via DrillOptions.Measure).
//
// For data too large to load once, BuildSharded cubes row-shards of
// one logical dataset concurrently and merges the partial sessions —
// exactly, since contingency counts are additive — into a session
// equal to a single pass over the concatenated shards. MergeFrom
// folds sessions built elsewhere, and MergeSnapshotFiles /
// LoadShardSnapshots do the same assembly from shard snapshot files
// without the source rows.
//
// All functionality is deterministic given fixed seeds and uses only the
// Go standard library.
package opmap
