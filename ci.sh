#!/usr/bin/env bash
# ci.sh — the repo's full correctness gate. Run locally before pushing;
# .github/workflows/ci.yml runs exactly this script, so green here
# means green in CI. Zero external dependencies: everything below is
# the Go toolchain operating on this module.
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "== opmaplint (internal/lint analyzers) =="
go run ./cmd/opmaplint ./...

echo "== opmapd smoke (serve, probe, drain) =="
smokedir=$(mktemp -d)
trap 'rm -rf "$smokedir"' EXIT
go build -o "$smokedir/opmapd" ./cmd/opmapd
"$smokedir/opmapd" -demo -records 4000 -addr 127.0.0.1:0 \
    -ready-file "$smokedir/addr" >"$smokedir/opmapd.log" 2>&1 &
opmapd_pid=$!
for _ in $(seq 1 100); do
    [ -s "$smokedir/addr" ] && break
    sleep 0.1
done
if [ ! -s "$smokedir/addr" ]; then
    echo "opmapd never became ready:" >&2
    cat "$smokedir/opmapd.log" >&2
    exit 1
fi
addr=$(cat "$smokedir/addr")
"$smokedir/opmapd" -probe "$addr/readyz" >/dev/null
"$smokedir/opmapd" -probe "$addr/api/sweep?attr=Phone-Model&class=dropped-in-progress&max_pairs=3" \
    | grep -q '"pairs_compared"'
kill -TERM "$opmapd_pid"
if ! wait "$opmapd_pid"; then
    echo "opmapd did not drain cleanly on SIGTERM:" >&2
    cat "$smokedir/opmapd.log" >&2
    exit 1
fi
grep -q "drained cleanly" "$smokedir/opmapd.log"

echo "== fuzz smoke (10s per target) =="
go test -run '^$' -fuzz '^FuzzReadStore$' -fuzztime 10s ./internal/rulecube
go test -run '^$' -fuzz '^FuzzComparator$' -fuzztime 10s ./internal/compare

echo "CI PASSED"
