#!/usr/bin/env bash
# ci.sh — the repo's full correctness gate. Run locally before pushing;
# .github/workflows/ci.yml runs exactly this script, so green here
# means green in CI. Zero external dependencies: everything below is
# the Go toolchain operating on this module.
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "== opmaplint (internal/lint analyzers) =="
go run ./cmd/opmaplint ./...

echo "== fuzz smoke (10s per target) =="
go test -run '^$' -fuzz '^FuzzReadStore$' -fuzztime 10s ./internal/rulecube
go test -run '^$' -fuzz '^FuzzComparator$' -fuzztime 10s ./internal/compare

echo "CI PASSED"
