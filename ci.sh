#!/usr/bin/env bash
# ci.sh — the repo's full correctness gate. Run locally before pushing;
# .github/workflows/ci.yml runs exactly this script, so green here
# means green in CI. Zero external dependencies: everything below is
# the Go toolchain operating on this module.
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "== opmaplint (parallel incremental driver + baseline) =="
lintdir=$(mktemp -d)
go build -o "$lintdir/opmaplint" ./cmd/opmaplint
# Cold run against a fresh cache: machine-readable findings, gated on
# the committed lint_baseline.json (any finding not in the baseline is
# an exit 1 right here). The stderr summary prints the cache hit rate.
"$lintdir/opmaplint" -format json -cache-dir "$lintdir/cache" ./... \
    >"$lintdir/lint.json" 2>"$lintdir/lint.cold.log"
cat "$lintdir/lint.cold.log"
if ! grep -qF '"new_findings": 0' "$lintdir/lint.json"; then
    echo "opmaplint found new findings not in lint_baseline.json:" >&2
    cat "$lintdir/lint.json" >&2
    exit 1
fi
# Warm run: same tree, same cache — every package must be served from
# the content-hash cache. Emits SARIF for the CI artifact upload.
"$lintdir/opmaplint" -format sarif -cache-dir "$lintdir/cache" ./... \
    >lint.sarif 2>"$lintdir/lint.warm.log"
cat "$lintdir/lint.warm.log"
if ! grep -qE 'cache hits [1-9]' "$lintdir/lint.warm.log"; then
    echo "warm opmaplint run skipped no packages; the result cache is broken" >&2
    exit 1
fi
rm -rf "$lintdir"

echo "== opmapd smoke (serve, probe, drain) =="
smokedir=$(mktemp -d)
trap 'rm -rf "$smokedir"' EXIT
go build -o "$smokedir/opmapd" ./cmd/opmapd
"$smokedir/opmapd" -demo -records 4000 -addr 127.0.0.1:0 \
    -ready-file "$smokedir/addr" >"$smokedir/opmapd.log" 2>&1 &
opmapd_pid=$!
for _ in $(seq 1 100); do
    [ -s "$smokedir/addr" ] && break
    sleep 0.1
done
if [ ! -s "$smokedir/addr" ]; then
    echo "opmapd never became ready:" >&2
    cat "$smokedir/opmapd.log" >&2
    exit 1
fi
addr=$(cat "$smokedir/addr")
"$smokedir/opmapd" -probe "$addr/readyz" >/dev/null
"$smokedir/opmapd" -probe "$addr/api/sweep?attr=Phone-Model&class=dropped-in-progress&max_pairs=3" \
    | grep -q '"pairs_compared"'
"$smokedir/opmapd" -probe "$addr/api/compare?attr=Phone-Model&v1=ph1&v2=ph2&class=dropped-in-progress" \
    | grep -q '"ranked"'
# Malformed query parameters are a 400, not a silent default.
if "$smokedir/opmapd" -probe "$addr/api/sweep?attr=Phone-Model&class=dropped-in-progress&max_pairs=abc" >/dev/null 2>&1; then
    echo "malformed max_pairs was not rejected" >&2
    exit 1
fi
# The /metrics scrape must show the traffic just driven: request
# counters advanced for both API paths, the outcome counters present,
# and the pipeline stage histograms populated by the sweep + compare.
"$smokedir/opmapd" -probe "$addr/metrics" >"$smokedir/metrics"
for want in \
    'opmapd_requests_total{path="/api/sweep",status="200"} 1' \
    'opmapd_requests_total{path="/api/compare",status="200"} 1' \
    'opmapd_sheds_total 0' \
    'opmapd_timeouts_total 0' \
    'opmapd_panics_total 0' \
    'opmapd_partials_total 0' \
    'opmap_stage_duration_seconds_count{stage="sweep"} 1' \
    'opmap_stage_duration_seconds_count{stage="compare"}' \
    'opmap_stage_duration_seconds_count{stage="build_cubes"} 1' \
    'opmap_cubes_built_total'; do
    if ! grep -qF "$want" "$smokedir/metrics"; then
        echo "metrics scrape missing: $want" >&2
        cat "$smokedir/metrics" >&2
        exit 1
    fi
done
kill -TERM "$opmapd_pid"
if ! wait "$opmapd_pid"; then
    echo "opmapd did not drain cleanly on SIGTERM:" >&2
    cat "$smokedir/opmapd.log" >&2
    exit 1
fi
grep -q "drained cleanly" "$smokedir/opmapd.log"

echo "== opmapd smoke (two lazy datasets) =="
go build -o "$smokedir/genlog" ./cmd/genlog
"$smokedir/genlog" -records 3000 -seed 11 -noise 6 -o "$smokedir/east.csv" 2>/dev/null
"$smokedir/genlog" -records 2000 -seed 12 -noise 6 -o "$smokedir/west.csv" 2>/dev/null
"$smokedir/opmapd" -lazy -data "east=$smokedir/east.csv" -data "west=$smokedir/west.csv" \
    -addr 127.0.0.1:0 -ready-file "$smokedir/addr2" >"$smokedir/opmapd2.log" 2>&1 &
opmapd2_pid=$!
for _ in $(seq 1 100); do
    [ -s "$smokedir/addr2" ] && break
    sleep 0.1
done
if [ ! -s "$smokedir/addr2" ]; then
    echo "lazy opmapd never became ready:" >&2
    cat "$smokedir/opmapd2.log" >&2
    exit 1
fi
addr2=$(cat "$smokedir/addr2")
# A lazy startup materializes nothing: before any API traffic the cube
# cache counters exist (pre-registered) and sit at zero.
"$smokedir/opmapd" -probe "$addr2/metrics" >"$smokedir/metrics2"
for want in \
    'opmap_cube_cache_misses_total 0' \
    'opmap_cube_cache_hits_total 0' \
    'opmap_result_cache_misses_total 0'; do
    if ! grep -qF "$want" "$smokedir/metrics2"; then
        echo "lazy startup metrics missing: $want" >&2
        cat "$smokedir/metrics2" >&2
        exit 1
    fi
done
# Both datasets answer; the default (first -data) needs no parameter.
"$smokedir/opmapd" -probe "$addr2/api/datasets" | grep -q '"west"'
"$smokedir/opmapd" -probe "$addr2/api/overview" | grep -q '"rows": 3000'
"$smokedir/opmapd" -probe "$addr2/api/overview?dataset=east" | grep -q '"rows": 3000'
"$smokedir/opmapd" -probe "$addr2/api/overview?dataset=west" | grep -q '"rows": 2000'
if "$smokedir/opmapd" -probe "$addr2/api/overview?dataset=nowhere" >/dev/null 2>&1; then
    echo "unknown dataset name was not rejected" >&2
    exit 1
fi
# The same compare twice: the first materializes pair cubes on demand,
# the second is served from the versioned result cache.
compare2="$addr2/api/compare?attr=Phone-Model&v1=ph1&v2=ph2&class=dropped-in-progress&dataset=west"
"$smokedir/opmapd" -probe "$compare2" | grep -q '"ranked"'
"$smokedir/opmapd" -probe "$compare2" | grep -q '"ranked"'
"$smokedir/opmapd" -probe "$addr2/metrics" >"$smokedir/metrics2"
if grep -qF 'opmap_cube_cache_misses_total 0' "$smokedir/metrics2"; then
    echo "compare on a lazy dataset built no cubes" >&2
    cat "$smokedir/metrics2" >&2
    exit 1
fi
if grep -qF 'opmap_result_cache_hits_total 0' "$smokedir/metrics2"; then
    echo "repeated compare did not hit the result cache" >&2
    cat "$smokedir/metrics2" >&2
    exit 1
fi
# Drill-down over the lazy dataset: the same POST twice. The first run
# materializes its k-D cubes on demand and searches; the second must be
# served from the versioned result cache — two drilldown stage timings
# but exactly one planner run.
drillbody='{"attr":"Phone-Model","v1":"ph1","v2":"ph2","class":"dropped-in-progress"}'
"$smokedir/opmapd" -probe "$addr2/api/drilldown?dataset=west" -probe-body "$drillbody" \
    | grep -q '"findings"'
"$smokedir/opmapd" -probe "$addr2/api/drilldown?dataset=west" -probe-body "$drillbody" \
    | grep -q '"findings"'
"$smokedir/opmapd" -probe "$addr2/metrics" >"$smokedir/metrics2"
for want in \
    'opmap_drilldown_runs_total 1' \
    'opmap_stage_duration_seconds_count{stage="drilldown"} 2'; do
    if ! grep -qF "$want" "$smokedir/metrics2"; then
        echo "repeated drilldown was not memoized: missing $want" >&2
        cat "$smokedir/metrics2" >&2
        exit 1
    fi
done
# A duplicate attrs entry is a 400 naming the duplicate, not a ranking
# that scores the attribute twice.
if "$smokedir/opmapd" -probe "$addr2/api/drilldown?dataset=west" \
    -probe-body '{"attr":"Phone-Model","v1":"ph1","v2":"ph2","class":"dropped-in-progress","attrs":["Tower-Distance","Tower-Distance"]}' \
    >/dev/null 2>&1; then
    echo "duplicate drilldown attrs entry was not rejected" >&2
    exit 1
fi
kill -TERM "$opmapd2_pid"
if ! wait "$opmapd2_pid"; then
    echo "lazy opmapd did not drain cleanly on SIGTERM:" >&2
    cat "$smokedir/opmapd2.log" >&2
    exit 1
fi

echo "== opmapd smoke (snapshot warm start survives kill -9) =="
snapdir="$smokedir/snaps"
"$smokedir/opmapd" -demo -records 4000 -addr 127.0.0.1:0 \
    -ready-file "$smokedir/addr3" -snapshot-dir "$snapdir" >"$smokedir/opmapd3.log" 2>&1 &
opmapd3_pid=$!
for _ in $(seq 1 100); do
    [ -s "$smokedir/addr3" ] && break
    sleep 0.1
done
if [ ! -s "$smokedir/addr3" ]; then
    echo "snapshot opmapd never became ready:" >&2
    cat "$smokedir/opmapd3.log" >&2
    exit 1
fi
addr3=$(cat "$smokedir/addr3")
"$smokedir/opmapd" -probe "$addr3/api/overview" >"$smokedir/overview.cold"
"$smokedir/opmapd" -probe "$addr3/api/compare?attr=Phone-Model&v1=ph1&v2=ph2&class=dropped-in-progress" \
    >"$smokedir/compare.cold"
# The cold run checkpoints its build immediately; a hard kill (no
# drain, no atexit) must leave that snapshot usable.
[ -s "$snapdir/default.omapsnap" ] || { echo "cold run wrote no snapshot" >&2; exit 1; }
kill -9 "$opmapd3_pid"
wait "$opmapd3_pid" 2>/dev/null || true
"$smokedir/opmapd" -demo -records 4000 -addr 127.0.0.1:0 \
    -ready-file "$smokedir/addr4" -snapshot-dir "$snapdir" >"$smokedir/opmapd4.log" 2>&1 &
opmapd4_pid=$!
for _ in $(seq 1 100); do
    [ -s "$smokedir/addr4" ] && break
    sleep 0.1
done
if [ ! -s "$smokedir/addr4" ]; then
    echo "warm opmapd never became ready:" >&2
    cat "$smokedir/opmapd4.log" >&2
    exit 1
fi
addr4=$(cat "$smokedir/addr4")
grep -q "warm start" "$smokedir/opmapd4.log"
# Warm responses are byte-identical to the cold run's.
"$smokedir/opmapd" -probe "$addr4/api/overview" >"$smokedir/overview.warm"
"$smokedir/opmapd" -probe "$addr4/api/compare?attr=Phone-Model&v1=ph1&v2=ph2&class=dropped-in-progress" \
    >"$smokedir/compare.warm"
cmp "$smokedir/overview.cold" "$smokedir/overview.warm"
cmp "$smokedir/compare.cold" "$smokedir/compare.warm"
"$smokedir/opmapd" -probe "$addr4/api/datasets" | grep -q '"snapshot": "loaded"'
# The warm start built nothing: zero cubes counted, zero build-stage
# timings, one snapshot load.
"$smokedir/opmapd" -probe "$addr4/metrics" >"$smokedir/metrics4"
for want in \
    'opmap_cubes_built_total 0' \
    'opmap_stage_duration_seconds_count{stage="build_cubes"} 0' \
    'opmapd_snapshot_loads_total 1' \
    'opmapd_snapshot_fallbacks_total{reason="stale"} 0'; do
    if ! grep -qF "$want" "$smokedir/metrics4"; then
        echo "warm-start metrics missing: $want" >&2
        cat "$smokedir/metrics4" >&2
        exit 1
    fi
done
kill -TERM "$opmapd4_pid"
if ! wait "$opmapd4_pid"; then
    echo "warm opmapd did not drain cleanly on SIGTERM:" >&2
    cat "$smokedir/opmapd4.log" >&2
    exit 1
fi

echo "== opmapd smoke (WAL ingest survives kill -9) =="
waldir="$smokedir/wal"
cat >"$smokedir/ingest.csv" <<'EOF'
Region,Model,Temp,Outcome
north,m1,10,ok
south,m2,30,fail
east,m1,55,ok
west,m2,80,slow
north,m2,20,fail
south,m1,60,ok
east,m2,15,fail
west,m1,70,ok
EOF
"$smokedir/opmapd" -data "ing=$smokedir/ingest.csv" -addr 127.0.0.1:0 \
    -ready-file "$smokedir/addr5" -wal-dir "$waldir" >"$smokedir/opmapd5.log" 2>&1 &
opmapd5_pid=$!
for _ in $(seq 1 100); do
    [ -s "$smokedir/addr5" ] && break
    sleep 0.1
done
if [ ! -s "$smokedir/addr5" ]; then
    echo "ingest opmapd never became ready:" >&2
    cat "$smokedir/opmapd5.log" >&2
    exit 1
fi
addr5=$(cat "$smokedir/addr5")
# /readyz answers 503 until the (empty) WAL replay finishes.
for _ in $(seq 1 100); do
    "$smokedir/opmapd" -probe "$addr5/readyz" >/dev/null 2>&1 && break
    sleep 0.1
done
# Two acknowledged batches: each 200 carries the durable WAL sequence.
"$smokedir/opmapd" -probe "$addr5/api/ingest" \
    -probe-body '{"rows": [["north","m1","42","fail"],["south","m2","12","fail"]]}' \
    | grep -q '"seq": 1'
"$smokedir/opmapd" -probe "$addr5/api/ingest" \
    -probe-body '{"rows": [["east","m1","33","slow"]]}' \
    | grep -q '"seq": 2'
"$smokedir/opmapd" -probe "$addr5/metrics" | grep -qF 'opmap_ingest_rows_total 3'
# Capture results that include the appended rows, then hard-kill: no
# drain, no checkpoint — only the fsynced WAL survives.
"$smokedir/opmapd" -probe "$addr5/api/overview" >"$smokedir/overview.ingest"
grep -q '"rows": 11' "$smokedir/overview.ingest"
"$smokedir/opmapd" -probe "$addr5/api/compare?attr=Region&v1=north&v2=south&class=fail" \
    >"$smokedir/compare.ingest"
kill -9 "$opmapd5_pid"
wait "$opmapd5_pid" 2>/dev/null || true
# Restart over the same WAL directory: replay must restore every
# acknowledged row before the daemon reports ready.
"$smokedir/opmapd" -data "ing=$smokedir/ingest.csv" -addr 127.0.0.1:0 \
    -ready-file "$smokedir/addr6" -wal-dir "$waldir" >"$smokedir/opmapd6.log" 2>&1 &
opmapd6_pid=$!
for _ in $(seq 1 100); do
    [ -s "$smokedir/addr6" ] && break
    sleep 0.1
done
if [ ! -s "$smokedir/addr6" ]; then
    echo "replaying opmapd never became ready:" >&2
    cat "$smokedir/opmapd6.log" >&2
    exit 1
fi
addr6=$(cat "$smokedir/addr6")
ready=0
for _ in $(seq 1 100); do
    if "$smokedir/opmapd" -probe "$addr6/readyz" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
if [ "$ready" != 1 ]; then
    echo "WAL replay never finished:" >&2
    cat "$smokedir/opmapd6.log" >&2
    exit 1
fi
# Post-replay responses are byte-identical to the pre-kill ones, and
# the scrape proves the rows came back through the WAL.
"$smokedir/opmapd" -probe "$addr6/api/overview" >"$smokedir/overview.replayed"
"$smokedir/opmapd" -probe "$addr6/api/compare?attr=Region&v1=north&v2=south&class=fail" \
    >"$smokedir/compare.replayed"
cmp "$smokedir/overview.ingest" "$smokedir/overview.replayed"
cmp "$smokedir/compare.ingest" "$smokedir/compare.replayed"
"$smokedir/opmapd" -probe "$addr6/metrics" | grep -qF 'opmap_wal_replayed_records_total 2'
kill -TERM "$opmapd6_pid"
if ! wait "$opmapd6_pid"; then
    echo "ingest opmapd did not drain cleanly on SIGTERM:" >&2
    cat "$smokedir/opmapd6.log" >&2
    exit 1
fi

echo "== opmapd smoke (warm start + WAL replay on a continuous schema) =="
# The combination that matters for restored sessions: the snapshot holds
# only the discretized intervals, so replayed and live numeric values
# must bin through the remembered cuts instead of registering new
# labels. Temp gets 40 distinct numeric values so the sniffer marks it
# continuous.
waldir2="$smokedir/wal2"
snapdir2="$smokedir/snaps2"
{
    echo "Region,Model,Temp,Outcome"
    for i in $(seq 0 39); do
        case $((i % 4)) in
            0) region=north ;; 1) region=south ;; 2) region=east ;; *) region=west ;;
        esac
        model="m$(((i % 2) + 1))"
        case $((i % 3)) in
            0) outcome=ok ;; 1) outcome=fail ;; *) outcome=slow ;;
        esac
        echo "$region,$model,$i.5,$outcome"
    done
} >"$smokedir/ingest2.csv"
"$smokedir/opmapd" -data "ing2=$smokedir/ingest2.csv" -addr 127.0.0.1:0 \
    -ready-file "$smokedir/addr7" -snapshot-dir "$snapdir2" -wal-dir "$waldir2" \
    >"$smokedir/opmapd7.log" 2>&1 &
opmapd7_pid=$!
for _ in $(seq 1 100); do
    [ -s "$smokedir/addr7" ] && break
    sleep 0.1
done
if [ ! -s "$smokedir/addr7" ]; then
    echo "continuous-schema opmapd never became ready:" >&2
    cat "$smokedir/opmapd7.log" >&2
    exit 1
fi
addr7=$(cat "$smokedir/addr7")
for _ in $(seq 1 100); do
    "$smokedir/opmapd" -probe "$addr7/readyz" >/dev/null 2>&1 && break
    sleep 0.1
done
# The cold run checkpointed at sequence 0; both batches live only in
# the WAL and must replay into the snapshot-restored session.
"$smokedir/opmapd" -probe "$addr7/api/ingest" \
    -probe-body '{"rows": [["north","m1","3.7","fail"],["south","m2","88.25","ok"]]}' \
    | grep -q '"seq": 1'
"$smokedir/opmapd" -probe "$addr7/api/ingest" \
    -probe-body '{"rows": [["east","m1","12.125","slow"]]}' \
    | grep -q '"seq": 2'
"$smokedir/opmapd" -probe "$addr7/api/overview" >"$smokedir/overview.cont"
grep -q '"rows": 43' "$smokedir/overview.cont"
"$smokedir/opmapd" -probe "$addr7/api/compare?attr=Region&v1=north&v2=south&class=fail" \
    >"$smokedir/compare.cont"
kill -9 "$opmapd7_pid"
wait "$opmapd7_pid" 2>/dev/null || true
"$smokedir/opmapd" -data "ing2=$smokedir/ingest2.csv" -addr 127.0.0.1:0 \
    -ready-file "$smokedir/addr8" -snapshot-dir "$snapdir2" -wal-dir "$waldir2" \
    >"$smokedir/opmapd8.log" 2>&1 &
opmapd8_pid=$!
for _ in $(seq 1 100); do
    [ -s "$smokedir/addr8" ] && break
    sleep 0.1
done
if [ ! -s "$smokedir/addr8" ]; then
    echo "warm+replay opmapd never became ready:" >&2
    cat "$smokedir/opmapd8.log" >&2
    exit 1
fi
addr8=$(cat "$smokedir/addr8")
ready=0
for _ in $(seq 1 100); do
    if "$smokedir/opmapd" -probe "$addr8/readyz" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
if [ "$ready" != 1 ]; then
    echo "warm+replay WAL replay never finished:" >&2
    cat "$smokedir/opmapd8.log" >&2
    exit 1
fi
# Prove this really took the warm-start path, then that the replayed
# state is byte-identical to the pre-kill run — with the interval
# domains intact, not polluted by raw numeric labels.
grep -q "warm start" "$smokedir/opmapd8.log"
"$smokedir/opmapd" -probe "$addr8/metrics" >"$smokedir/metrics8"
grep -qF 'opmapd_snapshot_loads_total 1' "$smokedir/metrics8"
grep -qF 'opmap_wal_replayed_records_total 2' "$smokedir/metrics8"
"$smokedir/opmapd" -probe "$addr8/api/overview" >"$smokedir/overview.cont.replayed"
"$smokedir/opmapd" -probe "$addr8/api/compare?attr=Region&v1=north&v2=south&class=fail" \
    >"$smokedir/compare.cont.replayed"
cmp "$smokedir/overview.cont" "$smokedir/overview.cont.replayed"
cmp "$smokedir/compare.cont" "$smokedir/compare.cont.replayed"
# Live ingest into the restored session takes the same binned path.
"$smokedir/opmapd" -probe "$addr8/api/ingest" \
    -probe-body '{"rows": [["west","m2","19.75","fail"]]}' \
    | grep -q '"seq": 3'
"$smokedir/opmapd" -probe "$addr8/api/compare?attr=Region&v1=north&v2=south&class=fail" \
    >"$smokedir/compare.cont.live"
kill -TERM "$opmapd8_pid"
if ! wait "$opmapd8_pid"; then
    echo "warm+replay opmapd did not drain cleanly on SIGTERM:" >&2
    cat "$smokedir/opmapd8.log" >&2
    exit 1
fi
# Oracle: a cold load replaying the full WAL into a live session must
# answer identically to the restored session that replayed + ingested.
"$smokedir/opmapd" -data "ing2=$smokedir/ingest2.csv" -addr 127.0.0.1:0 \
    -ready-file "$smokedir/addr9" -wal-dir "$waldir2" >"$smokedir/opmapd9.log" 2>&1 &
opmapd9_pid=$!
for _ in $(seq 1 100); do
    [ -s "$smokedir/addr9" ] && break
    sleep 0.1
done
if [ ! -s "$smokedir/addr9" ]; then
    echo "oracle opmapd never became ready:" >&2
    cat "$smokedir/opmapd9.log" >&2
    exit 1
fi
addr9=$(cat "$smokedir/addr9")
for _ in $(seq 1 100); do
    "$smokedir/opmapd" -probe "$addr9/readyz" >/dev/null 2>&1 && break
    sleep 0.1
done
"$smokedir/opmapd" -probe "$addr9/api/compare?attr=Region&v1=north&v2=south&class=fail" \
    >"$smokedir/compare.cont.oracle"
cmp "$smokedir/compare.cont.live" "$smokedir/compare.cont.oracle"
kill -TERM "$opmapd9_pid"
wait "$opmapd9_pid" 2>/dev/null || true

echo "== shard smoke (shard-build x2, shard-merge, warm serve) =="
# The sharded-build contract end to end through the CLIs: two row-shards
# cubed independently (opmap shard-build), merged into one serving
# snapshot (opmap shard-merge), and served by opmapd -shard-dir — with
# responses byte-identical to a single-pass build over the concatenated
# rows, and zero cubes built at startup. Model m3 and outcome slow
# appear only in the second shard, so the merge must grow the
# dictionaries, not just sum counts. All columns are string-valued:
# per-shard kind sniffing must agree, and categorical-only data needs
# no shared cut points.
go build -o "$smokedir/opmap" ./cmd/opmap
sharddir="$smokedir/shards"
mergeddir="$smokedir/merged"
mkdir -p "$sharddir" "$mergeddir"
cat >"$smokedir/shard1.csv" <<'EOF'
Region,Model,Outcome
north,m1,ok
south,m2,bad
east,m1,bad
west,m2,ok
north,m2,bad
south,m1,ok
east,m2,bad
west,m1,bad
EOF
cat >"$smokedir/shard2.csv" <<'EOF'
Region,Model,Outcome
north,m3,bad
south,m3,slow
east,m3,bad
west,m1,ok
north,m1,slow
south,m2,bad
east,m1,ok
west,m3,bad
EOF
{ cat "$smokedir/shard1.csv"; tail -n +2 "$smokedir/shard2.csv"; } >"$smokedir/shardfull.csv"
"$smokedir/opmap" -data "$smokedir/shard1.csv" shard-build -o "$sharddir/a.omapsnap"
"$smokedir/opmap" -data "$smokedir/shard2.csv" shard-build -o "$sharddir/b.omapsnap"
"$smokedir/opmap" shard-merge -o "$mergeddir/default.omapsnap" \
    "$sharddir/a.omapsnap" "$sharddir/b.omapsnap"
# Baseline: a daemon that loads and cubes the concatenated CSV itself.
"$smokedir/opmapd" -data "$smokedir/shardfull.csv" -addr 127.0.0.1:0 \
    -ready-file "$smokedir/addr10" >"$smokedir/opmapd10.log" 2>&1 &
opmapd10_pid=$!
for _ in $(seq 1 100); do
    [ -s "$smokedir/addr10" ] && break
    sleep 0.1
done
if [ ! -s "$smokedir/addr10" ]; then
    echo "single-build opmapd never became ready:" >&2
    cat "$smokedir/opmapd10.log" >&2
    exit 1
fi
addr10=$(cat "$smokedir/addr10")
"$smokedir/opmapd" -probe "$addr10/api/overview" >"$smokedir/overview.single"
"$smokedir/opmapd" -probe "$addr10/api/compare?attr=Model&v1=m1&v2=m3&class=bad" \
    >"$smokedir/compare.single"
"$smokedir/opmapd" -probe "$addr10/api/sweep?attr=Model&class=bad&max_pairs=3" \
    >"$smokedir/sweep.single"
kill -TERM "$opmapd10_pid"
wait "$opmapd10_pid" 2>/dev/null || true
# The shard daemon assembles the two shard snapshots at startup.
"$smokedir/opmapd" -shard-dir "$mergeddir" -addr 127.0.0.1:0 \
    -ready-file "$smokedir/addr11" >"$smokedir/opmapd11.log" 2>&1 &
opmapd11_pid=$!
for _ in $(seq 1 100); do
    [ -s "$smokedir/addr11" ] && break
    sleep 0.1
done
if [ ! -s "$smokedir/addr11" ]; then
    echo "shard-dir opmapd never became ready:" >&2
    cat "$smokedir/opmapd11.log" >&2
    exit 1
fi
addr11=$(cat "$smokedir/addr11")
"$smokedir/opmapd" -probe "$addr11/api/overview" >"$smokedir/overview.sharded"
"$smokedir/opmapd" -probe "$addr11/api/compare?attr=Model&v1=m1&v2=m3&class=bad" \
    >"$smokedir/compare.sharded"
"$smokedir/opmapd" -probe "$addr11/api/sweep?attr=Model&class=bad&max_pairs=3" \
    >"$smokedir/sweep.sharded"
cmp "$smokedir/overview.single" "$smokedir/overview.sharded"
cmp "$smokedir/compare.single" "$smokedir/compare.sharded"
cmp "$smokedir/sweep.single" "$smokedir/sweep.sharded"
"$smokedir/opmapd" -probe "$addr11/api/datasets" | grep -q '"snapshot": "merged (1 shards)"'
"$smokedir/opmapd" -probe "$addr11/metrics" >"$smokedir/metrics11"
for want in \
    'opmap_cubes_built_total 0' \
    'opmap_stage_duration_seconds_count{stage="build_cubes"} 0' \
    'opmapd_shard_fallbacks_total{reason="corrupt"} 0' \
    'opmapd_shard_fallbacks_total{reason="incompatible"} 0' \
    'opmapd_shard_fallbacks_total{reason="empty"} 0'; do
    if ! grep -qF "$want" "$smokedir/metrics11"; then
        echo "shard warm-start metrics missing: $want" >&2
        cat "$smokedir/metrics11" >&2
        exit 1
    fi
done
kill -TERM "$opmapd11_pid"
wait "$opmapd11_pid" 2>/dev/null || true
# The same assembly without the CLI merge: point -shard-dir at the raw
# shard snapshots and let the daemon merge them (merged (2 shards),
# shards-merged counter 1, still zero cube builds).
"$smokedir/opmapd" -shard-dir "$sharddir" -addr 127.0.0.1:0 \
    -ready-file "$smokedir/addr12" >"$smokedir/opmapd12.log" 2>&1 &
opmapd12_pid=$!
for _ in $(seq 1 100); do
    [ -s "$smokedir/addr12" ] && break
    sleep 0.1
done
if [ ! -s "$smokedir/addr12" ]; then
    echo "raw-shard opmapd never became ready:" >&2
    cat "$smokedir/opmapd12.log" >&2
    exit 1
fi
addr12=$(cat "$smokedir/addr12")
"$smokedir/opmapd" -probe "$addr12/api/compare?attr=Model&v1=m1&v2=m3&class=bad" \
    >"$smokedir/compare.rawshards"
cmp "$smokedir/compare.single" "$smokedir/compare.rawshards"
"$smokedir/opmapd" -probe "$addr12/api/datasets" | grep -q '"snapshot": "merged (2 shards)"'
"$smokedir/opmapd" -probe "$addr12/metrics" >"$smokedir/metrics12"
grep -qF 'opmap_cubes_built_total 0' "$smokedir/metrics12"
grep -qF 'opmap_shards_merged_total 1' "$smokedir/metrics12"
grep -qF 'opmap_shard_merge_seconds_count 1' "$smokedir/metrics12"
kill -TERM "$opmapd12_pid"
wait "$opmapd12_pid" 2>/dev/null || true

echo "== fuzz smoke (10s per target) =="
go test -run '^$' -fuzz '^FuzzReadStore$' -fuzztime 10s ./internal/rulecube
go test -run '^$' -fuzz '^FuzzComparator$' -fuzztime 10s ./internal/compare
go test -run '^$' -fuzz '^FuzzSweepOptions$' -fuzztime 10s ./internal/compare
go test -run '^$' -fuzz '^FuzzReadSnapshot$' -fuzztime 10s ./internal/snapshot
go test -run '^$' -fuzz '^FuzzMergeSnapshots$' -fuzztime 10s ./internal/snapshot
go test -run '^$' -fuzz '^FuzzReplayWAL$' -fuzztime 10s ./internal/wal

echo "== bench (stage timings + engine modes + snapshot + ingest + batch + shard + drilldown) =="
# The artifact series jumps pr5 -> pr7 -> pr8 -> pr9 -> pr10:
# BENCH_pr6.json was never recorded (PR 6 predates the
# bench-artifact-per-PR convention), so that hop in the -prev chain is
# a gap, noted in each artifact's notes. The bench enforces its gates
# itself (nonzero exit): a batched sweep must take exactly one dataset
# scan and cut scans >=5x vs the per-pair baseline recorded in the
# same run, and no headline metric may regress >30% vs the previous
# artifact after normalizing by the CPU/disk calibration canaries
# recorded in both artifacts. The shard headline metric
# (end_to_end_2_shards_ms) appears in BENCH_pr9.json, so comparing
# against pr9 arms that gate for the first time this PR. The drilldown
# section is new in pr10; its numbers become comparable from pr11 on.
go run ./cmd/opmapbench -records 20000 -rounds 50 \
    -out BENCH_pr10.json -prev BENCH_pr9.json
grep -q '"build_cubes"' BENCH_pr10.json
grep -q '"drilldown"' BENCH_pr10.json
grep -q '"lazy_cold_compare_ms"' BENCH_pr10.json
grep -q '"load_speedup_vs_build"' BENCH_pr10.json
grep -q '"rows_per_sec"' BENCH_pr10.json
grep -q '"append_p90_ms"' BENCH_pr10.json
grep -q '"replay_ms_per_1m_records"' BENCH_pr10.json
grep -q '"batch_scans": 1,' BENCH_pr10.json
grep -q '"scan_reduction"' BENCH_pr10.json
grep -q '"speedup_vs_per_pair"' BENCH_pr10.json
grep -q '"max_shard_build_ms"' BENCH_pr10.json
grep -q '"single_pass_ms"' BENCH_pr10.json
grep -q '"shards": 8' BENCH_pr10.json
grep -q '"recovered_planted_pair": true' BENCH_pr10.json

echo "CI PASSED"
