package opmap

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"strings"
	"testing"
)

// lazyPair builds two sessions over identically generated data: one
// eager, one lazy. The pair backs the session-level oracle tests.
func lazyPair(t testing.TB) (eager, lazy *Session, gt CallLogTruth) {
	t.Helper()
	cfg := CallLogConfig{Seed: 77, Records: 30000, NumPhones: 6, NoiseAttrs: 4}
	e, gt, err := GenerateCallLog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, _, err := GenerateCallLog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Session{e, l} {
		if err := s.Discretize(DiscretizeOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.BuildCubes(); err != nil {
		t.Fatal(err)
	}
	if err := l.BuildCubesOptions(context.Background(), BuildOptions{Lazy: true}); err != nil {
		t.Fatal(err)
	}
	return e, l, gt
}

func TestLazyCompareMatchesEager(t *testing.T) {
	eager, lazy, gt := lazyPair(t)
	opts := CompareOptions{}
	want, err := eager.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lazy.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want.Cf1 != got.Cf1 || want.Cf2 != got.Cf2 || want.Ratio != got.Ratio {
		t.Errorf("confidences differ: eager (%g,%g,%g), lazy (%g,%g,%g)",
			want.Cf1, want.Cf2, want.Ratio, got.Cf1, got.Cf2, got.Ratio)
	}
	if !reflect.DeepEqual(want.Ranked(), got.Ranked()) {
		t.Error("lazy ranking differs from eager")
	}
	if !reflect.DeepEqual(want.PropertyAttributes(), got.PropertyAttributes()) {
		t.Error("lazy property attributes differ from eager")
	}
}

func TestLazySweepAndImpressionsMatchEager(t *testing.T) {
	eager, lazy, gt := lazyPair(t)
	ws, err := eager.Sweep(gt.PhoneAttr, gt.DropClass, 3)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := lazy.Sweep(gt.PhoneAttr, gt.DropClass, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ws, gs) {
		t.Error("lazy sweep differs from eager")
	}
	wi, err := eager.Impressions(ImpressionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gi, err := lazy.Impressions(ImpressionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wi, gi) {
		t.Error("lazy impressions differ from eager")
	}
}

func TestLazySessionResultCache(t *testing.T) {
	_, lazy, gt := lazyPair(t)
	if _, err := lazy.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{}); err != nil {
		t.Fatal(err)
	}
	st := lazy.EngineStats()
	if !st.Lazy {
		t.Fatal("EngineStats.Lazy = false on a lazy session")
	}
	if st.ResultCacheMisses == 0 || st.ResultCacheEntries == 0 {
		t.Fatalf("first compare should miss and cache: %+v", st)
	}
	builds := st.TwoDBuilds
	if _, err := lazy.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{}); err != nil {
		t.Fatal(err)
	}
	st2 := lazy.EngineStats()
	if st2.ResultCacheHits == 0 {
		t.Errorf("second identical compare should hit the result cache: %+v", st2)
	}
	if st2.TwoDBuilds != builds {
		t.Errorf("cached compare rebuilt cubes: %d -> %d", builds, st2.TwoDBuilds)
	}
	// A swapped value pair normalizes to the same key.
	if _, err := lazy.Compare(gt.PhoneAttr, gt.BadPhone, gt.GoodPhone, gt.DropClass, CompareOptions{}); err != nil {
		t.Fatal(err)
	}
	if st3 := lazy.EngineStats(); st3.ResultCacheHits <= st2.ResultCacheHits {
		t.Error("swapped value order should share the cache entry")
	}
}

func TestLazyCubeCountAndRuleSpace(t *testing.T) {
	eager, lazy, gt := lazyPair(t)
	if n := lazy.CubeCount(); n != 0 {
		t.Errorf("lazy CubeCount before any query = %d, want 0", n)
	}
	if e, l := eager.RuleSpaceSize(), lazy.RuleSpaceSize(); e != l {
		t.Errorf("RuleSpaceSize: eager %d, lazy %d", e, l)
	}
	if _, err := lazy.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{}); err != nil {
		t.Fatal(err)
	}
	if n := lazy.CubeCount(); n == 0 {
		t.Error("lazy CubeCount after a compare should count resident cubes")
	}
}

func TestLazyEagerOnlyOps(t *testing.T) {
	_, lazy, _ := lazyPair(t)
	var buf bytes.Buffer
	for name, call := range map[string]func() error{
		"SaveCubes":      func() error { return lazy.SaveCubes(&buf) },
		"Explore":        func() error { return lazy.Explore(strings.NewReader("quit\n"), &buf) },
		"RenderOverall":  func() error { return lazy.RenderOverall(&buf) },
		"CubeExceptions": func() error { _, err := lazy.CubeExceptions(0); return err },
	} {
		err := call()
		if err == nil {
			t.Errorf("%s should fail in lazy mode", name)
			continue
		}
		if !strings.Contains(err.Error(), "lazy mode") {
			t.Errorf("%s error should mention lazy mode, got: %v", name, err)
		}
	}
}

func TestRediscretizeInvalidatesEngine(t *testing.T) {
	_, lazy, gt := lazyPair(t)
	if _, err := lazy.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{}); err != nil {
		t.Fatal(err)
	}
	if lazy.EngineStats().ResultCacheEntries == 0 {
		t.Fatal("expected a cached result before re-discretize")
	}
	if err := lazy.Discretize(DiscretizeOptions{}); err != nil {
		t.Fatal(err)
	}
	if n := lazy.EngineStats().ResultCacheEntries; n != 0 {
		t.Errorf("re-discretize left %d cached results", n)
	}
	if _, err := lazy.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{}); err == nil {
		t.Error("compare after re-discretize should require a rebuild")
	}
	if err := lazy.BuildCubesOptions(context.Background(), BuildOptions{Lazy: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := lazy.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{}); err != nil {
		t.Errorf("compare after rebuild failed: %v", err)
	}
}

func TestLazyRenderDetailed(t *testing.T) {
	eager, lazy, gt := lazyPair(t)
	var we, wl bytes.Buffer
	if err := eager.RenderDetailed(&we, gt.PhoneAttr); err != nil {
		t.Fatal(err)
	}
	if err := lazy.RenderDetailed(&wl, gt.PhoneAttr); err != nil {
		t.Fatal(err)
	}
	if we.String() != wl.String() {
		t.Error("detailed view differs between engines")
	}
}

func TestSaturatingArithmetic(t *testing.T) {
	if got := satAdd(math.MaxInt64-1, 5); got != math.MaxInt64 {
		t.Errorf("satAdd overflow = %d", got)
	}
	if got := satAdd(3, 4); got != 7 {
		t.Errorf("satAdd(3,4) = %d", got)
	}
	if got := satMul(math.MaxInt64/2, 3); got != math.MaxInt64 {
		t.Errorf("satMul overflow = %d", got)
	}
	if got := satMul(0, math.MaxInt64); got != 0 {
		t.Errorf("satMul(0,max) = %d", got)
	}
	if got := satMul(6, 7); got != 42 {
		t.Errorf("satMul(6,7) = %d", got)
	}
}
