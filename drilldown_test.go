package opmap

import (
	"context"
	"testing"
)

// drillSession builds the drill-case session with the chosen engine.
func drillSession(t *testing.T, lazy bool) (*Session, DrillCaseTruth) {
	t.Helper()
	s, gt, err := GenerateDrillCase(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BuildCubesOptions(context.Background(), BuildOptions{Lazy: lazy}); err != nil {
		t.Fatal(err)
	}
	return s, gt
}

// TestDrillDownRecoversPair drives the full public path: the planted
// two-condition effect must rank first while the plain comparison's
// top attribute is the decoy.
func TestDrillDownRecoversPair(t *testing.T) {
	s, gt := drillSession(t, true)
	res, err := s.DrillDown(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, DrillOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("unexpected partial result: %+v", res.Unexplored)
	}
	if res.Label1 != gt.GoodPhone || res.Label2 != gt.BadPhone {
		t.Fatalf("orientation %q vs %q, want %q vs %q", res.Label1, res.Label2, gt.GoodPhone, gt.BadPhone)
	}
	top := res.Root.Top(1)
	if len(top) == 0 || top[0].Name != gt.SurfaceAttr {
		t.Fatalf("root ranking top = %+v, want decoy %q", top, gt.SurfaceAttr)
	}
	if len(res.Findings) == 0 {
		t.Fatal("no findings")
	}
	f := res.Findings[0]
	if f.Depth != 2 {
		t.Fatalf("top finding %s at depth %d, want the planted pair at depth 2", f.Label(), f.Depth)
	}
	got := map[string]string{}
	for _, c := range f.Conds {
		got[c.Attr] = c.Value
	}
	if got[gt.JointAttrA] != gt.JointValueA || got[gt.JointAttrB] != gt.JointValueB {
		t.Fatalf("top finding %s, want %s=%s & %s=%s", f.Label(), gt.JointAttrA, gt.JointValueA, gt.JointAttrB, gt.JointValueB)
	}
}

// TestDrillDownMemoized asserts the second identical query is served
// from the session result cache, and that option changes miss.
func TestDrillDownMemoized(t *testing.T) {
	s, gt := drillSession(t, false)
	run := func(opts DrillOptions) *DrillResult {
		t.Helper()
		res, err := s.DrillDown(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run(DrillOptions{})
	hits0 := s.EngineStats().ResultCacheHits
	second := run(DrillOptions{})
	hits1 := s.EngineStats().ResultCacheHits
	if hits1 != hits0+1 {
		t.Fatalf("repeat query: result-cache hits %d -> %d, want +1", hits0, hits1)
	}
	if len(first.Findings) != len(second.Findings) || first.Findings[0].Label() != second.Findings[0].Label() {
		t.Fatal("cached result differs from computed result")
	}
	// The swapped value order is the same comparison, so it hits too.
	run2, err := s.DrillDown(gt.PhoneAttr, gt.BadPhone, gt.GoodPhone, gt.DropClass, DrillOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.EngineStats().ResultCacheHits != hits1+1 {
		t.Fatal("swapped value order missed the result cache")
	}
	if run2.Findings[0].Label() != first.Findings[0].Label() {
		t.Fatal("swapped-order result differs")
	}
	// A different measure is a different result: no hit.
	run(DrillOptions{Measure: "lift"})
	if got := s.EngineStats().ResultCacheHits; got != hits1+1 {
		t.Fatalf("lift-measure query hit the cache (hits %d)", got)
	}
}

// TestDrillDownValidation covers name resolution and measure errors.
func TestDrillDownValidation(t *testing.T) {
	s, gt := drillSession(t, true)
	if _, err := s.DrillDown("No-Such-Attr", gt.GoodPhone, gt.BadPhone, gt.DropClass, DrillOptions{}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := s.DrillDown(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, DrillOptions{Measure: "entropy"}); err == nil {
		t.Error("unknown measure accepted")
	}
	if _, err := s.DrillDown(gt.PhoneAttr, gt.GoodPhone, gt.GoodPhone, gt.DropClass, DrillOptions{}); err == nil {
		t.Error("identical values accepted")
	}
	if _, err := s.DrillDown(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, DrillOptions{
		Compare: CompareOptions{Attrs: []string{gt.PhoneAttr}},
	}); err == nil {
		t.Error("self-ranking attrs list accepted")
	}
}

// TestDrillDownInvalidatedByIngest appends rows and expects the next
// drill-down to recompute rather than serve the stale entry.
func TestDrillDownInvalidatedByIngest(t *testing.T) {
	s, gt := drillSession(t, true)
	if _, err := s.DrillDown(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, DrillOptions{}); err != nil {
		t.Fatal(err)
	}
	misses0 := s.EngineStats().ResultCacheMisses
	hits0 := s.EngineStats().ResultCacheHits

	// One appended row touches every attribute: the unrestricted
	// drill-down (nil deps = depends-on-all) must be invalidated.
	attrs := s.Attributes()
	row := make([]string, len(attrs))
	for i, a := range attrs {
		if a == s.ClassAttribute() {
			row[i] = gt.DropClass
			continue
		}
		vals, err := s.Values(a)
		if err != nil {
			t.Fatal(err)
		}
		row[i] = vals[0]
	}
	if err := s.Append([][]string{row}); err != nil {
		t.Fatal(err)
	}

	if _, err := s.DrillDown(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, DrillOptions{}); err != nil {
		t.Fatal(err)
	}
	st := s.EngineStats()
	if st.ResultCacheHits != hits0 {
		t.Fatalf("post-ingest drill-down hit the stale cache (hits %d -> %d)", hits0, st.ResultCacheHits)
	}
	if st.ResultCacheMisses <= misses0 {
		t.Fatalf("post-ingest drill-down did not recompute (misses %d -> %d)", misses0, st.ResultCacheMisses)
	}
}
