package opmap

import (
	"context"
	"strings"

	"opmap/internal/compare"
	"opmap/internal/drill"
	"opmap/internal/obsv"
)

// DrillOptions tunes a multi-condition drill-down. The zero value
// drills two conditions deep with a beam of 8 using the paper's
// contribution measure.
type DrillOptions struct {
	// Compare configures the underlying comparison at every depth: CI
	// level and method, property threshold, and the Attrs restriction
	// on candidate condition attributes.
	Compare CompareOptions
	// MaxDepth is the maximum number of drill conditions beyond the
	// comparison attribute. Zero means 2.
	MaxDepth int
	// Beam is the number of highest-scoring nodes expanded per depth.
	// Zero means 8.
	Beam int
	// MaxNodes caps the total candidate nodes created across the
	// search. Zero means 256.
	MaxNodes int
	// MinSupport is the minimum refined sub-population size (both
	// sides) for a cell to become a finding. Zero means 8.
	MinSupport int64
	// Measure selects the extension-scoring measure: "paper" (default,
	// the CI-revised contribution of Eq. 1–2), "lift" or "conviction".
	Measure string
	// PartialOnDeadline returns the findings collected so far — with
	// the unexplored frontier listed in DrillResult.Unexplored — when
	// the context expires mid-search, instead of failing the call.
	PartialOnDeadline bool
}

// DrillCondition is one attribute=value condition of a finding.
type DrillCondition struct {
	Attr  string `json:"attr"`
	Value string `json:"value"`
}

// DrillFinding is one scored condition path of a drill-down.
type DrillFinding struct {
	// Conds lists the conditions beyond the comparison attribute, in
	// drill order.
	Conds []DrillCondition `json:"conds"`
	// Depth is len(Conds); depth ≥ 2 findings are conjunctions no
	// single attribute's ranking surfaces.
	Depth int `json:"depth"`
	// Score is the measure score normalized by the parent node's
	// attainable maximum, comparable across depths. Findings are
	// ranked by Score.
	Score float64 `json:"score"`
	// Raw is the unnormalized measure score (for the paper measure,
	// the excess class mass in records).
	Raw float64 `json:"raw"`

	N1 int64 `json:"n1"` // refined sub-population 1 size
	C1 int64 `json:"c1"` // of those, class records
	N2 int64 `json:"n2"` // refined sub-population 2 size
	C2 int64 `json:"c2"` // of those, class records

	Cf1 float64 `json:"cf1"`
	Cf2 float64 `json:"cf2"`
}

// Label renders the finding's conditions as "Attr=value & ...".
func (f DrillFinding) Label() string {
	parts := make([]string, len(f.Conds))
	for i, c := range f.Conds {
		parts[i] = c.Attr + "=" + c.Value
	}
	return strings.Join(parts, " & ")
}

// DrillResult is a complete drill-down: the oriented root comparison
// and every scored condition path, highest score first.
type DrillResult struct {
	// Attr is the comparison attribute; Label1/Label2 the compared
	// values, oriented so Label1 has the lower confidence; Class the
	// class of interest.
	Attr           string `json:"attr"`
	Label1, Label2 string `json:"-"`
	Class          string `json:"class"`

	Cf1, Cf2, Ratio float64 `json:"-"`

	// Measure names the measure that scored the findings.
	Measure string `json:"measure"`
	// Findings lists every scored condition path by descending Score.
	Findings []DrillFinding `json:"findings"`
	// Expanded counts the frontier nodes expanded, including the root.
	Expanded int `json:"expanded"`

	// Partial is set when the search stopped early (context expiry
	// with PartialOnDeadline, or the node budget); Unexplored lists
	// what was not searched.
	Partial    bool        `json:"partial"`
	Unexplored []ItemError `json:"unexplored,omitempty"`

	// Root is the one-condition comparison the drill-down started
	// from.
	Root *Comparison `json:"-"`
}

// Top returns the n highest-ranked findings.
func (r *DrillResult) Top(n int) []DrillFinding {
	if n > len(r.Findings) {
		n = len(r.Findings)
	}
	return r.Findings[:n]
}

// DrillDown searches for multi-condition sub-population effects: it
// runs the attr=v1 vs attr=v2 comparison and then expands the
// highest-scoring condition branches, scoring condition conjunctions
// inside the refined sub-populations. Effects that only a conjunction
// of conditions produces — invisible to the one-condition ranking —
// surface here. Rule cubes must be built (or the session lazy).
func (s *Session) DrillDown(attr, v1, v2, class string, opts DrillOptions) (*DrillResult, error) {
	return s.DrillDownContext(context.Background(), attr, v1, v2, class, opts)
}

// DrillDownContext is DrillDown under a context, checked at every
// frontier step. Completed results are memoized in the session result
// cache; partial results are not.
func (s *Session) DrillDownContext(ctx context.Context, attr, v1, v2, class string, opts DrillOptions) (*DrillResult, error) {
	defer obsv.Stage(obsv.StageDrillDown)()
	s.mu.RLock()
	defer s.mu.RUnlock()
	src, err := s.requireSource()
	if err != nil {
		return nil, err
	}
	in, copts, err := s.resolve(attr, v1, v2, class, opts.Compare)
	if err != nil {
		return nil, err
	}
	meas, err := drill.ByName(opts.Measure)
	if err != nil {
		return nil, err
	}
	dopts := drill.Options{
		MaxDepth:          opts.MaxDepth,
		Beam:              opts.Beam,
		MaxNodes:          opts.MaxNodes,
		MinSupport:        opts.MinSupport,
		Measure:           meas,
		Compare:           copts,
		PartialOnDeadline: opts.PartialOnDeadline,
	}
	ver := s.results.Version()
	key := drilldownKey(in, dopts)
	if v, ok := s.results.Get(ver, key); ok {
		return s.wrapDrill(attr, class, in, v.(*drill.Result)), nil
	}
	res, err := drill.New(src).DrillContext(ctx, in, dopts)
	if err != nil {
		return nil, err
	}
	if !res.Partial {
		// An unrestricted drill-down may condition on any attribute, so
		// it depends on all of them (nil deps); a restricted one only on
		// the comparison attribute and the explicit candidates.
		s.results.PutDeps(ver, key, res, compareDeps(in, copts))
	}
	return s.wrapDrill(attr, class, in, res), nil
}

// wrapDrill converts the internal result to the public form.
func (s *Session) wrapDrill(attr, class string, in compare.Input, res *drill.Result) *DrillResult {
	root := s.wrapComparison(attr, class, in, res.Root)
	out := &DrillResult{
		Attr:       attr,
		Label1:     root.Label1,
		Label2:     root.Label2,
		Class:      class,
		Cf1:        root.Cf1,
		Cf2:        root.Cf2,
		Ratio:      root.Ratio,
		Measure:    res.Measure,
		Expanded:   res.Expanded,
		Partial:    res.Partial,
		Unexplored: toItemErrors(res.Unexplored),
		Root:       root,
	}
	for _, f := range res.Findings {
		df := DrillFinding{
			Depth: f.Depth,
			Score: f.Score,
			Raw:   f.Raw,
			N1:    f.N1, C1: f.C1, N2: f.N2, C2: f.C2,
			Cf1: f.Cf1, Cf2: f.Cf2,
		}
		for _, c := range f.Conds {
			df.Conds = append(df.Conds, DrillCondition{Attr: c.Name, Value: c.Label})
		}
		out.Findings = append(out.Findings, df)
	}
	return out
}
