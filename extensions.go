package opmap

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"opmap/internal/car"
	"opmap/internal/compare"
	"opmap/internal/dataset"
	"opmap/internal/engine"
	"opmap/internal/explore"
	"opmap/internal/gi"
	"opmap/internal/obsv"
	"opmap/internal/report"
	"opmap/internal/rulecube"
)

// This file holds the Session capabilities beyond the paper's core
// pipeline: pair screening, one-vs-rest comparison, cube persistence,
// and Markdown report generation. Each is motivated directly by the
// paper's deployment narrative (see the respective internal packages).

// PairCandidate is a value pair of an attribute whose class confidences
// differ significantly — a candidate for Compare.
type PairCandidate struct {
	Attr           string
	Value1, Value2 string // oriented: Value1 has the lower confidence
	Cf1, Cf2       float64
	N1, N2         int64
	Ratio          float64
	Z              float64
	PValue         float64
}

// ScreenPairs ranks value pairs of attr by the statistical significance
// of their confidence gap on the class — automating the "spot two phones
// with very different drop rates" step that precedes every comparison.
// maxPairs ≤ 0 returns all significant pairs.
func (s *Session) ScreenPairs(attr, class string, maxPairs int) ([]PairCandidate, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	src, err := s.requireSource()
	if err != nil {
		return nil, err
	}
	a := s.ds.AttrIndex(attr)
	if a < 0 {
		return nil, fmt.Errorf("opmap: unknown attribute %q", attr)
	}
	cls, ok := s.ds.ClassDict().Lookup(class)
	if !ok {
		return nil, fmt.Errorf("opmap: unknown class %q", class)
	}
	opts := compare.ScreenOptions{}
	if maxPairs > 0 {
		opts.MaxPairs = maxPairs
	}
	pairs, err := compare.NewSource(src).ScreenPairs(a, cls, opts)
	if err != nil {
		return nil, err
	}
	out := make([]PairCandidate, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, PairCandidate{
			Attr:   attr,
			Value1: p.Label1,
			Value2: p.Label2,
			Cf1:    p.Cf1,
			Cf2:    p.Cf2,
			N1:     p.N1,
			N2:     p.N2,
			Ratio:  p.Ratio,
			Z:      p.Z,
			PValue: p.PValue,
		})
	}
	return out, nil
}

// CompareOneVsRest compares the sub-population attr=value against its
// complement attr≠value with respect to the class (Section III.C's
// "morning calls vs the rest" use case). Label2 of the result reads
// "rest" when the complement is the higher-confidence side.
func (s *Session) CompareOneVsRest(attr, value, class string, opts CompareOptions) (*Comparison, error) {
	return s.CompareOneVsRestContext(context.Background(), attr, value, class, opts)
}

// CompareOneVsRestContext is CompareOneVsRest under a context. With
// opts.PartialOnDeadline set, a context that expires mid-ranking
// yields the attributes scored so far with Comparison.Partial set and
// the rest annotated in Comparison.Unscored; otherwise the call fails
// with ctx.Err().
func (s *Session) CompareOneVsRestContext(ctx context.Context, attr, value, class string, opts CompareOptions) (*Comparison, error) {
	defer obsv.Stage(obsv.StageCompareOneVsRest)()
	s.mu.RLock()
	defer s.mu.RUnlock()
	src, err := s.requireSource()
	if err != nil {
		return nil, err
	}
	a := s.ds.AttrIndex(attr)
	if a < 0 {
		return nil, fmt.Errorf("opmap: unknown attribute %q", attr)
	}
	v, ok := s.ds.Column(a).Dict.Lookup(value)
	if !ok {
		return nil, fmt.Errorf("opmap: attribute %q has no value %q", attr, value)
	}
	cls, ok := s.ds.ClassDict().Lookup(class)
	if !ok {
		return nil, fmt.Errorf("opmap: unknown class %q", class)
	}
	copts, err := s.compareOptions(opts)
	if err != nil {
		return nil, err
	}
	res, err := compare.NewSource(src).OneVsRestContext(ctx, compare.OneVsRestInput{Attr: a, Value: v, Class: cls}, copts)
	if err != nil {
		return nil, err
	}
	l1, l2 := value, "rest"
	if res.Swapped { // the named value is the higher-confidence side
		l1, l2 = "rest", value
	}
	return &Comparison{
		Attr:     attr,
		Label1:   l1,
		Label2:   l2,
		Cf1:      res.Cf1,
		Cf2:      res.Cf2,
		Ratio:    res.Ratio,
		Class:    class,
		Partial:  res.Partial,
		Unscored: toItemErrors(res.Unscored),
		res:      res,
	}, nil
}

// OneVsRestAllResult aggregates CompareOneVsRestAll: one comparison per
// value of the attribute whose one-vs-rest split is defined on the
// data, plus the values that had to be skipped.
type OneVsRestAllResult struct {
	// Attr is the split attribute.
	Attr string
	// Comparisons holds one entry per compared value, in ascending
	// value order; each is the same shape CompareOneVsRest returns.
	Comparisons []*Comparison
	// Skipped annotates the values whose comparison is undefined on
	// this data (degenerate split, absent class, …) — or, on a partial
	// run, not attempted before the context expired.
	Skipped []ItemError
	// Partial is set when the context expired mid-run and
	// PartialOnDeadline allowed degradation.
	Partial bool
}

// CompareOneVsRestAll runs CompareOneVsRest for every value of attr in
// one call. Its complete cube working set is declared to the engine up
// front, so a lazy session answers the whole fan-out from a single
// shared dataset scan instead of one scan per cube; values whose
// comparison is undefined on the data are skipped, not fatal.
func (s *Session) CompareOneVsRestAll(attr, class string, opts CompareOptions) (*OneVsRestAllResult, error) {
	return s.CompareOneVsRestAllContext(context.Background(), attr, class, opts)
}

// CompareOneVsRestAllContext is CompareOneVsRestAll under a context.
// With opts.PartialOnDeadline set, a context that expires mid-run
// yields the values compared so far with Partial set and the rest
// annotated in Skipped; otherwise the call fails with the first error.
// Completed runs are memoized in the result cache, keyed like the
// other comparisons and invalidated by appends that touch a ranked
// attribute.
func (s *Session) CompareOneVsRestAllContext(ctx context.Context, attr, class string, opts CompareOptions) (*OneVsRestAllResult, error) {
	defer obsv.Stage(obsv.StageCompareOneVsRestAll)()
	s.mu.RLock()
	defer s.mu.RUnlock()
	src, err := s.requireSource()
	if err != nil {
		return nil, err
	}
	a := s.ds.AttrIndex(attr)
	if a < 0 {
		return nil, fmt.Errorf("opmap: unknown attribute %q", attr)
	}
	cls, ok := s.ds.ClassDict().Lookup(class)
	if !ok {
		return nil, fmt.Errorf("opmap: unknown class %q", class)
	}
	copts, err := s.compareOptions(opts)
	if err != nil {
		return nil, err
	}
	ver := s.results.Version()
	key := oneVsRestAllKey(a, cls, copts)
	if v, ok := s.results.Get(ver, key); ok {
		return s.wrapOneVsRestAll(attr, class, v.(*compare.OneVsRestAllResult)), nil
	}
	res, err := compare.NewSource(src).OneVsRestAllContext(ctx, a, cls, compare.OneVsRestAllOptions{Compare: copts})
	if err != nil {
		return nil, err
	}
	if !res.Partial {
		// Deps mirror compareDeps: an unrestricted run ranks every
		// attribute (nil deps = depends on all); a restricted one
		// depends on the split attribute plus the explicit candidates.
		s.results.PutDeps(ver, key, res, compareDeps(compare.Input{Attr: a}, copts))
	}
	return s.wrapOneVsRestAll(attr, class, res), nil
}

// wrapOneVsRestAll converts the internal all-values result to the
// public shape, orienting each per-value comparison's labels the same
// way CompareOneVsRest does.
func (s *Session) wrapOneVsRestAll(attr, class string, res *compare.OneVsRestAllResult) *OneVsRestAllResult {
	out := &OneVsRestAllResult{
		Attr:    attr,
		Skipped: toItemErrors(res.Skipped),
		Partial: res.Partial,
	}
	for i, r := range res.Results {
		value := res.Labels[i]
		l1, l2 := value, "rest"
		if r.Swapped { // the named value is the higher-confidence side
			l1, l2 = "rest", value
		}
		out.Comparisons = append(out.Comparisons, &Comparison{
			Attr:     attr,
			Label1:   l1,
			Label2:   l2,
			Cf1:      r.Cf1,
			Cf2:      r.Cf2,
			Ratio:    r.Ratio,
			Class:    class,
			Partial:  r.Partial,
			Unscored: toItemErrors(r.Unscored),
			res:      r,
		})
	}
	return out
}

// CompareWhere runs the comparison restricted to records matching every
// condition in where (attribute name → value label): the drill-down
// step after a first comparison isolates the context of the problem
// ("compare the two phones again, but only for morning calls"). It
// scans the raw data, so it needs the dataset, not just cubes.
func (s *Session) CompareWhere(attr, v1, v2, class string, where map[string]string, opts CompareOptions) (*Comparison, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, err := s.working(); err != nil {
		return nil, err
	}
	in, copts, err := s.resolve(attr, v1, v2, class, opts)
	if err != nil {
		return nil, err
	}
	var fixed []car.Condition
	for name, val := range where {
		a := s.ds.AttrIndex(name)
		if a < 0 {
			return nil, fmt.Errorf("opmap: unknown attribute %q in where clause", name)
		}
		code, ok := s.ds.Column(a).Dict.Lookup(val)
		if !ok {
			return nil, fmt.Errorf("opmap: attribute %q has no value %q", name, val)
		}
		fixed = append(fixed, car.Condition{Attr: a, Value: code})
	}
	sort.Slice(fixed, func(i, j int) bool { return fixed[i].Attr < fixed[j].Attr })
	res, err := compare.ScanWhere(s.ds, fixed, in, copts)
	if err != nil {
		return nil, err
	}
	return s.wrapComparison(attr, class, in, res), nil
}

// SaveCubes persists the materialized cube store (the paper's offline
// generation artifact) to w in a checksummed binary format.
func (s *Session) SaveCubes(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	store, err := s.requireStore()
	if err != nil {
		return err
	}
	return rulecube.WriteStore(w, store)
}

// SaveCubesFile is SaveCubes to a file path.
func (s *Session) SaveCubesFile(path string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	store, err := s.requireStore()
	if err != nil {
		return err
	}
	return rulecube.WriteStoreFile(path, store)
}

// OpenCubes builds a Session directly from a persisted cube store — no
// raw data needed. Comparisons, screening, impressions and views work;
// operations needing raw records (MineRules, CompareByScan,
// Completeness, re-Discretize) return errors.
func OpenCubes(r io.Reader) (*Session, error) {
	store, err := rulecube.ReadStore(r)
	if err != nil {
		return nil, err
	}
	return sessionFromStore(store), nil
}

// OpenCubesFile is OpenCubes from a file path.
func OpenCubesFile(path string) (*Session, error) {
	store, err := rulecube.ReadStoreFile(path)
	if err != nil {
		return nil, err
	}
	return sessionFromStore(store), nil
}

// sessionFromStore wires a persisted store into a ready Session with
// the eager engine and a fresh result cache.
func sessionFromStore(store *rulecube.Store) *Session {
	return &Session{
		raw:     store.Dataset(),
		ds:      store.Dataset(),
		store:   store,
		src:     engine.NewEager(store),
		results: engine.NewResultCache(0),
	}
}

// CubeStats summarizes the materialized cube store's size.
type CubeStats struct {
	Attributes   int
	Cubes        int
	Cells        int64 // total cells = rules represented
	Bytes        int64 // approximate count-array memory
	MaxCubeCells int64
}

// CubeStats reports the store's size (zero value before BuildCubes).
func (s *Session) CubeStats() CubeStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.store == nil {
		return CubeStats{}
	}
	st := s.store.Stats()
	return CubeStats{
		Attributes:   st.Attributes,
		Cubes:        st.Cubes,
		Cells:        st.Cells,
		Bytes:        st.Bytes,
		MaxCubeCells: st.MaxCubeCells,
	}
}

// SweepAttribute aggregates one attribute's appearances across the
// comparisons of a sweep.
type SweepAttribute struct {
	Name string
	// Pairs counts the compared pairs that ranked the attribute among
	// their top distinguishing attributes; a high count indicates a
	// systemic cause, a count of one a product-specific cause.
	Pairs      int
	BestScore  float64
	BestPair   [2]string
	TotalScore float64
}

// SweepResult is the aggregate of Sweep.
type SweepResult struct {
	PairsCompared int
	PairsSkipped  int
	Attributes    []SweepAttribute
	// Partial is set when the sweep stopped early because the context
	// expired (SweepPartial only); the pairs not compared are annotated
	// in Errors.
	Partial bool
	Errors  []ItemError
}

// Sweep screens every value pair of attr on the class and compares each
// significant pair, aggregating which attributes recur as the
// explanation — separating systemic causes (many pairs) from
// product-specific ones (one pair). maxPairs ≤ 0 compares every
// significant pair.
func (s *Session) Sweep(attr, class string, maxPairs int) (*SweepResult, error) {
	return s.SweepContext(context.Background(), attr, class, maxPairs)
}

// SweepContext is Sweep under a context. It is strict: cancellation
// mid-sweep fails with ctx.Err(). Use SweepPartial to degrade to a
// partial aggregate instead.
func (s *Session) SweepContext(ctx context.Context, attr, class string, maxPairs int) (*SweepResult, error) {
	return s.sweep(ctx, attr, class, maxPairs, false)
}

// SweepPartial is SweepContext with graceful degradation: when the
// context expires mid-sweep the pairs compared so far are aggregated
// and returned with SweepResult.Partial set and the skipped pairs
// annotated in SweepResult.Errors.
func (s *Session) SweepPartial(ctx context.Context, attr, class string, maxPairs int) (*SweepResult, error) {
	return s.sweep(ctx, attr, class, maxPairs, true)
}

func (s *Session) sweep(ctx context.Context, attr, class string, maxPairs int, partial bool) (*SweepResult, error) {
	defer obsv.Stage(obsv.StageSweep)()
	res, err := s.sweepInternal(ctx, attr, class, maxPairs, partial)
	if err != nil {
		return nil, err
	}
	return toSweepResult(res), nil
}

// toSweepResult converts the internal sweep result to the public type.
func toSweepResult(res *compare.SweepResult) *SweepResult {
	out := &SweepResult{
		PairsCompared: res.PairsCompared,
		PairsSkipped:  res.PairsSkipped,
		Partial:       res.Partial,
		Errors:        toItemErrors(res.Errors),
	}
	for _, sa := range res.Attributes {
		out.Attributes = append(out.Attributes, SweepAttribute{
			Name:       sa.Name,
			Pairs:      sa.Pairs,
			BestScore:  sa.BestScore,
			BestPair:   sa.BestPair,
			TotalScore: sa.TotalScore,
		})
	}
	return out
}

// sweepInternal resolves names, consults the result cache, and runs
// the screen-then-compare loop. A completed (non-partial) sweep is
// memoized; the partial flag is not part of the cache identity because
// it only changes degradation behaviour, never a completed result.
// The entry is stored with nil deps (depends-on-all): a sweep ranks
// every attribute, so an append touching any non-class attribute must
// invalidate it — which BumpAttrs does for nil-deps entries.
func (s *Session) sweepInternal(ctx context.Context, attr, class string, maxPairs int, partial bool) (*compare.SweepResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	src, err := s.requireSource()
	if err != nil {
		return nil, err
	}
	a := s.ds.AttrIndex(attr)
	if a < 0 {
		return nil, fmt.Errorf("opmap: unknown attribute %q", attr)
	}
	cls, ok := s.ds.ClassDict().Lookup(class)
	if !ok {
		return nil, fmt.Errorf("opmap: unknown class %q", class)
	}
	ver := s.results.Version()
	key := sweepKey(a, cls, maxPairs)
	if v, ok := s.results.Get(ver, key); ok {
		return v.(*compare.SweepResult), nil
	}
	opts := compare.SweepOptions{Partial: partial}
	if maxPairs > 0 {
		opts.Screen.MaxPairs = maxPairs
	}
	res, err := compare.NewSource(src).SweepContext(ctx, a, cls, opts)
	if err != nil {
		return nil, err
	}
	if !res.Partial {
		s.results.Put(ver, key, res)
	}
	return res, nil
}

// WriteSweepReport renders a Markdown report of a sweep over attr's
// value pairs on the class: the systemic-vs-specific summary.
func (s *Session) WriteSweepReport(w io.Writer, attr, class string, maxPairs int, opts ReportOptions) error {
	res, err := s.sweepInternal(context.Background(), attr, class, maxPairs, false)
	if err != nil {
		return err
	}
	return report.Sweep(w, attr, class, res, report.Options{
		Title:     opts.Title,
		TopN:      opts.TopN,
		Generated: opts.Timestamp,
	})
}

// SignificanceResult reports a permutation test of one attribute's
// interestingness score.
type SignificanceResult struct {
	Attr     string
	Observed float64 // M on the real split
	PValue   float64 // chance of reaching Observed under random splits
	NullMean float64
	NullQ95  float64
	Rounds   int
}

// TestSignificance runs a permutation test: how often does a random
// reassignment of records between the two sub-populations reach the
// candidate attribute's observed M? Use it to decide how deep into a
// ranking to trust. rounds ≤ 0 means 200. Requires raw data (scans).
func (s *Session) TestSignificance(attr, v1, v2, class, candidate string, rounds int, seed int64) (SignificanceResult, error) {
	return s.TestSignificanceContext(context.Background(), attr, v1, v2, class, candidate, rounds, seed)
}

// TestSignificanceContext is TestSignificance under a context, checked
// once per permutation round; cancellation returns ctx.Err().
func (s *Session) TestSignificanceContext(ctx context.Context, attr, v1, v2, class, candidate string, rounds int, seed int64) (SignificanceResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, err := s.working(); err != nil {
		return SignificanceResult{}, err
	}
	in, copts, err := s.resolve(attr, v1, v2, class, CompareOptions{})
	if err != nil {
		return SignificanceResult{}, err
	}
	cand := s.ds.AttrIndex(candidate)
	if cand < 0 {
		return SignificanceResult{}, fmt.Errorf("opmap: unknown attribute %q", candidate)
	}
	res, err := compare.PermutationTestContext(ctx, s.ds, in, cand, rounds, seed, copts)
	if err != nil {
		return SignificanceResult{}, err
	}
	return SignificanceResult{
		Attr:     res.AttrName,
		Observed: res.Observed,
		PValue:   res.PValue,
		NullMean: res.NullMean,
		NullQ95:  res.NullQ95,
		Rounds:   res.Rounds,
	}, nil
}

// Explore runs an interactive exploration session (the deployed
// system's GUI workflow as a line-oriented REPL): overview → detail →
// pairs → compare → focus, with navigation history. Commands are read
// from r until EOF or "quit"; see the REPL's "help" for the command
// language. Rule cubes must be built.
func (s *Session) Explore(r io.Reader, w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	store, err := s.requireStore()
	if err != nil {
		return err
	}
	return explore.New(store).Run(r, w)
}

// ExploreScript executes a newline-separated command script against an
// exploration session, writing the transcript to w (the scriptable
// variant of Explore).
func (s *Session) ExploreScript(script string, w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	store, err := s.requireStore()
	if err != nil {
		return err
	}
	return explore.New(store).RunScript(script, w)
}

// Describe writes a per-attribute profile of the loaded data: domain
// sizes, top values, missing rates, continuous ranges, and the class
// skew that motivates unbalanced sampling.
func (s *Session) Describe(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return dataset.Describe(s.raw).Write(w)
}

// DownsampleMajority keeps only keepFraction of the majority class
// (everything else in full), the paper's pre-mining rebalancing step for
// heavily skewed data (Section I). It must run before BuildCubes;
// existing cubes are invalidated.
func (s *Session) DownsampleMajority(keepFraction float64, seed int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sampled, err := dataset.UnbalancedSample(s.raw, dataset.SampleOptions{
		Seed:         seed,
		KeepFraction: keepFraction,
	})
	if err != nil {
		return err
	}
	s.raw = sampled
	if s.ds != nil && s.raw.AllCategorical() {
		s.ds = sampled
	} else {
		s.ds = nil // re-discretize on the sampled data
	}
	s.dropEngine()
	return nil
}

// ReportOptions controls WriteReport.
type ReportOptions struct {
	Title string
	// TopN limits the attributes detailed in full; zero means 5.
	TopN int
	// Timestamp stamps the report header when non-zero.
	Timestamp time.Time
	// IncludeImpressions appends the GI-miner appendix.
	IncludeImpressions bool
}

// WriteReport renders a Markdown report of the comparison, suitable for
// handing to the engineers who investigate the findings.
func (s *Session) WriteReport(w io.Writer, cmp *Comparison, opts ReportOptions) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ropts := report.Options{
		Title:     opts.Title,
		TopN:      opts.TopN,
		Generated: opts.Timestamp,
	}
	if opts.IncludeImpressions {
		src, err := s.requireSource()
		if err != nil {
			return err
		}
		rep, err := gi.MineAllSource(context.Background(), src, gi.TrendOptions{}, gi.ExceptionOptions{})
		if err != nil {
			return err
		}
		ropts.Impressions = rep
	}
	return report.Comparison(w, cmp.res, cmp.Attr, cmp.Label1, cmp.Label2, cmp.Class, ropts)
}
