package opmap

import (
	"bytes"
	"strings"
	"testing"
)

// caseStudySession builds (once per test binary) a moderately sized
// call-log session with cubes, shared by the API tests.
func caseStudySession(t testing.TB) (*Session, CallLogTruth) {
	t.Helper()
	s, gt, err := GenerateCallLog(CallLogConfig{Seed: 77, Records: 30000, NumPhones: 6, NoiseAttrs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Discretize(DiscretizeOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := s.BuildCubes(); err != nil {
		t.Fatal(err)
	}
	return s, gt
}

func TestSessionBasics(t *testing.T) {
	s, gt := caseStudySession(t)
	if s.NumRows() != 30000 {
		t.Errorf("rows = %d", s.NumRows())
	}
	if s.ClassAttribute() != "Disposition" {
		t.Errorf("class attr = %q", s.ClassAttribute())
	}
	classes := s.Classes()
	if len(classes) != 3 {
		t.Errorf("classes = %v", classes)
	}
	attrs := s.Attributes()
	if len(attrs) != 10 { // 5 planted + 4 noise + class
		t.Errorf("attrs = %d: %v", len(attrs), attrs)
	}
	vals, err := s.Values(gt.PhoneAttr)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 6 {
		t.Errorf("phone values = %v", vals)
	}
	if _, err := s.Values("nope"); err == nil {
		t.Error("unknown attribute should fail")
	}
	dist := s.ClassDistribution()
	var total int64
	for _, n := range dist {
		total += n
	}
	if total != 30000 {
		t.Errorf("class distribution sums to %d", total)
	}
	// 9 attrs → 9 + 36 cubes.
	if s.CubeCount() != 45 {
		t.Errorf("CubeCount = %d, want 45", s.CubeCount())
	}
	if s.RuleSpaceSize() == 0 {
		t.Error("rule space size should be positive")
	}
}

func TestCompareEndToEnd(t *testing.T) {
	s, gt := caseStudySession(t)
	cmp, err := s.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Cf1 >= cmp.Cf2 {
		t.Errorf("orientation broken: cf1=%v cf2=%v", cmp.Cf1, cmp.Cf2)
	}
	top := cmp.Top(3)
	if len(top) == 0 || top[0].Name != gt.DistinguishingAttr {
		t.Fatalf("top = %+v, want %q first", top, gt.DistinguishingAttr)
	}
	if rank, ok := cmp.Rank(gt.DistinguishingAttr); !ok || rank != 1 {
		t.Errorf("Rank(%q) = %d,%v", gt.DistinguishingAttr, rank, ok)
	}
	props := cmp.PropertyAttributes()
	foundProp := false
	for _, p := range props {
		if p.Name == gt.PropertyAttr {
			foundProp = true
		}
	}
	if !foundProp {
		t.Errorf("property attribute %q missing from %v", gt.PropertyAttr, props)
	}
	// Detail breakdown available.
	score, ok := cmp.Attribute(gt.DistinguishingAttr)
	if !ok || len(score.Values) != 3 {
		t.Errorf("breakdown = %+v", score)
	}
	if s := cmp.String(); !strings.Contains(s, gt.PhoneAttr) {
		t.Errorf("String() = %q", s)
	}
}

func TestCompareSwappedInputOrientation(t *testing.T) {
	s, gt := caseStudySession(t)
	// Passing (bad, good) must orient identically to (good, bad).
	a, err := s.Compare(gt.PhoneAttr, gt.BadPhone, gt.GoodPhone, gt.DropClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Label1 != b.Label1 || a.Label2 != b.Label2 {
		t.Errorf("orientation differs: (%s,%s) vs (%s,%s)", a.Label1, a.Label2, b.Label1, b.Label2)
	}
	if a.Ranked()[0].Name != b.Ranked()[0].Name {
		t.Error("rankings differ under input order")
	}
}

func TestCompareByScanAgrees(t *testing.T) {
	s, gt := caseStudySession(t)
	a, err := s.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.CompareByScan(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Ranked(), b.Ranked()
	if len(ra) != len(rb) {
		t.Fatal("lengths differ")
	}
	for i := range ra {
		if ra[i].Name != rb[i].Name {
			t.Fatalf("rank %d differs: %s vs %s", i, ra[i].Name, rb[i].Name)
		}
	}
}

func TestCompareErrors(t *testing.T) {
	s, gt := caseStudySession(t)
	if _, err := s.Compare("nope", "a", "b", gt.DropClass, CompareOptions{}); err == nil {
		t.Error("unknown attribute should fail")
	}
	if _, err := s.Compare(gt.PhoneAttr, "nope", gt.BadPhone, gt.DropClass, CompareOptions{}); err == nil {
		t.Error("unknown value should fail")
	}
	if _, err := s.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, "nope", CompareOptions{}); err == nil {
		t.Error("unknown class should fail")
	}
	if _, err := s.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{Attrs: []string{"nope"}}); err == nil {
		t.Error("unknown restricted attribute should fail")
	}
	// Comparing without cubes.
	s2, _, err := GenerateCallLog(CallLogConfig{Seed: 1, Records: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{}); err == nil {
		t.Error("comparison before BuildCubes should fail")
	}
	// But scan works without cubes (categorical data needs no Discretize).
	if _, err := s2.CompareByScan(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{}); err != nil {
		t.Errorf("scan without cubes should work: %v", err)
	}
}

func TestCompareOptionPlumbing(t *testing.T) {
	s, gt := caseStudySession(t)
	base, err := s.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	noCI, err := s.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{DisableCI: true})
	if err != nil {
		t.Fatal(err)
	}
	// CI off yields ≥ scores (raw differences are never smaller than the
	// interval-shrunk ones).
	b0, n0 := base.Ranked()[0], noCI.Ranked()[0]
	if n0.Score < b0.Score {
		t.Errorf("no-CI score %v < CI score %v", n0.Score, b0.Score)
	}
	wilson, err := s.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{WilsonIntervals: true})
	if err != nil {
		t.Fatal(err)
	}
	if wilson.Ranked()[0].Score == base.Ranked()[0].Score {
		t.Log("wilson equals wald (possible but unlikely); not failing")
	}
	level99, err := s.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{ConfidenceLevel: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if level99.Ranked()[0].Score > base.Ranked()[0].Score {
		t.Error("a stricter level must not raise scores")
	}
	restricted, err := s.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass,
		CompareOptions{Attrs: []string{gt.DistinguishingAttr}})
	if err != nil {
		t.Fatal(err)
	}
	if len(restricted.Ranked())+len(restricted.PropertyAttributes()) != 1 {
		t.Error("Attrs restriction not honored")
	}
}

func TestRenderingAPIs(t *testing.T) {
	s, gt := caseStudySession(t)
	cmp, err := s.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cmp.RenderRanking(&buf, 5)
	if !strings.Contains(buf.String(), gt.DistinguishingAttr) {
		t.Error("ranking render missing top attribute")
	}
	buf.Reset()
	if err := cmp.RenderAttribute(&buf, gt.DistinguishingAttr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "morning") {
		t.Error("attribute render missing values")
	}
	buf.Reset()
	if err := cmp.RenderAttributeSVG(&buf, gt.DistinguishingAttr); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "<svg") {
		t.Error("SVG render broken")
	}
	if err := cmp.RenderAttribute(&buf, "nope"); err == nil {
		t.Error("unknown attribute render should fail")
	}
	buf.Reset()
	if err := s.RenderOverall(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Overall visualization") {
		t.Error("overall render broken")
	}
	buf.Reset()
	if err := s.RenderDetailed(&buf, gt.PhoneAttr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), gt.GoodPhone) {
		t.Error("detailed render broken")
	}
	buf.Reset()
	if err := s.RenderDetailedSVG(&buf, gt.PhoneAttr); err != nil {
		t.Fatal(err)
	}
	if err := s.RenderDetailed(&buf, "nope"); err == nil {
		t.Error("unknown attribute should fail")
	}
}

func TestMineRulesAPI(t *testing.T) {
	s, gt := caseStudySession(t)
	rules, err := s.MineRules(MineOptions{MinSupport: 0.01, MinConfidence: 0.5, MaxConditions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules mined")
	}
	for _, r := range rules {
		if r.Confidence < 0.5 {
			t.Fatalf("rule %v below min confidence", r)
		}
		if r.String() == "" {
			t.Fatal("empty rule rendering")
		}
	}
	// Restricted mining.
	fixed, err := s.MineRules(MineOptions{Fixed: map[string]string{gt.PhoneAttr: gt.BadPhone}, MaxConditions: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fixed {
		has := false
		for _, c := range r.Conditions {
			if c.Attr == gt.PhoneAttr && c.Value == gt.BadPhone {
				has = true
			}
		}
		if !has {
			t.Fatalf("rule %v lacks fixed condition", r)
		}
	}
	if _, err := s.MineRules(MineOptions{Fixed: map[string]string{"nope": "x"}}); err == nil {
		t.Error("unknown fixed attribute should fail")
	}
	if _, err := s.MineRules(MineOptions{Fixed: map[string]string{gt.PhoneAttr: "nope"}}); err == nil {
		t.Error("unknown fixed value should fail")
	}
	if _, err := s.MineRules(MineOptions{Attrs: []string{"nope"}}); err == nil {
		t.Error("unknown attrs should fail")
	}
}

func TestRankRulesAPI(t *testing.T) {
	s, _ := caseStudySession(t)
	ranked, err := s.RankRules("lift", MineOptions{MinSupport: 0.01, MaxConditions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 {
		t.Fatal("no ranked rules")
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Value > ranked[i-1].Value+1e-12 {
			t.Fatal("not sorted")
		}
	}
	if _, err := s.RankRules("nope", MineOptions{}); err == nil {
		t.Error("unknown measure should fail")
	}
}

func TestImpressionsAPI(t *testing.T) {
	s, gt := caseStudySession(t)
	imp, err := s.Impressions(ImpressionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(imp.Influential) == 0 {
		t.Fatal("no influential attributes")
	}
	// Phone model and time-of-call are the class drivers; they should
	// top the influence ranking ahead of noise.
	top2 := map[string]bool{imp.Influential[0].Attr: true, imp.Influential[1].Attr: true}
	if !top2[gt.PhoneAttr] && !top2[gt.DistinguishingAttr] && !top2[gt.PropertyAttr] {
		t.Errorf("influence top-2 = %v, expected planted attributes", imp.Influential[:2])
	}
}

func TestCubeExceptionsAPI(t *testing.T) {
	s, _ := caseStudySession(t)
	exs, err := s.CubeExceptions(2.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(exs); i++ {
		a, b := exs[i].SelfExp, exs[i-1].SelfExp
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		if a > b+1e-12 {
			t.Fatal("exceptions not sorted by |SelfExp|")
		}
	}
}

func TestCompletenessAPI(t *testing.T) {
	s, _ := caseStudySession(t)
	rep, err := s.Completeness(2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CARRules <= rep.TreeRules {
		t.Errorf("CAR rules (%d) should far exceed tree rules (%d)", rep.CARRules, rep.TreeRules)
	}
	if rep.TreeAccuracy < 0.9 {
		t.Errorf("tree accuracy = %v", rep.TreeAccuracy)
	}
}

func TestLoadCSVSession(t *testing.T) {
	csv := "Phone,Time,Disposition\nph1,morning,ok\nph1,evening,drop\nph2,morning,drop\nph2,evening,ok\n"
	s, err := LoadCSV(strings.NewReader(csv), LoadOptions{Class: "Disposition"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Discretize(DiscretizeOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := s.BuildCubes(); err != nil {
		t.Fatal(err)
	}
	if s.CubeCount() != 3 {
		t.Errorf("CubeCount = %d", s.CubeCount())
	}
	if _, err := LoadCSV(strings.NewReader("bad"), LoadOptions{}); err == nil {
		t.Log("header-only CSV loads as empty dataset; acceptable")
	}
}

func TestBuildCubesForSubset(t *testing.T) {
	s, gt := caseStudySession(t)
	if err := s.BuildCubesFor([]string{gt.PhoneAttr, gt.DistinguishingAttr}); err != nil {
		t.Fatal(err)
	}
	if s.CubeCount() != 3 {
		t.Errorf("CubeCount = %d, want 3", s.CubeCount())
	}
	if err := s.BuildCubesFor([]string{"nope"}); err == nil {
		t.Error("unknown attribute should fail")
	}
}

func TestManufacturingPipelineWithDiscretization(t *testing.T) {
	s, truth, err := GenerateManufacturing(5, 30000)
	if err != nil {
		t.Fatal(err)
	}
	// Cubes before discretization must fail helpfully.
	if err := s.BuildCubes(); err == nil {
		t.Fatal("BuildCubes should fail on continuous data")
	}
	if err := s.Discretize(DiscretizeOptions{Method: EqualFrequency, Bins: 4}); err != nil {
		t.Fatal(err)
	}
	cuts := s.Cuts()
	for _, n := range truth.ContinuousAttrs {
		if _, ok := cuts[n]; !ok {
			t.Errorf("no cuts recorded for %q", n)
		}
	}
	if err := s.BuildCubes(); err != nil {
		t.Fatal(err)
	}
	cmp, err := s.Compare(truth.MachineAttr, truth.GoodMachine, truth.BadMachine, truth.DefectClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Ranked()[0].Name != truth.DistinguishingAttr {
		t.Errorf("top attribute = %q, want %q", cmp.Ranked()[0].Name, truth.DistinguishingAttr)
	}
	// The tool revision must be recognized as a property attribute.
	found := false
	for _, p := range cmp.PropertyAttributes() {
		if p.Name == truth.PropertyAttr {
			found = true
		}
	}
	if !found {
		t.Errorf("property attribute %q not detected", truth.PropertyAttr)
	}
}

func TestManualDiscretization(t *testing.T) {
	s, truth, err := GenerateManufacturing(6, 5000)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Discretize(DiscretizeOptions{
		Method: EqualWidth,
		Bins:   3,
		Manual: map[string][]float64{"Humidity": {70}},
	})
	if err != nil {
		t.Fatal(err)
	}
	hCuts := s.Cuts()["Humidity"]
	if len(hCuts) != 1 || hCuts[0] != 70 {
		t.Errorf("Humidity cuts = %v, want [70]", hCuts)
	}
	// Non-manual attribute used the fallback (3 bins → 2 cuts).
	tCuts := s.Cuts()["Temperature"]
	if len(tCuts) != 2 {
		t.Errorf("Temperature cuts = %v, want 2 cuts", tCuts)
	}
	_ = truth
}

func TestDiscretizeNoOpOnCategorical(t *testing.T) {
	s, _, err := GenerateCallLog(CallLogConfig{Seed: 1, Records: 500})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Discretize(DiscretizeOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(s.Cuts()) != 0 {
		t.Error("categorical dataset should produce no cuts")
	}
}

func TestCaseStudyFactory(t *testing.T) {
	s, gt, err := CaseStudy(3, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Attributes()) != 41 {
		t.Errorf("case study attrs = %d, want 41 (paper Section V.B)", len(s.Attributes()))
	}
	if gt.DistinguishingAttr == "" {
		t.Error("ground truth empty")
	}
}
