// Command opmapbench exercises every instrumented pipeline stage over
// the synthetic call-log case study and writes the recorded stage
// timings as JSON — the benchmark artifact (BENCH_*.json) tracking how
// long the paper's steps take as the codebase grows. Hot-path
// instrumentation is armed, so the per-cube-build and per-attribute
// compare histograms are populated too.
//
// Usage:
//
//	opmapbench -records 20000 -seed 1 -rounds 50 -out BENCH.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"opmap"
	"opmap/internal/atomicfile"
	"opmap/internal/compare"
	"opmap/internal/engine"
	"opmap/internal/obsv"
	"opmap/internal/rulecube"
	"opmap/internal/wal"
	"opmap/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("opmapbench: ")
	var (
		records = flag.Int("records", 20000, "synthetic call-log records")
		seed    = flag.Int64("seed", 1, "generator seed")
		rounds  = flag.Int("rounds", 50, "permutation test rounds")
		out     = flag.String("out", "BENCH.json", "output file (- for stdout)")
		prev    = flag.String("prev", "", "previous artifact to gate against (skipped when absent)")
		maxReg  = flag.Float64("max-regress", 0.30, "fail when a headline metric regresses more than this fraction vs -prev")
		minScan = flag.Float64("min-scan-reduction", 5.0, "fail when the shared scan does not cut dataset scans by this factor vs the per-pair baseline")
		minBsp  = flag.Float64("min-batch-speedup", 1.0, "fail when the shared-scan build is not this many times faster than the per-pair rebuild baseline (wall clock; scale with core count)")
	)
	flag.Parse()
	if err := run(*records, *seed, *rounds, *out, *prev, *maxReg, *minScan, *minBsp); err != nil {
		log.Fatal(err)
	}
}

// benchDoc is the written artifact: per-stage durations plus the
// hot-path histograms, all taken from the process metrics registry so
// the bench measures exactly what /metrics would report.
type benchDoc struct {
	Records int                   `json:"records"`
	Seed    int64                 `json:"seed"`
	Rounds  int                   `json:"perm_rounds"`
	Stages  map[string]stageStats `json:"stages"`
	Hot     map[string]stageStats `json:"hot"`
	Engine  engineBench           `json:"engine"`
	Snap    snapshotBench         `json:"snapshot"`
	Ingest  ingestBench           `json:"ingest"`
	Batch   batchBench            `json:"batch"`
	Shard   shardBench            `json:"shard"`
	Drill   drillBench            `json:"drilldown"`
	Calib   calibBench            `json:"calibration"`
	// Notes records run conditions the numbers alone cannot show —
	// which previous artifact the regression gate compared against, or
	// why it was skipped.
	Notes []string `json:"notes,omitempty"`
}

// calibBench records machine-speed canaries measured in the same run
// as the headline metrics: a fixed CPU work loop and a fixed
// write+fsync loop. The regression gate divides wall-clock deltas by
// the matching canary ratio before applying its threshold, so that
// container load or disk contention between two artifacts (observed
// drifting disk-bound metrics 40-70% with zero code change) does not
// read as a code regression. Artifacts written before this field
// existed decode it as zero, which downgrades their comparisons to
// advisory warnings.
type calibBench struct {
	CPUMs  float64 `json:"cpu_ms"`
	DiskMs float64 `json:"disk_ms"`
}

// calibSink defeats dead-code elimination of the CPU canary loop.
var calibSink uint64

// benchCalib runs the two canaries. The CPU loop is a fixed xorshift
// mix (no allocation, no memory traffic beyond registers); the disk
// loop is the WAL's own durability pattern — write a block, fsync —
// against a throwaway temp file.
func benchCalib() (calibBench, error) {
	var cb calibBench

	start := time.Now()
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 1<<25; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	calibSink = x
	cb.CPUMs = msSince(start)

	f, err := os.CreateTemp("", "opmapbench-calib-*")
	if err != nil {
		return cb, fmt.Errorf("disk calibration: %w", err)
	}
	defer os.Remove(f.Name())
	defer func() { _ = f.Close() }() // canary file, nothing durable to lose
	block := make([]byte, 64<<10)
	start = time.Now()
	for i := 0; i < 16; i++ {
		if _, err := f.Write(block); err != nil {
			return cb, fmt.Errorf("disk calibration: %w", err)
		}
		if err := f.Sync(); err != nil {
			return cb, fmt.Errorf("disk calibration: %w", err)
		}
	}
	cb.DiskMs = msSince(start)
	return cb, nil
}

// bestOfRuns is how many times the single-shot sections (engine,
// snapshot, ingest, shard, drilldown) repeat, keeping the fastest
// observation per number. A lone millisecond-scale measurement on a
// shared container swings 30%+ between identical binaries — enough to
// trip the regression gate with zero code change, which the
// calibration canaries cannot catch when the contention is
// intermittent rather than sustained. The fastest observation is the
// one least polluted by scheduler noise, so it is the number two
// artifacts can fairly compare. The batch section stays single-run:
// its gated figures are ratios of two timings from the same run, so
// shared noise divides out.
const bestOfRuns = 3

// keepMin lowers *dst to v when v is smaller.
func keepMin(dst *float64, v float64) {
	if v < *dst {
		*dst = v
	}
}

func benchEngineBest(ctx context.Context, records int, seed int64) (engineBench, error) {
	best, err := benchEngine(ctx, records, seed)
	if err != nil {
		return best, err
	}
	for i := 1; i < bestOfRuns; i++ {
		eb, err := benchEngine(ctx, records, seed)
		if err != nil {
			return best, err
		}
		keepMin(&best.EagerBuildMs, eb.EagerBuildMs)
		keepMin(&best.LazyReadyMs, eb.LazyReadyMs)
		keepMin(&best.EagerCompareMs, eb.EagerCompareMs)
		keepMin(&best.LazyColdCompareMs, eb.LazyColdCompareMs)
		keepMin(&best.LazyWarmCompareMs, eb.LazyWarmCompareMs)
	}
	return best, nil
}

func benchSnapshotBest(ctx context.Context, records int, seed int64) (snapshotBench, error) {
	best, err := benchSnapshot(ctx, records, seed)
	if err != nil {
		return best, err
	}
	for i := 1; i < bestOfRuns; i++ {
		sb, err := benchSnapshot(ctx, records, seed)
		if err != nil {
			return best, err
		}
		keepMin(&best.ColdBuildMs, sb.ColdBuildMs)
		keepMin(&best.SaveMs, sb.SaveMs)
		keepMin(&best.LoadMs, sb.LoadMs)
	}
	if best.LoadMs > 0 {
		best.LoadSpeedup = best.ColdBuildMs / best.LoadMs
	}
	return best, nil
}

func benchShardBest(ctx context.Context, records int) (shardBench, error) {
	best, err := benchShard(ctx, records)
	if err != nil {
		return best, err
	}
	for i := 1; i < bestOfRuns; i++ {
		sb, err := benchShard(ctx, records)
		if err != nil {
			return best, err
		}
		keepMin(&best.SinglePassMs, sb.SinglePassMs)
		for j := range best.Runs {
			if j >= len(sb.Runs) || best.Runs[j].Shards != sb.Runs[j].Shards {
				continue
			}
			keepMin(&best.Runs[j].MaxShardBuildMs, sb.Runs[j].MaxShardBuildMs)
			keepMin(&best.Runs[j].MergeMs, sb.Runs[j].MergeMs)
			keepMin(&best.Runs[j].EndToEndMs, sb.Runs[j].EndToEndMs)
		}
	}
	for j := range best.Runs {
		if best.Runs[j].EndToEndMs > 0 {
			best.Runs[j].SpeedupVsSingle = best.SinglePassMs / best.Runs[j].EndToEndMs
		}
	}
	return best, nil
}

func benchIngestBest(records int) (ingestBench, error) {
	best, err := benchIngest(records)
	if err != nil {
		return best, err
	}
	for i := 1; i < bestOfRuns; i++ {
		ib, err := benchIngest(records)
		if err != nil {
			return best, err
		}
		if ib.RowsPerSec > best.RowsPerSec {
			best.RowsPerSec = ib.RowsPerSec
		}
		keepMin(&best.AppendP50Ms, ib.AppendP50Ms)
		keepMin(&best.AppendP90Ms, ib.AppendP90Ms)
		keepMin(&best.ReplayMs, ib.ReplayMs)
		keepMin(&best.ReplayMsPer1M, ib.ReplayMsPer1M)
	}
	return best, nil
}

func benchDrillBest(ctx context.Context, records int, seed int64) (drillBench, error) {
	best, err := benchDrill(ctx, records, seed)
	if err != nil {
		return best, err
	}
	for i := 1; i < bestOfRuns; i++ {
		db, err := benchDrill(ctx, records, seed)
		if err != nil {
			return best, err
		}
		keepMin(&best.ColdMs, db.ColdMs)
		keepMin(&best.WarmMs, db.WarmMs)
	}
	return best, nil
}

// batchBench contrasts the shared-scan batch comparison engine with
// its sequential alternatives over identical data, each from a cold
// lazy engine. PerPair* is the pre-batch cost model (one independent
// counted build — one dataset scan — per cube in the sweep's working
// set); Seq* is the sequential sweep loop, which still reuses cubes
// through the engine cache; Batch* is the shared-scan path, which must
// cover the whole working set in exactly one dataset scan.
type batchBench struct {
	Cubes          int64   `json:"cubes"`
	BatchBuildMs   float64 `json:"batch_build_ms"`
	PerPairBuildMs float64 `json:"per_pair_build_ms"`
	PerPairScans   int64   `json:"per_pair_scans"`
	BatchSweepMs   float64 `json:"batch_sweep_ms"`
	BatchScans     int64   `json:"batch_scans"`
	SeqSweepMs     float64 `json:"seq_sweep_ms"`
	SeqScans       int64   `json:"seq_scans"`
	AllValuesMs    float64 `json:"all_values_ms"`
	AllValuesScans int64   `json:"all_values_scans"`
	// ScanReduction is per_pair_scans / batch_scans: how many dataset
	// passes the shared scan saves for the working set. It is the
	// machine-independent criterion; the wall-clock ratios below depend
	// on core count, because the per-row tally work is per-cube in both
	// paths and only the pass itself is shared (and sharded).
	ScanReduction float64 `json:"scan_reduction"`
	// SpeedupVsPerPair is per_pair_build_ms / batch_build_ms: the
	// wall-clock ratio of N independent builds to the one shared scan.
	// SpeedupVsSeq is the end-to-end sweep ratio, where the sequential
	// loop already amortizes builds through the engine cache.
	SpeedupVsPerPair float64 `json:"speedup_vs_per_pair"`
	SpeedupVsSeq     float64 `json:"speedup_vs_seq"`
}

// shardBench contrasts the row-sharded build (BuildSharded) with the
// single-pass build over identical data: per-shard build cost, the
// cost of folding the partial stores together, and the parallel
// end-to-end wall clock, at 2, 4 and 8 shards. Merging is exact
// (contingency counts are additive), so the sharded session serves
// the same answers — the bench tracks only what the sharding costs
// and buys.
type shardBench struct {
	Rows         int        `json:"rows"`
	SinglePassMs float64    `json:"single_pass_ms"`
	Runs         []shardRun `json:"runs"`
}

// shardRun is one shard count: MaxShardBuildMs is the slowest shard's
// load+build (the critical path of a perfectly parallel fleet),
// MergeMs the sequential fold of the partial sessions, EndToEndMs the
// actual BuildSharded wall clock with a worker pool.
type shardRun struct {
	Shards          int     `json:"shards"`
	MaxShardBuildMs float64 `json:"max_shard_build_ms"`
	MergeMs         float64 `json:"merge_ms"`
	EndToEndMs      float64 `json:"end_to_end_ms"`
	SpeedupVsSingle float64 `json:"speedup_vs_single_pass"`
}

// ingestBench measures the streaming append path: sustained durable
// throughput (WAL append + fsync + incremental cube maintenance per
// batch), the per-batch latency distribution, and how fast a restart
// replays the log it just wrote.
type ingestBench struct {
	Rows        int     `json:"rows"`
	BatchRows   int     `json:"batch_rows"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	AppendP50Ms float64 `json:"append_p50_ms"`
	AppendP90Ms float64 `json:"append_p90_ms"`
	WalBytes    int64   `json:"wal_bytes"`
	ReplayMs    float64 `json:"replay_ms"`
	// ReplayMsPer1M extrapolates the measured replay rate to one
	// million records, the artifact's comparable unit across runs.
	ReplayMsPer1M float64 `json:"replay_ms_per_1m_records"`
}

// snapshotBench contrasts a cold start (build every cube from raw
// rows) with a warm start (load the snapshot written by the previous
// run) — the daemon's -snapshot-dir trade: one save per source
// version buys every later startup the load path.
type snapshotBench struct {
	ColdBuildMs   float64 `json:"cold_build_ms"`
	SaveMs        float64 `json:"save_ms"`
	LoadMs        float64 `json:"load_ms"`
	SnapshotBytes int64   `json:"snapshot_bytes"`
	// LoadSpeedup is cold_build_ms / load_ms: how many times faster a
	// warm start is than rebuilding.
	LoadSpeedup float64 `json:"load_speedup_vs_build"`
}

// engineBench contrasts the two build modes over identical data: what
// eager pays up front, what lazy pays on the first query, and what a
// repeated query costs once the result cache is warm.
type engineBench struct {
	EagerBuildMs      float64 `json:"eager_build_ms"`
	LazyReadyMs       float64 `json:"lazy_ready_ms"`
	EagerCompareMs    float64 `json:"eager_compare_ms"`
	LazyColdCompareMs float64 `json:"lazy_cold_compare_ms"`
	LazyWarmCompareMs float64 `json:"lazy_warm_compare_ms"`
	LazyTwoDBuilds    int64   `json:"lazy_twod_builds"`
	LazyCubeBytes     int64   `json:"lazy_cube_bytes"`
}

type stageStats struct {
	Count     int64   `json:"count"`
	SumSec    float64 `json:"sum_seconds"`
	MeanMs    float64 `json:"mean_ms"`
	TotalMsec float64 `json:"total_ms"`
}

func run(records int, seed int64, rounds int, out, prev string, maxRegress, minScanReduction, minBatchSpeedup float64) error {
	obsv.ArmHot(true)
	ctx := context.Background()

	sess, gt, err := opmap.CaseStudy(seed, records)
	if err != nil {
		return err
	}
	if err := sess.BuildCubesContext(ctx); err != nil {
		return err
	}
	if _, err := sess.CompareContext(ctx, gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, opmap.CompareOptions{}); err != nil {
		return err
	}
	if _, err := sess.CompareOneVsRestContext(ctx, gt.PhoneAttr, gt.BadPhone, gt.DropClass, opmap.CompareOptions{}); err != nil {
		return err
	}
	if _, err := sess.SweepContext(ctx, gt.PhoneAttr, gt.DropClass, 6); err != nil {
		return err
	}
	if _, err := sess.TestSignificanceContext(ctx, gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, gt.DistinguishingAttr, rounds, seed); err != nil {
		return err
	}
	if _, err := sess.ImpressionsContext(ctx, opmap.ImpressionOptions{}); err != nil {
		return err
	}

	engine, err := benchEngineBest(ctx, records, seed)
	if err != nil {
		return err
	}
	snap, err := benchSnapshotBest(ctx, records, seed)
	if err != nil {
		return err
	}
	ingest, err := benchIngestBest(records)
	if err != nil {
		return err
	}
	batch, err := benchBatch(ctx, records, seed)
	if err != nil {
		return err
	}
	shard, err := benchShardBest(ctx, records)
	if err != nil {
		return err
	}
	drillb, err := benchDrillBest(ctx, records, seed)
	if err != nil {
		return err
	}
	calib, err := benchCalib()
	if err != nil {
		return err
	}

	doc := benchDoc{
		Records: records,
		Seed:    seed,
		Rounds:  rounds,
		Stages:  map[string]stageStats{},
		Hot:     map[string]stageStats{},
		Engine:  engine,
		Snap:    snap,
		Ingest:  ingest,
		Batch:   batch,
		Shard:   shard,
		Drill:   drillb,
		Calib:   calib,
	}
	// The artifact series has a hole: PR 6 recorded no bench run, so the
	// -prev chain skips from BENCH_pr5.json to BENCH_pr7.json.
	doc.Notes = append(doc.Notes, "artifact series gap: BENCH_pr6.json was never recorded; the -prev chain jumps pr5 -> pr7")
	doc.Notes = append(doc.Notes, "engine/snapshot/ingest/shard/drilldown numbers are best-of-3 (fastest observation) from this artifact on; earlier artifacts recorded single shots")
	reg := obsv.Default()
	for _, stage := range obsv.PipelineStages {
		doc.Stages[stage] = toStats(reg.Histogram(obsv.StageHistogramName, nil, "stage", stage))
	}
	doc.Hot[obsv.CubeBuildHistogramName] = toStats(reg.Histogram(obsv.CubeBuildHistogramName, nil))
	doc.Hot[obsv.CompareAttrHistogramName] = toStats(reg.Histogram(obsv.CompareAttrHistogramName, nil))

	// Gate before writing fails the run but after assembling the doc, so
	// a failing run still leaves the numbers on disk to inspect.
	gateErr := checkGates(&doc, prev, maxRegress, minScanReduction, minBatchSpeedup)

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "-" {
		if _, err = os.Stdout.Write(enc); err != nil {
			return err
		}
		return gateErr
	}
	if err := atomicfile.WriteFile(out, func(w io.Writer) error {
		_, werr := w.Write(enc)
		return werr
	}); err != nil {
		return fmt.Errorf("opmapbench: writing report %s: %w", out, err)
	}
	fmt.Printf("wrote %s (%d stages)\n", out, len(doc.Stages))
	return gateErr
}

// benchBatch measures the shared-scan batch comparison engine: the
// full sweep working set (the split attribute's marginal plus one pair
// cube per candidate) built three ways, then the all-values
// one-vs-rest fan-out, with the dataset-scan counter recording how
// many full passes each path paid.
func benchBatch(ctx context.Context, records int, seed int64) (batchBench, error) {
	var bb batchBench
	ds, gt, err := workload.CallLog(workload.CallLogConfig{Seed: seed, Records: records, NumPhones: 8, NoiseAttrs: 35})
	if err != nil {
		return bb, err
	}
	attr := ds.AttrIndex(gt.PhoneAttr)
	cls, ok := ds.ClassDict().Lookup(gt.DropClass)
	if !ok {
		return bb, fmt.Errorf("opmapbench: class %q missing from the generated log", gt.DropClass)
	}
	scans := obsv.Default().Counter(rulecube.CubeScansCounterName)

	// The sweep's declared working set, as prefetched by the batch path.
	reqs := []rulecube.CubeReq{{A: attr, B: -1}}
	for ai := 0; ai < ds.NumAttrs(); ai++ {
		if ai == attr || ai == ds.ClassIndex() {
			continue
		}
		reqs = append(reqs, rulecube.CubeReq{A: attr, B: ai})
	}
	bb.Cubes = int64(len(reqs))

	// Per-pair rebuild baseline: N independent counted builds, one full
	// dataset scan each — the cost model the batch engine replaces.
	s0 := scans.Value()
	start := time.Now()
	for _, rq := range reqs {
		attrs := []int{rq.A}
		if rq.B >= 0 {
			attrs = []int{rq.A, rq.B}
		}
		if _, err := rulecube.BuildCube(ds, attrs); err != nil {
			return bb, err
		}
	}
	bb.PerPairBuildMs = msSince(start)
	bb.PerPairScans = scans.Value() - s0

	// The same working set from one shared scan.
	start = time.Now()
	if _, err := rulecube.BuildMany(ctx, ds, reqs); err != nil {
		return bb, err
	}
	bb.BatchBuildMs = msSince(start)

	// Sequential sweep on a cold lazy engine: one build per cube, but
	// cubes are cached and reused across the value pairs.
	seqEng, err := engine.NewLazy(ds, engine.LazyOptions{})
	if err != nil {
		return bb, err
	}
	s0 = scans.Value()
	start = time.Now()
	if _, err := compare.NewSource(seqEng).SweepContext(ctx, attr, cls, compare.SweepOptions{DisableBatch: true}); err != nil {
		return bb, err
	}
	bb.SeqSweepMs = msSince(start)
	bb.SeqScans = scans.Value() - s0

	// Batched sweep on an identical cold engine: the whole working set
	// from one shared scan.
	batchEng, err := engine.NewLazy(ds, engine.LazyOptions{})
	if err != nil {
		return bb, err
	}
	s0 = scans.Value()
	start = time.Now()
	if _, err := compare.NewSource(batchEng).SweepContext(ctx, attr, cls, compare.SweepOptions{}); err != nil {
		return bb, err
	}
	bb.BatchSweepMs = msSince(start)
	bb.BatchScans = scans.Value() - s0

	// The all-values one-vs-rest fan-out, also cold and batched.
	allEng, err := engine.NewLazy(ds, engine.LazyOptions{})
	if err != nil {
		return bb, err
	}
	s0 = scans.Value()
	start = time.Now()
	if _, err := compare.NewSource(allEng).OneVsRestAllContext(ctx, attr, cls, compare.OneVsRestAllOptions{}); err != nil {
		return bb, err
	}
	bb.AllValuesMs = msSince(start)
	bb.AllValuesScans = scans.Value() - s0

	if bb.BatchScans > 0 {
		bb.ScanReduction = float64(bb.PerPairScans) / float64(bb.BatchScans)
	}
	if bb.BatchBuildMs > 0 {
		bb.SpeedupVsPerPair = bb.PerPairBuildMs / bb.BatchBuildMs
	}
	if bb.BatchSweepMs > 0 {
		bb.SpeedupVsSeq = bb.SeqSweepMs / bb.BatchSweepMs
	}
	return bb, nil
}

// benchShard writes a purely categorical synthetic workload as one
// whole CSV plus contiguous shard files, then measures the sharded
// build three ways per shard count: each shard's load+build alone
// (max = the fleet's critical path), the sequential merge of the
// prebuilt shard sessions, and BuildSharded end to end.
func benchShard(ctx context.Context, records int) (shardBench, error) {
	sb := shardBench{Rows: records}
	dir, err := os.MkdirTemp("", "opmapbench-shard-")
	if err != nil {
		return sb, err
	}
	defer os.RemoveAll(dir)

	header := "Region,Model,Band,Cell,Firmware,Outcome"
	attrs := strings.Split(header, ",")
	load := opmap.LoadOptions{Class: "Outcome", Categorical: attrs}
	rowAt := func(j int) string {
		return fmt.Sprintf("r%d,m%d,b%d,c%d,f%d,o%d",
			j%5, (j*7)%11, (j*13)%4, (j*29)%23, (j*3)%6, (j*17)%3)
	}
	writeRows := func(name string, lo, hi int) (string, error) {
		path := filepath.Join(dir, name)
		var b strings.Builder
		b.WriteString(header)
		b.WriteByte('\n')
		for j := lo; j < hi; j++ {
			b.WriteString(rowAt(j))
			b.WriteByte('\n')
		}
		return path, os.WriteFile(path, []byte(b.String()), 0o600)
	}

	all, err := writeRows("all.csv", 0, records)
	if err != nil {
		return sb, err
	}
	start := time.Now()
	single, err := opmap.LoadCSVFile(all, load)
	if err != nil {
		return sb, err
	}
	if err := single.BuildCubesContext(ctx); err != nil {
		return sb, err
	}
	sb.SinglePassMs = msSince(start)

	for _, n := range []int{2, 4, 8} {
		chunk := (records + n - 1) / n
		paths := make([]string, 0, n)
		for i := 0; i < n; i++ {
			lo, hi := i*chunk, (i+1)*chunk
			if hi > records {
				hi = records
			}
			p, err := writeRows(fmt.Sprintf("shard%d_of_%d.csv", i, n), lo, hi)
			if err != nil {
				return sb, err
			}
			paths = append(paths, p)
		}
		run := shardRun{Shards: n}

		// Staged: per-shard builds sequentially (isolating each shard's
		// cost from pool scheduling), then the merge fold alone.
		sessions := make([]*opmap.Session, n)
		for i, p := range paths {
			t := time.Now()
			s, err := opmap.LoadCSVFile(p, load)
			if err != nil {
				return sb, err
			}
			if err := s.BuildCubesContext(ctx); err != nil {
				return sb, err
			}
			if ms := msSince(t); ms > run.MaxShardBuildMs {
				run.MaxShardBuildMs = ms
			}
			sessions[i] = s
		}
		t := time.Now()
		for _, other := range sessions[1:] {
			if err := sessions[0].MergeFrom(other); err != nil {
				return sb, err
			}
		}
		run.MergeMs = msSince(t)

		// End to end: the real worker-pool path.
		t = time.Now()
		if _, err := opmap.BuildShardedContext(ctx, paths, opmap.ShardOptions{Load: load}); err != nil {
			return sb, err
		}
		run.EndToEndMs = msSince(t)
		if run.EndToEndMs > 0 {
			run.SpeedupVsSingle = sb.SinglePassMs / run.EndToEndMs
		}
		sb.Runs = append(sb.Runs, run)
	}
	return sb, nil
}

// drillBench measures the multi-condition drill-down over the planted
// two-condition workload: the cold search on a lazy engine (k-D cubes
// materialized on demand, batched per frontier depth), the warm repeat
// served by the session result cache, and the search size. Recovered
// reports whether the run's top finding is the planted condition pair
// — the paper-level acceptance criterion, carried in the artifact so a
// quality regression is as visible as a latency one.
type drillBench struct {
	ColdMs    float64 `json:"cold_ms"`
	WarmMs    float64 `json:"warm_ms"`
	Expanded  int     `json:"expanded"`
	Findings  int     `json:"findings"`
	Recovered bool    `json:"recovered_planted_pair"`
}

// benchDrill runs the drill-down twice on a lazy session over the
// drill-case workload: cold (builds its 3-D cubes on demand) and warm
// (memoized).
func benchDrill(ctx context.Context, records int, seed int64) (drillBench, error) {
	var db drillBench
	sess, gt, err := opmap.GenerateDrillCase(seed, records)
	if err != nil {
		return db, err
	}
	if err := sess.BuildCubesOptions(ctx, opmap.BuildOptions{Lazy: true}); err != nil {
		return db, err
	}
	start := time.Now()
	res, err := sess.DrillDownContext(ctx, gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, opmap.DrillOptions{})
	if err != nil {
		return db, err
	}
	db.ColdMs = msSince(start)
	db.Expanded = res.Expanded
	db.Findings = len(res.Findings)
	if top := res.Top(1); len(top) == 1 && top[0].Depth == 2 {
		conds := map[string]string{}
		for _, c := range top[0].Conds {
			conds[c.Attr] = c.Value
		}
		db.Recovered = conds[gt.JointAttrA] == gt.JointValueA && conds[gt.JointAttrB] == gt.JointValueB
	}
	start = time.Now()
	if _, err := sess.DrillDownContext(ctx, gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, opmap.DrillOptions{}); err != nil {
		return db, err
	}
	db.WarmMs = msSince(start)
	return db, nil
}

// Calibration classes for headline metrics: which canary tracks the
// resource a metric's wall clock is dominated by.
const (
	calibCPU  = "cpu"
	calibDisk = "disk"
)

// maxCalibScale caps how far the canary ratio may loosen the
// regression threshold: beyond a 3x machine slowdown the gate still
// fires, so a real regression cannot hide behind arbitrary load.
const maxCalibScale = 3.0

// headlineMetrics are the artifact numbers the regression gate tracks
// across PRs. Small absolute values (sub-millisecond warm paths) are
// deliberately excluded: at that scale a 30% swing is scheduler noise,
// not a regression.
var headlineMetrics = []struct {
	name   string
	get    func(*benchDoc) float64
	higher bool   // true when larger is better (throughput)
	class  string // calibCPU or calibDisk: which canary normalizes it
}{
	{"engine.eager_build_ms", func(d *benchDoc) float64 { return d.Engine.EagerBuildMs }, false, calibCPU},
	{"engine.lazy_cold_compare_ms", func(d *benchDoc) float64 { return d.Engine.LazyColdCompareMs }, false, calibCPU},
	{"snapshot.cold_build_ms", func(d *benchDoc) float64 { return d.Snap.ColdBuildMs }, false, calibCPU},
	{"snapshot.save_ms", func(d *benchDoc) float64 { return d.Snap.SaveMs }, false, calibDisk},
	{"snapshot.load_ms", func(d *benchDoc) float64 { return d.Snap.LoadMs }, false, calibDisk},
	{"ingest.rows_per_sec", func(d *benchDoc) float64 { return d.Ingest.RowsPerSec }, true, calibDisk},
	{"ingest.replay_ms_per_1m_records", func(d *benchDoc) float64 { return d.Ingest.ReplayMsPer1M }, false, calibDisk},
	{"shard.end_to_end_2_shards_ms", func(d *benchDoc) float64 {
		for _, r := range d.Shard.Runs {
			if r.Shards == 2 {
				return r.EndToEndMs
			}
		}
		return 0
	}, false, calibCPU},
}

// calibScale returns the threshold multiplier for a metric class: how
// much slower this machine measured than the one that recorded the
// previous artifact, clamped to [1, maxCalibScale]. The floor means a
// faster machine never loosens the gate; ok is false when either
// artifact lacks the canary, downgrading that comparison to advisory.
func calibScale(now, prev *calibBench, class string) (scale float64, ok bool) {
	var n, p float64
	switch class {
	case calibCPU:
		n, p = now.CPUMs, prev.CPUMs
	case calibDisk:
		n, p = now.DiskMs, prev.DiskMs
	}
	if n <= 0 || p <= 0 {
		return 1, false
	}
	s := n / p
	if s < 1 {
		s = 1
	}
	if s > maxCalibScale {
		s = maxCalibScale
	}
	return s, true
}

// checkGates applies the bench gates, recording what was checked (or
// why a check was skipped) in the artifact's notes:
//   - the batch acceptance gate: a full batched sweep must take exactly
//     one dataset scan, cut dataset scans by minScanReduction vs the
//     per-pair baseline recorded in the same run, and not fall below
//     the minBatchSpeedup wall-clock floor;
//   - the regression gate: no headline metric may regress more than
//     maxRegress vs the previous artifact, after normalizing by the
//     calibration canary ratio so machine drift between the two runs
//     is not read as a code regression. A missing previous artifact
//     skips the comparison rather than failing a fresh checkout; a
//     previous artifact that predates the canaries downgrades its
//     over-threshold deltas to advisory WARN notes, because wall
//     clocks from unknown machine states cannot be compared honestly
//     (observed: disk-bound baselines drifted 40-70% under container
//     load with zero code change).
func checkGates(doc *benchDoc, prev string, maxRegress, minScanReduction, minBatchSpeedup float64) error {
	var failures []string
	if doc.Batch.BatchScans != 1 {
		failures = append(failures, fmt.Sprintf("batched sweep performed %d dataset scans, want exactly 1", doc.Batch.BatchScans))
	}
	if doc.Batch.ScanReduction < minScanReduction {
		failures = append(failures, fmt.Sprintf("shared scan cut dataset scans by %.1fx vs the per-pair baseline, below the %.1fx gate",
			doc.Batch.ScanReduction, minScanReduction))
	}
	if doc.Batch.SpeedupVsPerPair < minBatchSpeedup {
		failures = append(failures, fmt.Sprintf("shared-scan build is %.2fx the per-pair rebuild baseline, below the %.1fx wall-clock floor",
			doc.Batch.SpeedupVsPerPair, minBatchSpeedup))
	}

	if prev == "" {
		doc.Notes = append(doc.Notes, "regression gate: no previous artifact configured (-prev)")
	} else if prevDoc, err := readPrevDoc(prev); err != nil {
		doc.Notes = append(doc.Notes, fmt.Sprintf("regression gate skipped: %v", err))
		log.Printf("regression gate skipped: %v", err)
	} else {
		doc.Notes = append(doc.Notes, fmt.Sprintf("regression gate: compared against %s at max regression %.0f%%", prev, maxRegress*100))
		for _, m := range headlineMetrics {
			was, now := m.get(prevDoc), m.get(doc)
			if was <= 0 {
				continue // metric absent from the older artifact
			}
			scale, armed := calibScale(&doc.Calib, &prevDoc.Calib, m.class)
			worse := (m.higher && now < was*(1-maxRegress)/scale) ||
				(!m.higher && now > was*(1+maxRegress)*scale)
			if !worse {
				continue
			}
			msg := fmt.Sprintf("%s moved %.2f -> %.2f (beyond %.0f%% at %s-calibration scale %.2f)",
				m.name, was, now, maxRegress*100, m.class, scale)
			if !armed {
				// No canary in the older artifact: the delta may be the
				// machine, not the code. Record it loudly, don't fail.
				doc.Notes = append(doc.Notes, fmt.Sprintf(
					"WARN: %s — advisory only, %s predates the calibration canaries", msg, prev))
				log.Printf("regression gate warning: %s (advisory: %s has no %s canary)", msg, prev, m.class)
				continue
			}
			failures = append(failures, msg)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// readPrevDoc loads a previous artifact for the regression gate. New
// fields absent from older artifacts decode as zero and are skipped by
// the per-metric checks.
func readPrevDoc(path string) (*benchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("previous artifact %s: %w", path, err)
	}
	return &doc, nil
}

// benchEngine times eager vs lazy cold start and a warm-cache repeat
// of the same compare, on fresh sessions over identical data.
func benchEngine(ctx context.Context, records int, seed int64) (engineBench, error) {
	var eb engineBench

	eager, gt, err := opmap.CaseStudy(seed, records)
	if err != nil {
		return eb, err
	}
	lazy, _, err := opmap.CaseStudy(seed, records)
	if err != nil {
		return eb, err
	}

	start := time.Now()
	if err := eager.BuildCubesContext(ctx); err != nil {
		return eb, err
	}
	eb.EagerBuildMs = msSince(start)

	start = time.Now()
	if err := lazy.BuildCubesOptions(ctx, opmap.BuildOptions{Lazy: true}); err != nil {
		return eb, err
	}
	eb.LazyReadyMs = msSince(start)

	start = time.Now()
	if _, err := eager.CompareContext(ctx, gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, opmap.CompareOptions{}); err != nil {
		return eb, err
	}
	eb.EagerCompareMs = msSince(start)

	start = time.Now()
	if _, err := lazy.CompareContext(ctx, gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, opmap.CompareOptions{}); err != nil {
		return eb, err
	}
	eb.LazyColdCompareMs = msSince(start)

	start = time.Now()
	if _, err := lazy.CompareContext(ctx, gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, opmap.CompareOptions{}); err != nil {
		return eb, err
	}
	eb.LazyWarmCompareMs = msSince(start)

	st := lazy.EngineStats()
	eb.LazyTwoDBuilds = st.TwoDBuilds
	eb.LazyCubeBytes = st.CubeCacheBytes
	return eb, nil
}

// benchSnapshot times the durable-session cycle: cold cube build,
// snapshot save, snapshot load into a ready-to-serve session. The
// loaded session answers one compare so the load number covers a
// usable engine, not just parsing.
func benchSnapshot(ctx context.Context, records int, seed int64) (snapshotBench, error) {
	var sb snapshotBench

	sess, gt, err := opmap.CaseStudy(seed, records)
	if err != nil {
		return sb, err
	}
	start := time.Now()
	if err := sess.BuildCubesContext(ctx); err != nil {
		return sb, err
	}
	sb.ColdBuildMs = msSince(start)

	dir, err := os.MkdirTemp("", "opmapbench-snap-")
	if err != nil {
		return sb, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bench.omapsnap")
	hash := opmap.HashSourceString(fmt.Sprintf("bench seed=%d records=%d", seed, records))
	start = time.Now()
	if err := sess.SaveSnapshotFile(path, opmap.SnapshotOptions{SourceHash: hash}); err != nil {
		return sb, err
	}
	sb.SaveMs = msSince(start)
	if fi, err := os.Stat(path); err == nil {
		sb.SnapshotBytes = fi.Size()
	}

	start = time.Now()
	warm, err := opmap.LoadSnapshotFile(path)
	if err != nil {
		return sb, err
	}
	if _, err := warm.CompareContext(ctx, gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, opmap.CompareOptions{}); err != nil {
		return sb, err
	}
	sb.LoadMs = msSince(start)
	if sb.LoadMs > 0 {
		sb.LoadSpeedup = sb.ColdBuildMs / sb.LoadMs
	}
	return sb, nil
}

// benchIngest streams batches through the durable append path a
// daemon ingest takes — WAL append with per-record fsync, then
// Session.Append — and then replays the written log into a fresh
// session, timing both directions.
func benchIngest(records int) (ingestBench, error) {
	const batchRows = 50
	ib := ingestBench{BatchRows: batchRows}
	// Bound the fsync-per-batch loop so the bench stays snappy at large
	// -records; throughput and replay rate are per-row figures anyway.
	ib.Rows = records
	if ib.Rows > 10000 {
		ib.Rows = 10000
	}

	base, err := ingestSession()
	if err != nil {
		return ib, err
	}
	dir, err := os.MkdirTemp("", "opmapbench-wal-")
	if err != nil {
		return ib, err
	}
	defer os.RemoveAll(dir)
	lg, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return ib, err
	}

	batches := ib.Rows / batchRows
	latencies := make([]float64, 0, batches)
	start := time.Now()
	for b := 0; b < batches; b++ {
		rows := ingestRows(b*batchRows, batchRows)
		bStart := time.Now()
		seq, err := lg.Append(wal.EncodeRows(rows))
		if err != nil {
			return ib, err
		}
		if err := base.AppendSeq(context.Background(), rows, seq); err != nil {
			return ib, err
		}
		latencies = append(latencies, msSince(bStart))
	}
	elapsed := time.Since(start).Seconds()
	if err := lg.Close(); err != nil {
		return ib, err
	}
	if elapsed > 0 {
		ib.RowsPerSec = float64(batches*batchRows) / elapsed
	}
	sort.Float64s(latencies)
	if n := len(latencies); n > 0 {
		ib.AppendP50Ms = latencies[n/2]
		ib.AppendP90Ms = latencies[n*9/10]
	}
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if fi, err := e.Info(); err == nil {
				ib.WalBytes += fi.Size()
			}
		}
	}

	// Replay the log into a fresh session — the restart path.
	fresh, err := ingestSession()
	if err != nil {
		return ib, err
	}
	lg, err = wal.Open(dir, wal.Options{})
	if err != nil {
		return ib, err
	}
	defer lg.Close()
	start = time.Now()
	n, err := lg.Replay(1, func(seq uint64, payload []byte) error {
		rows, derr := wal.DecodeRows(payload)
		if derr != nil {
			return derr
		}
		return fresh.AppendSeq(context.Background(), rows, seq)
	})
	if err != nil {
		return ib, err
	}
	ib.ReplayMs = msSince(start)
	if replayed := n * batchRows; replayed > 0 {
		ib.ReplayMsPer1M = ib.ReplayMs / float64(replayed) * 1e6
	}
	return ib, nil
}

// ingestSession builds a small mixed-schema session whose rows
// ingestRows can generate.
func ingestSession() (*opmap.Session, error) {
	var b strings.Builder
	b.WriteString("Region,Model,Temp,Load,Outcome\n")
	for _, r := range ingestRows(0, 100) {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	sess, err := opmap.LoadCSV(strings.NewReader(b.String()), opmap.LoadOptions{})
	if err != nil {
		return nil, err
	}
	if err := sess.Discretize(opmap.DiscretizeOptions{Manual: map[string][]float64{
		"Temp": {25, 50, 75},
		"Load": {20, 40, 60},
	}}); err != nil {
		return nil, err
	}
	if err := sess.BuildCubes(); err != nil {
		return nil, err
	}
	return sess, nil
}

// ingestRows generates n deterministic rows starting at offset off.
func ingestRows(off, n int) [][]string {
	regions := []string{"north", "south", "east", "west"}
	models := []string{"m1", "m2", "m3"}
	classes := []string{"ok", "fail", "slow"}
	rows := make([][]string, n)
	for i := 0; i < n; i++ {
		j := off + i
		rows[i] = []string{
			regions[j%len(regions)],
			models[j%len(models)],
			fmt.Sprintf("%d.5", (j*37)%100),
			fmt.Sprintf("%d", (j*53)%80),
			classes[j%len(classes)],
		}
	}
	return rows
}

func msSince(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}

func toStats(h *obsv.Histogram) stageStats {
	snap := h.Snapshot()
	st := stageStats{Count: snap.Count, SumSec: snap.Sum}
	st.TotalMsec = snap.Sum * float64(time.Second/time.Millisecond)
	if snap.Count > 0 {
		st.MeanMs = st.TotalMsec / float64(snap.Count)
	}
	return st
}
