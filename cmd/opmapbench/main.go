// Command opmapbench exercises every instrumented pipeline stage over
// the synthetic call-log case study and writes the recorded stage
// timings as JSON — the benchmark artifact (BENCH_*.json) tracking how
// long the paper's steps take as the codebase grows. Hot-path
// instrumentation is armed, so the per-cube-build and per-attribute
// compare histograms are populated too.
//
// Usage:
//
//	opmapbench -records 20000 -seed 1 -rounds 50 -out BENCH.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"opmap"
	"opmap/internal/atomicfile"
	"opmap/internal/obsv"
	"opmap/internal/wal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("opmapbench: ")
	var (
		records = flag.Int("records", 20000, "synthetic call-log records")
		seed    = flag.Int64("seed", 1, "generator seed")
		rounds  = flag.Int("rounds", 50, "permutation test rounds")
		out     = flag.String("out", "BENCH.json", "output file (- for stdout)")
	)
	flag.Parse()
	if err := run(*records, *seed, *rounds, *out); err != nil {
		log.Fatal(err)
	}
}

// benchDoc is the written artifact: per-stage durations plus the
// hot-path histograms, all taken from the process metrics registry so
// the bench measures exactly what /metrics would report.
type benchDoc struct {
	Records int                   `json:"records"`
	Seed    int64                 `json:"seed"`
	Rounds  int                   `json:"perm_rounds"`
	Stages  map[string]stageStats `json:"stages"`
	Hot     map[string]stageStats `json:"hot"`
	Engine  engineBench           `json:"engine"`
	Snap    snapshotBench         `json:"snapshot"`
	Ingest  ingestBench           `json:"ingest"`
}

// ingestBench measures the streaming append path: sustained durable
// throughput (WAL append + fsync + incremental cube maintenance per
// batch), the per-batch latency distribution, and how fast a restart
// replays the log it just wrote.
type ingestBench struct {
	Rows        int     `json:"rows"`
	BatchRows   int     `json:"batch_rows"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	AppendP50Ms float64 `json:"append_p50_ms"`
	AppendP90Ms float64 `json:"append_p90_ms"`
	WalBytes    int64   `json:"wal_bytes"`
	ReplayMs    float64 `json:"replay_ms"`
	// ReplayMsPer1M extrapolates the measured replay rate to one
	// million records, the artifact's comparable unit across runs.
	ReplayMsPer1M float64 `json:"replay_ms_per_1m_records"`
}

// snapshotBench contrasts a cold start (build every cube from raw
// rows) with a warm start (load the snapshot written by the previous
// run) — the daemon's -snapshot-dir trade: one save per source
// version buys every later startup the load path.
type snapshotBench struct {
	ColdBuildMs   float64 `json:"cold_build_ms"`
	SaveMs        float64 `json:"save_ms"`
	LoadMs        float64 `json:"load_ms"`
	SnapshotBytes int64   `json:"snapshot_bytes"`
	// LoadSpeedup is cold_build_ms / load_ms: how many times faster a
	// warm start is than rebuilding.
	LoadSpeedup float64 `json:"load_speedup_vs_build"`
}

// engineBench contrasts the two build modes over identical data: what
// eager pays up front, what lazy pays on the first query, and what a
// repeated query costs once the result cache is warm.
type engineBench struct {
	EagerBuildMs      float64 `json:"eager_build_ms"`
	LazyReadyMs       float64 `json:"lazy_ready_ms"`
	EagerCompareMs    float64 `json:"eager_compare_ms"`
	LazyColdCompareMs float64 `json:"lazy_cold_compare_ms"`
	LazyWarmCompareMs float64 `json:"lazy_warm_compare_ms"`
	LazyTwoDBuilds    int64   `json:"lazy_twod_builds"`
	LazyCubeBytes     int64   `json:"lazy_cube_bytes"`
}

type stageStats struct {
	Count     int64   `json:"count"`
	SumSec    float64 `json:"sum_seconds"`
	MeanMs    float64 `json:"mean_ms"`
	TotalMsec float64 `json:"total_ms"`
}

func run(records int, seed int64, rounds int, out string) error {
	obsv.ArmHot(true)
	ctx := context.Background()

	sess, gt, err := opmap.CaseStudy(seed, records)
	if err != nil {
		return err
	}
	if err := sess.BuildCubesContext(ctx); err != nil {
		return err
	}
	if _, err := sess.CompareContext(ctx, gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, opmap.CompareOptions{}); err != nil {
		return err
	}
	if _, err := sess.CompareOneVsRestContext(ctx, gt.PhoneAttr, gt.BadPhone, gt.DropClass, opmap.CompareOptions{}); err != nil {
		return err
	}
	if _, err := sess.SweepContext(ctx, gt.PhoneAttr, gt.DropClass, 6); err != nil {
		return err
	}
	if _, err := sess.TestSignificanceContext(ctx, gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, gt.DistinguishingAttr, rounds, seed); err != nil {
		return err
	}
	if _, err := sess.ImpressionsContext(ctx, opmap.ImpressionOptions{}); err != nil {
		return err
	}

	engine, err := benchEngine(ctx, records, seed)
	if err != nil {
		return err
	}
	snap, err := benchSnapshot(ctx, records, seed)
	if err != nil {
		return err
	}
	ingest, err := benchIngest(records)
	if err != nil {
		return err
	}

	doc := benchDoc{
		Records: records,
		Seed:    seed,
		Rounds:  rounds,
		Stages:  map[string]stageStats{},
		Hot:     map[string]stageStats{},
		Engine:  engine,
		Snap:    snap,
		Ingest:  ingest,
	}
	reg := obsv.Default()
	for _, stage := range obsv.PipelineStages {
		doc.Stages[stage] = toStats(reg.Histogram(obsv.StageHistogramName, nil, "stage", stage))
	}
	doc.Hot[obsv.CubeBuildHistogramName] = toStats(reg.Histogram(obsv.CubeBuildHistogramName, nil))
	doc.Hot[obsv.CompareAttrHistogramName] = toStats(reg.Histogram(obsv.CompareAttrHistogramName, nil))

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	if err := atomicfile.WriteFile(out, func(w io.Writer) error {
		_, werr := w.Write(enc)
		return werr
	}); err != nil {
		return fmt.Errorf("opmapbench: writing report %s: %w", out, err)
	}
	fmt.Printf("wrote %s (%d stages)\n", out, len(doc.Stages))
	return nil
}

// benchEngine times eager vs lazy cold start and a warm-cache repeat
// of the same compare, on fresh sessions over identical data.
func benchEngine(ctx context.Context, records int, seed int64) (engineBench, error) {
	var eb engineBench

	eager, gt, err := opmap.CaseStudy(seed, records)
	if err != nil {
		return eb, err
	}
	lazy, _, err := opmap.CaseStudy(seed, records)
	if err != nil {
		return eb, err
	}

	start := time.Now()
	if err := eager.BuildCubesContext(ctx); err != nil {
		return eb, err
	}
	eb.EagerBuildMs = msSince(start)

	start = time.Now()
	if err := lazy.BuildCubesOptions(ctx, opmap.BuildOptions{Lazy: true}); err != nil {
		return eb, err
	}
	eb.LazyReadyMs = msSince(start)

	start = time.Now()
	if _, err := eager.CompareContext(ctx, gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, opmap.CompareOptions{}); err != nil {
		return eb, err
	}
	eb.EagerCompareMs = msSince(start)

	start = time.Now()
	if _, err := lazy.CompareContext(ctx, gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, opmap.CompareOptions{}); err != nil {
		return eb, err
	}
	eb.LazyColdCompareMs = msSince(start)

	start = time.Now()
	if _, err := lazy.CompareContext(ctx, gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, opmap.CompareOptions{}); err != nil {
		return eb, err
	}
	eb.LazyWarmCompareMs = msSince(start)

	st := lazy.EngineStats()
	eb.LazyTwoDBuilds = st.TwoDBuilds
	eb.LazyCubeBytes = st.CubeCacheBytes
	return eb, nil
}

// benchSnapshot times the durable-session cycle: cold cube build,
// snapshot save, snapshot load into a ready-to-serve session. The
// loaded session answers one compare so the load number covers a
// usable engine, not just parsing.
func benchSnapshot(ctx context.Context, records int, seed int64) (snapshotBench, error) {
	var sb snapshotBench

	sess, gt, err := opmap.CaseStudy(seed, records)
	if err != nil {
		return sb, err
	}
	start := time.Now()
	if err := sess.BuildCubesContext(ctx); err != nil {
		return sb, err
	}
	sb.ColdBuildMs = msSince(start)

	dir, err := os.MkdirTemp("", "opmapbench-snap-")
	if err != nil {
		return sb, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bench.omapsnap")
	hash := opmap.HashSourceString(fmt.Sprintf("bench seed=%d records=%d", seed, records))
	start = time.Now()
	if err := sess.SaveSnapshotFile(path, opmap.SnapshotOptions{SourceHash: hash}); err != nil {
		return sb, err
	}
	sb.SaveMs = msSince(start)
	if fi, err := os.Stat(path); err == nil {
		sb.SnapshotBytes = fi.Size()
	}

	start = time.Now()
	warm, err := opmap.LoadSnapshotFile(path)
	if err != nil {
		return sb, err
	}
	if _, err := warm.CompareContext(ctx, gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, opmap.CompareOptions{}); err != nil {
		return sb, err
	}
	sb.LoadMs = msSince(start)
	if sb.LoadMs > 0 {
		sb.LoadSpeedup = sb.ColdBuildMs / sb.LoadMs
	}
	return sb, nil
}

// benchIngest streams batches through the durable append path a
// daemon ingest takes — WAL append with per-record fsync, then
// Session.Append — and then replays the written log into a fresh
// session, timing both directions.
func benchIngest(records int) (ingestBench, error) {
	const batchRows = 50
	ib := ingestBench{BatchRows: batchRows}
	// Bound the fsync-per-batch loop so the bench stays snappy at large
	// -records; throughput and replay rate are per-row figures anyway.
	ib.Rows = records
	if ib.Rows > 10000 {
		ib.Rows = 10000
	}

	base, err := ingestSession()
	if err != nil {
		return ib, err
	}
	dir, err := os.MkdirTemp("", "opmapbench-wal-")
	if err != nil {
		return ib, err
	}
	defer os.RemoveAll(dir)
	lg, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return ib, err
	}

	batches := ib.Rows / batchRows
	latencies := make([]float64, 0, batches)
	start := time.Now()
	for b := 0; b < batches; b++ {
		rows := ingestRows(b*batchRows, batchRows)
		bStart := time.Now()
		seq, err := lg.Append(wal.EncodeRows(rows))
		if err != nil {
			return ib, err
		}
		if err := base.AppendSeq(context.Background(), rows, seq); err != nil {
			return ib, err
		}
		latencies = append(latencies, msSince(bStart))
	}
	elapsed := time.Since(start).Seconds()
	if err := lg.Close(); err != nil {
		return ib, err
	}
	if elapsed > 0 {
		ib.RowsPerSec = float64(batches*batchRows) / elapsed
	}
	sort.Float64s(latencies)
	if n := len(latencies); n > 0 {
		ib.AppendP50Ms = latencies[n/2]
		ib.AppendP90Ms = latencies[n*9/10]
	}
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if fi, err := e.Info(); err == nil {
				ib.WalBytes += fi.Size()
			}
		}
	}

	// Replay the log into a fresh session — the restart path.
	fresh, err := ingestSession()
	if err != nil {
		return ib, err
	}
	lg, err = wal.Open(dir, wal.Options{})
	if err != nil {
		return ib, err
	}
	defer lg.Close()
	start = time.Now()
	n, err := lg.Replay(1, func(seq uint64, payload []byte) error {
		rows, derr := wal.DecodeRows(payload)
		if derr != nil {
			return derr
		}
		return fresh.AppendSeq(context.Background(), rows, seq)
	})
	if err != nil {
		return ib, err
	}
	ib.ReplayMs = msSince(start)
	if replayed := n * batchRows; replayed > 0 {
		ib.ReplayMsPer1M = ib.ReplayMs / float64(replayed) * 1e6
	}
	return ib, nil
}

// ingestSession builds a small mixed-schema session whose rows
// ingestRows can generate.
func ingestSession() (*opmap.Session, error) {
	var b strings.Builder
	b.WriteString("Region,Model,Temp,Load,Outcome\n")
	for _, r := range ingestRows(0, 100) {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	sess, err := opmap.LoadCSV(strings.NewReader(b.String()), opmap.LoadOptions{})
	if err != nil {
		return nil, err
	}
	if err := sess.Discretize(opmap.DiscretizeOptions{Manual: map[string][]float64{
		"Temp": {25, 50, 75},
		"Load": {20, 40, 60},
	}}); err != nil {
		return nil, err
	}
	if err := sess.BuildCubes(); err != nil {
		return nil, err
	}
	return sess, nil
}

// ingestRows generates n deterministic rows starting at offset off.
func ingestRows(off, n int) [][]string {
	regions := []string{"north", "south", "east", "west"}
	models := []string{"m1", "m2", "m3"}
	classes := []string{"ok", "fail", "slow"}
	rows := make([][]string, n)
	for i := 0; i < n; i++ {
		j := off + i
		rows[i] = []string{
			regions[j%len(regions)],
			models[j%len(models)],
			fmt.Sprintf("%d.5", (j*37)%100),
			fmt.Sprintf("%d", (j*53)%80),
			classes[j%len(classes)],
		}
	}
	return rows
}

func msSince(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}

func toStats(h *obsv.Histogram) stageStats {
	snap := h.Snapshot()
	st := stageStats{Count: snap.Count, SumSec: snap.Sum}
	st.TotalMsec = snap.Sum * float64(time.Second/time.Millisecond)
	if snap.Count > 0 {
		st.MeanMs = st.TotalMsec / float64(snap.Count)
	}
	return st
}
