package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// passingBatch satisfies the batch acceptance gates so regression-gate
// tests can isolate the metric comparisons.
func passingBatch() batchBench {
	return batchBench{
		BatchScans:       1,
		ScanReduction:    40,
		SpeedupVsPerPair: 2,
	}
}

// writePrev marshals a previous artifact into a temp file and returns
// its path.
func writePrev(t *testing.T, doc benchDoc) string {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "prev.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGateBatchScans(t *testing.T) {
	doc := benchDoc{Batch: passingBatch()}
	doc.Batch.BatchScans = 3
	err := checkGates(&doc, "", 0.30, 5.0, 1.0)
	if err == nil || !strings.Contains(err.Error(), "3 dataset scans") {
		t.Fatalf("want batch-scan gate failure, got %v", err)
	}
}

func TestGateScanReduction(t *testing.T) {
	doc := benchDoc{Batch: passingBatch()}
	doc.Batch.ScanReduction = 2
	err := checkGates(&doc, "", 0.30, 5.0, 1.0)
	if err == nil || !strings.Contains(err.Error(), "below the 5.0x gate") {
		t.Fatalf("want scan-reduction gate failure, got %v", err)
	}
}

func TestGateBatchSpeedupFloor(t *testing.T) {
	doc := benchDoc{Batch: passingBatch()}
	doc.Batch.SpeedupVsPerPair = 0.5
	err := checkGates(&doc, "", 0.30, 5.0, 1.0)
	if err == nil || !strings.Contains(err.Error(), "wall-clock floor") {
		t.Fatalf("want speedup-floor gate failure, got %v", err)
	}
}

func TestGateNoPrevPasses(t *testing.T) {
	doc := benchDoc{Batch: passingBatch()}
	if err := checkGates(&doc, "", 0.30, 5.0, 1.0); err != nil {
		t.Fatalf("gates with no previous artifact: %v", err)
	}
	if len(doc.Notes) == 0 || !strings.Contains(doc.Notes[0], "no previous artifact") {
		t.Fatalf("want a no-previous-artifact note, got %q", doc.Notes)
	}
}

func TestGateRegressionArmedFails(t *testing.T) {
	calib := calibBench{CPUMs: 100, DiskMs: 50}
	prev := benchDoc{Calib: calib}
	prev.Engine.EagerBuildMs = 50
	doc := benchDoc{Batch: passingBatch(), Calib: calib}
	doc.Engine.EagerBuildMs = 100 // 2x slower, same machine speed

	err := checkGates(&doc, writePrev(t, prev), 0.30, 5.0, 1.0)
	if err == nil || !strings.Contains(err.Error(), "engine.eager_build_ms") {
		t.Fatalf("want eager_build_ms regression failure, got %v", err)
	}
}

func TestGateRegressionNormalizedByCalibration(t *testing.T) {
	prev := benchDoc{Calib: calibBench{CPUMs: 100, DiskMs: 50}}
	prev.Engine.EagerBuildMs = 50
	doc := benchDoc{Batch: passingBatch(), Calib: calibBench{CPUMs: 200, DiskMs: 50}}
	doc.Engine.EagerBuildMs = 100 // 2x slower wall clock, but CPU canary is 2x slower too

	if err := checkGates(&doc, writePrev(t, prev), 0.30, 5.0, 1.0); err != nil {
		t.Fatalf("calibration-normalized comparison should pass: %v", err)
	}
}

func TestGateCalibrationScaleCapped(t *testing.T) {
	// A 10x canary slowdown is clamped to maxCalibScale, so a 10x
	// metric regression still fires.
	prev := benchDoc{Calib: calibBench{CPUMs: 10, DiskMs: 50}}
	prev.Engine.EagerBuildMs = 50
	doc := benchDoc{Batch: passingBatch(), Calib: calibBench{CPUMs: 100, DiskMs: 50}}
	doc.Engine.EagerBuildMs = 500

	err := checkGates(&doc, writePrev(t, prev), 0.30, 5.0, 1.0)
	if err == nil || !strings.Contains(err.Error(), "engine.eager_build_ms") {
		t.Fatalf("want capped-scale regression failure, got %v", err)
	}
}

func TestGateHigherBetterMetric(t *testing.T) {
	calib := calibBench{CPUMs: 100, DiskMs: 50}
	prev := benchDoc{Calib: calib}
	prev.Ingest.RowsPerSec = 100000
	doc := benchDoc{Batch: passingBatch(), Calib: calib}
	doc.Ingest.RowsPerSec = 40000

	err := checkGates(&doc, writePrev(t, prev), 0.30, 5.0, 1.0)
	if err == nil || !strings.Contains(err.Error(), "ingest.rows_per_sec") {
		t.Fatalf("want rows_per_sec regression failure, got %v", err)
	}
}

func TestGateAdvisoryWithoutPrevCalibration(t *testing.T) {
	// An artifact written before the canaries existed decodes a zero
	// Calib: its over-threshold deltas warn in Notes instead of
	// failing, because machine drift cannot be separated from code.
	prev := benchDoc{}
	prev.Ingest.ReplayMsPer1M = 4000
	doc := benchDoc{Batch: passingBatch(), Calib: calibBench{CPUMs: 100, DiskMs: 50}}
	doc.Ingest.ReplayMsPer1M = 7000

	if err := checkGates(&doc, writePrev(t, prev), 0.30, 5.0, 1.0); err != nil {
		t.Fatalf("uncalibrated previous artifact must be advisory: %v", err)
	}
	var warned bool
	for _, n := range doc.Notes {
		if strings.Contains(n, "WARN") && strings.Contains(n, "replay_ms_per_1m_records") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("want an advisory WARN note, got %q", doc.Notes)
	}
}

func TestCalibScaleClamps(t *testing.T) {
	now := calibBench{CPUMs: 100, DiskMs: 300}
	prev := calibBench{CPUMs: 200, DiskMs: 50}
	if s, ok := calibScale(&now, &prev, calibCPU); !ok || s != 1 {
		t.Fatalf("faster machine must clamp to 1, got %v ok=%v", s, ok)
	}
	if s, ok := calibScale(&now, &prev, calibDisk); !ok || s != maxCalibScale {
		t.Fatalf("6x slower disk must clamp to %v, got %v ok=%v", maxCalibScale, s, ok)
	}
	if _, ok := calibScale(&now, &calibBench{}, calibCPU); ok {
		t.Fatal("missing previous canary must report ok=false")
	}
}

func TestBenchCalibProducesPositiveCanaries(t *testing.T) {
	cb, err := benchCalib()
	if err != nil {
		t.Fatal(err)
	}
	if cb.CPUMs <= 0 || cb.DiskMs <= 0 {
		t.Fatalf("canaries must be positive, got cpu=%v disk=%v", cb.CPUMs, cb.DiskMs)
	}
}
