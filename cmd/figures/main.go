// Command figures regenerates every table and figure of the paper's
// evaluation (Section V) at a configurable scale and prints the same
// rows/series the paper reports. Absolute times differ from the paper's
// 2008 hardware; the shapes (linear vs superlinear, interactivity) are
// the reproduction target. See EXPERIMENTS.md for recorded runs.
//
// Usage:
//
//	figures                         # everything at the default scale
//	figures -only fig9,fig10        # selected experiments
//	figures -records 2000000        # paper-scale record count (slow)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"opmap/internal/baseline"
	"opmap/internal/car"
	"opmap/internal/compare"
	"opmap/internal/gi"
	"opmap/internal/rulecube"
	"opmap/internal/stats"
	"opmap/internal/visual"
	"opmap/internal/workload"
)

func main() {
	log.SetFlags(0)
	var (
		only      = flag.String("only", "", "comma-separated subset: table1,boundaries,fig5,fig6,fig7,fig8,fig9,fig10,fig11,casestudy,ablations")
		records   = flag.Int("records", 200000, "records behind Fig. 9/10 (paper: 2,000,000)")
		fig11Base = flag.Int("fig11base", 250000, "base records for Fig. 11 duplication sweep (paper: 2,000,000)")
		attrs     = flag.Int("attrs", 160, "maximum attributes for Fig. 9/10/11 (paper: 160)")
		seed      = flag.Int64("seed", 1, "PRNG seed")
	)
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	run := func(key string) bool { return len(want) == 0 || want[key] }

	if run("table1") {
		table1()
	}
	if run("boundaries") {
		boundaries()
	}
	if run("fig5") || run("fig6") || run("fig7") || run("fig8") || run("casestudy") {
		caseStudy(*seed, run)
	}
	if run("fig9") {
		fig9(*seed, *records, *attrs)
	}
	if run("fig10") {
		fig10(*seed, *records, *attrs)
	}
	if run("fig11") {
		fig11(*seed, *fig11Base, *attrs)
	}
	if run("ablations") {
		ablations(*seed)
	}
}

// ablations prints the DESIGN.md §5 ablation numbers as a text report
// (the bench harness measures the same things under testing.B).
func ablations(seed int64) {
	header("Ablations — DESIGN.md §5")
	ds, gt, err := workload.CallLog(workload.CaseStudyConfig(seed, 50000))
	if err != nil {
		log.Fatal(err)
	}
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	attr := ds.AttrIndex(gt.PhoneAttr)
	v1, _ := ds.Column(attr).Dict.Lookup(gt.GoodPhone)
	v2, _ := ds.Column(attr).Dict.Lookup(gt.BadPhone)
	cls, _ := ds.ClassDict().Lookup(gt.DropClass)
	in := compare.Input{Attr: attr, V1: v1, V2: v2, Class: cls}
	cmp := compare.New(store)

	timeIt := func(name string, reps int, f func() error) time.Duration {
		if err := f(); err != nil { // warm-up
			log.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			if err := f(); err != nil {
				log.Fatal(err)
			}
		}
		per := time.Since(start) / time.Duration(reps)
		fmt.Printf("  %-34s %v\n", name, per)
		return per
	}

	fmt.Println("Comparison cost (cube-backed, 50k records behind the cubes):")
	timeIt("with CI (paper default)", 100, func() error {
		_, err := cmp.Compare(in, compare.Options{})
		return err
	})
	timeIt("without CI", 100, func() error {
		_, err := cmp.Compare(in, compare.Options{DisableCI: true})
		return err
	})
	timeIt("Wilson intervals", 100, func() error {
		_, err := cmp.Compare(in, compare.Options{Method: compare.Wilson})
		return err
	})
	fmt.Println("Cube vs raw scan (the paper's V.C data-size independence):")
	cubeT := timeIt("cube-backed compare", 100, func() error {
		_, err := cmp.Compare(in, compare.Options{})
		return err
	})
	scanT := timeIt("raw scan compare (50k records)", 5, func() error {
		_, err := compare.Scan(ds, in, compare.Options{})
		return err
	})
	big := ds.Duplicate(2)
	scan2T := timeIt("raw scan compare (100k records)", 5, func() error {
		_, err := compare.Scan(big, in, compare.Options{})
		return err
	})
	fmt.Printf("  scan/cube ratio %.0f×; scan 2× records grows %.2f× — cube time is size-independent\n",
		float64(scanT)/float64(cubeT), float64(scan2T)/float64(scanT))

	fmt.Println("Completeness problem (Section III.A):")
	rep, err := baseline.Completeness(ds, baseline.TreeOptions{MaxDepth: 2}, car.Options{MaxConditions: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  decision-tree rules %d vs exhaustive CAR rules %d (coverage %.2f%%)\n",
		rep.TreeRules, rep.CARRules, 100*rep.CoverageRatio)
	cba, err := baseline.BuildCBA(ds, baseline.CBAOptions{MinSupport: 0.005})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  CBA keeps %d of %d candidate rules (%.2f%%) at %.1f%% accuracy\n",
		len(cba.Rules), cba.TotalCandidates, 100*cba.UsageRatio(), 100*cba.Accuracy(ds))

	st := store.Stats()
	fmt.Printf("Cube store size: %d cubes, %d cells (rules), ≈%.1f MiB counts\n",
		st.Cubes, st.Cells, float64(st.Bytes)/(1<<20))
}

func header(title string) {
	fmt.Printf("\n================ %s ================\n", title)
}

// table1 prints Table I: the z values.
func table1() {
	header("Table I — z value table")
	fmt.Println("Confidence level    z")
	for _, level := range []stats.ConfidenceLevel{stats.Level90, stats.Level95, stats.Level99} {
		fmt.Printf("%-18.2f  %.3f\n", float64(level), stats.MustZValue(level))
	}
}

// boundaries prints the Fig. 2 / Fig. 4 boundary situations of the
// interestingness measure.
func boundaries() {
	header("Fig. 2 / Fig. 4 — boundary situations of the measure")
	labels := []string{"morning", "afternoon", "evening"}

	// Situation A (Fig. 2(A)/4(A)): proportional — uninteresting, M = 0.
	n1 := []int64{10000, 10000, 10000}
	c1 := []int64{200, 200, 200}
	n2 := []int64{10000, 10000, 10000}
	c2 := []int64{400, 400, 400}
	sA, _, err := compare.CompareValues("Time-of-Call", labels, n1, c1, n2, c2, compare.Options{DisableCI: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Situation A (ph2 = 2× ph1 everywhere):        M = %.4f  (paper: 0, minimum)\n", sA.Score)

	// Situation B (Fig. 4(B)): all excess in one value at 100% — maximum.
	n1b := []int64{10000, 10000, 10000}
	c1b := []int64{250, 250, 100}
	n2b := []int64{14400, 14400, 1200}
	c2b := []int64{0, 0, 1200}
	sB, resB, err := compare.CompareValues("Time-of-Call", labels, n1b, c1b, n2b, c2b, compare.Options{DisableCI: true})
	if err != nil {
		log.Fatal(err)
	}
	max := resB.Cf2 * float64(resB.Rule2.CondCount) // N_2k at the concentrated value
	fmt.Printf("Situation B (all drops in evening at 100%%):   M = %.1f  (theoretical cap cf2·|D2| = %.1f)\n", sB.Score, max)

	// Fig. 2(B): the interesting intermediate case.
	c2m := []int64{800, 200, 200}
	sM, _, err := compare.CompareValues("Time-of-Call", labels, n1, c1, n2, c2m, compare.Options{DisableCI: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Situation Fig. 2(B) (morning concentration):   M = %.1f  (positive, morning-only contribution)\n", sM.Score)
}

// caseStudy reproduces Section V.B and Figs. 5–8 on the planted call log.
func caseStudy(seed int64, run func(string) bool) {
	header("Case study — Section V.B (41-attribute call log)")
	ds, gt, err := workload.CallLog(workload.CaseStudyConfig(seed, 80000))
	if err != nil {
		log.Fatal(err)
	}
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	attr := ds.AttrIndex(gt.PhoneAttr)
	v1, _ := ds.Column(attr).Dict.Lookup(gt.GoodPhone)
	v2, _ := ds.Column(attr).Dict.Lookup(gt.BadPhone)
	cls, _ := ds.ClassDict().Lookup(gt.DropClass)
	res, err := compare.New(store).Compare(compare.Input{Attr: attr, V1: v1, V2: v2, Class: cls}, compare.Options{})
	if err != nil {
		log.Fatal(err)
	}

	if run("fig5") || run("casestudy") {
		fmt.Println("\n--- Fig. 5: overall view (truncated) ---")
		var buf strings.Builder
		rep, err := gi.MineAll(store, gi.TrendOptions{}, gi.ExceptionOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if err := visual.Overall(&buf, store, visual.OverallOptions{Scale: true, Trends: rep.Trends}); err != nil {
			log.Fatal(err)
		}
		printHead(buf.String(), 48)
	}
	if run("fig6") || run("casestudy") {
		fmt.Println("\n--- Fig. 6: detailed view of Phone-Model ---")
		if err := visual.Detailed(os.Stdout, store.Cube1(attr)); err != nil {
			log.Fatal(err)
		}
	}
	if run("fig7") || run("casestudy") {
		fmt.Println("\n--- Fig. 7: ranking + top attribute with CI regions ---")
		fmt.Printf("top-ranked attribute: %q (planted: %q, match=%v)\n",
			res.Ranked[0].Name, gt.DistinguishingAttr, res.Ranked[0].Name == gt.DistinguishingAttr)
		visual.Ranking(os.Stdout, res, 8)
		visual.Comparison(os.Stdout, res, res.Ranked[0], gt.GoodPhone, gt.BadPhone)
	}
	if run("fig8") || run("casestudy") {
		fmt.Println("\n--- Fig. 8: property attributes (Section IV.C) ---")
		for _, p := range res.Property {
			fmt.Printf("%s: exclusivity ratio %.2f, M=%.2f (set aside, planted %q)\n",
				p.Name, p.PropertyRatio, p.Score, gt.PropertyAttr)
		}
	}
}

// fig9 reproduces Fig. 9: comparison time vs number of attributes, with
// rule cubes prebuilt. The paper's finding: linear growth, ≤ 0.8 s at
// 160 attributes — interactive.
func fig9(seed int64, records, maxAttrs int) {
	header("Fig. 9 — comparison computation time vs #attributes")
	fmt.Printf("(records behind the cubes: %d; comparison reads only cubes, so\n", records)
	fmt.Println(" time is independent of record count — the paper's claim in V.C)")
	fmt.Println("attrs    time")
	for n := 40; n <= maxAttrs; n += 40 {
		ds, err := workload.Scale(workload.ScaleConfig{Seed: seed, Records: records, Attrs: n})
		if err != nil {
			log.Fatal(err)
		}
		store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{})
		if err != nil {
			log.Fatal(err)
		}
		in := compare.Input{Attr: 0, V1: 0, V2: 1, Class: 1}
		cmp := compare.New(store)
		// Warm-up, then measure repeated comparisons for a stable time.
		if _, err := cmp.Compare(in, compare.Options{}); err != nil {
			log.Fatal(err)
		}
		const reps = 10
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := cmp.Compare(in, compare.Options{}); err != nil {
				log.Fatal(err)
			}
		}
		per := time.Since(start) / reps
		fmt.Printf("%5d    %v\n", n, per)
	}
}

// fig10 reproduces Fig. 10: rule-cube generation time vs #attributes at
// a fixed record count. Superlinear (quadratic in attributes: all pairs).
func fig10(seed int64, records, maxAttrs int) {
	header("Fig. 10 — cube generation time vs #attributes")
	fmt.Printf("(records: %d; paper used 2,000,000 — pass -records to match.\n", records)
	fmt.Println(" serial matches the paper's single-threaded generator; the parallel")
	fmt.Println(" column is this implementation's extension)")
	fmt.Println("attrs    cubes      serial          parallel")
	for n := 40; n <= maxAttrs; n += 40 {
		ds, err := workload.Scale(workload.ScaleConfig{Seed: seed, Records: records, Attrs: n})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{Parallelism: 1})
		if err != nil {
			log.Fatal(err)
		}
		serial := time.Since(start)
		start = time.Now()
		if _, err := rulecube.BuildStore(ds, rulecube.StoreOptions{}); err != nil {
			log.Fatal(err)
		}
		parallel := time.Since(start)
		fmt.Printf("%5d    %6d    %-14v  %v\n", n, store.CubeCount(), serial, parallel)
	}
}

// fig11 reproduces Fig. 11: cube generation time vs #records at a fixed
// attribute count, increasing records by duplicating the base set
// exactly as the paper does. Linear.
func fig11(seed int64, baseRecords, attrs int) {
	header("Fig. 11 — cube generation time vs #records (duplication protocol)")
	fmt.Printf("(attributes: %d; base set %d records duplicated ×1..4 — the paper\n", attrs, baseRecords)
	fmt.Println(" duplicated a 2M-record set to 2/4/6/8M)")
	base, err := workload.Scale(workload.ScaleConfig{Seed: seed, Records: baseRecords, Attrs: attrs})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("records      time (serial, as the paper)")
	for factor := 1; factor <= 4; factor++ {
		ds := base.Duplicate(factor)
		start := time.Now()
		if _, err := rulecube.BuildStore(ds, rulecube.StoreOptions{Parallelism: 1}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9d    %v\n", ds.NumRows(), time.Since(start))
	}
}

// printHead prints at most n lines of s.
func printHead(s string, n int) {
	ls := strings.Split(s, "\n")
	if len(ls) > n {
		ls = append(ls[:n], fmt.Sprintf("... (%d more lines)", len(ls)-n))
	}
	fmt.Println(strings.Join(ls, "\n"))
}
