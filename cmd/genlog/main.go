// Command genlog writes a synthetic call-log CSV with planted ground
// truth (the stand-in for the paper's confidential Motorola data).
//
// Usage:
//
//	genlog -records 100000 -phones 8 -noise 35 -o calls.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"opmap/internal/dataset"
	"opmap/internal/workload"
)

func main() {
	log.SetFlags(0)
	var (
		records = flag.Int("records", 100000, "number of call records")
		phones  = flag.Int("phones", 8, "number of phone models")
		noise   = flag.Int("noise", 35, "number of class-independent attributes")
		seed    = flag.Int64("seed", 1, "PRNG seed")
		good    = flag.Float64("good", 0.02, "good phone drop rate")
		bad     = flag.Float64("bad", 0.04, "bad phone drop rate")
		out     = flag.String("o", "", "output CSV path (default stdout)")
	)
	flag.Parse()

	ds, gt, err := workload.CallLog(workload.CallLogConfig{
		Seed:         *seed,
		Records:      *records,
		NumPhones:    *phones,
		GoodDropRate: *good,
		BadDropRate:  *bad,
		NoiseAttrs:   *noise,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *out == "" {
		if err := dataset.WriteCSV(os.Stdout, ds); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := dataset.WriteCSVFile(*out, ds); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d records × %d attributes to %s\n",
		ds.NumRows(), ds.NumAttrs(), *out)
	fmt.Fprintf(os.Stderr, "ground truth: compare %s=%s vs %s on class %s; expect %q #1, %q as property attribute\n",
		gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass,
		gt.DistinguishingAttr, gt.PropertyAttr)
}
