// Command opmap is the command-line front end of the Opportunity Map
// pipeline: load a CSV, discretize, build rule cubes, then run one of
// the analyses (overall view, detailed view, comparison, impressions,
// rule mining).
//
// Usage:
//
//	opmap -data calls.csv -class Disposition overview
//	opmap -data calls.csv -class Disposition detail -attr Phone-Model
//	opmap -data calls.csv -class Disposition compare -attr Phone-Model -v1 ph1 -v2 ph2 -target dropped-in-progress
//	opmap -data calls.csv -class Disposition impressions
//	opmap -data calls.csv -class Disposition rules -minsup 0.01 -minconf 0.5
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"opmap"
)

func usage() {
	fmt.Fprintf(os.Stderr, `opmap — Opportunity Map diagnostic mining (ICDE 2009 reproduction)

usage: opmap [global flags] <command> [command flags]

commands:
  describe      per-attribute profile of the loaded data
  overview      render the Fig. 5 overall view of all rule cubes
  detail        render the Fig. 6 detailed view of one attribute
  compare       run the automated comparison (Section IV)
  onevsrest     compare one value against the rest of the population
  pairs         screen an attribute's value pairs for significant gaps
  sweep         compare every significant pair; systemic vs specific causes
  significance  permutation test of one attribute's interestingness
  impressions   mine trends, exceptions and influential attributes
  rules         mine class association rules
  report        write a Markdown comparison report
  savecubes     materialize rule cubes and persist them to a file
  shard-build   cube one row-shard and write it as an eager snapshot
  shard-merge   merge shard snapshots into one serving snapshot (needs no -data)
  repl          interactive exploration session (overview/detail/compare/focus/back)

global flags (use -cubes FILE instead of -data to serve from persisted cubes):
`)
	flag.PrintDefaults()
}

func main() {
	log.SetFlags(0)
	var (
		data    = flag.String("data", "", "CSV or ARFF file to analyze (by extension)")
		cubes   = flag.String("cubes", "", "persisted cube store to serve from (alternative to -data)")
		class   = flag.String("class", "", "class attribute name (default: last column)")
		bins    = flag.Int("bins", 0, "bins for equal-width/frequency discretization")
		method  = flag.String("discretize", "mdlp", "discretization: mdlp, width, freq")
		svgPath = flag.String("svg", "", "also write the view as SVG to this path (detail/compare)")
	)
	flag.Usage = usage
	flag.Parse()
	// shard-merge operates purely on snapshot files: intercept it before
	// the -data/-cubes requirement below.
	if flag.Arg(0) == "shard-merge" {
		fs := flag.NewFlagSet("shard-merge", flag.ExitOnError)
		out := fs.String("o", "merged.omapsnap", "output snapshot path")
		fs.Parse(flag.Args()[1:])
		if fs.NArg() == 0 {
			log.Fatal("shard-merge: at least one source snapshot is required")
		}
		if err := opmap.MergeSnapshotFiles(*out, fs.Args()...); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "merged %d shard(s) into %s\n", fs.NArg(), *out)
		return
	}
	if (*data == "" && *cubes == "") || flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}

	var session *opmap.Session
	var err error
	if *cubes != "" {
		session, err = opmap.OpenCubesFile(*cubes)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		if strings.HasSuffix(strings.ToLower(*data), ".arff") {
			session, err = opmap.LoadARFFFile(*data, *class)
		} else {
			session, err = opmap.LoadCSVFile(*data, opmap.LoadOptions{Class: *class})
		}
		if err != nil {
			log.Fatal(err)
		}
		dopts := opmap.DiscretizeOptions{Bins: *bins}
		switch *method {
		case "mdlp":
			dopts.Method = opmap.EntropyMDLP
		case "width":
			dopts.Method = opmap.EqualWidth
		case "freq":
			dopts.Method = opmap.EqualFrequency
		default:
			log.Fatalf("unknown discretization method %q", *method)
		}
		if err := session.Discretize(dopts); err != nil {
			log.Fatal(err)
		}
	}
	fromCubes := *cubes != ""

	requireCubes := func() {
		if fromCubes {
			return // already materialized
		}
		if err := session.BuildCubes(); err != nil {
			log.Fatal(err)
		}
	}

	cmd := flag.Arg(0)
	args := flag.Args()[1:]
	switch cmd {
	case "describe":
		if err := session.Describe(os.Stdout); err != nil {
			log.Fatal(err)
		}
	case "overview":
		requireCubes()
		if err := session.RenderOverall(os.Stdout); err != nil {
			log.Fatal(err)
		}
	case "detail":
		fs := flag.NewFlagSet("detail", flag.ExitOnError)
		attr := fs.String("attr", "", "attribute to show (required)")
		fs.Parse(args)
		if *attr == "" {
			log.Fatal("detail: -attr is required")
		}
		requireCubes()
		if err := session.RenderDetailed(os.Stdout, *attr); err != nil {
			log.Fatal(err)
		}
		if *svgPath != "" {
			writeSVG(*svgPath, func(f *os.File) error {
				return session.RenderDetailedSVG(f, *attr)
			})
		}
	case "compare":
		fs := flag.NewFlagSet("compare", flag.ExitOnError)
		attr := fs.String("attr", "", "comparison attribute (required)")
		v1 := fs.String("v1", "", "first value (required)")
		v2 := fs.String("v2", "", "second value (required)")
		target := fs.String("target", "", "class of interest (required)")
		topN := fs.Int("top", 10, "attributes to list")
		level := fs.Float64("level", 0.95, "statistical confidence level")
		noCI := fs.Bool("noci", false, "disable the confidence-interval adjustment")
		fs.Parse(args)
		if *attr == "" || *v1 == "" || *v2 == "" || *target == "" {
			log.Fatal("compare: -attr, -v1, -v2 and -target are required")
		}
		requireCubes()
		cmp, err := session.Compare(*attr, *v1, *v2, *target, opmap.CompareOptions{
			ConfidenceLevel: *level,
			DisableCI:       *noCI,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s=%s (%.3f%%)  vs  %s=%s (%.3f%%) on class %s\n\n",
			*attr, cmp.Label1, 100*cmp.Cf1, *attr, cmp.Label2, 100*cmp.Cf2, *target)
		cmp.RenderRanking(os.Stdout, *topN)
		if top := cmp.Top(1); len(top) > 0 {
			fmt.Println()
			if err := cmp.RenderAttribute(os.Stdout, top[0].Name); err != nil {
				log.Fatal(err)
			}
			if *svgPath != "" {
				writeSVG(*svgPath, func(f *os.File) error {
					return cmp.RenderAttributeSVG(f, top[0].Name)
				})
			}
		}
	case "sweep":
		fs := flag.NewFlagSet("sweep", flag.ExitOnError)
		attr := fs.String("attr", "", "attribute whose value pairs to sweep (required)")
		target := fs.String("target", "", "class of interest (required)")
		maxPairs := fs.Int("pairs", 0, "max pairs to compare (0 = all significant)")
		sweepOut := fs.String("o", "", "also write a Markdown sweep report to this path")
		fs.Parse(args)
		if *attr == "" || *target == "" {
			log.Fatal("sweep: -attr and -target are required")
		}
		requireCubes()
		res, err := session.Sweep(*attr, *target, *maxPairs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("swept %d significant pairs (%d skipped)\n", res.PairsCompared, res.PairsSkipped)
		for _, a := range res.Attributes {
			fmt.Printf("  %-28s pairs=%-3d best M=%.1f (%s vs %s)\n",
				a.Name, a.Pairs, a.BestScore, a.BestPair[0], a.BestPair[1])
		}
		if *sweepOut != "" {
			f, err := os.Create(*sweepOut)
			if err != nil {
				log.Fatal(err)
			}
			err = session.WriteSweepReport(f, *attr, *target, *maxPairs,
				opmap.ReportOptions{Timestamp: time.Now()})
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *sweepOut)
		}
	case "significance":
		fs := flag.NewFlagSet("significance", flag.ExitOnError)
		attr := fs.String("attr", "", "comparison attribute (required)")
		v1 := fs.String("v1", "", "first value (required)")
		v2 := fs.String("v2", "", "second value (required)")
		target := fs.String("target", "", "class of interest (required)")
		cand := fs.String("candidate", "", "attribute whose M to test (required)")
		rounds := fs.Int("rounds", 200, "permutation rounds")
		seed := fs.Int64("seed", 1, "PRNG seed")
		fs.Parse(args)
		if *attr == "" || *v1 == "" || *v2 == "" || *target == "" || *cand == "" {
			log.Fatal("significance: -attr, -v1, -v2, -target and -candidate are required")
		}
		sig, err := session.TestSignificance(*attr, *v1, *v2, *target, *cand, *rounds, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: observed M=%.2f  null mean=%.2f q95=%.2f  p=%.4f (%d rounds)\n",
			sig.Attr, sig.Observed, sig.NullMean, sig.NullQ95, sig.PValue, sig.Rounds)
	case "onevsrest":
		fs := flag.NewFlagSet("onevsrest", flag.ExitOnError)
		attr := fs.String("attr", "", "attribute (required)")
		value := fs.String("value", "", "value to compare against the rest (required)")
		target := fs.String("target", "", "class of interest (required)")
		topN := fs.Int("top", 10, "attributes to list")
		fs.Parse(args)
		if *attr == "" || *value == "" || *target == "" {
			log.Fatal("onevsrest: -attr, -value and -target are required")
		}
		requireCubes()
		cmp, err := session.CompareOneVsRest(*attr, *value, *target, opmap.CompareOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s=%s (%.3f%%)  vs  %s (%.3f%%) on class %s\n\n",
			*attr, cmp.Label2, 100*cmp.Cf2, cmp.Label1, 100*cmp.Cf1, *target)
		cmp.RenderRanking(os.Stdout, *topN)
		if top := cmp.Top(1); len(top) > 0 {
			fmt.Println()
			if err := cmp.RenderAttribute(os.Stdout, top[0].Name); err != nil {
				log.Fatal(err)
			}
		}
	case "pairs":
		fs := flag.NewFlagSet("pairs", flag.ExitOnError)
		attr := fs.String("attr", "", "attribute to screen (required)")
		target := fs.String("target", "", "class of interest (required)")
		topN := fs.Int("top", 10, "pairs to list")
		fs.Parse(args)
		if *attr == "" || *target == "" {
			log.Fatal("pairs: -attr and -target are required")
		}
		requireCubes()
		pairs, err := session.ScreenPairs(*attr, *target, *topN)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %-14s %9s %9s %7s %9s\n", "low", "high", "rate-lo", "rate-hi", "z", "p")
		for _, p := range pairs {
			fmt.Printf("%-14s %-14s %8.3f%% %8.3f%% %7.1f %9.2g\n",
				p.Value1, p.Value2, 100*p.Cf1, 100*p.Cf2, p.Z, p.PValue)
		}
	case "report":
		fs := flag.NewFlagSet("report", flag.ExitOnError)
		attr := fs.String("attr", "", "comparison attribute (required)")
		v1 := fs.String("v1", "", "first value (required)")
		v2 := fs.String("v2", "", "second value (required)")
		target := fs.String("target", "", "class of interest (required)")
		out := fs.String("o", "", "output Markdown path (default stdout)")
		topN := fs.Int("top", 5, "attributes detailed in full")
		noGI := fs.Bool("nogi", false, "omit the general-impressions appendix")
		fs.Parse(args)
		if *attr == "" || *v1 == "" || *v2 == "" || *target == "" {
			log.Fatal("report: -attr, -v1, -v2 and -target are required")
		}
		requireCubes()
		cmp, err := session.Compare(*attr, *v1, *v2, *target, opmap.CompareOptions{})
		if err != nil {
			log.Fatal(err)
		}
		w := os.Stdout
		var f *os.File
		if *out != "" {
			f, err = os.Create(*out)
			if err != nil {
				log.Fatal(err)
			}
			w = f
		}
		err = session.WriteReport(w, cmp, opmap.ReportOptions{
			TopN:               *topN,
			Timestamp:          time.Now(),
			IncludeImpressions: !*noGI,
		})
		if f != nil {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			log.Fatal(err)
		}
		if *out != "" {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
		}
	case "repl":
		requireCubes()
		if err := session.Explore(os.Stdin, os.Stdout); err != nil {
			log.Fatal(err)
		}
	case "savecubes":
		fs := flag.NewFlagSet("savecubes", flag.ExitOnError)
		out := fs.String("o", "cubes.omap", "output path")
		fs.Parse(args)
		requireCubes()
		if err := session.SaveCubesFile(*out); err != nil {
			log.Fatal(err)
		}
		st := session.CubeStats()
		fmt.Fprintf(os.Stderr, "wrote %d cubes (%d cells ≈ %.1f MiB counts) to %s\n",
			st.Cubes, st.Cells, float64(st.Bytes)/(1<<20), *out)
	case "shard-build":
		fs := flag.NewFlagSet("shard-build", flag.ExitOnError)
		out := fs.String("o", "shard.omapsnap", "output snapshot path")
		fs.Parse(args)
		if fromCubes {
			log.Fatal("shard-build: needs -data (a cube store carries no source rows to hash)")
		}
		requireCubes()
		hash, err := opmap.HashSourceFile(*data)
		if err != nil {
			log.Fatal(err)
		}
		if err := session.SaveSnapshotFile(*out, opmap.SnapshotOptions{SourceHash: hash}); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote shard snapshot %s (%d rows)\n", *out, session.NumRows())
	case "impressions":
		requireCubes()
		imp, err := session.Impressions(opmap.ImpressionOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Influential attributes:")
		for i, inf := range imp.Influential {
			if i >= 10 {
				break
			}
			fmt.Printf("  %2d. %-28s chi2=%12.1f  p=%.3g  MI=%.5f\n",
				i+1, inf.Attr, inf.ChiSquare, inf.PValue, inf.MutualInformation)
		}
		fmt.Println("Trends:")
		for _, tr := range imp.Trends {
			fmt.Printf("  %s: %s is %s (strength %.2f)\n", tr.Class, tr.Attr, tr.Kind, tr.Strength)
		}
		fmt.Println("Exceptions:")
		for i, ex := range imp.Exceptions {
			if i >= 10 {
				break
			}
			fmt.Printf("  %s=%s -> %s: %.2f%% (expected %.2f%%, z=%.1f, n=%d)\n",
				ex.Attr, ex.Value, ex.Class, 100*ex.Confidence, 100*ex.Expected, ex.ZScore, ex.Support)
		}
	case "rules":
		fs := flag.NewFlagSet("rules", flag.ExitOnError)
		minSup := fs.Float64("minsup", 0.01, "minimum support")
		minConf := fs.Float64("minconf", 0.5, "minimum confidence")
		maxLen := fs.Int("maxlen", 2, "maximum conditions")
		limit := fs.Int("limit", 50, "rules to print")
		measure := fs.String("rank", "", "rank by measure instead (lift, chi-squared, ...)")
		query := fs.String("query", "", `filter query, e.g. "class=dropped and conf >= 0.05"`)
		fs.Parse(args)
		if *query != "" {
			rules, err := session.QueryRules(*query, opmap.MineOptions{
				MinSupport: *minSup, MinConfidence: *minConf, MaxConditions: *maxLen,
			})
			if err != nil {
				log.Fatal(err)
			}
			for i, r := range rules {
				if i >= *limit {
					break
				}
				fmt.Println(r)
			}
			fmt.Fprintf(os.Stderr, "%d rules matched\n", len(rules))
			return
		}
		if *measure != "" {
			ranked, err := session.RankRules(*measure, opmap.MineOptions{
				MinSupport: *minSup, MinConfidence: *minConf, MaxConditions: *maxLen,
			})
			if err != nil {
				log.Fatal(err)
			}
			for i, rr := range ranked {
				if i >= *limit {
					break
				}
				fmt.Printf("%8.3f  %v\n", rr.Value, rr.Rule)
			}
			return
		}
		rules, err := session.MineRules(opmap.MineOptions{
			MinSupport: *minSup, MinConfidence: *minConf, MaxConditions: *maxLen,
		})
		if err != nil {
			log.Fatal(err)
		}
		for i, r := range rules {
			if i >= *limit {
				break
			}
			fmt.Println(r)
		}
		fmt.Fprintf(os.Stderr, "%d rules total\n", len(rules))
	default:
		log.Fatalf("unknown command %q\nrun 'opmap' with no arguments for usage", cmd)
	}
}

func writeSVG(path string, f func(*os.File) error) {
	fh, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := f(fh); err != nil {
		log.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}
