// Command opmaplint runs the project's static analyzers (package
// internal/lint) over Go packages and reports diagnostics with
// file:line positions, exiting non-zero when anything is found. It is
// part of the tier-1 CI gate (see ci.sh):
//
//	go run ./cmd/opmaplint ./...
//
// Packages are enumerated with `go list`, so the usual patterns work.
// The engine type-checks from source with only the standard library —
// the module keeps zero external dependencies.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"opmap/internal/lint"
)

// listedPackage is the subset of `go list -json` output the driver
// needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
}

func main() {
	args := os.Args[1:]
	for _, a := range args {
		if a == "-h" || a == "-help" || a == "--help" {
			usage(os.Stdout)
			return
		}
	}
	if err := run(args, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "opmaplint:", err)
		os.Exit(2)
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: opmaplint [packages]")
	fmt.Fprintln(w, "")
	fmt.Fprintln(w, "Runs the project's static analyzers over the given package patterns")
	fmt.Fprintln(w, "(default ./...), printing file:line diagnostics. Exit status: 0 clean,")
	fmt.Fprintln(w, "1 findings, 2 operational error. Analyzers:")
	fmt.Fprintln(w, "")
	for _, a := range lint.All {
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, a.Doc)
	}
}

// run executes the lint pass and returns an error only for operational
// failures; findings are printed to w and surfaced via findingsError.
func run(patterns []string, w io.Writer) error {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(patterns)
	if err != nil {
		return err
	}
	cwd, _ := os.Getwd()
	loader := lint.NewLoader()
	total := 0
	for _, pkg := range pkgs {
		if len(pkg.GoFiles) == 0 {
			continue
		}
		p, err := loader.Load(pkg.ImportPath, pkg.Dir, pkg.GoFiles)
		if err != nil {
			return err
		}
		for _, d := range lint.Run(p, lint.All, lint.Allowlist) {
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
					d.Pos.Filename = rel
				}
			}
			fmt.Fprintln(w, d)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(w, "opmaplint: %d finding(s)\n", total)
		os.Exit(1)
	}
	return nil
}

// goList resolves package patterns via the go command.
func goList(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=Dir,ImportPath,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, errb.String())
	}
	dec := json.NewDecoder(&out)
	var pkgs []listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
