// Command opmaplint runs the project's static analyzers (package
// internal/lint) over Go packages and reports diagnostics, exiting
// non-zero when anything *new* is found. It is part of the tier-1 CI
// gate (see ci.sh):
//
//	go run ./cmd/opmaplint -format json ./...
//
// The v2 engine type-checks the module's package DAG in parallel,
// caches per-package results under .lintcache/ by content hash (a warm
// re-run skips unchanged packages entirely), and subtracts the
// git-tracked baseline file lint_baseline.json so only new findings
// fail the build. Output formats: text (compiler-style), json (for
// ci.sh and scripts), sarif (for code-scanning UIs). The engine
// remains zero-dependency: go/parser, go/types and the stdlib source
// importer only.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"opmap/internal/lint"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is the testable entry point. Exit status: 0 clean (no new
// findings), 1 new findings, 2 operational error.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("opmaplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		format        = fs.String("format", "text", "output format: text, json, or sarif")
		baselinePath  = fs.String("baseline", "", "baseline file (default <module root>/lint_baseline.json)")
		writeBaseline = fs.Bool("write-baseline", false, "write all current findings to the baseline file and exit 0")
		cacheDir      = fs.String("cache-dir", "", "result cache directory (default <module root>/.lintcache)")
		noCache       = fs.Bool("no-cache", false, "disable the result cache for this run")
		jobs          = fs.Int("jobs", 0, "max concurrent package analyses (default GOMAXPROCS)")
	)
	fs.Usage = func() { usage(stderr, fs) }
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "opmaplint: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}

	res, err := lint.Drive(lint.DriverConfig{
		Patterns:  fs.Args(),
		Analyzers: lint.All,
		Allow:     lint.Allowlist,
		CacheDir:  *cacheDir,
		NoCache:   *noCache,
		Jobs:      *jobs,
	})
	if err != nil {
		fmt.Fprintln(stderr, "opmaplint:", err)
		return 2
	}

	blPath := *baselinePath
	if blPath == "" {
		blPath = filepath.Join(res.ModuleRoot, lint.DefaultBaselineName)
	}

	if *writeBaseline {
		bl := lint.BaselineFrom(res.Diags)
		if err := bl.Write(blPath); err != nil {
			fmt.Fprintln(stderr, "opmaplint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "opmaplint: wrote %d baseline entrie(s) to %s\n", len(bl.Findings), blPath)
		return 0
	}

	bl, err := lint.LoadBaseline(blPath)
	if err != nil {
		fmt.Fprintln(stderr, "opmaplint:", err)
		return 2
	}
	fresh, baselined, stale := bl.Apply(res.Diags)
	rep := lint.BuildReport(res, fresh, baselined, stale)

	switch *format {
	case "text":
		err = rep.WriteText(stdout)
	case "json":
		err = rep.WriteJSON(stdout)
	case "sarif":
		err = rep.WriteSARIF(stdout, lint.All)
	}
	if err != nil {
		fmt.Fprintln(stderr, "opmaplint:", err)
		return 2
	}
	fmt.Fprintln(stderr, rep.Summary())
	for _, e := range stale {
		fmt.Fprintf(stderr, "opmaplint: stale baseline entry (finding no longer occurs): %s %s %s\n", e.Analyzer, e.File, e.Symbol)
	}
	if len(fresh) > 0 {
		return 1
	}
	return 0
}

func usage(w io.Writer, fs *flag.FlagSet) {
	fmt.Fprintln(w, "usage: opmaplint [flags] [packages]")
	fmt.Fprintln(w, "")
	fmt.Fprintln(w, "Runs the project's static analyzers over the given package patterns")
	fmt.Fprintln(w, "(default ./...). Packages unchanged since the last run are served from")
	fmt.Fprintf(w, "the %s/ result cache; findings recorded in %s\n", lint.DefaultCacheDirName, lint.DefaultBaselineName)
	fmt.Fprintln(w, "are reported but do not fail the run. Exit status: 0 clean (no new")
	fmt.Fprintln(w, "findings), 1 new findings, 2 operational error.")
	fmt.Fprintln(w, "")
	fmt.Fprintln(w, "Flags:")
	fs.PrintDefaults()
	fmt.Fprintln(w, "")
	fmt.Fprintf(w, "Analyzers (%s, up to %d parallel workers):\n", lint.EngineVersion, runtime.GOMAXPROCS(0))
	for _, a := range lint.All {
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, a.Doc)
	}
}
