package main

// Durable session snapshots for the daemon. A snapman owns one
// -snapshot-dir: at startup it warm-starts each dataset from its
// snapshot when the file is present, intact and matches the source
// content hash (eager datasets load with zero cube builds; lazy
// datasets seed their cube caches), and falls back to a cold rebuild
// otherwise. While serving, an optional background checkpointer
// rewrites each dataset's snapshot atomically whenever its engine has
// changed since the last save, so a later restart warm-starts from
// the freshest working set. Every load, fallback and checkpoint is
// counted in the obsv default registry, which opmapd's /metrics
// endpoint scrapes.

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"opmap"
	"opmap/internal/atomicfile"
	"opmap/internal/obsv"
)

// Snapshot metric families. Fallback reasons are bounded label values
// (missing, stale, corrupt, incompatible) so the series set stays
// fixed.
const (
	metricSnapLoads       = "opmapd_snapshot_loads_total"             // counter: warm starts served from a snapshot
	metricSnapFallbacks   = "opmapd_snapshot_fallbacks_total"         // counter{reason}: cold rebuilds forced at startup
	metricSnapCheckpoints = "opmapd_snapshot_checkpoint_seconds"      // histogram: atomic checkpoint write durations
	metricSnapBytes       = "opmapd_snapshot_bytes_written_total"     // counter: snapshot bytes persisted
	metricSnapErrors      = "opmapd_snapshot_checkpoint_errors_total" // counter: failed checkpoint attempts
)

// fallbackReasons enumerates the metricSnapFallbacks label values so
// the series exist from the first scrape.
var fallbackReasons = []string{"missing", "stale", "corrupt", "incompatible"}

// snapExt is the snapshot file suffix; each dataset gets
// <dir>/<name>.omapsnap.
const snapExt = ".omapsnap"

// snapman manages the snapshot directory for every served dataset.
type snapman struct {
	dir      string
	interval time.Duration
	// ingest, when ingestion is enabled, is notified after each
	// successful checkpoint so WAL segments fully covered by the
	// snapshot can be reclaimed.
	ingest *ingestman

	mu      sync.Mutex
	entries map[string]*snapEntry
	// reasons records why a dataset's warm start fell back, keyed by
	// dataset name, so the tracked status can say more than "cold".
	reasons map[string]string
}

// snapEntry is one tracked dataset: the live session to checkpoint,
// the source identity to stamp into headers, and the serving status
// reported on /api/datasets.
type snapEntry struct {
	sess   *opmap.Session
	hash   string
	status string
	// lastSig is the engine signature at the last successful save;
	// checkpoints are skipped while the signature is unchanged, so an
	// idle daemon does not rewrite identical snapshots every interval.
	lastSig string
}

// newSnapman prepares the snapshot directory (creating it, sweeping
// staging files orphaned by a crash) and pre-registers the snapshot
// metric series at zero.
func newSnapman(dir string, interval time.Duration) (*snapman, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot dir: %w", err)
	}
	if n, err := atomicfile.CleanupTemps(dir); err != nil {
		return nil, fmt.Errorf("snapshot dir: sweeping staging files: %w", err)
	} else if n > 0 {
		log.Printf("snapshot dir: removed %d staging file(s) orphaned by a crash", n)
	}
	reg := obsv.Default()
	reg.Counter(metricSnapLoads)
	for _, reason := range fallbackReasons {
		reg.Counter(metricSnapFallbacks, "reason", reason)
	}
	reg.Histogram(metricSnapCheckpoints, nil)
	reg.Counter(metricSnapBytes)
	reg.Counter(metricSnapErrors)
	return &snapman{
		dir:      dir,
		interval: interval,
		entries:  map[string]*snapEntry{},
		reasons:  map[string]string{},
	}, nil
}

// path maps a dataset name to its snapshot file. Names with path
// separators are rejected at flag validation (validName), so the join
// cannot escape the snapshot directory.
func (m *snapman) path(name string) string {
	return filepath.Join(m.dir, name+snapExt)
}

// validName reports whether a dataset name can serve as a snapshot
// file stem.
func validName(name string) bool {
	return name != "" && !strings.ContainsAny(name, "/\\") && name != "." && name != ".."
}

// loadEager attempts an eager warm start: peek the header for a cheap
// staleness check, then load the full snapshot as a ready-to-serve
// session. A missing, stale, corrupt or lazy-mode snapshot records a
// fallback and returns false — the caller rebuilds from source.
func (m *snapman) loadEager(name, hash string) (*opmap.Session, bool) {
	path := m.path(name)
	info, err := opmap.PeekSnapshotFile(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		m.fallback(name, "missing", nil)
		return nil, false
	case err != nil:
		m.fallback(name, "corrupt", err)
		return nil, false
	case info.Lazy:
		m.fallback(name, "incompatible", fmt.Errorf("snapshot holds a lazy working set; daemon is eager"))
		return nil, false
	case info.SourceHash != hash:
		m.fallback(name, "stale", nil)
		return nil, false
	}
	start := time.Now()
	sess, err := opmap.LoadSnapshotFile(path)
	if err != nil {
		// The header looked fine but the body failed integrity or
		// validation; rebuild rather than refuse to serve.
		m.fallback(name, "corrupt", err)
		return nil, false
	}
	obsv.Default().Counter(metricSnapLoads).Inc()
	m.track(name, hash, "loaded", sess)
	log.Printf("dataset %q: warm start from %s in %v (%d cubes, zero builds)",
		name, path, time.Since(start).Round(time.Millisecond), sess.CubeCount())
	return sess, true
}

// seedLazy warms a freshly built lazy session from the dataset's
// snapshot. Both lazy and eager snapshots can seed (an eager snapshot
// simply warms every cube); a missing, stale or mismatched one records
// a fallback and the session serves cold.
func (m *snapman) seedLazy(name, hash string, sess *opmap.Session) {
	path := m.path(name)
	info, err := opmap.PeekSnapshotFile(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		m.fallback(name, "missing", nil)
		m.track(name, hash, "cold", sess)
		return
	case err != nil:
		m.fallback(name, "corrupt", err)
		m.track(name, hash, "cold", sess)
		return
	case info.SourceHash != hash:
		m.fallback(name, "stale", nil)
		m.track(name, hash, "cold", sess)
		return
	}
	n, err := sess.SeedSnapshotFile(path)
	if err != nil {
		// The snapshot passed the hash check but its cubes disagree with
		// the dataset; SeedCubes rejected it without touching the caches.
		m.fallback(name, "incompatible", err)
		m.track(name, hash, "cold", sess)
		return
	}
	obsv.Default().Counter(metricSnapLoads).Inc()
	m.track(name, hash, "seeded", sess)
	log.Printf("dataset %q: seeded %d cube(s) from %s", name, n, path)
}

// trackCold registers an eager dataset that was rebuilt from source
// and checkpoints it immediately, so the expensive build is durable
// before the first request arrives. (Lazy engines go through seedLazy
// instead: they start empty and are persisted by the periodic
// checkpointer as they warm.)
func (m *snapman) trackCold(name, hash string, sess *opmap.Session) {
	m.track(name, hash, "cold", sess)
	m.mu.Lock()
	e := m.entries[name]
	m.mu.Unlock()
	m.checkpoint(name, e)
}

// track registers (or updates) a dataset entry. Warm entries start
// with the current engine signature so the checkpointer does not
// immediately rewrite the file it just loaded.
func (m *snapman) track(name, hash, status string, sess *opmap.Session) {
	e := &snapEntry{sess: sess, hash: hash, status: status}
	if status == "loaded" || status == "seeded" {
		e.lastSig = engineSig(sess)
	}
	m.mu.Lock()
	if reason, ok := m.reasons[name]; ok && status == "cold" {
		e.status = "cold (" + reason + ")"
	}
	m.entries[name] = e
	m.mu.Unlock()
}

// fallback records a warm-start failure: a counter tick, a log line,
// and the reason for the dataset's status string.
func (m *snapman) fallback(name, reason string, err error) {
	obsv.Default().Counter(metricSnapFallbacks, "reason", reason).Inc()
	m.mu.Lock()
	m.reasons[name] = reason
	m.mu.Unlock()
	if err != nil {
		log.Printf("dataset %q: snapshot fallback (%s): %v; rebuilding from source", name, reason, err)
		return
	}
	log.Printf("dataset %q: snapshot fallback (%s); rebuilding from source", name, reason)
}

// status reports a dataset's snapshot state for /api/datasets; empty
// means untracked.
func (m *snapman) status(name string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.entries[name]
	if e == nil {
		return ""
	}
	return e.status
}

// checkpoint writes one dataset's snapshot atomically, skipping the
// write when the engine is unchanged since the last save.
func (m *snapman) checkpoint(name string, e *snapEntry) {
	if e == nil {
		return
	}
	sig := engineSig(e.sess)
	m.mu.Lock()
	skip := sig == e.lastSig
	m.mu.Unlock()
	if skip {
		return
	}
	path := m.path(name)
	start := time.Now()
	// Captured before the save: the snapshot's recorded sequence is at
	// least this (appends only advance it), so truncating the WAL
	// through it can never drop a record the snapshot doesn't cover.
	walSeq := e.sess.IngestSeq()
	if err := e.sess.SaveSnapshotFile(path, opmap.SnapshotOptions{SourceHash: e.hash}); err != nil {
		obsv.Default().Counter(metricSnapErrors).Inc()
		log.Printf("dataset %q: checkpoint to %s failed: %v", name, path, err)
		return
	}
	dur := time.Since(start)
	obsv.Default().Histogram(metricSnapCheckpoints, nil).Observe(dur.Seconds())
	if fi, err := os.Stat(path); err == nil {
		obsv.Default().Counter(metricSnapBytes).Add(fi.Size())
	}
	m.mu.Lock()
	e.lastSig = sig
	m.mu.Unlock()
	log.Printf("dataset %q: checkpointed to %s in %v", name, path, dur.Round(time.Millisecond))
	if m.ingest != nil {
		m.ingest.truncated(name, walSeq)
	}
}

// checkpointAll checkpoints every tracked dataset in name order.
func (m *snapman) checkpointAll() {
	m.mu.Lock()
	names := make([]string, 0, len(m.entries))
	for name := range m.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	entries := make([]*snapEntry, len(names))
	for i, name := range names {
		entries[i] = m.entries[name]
	}
	m.mu.Unlock()
	for i, name := range names {
		m.checkpoint(name, entries[i])
	}
}

// run is the background checkpointer: every interval it persists the
// datasets whose engines changed, and on shutdown it takes one final
// checkpoint so a drained daemon leaves its freshest working set
// behind. Caller gates on interval > 0.
func (m *snapman) run(ctx context.Context) {
	t := time.NewTicker(m.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			m.checkpointAll()
			return
		case <-t.C:
			m.checkpointAll()
		}
	}
}

// engineSig summarizes the engine state that a snapshot would capture;
// two equal signatures mean a checkpoint would write the same cube
// set. Build counters are included so a lazy eviction-then-rebuild
// cycle (same count, different residents) still triggers a save; the
// row count and ingest sequence so streamed appends (which mutate
// cubes in place without builds) do too.
func engineSig(s *opmap.Session) string {
	st := s.EngineStats()
	return fmt.Sprintf("%d|%d|%d|%d|%d", s.CubeCount(), st.OneDBuilds, st.TwoDBuilds, s.NumRows(), s.IngestSeq())
}
