package main

// Shard-directory warm starts for the daemon. A shardman owns one
// -shard-dir: a directory of eager shard snapshots written by a fleet
// of shard builders (opmap shard-build). At startup it lists the
// shards in name order and assembles them into one serving session
// via opmap.LoadShardSnapshots — dictionary union, additive cube
// merge, zero cube builds. A failed assembly records a reason-labeled
// fallback (mirroring snapman's counters) and the daemon cold-builds
// from -data when that is also given, or refuses to start when it is
// not.

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"opmap"
	"opmap/internal/obsv"
)

// metricShardFallbacks counts shard-directory warm starts abandoned
// for a cold rebuild, labeled by reason. Merge durations and the
// shards-merged count are recorded by the opmap session layer itself
// (opmap.ShardMergeHistogramName, opmap.ShardsMergedCounterName).
const metricShardFallbacks = "opmapd_shard_fallbacks_total"

// shardFallbackReasons enumerates the metricShardFallbacks label
// values so the series exist from the first scrape.
var shardFallbackReasons = []string{"empty", "corrupt", "incompatible"}

// shardman manages one shard-snapshot directory and the status string
// reported on /api/datasets for the dataset assembled from it.
type shardman struct {
	dir string

	mu sync.Mutex
	// name and status describe the served merged dataset; empty until a
	// successful load.
	name   string
	status string
	reason string
}

// newShardman validates the shard directory and pre-registers the
// fallback counter series at zero.
func newShardman(dir string) (*shardman, error) {
	fi, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("shard dir: %w", err)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("shard dir: %s is not a directory", dir)
	}
	reg := obsv.Default()
	for _, reason := range shardFallbackReasons {
		reg.Counter(metricShardFallbacks, "reason", reason)
	}
	return &shardman{dir: dir}, nil
}

// load assembles the directory's shard snapshots (in file-name order,
// so shard builders control merge order by naming) into one serving
// session. On any failure it records a reason-labeled fallback and
// returns false; the caller decides whether a cold rebuild is
// available.
func (m *shardman) load(name string) (*opmap.Session, bool) {
	paths, err := filepath.Glob(filepath.Join(m.dir, "*"+snapExt))
	if err != nil || len(paths) == 0 {
		m.fallback("empty", err)
		return nil, false
	}
	sort.Strings(paths)
	start := time.Now()
	sess, err := opmap.LoadShardSnapshots(paths...)
	if err != nil {
		// Read-stage failures (wrapped "opmap: shard <path>") mean a
		// damaged or unreadable file; anything past reading is a merge
		// rejection — lazy shard, cut or schema mismatch.
		reason := "incompatible"
		if strings.HasPrefix(err.Error(), "opmap: shard ") {
			reason = "corrupt"
		}
		m.fallback(reason, err)
		return nil, false
	}
	m.mu.Lock()
	m.name = name
	m.status = fmt.Sprintf("merged (%d shards)", len(paths))
	m.mu.Unlock()
	log.Printf("dataset %q: assembled %d shard snapshot(s) from %s in %v (%d cubes, zero builds)",
		name, len(paths), m.dir, time.Since(start).Round(time.Millisecond), sess.CubeCount())
	return sess, true
}

// fallback records a failed shard assembly: a counter tick, a log
// line, and the reason for the dataset's status string.
func (m *shardman) fallback(reason string, err error) {
	obsv.Default().Counter(metricShardFallbacks, "reason", reason).Inc()
	m.mu.Lock()
	m.reason = reason
	m.mu.Unlock()
	if err != nil {
		log.Printf("shard dir %s: fallback (%s): %v", m.dir, reason, err)
		return
	}
	log.Printf("shard dir %s: fallback (%s)", m.dir, reason)
}

// trackCold marks the dataset as cold-built after a fallback, so
// /api/datasets explains why the shard assembly did not serve.
func (m *shardman) trackCold(name string) {
	m.mu.Lock()
	m.name = name
	if m.reason != "" {
		m.status = "cold (" + m.reason + ")"
	} else {
		m.status = "cold"
	}
	m.mu.Unlock()
}

// statusFor reports the assembled dataset's status for /api/datasets;
// empty means untracked.
func (m *shardman) statusFor(name string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if name != m.name {
		return ""
	}
	return m.status
}
