// Command opmapd serves the Opportunity Map analyses over HTTP: JSON
// endpoints for overview, attribute detail, pairwise / one-vs-rest
// comparison, and sweeps, over a session preloaded at startup (the
// deployed system's online serving step, Section V.C).
//
// Usage:
//
//	opmapd -data calls.csv -class Disposition -addr :8080
//	opmapd -cubes store.bin -addr :8080
//	opmapd -demo -records 20000 -addr 127.0.0.1:0 -ready-file addr.txt
//
// Endpoints:
//
//	GET /healthz                              liveness
//	GET /readyz                               readiness (503 while draining)
//	GET /api/overview?top=10                  dataset + GI-miner summary
//	GET /api/detail?attr=A&class=C            values + screened pairs
//	GET /api/compare?attr=A&v1=x&v2=y&class=C pairwise comparison
//	GET /api/compare?attr=A&value=x&class=C   one-vs-rest (degradable)
//	GET /api/sweep?attr=A&class=C&max_pairs=N degradable sweep
//	GET /metrics[?format=json]                counters + stage histograms
//	GET /debug/pprof/                         profiling (with -pprof)
//
// The daemon sheds load with 429 when too many requests are in flight,
// bounds each request with -timeout, recovers handler panics into
// 500s, and drains cleanly on SIGTERM/SIGINT. Every request emits one
// structured log line (see -log-level) and advances the counters and
// latency histograms served at /metrics; -hot-metrics additionally
// arms the per-cube and per-attribute timing histograms.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"opmap"
	"opmap/internal/obsv"
	"opmap/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("opmapd: ")
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		data         = flag.String("data", "", "CSV file to analyze")
		cubes        = flag.String("cubes", "", "persisted cube store to serve from")
		class        = flag.String("class", "", "class attribute name (default: last column)")
		demo         = flag.Bool("demo", false, "serve the synthetic call-log case study instead of a file")
		records      = flag.Int("records", 20000, "demo records")
		seed         = flag.Int64("seed", 1, "demo generator seed")
		timeout      = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown drain budget")
		maxInflight  = flag.Int("max-inflight", 16, "max concurrently served API requests (excess gets 429)")
		maxRows      = flag.Int("max-rows", 5_000_000, "max CSV data rows accepted (0 = unlimited)")
		maxCols      = flag.Int("max-cols", 4096, "max CSV columns accepted (0 = unlimited)")
		maxRecBytes  = flag.Int("max-record-bytes", 1<<20, "max bytes in one CSV record (0 = unlimited)")
		readyFile    = flag.String("ready-file", "", "write the bound address to this file once serving (for scripts)")
		probe        = flag.String("probe", "", "client mode: GET this URL, print the body, exit 0 on 2xx")
		logLevel     = flag.String("log-level", "info", "request log level: debug, info, warn or error")
		pprofOn      = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		hotMetrics   = flag.Bool("hot-metrics", false, "arm per-cube and per-attribute hot-path timing histograms")
	)
	flag.Parse()

	if *probe != "" {
		os.Exit(runProbe(*probe))
	}

	level, err := obsv.ParseLevel(*logLevel)
	if err != nil {
		log.Fatal(err)
	}
	logger := obsv.NewLogger(os.Stderr, level)
	obsv.ArmHot(*hotMetrics)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	sess, err := loadSession(ctx, *data, *cubes, *class, *demo, *records, *seed, *maxRows, *maxCols, *maxRecBytes)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := server.New(server.Config{
		Session:        sess,
		RequestTimeout: *timeout,
		MaxInFlight:    *maxInflight,
		DrainTimeout:   *drainTimeout,
		Logger:         logger,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *pprofOn {
		srv.EnablePprof()
		log.Print("pprof enabled at /debug/pprof/")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on http://%s", ln.Addr())
	if *readyFile != "" {
		if err := os.WriteFile(*readyFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if err := srv.Serve(ctx, ln); err != nil {
		log.Fatal(err)
	}
	log.Print("drained cleanly")
}

// loadSession builds the serving session from exactly one of the data
// sources and materializes its cubes under ctx, so startup aborts
// promptly on SIGTERM.
func loadSession(ctx context.Context, data, cubes, class string, demo bool, records int, seed int64, maxRows, maxCols, maxRecBytes int) (*opmap.Session, error) {
	sources := 0
	for _, set := range []bool{data != "", cubes != "", demo} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("specify exactly one of -data, -cubes, -demo")
	}
	switch {
	case cubes != "":
		// Persisted stores carry their cubes; nothing to build.
		return opmap.OpenCubesFile(cubes)
	case demo:
		sess, _, err := opmap.CaseStudy(seed, records)
		if err != nil {
			return nil, err
		}
		return sess, buildCubes(ctx, sess)
	default:
		sess, err := opmap.LoadCSVFile(data, opmap.LoadOptions{
			Class:          class,
			MaxRows:        maxRows,
			MaxColumns:     maxCols,
			MaxRecordBytes: maxRecBytes,
		})
		if err != nil {
			return nil, err
		}
		if err := sess.Discretize(opmap.DiscretizeOptions{}); err != nil {
			return nil, err
		}
		return sess, buildCubes(ctx, sess)
	}
}

func buildCubes(ctx context.Context, sess *opmap.Session) error {
	start := time.Now()
	if err := sess.BuildCubesContext(ctx); err != nil {
		return fmt.Errorf("building cubes: %w", err)
	}
	log.Printf("built %d cubes in %v", sess.CubeCount(), time.Since(start).Round(time.Millisecond))
	return nil
}

// runProbe is a minimal HTTP client so scripts (ci.sh's smoke step)
// need no external tools: GET the URL, echo the body, exit 0 iff 2xx.
func runProbe(url string) int {
	if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
		url = "http://" + url
	}
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		log.Printf("probe: %v", err)
		return 1
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		log.Printf("probe: reading body: %v", err)
		return 1
	}
	os.Stdout.Write(body)
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		log.Printf("probe: %s returned %s", url, resp.Status)
		return 1
	}
	return 0
}
