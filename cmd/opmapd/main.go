// Command opmapd serves the Opportunity Map analyses over HTTP: JSON
// endpoints for overview, attribute detail, pairwise / one-vs-rest
// comparison, and sweeps, over sessions preloaded at startup (the
// deployed system's online serving step, Section V.C).
//
// Usage:
//
//	opmapd -data calls.csv -class Disposition -addr :8080
//	opmapd -lazy -data east=east.csv -data west=west.csv -addr :8080
//	opmapd -cubes store.bin -addr :8080
//	opmapd -demo -records 20000 -addr 127.0.0.1:0 -ready-file addr.txt
//
// -data is repeatable and takes name=path or a bare path (the name
// then derives from the file name). The first -data is the default
// dataset; other datasets are addressed with the dataset query
// parameter. -lazy skips the offline cube build: cubes materialize on
// first use with singleflight dedup and a byte-budgeted LRU
// (-cube-cache-bytes), so startup is O(1) regardless of attribute
// count.
//
// -wal-dir enables crash-safe streaming ingestion: POST /api/ingest
// appends rows to a per-dataset write-ahead log, fsynced before the
// response — an acknowledged batch survives kill -9 at any point. At
// startup each dataset replays its WAL tail beyond the snapshot's
// recorded sequence in the background (/readyz reports "replaying"
// and answers 503 until recovery finishes). Batches fold into the
// session incrementally through a bounded apply queue; a full queue
// sheds with 503 + Retry-After.
//
// -shard-dir warm-starts from a directory of shard snapshots written
// by a fleet of shard builders (opmap shard-build): the shards merge
// at load — dictionary union, additive cube-count merge, zero cube
// builds — into one serving dataset, and /api/datasets reports
// "merged (N shards)". A failed assembly is counted by reason
// (opmapd_shard_fallbacks_total) and the daemon cold-builds from
// -data when that is also given.
//
// -snapshot-dir makes sessions durable: at startup each dataset
// warm-starts from <dir>/<name>.omapsnap when the snapshot matches
// the source content hash (eager datasets restore with zero cube
// builds; lazy datasets seed their caches), falling back to a cold
// rebuild on a missing, stale or corrupt file — and after a cold
// eager build the snapshot is written back immediately.
// -checkpoint-interval additionally rewrites changed snapshots in the
// background (and once more on drain), always atomically, so a crash
// mid-checkpoint never clobbers the previous good snapshot.
//
// Endpoints:
//
//	GET /healthz                              liveness
//	GET /readyz                               readiness (503 while draining)
//	GET /api/datasets                         served datasets + default
//	GET /api/overview?top=10                  dataset + GI-miner summary
//	GET /api/detail?attr=A&class=C            values + screened pairs
//	GET /api/compare?attr=A&v1=x&v2=y&class=C pairwise comparison
//	GET /api/compare?attr=A&value=x&class=C   one-vs-rest (degradable)
//	GET /api/sweep?attr=A&class=C&max_pairs=N degradable sweep
//	POST /api/drilldown                       multi-condition drill-down (JSON body)
//	POST /api/ingest                          append rows durably (with -wal-dir)
//	GET /metrics[?format=json]                counters + stage histograms
//	GET /debug/pprof/                         profiling (with -pprof)
//
// Every /api endpoint accepts dataset=NAME to pick a served dataset;
// omitting it targets the default, so single-dataset URLs are
// unchanged.
//
// The daemon sheds load with 429 when too many requests are in flight,
// bounds each request with -timeout, recovers handler panics into
// 500s, and drains cleanly on SIGTERM/SIGINT. Every request emits one
// structured log line (see -log-level) and advances the counters and
// latency histograms served at /metrics; -hot-metrics additionally
// arms the per-cube and per-attribute timing histograms.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"opmap"
	"opmap/internal/obsv"
	"opmap/internal/server"
)

// dataFlags collects repeated -data values in order.
type dataFlags []string

func (d *dataFlags) String() string     { return strings.Join(*d, ",") }
func (d *dataFlags) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("opmapd: ")
	var data dataFlags
	flag.Var(&data, "data", "CSV file to analyze as name=path or bare path; repeat to serve several datasets (first is the default)")
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		cubes        = flag.String("cubes", "", "persisted cube store to serve from")
		class        = flag.String("class", "", "class attribute name (default: last column)")
		demo         = flag.Bool("demo", false, "serve the synthetic call-log case study instead of a file")
		records      = flag.Int("records", 20000, "demo records")
		seed         = flag.Int64("seed", 1, "demo generator seed")
		timeout      = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown drain budget")
		maxInflight  = flag.Int("max-inflight", 16, "max concurrently served API requests (excess gets 429)")
		maxRows      = flag.Int("max-rows", 5_000_000, "max CSV data rows accepted (0 = unlimited)")
		maxCols      = flag.Int("max-cols", 4096, "max CSV columns accepted (0 = unlimited)")
		maxRecBytes  = flag.Int("max-record-bytes", 1<<20, "max bytes in one CSV record (0 = unlimited)")
		readyFile    = flag.String("ready-file", "", "write the bound address to this file once serving (for scripts)")
		probe        = flag.String("probe", "", "client mode: GET this URL, print the body, exit 0 on 2xx")
		probeBody    = flag.String("probe-body", "", "with -probe: POST this JSON body instead of GET")
		logLevel     = flag.String("log-level", "info", "request log level: debug, info, warn or error")
		pprofOn      = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		hotMetrics   = flag.Bool("hot-metrics", false, "arm per-cube and per-attribute hot-path timing histograms")
		lazy         = flag.Bool("lazy", false, "materialize cubes on demand instead of at startup")
		cacheBytes   = flag.Int64("cube-cache-bytes", 0, "lazy 2-D cube cache budget in bytes (0 = 64 MiB default, negative = unlimited)")
		snapDir      = flag.String("snapshot-dir", "", "directory of per-dataset session snapshots: warm-start from them at boot, checkpoint into them while serving")
		shardDir     = flag.String("shard-dir", "", "directory of shard snapshots (opmap shard-build output): merge them at boot into one serving dataset, falling back to -data on failure")
		ckptEvery    = flag.Duration("checkpoint-interval", 0, "rewrite changed snapshots in -snapshot-dir this often (0 disables the background checkpointer)")
		walDir       = flag.String("wal-dir", "", "directory of per-dataset write-ahead logs: enables POST /api/ingest with replay recovery at boot")
	)
	flag.Parse()

	if *probe != "" {
		os.Exit(runProbe(*probe, *probeBody))
	}

	level, err := obsv.ParseLevel(*logLevel)
	if err != nil {
		log.Fatal(err)
	}
	logger := obsv.NewLogger(os.Stderr, level)
	obsv.ArmHot(*hotMetrics)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	var snaps *snapman
	if *snapDir != "" {
		if *cubes != "" {
			log.Fatal("-snapshot-dir is incompatible with -cubes (a persisted store is already durable)")
		}
		snaps, err = newSnapman(*snapDir, *ckptEvery)
		if err != nil {
			log.Fatal(err)
		}
	} else if *ckptEvery != 0 {
		log.Fatal("-checkpoint-interval requires -snapshot-dir")
	}

	var shards *shardman
	if *shardDir != "" {
		if *cubes != "" || *demo {
			log.Fatal("-shard-dir is incompatible with -cubes and -demo")
		}
		if *snapDir != "" {
			log.Fatal("-shard-dir is incompatible with -snapshot-dir (the shard directory is already the durable source)")
		}
		if *lazy {
			log.Fatal("-shard-dir restores an eager merged store; -lazy is incompatible")
		}
		shards, err = newShardman(*shardDir)
		if err != nil {
			log.Fatal(err)
		}
	}

	var ingest *ingestman
	if *walDir != "" {
		if *cubes != "" {
			log.Fatal("-wal-dir is incompatible with -cubes (a persisted store has no raw rows to append to)")
		}
		ingest, err = newIngestman(*walDir)
		if err != nil {
			log.Fatal(err)
		}
	}

	sessions, defaultName, err := loadSessions(ctx, loadConfig{
		data:        data,
		cubes:       *cubes,
		class:       *class,
		demo:        *demo,
		records:     *records,
		seed:        *seed,
		maxRows:     *maxRows,
		maxCols:     *maxCols,
		maxRecBytes: *maxRecBytes,
		lazy:        *lazy,
		cacheBytes:  *cacheBytes,
		snaps:       snaps,
		shards:      shards,
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := server.Config{
		Sessions:       sessions,
		DefaultDataset: defaultName,
		RequestTimeout: *timeout,
		MaxInFlight:    *maxInflight,
		DrainTimeout:   *drainTimeout,
		Logger:         logger,
	}
	if snaps != nil {
		cfg.SnapshotStatus = snaps.status
	} else if shards != nil {
		cfg.SnapshotStatus = shards.statusFor
	}
	if ingest != nil {
		for name, sess := range sessions {
			if err := ingest.start(name, sess); err != nil {
				log.Fatal(err)
			}
		}
		cfg.Ingest = ingest.append
		cfg.IngestStatus = ingest.replaying
		if snaps != nil {
			// Checkpoints bound replay work: once a snapshot is on disk the
			// WAL records it covers are reclaimed.
			snaps.ingest = ingest
		}
		log.Printf("ingestion enabled: per-dataset WALs under %s", *walDir)
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *pprofOn {
		srv.EnablePprof()
		log.Print("pprof enabled at /debug/pprof/")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on http://%s", ln.Addr())
	if *readyFile != "" {
		if err := os.WriteFile(*readyFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	var ckptDone chan struct{}
	if snaps != nil && *ckptEvery > 0 {
		ckptDone = make(chan struct{})
		go func() {
			defer close(ckptDone)
			snaps.run(ctx)
		}()
		log.Printf("checkpointing changed snapshots to %s every %v", *snapDir, *ckptEvery)
	}
	if err := srv.Serve(ctx, ln); err != nil {
		log.Fatal(err)
	}
	if ckptDone != nil {
		// The checkpointer takes one final snapshot on shutdown; wait so
		// the freshest working set is on disk before the process exits.
		<-ckptDone
	}
	if ingest != nil {
		// After the final checkpoint, so truncation sees the snapshot's
		// sequence; drains the apply queues and closes the WALs.
		ingest.close()
	}
	log.Print("drained cleanly")
}

// loadConfig carries the data-source flags into loadSessions.
type loadConfig struct {
	data        dataFlags
	cubes       string
	class       string
	demo        bool
	records     int
	seed        int64
	maxRows     int
	maxCols     int
	maxRecBytes int
	lazy        bool
	cacheBytes  int64
	// snaps, when non-nil, enables snapshot warm starts and checkpoints
	// for every loaded dataset.
	snaps *snapman
	// shards, when non-nil, serves one dataset assembled from a
	// directory of shard snapshots, with -data as the cold fallback.
	shards *shardman
}

// loadSessions builds the serving registry from exactly one of the
// data-source families and materializes (or lazily arms) each
// session's engine under ctx, so startup aborts promptly on SIGTERM.
// The returned default is the first -data dataset.
func loadSessions(ctx context.Context, cfg loadConfig) (map[string]*opmap.Session, string, error) {
	if cfg.shards != nil {
		// The shard directory is the primary source; -data, when also
		// given, is only the cold fallback after a failed assembly.
		name := server.DefaultDatasetName
		if len(cfg.data) > 0 {
			if n, _ := splitDataSpec(cfg.data[0]); n != "" {
				name = n
			}
		}
		if sess, ok := cfg.shards.load(name); ok {
			return map[string]*opmap.Session{name: sess}, name, nil
		}
		if len(cfg.data) == 0 {
			return nil, "", fmt.Errorf("shard dir %s: no usable shard snapshots and no -data to rebuild from", cfg.shards.dir)
		}
		cfg.shards.trackCold(name)
	}
	sources := 0
	for _, set := range []bool{len(cfg.data) > 0, cfg.cubes != "", cfg.demo} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, "", fmt.Errorf("specify exactly one of -data, -cubes, -demo")
	}
	switch {
	case cfg.cubes != "":
		// Persisted stores carry their cubes eagerly; -lazy has nothing
		// to defer there.
		if cfg.lazy {
			return nil, "", fmt.Errorf("-lazy is incompatible with -cubes (a persisted store is already materialized)")
		}
		sess, err := opmap.OpenCubesFile(cfg.cubes)
		if err != nil {
			return nil, "", err
		}
		return map[string]*opmap.Session{server.DefaultDatasetName: sess}, server.DefaultDatasetName, nil
	case cfg.demo:
		// The demo dataset is fully determined by its generator
		// parameters, so the staleness hash covers those instead of a
		// source file.
		hash := opmap.HashSourceString(fmt.Sprintf("demo seed=%d records=%d", cfg.seed, cfg.records))
		sess, err := openDataset(ctx, cfg, server.DefaultDatasetName, hash, func() (*opmap.Session, error) {
			sess, _, err := opmap.CaseStudy(cfg.seed, cfg.records)
			return sess, err
		})
		if err != nil {
			return nil, "", err
		}
		return map[string]*opmap.Session{server.DefaultDatasetName: sess}, server.DefaultDatasetName, nil
	default:
		sessions := make(map[string]*opmap.Session, len(cfg.data))
		defaultName := ""
		for _, spec := range cfg.data {
			name, path := splitDataSpec(spec)
			if name == "" {
				return nil, "", fmt.Errorf("-data %q: cannot derive a dataset name; use name=path", spec)
			}
			if _, dup := sessions[name]; dup {
				return nil, "", fmt.Errorf("-data %q: dataset name %q already used", spec, name)
			}
			hash := ""
			if cfg.snaps != nil {
				if !validName(name) {
					return nil, "", fmt.Errorf("-data %q: dataset name %q cannot name a snapshot file; use name=path", spec, name)
				}
				h, err := opmap.HashSourceFile(path)
				if err != nil {
					return nil, "", fmt.Errorf("dataset %q: hashing source: %w", name, err)
				}
				hash = h
			}
			sess, err := openDataset(ctx, cfg, name, hash, func() (*opmap.Session, error) {
				sess, err := opmap.LoadCSVFile(path, opmap.LoadOptions{
					Class:          cfg.class,
					MaxRows:        cfg.maxRows,
					MaxColumns:     cfg.maxCols,
					MaxRecordBytes: cfg.maxRecBytes,
				})
				if err != nil {
					return nil, fmt.Errorf("dataset %q: %w", name, err)
				}
				if err := sess.Discretize(opmap.DiscretizeOptions{}); err != nil {
					return nil, fmt.Errorf("dataset %q: %w", name, err)
				}
				return sess, nil
			})
			if err != nil {
				return nil, "", err
			}
			sessions[name] = sess
			if defaultName == "" {
				defaultName = name
			}
		}
		return sessions, defaultName, nil
	}
}

// openDataset produces one served session: warm from the dataset's
// snapshot when possible, otherwise cold — load from source, build
// the engine, and (eager mode) checkpoint the result immediately so
// the build cost is paid at most once per source version. Lazy
// sessions always build (startup is O(1)) and are seeded from the
// snapshot afterwards.
func openDataset(ctx context.Context, cfg loadConfig, name, hash string, cold func() (*opmap.Session, error)) (*opmap.Session, error) {
	if cfg.snaps != nil && !cfg.lazy {
		if sess, ok := cfg.snaps.loadEager(name, hash); ok {
			return sess, nil
		}
	}
	sess, err := cold()
	if err != nil {
		return nil, err
	}
	if err := buildCubes(ctx, name, sess, cfg); err != nil {
		return nil, err
	}
	if cfg.snaps != nil {
		if cfg.lazy {
			cfg.snaps.seedLazy(name, hash, sess)
		} else {
			cfg.snaps.trackCold(name, hash, sess)
		}
	}
	return sess, nil
}

// splitDataSpec parses one -data value: name=path, or a bare path
// whose name derives from the file name without its extension.
func splitDataSpec(spec string) (name, path string) {
	if i := strings.IndexByte(spec, '='); i >= 0 {
		return spec[:i], spec[i+1:]
	}
	base := filepath.Base(spec)
	return strings.TrimSuffix(base, filepath.Ext(base)), spec
}

func buildCubes(ctx context.Context, name string, sess *opmap.Session, cfg loadConfig) error {
	start := time.Now()
	opts := opmap.BuildOptions{Lazy: cfg.lazy, CubeCacheBytes: cfg.cacheBytes}
	if err := sess.BuildCubesOptions(ctx, opts); err != nil {
		return fmt.Errorf("dataset %q: building cubes: %w", name, err)
	}
	if cfg.lazy {
		log.Printf("dataset %q: lazy engine ready in %v (cubes materialize on demand)", name, time.Since(start).Round(time.Millisecond))
		return nil
	}
	log.Printf("dataset %q: built %d cubes in %v", name, sess.CubeCount(), time.Since(start).Round(time.Millisecond))
	return nil
}

// runProbe is a minimal HTTP client so scripts (ci.sh's smoke step)
// need no external tools: GET the URL (or POST body as JSON when body
// is non-empty), echo the response, exit 0 iff 2xx.
func runProbe(url, body string) int {
	if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
		url = "http://" + url
	}
	client := &http.Client{Timeout: 30 * time.Second}
	var resp *http.Response
	var err error
	if body != "" {
		resp, err = client.Post(url, "application/json", strings.NewReader(body))
	} else {
		resp, err = client.Get(url)
	}
	if err != nil {
		log.Printf("probe: %v", err)
		return 1
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		log.Printf("probe: reading body: %v", err)
		return 1
	}
	os.Stdout.Write(out)
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		log.Printf("probe: %s returned %s", url, resp.Status)
		return 1
	}
	return 0
}
