package main

// Crash-safe streaming ingestion for the daemon. An ingestman owns one
// -wal-dir: each dataset gets <dir>/<name>/ with its own append-only
// WAL. A live ingest batch is appended and fsynced to the WAL before
// the HTTP response is written — the acknowledgment IS the durability
// guarantee — then handed to a bounded per-dataset apply queue whose
// single worker folds it into the session and advances the session's
// ingest sequence. At startup each dataset replays its WAL from the
// snapshot's recorded sequence + 1 in the background, gating /readyz,
// so an opmapd killed mid-ingest recovers every acknowledged row.

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"opmap"
	"opmap/internal/atomicfile"
	"opmap/internal/server"
	"opmap/internal/wal"
)

// ingestQueueDepth bounds each dataset's apply queue: batches accepted
// (durable in the WAL) but not yet folded into the session. A full
// queue sheds new batches with server.ErrBackpressure → 503.
const ingestQueueDepth = 64

// ingestman manages per-dataset ingest pipelines under one WAL
// directory.
type ingestman struct {
	dir string

	mu    sync.Mutex
	pipes map[string]*ingestPipe
}

// ingestPipe is one dataset's ingest pipeline: its WAL, the bounded
// apply queue, and the single apply worker that serializes session
// mutations.
type ingestPipe struct {
	name string
	sess *opmap.Session
	log  *wal.Log

	// appendMu orders WAL append → enqueue atomically, so the worker
	// applies batches in WAL sequence order and the session's ingest
	// sequence never regresses (a regression would make the next
	// snapshot's replay point too low and double-apply on recovery).
	appendMu sync.Mutex
	jobs     chan ingestJob
	// slots is the queue's capacity token pool, reserved BEFORE the WAL
	// append so a shed batch is rejected without becoming durable.
	slots chan struct{}

	replaying  atomic.Bool
	workerDone chan struct{}
}

type ingestJob struct {
	seq  uint64
	rows [][]string
}

// newIngestman prepares the WAL root directory. Pipes are added per
// dataset with start.
func newIngestman(dir string) (*ingestman, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal dir: %w", err)
	}
	return &ingestman{dir: dir, pipes: map[string]*ingestPipe{}}, nil
}

// start opens (recovering) the dataset's WAL and launches background
// replay followed by the apply worker. Until replay finishes the
// dataset reports replaying=true and sheds live ingests.
func (m *ingestman) start(name string, sess *opmap.Session) error {
	lg, err := wal.Open(filepath.Join(m.dir, name), wal.Options{})
	if err != nil {
		return fmt.Errorf("dataset %q: opening WAL: %w", name, err)
	}
	p := &ingestPipe{
		name:       name,
		sess:       sess,
		log:        lg,
		jobs:       make(chan ingestJob, ingestQueueDepth),
		slots:      make(chan struct{}, ingestQueueDepth),
		workerDone: make(chan struct{}),
	}
	p.replaying.Store(true)
	m.mu.Lock()
	m.pipes[name] = p
	m.mu.Unlock()
	go func() {
		defer close(p.workerDone)
		p.replayAndServe()
	}()
	return nil
}

func (m *ingestman) pipe(name string) *ingestPipe {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pipes[name]
}

// replaying reports whether the dataset's WAL replay is still running
// (the server.Config.IngestStatus hook).
func (m *ingestman) replaying(name string) bool {
	p := m.pipe(name)
	return p != nil && p.replaying.Load()
}

// append is the server.Config.Ingest hook: reserve a queue slot, make
// the batch durable, enqueue it for apply, and return its WAL
// sequence. The response the server writes from this return value is
// the durability acknowledgment.
func (m *ingestman) append(_ context.Context, name string, rows [][]string) (uint64, error) {
	p := m.pipe(name)
	if p == nil {
		return 0, fmt.Errorf("dataset %q does not accept ingestion", name)
	}
	if p.replaying.Load() {
		// Replay owns the session's append path until it finishes;
		// clients see the same 503 + Retry-After as a full queue.
		return 0, server.ErrBackpressure
	}
	// Full synchronous validation — row widths AND numeric parses,
	// exactly what Append checks before mutating — so any batch the
	// (asynchronous) apply would reject fails the request with 400 here
	// instead of being durably acked and then silently dropped.
	if err := p.sess.ValidateBatch(rows); err != nil {
		return 0, err
	}
	select {
	case p.slots <- struct{}{}:
	default:
		return 0, server.ErrBackpressure
	}
	p.appendMu.Lock()
	defer p.appendMu.Unlock()
	seq, err := p.log.Append(wal.EncodeRows(rows))
	if err != nil {
		<-p.slots
		return 0, err
	}
	// Cannot block: a slot is held, so the buffered channel has room.
	p.jobs <- ingestJob{seq: seq, rows: rows}
	return seq, nil
}

// replayAndServe replays the WAL tail beyond the warm-started
// session's ingest sequence, then flips the pipe live and runs the
// apply worker until the jobs channel closes at shutdown.
func (p *ingestPipe) replayAndServe() {
	from := p.sess.IngestSeq() + 1
	n, err := p.log.Replay(from, func(seq uint64, payload []byte) error {
		rows, derr := wal.DecodeRows(payload)
		if derr != nil {
			// The CRC matched, so this is not corruption but a writer bug;
			// surface it rather than silently dropping acknowledged rows.
			return fmt.Errorf("seq %d: %w", seq, derr)
		}
		p.applyBatch(seq, rows)
		return nil
	})
	if err != nil {
		log.Printf("dataset %q: WAL replay failed after %d record(s): %v; refusing live ingest", p.name, n, err)
		// replaying stays true: /readyz keeps reporting the dataset and
		// append keeps shedding, so the operator sees a stuck-replaying
		// dataset instead of a silently diverged one.
		return
	}
	if n > 0 {
		log.Printf("dataset %q: replayed %d WAL record(s), ingest seq %d", p.name, n, p.sess.IngestSeq())
	}
	// A snapshot can be ahead of a truncated WAL; never hand out a
	// sequence the session has already seen.
	p.log.Align(p.sess.IngestSeq() + 1)
	p.replaying.Store(false)
	for job := range p.jobs {
		p.applyBatch(job.seq, job.rows)
		<-p.slots
	}
}

// applyBatch folds one durable batch into the session, advancing the
// ingest sequence in the same critical section (AppendSeq) so a
// concurrent checkpoint can never snapshot the batch's rows without
// the sequence that makes recovery skip them. An apply error is
// logged and the batch skipped — Append validates before mutating, so
// a bad batch leaves the session consistent, and replay after a crash
// reproduces exactly the same decision.
func (p *ingestPipe) applyBatch(seq uint64, rows [][]string) {
	if err := p.sess.AppendSeq(context.Background(), rows, seq); err != nil {
		log.Printf("dataset %q: WAL batch seq %d rejected by session: %v", p.name, seq, err)
	}
}

// truncated is called by the checkpointer after a dataset's snapshot
// reached disk: WAL records at or below the snapshot's recorded
// sequence are no longer needed for recovery, so fully-covered sealed
// segments are removed and rotation orphans swept.
func (m *ingestman) truncated(name string, seq uint64) {
	p := m.pipe(name)
	if p == nil || seq == 0 {
		return
	}
	if n, err := p.log.TruncateThrough(seq); err != nil {
		log.Printf("dataset %q: WAL truncate through seq %d: %v", name, seq, err)
	} else if n > 0 {
		log.Printf("dataset %q: removed %d WAL segment(s) covered by snapshot (seq <= %d)", name, n, seq)
	}
	if n, err := atomicfile.CleanupTemps(p.log.Dir()); err != nil {
		log.Printf("dataset %q: sweeping WAL staging files: %v", name, err)
	} else if n > 0 {
		log.Printf("dataset %q: removed %d WAL staging file(s)", name, n)
	}
}

// close drains every pipe — no new appends arrive once the server has
// drained — waits for the workers to finish applying queued batches,
// and closes the WALs.
func (m *ingestman) close() {
	m.mu.Lock()
	pipes := make([]*ingestPipe, 0, len(m.pipes))
	for _, p := range m.pipes {
		pipes = append(pipes, p)
	}
	m.mu.Unlock()
	for _, p := range pipes {
		close(p.jobs)
		<-p.workerDone
		if err := p.log.Close(); err != nil {
			log.Printf("dataset %q: closing WAL: %v", p.name, err)
		}
	}
}
