package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"opmap"
)

const ingestTestCSV = `Region,Model,Temp,Outcome
north,m1,10,ok
south,m2,30,fail
east,m1,55,ok
west,m2,80,slow
north,m2,20,fail
south,m1,60,ok
`

func ingestTestSession(t *testing.T) *opmap.Session {
	t.Helper()
	s, err := opmap.LoadCSV(strings.NewReader(ingestTestCSV), opmap.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Discretize(opmap.DiscretizeOptions{Manual: map[string][]float64{"Temp": {25, 50, 75}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.BuildCubes(); err != nil {
		t.Fatal(err)
	}
	return s
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestIngestPipelineRecoversAfterRestart drives the daemon's ingest
// pipeline in-process: append batches through the hook, simulate a
// crash by abandoning the first manager, and verify a fresh manager
// over the same WAL directory replays every acknowledged row into a
// fresh session.
func TestIngestPipelineRecoversAfterRestart(t *testing.T) {
	dir := t.TempDir()
	im, err := newIngestman(dir)
	if err != nil {
		t.Fatal(err)
	}
	sess := ingestTestSession(t)
	if err := im.start("d", sess); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "initial replay", func() bool { return !im.replaying("d") })

	batch := [][]string{
		{"north", "m1", "42", "fail"},
		{"east", "m2", "77", "ok"},
	}
	seq, err := im.append(context.Background(), "d", batch)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Errorf("first batch seq = %d, want 1", seq)
	}
	// A malformed batch fails synchronously without touching the WAL.
	if _, err := im.append(context.Background(), "d", [][]string{{"short"}}); err == nil {
		t.Error("short row accepted")
	}
	waitFor(t, "batch applied", func() bool { return sess.IngestSeq() == seq })
	if got := sess.NumRows(); got != 8 {
		t.Errorf("rows after append = %d, want 8", got)
	}
	// Simulate kill -9: the WAL is already fsynced, the manager is
	// simply abandoned without a clean close.

	im2, err := newIngestman(dir)
	if err != nil {
		t.Fatal(err)
	}
	sess2 := ingestTestSession(t)
	if err := im2.start("d", sess2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "restart replay", func() bool { return !im2.replaying("d") })
	if got := sess2.NumRows(); got != 8 {
		t.Errorf("rows after replay = %d, want 8", got)
	}
	if got := sess2.IngestSeq(); got != seq {
		t.Errorf("replayed ingest seq = %d, want %d", got, seq)
	}
	im2.close()
}

// TestCheckpointSweepsWALOrphans: after a checkpoint the snapman
// notifies the ingest manager, which truncates covered segments and
// sweeps atomicfile staging orphans left in the WAL directory by a
// crash mid-rotation.
func TestCheckpointSweepsWALOrphans(t *testing.T) {
	walDir := t.TempDir()
	im, err := newIngestman(walDir)
	if err != nil {
		t.Fatal(err)
	}
	sess := ingestTestSession(t)
	if err := im.start("d", sess); err != nil {
		t.Fatal(err)
	}
	defer im.close()
	waitFor(t, "initial replay", func() bool { return !im.replaying("d") })
	seq, err := im.append(context.Background(), "d", [][]string{{"west", "m1", "5", "slow"}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "batch applied", func() bool { return sess.IngestSeq() == seq })

	snaps, err := newSnapman(t.TempDir(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	snaps.ingest = im
	snaps.track("d", "h", "cold", sess)

	// Plant a staging orphan as a crash mid-segment-rotation would.
	orphan := filepath.Join(walDir, "d", ".atomictmp-orphan")
	if err := os.WriteFile(orphan, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	snaps.checkpointAll()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("staging orphan survived the checkpoint sweep: %v", err)
	}
	// The checkpointed snapshot carries the ingest sequence.
	info, err := opmap.PeekSnapshotFile(snaps.path("d"))
	if err != nil {
		t.Fatal(err)
	}
	if info.IngestSeq != seq {
		t.Errorf("snapshot ingest seq = %d, want %d", info.IngestSeq, seq)
	}
}
