package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"opmap"
)

const ingestTestCSV = `Region,Model,Temp,Outcome
north,m1,10,ok
south,m2,30,fail
east,m1,55,ok
west,m2,80,slow
north,m2,20,fail
south,m1,60,ok
`

func ingestTestSession(t *testing.T) *opmap.Session {
	t.Helper()
	// Force Temp continuous: six rows are too few for the sniffer, and
	// the ingest tests specifically exercise the numeric parse + cut
	// binning path.
	s, err := opmap.LoadCSV(strings.NewReader(ingestTestCSV), opmap.LoadOptions{Continuous: []string{"Temp"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Discretize(opmap.DiscretizeOptions{Manual: map[string][]float64{"Temp": {25, 50, 75}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.BuildCubes(); err != nil {
		t.Fatal(err)
	}
	return s
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestIngestPipelineRecoversAfterRestart drives the daemon's ingest
// pipeline in-process: append batches through the hook, simulate a
// crash by abandoning the first manager, and verify a fresh manager
// over the same WAL directory replays every acknowledged row into a
// fresh session.
func TestIngestPipelineRecoversAfterRestart(t *testing.T) {
	dir := t.TempDir()
	im, err := newIngestman(dir)
	if err != nil {
		t.Fatal(err)
	}
	sess := ingestTestSession(t)
	if err := im.start("d", sess); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "initial replay", func() bool { return !im.replaying("d") })

	batch := [][]string{
		{"north", "m1", "42", "fail"},
		{"east", "m2", "77", "ok"},
	}
	seq, err := im.append(context.Background(), "d", batch)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Errorf("first batch seq = %d, want 1", seq)
	}
	// A malformed batch fails synchronously without touching the WAL —
	// both a wrong width and a width-correct row whose numeric field
	// cannot parse (which only full validation catches; acking it would
	// durably accept rows the apply must then drop).
	if _, err := im.append(context.Background(), "d", [][]string{{"short"}}); err == nil {
		t.Error("short row accepted")
	}
	if _, err := im.append(context.Background(), "d", [][]string{{"north", "m1", "not-a-number", "ok"}}); err == nil {
		t.Error("unparseable numeric field accepted")
	}
	waitFor(t, "batch applied", func() bool { return sess.IngestSeq() == seq })
	if got := sess.NumRows(); got != 8 {
		t.Errorf("rows after append = %d, want 8", got)
	}
	// Simulate kill -9: the WAL is already fsynced, the manager is
	// simply abandoned without a clean close.

	im2, err := newIngestman(dir)
	if err != nil {
		t.Fatal(err)
	}
	sess2 := ingestTestSession(t)
	if err := im2.start("d", sess2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "restart replay", func() bool { return !im2.replaying("d") })
	if got := sess2.NumRows(); got != 8 {
		t.Errorf("rows after replay = %d, want 8", got)
	}
	if got := sess2.IngestSeq(); got != seq {
		t.Errorf("replayed ingest seq = %d, want %d", got, seq)
	}
	im2.close()
}

// TestIngestReplayIntoRestoredSession exercises the daemon's real
// recovery pairing: a snapshot warm start (LoadSnapshotFile) followed
// by WAL replay of the tail, then live ingest. The restored session
// must bin numeric values through its remembered cuts — not register
// them as new interval-dictionary labels — in both the replayed and
// the live path.
func TestIngestReplayIntoRestoredSession(t *testing.T) {
	walDir := t.TempDir()
	im, err := newIngestman(walDir)
	if err != nil {
		t.Fatal(err)
	}
	sess := ingestTestSession(t)
	if err := im.start("d", sess); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "initial replay", func() bool { return !im.replaying("d") })

	seq1, err := im.append(context.Background(), "d", [][]string{
		{"north", "m1", "42", "fail"},
		{"east", "m2", "77", "ok"},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first batch applied", func() bool { return sess.IngestSeq() == seq1 })
	// Checkpoint: the snapshot covers seq1, so recovery replays only
	// what follows.
	snapPath := filepath.Join(t.TempDir(), "d.omapsnap")
	if err := sess.SaveSnapshotFile(snapPath, opmap.SnapshotOptions{}); err != nil {
		t.Fatal(err)
	}
	seq2, err := im.append(context.Background(), "d", [][]string{{"south", "m1", "3.7", "slow"}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "second batch applied", func() bool { return sess.IngestSeq() == seq2 })
	// Simulate kill -9 and restart from snapshot + WAL.

	restored, err := opmap.LoadSnapshotFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	im2, err := newIngestman(walDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := im2.start("d", restored); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "restart replay", func() bool { return !im2.replaying("d") })
	if got := restored.IngestSeq(); got != seq2 {
		t.Errorf("replayed ingest seq = %d, want %d", got, seq2)
	}
	if got := restored.NumRows(); got != 9 {
		t.Errorf("rows after warm start + replay = %d, want 9", got)
	}
	// Live ingest into the restored session takes the same binned path.
	seq3, err := im2.append(context.Background(), "d", [][]string{{"west", "m2", "61", "ok"}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "live batch applied", func() bool { return restored.IngestSeq() == seq3 })
	// Manual cuts {25,50,75} give exactly 4 pre-registered intervals;
	// any extra label means a raw numeric string leaked into the domain.
	vals, err := restored.Values("Temp")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 4 {
		t.Errorf("Temp domain after restored-session ingest = %v, want the 4 original intervals", vals)
	}
	im2.close()
}

// TestCheckpointSweepsWALOrphans: after a checkpoint the snapman
// notifies the ingest manager, which truncates covered segments and
// sweeps atomicfile staging orphans left in the WAL directory by a
// crash mid-rotation.
func TestCheckpointSweepsWALOrphans(t *testing.T) {
	walDir := t.TempDir()
	im, err := newIngestman(walDir)
	if err != nil {
		t.Fatal(err)
	}
	sess := ingestTestSession(t)
	if err := im.start("d", sess); err != nil {
		t.Fatal(err)
	}
	defer im.close()
	waitFor(t, "initial replay", func() bool { return !im.replaying("d") })
	seq, err := im.append(context.Background(), "d", [][]string{{"west", "m1", "5", "slow"}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "batch applied", func() bool { return sess.IngestSeq() == seq })

	snaps, err := newSnapman(t.TempDir(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	snaps.ingest = im
	snaps.track("d", "h", "cold", sess)

	// Plant a staging orphan as a crash mid-segment-rotation would.
	orphan := filepath.Join(walDir, "d", ".atomictmp-orphan")
	if err := os.WriteFile(orphan, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	snaps.checkpointAll()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("staging orphan survived the checkpoint sweep: %v", err)
	}
	// The checkpointed snapshot carries the ingest sequence.
	info, err := opmap.PeekSnapshotFile(snaps.path("d"))
	if err != nil {
		t.Fatal(err)
	}
	if info.IngestSeq != seq {
		t.Errorf("snapshot ingest seq = %d, want %d", info.IngestSeq, seq)
	}
}
