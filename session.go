package opmap

import (
	"context"
	"fmt"
	"io"
	"math"
	"sync"

	"opmap/internal/dataset"
	"opmap/internal/discretize"
	"opmap/internal/engine"
	"opmap/internal/obsv"
	"opmap/internal/rulecube"
	"opmap/internal/workload"
)

// Session is the top-level handle of the Opportunity Map pipeline: it
// owns a dataset, the discretized working copy, and the cube engine —
// either a fully materialized store (eager mode, the default) or a
// lazy source that builds cubes on first touch. Read-only queries may
// run concurrently once a BuildCubes variant has returned, and Append
// may run concurrently with them: mutations take the write side of the
// session lock, every query entry point the read side.
type Session struct {
	// mu serializes mutations (Append, Discretize, BuildCubes,
	// DownsampleMajority) against queries. Every public entry point
	// acquires it exactly once — locked methods never call other locked
	// methods, so the lock never nests.
	mu sync.RWMutex

	raw   *dataset.Dataset // as loaded; may contain continuous attributes
	ds    *dataset.Dataset // fully categorical working dataset
	cuts  map[string][]float64
	store *rulecube.Store    // eager mode only; nil in lazy mode
	src   engine.CubeSource  // set by any BuildCubes variant
	lazy  *engine.LazySource // set in lazy mode, for stats
	// results memoizes Compare/Sweep/Impressions under a snapshot
	// version; Discretize, DownsampleMajority and rebuilds invalidate
	// it wholly, appends surgically per attribute. Always non-nil.
	results *engine.ResultCache
	// rowsHint carries the source row count for sessions restored from
	// a snapshot, whose datasets start schema-only; appended rows add
	// on top of it.
	rowsHint int

	// ingestSeq is the WAL sequence of the last applied append batch,
	// recorded in snapshots so recovery knows where replay must resume.
	// Maintained by the serving layer via SetIngestSeq.
	ingestSeq uint64
	// discOpts remembers the last Discretize configuration so periodic
	// cut re-evaluation can re-run it over the grown raw data.
	discOpts *DiscretizeOptions
	// buildOpts remembers the last BuildCubesOptions configuration so a
	// cut change can rebuild the engine in place.
	buildOpts *BuildOptions
	// cutReevalEvery and sinceCutEval drive periodic cut re-evaluation:
	// every N appended rows the discretizer reruns; unchanged cuts keep
	// the engine, changed cuts rebuild it.
	cutReevalEvery int
	sinceCutEval   int
	// appendDeltas counts non-missing appended values per continuous
	// attribute since the last cut (re-)evaluation — the discretization
	// delta counters surfaced by IngestStats.
	appendDeltas map[string]int
}

// LoadOptions configures CSV loading.
type LoadOptions struct {
	// Class names the class attribute; empty means the last column.
	Class string
	// Continuous lists attributes to force-parse as continuous; others
	// are sniffed (numeric and high-cardinality ⇒ continuous).
	Continuous []string
	// Categorical lists attributes to force as categorical.
	Categorical []string
	// Comma is the field separator; zero means ','.
	Comma rune
	// MaxRows, MaxColumns and MaxRecordBytes bound untrusted input:
	// loading fails with a clear error when the stream exceeds any of
	// them. Zero means unlimited (trusted local files).
	MaxRows        int
	MaxColumns     int
	MaxRecordBytes int
}

func (o LoadOptions) csvOptions() dataset.CSVOptions {
	kinds := make(map[string]dataset.Kind)
	for _, n := range o.Continuous {
		kinds[n] = dataset.Continuous
	}
	for _, n := range o.Categorical {
		kinds[n] = dataset.Categorical
	}
	return dataset.CSVOptions{
		ClassAttr:      o.Class,
		Kinds:          kinds,
		Comma:          o.Comma,
		MaxRows:        o.MaxRows,
		MaxColumns:     o.MaxColumns,
		MaxRecordBytes: o.MaxRecordBytes,
	}
}

// LoadCSV builds a session from a header-bearing CSV stream.
func LoadCSV(r io.Reader, opts LoadOptions) (*Session, error) {
	ds, err := dataset.ReadCSV(r, opts.csvOptions())
	if err != nil {
		return nil, err
	}
	return newSession(ds), nil
}

// LoadCSVFile builds a session from a CSV file.
func LoadCSVFile(path string, opts LoadOptions) (*Session, error) {
	ds, err := dataset.ReadCSVFile(path, opts.csvOptions())
	if err != nil {
		return nil, err
	}
	return newSession(ds), nil
}

// LoadARFF builds a session from a Weka ARFF stream (nominal and
// numeric attributes; the class defaults to the last attribute).
func LoadARFF(r io.Reader, classAttr string) (*Session, error) {
	ds, err := dataset.ReadARFF(r, classAttr)
	if err != nil {
		return nil, err
	}
	return newSession(ds), nil
}

// LoadARFFFile builds a session from an ARFF file.
func LoadARFFFile(path, classAttr string) (*Session, error) {
	ds, err := dataset.ReadARFFFile(path, classAttr)
	if err != nil {
		return nil, err
	}
	return newSession(ds), nil
}

func newSession(ds *dataset.Dataset) *Session {
	s := &Session{raw: ds, results: engine.NewResultCache(0)}
	if ds.AllCategorical() {
		s.ds = ds
	}
	return s
}

// CallLogConfig parameterizes the synthetic cellular call log (the
// stand-in for the paper's confidential Motorola data; see DESIGN.md).
type CallLogConfig struct {
	Seed         int64
	Records      int
	NumPhones    int
	GoodDropRate float64 // drop rate of the good phone (paper: 2%)
	BadDropRate  float64 // overall drop rate of the bad phone (paper: 4%)
	NoiseAttrs   int     // class-independent attributes
}

// CallLogTruth describes the planted structure of a generated call log,
// so callers can verify what the comparator should find.
type CallLogTruth struct {
	PhoneAttr          string
	GoodPhone          string
	BadPhone           string
	DropClass          string
	DistinguishingAttr string // must rank #1 in the comparison
	SecondaryAttr      string // weaker planted effect
	ProportionalAttr   string // Fig. 2(A): expected, uninteresting
	PropertyAttr       string // Section IV.C: set aside
	NoiseAttrs         []string
}

// GenerateCallLog builds a session over a synthetic call log with
// planted ground truth.
func GenerateCallLog(cfg CallLogConfig) (*Session, CallLogTruth, error) {
	ds, gt, err := workload.CallLog(workload.CallLogConfig{
		Seed:         cfg.Seed,
		Records:      cfg.Records,
		NumPhones:    cfg.NumPhones,
		GoodDropRate: cfg.GoodDropRate,
		BadDropRate:  cfg.BadDropRate,
		NoiseAttrs:   cfg.NoiseAttrs,
	})
	if err != nil {
		return nil, CallLogTruth{}, err
	}
	truth := CallLogTruth{
		PhoneAttr:          gt.PhoneAttr,
		GoodPhone:          gt.GoodPhone,
		BadPhone:           gt.BadPhone,
		DropClass:          gt.DropClass,
		DistinguishingAttr: gt.DistinguishingAttr,
		SecondaryAttr:      gt.SecondaryAttr,
		ProportionalAttr:   gt.ProportionalAttr,
		PropertyAttr:       gt.PropertyAttr,
		NoiseAttrs:         gt.NoiseAttrs,
	}
	return newSession(ds), truth, nil
}

// CaseStudy builds the Section V.B case-study session: a 41-attribute
// call log (40 condition attributes + class).
func CaseStudy(seed int64, records int) (*Session, CallLogTruth, error) {
	return GenerateCallLog(CallLogConfig{Seed: seed, Records: records, NumPhones: 8, NoiseAttrs: 35})
}

// DrillCaseTruth describes the planted structure of a drill-down case
// workload: a decoy one-condition effect the plain comparison
// surfaces, and a two-condition effect only a drill-down ranks first.
type DrillCaseTruth struct {
	PhoneAttr string
	GoodPhone string
	BadPhone  string
	DropClass string

	// SurfaceAttr=SurfaceValue is the decoy: the attribute the
	// one-condition ranking puts on top.
	SurfaceAttr  string
	SurfaceValue string

	// JointAttrA=JointValueA & JointAttrB=JointValueB is the planted
	// conjunction; DrillDown should rank it first.
	JointAttrA  string
	JointValueA string
	JointAttrB  string
	JointValueB string
}

// GenerateDrillCase builds a session over a synthetic call log whose
// dominant planted effect needs two conditions to express (the
// drill-down demonstration workload). Zero records means the workload
// default (60000).
func GenerateDrillCase(seed int64, records int) (*Session, DrillCaseTruth, error) {
	ds, gt, err := workload.DrillLog(workload.DrillLogConfig{Seed: seed, Records: records})
	if err != nil {
		return nil, DrillCaseTruth{}, err
	}
	truth := DrillCaseTruth{
		PhoneAttr:    gt.PhoneAttr,
		GoodPhone:    gt.GoodPhone,
		BadPhone:     gt.BadPhone,
		DropClass:    gt.DropClass,
		SurfaceAttr:  gt.SurfaceAttr,
		SurfaceValue: gt.SurfaceValue,
		JointAttrA:   gt.JointAttrA,
		JointValueA:  gt.JointValueA,
		JointAttrB:   gt.JointAttrB,
		JointValueB:  gt.JointValueB,
	}
	return newSession(ds), truth, nil
}

// ManufacturingTruth describes the planted structure of the synthetic
// production log.
type ManufacturingTruth struct {
	MachineAttr        string
	GoodMachine        string
	BadMachine         string
	DefectClass        string
	DistinguishingAttr string
	BadSupplier        string
	PropertyAttr       string
	ContinuousAttrs    []string
}

// GenerateManufacturing builds a session over a synthetic production
// log with two continuous attributes (exercising the discretizer).
func GenerateManufacturing(seed int64, records int) (*Session, ManufacturingTruth, error) {
	ds, gt, err := workload.Manufacturing(workload.ManufacturingConfig{Seed: seed, Records: records})
	if err != nil {
		return nil, ManufacturingTruth{}, err
	}
	truth := ManufacturingTruth{
		MachineAttr:        gt.MachineAttr,
		GoodMachine:        gt.GoodMachine,
		BadMachine:         gt.BadMachine,
		DefectClass:        gt.DefectClass,
		DistinguishingAttr: gt.DistinguishingAttr,
		BadSupplier:        gt.BadSupplier,
		PropertyAttr:       gt.PropertyAttr,
		ContinuousAttrs:    gt.ContinuousAttrs,
	}
	return newSession(ds), truth, nil
}

// DiscretizeMethod selects a discretization strategy.
type DiscretizeMethod uint8

// Supported discretization strategies (Section V.A's discretizer).
const (
	// EntropyMDLP is the supervised Fayyad–Irani method (default).
	EntropyMDLP DiscretizeMethod = iota
	// EqualWidth bins the value range uniformly.
	EqualWidth
	// EqualFrequency bins by quantiles.
	EqualFrequency
	// ChiMerge merges adjacent intervals bottom-up until their class
	// distributions differ significantly (Kerber 1992).
	ChiMerge
)

// DiscretizeOptions configures Discretize. The zero value uses
// entropy-MDLP.
type DiscretizeOptions struct {
	Method DiscretizeMethod
	// Bins applies to EqualWidth/EqualFrequency; zero means 10.
	Bins int
	// Manual supplies explicit cut points per attribute name; attributes
	// listed here bypass Method (the paper's manual option).
	Manual map[string][]float64
}

// Discretize converts every continuous attribute to categorical
// intervals. It is a no-op when the dataset is already categorical.
func (s *Session) Discretize(opts DiscretizeOptions) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.discOpts = &opts
	s.sinceCutEval = 0
	s.appendDeltas = nil
	return s.discretizeLocked(opts)
}

// discretizeLocked is Discretize's body, shared with periodic cut
// re-evaluation during appends. Callers hold the write lock.
func (s *Session) discretizeLocked(opts DiscretizeOptions) error {
	if s.raw.AllCategorical() {
		s.ds = s.raw
		// Even a no-op re-discretize resets the engine: the caller asked
		// for a fresh working dataset, and a stale result cache fenced to
		// the old snapshot version must not survive the request.
		s.dropEngine()
		return nil
	}
	d, err := s.discretizer(opts)
	if err != nil {
		return err
	}
	ds, cuts, err := discretize.Apply(s.raw, d)
	if err != nil {
		return err
	}
	s.ds = ds
	s.cuts = cuts
	s.dropEngine() // cubes and cached results over the old dataset are invalid
	return nil
}

// discretizer resolves DiscretizeOptions to a discretize.Discretizer.
func (s *Session) discretizer(opts DiscretizeOptions) (discretize.Discretizer, error) {
	var d discretize.Discretizer
	switch opts.Method {
	case EqualWidth:
		bins := opts.Bins
		if bins == 0 {
			bins = 10
		}
		d = discretize.EqualWidth{Bins: bins}
	case EqualFrequency:
		bins := opts.Bins
		if bins == 0 {
			bins = 10
		}
		d = discretize.EqualFrequency{Bins: bins}
	case ChiMerge:
		d = discretize.ChiMerge{MaxIntervals: opts.Bins}
	case EntropyMDLP:
		d = discretize.MDLP{}
	default:
		return nil, fmt.Errorf("opmap: unknown discretize method %d", opts.Method)
	}
	if len(opts.Manual) > 0 {
		d = &manualOverride{fallback: d, manual: opts.Manual, schemaAttr: s.raw}
	}
	return d, nil
}

// dropEngine discards the cube engine and fences the result cache:
// after a re-discretize or resample, counts from the old cube space
// must be neither served nor inserted.
func (s *Session) dropEngine() {
	s.store = nil
	s.src = nil
	s.lazy = nil
	s.results.Invalidate()
}

// manualOverride routes named attributes to manual cut points and the
// rest to the fallback discretizer. discretize.Apply calls Cuts once per
// continuous attribute; we recover which attribute via a cursor over the
// schema, mirroring Apply's iteration order.
type manualOverride struct {
	fallback   discretize.Discretizer
	manual     map[string][]float64
	schemaAttr *dataset.Dataset
	cursor     int
}

// Name implements discretize.Discretizer.
func (m *manualOverride) Name() string { return "manual+" + m.fallback.Name() }

// Cuts implements discretize.Discretizer.
func (m *manualOverride) Cuts(values []float64, classes []int32, numClasses int) ([]float64, error) {
	// Advance to the next continuous attribute in schema order.
	name := ""
	for ; m.cursor < m.schemaAttr.NumAttrs(); m.cursor++ {
		if m.schemaAttr.Attr(m.cursor).Kind == dataset.Continuous {
			name = m.schemaAttr.Attr(m.cursor).Name
			m.cursor++
			break
		}
	}
	if pts, ok := m.manual[name]; ok {
		return discretize.Manual{Points: pts}.Cuts(values, classes, numClasses)
	}
	return m.fallback.Cuts(values, classes, numClasses)
}

// Cuts returns the cut points chosen for each discretized attribute
// (empty until Discretize has run on a dataset with continuous
// attributes).
func (s *Session) Cuts() map[string][]float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cuts
}

// BuildCubes materializes all 2-D and 3-D rule cubes over the working
// dataset (the deployed system's offline step, Section V.C).
func (s *Session) BuildCubes() error {
	return s.BuildCubesForContext(context.Background(), nil)
}

// BuildCubesContext is BuildCubes under a context: cancellation stops
// the cube counting promptly (between individual cube builds) and
// returns ctx.Err() without leaking the parallel pair-counting
// workers.
func (s *Session) BuildCubesContext(ctx context.Context) error {
	return s.BuildCubesForContext(ctx, nil)
}

// BuildCubesFor materializes cubes restricted to the named attributes
// (nil means all). Restricting mirrors the paper's domain-expert
// selection of the ~200 performance-related attributes out of 600.
func (s *Session) BuildCubesFor(attrNames []string) error {
	return s.BuildCubesForContext(context.Background(), attrNames)
}

// BuildCubesForContext is BuildCubesFor under a context.
func (s *Session) BuildCubesForContext(ctx context.Context, attrNames []string) error {
	return s.BuildCubesOptions(ctx, BuildOptions{Attrs: attrNames})
}

// BuildOptions selects the cube engine behind the session's queries.
type BuildOptions struct {
	// Lazy skips the offline materialization entirely: cubes are
	// counted on first use, deduplicated across concurrent requests,
	// and 2-D cubes are cached in a byte-budgeted LRU. Startup becomes
	// O(1) instead of O(|A|²) data passes; the first touch of each cube
	// pays its build. Eager-only operations (SaveCubes, Explore,
	// CubeExceptions, RenderOverall) are unavailable in lazy mode.
	Lazy bool
	// CubeCacheBytes bounds the lazy 2-D cube cache. Zero means the
	// engine default (64 MiB); negative means unlimited. Ignored when
	// Lazy is false.
	CubeCacheBytes int64
	// Attrs restricts the servable attributes by name; nil means all
	// non-class attributes (the paper's domain-expert selection of the
	// ~200 performance-related attributes out of 600).
	Attrs []string
}

// BuildCubesOptions prepares the session's cube engine: eagerly
// materializing the full store (the paper's offline step) or, with
// opts.Lazy, installing an on-demand engine. Either way the previous
// engine and all cached query results are dropped first.
func (s *Session) BuildCubesOptions(ctx context.Context, opts BuildOptions) error {
	defer obsv.Stage(obsv.StageBuildCubes)()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buildOpts = &opts
	return s.buildCubesLocked(ctx, opts)
}

// buildCubesLocked is BuildCubesOptions's body, shared with the engine
// rebuild after a cut re-evaluation changes the working dataset.
// Callers hold the write lock.
func (s *Session) buildCubesLocked(ctx context.Context, opts BuildOptions) error {
	ds, err := s.working()
	if err != nil {
		return err
	}
	attrs, err := attrIndexes(ds, opts.Attrs)
	if err != nil {
		return err
	}
	if opts.Lazy {
		lazy, err := engine.NewLazy(ds, engine.LazyOptions{Attrs: attrs, CacheBytes: opts.CubeCacheBytes})
		if err != nil {
			return err
		}
		s.dropEngine()
		s.src = lazy
		s.lazy = lazy
		return nil
	}
	store, err := rulecube.BuildStoreContext(ctx, ds, rulecube.StoreOptions{Attrs: attrs})
	if err != nil {
		return err
	}
	s.dropEngine()
	s.store = store
	s.src = engine.NewEager(store)
	return nil
}

// attrIndexes resolves attribute names to dataset indexes; nil input
// stays nil (meaning "all attributes" to the cube builders).
func attrIndexes(ds *dataset.Dataset, names []string) ([]int, error) {
	var attrs []int
	for _, n := range names {
		i := ds.AttrIndex(n)
		if i < 0 {
			return nil, fmt.Errorf("opmap: unknown attribute %q", n)
		}
		attrs = append(attrs, i)
	}
	return attrs, nil
}

// working returns the categorical working dataset, erroring with
// guidance if Discretize is still needed.
func (s *Session) working() (*dataset.Dataset, error) {
	if s.ds == nil {
		return nil, fmt.Errorf("opmap: dataset has continuous attributes; call Discretize first")
	}
	return s.ds, nil
}

// requireStore returns the eager cube store, erroring if BuildCubes
// has not run. Operations that persist, explore or render whole
// stores need every cube resident and stay eager-only.
func (s *Session) requireStore() (*rulecube.Store, error) {
	if s.store == nil {
		if s.src != nil {
			return nil, fmt.Errorf("opmap: operation requires eagerly built cubes; the session is in lazy mode (rebuild with BuildCubes)")
		}
		return nil, fmt.Errorf("opmap: rule cubes not built; call BuildCubes first")
	}
	return s.store, nil
}

// requireSource returns the cube engine, erroring if no BuildCubes
// variant has run.
func (s *Session) requireSource() (engine.CubeSource, error) {
	if s.src == nil {
		return nil, fmt.Errorf("opmap: rule cubes not built; call BuildCubes first")
	}
	return s.src, nil
}

// NumRows returns the number of records. Sessions restored from a
// snapshot hold a schema-only dataset; for them this is the row count
// recorded when the snapshot was taken.
func (s *Session) NumRows() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.numRows()
}

// numRows is NumRows without the lock, for callers already holding it
// (buildSnapshot runs under the read lock). Restored sessions start
// with a schema-only dataset, so the hint and the live count add.
func (s *Session) numRows() int {
	return s.rowsHint + s.raw.NumRows()
}

// Attributes returns all attribute names including the class, in schema
// order.
func (s *Session) Attributes() []string {
	out := make([]string, s.raw.NumAttrs())
	for i := range out {
		out[i] = s.raw.Attr(i).Name
	}
	return out
}

// ClassAttribute returns the name of the class attribute.
func (s *Session) ClassAttribute() string {
	return s.raw.Attr(s.raw.ClassIndex()).Name
}

// Classes returns the class labels in code order.
func (s *Session) Classes() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.raw.ClassDict().Labels()
}

// Values returns the value labels of a categorical attribute of the
// working dataset (discretized intervals for originally continuous
// attributes), in code order.
func (s *Session) Values(attr string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, err := s.working()
	if err != nil {
		return nil, err
	}
	i := ds.AttrIndex(attr)
	if i < 0 {
		return nil, fmt.Errorf("opmap: unknown attribute %q", attr)
	}
	return ds.Column(i).Dict.Labels(), nil
}

// ClassDistribution returns label → record count for the class
// attribute.
func (s *Session) ClassDistribution() map[string]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	dist := s.raw.ClassDistribution()
	out := make(map[string]int64, len(dist))
	for c, n := range dist {
		out[s.raw.ClassDict().Label(int32(c))] = n
	}
	return out
}

// CubeCount returns the number of resident rule cubes: everything the
// store holds in eager mode, the pinned 1-D plus cached 2-D cubes in
// lazy mode, 0 before any BuildCubes variant.
func (s *Session) CubeCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.store != nil {
		return s.store.CubeCount()
	}
	if s.lazy != nil {
		st := s.lazy.Stats()
		return st.PinnedOneD + st.CachedCubes
	}
	return 0
}

// satAdd and satMul are saturating int64 arithmetic: wide or
// high-cardinality schemas can push the rule-space size past any
// fixed-width integer, and a clamped count is more useful than a
// silently wrapped one.
func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// RuleSpaceSize returns the total number of rules the session's cube
// space represents (the count of cube cells, as in Fig. 1's "24
// rules"), saturating at math.MaxInt64. In eager mode it counts the
// materialized cubes; in lazy mode it is computed from the schema —
// the size of the space the engine can serve, whether or not the
// cubes are resident yet.
func (s *Session) RuleSpaceSize() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.store != nil {
		var total int64
		attrs := s.store.Attrs()
		for _, a := range attrs {
			if c := s.store.Cube1(a); c != nil {
				total = satAdd(total, c.SizeBytes()/8)
			}
		}
		for i, a := range attrs {
			for _, b := range attrs[i+1:] {
				if c := s.store.Cube2(a, b); c != nil {
					total = satAdd(total, c.SizeBytes()/8)
				}
			}
		}
		return total
	}
	if s.lazy == nil {
		return 0
	}
	cells := func(attrs ...int) int64 {
		n := int64(s.ds.NumClasses())
		for _, a := range attrs {
			card := int64(s.ds.Cardinality(a))
			if card <= 0 {
				card = 1
			}
			n = satMul(n, card)
		}
		return n
	}
	var total int64
	attrs := s.lazy.Attrs()
	for _, a := range attrs {
		total = satAdd(total, cells(a))
	}
	for i, a := range attrs {
		for _, b := range attrs[i+1:] {
			total = satAdd(total, cells(a, b))
		}
	}
	return total
}

// EngineStats describes the cube engine's caches: build counts, the
// 2-D cube LRU, and the query-result cache. Zero-valued in eager mode
// except the result-cache fields.
type EngineStats struct {
	// Lazy reports whether the session runs the on-demand engine.
	Lazy bool
	// OneDBuilds and TwoDBuilds count cube materializations performed
	// by the lazy engine.
	OneDBuilds int64
	TwoDBuilds int64
	// CubeCacheHits/Misses/Evictions/Bytes/Cubes describe the 2-D LRU.
	CubeCacheHits      int64
	CubeCacheMisses    int64
	CubeCacheEvictions int64
	CubeCacheBytes     int64
	CubeCacheCubes     int
	// ResultCacheHits/Misses/Entries describe the memoized
	// Compare/Sweep/Impressions results.
	ResultCacheHits    int64
	ResultCacheMisses  int64
	ResultCacheEntries int
}

// EngineStats snapshots the engine's cache counters.
func (s *Session) EngineStats() EngineStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := EngineStats{}
	if s.lazy != nil {
		ls := s.lazy.Stats()
		st.Lazy = true
		st.OneDBuilds = ls.OneDBuilds
		st.TwoDBuilds = ls.TwoDBuilds
		st.CubeCacheHits = ls.Hits
		st.CubeCacheMisses = ls.Misses
		st.CubeCacheEvictions = ls.Evictions
		st.CubeCacheBytes = ls.CachedBytes
		st.CubeCacheCubes = ls.CachedCubes
	}
	rs := s.results.Stats()
	st.ResultCacheHits = rs.Hits
	st.ResultCacheMisses = rs.Misses
	st.ResultCacheEntries = rs.Entries
	return st
}
