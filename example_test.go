package opmap_test

import (
	"bytes"
	"fmt"
	"log"

	"opmap"
)

// Example demonstrates the full pipeline on a synthetic call log: the
// planted distinguishing attribute (Time-of-Call) is recovered at rank 1
// and the planted property attribute is set aside.
func Example() {
	session, truth, err := opmap.GenerateCallLog(opmap.CallLogConfig{
		Seed:    42,
		Records: 40000,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := session.Discretize(opmap.DiscretizeOptions{}); err != nil {
		log.Fatal(err)
	}
	if err := session.BuildCubes(); err != nil {
		log.Fatal(err)
	}
	cmp, err := session.Compare(truth.PhoneAttr, truth.GoodPhone, truth.BadPhone,
		truth.DropClass, opmap.CompareOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top attribute:", cmp.Top(1)[0].Name)
	for _, p := range cmp.PropertyAttributes() {
		fmt.Println("property attribute:", p.Name)
	}
	// Output:
	// top attribute: Time-of-Call
	// property attribute: Phone-Hardware-Version
}

// ExampleSession_ScreenPairs shows the automated pre-step: find the most
// divergent value pair before running the comparison.
func ExampleSession_ScreenPairs() {
	session, truth, err := opmap.GenerateCallLog(opmap.CallLogConfig{Seed: 42, Records: 40000})
	if err != nil {
		log.Fatal(err)
	}
	if err := session.Discretize(opmap.DiscretizeOptions{}); err != nil {
		log.Fatal(err)
	}
	if err := session.BuildCubes(); err != nil {
		log.Fatal(err)
	}
	pairs, err := session.ScreenPairs(truth.PhoneAttr, truth.DropClass, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("most divergent pair: %s vs %s\n", pairs[0].Value1, pairs[0].Value2)
	// Output:
	// most divergent pair: ph1 vs ph2
}

// ExampleSession_CompareOneVsRest compares morning calls against all
// other calls — the paper's Section III.C non-product use case.
func ExampleSession_CompareOneVsRest() {
	session, truth, err := opmap.GenerateCallLog(opmap.CallLogConfig{Seed: 42, Records: 40000})
	if err != nil {
		log.Fatal(err)
	}
	if err := session.Discretize(opmap.DiscretizeOptions{}); err != nil {
		log.Fatal(err)
	}
	if err := session.BuildCubes(); err != nil {
		log.Fatal(err)
	}
	cmp, err := session.CompareOneVsRest(truth.DistinguishingAttr, "morning",
		truth.DropClass, opmap.CompareOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s vs %s\n", cmp.Label2, cmp.Label1)
	// Output:
	// morning vs rest
}

// ExampleOpenCubes shows the offline/online split: cubes persisted once,
// comparisons served later without the raw data.
func ExampleOpenCubes() {
	session, truth, err := opmap.GenerateCallLog(opmap.CallLogConfig{Seed: 42, Records: 40000})
	if err != nil {
		log.Fatal(err)
	}
	if err := session.Discretize(opmap.DiscretizeOptions{}); err != nil {
		log.Fatal(err)
	}
	if err := session.BuildCubes(); err != nil {
		log.Fatal(err)
	}
	var blob bytes.Buffer
	if err := session.SaveCubes(&blob); err != nil {
		log.Fatal(err)
	}

	// Later, possibly on another machine: no raw data needed.
	live, err := opmap.OpenCubes(&blob)
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := live.Compare(truth.PhoneAttr, truth.GoodPhone, truth.BadPhone,
		truth.DropClass, opmap.CompareOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top attribute from reloaded cubes:", cmp.Top(1)[0].Name)
	// Output:
	// top attribute from reloaded cubes: Time-of-Call
}
