package opmap

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"opmap/internal/dataset"
	"opmap/internal/workload"
)

// TestFullPipelineCSVToReport exercises the entire user-visible flow the
// way the deployed system runs it: generate data → export CSV (the
// customer's file) → load → discretize → build cubes → persist cubes →
// reload → screen pairs → compare → drill down with a where-clause →
// write the report. Every artifact crosses a serialization boundary.
func TestFullPipelineCSVToReport(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "calls.csv")
	cubePath := filepath.Join(dir, "cubes.omap")

	// 1. The "customer data": synthetic call log written to CSV.
	ds, gt, err := workload.CallLog(workload.CallLogConfig{Seed: 1234, Records: 40000, NoiseAttrs: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSVFile(csvPath, ds); err != nil {
		t.Fatal(err)
	}

	// 2. Load and run the offline stage.
	s, err := LoadCSVFile(csvPath, LoadOptions{Class: "Disposition"})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRows() != 40000 {
		t.Fatalf("rows = %d", s.NumRows())
	}
	if err := s.Discretize(DiscretizeOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := s.BuildCubes(); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCubesFile(cubePath); err != nil {
		t.Fatal(err)
	}

	// 3. The interactive stage runs from the persisted cubes alone.
	live, err := OpenCubesFile(cubePath)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := live.ScreenPairs(gt.PhoneAttr, gt.DropClass, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Fatal("screening found nothing")
	}
	top := pairs[0]
	if top.Value2 != gt.BadPhone {
		t.Errorf("screened pair (%s,%s), planted bad phone %s", top.Value1, top.Value2, gt.BadPhone)
	}
	cmp, err := live.Compare(gt.PhoneAttr, top.Value1, top.Value2, gt.DropClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Top(1)[0].Name != gt.DistinguishingAttr {
		t.Fatalf("pipeline top attribute = %q, want %q", cmp.Top(1)[0].Name, gt.DistinguishingAttr)
	}

	// 4. Drill-down needs raw data: run it on the CSV-backed session.
	within, err := s.CompareWhere(gt.PhoneAttr, top.Value1, top.Value2, gt.DropClass,
		map[string]string{gt.DistinguishingAttr: "morning"}, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if within.Cf2 <= cmp.Cf2 {
		t.Errorf("drill-down rate %.4f should exceed overall %.4f", within.Cf2, cmp.Cf2)
	}

	// 5. The report ties it together.
	var buf bytes.Buffer
	if err := s.WriteReport(&buf, cmp, ReportOptions{TopN: 3, IncludeImpressions: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{gt.DistinguishingAttr, gt.PropertyAttr, "morning", "Attribute ranking"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestPipelineWithUnbalancedSampling mirrors the paper's pre-mining
// step: down-sample the majority class, then verify the comparison still
// recovers the planted attribute (rates change, the structure does not).
func TestPipelineWithUnbalancedSampling(t *testing.T) {
	ds, gt, err := workload.CallLog(workload.CallLogConfig{Seed: 5, Records: 80000, NoiseAttrs: 4})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := dataset.UnbalancedSample(ds, dataset.SampleOptions{
		Seed:         1,
		KeepFraction: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sampled.NumRows() >= ds.NumRows() {
		t.Fatal("sampling did not shrink the data")
	}
	s := sessionFromDataset(t, sampled)
	cmp, err := s.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Top(1)[0].Name != gt.DistinguishingAttr {
		t.Errorf("after sampling, top = %q, want %q", cmp.Top(1)[0].Name, gt.DistinguishingAttr)
	}
	// Rates inflate under sampling, but orientation must hold.
	if cmp.Cf1 >= cmp.Cf2 {
		t.Error("orientation broken after sampling")
	}
}

// sessionFromDataset adapts an internal dataset into a public Session by
// round-tripping through CSV (the only public ingestion path).
func sessionFromDataset(t *testing.T, ds *dataset.Dataset) *Session {
	t.Helper()
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	s, err := LoadCSV(&buf, LoadOptions{Class: ds.Attr(ds.ClassIndex()).Name})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Discretize(DiscretizeOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := s.BuildCubes(); err != nil {
		t.Fatal(err)
	}
	return s
}
