package opmap

import (
	"fmt"
	"io"
	"time"

	"opmap/internal/engine"
	"opmap/internal/rulecube"
	"opmap/internal/snapshot"
)

// Session snapshots: the durable form of a served session. An eager
// session snapshots its full cube store and can be reloaded standalone
// (LoadSnapshot) with zero cube builds; a lazy session snapshots the
// cubes resident at the time, which a fresh lazy session over the same
// data absorbs via SeedSnapshotFile. Either way the write is atomic, so
// a crash mid-checkpoint never clobbers the previous good snapshot.

// SnapshotOptions configures SaveSnapshot.
type SnapshotOptions struct {
	// SourceHash records the content identity of the session's source
	// data (HashSourceFile / HashSourceString) so loaders can detect a
	// snapshot gone stale against edited source. Empty leaves staleness
	// undetectable — loader policy decides whether to trust it.
	SourceHash string
}

// SnapshotInfo summarizes a snapshot file's header (PeekSnapshotFile).
// The header is read without verifying the file's checksum, so treat
// the fields as advisory until LoadSnapshot or SeedSnapshotFile
// succeeds.
type SnapshotInfo struct {
	Version    int
	SourceHash string
	Created    time.Time
	Rows       int
	// Lazy reports whether the snapshot holds a lazy session's resident
	// cubes (seed it) rather than a full eager store (load it).
	Lazy       bool
	CacheBytes int64
	// IngestSeq is the WAL sequence of the last append batch applied
	// before the snapshot; WAL replay resumes at IngestSeq+1.
	IngestSeq uint64
}

// SaveSnapshot persists the session — schema, dictionaries,
// discretization cuts, cubes and engine configuration — to w. Eager
// sessions write every cube; lazy sessions write the resident working
// set. A BuildCubes variant must have run.
func (s *Session) SaveSnapshot(w io.Writer, opts SnapshotOptions) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap, err := s.buildSnapshot(opts)
	if err != nil {
		return err
	}
	return snapshot.Write(w, snap)
}

// SaveSnapshotFile is SaveSnapshot to a file path, written atomically
// (temp file, fsync, rename): a crash mid-write leaves any previous
// snapshot at path intact.
func (s *Session) SaveSnapshotFile(path string, opts SnapshotOptions) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap, err := s.buildSnapshot(opts)
	if err != nil {
		return err
	}
	return snapshot.WriteFile(path, snap)
}

// buildSnapshot assembles the in-memory snapshot for the session's
// current engine. Callers hold at least the read lock.
func (s *Session) buildSnapshot(opts SnapshotOptions) (*snapshot.Snapshot, error) {
	if _, err := s.requireSource(); err != nil {
		return nil, err
	}
	snap := &snapshot.Snapshot{
		SourceHash:  opts.SourceHash,
		CreatedUnix: time.Now().Unix(),
		Rows:        s.numRows(),
		IngestSeq:   s.ingestSeq,
		Cuts:        s.cuts,
		Dataset:     s.ds,
	}
	switch {
	case s.store != nil:
		snap.Mode = snapshot.ModeEager
		snap.Store = s.store
	case s.lazy != nil:
		snap.Mode = snapshot.ModeLazy
		snap.CacheBytes = s.lazy.Budget()
		store, err := rulecube.AssembleStore(s.ds, s.lazy.Attrs(), s.lazy.ResidentCubes())
		if err != nil {
			return nil, fmt.Errorf("opmap: snapshotting lazy engine: %w", err)
		}
		snap.Store = store
	default:
		return nil, fmt.Errorf("opmap: session engine cannot be snapshotted")
	}
	return snap, nil
}

// LoadSnapshot rebuilds a ready-to-serve Session from an eager snapshot
// stream with zero cube builds: the schema-only dataset, cuts and cube
// store come straight from the snapshot. Operations needing raw records
// (MineRules, CompareWhere, re-Discretize) return errors, exactly as
// with OpenCubes. Lazy snapshots cannot stand alone (they hold only a
// resident subset); load the source data and SeedSnapshotFile instead.
func LoadSnapshot(r io.Reader) (*Session, error) {
	snap, err := snapshot.Read(r)
	if err != nil {
		return nil, err
	}
	return sessionFromSnapshot(snap)
}

// LoadSnapshotFile is LoadSnapshot from a file path.
func LoadSnapshotFile(path string) (*Session, error) {
	snap, err := snapshot.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return sessionFromSnapshot(snap)
}

func sessionFromSnapshot(snap *snapshot.Snapshot) (*Session, error) {
	if snap.Mode != snapshot.ModeEager {
		return nil, fmt.Errorf("opmap: %s snapshot holds only resident cubes and cannot serve standalone; rebuild the lazy session from source and seed it with SeedSnapshotFile", snap.Mode)
	}
	return &Session{
		raw:       snap.Dataset,
		ds:        snap.Dataset,
		cuts:      snap.Cuts,
		rowsHint:  snap.Rows,
		ingestSeq: snap.IngestSeq,
		store:     snap.Store,
		src:       engine.NewEager(snap.Store),
		results:   engine.NewResultCache(0),
	}, nil
}

// SeedSnapshotFile warms a lazy session from a snapshot taken over the
// same source data: the snapshot's cubes are validated against the
// session's dataset and installed in the engine's caches, so their
// first touch is a hit instead of a data pass. The session must be in
// lazy mode (BuildCubesOptions with Lazy). Returns the number of cubes
// seeded. A snapshot that disagrees with the dataset fails without
// mutating the engine — the caller falls back to cold serving.
func (s *Session) SeedSnapshotFile(path string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.lazy == nil {
		return 0, fmt.Errorf("opmap: SeedSnapshotFile requires a lazy session (BuildCubesOptions with Lazy)")
	}
	snap, err := snapshot.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return s.lazy.SeedCubes(snap.Store.Cubes())
}

// PeekSnapshotFile reads a snapshot file's header only — source hash,
// creation time, row count, engine mode — for a cheap staleness check
// before committing to a full load.
func PeekSnapshotFile(path string) (*SnapshotInfo, error) {
	h, err := snapshot.PeekFile(path)
	if err != nil {
		return nil, err
	}
	return &SnapshotInfo{
		Version:    h.Version,
		SourceHash: h.SourceHash,
		Created:    time.Unix(h.CreatedUnix, 0),
		Rows:       h.Rows,
		Lazy:       h.Mode == snapshot.ModeLazy,
		CacheBytes: h.CacheBytes,
		IngestSeq:  h.IngestSeq,
	}, nil
}

// HashSourceFile returns the content hash of a source data file, the
// value to record in SnapshotOptions.SourceHash and compare against
// SnapshotInfo.SourceHash on the next start.
func HashSourceFile(path string) (string, error) {
	return snapshot.HashFile(path)
}

// HashSourceString is HashSourceFile for generated datasets: hash the
// configuration string that determines the data instead of a file.
func HashSourceString(cfg string) string {
	return snapshot.HashBytes([]byte(cfg))
}
