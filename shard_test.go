package opmap

import (
	"context"
	"encoding/csv"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"opmap/internal/testutil"
)

// shardWorkload generates a discretized call-log session and exports
// its working (binned, fully categorical) rows as CSV shard files:
// one file with every row, plus n contiguous chunks. Contiguous
// splitting matters — merging shards in order must reproduce the
// single pass over the concatenated rows, dictionaries included.
func shardWorkload(t testing.TB, n int) (all string, shards []string, load LoadOptions, gt CallLogTruth) {
	t.Helper()
	s, gt, err := GenerateCallLog(CallLogConfig{Seed: 43, Records: 2400, NumPhones: 4, NoiseAttrs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Discretize(DiscretizeOptions{}); err != nil {
		t.Fatal(err)
	}
	ds := s.ds
	header := make([]string, ds.NumAttrs())
	for i := range header {
		header[i] = ds.Attr(i).Name
	}
	// Force every attribute categorical so no shard can kind-sniff a
	// column differently from its siblings (see ShardOptions.Load).
	load = LoadOptions{Class: ds.Attr(ds.ClassIndex()).Name, Categorical: header}

	dir := t.TempDir()
	writeRows := func(name string, lo, hi int) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w := csv.NewWriter(f)
		if err := w.Write(header); err != nil {
			t.Fatal(err)
		}
		for r := lo; r < hi; r++ {
			if err := w.Write(ds.Row(r)); err != nil {
				t.Fatal(err)
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	rows := ds.NumRows()
	all = writeRows("all.csv", 0, rows)
	chunk := (rows + n - 1) / n
	for i := 0; i < n; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		shards = append(shards, writeRows("shard"+string(rune('0'+i))+".csv", lo, hi))
	}
	return all, shards, load, gt
}

// singleSession loads the unsharded CSV and builds cubes: the ground
// truth every sharded result must match exactly.
func singleSession(t testing.TB, all string, load LoadOptions) *Session {
	t.Helper()
	s, err := LoadCSVFile(all, load)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BuildCubes(); err != nil {
		t.Fatal(err)
	}
	return s
}

// assertSameQueries requires the cube-served query surface of got to be
// identical to want: comparison, sweep, and impressions, DeepEqual.
func assertSameQueries(t *testing.T, want, got *Session, gt CallLogTruth) {
	t.Helper()
	wc, err := want.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gc, err := got.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wc, gc) {
		t.Error("sharded comparison differs from single-pass comparison")
	}
	ws, err := want.Sweep(gt.PhoneAttr, gt.DropClass, 3)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := got.Sweep(gt.PhoneAttr, gt.DropClass, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ws, gs) {
		t.Error("sharded sweep differs from single-pass sweep")
	}
	wi, err := want.Impressions(ImpressionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gi, err := got.Impressions(ImpressionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wi, gi) {
		t.Error("sharded impressions differ from single-pass impressions")
	}
}

// TestBuildShardedMatchesSinglePass is the session-level oracle: at 1,
// 2, and 8 shards the sharded build must hold a store DeepEqual to the
// single-pass store — rows, dictionaries, cube layouts, and counts all
// bit-identical — and answer every query identically.
func TestBuildShardedMatchesSinglePass(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	for _, n := range []int{1, 2, 8} {
		t.Run(string(rune('0'+n))+" shards", func(t *testing.T) {
			all, shards, load, gt := shardWorkload(t, n)
			want := singleSession(t, all, load)
			got, err := BuildSharded(shards, ShardOptions{Load: load})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.store, want.store) {
				t.Fatalf("%d-shard store differs from single-pass store", n)
			}
			if got.NumRows() != want.NumRows() {
				t.Fatalf("rows = %d, want %d", got.NumRows(), want.NumRows())
			}
			assertSameQueries(t, want, got, gt)
		})
	}
}

// TestBuildShardedZeroRowShard: a header-only shard mid-sequence must
// be a no-op, not an error.
func TestBuildShardedZeroRowShard(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	all, shards, load, gt := shardWorkload(t, 2)
	empty := filepath.Join(t.TempDir(), "empty.csv")
	header, err := os.ReadFile(all)
	if err != nil {
		t.Fatal(err)
	}
	head := string(header[:strings.IndexByte(string(header), '\n')+1])
	if err := os.WriteFile(empty, []byte(head), 0o600); err != nil {
		t.Fatal(err)
	}
	want := singleSession(t, all, load)
	got, err := BuildSharded([]string{shards[0], empty, shards[1]}, ShardOptions{Load: load})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.store, want.store) {
		t.Fatal("store with zero-row shard differs from single-pass store")
	}
	assertSameQueries(t, want, got, gt)
}

// TestBuildShardedDisjointDictionaries: shards whose label sets barely
// overlap (shard 2 opens with values shard 1 never saw) must still
// merge to the single-pass store — the dictionary-union remap at work.
func TestBuildShardedDisjointDictionaries(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
			t.Fatal(err)
		}
		return path
	}
	header := "model,band,outcome\n"
	rows1 := "m1,b1,ok\nm1,b2,drop\nm2,b1,ok\nm2,b2,ok\n?,b1,drop\n"
	rows2 := "m3,b9,drop\nm3,b1,degraded\nm4,b9,ok\nm1,?,degraded\n"
	p1 := write("s1.csv", header+rows1)
	p2 := write("s2.csv", header+rows2)
	all := write("all.csv", header+rows1+rows2)
	load := LoadOptions{Class: "outcome", Categorical: []string{"model", "band", "outcome"}}

	want := singleSession(t, all, load)
	got, err := BuildSharded([]string{p1, p2}, ShardOptions{Load: load})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.store, want.store) {
		t.Fatal("disjoint-dictionary merge differs from single-pass store")
	}
	// Spot-check a query spanning labels only one shard contributed.
	wc, err := want.Compare("model", "m1", "m3", "drop", CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gc, err := got.Compare("model", "m1", "m3", "drop", CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wc, gc) {
		t.Error("cross-shard comparison differs from single-pass")
	}
}

// TestLoadShardSnapshots: the warm-start assembly — shard sessions
// snapshot to files, the daemon merges at load — must answer queries
// exactly like the single-pass session.
func TestLoadShardSnapshots(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	all, shards, load, gt := shardWorkload(t, 2)
	want := singleSession(t, all, load)

	dir := t.TempDir()
	paths := make([]string, len(shards))
	for i, sh := range shards {
		s, err := LoadCSVFile(sh, load)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.BuildCubes(); err != nil {
			t.Fatal(err)
		}
		paths[i] = filepath.Join(dir, "shard"+string(rune('0'+i))+".omapsnap")
		if err := s.SaveSnapshotFile(paths[i], SnapshotOptions{SourceHash: HashSourceString(sh)}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LoadShardSnapshots(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != want.NumRows() {
		t.Errorf("rows = %d, want %d", got.NumRows(), want.NumRows())
	}
	assertSameQueries(t, want, got, gt)
}

func TestMergeFromErrors(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	built := func() *Session {
		s, _, err := GenerateCallLog(CallLogConfig{Seed: 7, Records: 500, NumPhones: 3, NoiseAttrs: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Discretize(DiscretizeOptions{}); err != nil {
			t.Fatal(err)
		}
		if err := s.BuildCubes(); err != nil {
			t.Fatal(err)
		}
		return s
	}

	t.Run("nil and self", func(t *testing.T) {
		s := built()
		if err := s.MergeFrom(nil); err == nil {
			t.Error("nil source accepted")
		}
		if err := s.MergeFrom(s); err == nil {
			t.Error("self-merge accepted")
		}
	})
	t.Run("cubes not built", func(t *testing.T) {
		s, _, err := GenerateCallLog(CallLogConfig{Seed: 7, Records: 500, NumPhones: 3, NoiseAttrs: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.MergeFrom(built()); err == nil || !strings.Contains(err.Error(), "BuildCubes") {
			t.Errorf("err = %v, want cubes-not-built error", err)
		}
	})
	t.Run("lazy engine", func(t *testing.T) {
		s, _, err := GenerateCallLog(CallLogConfig{Seed: 7, Records: 500, NumPhones: 3, NoiseAttrs: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Discretize(DiscretizeOptions{}); err != nil {
			t.Fatal(err)
		}
		if err := s.BuildCubesOptions(context.Background(), BuildOptions{Lazy: true}); err != nil {
			t.Fatal(err)
		}
		if err := built().MergeFrom(s); err == nil || !strings.Contains(err.Error(), "lazy") {
			t.Errorf("err = %v, want lazy rejection", err)
		}
	})
	t.Run("snapshot-restored", func(t *testing.T) {
		s := built()
		path := filepath.Join(t.TempDir(), "s.omapsnap")
		if err := s.SaveSnapshotFile(path, SnapshotOptions{}); err != nil {
			t.Fatal(err)
		}
		warm, err := LoadSnapshotFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := warm.MergeFrom(s); err == nil || !strings.Contains(err.Error(), "snapshot") {
			t.Errorf("err = %v, want restored-session rejection", err)
		}
	})
	// continuous builds a session over a forced-continuous column,
	// discretized with the given manual cuts and cubed: the controlled
	// way to get raw != ds and a non-empty cuts map.
	continuous := func(cuts []float64) *Session {
		path := filepath.Join(t.TempDir(), "cont.csv")
		if err := os.WriteFile(path, []byte("x,c\n0.1,yes\n0.9,no\n1.7,yes\n"), 0o600); err != nil {
			t.Fatal(err)
		}
		s, err := LoadCSVFile(path, LoadOptions{Class: "c", Continuous: []string{"x"}})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Discretize(DiscretizeOptions{Manual: map[string][]float64{"x": cuts}}); err != nil {
			t.Fatal(err)
		}
		if err := s.BuildCubes(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	t.Run("discretized with undiscretized", func(t *testing.T) {
		if err := continuous([]float64{0.5}).MergeFrom(built()); err == nil || !strings.Contains(err.Error(), "discretized") {
			t.Errorf("err = %v, want discretization-state mismatch", err)
		}
	})
	t.Run("cuts mismatch names attribute", func(t *testing.T) {
		a := continuous([]float64{0.5})
		b := continuous([]float64{1.0})
		if err := a.MergeFrom(b); err == nil || !strings.Contains(err.Error(), `"x"`) {
			t.Errorf("err = %v, want cuts mismatch naming \"x\"", err)
		}
	})
	t.Run("schema mismatch names attribute", func(t *testing.T) {
		dir := t.TempDir()
		w1 := filepath.Join(dir, "a.csv")
		w2 := filepath.Join(dir, "b.csv")
		if err := os.WriteFile(w1, []byte("x,c\n1,yes\n"), 0o600); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(w2, []byte("y,c\n1,yes\n"), 0o600); err != nil {
			t.Fatal(err)
		}
		load := func(p, name string) *Session {
			s, err := LoadCSVFile(p, LoadOptions{Class: "c", Categorical: []string{name, "c"}})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.BuildCubes(); err != nil {
				t.Fatal(err)
			}
			return s
		}
		a := load(w1, "x")
		b := load(w2, "y")
		if err := a.MergeFrom(b); err == nil || !strings.Contains(err.Error(), `"x"`) {
			t.Errorf("err = %v, want schema mismatch naming \"x\"", err)
		}
	})
}

func TestBuildShardedRejects(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	if _, err := BuildSharded(nil, ShardOptions{}); err == nil {
		t.Error("empty shard list accepted")
	}
	if _, err := BuildSharded([]string{"x.csv"}, ShardOptions{Build: BuildOptions{Lazy: true}}); err == nil || !strings.Contains(err.Error(), "lazy") {
		t.Errorf("err = %v, want lazy rejection", err)
	}
}

func TestBuildShardedContextCancel(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	_, shards, load, _ := shardWorkload(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildShardedContext(ctx, shards, ShardOptions{Load: load}); err == nil {
		t.Error("cancelled context accepted")
	}
}
