// Manufacturing: defect diagnosis in a production line, the paper's
// claim that automated comparison "is useful in any engineering or
// manufacturing domain" (Section III.C). The dataset includes two
// continuous attributes, so this example also exercises the discretizer
// (entropy-MDLP by default, with a manual override for Humidity).
//
// Run with:
//
//	go run ./examples/manufacturing
package main

import (
	"fmt"
	"log"
	"os"

	"opmap"
)

func main() {
	log.SetFlags(0)

	session, truth, err := opmap.GenerateManufacturing(7, 60000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("production log: %d units, attributes %v\n",
		session.NumRows(), session.Attributes())

	// Discretize the continuous attributes. Humidity gets a manual cut
	// at 70 %RH (domain knowledge: condensation risk); Temperature falls
	// back to supervised entropy-MDLP.
	err = session.Discretize(opmap.DiscretizeOptions{
		Manual: map[string][]float64{"Humidity": {70}},
	})
	if err != nil {
		log.Fatal(err)
	}
	for attr, cuts := range session.Cuts() {
		fmt.Printf("discretized %-12s cuts=%v\n", attr, cuts)
	}
	if err := session.BuildCubes(); err != nil {
		log.Fatal(err)
	}

	// Machine M7's defect rate is twice M2's. Why?
	cmp, err := session.Compare(truth.MachineAttr, truth.GoodMachine, truth.BadMachine,
		truth.DefectClass, opmap.CompareOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s defect rate %.2f%% vs %s %.2f%% — ranking explanations:\n\n",
		cmp.Label1, 100*cmp.Cf1, cmp.Label2, 100*cmp.Cf2)
	cmp.RenderRanking(os.Stdout, 6)

	top := cmp.Top(1)[0]
	fmt.Printf("\n--- %s breakdown ---\n", top.Name)
	if err := cmp.RenderAttribute(os.Stdout, top.Name); err != nil {
		log.Fatal(err)
	}

	// General impressions: is there a humidity trend?
	imp, err := session.Impressions(opmap.ImpressionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- General impressions ---")
	for _, tr := range imp.Trends {
		if tr.Class == truth.DefectClass {
			fmt.Printf("trend: %s is %s for %s (strength %.2f)\n",
				tr.Attr, tr.Kind, tr.Class, tr.Strength)
		}
	}
	for i, inf := range imp.Influential {
		if i >= 4 {
			break
		}
		fmt.Printf("influence #%d: %-14s chi2=%.0f p=%.3g MI=%.4f bits\n",
			i+1, inf.Attr, inf.ChiSquare, inf.PValue, inf.MutualInformation)
	}

	fmt.Printf("\nverdict: planted %q ranked #1: %v (bad batches from supplier %s)\n",
		truth.DistinguishingAttr, top.Name == truth.DistinguishingAttr, truth.BadSupplier)
}
