// Explorer: the deployed Opportunity Map is an interactive tool; this
// example drives a scripted exploration session over a synthetic call
// log — overview, drill into the suspect attribute, screen pairs,
// compare, focus on the explanation, then check its statistical
// significance with a permutation test.
//
// Run with:
//
//	go run ./examples/explorer            # scripted session
//	go run ./examples/explorer -i         # interactive REPL on stdin
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"opmap"
)

func main() {
	log.SetFlags(0)
	interactive := flag.Bool("i", false, "interactive REPL instead of the scripted session")
	flag.Parse()

	session, truth, err := opmap.GenerateCallLog(opmap.CallLogConfig{
		Seed:       4,
		Records:    50000,
		NumPhones:  8,
		NoiseAttrs: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := session.Discretize(opmap.DiscretizeOptions{}); err != nil {
		log.Fatal(err)
	}
	if err := session.BuildCubes(); err != nil {
		log.Fatal(err)
	}

	if *interactive {
		fmt.Println("interactive session — type 'help' for commands, 'quit' to exit")
		if err := session.Explore(os.Stdin, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	script := strings.Join([]string{
		"# the investigation, as the analyst would type it",
		"detail " + truth.PhoneAttr,
		"pairs " + truth.PhoneAttr + " " + truth.DropClass + " 3",
		"compare " + truth.PhoneAttr + " " + truth.GoodPhone + " " + truth.BadPhone + " " + truth.DropClass,
		"focus",
		"focus " + truth.PropertyAttr,
		"back",
		"detail3 " + truth.PhoneAttr + " " + truth.DistinguishingAttr,
		"quit",
	}, "\n")
	if err := session.ExploreScript(script, os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Close the loop: is the finding statistically solid?
	sig, err := session.TestSignificance(truth.PhoneAttr, truth.GoodPhone, truth.BadPhone,
		truth.DropClass, truth.DistinguishingAttr, 200, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npermutation test of %q: observed M=%.1f, null mean %.1f (q95 %.1f), p=%.4f over %d rounds\n",
		sig.Attr, sig.Observed, sig.NullMean, sig.NullQ95, sig.PValue, sig.Rounds)

	// And the systemic-vs-specific sweep across all phone pairs.
	sweep, err := session.Sweep(truth.PhoneAttr, truth.DropClass, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsweep over %d significant phone pairs:\n", sweep.PairsCompared)
	for i, a := range sweep.Attributes {
		if i >= 4 {
			break
		}
		fmt.Printf("  %-24s distinguishes %d pair(s); strongest for %s vs %s (M=%.1f)\n",
			a.Name, a.Pairs, a.BestPair[0], a.BestPair[1], a.BestScore)
	}
}
