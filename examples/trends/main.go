// Trends: the general-impressions miner and the baselines the paper
// contrasts with. Shows (a) trend/exception/influence mining over rule
// cubes, (b) the rule-ranking baseline whose top ranks are dominated by
// low-support artifacts, (c) the decision tree's completeness problem
// (Section III.A), and (d) discovery-driven cube exceptions (Section
// II's OLAP baseline) answering a different question than the
// comparator.
//
// Run with:
//
//	go run ./examples/trends
package main

import (
	"fmt"
	"log"

	"opmap"
)

func main() {
	log.SetFlags(0)

	session, truth, err := opmap.GenerateCallLog(opmap.CallLogConfig{
		Seed:       99,
		Records:    60000,
		NumPhones:  8,
		NoiseAttrs: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := session.Discretize(opmap.DiscretizeOptions{}); err != nil {
		log.Fatal(err)
	}
	if err := session.BuildCubes(); err != nil {
		log.Fatal(err)
	}

	// (a) General impressions.
	imp, err := session.Impressions(opmap.ImpressionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== General impressions (GI miner, Section V.A) ===")
	fmt.Printf("%d trends, %d exceptions, %d attributes ranked by influence\n",
		len(imp.Trends), len(imp.Exceptions), len(imp.Influential))
	for i, inf := range imp.Influential {
		if i >= 5 {
			break
		}
		fmt.Printf("  influence #%d: %-24s chi2=%10.1f  MI=%.5f bits\n",
			i+1, inf.Attr, inf.ChiSquare, inf.MutualInformation)
	}
	for i, ex := range imp.Exceptions {
		if i >= 3 {
			break
		}
		fmt.Printf("  exception: %s=%s for %s: %.2f%% vs expected %.2f%% (z=%.1f)\n",
			ex.Attr, ex.Value, ex.Class, 100*ex.Confidence, 100*ex.Expected, ex.ZScore)
	}

	// (b) Rule-ranking baseline: top lift rules tend to be low-support
	// artifacts — the paper's criticism of rule ranking.
	fmt.Println("\n=== Baseline: rule ranking by lift (Section II) ===")
	ranked, err := session.RankRules("lift", opmap.MineOptions{MaxConditions: 2})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5 && i < len(ranked); i++ {
		fmt.Printf("  #%d lift=%.2f  %v\n", i+1, ranked[i].Value, ranked[i].Rule)
	}
	fmt.Println("  note the tiny supports: ranked rules are artifacts, not explanations.")

	// (c) Completeness problem.
	fmt.Println("\n=== Baseline: decision tree completeness problem (Section III.A) ===")
	rep, err := session.Completeness(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  decision tree rules: %d   exhaustive CAR rules: %d   coverage: %.2f%%\n",
		rep.TreeRules, rep.CARRules, 100*rep.CoverageRatio)
	fmt.Printf("  tree accuracy %.1f%% — accurate prediction, useless for diagnosis.\n",
		100*rep.TreeAccuracy)

	// (d) Discovery-driven cube exceptions.
	fmt.Println("\n=== Baseline: discovery-driven cube exceptions (Sarawagi-style) ===")
	exs, err := session.CubeExceptions(3)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5 && i < len(exs); i++ {
		e := exs[i]
		fmt.Printf("  %s=%s & %s=%s -> %s: %.2f%% (expected %.2f%%, SelfExp %.1f)\n",
			e.Attr1, e.Value1, e.Attr2, e.Value2, e.Class,
			100*e.Observed, 100*e.Expected, e.SelfExp)
	}

	// The comparator, by contrast, answers the engineer's actual
	// question: what distinguishes the bad phone from the good one?
	fmt.Println("\n=== The comparator answers the targeted question ===")
	cmp, err := session.Compare(truth.PhoneAttr, truth.GoodPhone, truth.BadPhone,
		truth.DropClass, opmap.CompareOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range cmp.Top(3) {
		fmt.Printf("  #%d %-24s M=%.1f\n", i+1, s.Name, s.Score)
	}
}
