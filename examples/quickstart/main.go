// Quickstart: generate a small synthetic call log, build rule cubes, and
// run the paper's automated comparison between a good and a bad phone.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"opmap"
)

func main() {
	log.SetFlags(0)

	// 1. Data. The paper's Motorola call logs are confidential, so we
	// generate a synthetic log with the same planted structure: phone
	// ph2 drops calls at twice ph1's rate, and the entire excess is
	// concentrated in morning calls (the paper's Fig. 2(B) situation).
	session, truth, err := opmap.GenerateCallLog(opmap.CallLogConfig{
		Seed:       1,
		Records:    50000,
		NumPhones:  6,
		NoiseAttrs: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d call records, %d attributes\n",
		session.NumRows(), len(session.Attributes()))

	// 2. Pipeline: discretize (no-op here, data is categorical) and
	// materialize all 2-D and 3-D rule cubes.
	if err := session.Discretize(opmap.DiscretizeOptions{}); err != nil {
		log.Fatal(err)
	}
	if err := session.BuildCubes(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized %d rule cubes covering %d rules\n\n",
		session.CubeCount(), session.RuleSpaceSize())

	// 3. The comparison: which attributes best explain why ph2 drops
	// more calls than ph1?
	cmp, err := session.Compare(truth.PhoneAttr, truth.GoodPhone, truth.BadPhone,
		truth.DropClass, opmap.CompareOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s=%s drop rate %.2f%%  vs  %s=%s drop rate %.2f%%\n\n",
		truth.PhoneAttr, cmp.Label1, 100*cmp.Cf1,
		truth.PhoneAttr, cmp.Label2, 100*cmp.Cf2)

	cmp.RenderRanking(os.Stdout, 5)
	fmt.Println()

	// 4. Drill into the top attribute (the paper's Fig. 7 view).
	top := cmp.Top(1)[0]
	if err := cmp.RenderAttribute(os.Stdout, top.Name); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nplanted ground truth: %q (found at rank 1: %v)\n",
		truth.DistinguishingAttr, top.Name == truth.DistinguishingAttr)
}
