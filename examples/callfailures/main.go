// Call failures: the paper's Section V.B case study, end to end. A
// 41-attribute call log is generated (the paper's case-study width); the
// user-visible flow is reproduced step by step: the overall view
// (Fig. 5), the detailed phone-model view (Fig. 6), the automated
// comparison with the top attribute's CI view (Fig. 7), and the property
// attribute set aside (Fig. 8). SVG versions of the figures are written
// next to the binary when -svg is given.
//
// Run with:
//
//	go run ./examples/callfailures [-svg dir]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"opmap"
)

func main() {
	log.SetFlags(0)
	svgDir := flag.String("svg", "", "directory to write fig6/fig7 SVG files into")
	records := flag.Int("records", 80000, "records to generate")
	flag.Parse()

	session, truth, err := opmap.CaseStudy(2024, *records)
	if err != nil {
		log.Fatal(err)
	}
	if err := session.Discretize(opmap.DiscretizeOptions{}); err != nil {
		log.Fatal(err)
	}
	if err := session.BuildCubes(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== Case study: %d records, %d attributes (paper Section V.B) ===\n\n",
		session.NumRows(), len(session.Attributes()))

	// Fig. 5: overall visualization of all 2-D rule cubes.
	fmt.Println("--- Overall view (Fig. 5) ---")
	if err := session.RenderOverall(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Fig. 6: the user zooms into the phone-model attribute.
	fmt.Println("\n--- Detailed view of Phone-Model (Fig. 6) ---")
	if err := session.RenderDetailed(os.Stdout, truth.PhoneAttr); err != nil {
		log.Fatal(err)
	}

	// Screening finds the pairs worth comparing — with many phone models
	// the analyst should not have to eyeball Fig. 6 for gaps.
	fmt.Println("\n--- Pair screening (which phones differ significantly?) ---")
	pairs, err := session.ScreenPairs(truth.PhoneAttr, truth.DropClass, 5)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pairs {
		fmt.Printf("%-6s vs %-6s  %6.3f%% vs %6.3f%%  z=%.1f p=%.2g\n",
			p.Value1, p.Value2, 100*p.Cf1, 100*p.Cf2, p.Z, p.PValue)
	}

	// The user selects two phones with very different drop rates and
	// asks the comparator to rank all other attributes.
	fmt.Println("\n--- Automated comparison (Section IV) ---")
	cmp, err := session.Compare(truth.PhoneAttr, pairs[0].Value1, pairs[0].Value2,
		truth.DropClass, opmap.CompareOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cmp.RenderRanking(os.Stdout, 8)

	// Fig. 7: the top-ranked attribute with CI regions.
	top := cmp.Top(1)[0]
	fmt.Printf("\n--- Top-ranked attribute %q (Fig. 7) ---\n", top.Name)
	if err := cmp.RenderAttribute(os.Stdout, top.Name); err != nil {
		log.Fatal(err)
	}

	// Fig. 8: a property attribute (one phone never uses the value).
	fmt.Println("\n--- Property attributes (Fig. 8, Section IV.C) ---")
	for _, p := range cmp.PropertyAttributes() {
		if err := cmp.RenderProperty(os.Stdout, p.Name); err != nil {
			log.Fatal(err)
		}
	}

	// Drill down into the isolated context: re-compare within morning
	// calls to look for second-order causes.
	fmt.Println("\n--- Drill-down: same comparison within morning calls ---")
	within, err := session.CompareWhere(truth.PhoneAttr, pairs[0].Value1, pairs[0].Value2,
		truth.DropClass, map[string]string{top.Name: "morning"}, opmap.CompareOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("within morning calls: %s %.2f%% vs %s %.2f%% (overall was %.2f%% vs %.2f%%)\n",
		within.Label1, 100*within.Cf1, within.Label2, 100*within.Cf2, 100*cmp.Cf1, 100*cmp.Cf2)

	// Hand-off artifact: the Markdown report.
	reportPath := "callfailures_report.md"
	rf, err := os.Create(reportPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := session.WriteReport(rf, cmp, opmap.ReportOptions{TopN: 3, IncludeImpressions: true}); err != nil {
		log.Fatal(err)
	}
	if err := rf.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote engineer hand-off report to %s\n", reportPath)

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			log.Fatal(err)
		}
		write := func(name string, f func(*os.File) error) {
			path := filepath.Join(*svgDir, name)
			fh, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := f(fh); err != nil {
				log.Fatal(err)
			}
			if err := fh.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		write("fig5_overall.svg", func(f *os.File) error {
			return session.RenderOverallSVG(f)
		})
		write("fig6_phone_model.svg", func(f *os.File) error {
			return session.RenderDetailedSVG(f, truth.PhoneAttr)
		})
		write("fig7_top_attribute.svg", func(f *os.File) error {
			return cmp.RenderAttributeSVG(f, top.Name)
		})
	}

	fmt.Printf("\nverdict: planted %q ranked #1: %v; property %q set aside: %v\n",
		truth.DistinguishingAttr, top.Name == truth.DistinguishingAttr,
		truth.PropertyAttr, len(cmp.PropertyAttributes()) > 0)
}
