package opmap

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"opmap/internal/testutil"
)

// ingestRows generates deterministic mixed-schema rows (two
// categorical attributes, two continuous, categorical class). Every
// label and class value appears within the first dozen rows, so a
// prefix load and a full load build identical dictionaries.
func ingestRows(n int) [][]string {
	regions := []string{"north", "south", "east", "west"}
	models := []string{"m1", "m2", "m3"}
	classes := []string{"ok", "fail", "slow"}
	rows := make([][]string, n)
	for i := 0; i < n; i++ {
		temp := fmt.Sprintf("%d.5", (i*37)%100)
		load := fmt.Sprintf("%d", (i*53)%80)
		if i%23 == 7 {
			temp = "?" // exercise missing continuous values
		}
		cls := classes[i%len(classes)]
		if (i*31)%7 == 0 {
			cls = classes[(i/3)%len(classes)]
		}
		rows[i] = []string{regions[i%len(regions)], models[i%len(models)], temp, load, cls}
	}
	return rows
}

func ingestCSV(rows [][]string) string {
	var b strings.Builder
	b.WriteString("Region,Model,Temp,Load,Outcome\n")
	for _, r := range rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// manualCuts pins the discretization so a prefix load and a full load
// bin continuous values identically — the precondition for exact
// batch ≡ streamed equivalence.
var manualCuts = DiscretizeOptions{Manual: map[string][]float64{
	"Temp": {25, 50, 75},
	"Load": {20, 40, 60},
}}

func loadIngestSession(t *testing.T, rows [][]string, lazy bool) *Session {
	t.Helper()
	s, err := LoadCSV(strings.NewReader(ingestCSV(rows)), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Discretize(manualCuts); err != nil {
		t.Fatal(err)
	}
	if err := s.BuildCubesOptions(context.Background(), BuildOptions{Lazy: lazy}); err != nil {
		t.Fatal(err)
	}
	return s
}

// queryTriple runs the three cached query families the oracle test
// compares across sessions.
func queryTriple(t *testing.T, s *Session) (*Comparison, *SweepResult, *Impressions) {
	t.Helper()
	cmp, err := s.Compare("Region", "north", "south", "fail", CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := s.Sweep("Region", "fail", 0)
	if err != nil {
		t.Fatal(err)
	}
	imp, err := s.Impressions(ImpressionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return cmp, sw, imp
}

// TestAppendMatchesBatchLoad is the oracle equivalence test: loading N
// rows at once and loading a prefix then streaming the rest through
// Append must produce identical Compare, Sweep and Impressions
// results, in both eager and lazy engines.
func TestAppendMatchesBatchLoad(t *testing.T) {
	all := ingestRows(400)
	for _, lazy := range []bool{false, true} {
		name := "eager"
		if lazy {
			name = "lazy"
		}
		t.Run(name, func(t *testing.T) {
			oracle := loadIngestSession(t, all, lazy)
			streamed := loadIngestSession(t, all[:300], lazy)
			if lazy {
				// Materialize some cubes before the appends so both the
				// resident and not-yet-resident paths are exercised.
				if _, err := streamed.Compare("Region", "north", "south", "fail", CompareOptions{}); err != nil {
					t.Fatal(err)
				}
			}
			// Stream the tail in uneven batches.
			for _, batch := range [][][]string{all[300:301], all[301:350], all[350:400]} {
				if err := streamed.Append(batch); err != nil {
					t.Fatal(err)
				}
			}
			if got, want := streamed.NumRows(), oracle.NumRows(); got != want {
				t.Fatalf("streamed rows = %d, want %d", got, want)
			}
			oc, os, oi := queryTriple(t, oracle)
			sc, ss, si := queryTriple(t, streamed)
			if !reflect.DeepEqual(oc, sc) {
				t.Errorf("Compare diverges:\noracle   %+v\nstreamed %+v", oc, sc)
			}
			if !reflect.DeepEqual(os, ss) {
				t.Errorf("Sweep diverges:\noracle   %+v\nstreamed %+v", os, ss)
			}
			if !reflect.DeepEqual(oi, si) {
				t.Errorf("Impressions diverge:\noracle   %+v\nstreamed %+v", oi, si)
			}
		})
	}
}

// TestAppendToRestoredSession: a session restored from an eager
// snapshot of a continuous-schema dataset keeps ingesting correctly —
// appended numeric values bin through the remembered cuts instead of
// registering raw strings like "37.5" as new interval-dictionary
// labels, so the restored session's answers match a session that
// never went through the snapshot round trip.
func TestAppendToRestoredSession(t *testing.T) {
	all := ingestRows(400)
	oracle := loadIngestSession(t, all, false)
	live := loadIngestSession(t, all[:300], false)
	path := t.TempDir() + "/s.omapsnap"
	if err := live.SaveSnapshotFile(path, SnapshotOptions{}); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Stream the tail (which includes missing continuous values) in
	// uneven batches, as WAL replay would after a crash.
	for _, batch := range [][][]string{all[300:301], all[301:350], all[350:400]} {
		if err := restored.Append(batch); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := restored.NumRows(), oracle.NumRows(); got != want {
		t.Fatalf("restored rows = %d, want %d", got, want)
	}
	// The interval dictionaries must not have grown raw numeric labels.
	for _, attr := range []string{"Temp", "Load"} {
		ov, err := oracle.Values(attr)
		if err != nil {
			t.Fatal(err)
		}
		rv, err := restored.Values(attr)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ov, rv) {
			t.Errorf("%s domain diverged after restored-session appends:\noracle   %v\nrestored %v", attr, ov, rv)
		}
	}
	// A restored session still rejects unparseable numeric fields for
	// interval attributes, exactly like the live session it replaces.
	if err := restored.Append([][]string{{"north", "m1", "not-a-number", "20", "ok"}}); err == nil {
		t.Error("restored session accepted an unparseable numeric value")
	}
	oc, os, oi := queryTriple(t, oracle)
	rc, rs, ri := queryTriple(t, restored)
	if !reflect.DeepEqual(oc, rc) {
		t.Errorf("Compare diverges:\noracle   %+v\nrestored %+v", oc, rc)
	}
	if !reflect.DeepEqual(os, rs) {
		t.Errorf("Sweep diverges:\noracle   %+v\nrestored %+v", os, rs)
	}
	if !reflect.DeepEqual(oi, ri) {
		t.Errorf("Impressions diverge:\noracle   %+v\nrestored %+v", oi, ri)
	}
}

// TestAppendSeqSnapshotConsistency: AppendSeq applies a batch and
// records its WAL sequence atomically with respect to snapshots —
// every snapshot taken while batches stream in reports a row count
// exactly consistent with its ingest sequence, so recovery from any
// checkpoint neither drops nor double-applies a batch.
func TestAppendSeqSnapshotConsistency(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	const baseRows, batchRows = 100, 10
	s := loadIngestSession(t, ingestRows(baseRows), false)
	extra := ingestRows(400)[baseRows:400]

	done := make(chan struct{})
	go func() {
		defer close(done)
		for b := 0; b*batchRows < len(extra); b++ {
			rows := extra[b*batchRows : (b+1)*batchRows]
			if err := s.AppendSeq(context.Background(), rows, uint64(b+1)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	dir := t.TempDir()
	for i := 0; ; i++ {
		path := fmt.Sprintf("%s/c%d.omapsnap", dir, i)
		if err := s.SaveSnapshotFile(path, SnapshotOptions{}); err != nil {
			t.Fatal(err)
		}
		info, err := PeekSnapshotFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if want := baseRows + int(info.IngestSeq)*batchRows; info.Rows != want {
			t.Fatalf("snapshot rows = %d at ingest seq %d, want %d (apply and sequence tore)", info.Rows, info.IngestSeq, want)
		}
		select {
		case <-done:
			if got := s.IngestSeq(); got != uint64(len(extra)/batchRows) {
				t.Errorf("final ingest seq = %d, want %d", got, len(extra)/batchRows)
			}
			return
		default:
		}
	}
}

// TestAppendValidation: a malformed batch is rejected atomically —
// nothing about the session changes, and the error names the row.
func TestAppendValidation(t *testing.T) {
	s := loadIngestSession(t, ingestRows(50), false)
	rowsBefore, cubesBefore := s.NumRows(), s.CubeCount()

	if err := s.Append(nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
	err := s.Append([][]string{{"north", "m1", "10"}})
	if err == nil || !strings.Contains(err.Error(), "schema has 5") {
		t.Errorf("short row error = %v", err)
	}
	err = s.Append([][]string{
		{"north", "m1", "10", "20", "ok"},
		{"north", "m1", "not-a-number", "20", "ok"},
	})
	if err == nil || !strings.Contains(err.Error(), "row 1") {
		t.Errorf("bad number error = %v", err)
	}
	if s.NumRows() != rowsBefore || s.CubeCount() != cubesBefore {
		t.Errorf("failed batches mutated the session: rows %d→%d cubes %d→%d",
			rowsBefore, s.NumRows(), cubesBefore, s.CubeCount())
	}
}

// TestAppendInvalidatesTouchedCache: an append evicts cached results
// that depend on a touched attribute (all of them here — every row
// touches every attribute) and the re-run answer reflects the new
// rows rather than the stale cache.
func TestAppendInvalidatesTouchedCache(t *testing.T) {
	s := loadIngestSession(t, ingestRows(200), false)
	before, _, _ := queryTriple(t, s)
	if err := s.Append(ingestRows(300)[200:300]); err != nil {
		t.Fatal(err)
	}
	after, err := s.Compare("Region", "north", "south", "fail", CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(before, after) {
		t.Error("Compare after 100 appended rows returned the pre-append (cached) result")
	}
	oracle := loadIngestSession(t, ingestRows(300), false)
	want, _, _ := queryTriple(t, oracle)
	if !reflect.DeepEqual(want, after) {
		t.Errorf("post-append Compare diverges from batch oracle:\noracle %+v\ngot    %+v", want, after)
	}
}

// TestAppendCutReevaluation: with periodic re-evaluation armed, enough
// appended rows re-run the discretizer; when the data distribution
// shifted, the cuts move and the session keeps serving consistently.
func TestAppendCutReevaluation(t *testing.T) {
	rows := ingestRows(120)
	s, err := LoadCSV(strings.NewReader(ingestCSV(rows)), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Discretize(DiscretizeOptions{Method: EqualWidth, Bins: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.BuildCubes(); err != nil {
		t.Fatal(err)
	}
	oldCuts := s.Cuts()["Temp"]
	s.SetCutReevaluation(50)

	// Shifted regime: Temp values far outside the original [0,100) range
	// move the equal-width cut points once re-evaluation triggers.
	shifted := make([][]string, 60)
	for i := range shifted {
		shifted[i] = []string{"north", "m1", fmt.Sprintf("%d", 500+i*7), fmt.Sprintf("%d", i%80), "ok"}
	}
	if err := s.Append(shifted); err != nil {
		t.Fatal(err)
	}
	newCuts := s.Cuts()["Temp"]
	if reflect.DeepEqual(oldCuts, newCuts) {
		t.Errorf("cuts unchanged after shifted appends: %v", newCuts)
	}
	if st := s.IngestStats(); st.RowsSinceCutEval >= 50 {
		t.Errorf("RowsSinceCutEval = %d, want reset below 50", st.RowsSinceCutEval)
	}
	// The rebuilt engine serves the grown dataset.
	if s.NumRows() != 180 {
		t.Errorf("rows = %d, want 180", s.NumRows())
	}
	if _, err := s.Compare("Region", "north", "south", "fail", CompareOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestIngestSeqRoundTrip: the ingest sequence survives a snapshot
// round trip (OMAPSNAP v2) and shows in both the peeked header and
// the reloaded session.
func TestIngestSeqRoundTrip(t *testing.T) {
	s := loadIngestSession(t, ingestRows(80), false)
	s.SetIngestSeq(42)
	if got := s.IngestSeq(); got != 42 {
		t.Fatalf("IngestSeq = %d", got)
	}
	path := t.TempDir() + "/s.omapsnap"
	if err := s.SaveSnapshotFile(path, SnapshotOptions{SourceHash: "h"}); err != nil {
		t.Fatal(err)
	}
	info, err := PeekSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 || info.IngestSeq != 42 {
		t.Errorf("peeked version=%d ingestSeq=%d, want 2/42", info.Version, info.IngestSeq)
	}
	restored, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.IngestSeq(); got != 42 {
		t.Errorf("restored IngestSeq = %d, want 42", got)
	}
	if st := restored.IngestStats(); st.IngestSeq != 42 {
		t.Errorf("IngestStats.IngestSeq = %d, want 42", st.IngestSeq)
	}
}

// TestConcurrentAppendAndQuery hammers the session with concurrent
// appends and reads under -race: every query must see a consistent
// session (no partial row, no stale engine) and nothing may leak.
func TestConcurrentAppendAndQuery(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	s := loadIngestSession(t, ingestRows(200), false)
	extra := ingestRows(400)[200:400]

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i+10 <= len(extra); i += 10 {
			if err := s.Append(extra[i : i+10]); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := s.Compare("Region", "north", "south", "fail", CompareOptions{}); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Impressions(ImpressionOptions{}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := s.NumRows(); got != 400 {
		t.Errorf("rows after concurrent appends = %d, want 400", got)
	}
	oracle := loadIngestSession(t, ingestRows(400), false)
	oc, _, _ := queryTriple(t, oracle)
	sc, _, _ := queryTriple(t, s)
	if !reflect.DeepEqual(oc, sc) {
		t.Errorf("post-concurrency Compare diverges from oracle:\noracle %+v\ngot    %+v", oc, sc)
	}
}
