package opmap

import (
	"fmt"
	"sort"

	"opmap/internal/baseline"
	"opmap/internal/car"
)

// Rule is a mined class association rule presented with resolved labels.
type Rule struct {
	// Conditions are "attr=value" pairs in attribute order.
	Conditions []RuleCondition
	Class      string
	Support    float64
	Confidence float64
	// SupCount and CondCount are the absolute counts behind the ratios.
	SupCount, CondCount int64
}

// RuleCondition is one attribute=value test of a rule.
type RuleCondition struct {
	Attr  string
	Value string
}

// String renders the rule in the paper's "X -> y" form.
func (r Rule) String() string {
	s := ""
	for i, c := range r.Conditions {
		if i > 0 {
			s += ", "
		}
		s += c.Attr + "=" + c.Value
	}
	if s == "" {
		s = "true"
	}
	return fmt.Sprintf("%s -> %s [sup=%.4f conf=%.4f]", s, r.Class, r.Support, r.Confidence)
}

// MineOptions configures class association rule mining.
type MineOptions struct {
	MinSupport    float64 // relative; rule cubes use 0
	MinConfidence float64
	MaxConditions int // zero means 2 (the deployed system's default)
	// Fixed pins conditions every rule must contain (restricted mining
	// for longer rules, Section III.B). Keys are attribute names.
	Fixed map[string]string
	// Attrs restricts candidate attributes by name; nil means all.
	Attrs []string
}

// MineRules runs the CAR generator over the working dataset.
func (s *Session) MineRules(opts MineOptions) ([]Rule, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, err := s.working()
	if err != nil {
		return nil, err
	}
	copts := car.Options{
		MinSupport:    opts.MinSupport,
		MinConfidence: opts.MinConfidence,
		MaxConditions: opts.MaxConditions,
	}
	for name, val := range opts.Fixed {
		a := ds.AttrIndex(name)
		if a < 0 {
			return nil, fmt.Errorf("opmap: unknown attribute %q in Fixed", name)
		}
		code, ok := ds.Column(a).Dict.Lookup(val)
		if !ok {
			return nil, fmt.Errorf("opmap: attribute %q has no value %q", name, val)
		}
		copts.Fixed = append(copts.Fixed, car.Condition{Attr: a, Value: code})
	}
	sort.Slice(copts.Fixed, func(i, j int) bool { return copts.Fixed[i].Attr < copts.Fixed[j].Attr })
	if opts.Attrs != nil {
		for _, n := range opts.Attrs {
			a := ds.AttrIndex(n)
			if a < 0 {
				return nil, fmt.Errorf("opmap: unknown attribute %q in Attrs", n)
			}
			copts.Attrs = append(copts.Attrs, a)
		}
	}
	rs, err := car.Mine(ds, copts)
	if err != nil {
		return nil, err
	}
	rs.SortByConfidence()
	out := make([]Rule, 0, rs.Len())
	for _, r := range rs.Rules {
		out = append(out, s.wrapRule(r))
	}
	return out, nil
}

func (s *Session) wrapRule(r car.Rule) Rule {
	ds := s.ds
	out := Rule{
		Class:      ds.ClassDict().Label(r.Class),
		Support:    r.Support(),
		Confidence: r.Confidence(),
		SupCount:   r.SupCount,
		CondCount:  r.CondCount,
	}
	for _, c := range r.Conditions {
		out.Conditions = append(out.Conditions, RuleCondition{
			Attr:  ds.Attr(c.Attr).Name,
			Value: ds.Column(c.Attr).Dict.Label(c.Value),
		})
	}
	return out
}

// RankedRule pairs a rule with its value under a classical
// interestingness measure (the rule-ranking baseline of Section II).
type RankedRule struct {
	Rule  Rule
	Value float64
}

// RankRules mines rules and ranks them by a named classical measure:
// one of "confidence", "support", "lift", "leverage", "conviction",
// "chi-squared", "laplace", "cosine", "jaccard", "certainty",
// "added-value".
func (s *Session) RankRules(measure string, opts MineOptions) ([]RankedRule, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, err := s.working()
	if err != nil {
		return nil, err
	}
	var m baseline.Measure
	found := false
	for _, cand := range baseline.AllMeasures() {
		if cand.String() == measure {
			m = cand
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("opmap: unknown measure %q", measure)
	}
	copts := car.Options{
		MinSupport:    opts.MinSupport,
		MinConfidence: opts.MinConfidence,
		MaxConditions: opts.MaxConditions,
	}
	rs, err := car.Mine(ds, copts)
	if err != nil {
		return nil, err
	}
	ranked, err := baseline.RankRules(ds, rs, m)
	if err != nil {
		return nil, err
	}
	out := make([]RankedRule, 0, len(ranked))
	for _, rr := range ranked {
		out = append(out, RankedRule{Rule: s.wrapRule(rr.Rule), Value: rr.Value})
	}
	return out, nil
}

// QueryRules mines rules and filters them with a query string — the
// rule-query baseline of Section II ("our users did not know what to
// ask"; provided for the cases where they do). Clauses are joined by
// "and": `class=dropped and Phone-Model=ph2 and conf >= 0.05 and len <= 2`;
// `attr=Name` matches rules mentioning the attribute; sup/conf/len take
// comparison operators.
func (s *Session) QueryRules(query string, opts MineOptions) ([]Rule, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, err := s.working()
	if err != nil {
		return nil, err
	}
	q, err := baseline.ParseRuleQuery(ds, query)
	if err != nil {
		return nil, err
	}
	rs, err := car.Mine(ds, car.Options{
		MinSupport:    opts.MinSupport,
		MinConfidence: opts.MinConfidence,
		MaxConditions: opts.MaxConditions,
	})
	if err != nil {
		return nil, err
	}
	matches := q.Apply(ds, rs)
	out := make([]Rule, 0, len(matches))
	for _, r := range matches {
		out = append(out, s.wrapRule(r))
	}
	return out, nil
}

// CompletenessReport quantifies Section III.A's completeness problem:
// how few rules a decision-tree classifier surfaces compared with
// exhaustive CAR mining at the same maximum rule length.
type CompletenessReport struct {
	TreeRules     int
	CARRules      int
	CoverageRatio float64
	TreeAccuracy  float64
}

// Completeness learns a decision tree on the working dataset, mines the
// exhaustive CAR rule set with the same maximum length, and reports the
// ratio.
func (s *Session) Completeness(maxConditions int) (CompletenessReport, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, err := s.working()
	if err != nil {
		return CompletenessReport{}, err
	}
	topts := baseline.TreeOptions{MaxDepth: maxConditions}
	rep, err := baseline.Completeness(ds, topts, car.Options{MaxConditions: maxConditions})
	if err != nil {
		return CompletenessReport{}, err
	}
	tree, err := baseline.Learn(ds, topts)
	if err != nil {
		return CompletenessReport{}, err
	}
	return CompletenessReport{
		TreeRules:     rep.TreeRules,
		CARRules:      rep.CARRules,
		CoverageRatio: rep.CoverageRatio,
		TreeAccuracy:  tree.Accuracy(ds),
	}, nil
}
