package opmap

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestScreenPairsAPI(t *testing.T) {
	s, gt := caseStudySession(t)
	pairs, err := s.ScreenPairs(gt.PhoneAttr, gt.DropClass, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 || len(pairs) > 3 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	top := pairs[0]
	if top.Value1 != gt.GoodPhone && top.Value2 != gt.BadPhone &&
		top.Value1 != gt.BadPhone && top.Value2 != gt.GoodPhone {
		// The most significant pair must involve the bad phone at least.
		if top.Value2 != gt.BadPhone {
			t.Errorf("top pair (%s,%s) does not involve the planted bad phone", top.Value1, top.Value2)
		}
	}
	if top.Cf1 >= top.Cf2 {
		t.Error("pair not oriented")
	}
	// The workflow: screen → compare.
	cmp, err := s.Compare(gt.PhoneAttr, top.Value1, top.Value2, gt.DropClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Top(1)[0].Name != gt.DistinguishingAttr {
		t.Errorf("screen→compare top = %q", cmp.Top(1)[0].Name)
	}
	if _, err := s.ScreenPairs("nope", gt.DropClass, 0); err == nil {
		t.Error("unknown attribute should fail")
	}
	if _, err := s.ScreenPairs(gt.PhoneAttr, "nope", 0); err == nil {
		t.Error("unknown class should fail")
	}
}

func TestCompareOneVsRestAPI(t *testing.T) {
	s, gt := caseStudySession(t)
	cmp, err := s.CompareOneVsRest(gt.DistinguishingAttr, "morning", gt.DropClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Morning is the worse side → labels oriented with rest first.
	if cmp.Label1 != "rest" || cmp.Label2 != "morning" {
		t.Errorf("labels (%q,%q), want (rest,morning)", cmp.Label1, cmp.Label2)
	}
	if cmp.Cf1 >= cmp.Cf2 {
		t.Error("orientation broken")
	}
	// The phone model (or its hardware proxy) explains the morning gap.
	names := []string{}
	for _, sc := range cmp.Top(2) {
		names = append(names, sc.Name)
	}
	found := false
	for _, n := range names {
		if n == gt.PhoneAttr || n == gt.PropertyAttr {
			found = true
		}
	}
	if !found {
		t.Errorf("top attributes %v do not include the phone model", names)
	}
	if _, err := s.CompareOneVsRest("nope", "x", gt.DropClass, CompareOptions{}); err == nil {
		t.Error("unknown attribute should fail")
	}
	if _, err := s.CompareOneVsRest(gt.DistinguishingAttr, "nope", gt.DropClass, CompareOptions{}); err == nil {
		t.Error("unknown value should fail")
	}
	if _, err := s.CompareOneVsRest(gt.DistinguishingAttr, "morning", "nope", CompareOptions{}); err == nil {
		t.Error("unknown class should fail")
	}
}

func TestCubePersistenceAPI(t *testing.T) {
	s, gt := caseStudySession(t)
	path := filepath.Join(t.TempDir(), "cubes.omap")
	if err := s.SaveCubesFile(path); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenCubesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.CubeCount() != s.CubeCount() {
		t.Errorf("cube count %d != %d", reopened.CubeCount(), s.CubeCount())
	}
	// Comparisons from the reloaded store match the original.
	a, err := s.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := reopened.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Ranked(), b.Ranked()
	if len(ra) != len(rb) {
		t.Fatal("ranking sizes differ")
	}
	for i := range ra {
		if ra[i].Name != rb[i].Name || ra[i].Score != rb[i].Score {
			t.Fatalf("rank %d differs: %+v vs %+v", i, ra[i], rb[i])
		}
	}
	// Raw-data operations fail gracefully on a cube-only session.
	if _, err := reopened.MineRules(MineOptions{}); err == nil {
		t.Log("MineRules on cube-only session returned no error (empty data); acceptable")
	}
	// In-memory round trip.
	var buf bytes.Buffer
	if err := s.SaveCubes(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCubes(&buf); err != nil {
		t.Fatal(err)
	}
	// Saving before cubes exist fails.
	fresh, _, err := GenerateCallLog(CallLogConfig{Seed: 1, Records: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.SaveCubes(&bytes.Buffer{}); err == nil {
		t.Error("SaveCubes without BuildCubes should fail")
	}
}

func TestCompareWhereAPI(t *testing.T) {
	s, gt := caseStudySession(t)
	overall, err := s.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	within, err := s.CompareWhere(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass,
		map[string]string{gt.DistinguishingAttr: "morning"}, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if within.Cf2 <= overall.Cf2 {
		t.Errorf("morning-only bad-phone rate %.4f should exceed overall %.4f", within.Cf2, overall.Cf2)
	}
	if _, ok := within.Attribute(gt.DistinguishingAttr); ok {
		t.Error("fixed attribute should not be ranked")
	}
	if _, err := s.CompareWhere(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass,
		map[string]string{"nope": "x"}, CompareOptions{}); err == nil {
		t.Error("unknown where attribute should fail")
	}
	if _, err := s.CompareWhere(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass,
		map[string]string{gt.DistinguishingAttr: "nope"}, CompareOptions{}); err == nil {
		t.Error("unknown where value should fail")
	}
}

func TestChiMergeDiscretizeMethod(t *testing.T) {
	s, truth, err := GenerateManufacturing(11, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Discretize(DiscretizeOptions{Method: ChiMerge, Bins: 6}); err != nil {
		t.Fatal(err)
	}
	for _, n := range truth.ContinuousAttrs {
		cuts := s.Cuts()[n]
		if len(cuts) > 5 {
			t.Errorf("%s: ChiMerge with cap 6 produced %d cuts", n, len(cuts))
		}
	}
	if err := s.BuildCubes(); err != nil {
		t.Fatal(err)
	}
	cmp, err := s.Compare(truth.MachineAttr, truth.GoodMachine, truth.BadMachine, truth.DefectClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Top(1)[0].Name != truth.DistinguishingAttr {
		t.Errorf("ChiMerge pipeline top = %q", cmp.Top(1)[0].Name)
	}
}

func TestExploreScriptAPI(t *testing.T) {
	s, gt := caseStudySession(t)
	var buf bytes.Buffer
	script := strings.Join([]string{
		"compare " + gt.PhoneAttr + " " + gt.GoodPhone + " " + gt.BadPhone + " " + gt.DropClass,
		"focus",
		"quit",
	}, "\n")
	if err := s.ExploreScript(script, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), gt.DistinguishingAttr) {
		t.Error("exploration transcript missing the planted attribute")
	}
	fresh, _, err := GenerateCallLog(CallLogConfig{Seed: 1, Records: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.ExploreScript("quit", &buf); err == nil {
		t.Error("exploring without cubes should fail")
	}
}

func TestDescribeAndDownsampleAPI(t *testing.T) {
	s, gt := caseStudySession(t)
	var buf bytes.Buffer
	if err := s.Describe(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), gt.PhoneAttr) || !strings.Contains(buf.String(), "majority share") {
		t.Error("describe output incomplete")
	}
	before := s.NumRows()
	if err := s.DownsampleMajority(0.2, 1); err != nil {
		t.Fatal(err)
	}
	if s.NumRows() >= before {
		t.Error("downsampling did not shrink the data")
	}
	// Cubes were invalidated; rebuild and the planted signal survives.
	if s.CubeCount() != 0 {
		t.Error("cubes should be invalidated by sampling")
	}
	if err := s.BuildCubes(); err != nil {
		t.Fatal(err)
	}
	cmp, err := s.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Top(1)[0].Name != gt.DistinguishingAttr {
		t.Errorf("after downsampling, top = %q", cmp.Top(1)[0].Name)
	}
	if err := s.DownsampleMajority(0, 1); err == nil {
		t.Error("zero fraction should fail")
	}
}

func TestRenderPropertyAPI(t *testing.T) {
	s, gt := caseStudySession(t)
	cmp, err := s.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cmp.RenderProperty(&buf, gt.PropertyAttr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 count") {
		t.Error("property render missing zero-count marker")
	}
	if err := cmp.RenderProperty(&buf, "nope"); err == nil {
		t.Error("unknown attribute should fail")
	}
}

func TestWriteReportAPI(t *testing.T) {
	s, gt := caseStudySession(t)
	cmp, err := s.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = s.WriteReport(&buf, cmp, ReportOptions{
		TopN:               3,
		Timestamp:          time.Date(2026, 7, 5, 0, 0, 0, 0, time.UTC),
		IncludeImpressions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Comparison report",
		gt.DistinguishingAttr,
		gt.PropertyAttr,
		"general impressions",
		"2026-07-05",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRenderDetailed3DAPI(t *testing.T) {
	s, gt := caseStudySession(t)
	var buf bytes.Buffer
	if err := s.RenderDetailed3D(&buf, gt.PhoneAttr, gt.DistinguishingAttr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), gt.GoodPhone) {
		t.Error("3-D render missing values")
	}
	if err := s.RenderDetailed3D(&buf, "nope", gt.DistinguishingAttr); err != nil {
		if !strings.Contains(err.Error(), "unknown attribute") {
			t.Errorf("unexpected error: %v", err)
		}
	} else {
		t.Error("unknown attribute should fail")
	}
}

func TestSignificanceAPI(t *testing.T) {
	s, gt := caseStudySession(t)
	sig, err := s.TestSignificance(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass,
		gt.DistinguishingAttr, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sig.PValue > 0.1 {
		t.Errorf("planted attribute p = %v", sig.PValue)
	}
	if sig.Attr != gt.DistinguishingAttr || sig.Rounds == 0 {
		t.Errorf("result = %+v", sig)
	}
	if _, err := s.TestSignificance(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, "nope", 10, 1); err == nil {
		t.Error("unknown candidate should fail")
	}
}

func TestSweepAPI(t *testing.T) {
	s, gt := caseStudySession(t)
	res, err := s.Sweep(gt.PhoneAttr, gt.DropClass, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.PairsCompared == 0 || len(res.Attributes) == 0 {
		t.Fatalf("sweep result empty: %+v", res)
	}
	if res.Attributes[0].Name != gt.DistinguishingAttr {
		t.Errorf("sweep top = %q", res.Attributes[0].Name)
	}
	if _, err := s.Sweep("nope", gt.DropClass, 0); err == nil {
		t.Error("unknown attribute should fail")
	}
	if _, err := s.Sweep(gt.PhoneAttr, "nope", 0); err == nil {
		t.Error("unknown class should fail")
	}
}

func TestCubeStatsAPI(t *testing.T) {
	s, _ := caseStudySession(t)
	st := s.CubeStats()
	if st.Cubes != s.CubeCount() {
		t.Errorf("stats cubes %d != CubeCount %d", st.Cubes, s.CubeCount())
	}
	if int64(st.Cells) != s.RuleSpaceSize() {
		t.Errorf("stats cells %d != RuleSpaceSize %d", st.Cells, s.RuleSpaceSize())
	}
	if st.Bytes != int64(st.Cells)*8 {
		t.Errorf("bytes = %d", st.Bytes)
	}
	fresh, _, err := GenerateCallLog(CallLogConfig{Seed: 1, Records: 100})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.CubeStats() != (CubeStats{}) {
		t.Error("stats before BuildCubes should be zero")
	}
}

func TestRenderOverallSVGAPI(t *testing.T) {
	s, gt := caseStudySession(t)
	var buf bytes.Buffer
	if err := s.RenderOverallSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "<svg") {
		t.Error("not an SVG")
	}
	if !strings.Contains(buf.String(), gt.PhoneAttr) {
		t.Error("overall SVG missing attributes")
	}
}

func TestWriteSweepReportAPI(t *testing.T) {
	s, gt := caseStudySession(t)
	var buf bytes.Buffer
	if err := s.WriteSweepReport(&buf, gt.PhoneAttr, gt.DropClass, 3, ReportOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Sweep report") || !strings.Contains(out, gt.DistinguishingAttr) {
		t.Error("sweep report incomplete")
	}
	if err := s.WriteSweepReport(&buf, "nope", gt.DropClass, 0, ReportOptions{}); err == nil {
		t.Error("unknown attribute should fail")
	}
	if err := s.WriteSweepReport(&buf, gt.PhoneAttr, "nope", 0, ReportOptions{}); err == nil {
		t.Error("unknown class should fail")
	}
}

func TestQueryRulesAPI(t *testing.T) {
	s, gt := caseStudySession(t)
	rules, err := s.QueryRules("class="+gt.DropClass+" and "+gt.PhoneAttr+"="+gt.BadPhone+" and conf >= 0.03",
		MineOptions{MaxConditions: 2, MinSupport: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules matched the planted pattern")
	}
	for _, r := range rules {
		if r.Class != gt.DropClass || r.Confidence < 0.03 {
			t.Fatalf("rule %v violates the query", r)
		}
	}
	if _, err := s.QueryRules("bogus ~ clause", MineOptions{}); err == nil {
		t.Error("bad query should fail")
	}
}

func TestConditionalTrendsAPI(t *testing.T) {
	s, gt := caseStudySession(t)
	// Both argument orders must work (the store stores one canonical
	// order; the other path slices manually).
	for _, pair := range [][2]string{
		{gt.PhoneAttr, gt.DistinguishingAttr},
		{gt.DistinguishingAttr, gt.PhoneAttr},
	} {
		cts, err := s.ConditionalTrends(pair[0], pair[1])
		if err != nil {
			t.Fatalf("(%s,%s): %v", pair[0], pair[1], err)
		}
		for _, ct := range cts {
			if ct.OrdAttr != pair[1] {
				t.Fatalf("(%s,%s): trend over %q", pair[0], pair[1], ct.OrdAttr)
			}
			if ct.Kind == "" || ct.GroupValue == "" {
				t.Fatalf("incomplete trend %+v", ct)
			}
		}
	}
	if _, err := s.ConditionalTrends("nope", gt.PhoneAttr); err == nil {
		t.Error("unknown group attribute should fail")
	}
	if _, err := s.ConditionalTrends(gt.PhoneAttr, "nope"); err == nil {
		t.Error("unknown ordinal attribute should fail")
	}
}
