package opmap

import (
	"bytes"
	"context"
	"reflect"
	"testing"
)

// snapshotPair builds a fresh eager session and a second session
// restored from its snapshot. The pair backs the warm-start oracle
// tests: every cube-served query must be identical across the two.
func snapshotPair(t testing.TB) (fresh, warm *Session, gt CallLogTruth) {
	t.Helper()
	cfg := CallLogConfig{Seed: 41, Records: 20000, NumPhones: 5, NoiseAttrs: 3}
	fresh, gt, err := GenerateCallLog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Discretize(DiscretizeOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := fresh.BuildCubes(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fresh.SaveSnapshot(&buf, SnapshotOptions{SourceHash: HashSourceString("callog-41")}); err != nil {
		t.Fatal(err)
	}
	warm, err = LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return fresh, warm, gt
}

func TestSnapshotCompareMatchesFresh(t *testing.T) {
	fresh, warm, gt := snapshotPair(t)
	want, err := fresh.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := warm.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if want.Cf1 != got.Cf1 || want.Cf2 != got.Cf2 || want.Ratio != got.Ratio {
		t.Errorf("confidences differ: fresh (%g,%g,%g), snapshot (%g,%g,%g)",
			want.Cf1, want.Cf2, want.Ratio, got.Cf1, got.Cf2, got.Ratio)
	}
	if !reflect.DeepEqual(want.Ranked(), got.Ranked()) {
		t.Error("snapshot-loaded ranking differs from fresh build")
	}
	if !reflect.DeepEqual(want.PropertyAttributes(), got.PropertyAttributes()) {
		t.Error("snapshot-loaded property attributes differ from fresh build")
	}
}

func TestSnapshotSweepAndImpressionsMatchFresh(t *testing.T) {
	fresh, warm, gt := snapshotPair(t)
	ws, err := fresh.Sweep(gt.PhoneAttr, gt.DropClass, 3)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := warm.Sweep(gt.PhoneAttr, gt.DropClass, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ws, gs) {
		t.Error("snapshot-loaded sweep differs from fresh build")
	}
	wi, err := fresh.Impressions(ImpressionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gi, err := warm.Impressions(ImpressionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wi, gi) {
		t.Error("snapshot-loaded impressions differ from fresh build")
	}
}

func TestSnapshotSessionMetadata(t *testing.T) {
	fresh, warm, _ := snapshotPair(t)
	if f, w := fresh.NumRows(), warm.NumRows(); f != w {
		t.Errorf("NumRows: fresh %d, snapshot %d", f, w)
	}
	if f, w := fresh.Attributes(), warm.Attributes(); !reflect.DeepEqual(f, w) {
		t.Errorf("Attributes: fresh %v, snapshot %v", f, w)
	}
	if f, w := fresh.ClassAttribute(), warm.ClassAttribute(); f != w {
		t.Errorf("ClassAttribute: fresh %q, snapshot %q", f, w)
	}
	if f, w := fresh.Classes(), warm.Classes(); !reflect.DeepEqual(f, w) {
		t.Errorf("Classes: fresh %v, snapshot %v", f, w)
	}
	if f, w := fresh.CubeCount(), warm.CubeCount(); f != w {
		t.Errorf("CubeCount: fresh %d, snapshot %d", f, w)
	}
	if f, w := fresh.RuleSpaceSize(), warm.RuleSpaceSize(); f != w {
		t.Errorf("RuleSpaceSize: fresh %d, snapshot %d", f, w)
	}
}

func TestSnapshotFileRoundTripAndPeek(t *testing.T) {
	sess, gt, err := GenerateCallLog(CallLogConfig{Seed: 9, Records: 5000, NumPhones: 4, NoiseAttrs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Discretize(DiscretizeOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := sess.BuildCubes(); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/calls.omapsnap"
	hash := HashSourceString("calls-seed-9")
	if err := sess.SaveSnapshotFile(path, SnapshotOptions{SourceHash: hash}); err != nil {
		t.Fatal(err)
	}
	info, err := PeekSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.SourceHash != hash {
		t.Errorf("peeked hash %q, want %q", info.SourceHash, hash)
	}
	if info.Lazy {
		t.Error("eager snapshot peeked as lazy")
	}
	if info.Rows != sess.NumRows() {
		t.Errorf("peeked rows %d, want %d", info.Rows, sess.NumRows())
	}
	warm, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{}); err != nil {
		t.Fatalf("compare on file-loaded session: %v", err)
	}
}

// TestSnapshotSeedLazy pins the lazy warm-start path: a lazy session's
// resident cubes survive the snapshot and seed a fresh lazy session,
// whose queries then run with zero additional builds.
func TestSnapshotSeedLazy(t *testing.T) {
	cfg := CallLogConfig{Seed: 23, Records: 10000, NumPhones: 4, NoiseAttrs: 2}
	first, gt, err := GenerateCallLog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Discretize(DiscretizeOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := first.BuildCubesOptions(context.Background(), BuildOptions{Lazy: true}); err != nil {
		t.Fatal(err)
	}
	want, err := first.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if first.CubeCount() == 0 {
		t.Fatal("lazy session has no resident cubes after a compare")
	}
	path := t.TempDir() + "/lazy.omapsnap"
	if err := first.SaveSnapshotFile(path, SnapshotOptions{}); err != nil {
		t.Fatal(err)
	}
	if info, err := PeekSnapshotFile(path); err != nil || !info.Lazy {
		t.Fatalf("lazy snapshot peek: info=%+v err=%v", info, err)
	}
	// A lazy snapshot cannot serve standalone.
	if _, err := LoadSnapshotFile(path); err == nil {
		t.Fatal("LoadSnapshotFile accepted a lazy snapshot")
	}

	second, _, err := GenerateCallLog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Discretize(DiscretizeOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := second.BuildCubesOptions(context.Background(), BuildOptions{Lazy: true}); err != nil {
		t.Fatal(err)
	}
	seeded, err := second.SeedSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if seeded != first.CubeCount() {
		t.Errorf("seeded %d cubes, snapshot held %d", seeded, first.CubeCount())
	}
	got, err := second.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Ranked(), got.Ranked()) {
		t.Error("seeded session's ranking differs from the original")
	}
	st := second.EngineStats()
	if st.OneDBuilds != 0 || st.TwoDBuilds != 0 {
		t.Errorf("seeded session built cubes for a snapshot-covered query: 1-D %d, 2-D %d", st.OneDBuilds, st.TwoDBuilds)
	}
}

// TestSnapshotSeedRejectsMismatch pins the staleness guard below the
// hash check: a snapshot over different data must not seed.
func TestSnapshotSeedRejectsMismatch(t *testing.T) {
	big, gt, err := GenerateCallLog(CallLogConfig{Seed: 5, Records: 8000, NumPhones: 6, NoiseAttrs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := big.Discretize(DiscretizeOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := big.BuildCubesOptions(context.Background(), BuildOptions{Lazy: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := big.Compare(gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, CompareOptions{}); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/other.omapsnap"
	if err := big.SaveSnapshotFile(path, SnapshotOptions{}); err != nil {
		t.Fatal(err)
	}
	small, _, err := GenerateCallLog(CallLogConfig{Seed: 5, Records: 8000, NumPhones: 3, NoiseAttrs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := small.Discretize(DiscretizeOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := small.BuildCubesOptions(context.Background(), BuildOptions{Lazy: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := small.SeedSnapshotFile(path); err == nil {
		t.Error("seeding from a mismatched snapshot succeeded")
	}
	// Eager sessions cannot seed.
	eager, _, err := GenerateCallLog(CallLogConfig{Seed: 5, Records: 1000, NumPhones: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := eager.Discretize(DiscretizeOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := eager.BuildCubes(); err != nil {
		t.Fatal(err)
	}
	if _, err := eager.SeedSnapshotFile(path); err == nil {
		t.Error("SeedSnapshotFile on an eager session succeeded")
	}
}

// TestSnapshotRequiresEngine pins the precondition error.
func TestSnapshotRequiresEngine(t *testing.T) {
	sess, _, err := GenerateCallLog(CallLogConfig{Seed: 1, Records: 500, NumPhones: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sess.SaveSnapshot(&buf, SnapshotOptions{}); err == nil {
		t.Error("SaveSnapshot before BuildCubes succeeded")
	}
}
