module opmap

go 1.22
