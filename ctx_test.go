package opmap

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"opmap/internal/faultinject"
	"opmap/internal/testutil"
)

// TestBuildCubesContextCancel is the public-API acceptance check:
// canceling mid-BuildCubes returns ctx.Err() within 100ms and leaks no
// worker goroutines.
func TestBuildCubesContextCancel(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	defer faultinject.Reset()
	sess, _, err := CaseStudy(1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	disarm, err := faultinject.Arm(faultinject.Fault{
		Site:  faultinject.SiteCubeBuildPair,
		Kind:  faultinject.Delay,
		Delay: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- sess.BuildCubesContext(ctx) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	start := time.Now()
	select {
	case err := <-done:
		if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
			t.Errorf("BuildCubesContext returned %v after cancel, want <= 100ms", elapsed)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("BuildCubesContext did not return within 2s of cancel")
	}
}

// TestSweepPartialDegrades pins the public degraded-sweep contract:
// with the context gone mid-sweep, SweepPartial returns annotated
// partial results instead of an error, while SweepContext stays strict.
func TestSweepPartialDegrades(t *testing.T) {
	sess, gt, err := CaseStudy(1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.BuildCubes(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := sess.SweepContext(ctx, gt.PhoneAttr, gt.DropClass, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("strict SweepContext err = %v, want context.Canceled", err)
	}

	res, err := sess.SweepPartial(ctx, gt.PhoneAttr, gt.DropClass, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Error("SweepPartial did not mark the result partial")
	}
	if res.PairsCompared != 0 {
		t.Errorf("PairsCompared = %d on a pre-canceled context", res.PairsCompared)
	}
	if len(res.Errors) == 0 {
		t.Error("no skipped pairs annotated")
	}
}

// TestCompareOneVsRestContextPartial exercises the public one-vs-rest
// degradation path end to end.
func TestCompareOneVsRestContextPartial(t *testing.T) {
	sess, gt, err := CaseStudy(1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.BuildCubes(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cmp, err := sess.CompareOneVsRestContext(ctx, gt.PhoneAttr, gt.BadPhone, gt.DropClass, CompareOptions{PartialOnDeadline: true})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Partial {
		t.Error("Partial not set on expired context")
	}
	if len(cmp.Unscored) == 0 {
		t.Error("no unscored attributes annotated")
	}
	for _, ie := range cmp.Unscored {
		if ie.Item == "" || ie.Err == "" {
			t.Errorf("malformed annotation %+v", ie)
		}
	}
}

// TestLoadLimitsPropagate pins that LoadOptions limits reach the CSV
// reader.
func TestLoadLimitsPropagate(t *testing.T) {
	csv := "a,b,class\nx,1,yes\ny,2,no\nz,3,yes\n"
	if _, err := LoadCSV(strings.NewReader(csv), LoadOptions{MaxRows: 2}); err == nil {
		t.Fatal("MaxRows=2 accepted 3 data rows")
	}
	if _, err := LoadCSV(strings.NewReader(csv), LoadOptions{MaxColumns: 2}); err == nil {
		t.Fatal("MaxColumns=2 accepted a 3-column file")
	}
	if _, err := LoadCSV(strings.NewReader(csv), LoadOptions{MaxRecordBytes: 4}); err == nil {
		t.Fatal("MaxRecordBytes=4 accepted a wider record")
	}
	if _, err := LoadCSV(strings.NewReader(csv), LoadOptions{}); err != nil {
		t.Fatalf("zero limits rejected a valid file: %v", err)
	}
}
