package opmap

// Benchmarks, one per table/figure of the paper's evaluation plus the
// ablations called out in DESIGN.md §5. `go test -bench=. -benchmem`
// runs them at a laptop-friendly scale; cmd/figures runs the same
// experiments at configurable (up to paper) scale and prints the series.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"opmap/internal/car"
	"opmap/internal/compare"
	"opmap/internal/dataset"
	"opmap/internal/discretize"
	"opmap/internal/rulecube"
	"opmap/internal/visual"
	"opmap/internal/workload"
)

// benchRecords is the record count behind the benchmark datasets. The
// paper uses 2M records; benches use a smaller set because cube-backed
// comparison time is independent of it anyway (that independence is
// itself benchmarked in BenchmarkAblationCubeVsScan).
const benchRecords = 50000

var (
	benchMu    sync.Mutex
	scaleCache = map[int]*rulecube.Store{}
	scaleData  = map[int]*dataset.Dataset{}
)

// scaleStore returns (building once) the cube store for a scale dataset
// with the given number of attributes.
func scaleStore(b *testing.B, attrs int) (*rulecube.Store, *dataset.Dataset) {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if s, ok := scaleCache[attrs]; ok {
		return s, scaleData[attrs]
	}
	ds, err := workload.Scale(workload.ScaleConfig{Seed: 1, Records: benchRecords, Attrs: attrs})
	if err != nil {
		b.Fatal(err)
	}
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	scaleCache[attrs] = store
	scaleData[attrs] = ds
	return store, ds
}

// BenchmarkFig9Comparison measures the comparison computation time as
// the number of attributes grows (paper Fig. 9: linear, ≤0.8 s at 160
// attributes on 2008 hardware; interactive).
func BenchmarkFig9Comparison(b *testing.B) {
	for _, attrs := range []int{40, 80, 120, 160} {
		b.Run(fmt.Sprintf("attrs-%d", attrs), func(b *testing.B) {
			store, _ := scaleStore(b, attrs)
			cmp := compare.New(store)
			in := compare.Input{Attr: 0, V1: 0, V2: 1, Class: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cmp.Compare(in, compare.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig10CubeGenAttrs measures rule-cube store generation time as
// the number of attributes grows (paper Fig. 10: superlinear — the store
// holds all attribute pairs).
func BenchmarkFig10CubeGenAttrs(b *testing.B) {
	for _, attrs := range []int{40, 80, 120, 160} {
		b.Run(fmt.Sprintf("attrs-%d", attrs), func(b *testing.B) {
			ds, err := workload.Scale(workload.ScaleConfig{Seed: 1, Records: benchRecords / 5, Attrs: attrs})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rulecube.BuildStore(ds, rulecube.StoreOptions{Parallelism: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11CubeGenRecords measures cube generation time as records
// grow by duplication (paper Fig. 11: linear; the paper duplicated a 2M
// set to 2/4/6/8M records).
func BenchmarkFig11CubeGenRecords(b *testing.B) {
	base, err := workload.Scale(workload.ScaleConfig{Seed: 1, Records: benchRecords / 2, Attrs: 40})
	if err != nil {
		b.Fatal(err)
	}
	for factor := 1; factor <= 4; factor++ {
		b.Run(fmt.Sprintf("records-%d", base.NumRows()*factor), func(b *testing.B) {
			ds := base.Duplicate(factor)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rulecube.BuildStore(ds, rulecube.StoreOptions{Parallelism: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationParallelCubeGen contrasts serial cube generation (the
// paper's offline step) with this implementation's parallel build — an
// extension ablation (DESIGN.md §5).
func BenchmarkAblationParallelCubeGen(b *testing.B) {
	ds, err := workload.Scale(workload.ScaleConfig{Seed: 1, Records: benchRecords / 5, Attrs: 60})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rulecube.BuildStore(ds, rulecube.StoreOptions{Parallelism: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rulecube.BuildStore(ds, rulecube.StoreOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig4Boundaries exercises the measure's boundary computations
// (Fig. 2/Fig. 4): the pure Eq. 1–3 arithmetic on explicit tables.
func BenchmarkFig4Boundaries(b *testing.B) {
	n1 := []int64{10000, 10000, 10000}
	c1 := []int64{250, 250, 100}
	n2 := []int64{14400, 14400, 1200}
	c2 := []int64{0, 0, 1200}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := compare.CompareValues("t", nil, n1, c1, n2, c2, compare.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// caseStudyBench holds the Section V.B fixture for the case-study and
// ablation benchmarks.
var caseStudyOnce struct {
	sync.Once
	store *rulecube.Store
	ds    *dataset.Dataset
	in    compare.Input
	err   error
}

func caseStudyFixture(b *testing.B) (*rulecube.Store, *dataset.Dataset, compare.Input) {
	b.Helper()
	caseStudyOnce.Do(func() {
		ds, gt, err := workload.CallLog(workload.CaseStudyConfig(7, benchRecords))
		if err != nil {
			caseStudyOnce.err = err
			return
		}
		store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{})
		if err != nil {
			caseStudyOnce.err = err
			return
		}
		attr := ds.AttrIndex(gt.PhoneAttr)
		v1, _ := ds.Column(attr).Dict.Lookup(gt.GoodPhone)
		v2, _ := ds.Column(attr).Dict.Lookup(gt.BadPhone)
		cls, _ := ds.ClassDict().Lookup(gt.DropClass)
		caseStudyOnce.store = store
		caseStudyOnce.ds = ds
		caseStudyOnce.in = compare.Input{Attr: attr, V1: v1, V2: v2, Class: cls}
	})
	if caseStudyOnce.err != nil {
		b.Fatal(caseStudyOnce.err)
	}
	return caseStudyOnce.store, caseStudyOnce.ds, caseStudyOnce.in
}

// BenchmarkCaseStudyComparison times the Section V.B comparison on the
// 41-attribute call log.
func BenchmarkCaseStudyComparison(b *testing.B) {
	store, _, in := caseStudyFixture(b)
	cmp := compare.New(store)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cmp.Compare(in, compare.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCI isolates the cost of the confidence-interval
// adjustment (DESIGN.md §5): Eq. 1 with and without interval revision.
func BenchmarkAblationCI(b *testing.B) {
	store, _, in := caseStudyFixture(b)
	cmp := compare.New(store)
	b.Run("with-ci", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cmp.Compare(in, compare.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("without-ci", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cmp.Compare(in, compare.Options{DisableCI: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wilson", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cmp.Compare(in, compare.Options{Method: compare.Wilson}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCubeVsScan contrasts cube-backed comparison with raw
// re-scanning (DESIGN.md §5): the scan path's cost grows with records,
// the cube path's does not — the paper's V.C claim.
func BenchmarkAblationCubeVsScan(b *testing.B) {
	store, ds, in := caseStudyFixture(b)
	cmp := compare.New(store)
	b.Run("cube", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cmp.Compare(in, compare.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := compare.Scan(ds, in, compare.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Scan over 2× the records ≈ 2× the time; cube time unchanged.
	big := ds.Duplicate(2)
	b.Run("scan-2x-records", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := compare.Scan(big, in, compare.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRestrictedMining times on-demand restricted mining of longer
// rules versus reading the materialized two-condition cubes (the
// deployed system's design choice, Section III.B).
func BenchmarkRestrictedMining(b *testing.B) {
	store, ds, in := caseStudyFixture(b)
	fixed := []car.Condition{{Attr: in.Attr, Value: in.V2}}
	b.Run("restricted-cube", func(b *testing.B) {
		attrs := []int{ds.AttrIndex("Time-of-Call"), ds.AttrIndex("Terrain")}
		for i := 0; i < b.N; i++ {
			if _, err := store.RestrictedCube(fixed, attrs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("restricted-mine-3cond", func(b *testing.B) {
		opts := car.Options{MaxConditions: 2, Fixed: fixed, MinSupport: 0.001,
			Attrs: []int{ds.AttrIndex("Time-of-Call"), ds.AttrIndex("Terrain")}}
		for i := 0; i < b.N; i++ {
			if _, err := car.Mine(ds, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCARMining times exhaustive two-condition CAR mining (the
// offline stage feeding the cubes).
func BenchmarkCARMining(b *testing.B) {
	_, ds, _ := caseStudyFixture(b)
	small, err := dataset.StratifiedSample(ds, 0.2, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := car.Mine(small, car.Options{MaxConditions: 2, MinSupport: 0.005}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiscretizeMDLP times supervised discretization of the
// manufacturing log's continuous attributes.
func BenchmarkDiscretizeMDLP(b *testing.B) {
	ds, _, err := workload.Manufacturing(workload.ManufacturingConfig{Seed: 1, Records: 20000})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := discretize.Apply(ds, discretize.MDLP{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverallRender times the Fig. 5 overall view rendering.
func BenchmarkOverallRender(b *testing.B) {
	store, _, _ := caseStudyFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink countingWriter
		if err := visual.Overall(&sink, store, visual.OverallOptions{Scale: true}); err != nil {
			b.Fatal(err)
		}
	}
}

type countingWriter int64

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}

// BenchmarkScreenPairs times the pair-screening extension over the
// case-study phone attribute.
func BenchmarkScreenPairs(b *testing.B) {
	store, ds, in := caseStudyFixture(b)
	cmp := compare.New(store)
	attr := ds.AttrIndex("Phone-Model")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cmp.ScreenPairs(attr, in.Class, compare.ScreenOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOneVsRest times the one-vs-rest comparison.
func BenchmarkOneVsRest(b *testing.B) {
	store, ds, in := caseStudyFixture(b)
	cmp := compare.New(store)
	timeAttr := ds.AttrIndex("Time-of-Call")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cmp.OneVsRest(compare.OneVsRestInput{Attr: timeAttr, Value: 0, Class: in.Class}, compare.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorePersistence times the offline artifact's write and read.
func BenchmarkStorePersistence(b *testing.B) {
	store, _, _ := caseStudyFixture(b)
	var buf bytes.Buffer
	if err := rulecube.WriteStore(&buf, store); err != nil {
		b.Fatal(err)
	}
	blob := buf.Bytes()
	b.Run("write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var w countingWriter
			if err := rulecube.WriteStore(&w, store); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read", func(b *testing.B) {
		b.SetBytes(int64(len(blob)))
		for i := 0; i < b.N; i++ {
			if _, err := rulecube.ReadStore(bytes.NewReader(blob)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
