package opmap

import (
	"fmt"
	"sort"

	"opmap/internal/compare"
	"opmap/internal/drill"
)

// Result-cache key construction. Keys are normalized so queries that
// must return identical results share an entry:
//   - the compared value pair is sorted by code (the comparator
//     orients by confidence internally, so (v1,v2) and (v2,v1) yield
//     the same Result);
//   - the restricted-attribute list is sorted (the final ranking is
//     score-ordered, so input order is irrelevant);
//   - PartialOnDeadline is excluded (it changes degradation behaviour,
//     not the value of a completed result — and partial results are
//     never cached).
// Keys embed resolved codes, not labels, so they are only meaningful
// against the snapshot version they were stored under.

// compareOptsKey fingerprints the result-affecting fields of the
// internal compare options.
func compareOptsKey(o compare.Options) string {
	attrs := append([]int(nil), o.Attrs...)
	sort.Ints(attrs)
	return fmt.Sprintf("lvl=%g|ci=%t|m=%d|pt=%g|mrs=%d|attrs=%v",
		float64(o.Level), o.DisableCI, o.Method, o.PropertyThreshold, o.MinRuleSupport, attrs)
}

// compareKey keys a pairwise comparison.
func compareKey(in compare.Input, o compare.Options) string {
	lo, hi := in.V1, in.V2
	if lo > hi {
		lo, hi = hi, lo
	}
	return fmt.Sprintf("compare|a=%d|v=%d,%d|c=%d|%s", in.Attr, lo, hi, in.Class, compareOptsKey(o))
}

// oneVsRestAllKey keys a one-vs-rest run over every value of an
// attribute. DisableBatch-style execution knobs are deliberately not
// part of the identity: they change how cubes are materialized, never
// the result.
func oneVsRestAllKey(attr int, class int32, o compare.Options) string {
	return fmt.Sprintf("onevsrestall|a=%d|c=%d|%s", attr, class, compareOptsKey(o))
}

// sweepKey keys a sweep; maxPairs changes which pairs are compared,
// so it is part of the identity.
func sweepKey(attr int, class int32, maxPairs int) string {
	return fmt.Sprintf("sweep|a=%d|c=%d|max=%d", attr, class, maxPairs)
}

// drilldownKey keys a drill-down. Depth, beam, node budget and
// support floor all change which branches are searched, so they are
// part of the identity, as is the scoring measure.
func drilldownKey(in compare.Input, o drill.Options) string {
	lo, hi := in.V1, in.V2
	if lo > hi {
		lo, hi = hi, lo
	}
	meas := "paper"
	if o.Measure != nil {
		meas = o.Measure.Name()
	}
	return fmt.Sprintf("drill|a=%d|v=%d,%d|c=%d|d=%d|b=%d|n=%d|ms=%d|meas=%s|%s",
		in.Attr, lo, hi, in.Class, o.MaxDepth, o.Beam, o.MaxNodes, o.MinSupport, meas, compareOptsKey(o.Compare))
}

// impressionsKey keys a GI-miner run over the full cube space.
func impressionsKey(o ImpressionOptions) string {
	return fmt.Sprintf("impressions|tt=%g|ts=%g|ez=%g|es=%d",
		o.TrendTolerance, o.TrendMinStrength, o.ExceptionMinZ, o.ExceptionMinSupport)
}
