package opmap

import (
	"context"
	"fmt"
	"io"

	"opmap/internal/baseline"
	"opmap/internal/gi"
	"opmap/internal/obsv"
	"opmap/internal/visual"
)

// Trend is a detected unit trend: one class's confidence across an
// attribute's values is increasing, decreasing or stable (the arrows of
// Fig. 5).
type Trend struct {
	Attr     string
	Class    string
	Kind     string // "increasing", "decreasing" or "stable"
	Strength float64
}

// Exception is a one-condition rule whose confidence deviates strongly
// from its attribute's typical confidence for the class.
type Exception struct {
	Attr       string
	Value      string
	Class      string
	Confidence float64
	Expected   float64
	ZScore     float64
	Support    int64
}

// InfluentialAttribute ranks an attribute's overall influence on the
// class via its contingency chi-square and mutual information.
type InfluentialAttribute struct {
	Attr              string
	ChiSquare         float64
	PValue            float64
	MutualInformation float64
}

// Impressions is the general-impressions report (trends, exceptions,
// influential attributes) of Section V.A's GI miner.
type Impressions struct {
	Trends      []Trend
	Exceptions  []Exception
	Influential []InfluentialAttribute
}

// ImpressionOptions tunes the GI miner. Zero values use the defaults
// documented in the internal gi package.
type ImpressionOptions struct {
	TrendTolerance      float64
	TrendMinStrength    float64
	ExceptionMinZ       float64
	ExceptionMinSupport int64
}

// Impressions mines general impressions over all materialized cubes.
func (s *Session) Impressions(opts ImpressionOptions) (*Impressions, error) {
	return s.ImpressionsContext(context.Background(), opts)
}

// ImpressionsContext is Impressions under a context, checked once per
// attribute the GI miner processes; cancellation returns ctx.Err().
func (s *Session) ImpressionsContext(ctx context.Context, opts ImpressionOptions) (*Impressions, error) {
	defer obsv.Stage(obsv.StageImpressions)()
	s.mu.RLock()
	defer s.mu.RUnlock()
	src, err := s.requireSource()
	if err != nil {
		return nil, err
	}
	ver := s.results.Version()
	key := impressionsKey(opts)
	if v, ok := s.results.Get(ver, key); ok {
		return v.(*Impressions), nil
	}
	rep, err := gi.MineAllSource(ctx, src,
		gi.TrendOptions{Tolerance: opts.TrendTolerance, MinStrength: opts.TrendMinStrength},
		gi.ExceptionOptions{MinZ: opts.ExceptionMinZ, MinSupport: opts.ExceptionMinSupport})
	if err != nil {
		return nil, err
	}
	out := toImpressions(rep)
	s.results.Put(ver, key, out)
	return out, nil
}

// toImpressions converts the GI miner's report to the public type.
func toImpressions(rep *gi.Report) *Impressions {
	out := &Impressions{}
	for _, t := range rep.Trends {
		out.Trends = append(out.Trends, Trend{
			Attr:     t.AttrName,
			Class:    t.ClassLabel,
			Kind:     t.Kind.String(),
			Strength: t.Strength,
		})
	}
	for _, e := range rep.Exceptions {
		out.Exceptions = append(out.Exceptions, Exception{
			Attr:       e.AttrName,
			Value:      e.ValueLabel,
			Class:      e.ClassLabel,
			Confidence: e.Confidence,
			Expected:   e.Expected,
			ZScore:     e.ZScore,
			Support:    e.Support,
		})
	}
	for _, inf := range rep.Influential {
		out.Influential = append(out.Influential, InfluentialAttribute{
			Attr:              inf.AttrName,
			ChiSquare:         inf.ChiSquare,
			PValue:            inf.PValue,
			MutualInformation: inf.MutualInformation,
		})
	}
	return out
}

// ConditionalTrend is a trend detected within one sub-population: for
// groupAttr=Value, the class confidence across ordAttr's values is
// monotone or stable (each product's own behaviour curve).
type ConditionalTrend struct {
	GroupValue string
	OrdAttr    string
	Class      string
	Kind       string
	Strength   float64
}

// ConditionalTrends mines trends of ordAttr's confidences within each
// value of groupAttr, from the materialized 3-D cube.
func (s *Session) ConditionalTrends(groupAttr, ordAttr string) ([]ConditionalTrend, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	src, err := s.requireSource()
	if err != nil {
		return nil, err
	}
	g := s.ds.AttrIndex(groupAttr)
	o := s.ds.AttrIndex(ordAttr)
	if g < 0 {
		return nil, fmt.Errorf("opmap: unknown attribute %q", groupAttr)
	}
	if o < 0 {
		return nil, fmt.Errorf("opmap: unknown attribute %q", ordAttr)
	}
	cube, err := src.Cube2(context.Background(), g, o)
	if err != nil {
		return nil, fmt.Errorf("opmap: pair cube (%s,%s) unavailable: %w", groupAttr, ordAttr, err)
	}
	// TrendsWithin fixes the cube's first dimension; when the store's
	// canonical (min,max) order puts the group attribute second, slice
	// that dimension manually — everything works from cube cells alone,
	// so this also serves cube-only sessions.
	var out []ConditionalTrend
	if cube.AttrIndices()[0] == g {
		cts, err := gi.TrendsWithin(cube, gi.TrendOptions{})
		if err != nil {
			return nil, err
		}
		for _, ct := range cts {
			out = append(out, ConditionalTrend{
				GroupValue: ct.FixedLabel,
				OrdAttr:    ct.Trend.AttrName,
				Class:      ct.Trend.ClassLabel,
				Kind:       ct.Trend.Kind.String(),
				Strength:   ct.Trend.Strength,
			})
		}
		return out, nil
	}
	groupDict := cube.Dict(1)
	for v := int32(0); int(v) < cube.Dim(1); v++ {
		sliced, err := cube.Slice(1, v)
		if err != nil {
			return nil, err
		}
		trends, err := gi.Trends(sliced, gi.TrendOptions{})
		if err != nil {
			return nil, err
		}
		for _, tr := range trends {
			out = append(out, ConditionalTrend{
				GroupValue: groupDict.Label(v),
				OrdAttr:    tr.AttrName,
				Class:      tr.ClassLabel,
				Kind:       tr.Kind.String(),
				Strength:   tr.Strength,
			})
		}
	}
	return out, nil
}

// CubeException is an exceptional cell found by the discovery-driven
// OLAP baseline (Sarawagi-style, Section II's related work).
type CubeException struct {
	Attr1, Value1 string
	Attr2, Value2 string
	Class         string
	Observed      float64
	Expected      float64
	SelfExp       float64
	Support       int64
}

// CubeExceptions runs the discovery-driven exploration baseline over
// every materialized 3-D cube, returning exceptional cells by descending
// surprise. minSelfExp ≤ 0 uses the default (2.5).
func (s *Session) CubeExceptions(minSelfExp float64) ([]CubeException, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	store, err := s.requireStore()
	if err != nil {
		return nil, err
	}
	byPair, err := baseline.ExploreStore(store, baseline.ExplorerOptions{MinSelfExp: minSelfExp, Class: -1})
	if err != nil {
		return nil, err
	}
	var out []CubeException
	for pair, exs := range byPair {
		n1 := s.ds.Attr(pair[0]).Name
		n2 := s.ds.Attr(pair[1]).Name
		for _, e := range exs {
			out = append(out, CubeException{
				Attr1: n1, Value1: e.Labels[0],
				Attr2: n2, Value2: e.Labels[1],
				Class:    e.ClassLabel,
				Observed: e.Observed,
				Expected: e.Expected,
				SelfExp:  e.SelfExp,
				Support:  e.Support,
			})
		}
	}
	sortCubeExceptions(out)
	return out, nil
}

func sortCubeExceptions(out []CubeException) {
	// Descending |SelfExp|; deterministic tie-break on names.
	lessAbs := func(a, b CubeException) bool {
		aa, bb := a.SelfExp, b.SelfExp
		if aa < 0 {
			aa = -aa
		}
		if bb < 0 {
			bb = -bb
		}
		switch {
		case aa > bb:
			return true
		case bb > aa:
			return false
		}
		if a.Attr1 != b.Attr1 {
			return a.Attr1 < b.Attr1
		}
		return a.Attr2 < b.Attr2
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && lessAbs(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
}

// RenderOverall writes the Fig. 5-style overall visualization: every
// 2-D rule cube as a class × attribute grid of confidence sparklines
// with class scaling and trend arrows.
func (s *Session) RenderOverall(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	store, err := s.requireStore()
	if err != nil {
		return err
	}
	rep, err := gi.MineAll(store, gi.TrendOptions{}, gi.ExceptionOptions{})
	if err != nil {
		return err
	}
	return visual.Overall(w, store, visual.OverallOptions{Scale: true, Trends: rep.Trends})
}

// RenderOverallSVG writes the Fig. 5-style overall view as an SVG
// document.
func (s *Session) RenderOverallSVG(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	store, err := s.requireStore()
	if err != nil {
		return err
	}
	rep, err := gi.MineAll(store, gi.TrendOptions{}, gi.ExceptionOptions{})
	if err != nil {
		return err
	}
	return visual.OverallSVG(w, store, visual.OverallOptions{Scale: true, Trends: rep.Trends})
}

// RenderDetailed writes the Fig. 6-style detailed view of one
// attribute's 2-D rule cube.
func (s *Session) RenderDetailed(w io.Writer, attr string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	src, err := s.requireSource()
	if err != nil {
		return err
	}
	a := s.ds.AttrIndex(attr)
	if a < 0 {
		return fmt.Errorf("opmap: unknown attribute %q", attr)
	}
	cube, err := src.Cube1(context.Background(), a)
	if err != nil {
		return fmt.Errorf("opmap: attribute %q unavailable: %w", attr, err)
	}
	return visual.Detailed(w, cube)
}

// RenderDetailed3D writes the 3-D rule cube view of two attributes ×
// class (Section V.B's second detailed mode).
func (s *Session) RenderDetailed3D(w io.Writer, attr1, attr2 string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	src, err := s.requireSource()
	if err != nil {
		return err
	}
	a := s.ds.AttrIndex(attr1)
	b := s.ds.AttrIndex(attr2)
	if a < 0 {
		return fmt.Errorf("opmap: unknown attribute %q", attr1)
	}
	if b < 0 {
		return fmt.Errorf("opmap: unknown attribute %q", attr2)
	}
	cube, err := src.Cube2(context.Background(), a, b)
	if err != nil {
		return fmt.Errorf("opmap: pair cube (%s,%s) unavailable: %w", attr1, attr2, err)
	}
	return visual.Detailed3D(w, cube)
}

// RenderDetailedSVG writes the Fig. 6-style view as an SVG document.
func (s *Session) RenderDetailedSVG(w io.Writer, attr string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	src, err := s.requireSource()
	if err != nil {
		return err
	}
	a := s.ds.AttrIndex(attr)
	if a < 0 {
		return fmt.Errorf("opmap: unknown attribute %q", attr)
	}
	cube, err := src.Cube1(context.Background(), a)
	if err != nil {
		return fmt.Errorf("opmap: attribute %q unavailable: %w", attr, err)
	}
	return visual.DetailedSVG(w, cube)
}
