package opmap

import (
	"reflect"
	"sync"
	"testing"

	"opmap/internal/testutil"
)

// TestCompareOneVsRestAllMatchesPerValue is the session-level batch
// oracle: the all-values run must return, per value, exactly what the
// single-value CompareOneVsRest returns — on the eager and the lazy
// engine — and the two engines must agree with each other.
func TestCompareOneVsRestAllMatchesPerValue(t *testing.T) {
	eager, lazy, gt := lazyPair(t)
	var results []*OneVsRestAllResult
	for _, s := range []*Session{eager, lazy} {
		all, err := s.CompareOneVsRestAll(gt.PhoneAttr, gt.DropClass, CompareOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(all.Comparisons) == 0 {
			t.Fatal("all-values run compared nothing")
		}
		for _, cmp := range all.Comparisons {
			value := cmp.Label1
			if value == "rest" {
				value = cmp.Label2
			}
			single, err := s.CompareOneVsRest(gt.PhoneAttr, value, gt.DropClass, CompareOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cmp, single) {
				t.Errorf("value %q: batch comparison differs from CompareOneVsRest", value)
			}
		}
		results = append(results, all)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Error("lazy all-values result differs from eager")
	}
}

// TestCompareOneVsRestAllRestoredSession extends the oracle to a
// warm-started session: a snapshot round trip must not change the
// all-values answer.
func TestCompareOneVsRestAllRestoredSession(t *testing.T) {
	live := loadIngestSession(t, ingestRows(400), false)
	path := t.TempDir() + "/batch.omapsnap"
	if err := live.SaveSnapshotFile(path, SnapshotOptions{}); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := live.CompareOneVsRestAll("Region", "fail", CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.CompareOneVsRestAll("Region", "fail", CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("restored session's all-values result differs from the live session")
	}
}

// requireCacheRoundTrip asserts query() misses the result cache on its
// first run and hits on its second.
func requireCacheRoundTrip(t *testing.T, s *Session, name string, query func() error) {
	t.Helper()
	before := s.EngineStats()
	if err := query(); err != nil {
		t.Fatal(err)
	}
	mid := s.EngineStats()
	if mid.ResultCacheMisses != before.ResultCacheMisses+1 {
		t.Fatalf("%s: first run misses %d -> %d, want +1", name, before.ResultCacheMisses, mid.ResultCacheMisses)
	}
	if err := query(); err != nil {
		t.Fatal(err)
	}
	after := s.EngineStats()
	if after.ResultCacheHits != mid.ResultCacheHits+1 {
		t.Fatalf("%s: second run hits %d -> %d, want +1", name, mid.ResultCacheHits, after.ResultCacheHits)
	}
	if after.ResultCacheMisses != mid.ResultCacheMisses {
		t.Fatalf("%s: second run missed the cache", name)
	}
}

// TestBatchInvalidationOnTouchedAttr is the cache-dependency
// regression test: ingesting a row that touches only a ranked
// attribute must invalidate the cached sweep and the cached all-values
// comparison — on the eager engine, the lazy engine, and a
// snapshot-restored session — while an entry restricted to untouched
// attributes survives.
func TestBatchInvalidationOnTouchedAttr(t *testing.T) {
	restoredSession := func(t *testing.T) *Session {
		live := loadIngestSession(t, ingestRows(300), false)
		path := t.TempDir() + "/inv.omapsnap"
		if err := live.SaveSnapshotFile(path, SnapshotOptions{}); err != nil {
			t.Fatal(err)
		}
		restored, err := LoadSnapshotFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return restored
	}
	for _, tc := range []struct {
		name  string
		build func(t *testing.T) *Session
	}{
		{"eager", func(t *testing.T) *Session { return loadIngestSession(t, ingestRows(300), false) }},
		{"lazy", func(t *testing.T) *Session { return loadIngestSession(t, ingestRows(300), true) }},
		{"restored", restoredSession},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.build(t)
			requireCacheRoundTrip(t, s, "sweep", func() error {
				_, err := s.Sweep("Region", "fail", 0)
				return err
			})
			requireCacheRoundTrip(t, s, "onevsrestall", func() error {
				_, err := s.CompareOneVsRestAll("Region", "fail", CompareOptions{})
				return err
			})
			// A run restricted to Load depends only on {Region, Load}.
			restricted := CompareOptions{Attrs: []string{"Load"}}
			requireCacheRoundTrip(t, s, "restricted", func() error {
				_, err := s.CompareOneVsRestAll("Region", "fail", restricted)
				return err
			})

			// The appended row touches only Model (a ranked attribute)
			// and the class; every other attribute is missing.
			if err := s.Append([][]string{{"?", "m2", "?", "?", "fail"}}); err != nil {
				t.Fatal(err)
			}

			// Depends-on-all entries (full sweep, unrestricted
			// all-values run) must have been invalidated: re-running
			// misses and recomputes.
			st := s.EngineStats()
			if _, err := s.Sweep("Region", "fail", 0); err != nil {
				t.Fatal(err)
			}
			if _, err := s.CompareOneVsRestAll("Region", "fail", CompareOptions{}); err != nil {
				t.Fatal(err)
			}
			after := s.EngineStats()
			if after.ResultCacheHits != st.ResultCacheHits {
				t.Error("append touching a ranked attribute served a stale cached result")
			}
			if after.ResultCacheMisses != st.ResultCacheMisses+2 {
				t.Errorf("expected 2 recomputes after invalidation, got %d", after.ResultCacheMisses-st.ResultCacheMisses)
			}
			// The restricted entry depends on {Region, Load} only, so a
			// Model-touching append leaves it servable.
			pre := s.EngineStats()
			if _, err := s.CompareOneVsRestAll("Region", "fail", restricted); err != nil {
				t.Fatal(err)
			}
			post := s.EngineStats()
			if post.ResultCacheHits != pre.ResultCacheHits+1 {
				t.Error("entry restricted to untouched attributes was invalidated")
			}
		})
	}
}

// TestConcurrentBatchAndIngest hammers the batch query paths while
// rows stream in, under -race: every query must see a consistent
// session and nothing may leak.
func TestConcurrentBatchAndIngest(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	s := loadIngestSession(t, ingestRows(200), true)
	extra := ingestRows(400)[200:400]

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i+10 <= len(extra); i += 10 {
			if err := s.Append(extra[i : i+10]); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := s.Sweep("Region", "fail", 0); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.CompareOneVsRestAll("Region", "fail", CompareOptions{}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := s.NumRows(); got != 400 {
		t.Errorf("rows after concurrent appends = %d, want 400", got)
	}
	// The settled session answers exactly like a batch-loaded oracle.
	oracle := loadIngestSession(t, ingestRows(400), true)
	want, err := oracle.CompareOneVsRestAll("Region", "fail", CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.CompareOneVsRestAll("Region", "fail", CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("post-concurrency all-values result diverges from batch-loaded oracle")
	}
}
