package opmap

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"opmap/internal/obsv"
	"opmap/internal/snapshot"
)

// Row-sharded builds (DESIGN.md §15). The paper's deployment target —
// 200 GB of call logs a month — is past what one load-once in-memory
// build can hold, but contingency counts are additive: N processes can
// each cube a slice of the logs and the partial stores merge exactly.
// This file is the session-level face of that architecture:
// BuildSharded runs the per-shard builds in parallel and folds them
// into one serving session via Session.MergeFrom; LoadShardSnapshots
// does the same assembly from shard snapshot files a fleet shipped.

// ShardMergeHistogramName observes the wall-clock seconds of each
// shard-merge operation: one MergeFrom call, or the whole merge phase
// of LoadShardSnapshots.
const ShardMergeHistogramName = "opmap_shard_merge_seconds"

// ShardsMergedCounterName counts shards folded into a merge
// destination: MergeFrom advances it by one, an N-shard snapshot
// assembly by N-1.
const ShardsMergedCounterName = "opmap_shards_merged_total"

// ShardOptions configures BuildSharded.
type ShardOptions struct {
	// Workers bounds the shard builds running concurrently; zero means
	// GOMAXPROCS (and never more than there are shards).
	Workers int
	// Load applies to every shard CSV. Force attribute kinds explicitly
	// (Load.Continuous / Load.Categorical) when a column could sniff
	// differently across shards — a kind mismatch fails the merge naming
	// the attribute.
	Load LoadOptions
	// Discretize, when non-nil, runs on every shard before its cubes
	// build. Shards must end up with bit-identical cut points, so use
	// Manual cuts: method-derived cuts are computed per shard and will
	// almost always differ, which MergeFrom rejects.
	Discretize *DiscretizeOptions
	// Build configures each shard's cube build. Lazy is rejected: a
	// lazy engine holds no complete store to merge.
	Build BuildOptions
}

// BuildSharded loads and cubes each CSV shard concurrently, then merges
// the per-shard sessions in path order into one serving session. The
// result is exactly the session a single load of the concatenated
// shards would produce: dictionary union preserves first-appearance
// order across shards, so codes, cube layouts, and counts all land
// identically. See ShardOptions for the per-shard configuration.
func BuildSharded(paths []string, opts ShardOptions) (*Session, error) {
	return BuildShardedContext(context.Background(), paths, opts)
}

// BuildShardedContext is BuildSharded under a context: cancellation
// stops shard builds between cube counts and is checked between merges.
func BuildShardedContext(ctx context.Context, paths []string, opts ShardOptions) (*Session, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("opmap: BuildSharded needs at least one shard path")
	}
	if opts.Build.Lazy {
		return nil, fmt.Errorf("opmap: sharded builds are eager-only: a lazy engine holds no complete store to merge")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(paths) {
		workers = len(paths)
	}
	sessions := make([]*Session, len(paths))
	errs := make([]error, len(paths))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					errs[i] = ctx.Err()
					continue
				}
				sessions[i], errs[i] = buildShard(ctx, paths[i], opts)
			}
		}()
	}
feed:
	for i := range paths {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		if err != nil {
			return nil, fmt.Errorf("opmap: shard %s: %w", paths[i], err)
		}
	}
	base := sessions[0]
	for i, other := range sessions[1:] {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := base.MergeFrom(other); err != nil {
			return nil, fmt.Errorf("opmap: merging shard %s: %w", paths[i+1], err)
		}
	}
	return base, nil
}

// buildShard is one worker's unit: load, optionally discretize, cube.
func buildShard(ctx context.Context, path string, opts ShardOptions) (*Session, error) {
	s, err := LoadCSVFile(path, opts.Load)
	if err != nil {
		return nil, err
	}
	if opts.Discretize != nil {
		if err := s.Discretize(*opts.Discretize); err != nil {
			return nil, err
		}
	}
	if err := s.BuildCubesOptions(ctx, opts.Build); err != nil {
		return nil, err
	}
	return s, nil
}

// MergeFrom folds another session's data and cubes into s: raw and
// working rows append (categorical codes remapped through the
// dictionary union), the eager cube stores merge through the rulecube
// additive-merge primitive, the ingest sequence reconciles to the
// maximum, and all cached query results drop. other is read-locked and
// never modified. Merging the row-shards of one dataset in shard order
// reproduces the single-pass session exactly.
//
// Both sessions must hold eagerly built cubes over the same schema and
// bit-identical discretization cuts, and neither may be
// snapshot-restored (a restored session holds no rows to merge — merge
// the snapshot files instead, snapshot.MergeFiles). A failed merge
// past validation drops s's engine rather than leave counts
// inconsistent with rows. MergeFrom takes s's write lock and then
// other's read lock: callers must not run merges between the same two
// sessions in both directions concurrently.
func (s *Session) MergeFrom(other *Session) error {
	if other == nil {
		return fmt.Errorf("opmap: merge source session is nil")
	}
	if other == s {
		return fmt.Errorf("opmap: cannot merge a session into itself")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	other.mu.RLock()
	defer other.mu.RUnlock()
	return s.mergeFromLocked(other)
}

// mergeFromLocked is MergeFrom's body; s is write-locked, o read-locked.
func (s *Session) mergeFromLocked(o *Session) error {
	if s.store == nil || o.store == nil {
		if s.lazy != nil || o.lazy != nil {
			return fmt.Errorf("opmap: sharded merge requires eager stores; a lazy engine holds no complete store to merge")
		}
		return fmt.Errorf("opmap: rule cubes not built; call BuildCubes on both sessions first")
	}
	if s.rowsHint != 0 || o.rowsHint != 0 {
		return fmt.Errorf("opmap: snapshot-restored sessions hold no rows to merge; merge their snapshot files instead")
	}
	if (s.raw == s.ds) != (o.raw == o.ds) {
		return fmt.Errorf("opmap: cannot merge a discretized session with an undiscretized one")
	}
	if err := cutsCompatible(s.cuts, o.cuts); err != nil {
		return err
	}
	// Validate both dataset pairs before mutating anything.
	if err := s.ds.CompatibleSchema(o.ds); err != nil {
		return err
	}
	if s.raw != s.ds {
		if err := s.raw.CompatibleSchema(o.raw); err != nil {
			return err
		}
	}
	start := time.Now()
	// The store merge unions the working dictionaries (cubes share them)
	// and sums counts; the row appends then translate o's codes through
	// the same union — UnionDicts is idempotent, so re-deriving the
	// remap here sees exactly the dictionaries the counts merged under.
	if err := s.store.Merge(o.store); err != nil {
		return err
	}
	rm, err := s.ds.UnionDicts(o.ds)
	if err != nil {
		s.dropEngine()
		return err
	}
	if err := s.ds.AppendRemapped(o.ds, rm); err != nil {
		s.dropEngine()
		return err
	}
	if s.raw != s.ds {
		rawRm, err := s.raw.UnionDicts(o.raw)
		if err != nil {
			s.dropEngine()
			return err
		}
		if err := s.raw.AppendRemapped(o.raw, rawRm); err != nil {
			s.dropEngine()
			return err
		}
	}
	s.results.Invalidate()
	if o.ingestSeq > s.ingestSeq {
		s.ingestSeq = o.ingestSeq
	}
	s.sinceCutEval += o.sinceCutEval
	for k, v := range o.appendDeltas {
		if s.appendDeltas == nil {
			s.appendDeltas = make(map[string]int)
		}
		s.appendDeltas[k] += v
	}
	obsv.Default().Histogram(ShardMergeHistogramName, nil).ObserveSince(start)
	obsv.Default().Counter(ShardsMergedCounterName).Inc()
	return nil
}

// LoadShardSnapshots reads eager shard snapshots and assembles them, in
// path order, into one ready-to-serve session with zero cube builds —
// the warm-start path for a daemon fed by a fleet of shard builders.
// The merged session carries the summed row count, the maximum ingest
// sequence, and a source hash derived from the ordered shard hashes
// (see snapshot.Merge). Like any snapshot-restored session it is
// schema-only: operations needing raw records return errors.
func LoadShardSnapshots(paths ...string) (*Session, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("opmap: LoadShardSnapshots needs at least one snapshot path")
	}
	start := time.Now()
	snaps := make([]*snapshot.Snapshot, len(paths))
	for i, p := range paths {
		sn, err := snapshot.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("opmap: shard %s: %w", p, err)
		}
		snaps[i] = sn
	}
	merged, err := snapshot.Merge(snaps...)
	if err != nil {
		return nil, err
	}
	s, err := sessionFromSnapshot(merged)
	if err != nil {
		return nil, err
	}
	if len(paths) > 1 {
		obsv.Default().Histogram(ShardMergeHistogramName, nil).ObserveSince(start)
		obsv.Default().Counter(ShardsMergedCounterName).Add(int64(len(paths) - 1))
	}
	return s, nil
}

// MergeSnapshotFiles merges shard snapshot files, in argument order,
// into one serving snapshot at dst (snapshot.MergeFiles): dictionaries
// union, cube counts sum, row counts add, ingest sequences reconcile to
// the maximum. dst is written atomically and left untouched on error.
func MergeSnapshotFiles(dst string, srcs ...string) error {
	return snapshot.MergeFiles(dst, srcs...)
}

// cutsCompatible requires bit-identical discretization cuts on both
// sides of a merge, naming the first attribute that differs. Cuts
// derived per shard from the shard's own value distribution will not
// match; sharded builds over continuous data must fix cuts up front
// (DiscretizeOptions.Manual).
func cutsCompatible(a, b map[string][]float64) error {
	for name, av := range a {
		bv, ok := b[name]
		if !ok {
			return fmt.Errorf("opmap: discretization cuts for %q missing from merge source", name)
		}
		if len(av) != len(bv) {
			return fmt.Errorf("opmap: discretization cuts for %q differ: %d vs %d points; sharded builds need identical (manual) cuts", name, len(av), len(bv))
		}
		for i := range av {
			if math.Float64bits(av[i]) != math.Float64bits(bv[i]) {
				return fmt.Errorf("opmap: discretization cuts for %q differ at point %d; sharded builds need identical (manual) cuts", name, i)
			}
		}
	}
	for name := range b {
		if _, ok := a[name]; !ok {
			return fmt.Errorf("opmap: unexpected discretization cuts for %q in merge source", name)
		}
	}
	return nil
}
