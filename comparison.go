package opmap

import (
	"context"
	"fmt"
	"io"

	"opmap/internal/compare"
	"opmap/internal/obsv"
	"opmap/internal/stats"
	"opmap/internal/visual"
)

// ErrRankSelf matches (via errors.Is) rejections of an explicit Attrs
// list that names the comparison attribute itself: an attribute cannot
// be ranked against its own split.
var ErrRankSelf = compare.ErrRankSelf

// ErrRankClass matches (via errors.Is) rejections of an explicit Attrs
// list that names the class attribute: the class defines the outcome
// being explained and cannot appear among the ranked candidates.
var ErrRankClass = compare.ErrRankClass

// CompareOptions tunes the automated comparison. The zero value
// reproduces the paper: 0.95 confidence level with Wald intervals and a
// 0.90 property-attribute threshold.
type CompareOptions struct {
	// ConfidenceLevel for the interval adjustment (0.90, 0.95, 0.99 per
	// Table I, or any level in (0,1)). Zero means 0.95.
	ConfidenceLevel float64
	// DisableCI turns off the interval adjustment (raw confidences).
	DisableCI bool
	// WilsonIntervals switches from the paper's Wald interval to Wilson
	// score intervals (extension).
	WilsonIntervals bool
	// PropertyThreshold is λ of Section IV.C. Zero means 0.90.
	PropertyThreshold float64
	// MinRuleSupport rejects comparisons whose sub-populations are
	// smaller than this.
	MinRuleSupport int64
	// Attrs restricts the ranked attributes by name; nil means all.
	Attrs []string
	// PartialOnDeadline lets CompareOneVsRestContext return the
	// attributes ranked so far — with the rest listed in
	// Comparison.Unscored — when the context expires mid-ranking,
	// instead of failing the call.
	PartialOnDeadline bool
}

// ItemError annotates one item (attribute or value pair) a degraded
// call could not complete, with the reason.
type ItemError struct {
	Item string `json:"item"`
	Err  string `json:"err"`
}

// AttributeScore is one entry of a comparison ranking.
type AttributeScore struct {
	Name string
	// Score is the interestingness M_i of Eq. 3.
	Score float64
	// NormScore is Score normalized by cf2·|D2| for cross-dataset
	// comparability.
	NormScore float64
	// Property flags a Section IV.C property attribute (listed apart).
	Property bool
	// PropertyRatio is P/(P+T) of Section IV.C.
	PropertyRatio float64
	// Values is the per-value breakdown (the data behind Fig. 7).
	Values []ValueBreakdown
}

// ValueBreakdown is the comparison detail of one attribute value.
type ValueBreakdown struct {
	Label string
	// Sub-population 1 (lower confidence side): records, class records,
	// confidence, CI margin.
	N1, C1 int64
	Cf1    float64
	E1     float64
	// Sub-population 2 (higher confidence side).
	N2, C2 int64
	Cf2    float64
	E2     float64
	// F is Eq. 1's excess beyond expectation; W is Eq. 2's contribution.
	F, W float64
}

// Comparison is the result of an automated comparison (Section IV).
type Comparison struct {
	// Attr is the comparison attribute; Label1/Label2 are the compared
	// values, oriented so Label1 has the lower confidence.
	Attr           string
	Label1, Label2 string
	// Cf1 and Cf2 are the two input rules' confidences (cf1 < cf2);
	// Ratio is cf2/cf1.
	Cf1, Cf2, Ratio float64
	// Class is the class of interest.
	Class string

	// Partial is set when the ranking is incomplete because a context
	// expired and degradation was allowed; Unscored lists the
	// attributes that were not ranked.
	Partial  bool
	Unscored []ItemError

	res *compare.Result
}

// Compare runs the paper's automated comparison: it ranks every other
// attribute by how well it distinguishes the sub-populations attr=v1
// and attr=v2 with respect to the class. Rule cubes must be built.
func (s *Session) Compare(attr, v1, v2, class string, opts CompareOptions) (*Comparison, error) {
	return s.CompareContext(context.Background(), attr, v1, v2, class, opts)
}

// CompareContext is Compare under a context: cancellation mid-ranking
// returns ctx.Err() promptly. It is strict; for degradable fan-out use
// SweepPartial or CompareOneVsRestContext with PartialOnDeadline.
func (s *Session) CompareContext(ctx context.Context, attr, v1, v2, class string, opts CompareOptions) (*Comparison, error) {
	defer obsv.Stage(obsv.StageCompare)()
	s.mu.RLock()
	defer s.mu.RUnlock()
	src, err := s.requireSource()
	if err != nil {
		return nil, err
	}
	in, copts, err := s.resolve(attr, v1, v2, class, opts)
	if err != nil {
		return nil, err
	}
	ver := s.results.Version()
	key := compareKey(in, copts)
	if v, ok := s.results.Get(ver, key); ok {
		return s.wrapComparison(attr, class, in, v.(*compare.Result)), nil
	}
	res, err := compare.NewSource(src).CompareContext(ctx, in, copts)
	if err != nil {
		return nil, err
	}
	if !res.Partial {
		s.results.PutDeps(ver, key, res, compareDeps(in, copts))
	}
	return s.wrapComparison(attr, class, in, res), nil
}

// compareDeps lists the attribute indices a cached comparison depends
// on, so appends invalidate it only when one of them is touched. An
// unrestricted comparison ranks every attribute — nil deps mean
// "depends on all".
func compareDeps(in compare.Input, copts compare.Options) []int {
	if copts.Attrs == nil {
		return nil
	}
	deps := make([]int, 0, len(copts.Attrs)+1)
	deps = append(deps, in.Attr)
	for _, a := range copts.Attrs {
		if a != in.Attr {
			deps = append(deps, a)
		}
	}
	return deps
}

// CompareByScan runs the same comparison by scanning the raw records
// instead of reading cubes. It does not require BuildCubes; its runtime
// grows with the dataset size (the ablation of DESIGN.md §5).
func (s *Session) CompareByScan(attr, v1, v2, class string, opts CompareOptions) (*Comparison, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, err := s.working(); err != nil {
		return nil, err
	}
	in, copts, err := s.resolve(attr, v1, v2, class, opts)
	if err != nil {
		return nil, err
	}
	res, err := compare.Scan(s.ds, in, copts)
	if err != nil {
		return nil, err
	}
	return s.wrapComparison(attr, class, in, res), nil
}

// resolve translates names to codes and builds the internal options.
func (s *Session) resolve(attr, v1, v2, class string, opts CompareOptions) (compare.Input, compare.Options, error) {
	ds := s.ds
	ai := ds.AttrIndex(attr)
	if ai < 0 {
		return compare.Input{}, compare.Options{}, fmt.Errorf("opmap: unknown attribute %q", attr)
	}
	dict := ds.Column(ai).Dict
	c1, ok := dict.Lookup(v1)
	if !ok {
		return compare.Input{}, compare.Options{}, fmt.Errorf("opmap: attribute %q has no value %q", attr, v1)
	}
	c2, ok := dict.Lookup(v2)
	if !ok {
		return compare.Input{}, compare.Options{}, fmt.Errorf("opmap: attribute %q has no value %q", attr, v2)
	}
	cc, ok := ds.ClassDict().Lookup(class)
	if !ok {
		return compare.Input{}, compare.Options{}, fmt.Errorf("opmap: unknown class %q", class)
	}
	copts, err := s.compareOptions(opts)
	if err != nil {
		return compare.Input{}, compare.Options{}, err
	}
	return compare.Input{Attr: ai, V1: c1, V2: c2, Class: cc}, copts, nil
}

// compareOptions converts the public options to the internal form,
// resolving attribute names. Shared by the pairwise, one-vs-rest and
// sweep entry points.
func (s *Session) compareOptions(opts CompareOptions) (compare.Options, error) {
	copts := compare.Options{
		DisableCI:         opts.DisableCI,
		PropertyThreshold: opts.PropertyThreshold,
		MinRuleSupport:    opts.MinRuleSupport,
		PartialOnDeadline: opts.PartialOnDeadline,
	}
	if !stats.IsZero(opts.ConfidenceLevel) {
		copts.Level = stats.ConfidenceLevel(opts.ConfidenceLevel)
	}
	if opts.WilsonIntervals {
		copts.Method = compare.Wilson
	}
	for _, n := range opts.Attrs {
		i := s.ds.AttrIndex(n)
		if i < 0 {
			return compare.Options{}, fmt.Errorf("opmap: unknown attribute %q in Attrs", n)
		}
		copts.Attrs = append(copts.Attrs, i)
	}
	return copts, nil
}

func (s *Session) wrapComparison(attr, class string, in compare.Input, res *compare.Result) *Comparison {
	dict := s.ds.Column(in.Attr).Dict
	l1 := dict.Label(res.Rule1.Conditions[0].Value)
	l2 := dict.Label(res.Rule2.Conditions[0].Value)
	return &Comparison{
		Attr:     attr,
		Label1:   l1,
		Label2:   l2,
		Cf1:      res.Cf1,
		Cf2:      res.Cf2,
		Ratio:    res.Ratio,
		Class:    class,
		Partial:  res.Partial,
		Unscored: toItemErrors(res.Unscored),
		res:      res,
	}
}

func toItemErrors(in []compare.ItemError) []ItemError {
	var out []ItemError
	for _, e := range in {
		out = append(out, ItemError{Item: e.Item, Err: e.Err})
	}
	return out
}

func toScore(s compare.AttrScore) AttributeScore {
	out := AttributeScore{
		Name:          s.Name,
		Score:         s.Score,
		NormScore:     s.NormScore,
		Property:      s.Property,
		PropertyRatio: s.PropertyRatio,
	}
	for _, d := range s.Values {
		out.Values = append(out.Values, ValueBreakdown{
			Label: d.Label,
			N1:    d.N1, C1: d.C1, Cf1: d.Cf1, E1: d.E1,
			N2: d.N2, C2: d.C2, Cf2: d.Cf2, E2: d.E2,
			F: d.F, W: d.W,
		})
	}
	return out
}

// Top returns the n highest-ranked non-property attributes.
func (c *Comparison) Top(n int) []AttributeScore {
	var out []AttributeScore
	for _, s := range c.res.Top(n) {
		out = append(out, toScore(s))
	}
	return out
}

// Ranked returns all non-property attributes by descending score.
func (c *Comparison) Ranked() []AttributeScore { return c.Top(len(c.res.Ranked)) }

// PropertyAttributes returns the attributes set aside per Section IV.C.
func (c *Comparison) PropertyAttributes() []AttributeScore {
	var out []AttributeScore
	for _, s := range c.res.Property {
		out = append(out, toScore(s))
	}
	return out
}

// Rank returns the 1-based rank of the named attribute among the
// non-property ranking (0 when the attribute is a property attribute),
// and ok=false when the attribute was not ranked at all.
func (c *Comparison) Rank(name string) (rank int, ok bool) {
	_, rank, ok = c.res.Find(name)
	return rank, ok
}

// Attribute returns the score entry for the named attribute, ranked or
// property.
func (c *Comparison) Attribute(name string) (AttributeScore, bool) {
	s, _, ok := c.res.Find(name)
	if !ok {
		return AttributeScore{}, false
	}
	return toScore(s), true
}

// RenderRanking writes the ranking view (top n plus the property list).
func (c *Comparison) RenderRanking(w io.Writer, topN int) {
	visual.Ranking(w, c.res, topN)
}

// RenderAttribute writes the Fig. 7-style per-value comparison view of
// one attribute.
func (c *Comparison) RenderAttribute(w io.Writer, name string) error {
	s, _, ok := c.res.Find(name)
	if !ok {
		return fmt.Errorf("opmap: attribute %q not in the comparison", name)
	}
	visual.Comparison(w, c.res, s, c.Label1, c.Label2)
	return nil
}

// RenderProperty writes the Fig. 8-style property-attribute view: per
// value, the two sub-populations' record counts with the zero-count
// sides marked.
func (c *Comparison) RenderProperty(w io.Writer, name string) error {
	s, _, ok := c.res.Find(name)
	if !ok {
		return fmt.Errorf("opmap: attribute %q not in the comparison", name)
	}
	visual.PropertyView(w, s, c.Label1, c.Label2)
	return nil
}

// RenderAttributeSVG writes the Fig. 7-style chart as an SVG document.
func (c *Comparison) RenderAttributeSVG(w io.Writer, name string) error {
	s, _, ok := c.res.Find(name)
	if !ok {
		return fmt.Errorf("opmap: attribute %q not in the comparison", name)
	}
	return visual.ComparisonSVG(w, c.res, s, c.Label1, c.Label2)
}

// String summarizes the comparison.
func (c *Comparison) String() string {
	return fmt.Sprintf("compare %s=%s (cf=%.4f) vs %s=%s (cf=%.4f) on class %s: %d ranked, %d property",
		c.Attr, c.Label1, c.Cf1, c.Attr, c.Label2, c.Cf2, c.Class, len(c.res.Ranked), len(c.res.Property))
}
