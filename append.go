package opmap

import (
	"context"
	"fmt"
	"math"
	"sort"

	"opmap/internal/dataset"
	"opmap/internal/discretize"
)

// This file is the streaming-ingestion entry point of the session: an
// appended batch folds into the raw dataset, the discretized working
// copy, and every resident cube incrementally — no rebuild — and then
// surgically invalidates only the cached query results that depended
// on an attribute the batch touched. Durability lives a layer up: the
// opmapd daemon writes each batch to the WAL before calling Append, so
// the session only has to keep its in-memory state exactly consistent
// with what a replay of that WAL would reproduce.

// Append adds rows (textual values, one per attribute in schema order,
// "?" for missing) to the session. See AppendContext.
func (s *Session) Append(rows [][]string) error {
	return s.AppendContext(context.Background(), rows)
}

// AppendContext appends a batch of rows, incrementally maintaining the
// working dataset, all resident cubes (eager store and lazy engine
// alike — non-resident lazy cubes simply materialize later over the
// grown dataset), and the discretization delta counters. Cached
// Compare/Sweep/Impressions results that depend on a touched attribute
// are invalidated; untouched entries survive.
//
// The whole batch is validated before anything mutates, so a malformed
// batch leaves the session untouched. After validation the batch
// applies row by row; a mid-batch engine error (which cannot arise
// from a validated row) drops the engine rather than serve skewed
// counts. Every N appended rows (SetCutReevaluation) the discretizer
// re-runs over the grown data; changed cuts rebuild the working
// dataset and the engine with the remembered Discretize/BuildCubes
// configurations.
func (s *Session) AppendContext(ctx context.Context, rows [][]string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(ctx, rows)
}

// AppendSeq applies one durable WAL batch: AppendContext plus
// recording seq as the session's ingest sequence, in one critical
// section. A concurrent snapshot (which runs under the read lock)
// therefore can never capture the batch's rows without the sequence
// that makes recovery skip them — split Append/SetIngestSeq calls
// would leave a window where a checkpoint taken between the two
// double-applies the batch after a crash. The sequence advances even
// when the session rejects the batch: Append validates before
// mutating and the rejection is deterministic, so replay reproduces
// the same decision and must not re-attempt it. Callers must not
// cancel ctx mid-batch (the WAL apply path passes an uncancellable
// context); a partially applied batch would still be marked consumed.
func (s *Session) AppendSeq(ctx context.Context, rows [][]string, seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.appendLocked(ctx, rows)
	s.ingestSeq = seq
	return err
}

// appendLocked is the body shared by the Append variants. Callers hold
// the write lock.
func (s *Session) appendLocked(ctx context.Context, rows [][]string) error {
	if len(rows) == 0 {
		return nil
	}
	// Validate pass: width and continuous parses for the whole batch.
	floats, err := s.validateBatch(rows)
	if err != nil {
		return err
	}

	classIdx := s.raw.ClassIndex()
	restored := s.restoredDiscretized()
	touched := make(map[int]bool)
	// Coded rows accumulate here and fold into the resident engine in
	// one batched pass (Store/LazySource IngestRows, the additive-merge
	// primitive): the dictionaries are fully grown by then, so each cube
	// pays one SyncDims per batch instead of one per row. Any early
	// return must flush the accumulated prefix first so the engine's
	// counts match the rows already appended to the dataset.
	var (
		pending [][]int32
		classes []int32
	)
	applyPending := func() error {
		if len(pending) == 0 {
			return nil
		}
		err := s.applyRowsToEngine(pending, classes)
		pending, classes = nil, nil
		return err
	}
	// bail ends the batch early: the applied prefix stays applied and
	// consistent (engine folded, caches invalidated), err is returned.
	// An engine error while folding (which cannot arise from a validated
	// row) drops the engine rather than serve skewed counts.
	bail := func(err error) error {
		if aerr := applyPending(); aerr != nil {
			s.dropEngine()
		}
		s.flushTouched(touched)
		return err
	}
	for r, row := range rows {
		if err := ctx.Err(); err != nil {
			// Already-applied rows of the batch stay applied and
			// consistent; the caller decides whether to re-send the rest.
			return bail(err)
		}
		if !restored {
			// Restored sessions share one dataset between raw and working
			// roles; appendWorkingRow grows it with the coded row instead
			// (AppendRow here would register raw numeric strings as
			// categorical labels in the interval dictionaries).
			if err := s.raw.AppendRow(row); err != nil {
				// Unreachable after validateBatch; fail loudly if it isn't.
				return bail(err)
			}
		}
		codes, err := s.appendWorkingRow(row, floats[r])
		if err != nil {
			return bail(err)
		}
		if codes != nil {
			pending = append(pending, codes)
			classes = append(classes, codes[classIdx])
			for i, c := range codes {
				if i != classIdx && c >= 0 {
					touched[i] = true
				}
			}
		}
		s.noteDeltas(floats[r])
		s.sinceCutEval++
	}
	if err := applyPending(); err != nil {
		s.flushTouched(touched)
		s.dropEngine()
		return err
	}
	s.flushTouched(touched)
	return s.maybeReevalCuts(ctx)
}

// ValidateBatch checks a batch against the session's schema — row
// widths and numeric parses — without mutating anything: exactly the
// validation Append runs before applying. A durability layer calls it
// before logging a batch, so a batch that the (possibly asynchronous)
// apply would reject is never acknowledged as durably accepted.
func (s *Session) ValidateBatch(rows [][]string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, err := s.validateBatch(rows)
	return err
}

// restoredDiscretized reports whether the session was restored from a
// snapshot of a discretized dataset: one schema-only dataset serves as
// both raw and working copy, and originally continuous attributes
// survive only as interval columns plus the remembered cut points.
func (s *Session) restoredDiscretized() bool {
	return s.ds == s.raw && len(s.cuts) > 0
}

// binnedAttr reports whether attribute i's appended values are numbers
// that must bin through remembered cut points: a continuous attribute
// of the live schema, or — in a restored session, whose schema holds
// only the discretized intervals — any attribute with remembered cuts.
func (s *Session) binnedAttr(i int) bool {
	if s.raw.Attr(i).Kind == dataset.Continuous {
		return true
	}
	_, ok := s.cuts[s.raw.Attr(i).Name]
	return ok
}

// validateBatch checks every row's width and parses its numeric
// (continuous or restored-interval) fields, returning the parsed
// values per row (nil entries when the schema has no such attributes).
// Nothing mutates.
func (s *Session) validateBatch(rows [][]string) ([][]float64, error) {
	n := s.raw.NumAttrs()
	hasCont := false
	for i := 0; i < n; i++ {
		if s.binnedAttr(i) {
			hasCont = true
			break
		}
	}
	floats := make([][]float64, len(rows))
	for r, row := range rows {
		if len(row) != n {
			return nil, fmt.Errorf("opmap: append row %d has %d values, schema has %d attributes", r, len(row), n)
		}
		if !hasCont {
			continue
		}
		fr := make([]float64, n)
		for i := 0; i < n; i++ {
			if !s.binnedAttr(i) {
				continue
			}
			v := row[i]
			if v == dataset.MissingLabel || v == "" {
				fr[i] = math.NaN()
				continue
			}
			if _, err := fmt.Sscanf(v, "%g", &fr[i]); err != nil {
				return nil, fmt.Errorf("opmap: append row %d attribute %q: cannot parse %q as number", r, s.raw.Attr(i).Name, v)
			}
		}
		floats[r] = fr
	}
	return floats, nil
}

// appendWorkingRow folds one validated row into the discretized
// working dataset and returns its coded form (nil when no working
// dataset exists yet — before Discretize on a continuous schema —
// in which case only the raw dataset grows).
func (s *Session) appendWorkingRow(row []string, fr []float64) ([]int32, error) {
	if s.ds == nil {
		return nil, nil
	}
	n := s.raw.NumAttrs()
	codes := make([]int32, n)
	if s.ds == s.raw && len(s.cuts) == 0 {
		// All-categorical schema: the working dataset IS the raw dataset
		// and AppendRow above already grew it; just read the codes back.
		last := s.ds.NumRows() - 1
		for i := 0; i < n; i++ {
			codes[i] = s.ds.Column(i).Codes[last]
		}
		return codes, nil
	}
	// Discretized working copy — a live session's clone of the raw
	// dataset, or the single shared interval dataset of a restored
	// session. Categorical dictionaries stay aligned with raw by
	// registering the same labels in the same order; numeric values bin
	// through the remembered cuts (every bin is pre-registered in the
	// interval dictionary).
	for i := 0; i < n; i++ {
		if s.binnedAttr(i) {
			name := s.raw.Attr(i).Name
			if math.IsNaN(fr[i]) {
				codes[i] = dataset.Missing
				continue
			}
			codes[i] = int32(discretize.BinOf(s.cuts[name], fr[i]))
			continue
		}
		if row[i] == dataset.MissingLabel {
			codes[i] = dataset.Missing
			continue
		}
		codes[i] = s.ds.Column(i).Dict.Code(row[i])
	}
	return codes, s.ds.AppendCodedRow(codes, nil)
}

// applyRowsToEngine folds a batch of coded rows into whichever cube
// engine is resident, via the rulecube additive-merge primitive. No
// engine means nothing to maintain: cubes built later count the grown
// dataset anyway.
func (s *Session) applyRowsToEngine(rows [][]int32, classes []int32) error {
	if s.store != nil {
		if err := s.store.IngestRows(rows, classes); err != nil {
			return err
		}
	}
	if s.lazy != nil {
		if err := s.lazy.IngestRows(rows, classes); err != nil {
			return err
		}
	}
	return nil
}

// noteDeltas advances the per-attribute discretization delta counters
// for one appended row: how many non-missing values each continuous
// attribute has gained since its cuts were last (re-)evaluated.
func (s *Session) noteDeltas(fr []float64) {
	if fr == nil {
		return
	}
	for i := 0; i < s.raw.NumAttrs(); i++ {
		if !s.binnedAttr(i) || math.IsNaN(fr[i]) {
			continue
		}
		if s.appendDeltas == nil {
			s.appendDeltas = make(map[string]int)
		}
		s.appendDeltas[s.raw.Attr(i).Name]++
	}
}

// flushTouched invalidates cached results depending on the attributes
// the batch (or the applied prefix of it) touched, then clears the set.
func (s *Session) flushTouched(touched map[int]bool) {
	if len(touched) == 0 {
		return
	}
	attrs := make([]int, 0, len(touched))
	for a := range touched {
		attrs = append(attrs, a)
	}
	sort.Ints(attrs)
	s.results.BumpAttrs(attrs)
	for a := range touched {
		delete(touched, a)
	}
}

// maybeReevalCuts re-runs the remembered discretizer once enough rows
// have accumulated. Unchanged cuts keep the engine and all incremental
// state; changed cuts rebuild the working dataset (re-binning history
// under the new intervals) and, when a BuildCubes configuration is
// remembered, the engine.
func (s *Session) maybeReevalCuts(ctx context.Context) error {
	if s.cutReevalEvery <= 0 || s.sinceCutEval < s.cutReevalEvery {
		return nil
	}
	if s.discOpts == nil || s.raw.AllCategorical() {
		s.sinceCutEval = 0
		return nil
	}
	d, err := s.discretizer(*s.discOpts)
	if err != nil {
		return err
	}
	nds, ncuts, err := discretize.Apply(s.raw, d)
	if err != nil {
		return fmt.Errorf("opmap: cut re-evaluation: %w", err)
	}
	s.sinceCutEval = 0
	s.appendDeltas = nil
	if cutsEqual(ncuts, s.cuts) {
		return nil
	}
	s.ds = nds
	s.cuts = ncuts
	s.dropEngine()
	if s.buildOpts == nil {
		return nil
	}
	return s.buildCubesLocked(ctx, *s.buildOpts)
}

// cutsEqual reports whether two cut-point maps describe the same
// discretization.
func cutsEqual(a, b map[string][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			// Bit-identity, not tolerance: re-running the same
			// deterministic discretizer either reproduces the exact cut
			// or genuinely moved it.
			if math.Float64bits(av[i]) != math.Float64bits(bv[i]) {
				return false
			}
		}
	}
	return true
}

// SetCutReevaluation makes the session re-run its remembered
// discretizer every `every` appended rows, adopting changed cut points
// (and rebuilding the engine with the remembered BuildCubes
// configuration) or cheaply confirming the current ones. Zero disables
// re-evaluation (the default): cuts then stay fixed until an explicit
// Discretize.
func (s *Session) SetCutReevaluation(every int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cutReevalEvery = every
}

// IngestSeq returns the WAL sequence number of the last batch the
// serving layer marked applied (zero when the session has never been
// fed from a WAL).
func (s *Session) IngestSeq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ingestSeq
}

// SetIngestSeq records the WAL sequence number of the last applied
// batch. Callers applying WAL batches should prefer AppendSeq, which
// records the sequence atomically with the apply; a separate
// SetIngestSeq leaves a window where a concurrent snapshot captures
// the batch's rows under the previous sequence and recovery
// double-applies the batch.
func (s *Session) SetIngestSeq(seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ingestSeq = seq
}

// IngestStats describes the session's streaming-ingestion state.
type IngestStats struct {
	// IngestSeq is the WAL sequence of the last applied batch.
	IngestSeq uint64
	// RowsSinceCutEval counts appended rows since cuts were last
	// (re-)evaluated.
	RowsSinceCutEval int
	// PendingDeltas maps each continuous attribute to the number of
	// non-missing values it gained since its cuts were last evaluated.
	PendingDeltas map[string]int
}

// IngestStats snapshots the session's ingestion counters.
func (s *Session) IngestStats() IngestStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := IngestStats{IngestSeq: s.ingestSeq, RowsSinceCutEval: s.sinceCutEval}
	if len(s.appendDeltas) > 0 {
		st.PendingDeltas = make(map[string]int, len(s.appendDeltas))
		for k, v := range s.appendDeltas {
			st.PendingDeltas[k] = v
		}
	}
	return st
}
