package rulecube_test

import (
	"testing"

	"opmap/internal/rulecube"
	"opmap/internal/workload"
)

// benchPairCube builds a 3-D cube over two moderately wide attributes
// of the synthetic call log, the shape Slice/Rollup/Dice iterate over
// in the compare and GI hot paths.
func benchPairCube(b *testing.B) *rulecube.Cube {
	b.Helper()
	ds, gt, err := workload.CallLog(workload.CallLogConfig{Seed: 1, Records: 30000, NumPhones: 24, NoiseAttrs: 2})
	if err != nil {
		b.Fatal(err)
	}
	phone := ds.AttrIndex(gt.PhoneAttr)
	tower := ds.AttrIndex(gt.DistinguishingAttr)
	cube, err := rulecube.Build(ds, []int{phone, tower})
	if err != nil {
		b.Fatal(err)
	}
	return cube
}

func BenchmarkCubeSlice(b *testing.B) {
	cube := benchPairCube(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cube.Slice(0, int32(i%cube.Dim(0))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCubeRollup(b *testing.B) {
	cube := benchPairCube(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cube.Rollup(i % 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCubeDice(b *testing.B) {
	cube := benchPairCube(b)
	values := []int32{0, 1, 2, 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cube.Dice(0, values); err != nil {
			b.Fatal(err)
		}
	}
}
