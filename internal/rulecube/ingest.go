package rulecube

import (
	"fmt"
)

// This file is the incremental-maintenance path behind streaming
// ingestion: contingency counts are additive, so an appended record
// folds into a materialized cube as a single cell increment instead of
// a rebuild. The only structural wrinkle is dictionary growth — cubes
// share their dictionaries with the dataset, so when an appended row
// registers a new label the cube's dims lag the dictionary until
// SyncDims re-lays the counts array out for the larger domain.

// SyncDims grows the cube's dimensions (and class count) to match its
// dictionaries after appended rows registered new labels, re-laying out
// the counts array. Existing cells keep their coordinates; new cells
// start at zero. Dictionaries only grow, so this is monotone; a no-op
// when nothing changed, which is the steady state.
func (c *Cube) SyncDims() {
	newDims := make([]int, len(c.dims))
	changed := false
	for i, d := range c.dicts {
		card := d.Len()
		if card == 0 {
			card = 1 // mirror Build: an empty domain still needs a slot
		}
		if card < c.dims[i] {
			card = c.dims[i]
		}
		if card != c.dims[i] {
			changed = true
		}
		newDims[i] = card
	}
	newClasses := c.classDict.Len()
	if newClasses < c.numClasses {
		newClasses = c.numClasses
	}
	if !changed && newClasses == c.numClasses {
		return
	}
	size := newClasses
	for _, d := range newDims {
		size *= d
	}
	nc := make([]int64, size)
	// Walk every old cell, decompose its flat index into coordinates
	// under the old shape, and recompose under the new shape.
	for flat, v := range c.counts {
		if v == 0 {
			continue
		}
		rem := flat
		class := rem % c.numClasses
		rem /= c.numClasses
		idx := 0
		// Coordinates come out last-dimension-first; fold them into the
		// new flat index by walking dims backwards with place values.
		place := 1
		for i := len(c.dims) - 1; i >= 0; i-- {
			coord := rem % c.dims[i]
			rem /= c.dims[i]
			idx += coord * place
			place *= newDims[i]
		}
		nc[idx*newClasses+class] = v
	}
	c.dims = newDims
	c.numClasses = newClasses
	c.counts = nc
}

// ApplyRow folds one appended record into the cube. rowCodes holds the
// record's categorical codes indexed by dataset attribute index (the
// full working-dataset row), class is the class code. Rows with a
// missing class or a missing value in any cube dimension are skipped —
// exactly Build's rule — and reported as not applied. The caller must
// have called SyncDims since the last dictionary growth; a code beyond
// a dimension is an error, never a silent miscount.
func (c *Cube) ApplyRow(rowCodes []int32, class int32) (bool, error) {
	if class < 0 {
		return false, nil
	}
	if int(class) >= c.numClasses {
		return false, fmt.Errorf("rulecube: class code %d beyond %d classes; SyncDims not run", class, c.numClasses)
	}
	idx, ok, err := c.cellIndex(rowCodes)
	if err != nil || !ok {
		return false, err
	}
	c.counts[idx*c.numClasses+int(class)]++
	c.total++
	return true, nil
}

// ApplyRow folds one appended record into every materialized cube of
// the store, growing dimensions first where dictionaries ran ahead.
// rowCodes is the full working-dataset row (codes indexed by attribute
// index), class the class code. The caller owns concurrency: the store
// is not safe for writes concurrent with reads.
func (st *Store) ApplyRow(rowCodes []int32, class int32) error {
	for _, c := range st.oneD {
		c.SyncDims()
		if _, err := c.ApplyRow(rowCodes, class); err != nil {
			return err
		}
	}
	for _, c := range st.twoD {
		c.SyncDims()
		if _, err := c.ApplyRow(rowCodes, class); err != nil {
			return err
		}
	}
	return nil
}
