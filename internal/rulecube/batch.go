package rulecube

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"opmap/internal/dataset"
	"opmap/internal/faultinject"
	"opmap/internal/obsv"
)

// Shared-scan batch building (DESIGN.md §14). A sweep or a one-vs-rest
// over all values needs the split attribute's 1-D cube plus one pair
// cube (and possibly one 1-D marginal) per ranked attribute — dozens of
// cubes whose independent builds would each re-scan the same rows.
// BuildMany counts every requested cube in a single pass: one scratch
// accumulator per distinct pair, a branch-free inner loop, and an
// extraction step that also derives 1-D marginals from pair scratch for
// free. COMPARE (arXiv:2107.11967) observes that groupwise comparisons
// share one scan and one aggregation pass this way instead of carrying
// per-pair state through separate scans.

// CubeReq names one cube of a batch build: the 2-D (A × class) cube
// when B is negative, the 3-D (A × B × class) pair cube otherwise. The
// pair's condition dimensions come out in (A, B) order, exactly as
// Build(ds, []int{A, B}) would order them. Attrs, when non-empty,
// supersedes A/B and names the condition dimensions of an arbitrary
// k-D cube in order — Build(ds, Attrs) — so one batch can mix 1-D
// marginals, pairs and higher-dimensional drill-down cubes in a single
// shared scan.
type CubeReq struct {
	A int
	B int
	// Attrs is the n-D request form; nil keeps the legacy two-field
	// form. len(Attrs) ≥ 1; order fixes the cube's dimension order.
	Attrs []int
}

// CubeReqOf builds the n-D form of a request.
func CubeReqOf(attrs []int) CubeReq { return CubeReq{A: -1, B: -1, Attrs: attrs} }

// attrList returns the request's condition dimensions in cube order.
func (q CubeReq) attrList() []int {
	if len(q.Attrs) > 0 {
		return q.Attrs
	}
	if q.B < 0 {
		return []int{q.A}
	}
	return []int{q.A, q.B}
}

// CubeScansCounterName counts full dataset passes performed to count
// cubes: one per individually built cube (Build via BuildCube) and one
// per BuildMany call, however many cubes that one scan produced. The
// ratio of opmap_cubes_built_total to this counter is the shared-scan
// amplification.
const CubeScansCounterName = "opmap_cube_scans_total"

// batchShardRows is the minimum number of rows each parallel scan
// shard must cover before BuildMany splits the pass; below that the
// per-shard scratch allocation and merge cost more than they save.
const batchShardRows = 1 << 16

// pairPlan accumulates one pair cube during the shared scan. The
// scratch array is laid out (dimA+1) × (dimB+1) × numClasses: slot 0 of
// each condition dimension catches missing values (code -1 lands there
// via the +1 shift), which keeps the inner loop branch-free and — since
// a row with a present class is counted *somewhere* in the array — lets
// extraction marginalize a dimension across all its slots to reproduce
// the other dimension's exact 1-D cube without extra scan work.
type pairPlan struct {
	a, b       int
	colA, colB []int32
	dimA, dimB int
	strideA    int // (dimB+1) * numClasses
	scratch    []int64
}

// onePlan accumulates a 1-D cube that no requested pair covers; its
// scratch is (dim+1) × numClasses with the same missing slot 0.
type onePlan struct {
	a       int
	col     []int32
	dim     int
	scratch []int64
}

// kPlan accumulates one k-D cube (k ≥ 3) during the shared scan. Its
// scratch generalizes the pair layout: Π(dim_i+1) × numClasses with
// slot 0 of every condition dimension catching missing values, so the
// inner loop stays branch-free at any arity.
type kPlan struct {
	attrs   []int
	cols    [][]int32
	dims    []int
	strides []int // strides[i] = numClasses × Π_{j>i}(dims[j]+1)
	scratch []int64
}

// maxBatchScratchCells bounds one k-D plan's scratch allocation: a
// request whose (dim+1)-product exceeds it is rejected up front rather
// than attempted. Callers that budget cache bytes (the lazy engine)
// reject such cubes earlier via EstimateCubeBytes; this guard protects
// direct BuildMany users from runaway allocations.
const maxBatchScratchCells = 1 << 31

// cubeDim mirrors Build's dimension sizing: an attribute with an empty
// domain still needs one slot.
func cubeDim(ds *dataset.Dataset, a int) int {
	card := ds.Cardinality(a)
	if card == 0 {
		card = 1
	}
	return card
}

// BuildMany counts every requested cube in one pass over ds (plus a
// cells-proportional extraction), advancing the scan counter once and
// the cubes-built counter per distinct cube. Results arrive in request
// order and are identical to what Build would return for each request;
// duplicate requests share one underlying cube. The scan parallelizes
// across GOMAXPROCS row shards when the dataset is large enough (counts
// are additive, so shard partials merge by summation). Cancellation is
// observed before the pass and between phases — the response to a
// cancel is bounded by a single scan, matching BuildStoreContext.
func BuildMany(ctx context.Context, ds *dataset.Dataset, reqs []CubeReq) ([]*Cube, error) {
	if !ds.AllCategorical() {
		return nil, fmt.Errorf("rulecube: dataset has continuous attributes; discretize first")
	}
	if err := validateBatchReqs(ds, reqs); err != nil {
		return nil, err
	}
	if len(reqs) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := faultinject.HitContext(ctx, faultinject.SiteCubeBatch); err != nil {
		return nil, err
	}

	nc := ds.NumClasses()
	plan, err := planBatch(ds, nc, reqs)
	if err != nil {
		return nil, err
	}
	scanAll(ds.Column(ds.ClassIndex()).Codes, nc, plan, ds.NumRows())
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	out, built := extractAll(ds, nc, reqs, plan)
	obsv.Default().Counter(CubesBuiltCounterName).Add(int64(built))
	obsv.Default().Counter(CubeScansCounterName).Inc()
	return out, nil
}

// validateBatchReqs rejects out-of-range, class-dimension, and
// duplicate-attribute requests before any allocation, in either
// request form.
func validateBatchReqs(ds *dataset.Dataset, reqs []CubeReq) error {
	classIdx := ds.ClassIndex()
	for _, q := range reqs {
		attrs := q.attrList()
		for i, a := range attrs {
			if a < 0 || a >= ds.NumAttrs() {
				return fmt.Errorf("rulecube: attribute index %d out of range", a)
			}
			if a == classIdx {
				return fmt.Errorf("rulecube: class attribute cannot be a condition dimension")
			}
			for _, b := range attrs[:i] {
				if a == b {
					return fmt.Errorf("rulecube: duplicate attribute %d", a)
				}
			}
		}
	}
	return nil
}

// batchPlan is the deduplicated working set of one shared scan: one
// pairPlan per distinct pair, one onePlan per 1-D request no pair
// covers, and the index maps extraction uses to route each request to
// its accumulator.
type batchPlan struct {
	pairs   []pairPlan
	ones    []onePlan
	ks      []kPlan
	pairIdx map[[2]int]int
	oneIdx  map[int]int
	kIdx    map[string]int // ordered attr-list key -> kPlan index
	derived map[int][2]int // attr -> {pair plan index, dimension position}
}

// kKey is the dedup key of a k-D request: its exact ordered dimension
// list (order fixes the cube's dimension order, so [a b c] and
// [b a c] are distinct cubes).
func kKey(attrs []int) string { return fmt.Sprint(attrs) }

// planBatch dedupes the requests into scan plans, routing 1-D requests
// through a covering pair's scratch whenever one exists and k ≥ 3
// requests into k-D plans.
func planBatch(ds *dataset.Dataset, nc int, reqs []CubeReq) (*batchPlan, error) {
	p := &batchPlan{
		pairIdx: make(map[[2]int]int),
		oneIdx:  make(map[int]int),
		kIdx:    make(map[string]int),
		derived: make(map[int][2]int),
	}
	for _, q := range reqs {
		attrs := q.attrList()
		if len(attrs) != 2 {
			continue
		}
		a, b := attrs[0], attrs[1]
		k := [2]int{a, b}
		if _, ok := p.pairIdx[k]; ok {
			continue
		}
		dimA, dimB := cubeDim(ds, a), cubeDim(ds, b)
		p.pairIdx[k] = len(p.pairs)
		p.pairs = append(p.pairs, pairPlan{
			a: a, b: b,
			colA: ds.Column(a).Codes, colB: ds.Column(b).Codes,
			dimA: dimA, dimB: dimB,
			strideA: (dimB + 1) * nc,
			scratch: make([]int64, (dimA+1)*(dimB+1)*nc),
		})
	}
	for _, q := range reqs {
		attrs := q.attrList()
		if len(attrs) < 3 {
			continue
		}
		key := kKey(attrs)
		if _, ok := p.kIdx[key]; ok {
			continue
		}
		kp := kPlan{attrs: append([]int(nil), attrs...)}
		cells := int64(nc)
		for _, a := range attrs {
			d := cubeDim(ds, a)
			kp.dims = append(kp.dims, d)
			kp.cols = append(kp.cols, ds.Column(a).Codes)
			if cells > maxBatchScratchCells/int64(d+1) {
				return nil, fmt.Errorf("rulecube: cube over attributes %v too large to count (> %d scratch cells)", attrs, int64(maxBatchScratchCells))
			}
			cells *= int64(d + 1)
		}
		kp.strides = make([]int, len(attrs))
		stride := nc
		for i := len(attrs) - 1; i >= 0; i-- {
			kp.strides[i] = stride
			stride *= kp.dims[i] + 1
		}
		kp.scratch = make([]int64, cells)
		p.kIdx[key] = len(p.ks)
		p.ks = append(p.ks, kp)
	}
	for _, q := range reqs {
		attrs := q.attrList()
		if len(attrs) != 1 {
			continue
		}
		a := attrs[0]
		if _, ok := p.oneIdx[a]; ok {
			continue
		}
		if _, ok := p.derived[a]; ok {
			continue
		}
		pos := findPairFor(p.pairs, a)
		if pos[0] >= 0 {
			p.derived[a] = pos
			continue
		}
		d := cubeDim(ds, a)
		p.oneIdx[a] = len(p.ones)
		p.ones = append(p.ones, onePlan{
			a: a, col: ds.Column(a).Codes,
			dim: d, scratch: make([]int64, (d+1)*nc),
		})
	}
	return p, nil
}

// extractAll materializes each distinct cube once from the counted
// scratch (duplicate requests share the pointer) and reports how many
// cubes were built.
func extractAll(ds *dataset.Dataset, nc int, reqs []CubeReq, plan *batchPlan) ([]*Cube, int) {
	out := make([]*Cube, len(reqs))
	pairCubes := make([]*Cube, len(plan.pairs))
	kCubes := make([]*Cube, len(plan.ks))
	oneCubes := make(map[int]*Cube)
	built := 0
	for i, q := range reqs {
		attrs := q.attrList()
		switch {
		case len(attrs) >= 3:
			ki := plan.kIdx[kKey(attrs)]
			if kCubes[ki] == nil {
				kCubes[ki] = extractK(ds, nc, &plan.ks[ki])
				built++
			}
			out[i] = kCubes[ki]
		case len(attrs) == 2:
			pi := plan.pairIdx[[2]int{attrs[0], attrs[1]}]
			if pairCubes[pi] == nil {
				pairCubes[pi] = extractPair(ds, nc, &plan.pairs[pi])
				built++
			}
			out[i] = pairCubes[pi]
		default:
			a := attrs[0]
			c, ok := oneCubes[a]
			if !ok {
				if pos, der := plan.derived[a]; der {
					c = extractDerivedOne(ds, nc, a, &plan.pairs[pos[0]], pos[1])
				} else {
					c = extractOne(ds, nc, &plan.ones[plan.oneIdx[a]])
				}
				oneCubes[a] = c
				built++
			}
			out[i] = c
		}
	}
	return out, built
}

// findPairFor locates a pair plan covering attribute a, returning its
// index and the dimension position a occupies, or {-1, -1}.
func findPairFor(pairs []pairPlan, a int) [2]int {
	for pi := range pairs {
		if pairs[pi].a == a {
			return [2]int{pi, 0}
		}
		if pairs[pi].b == a {
			return [2]int{pi, 1}
		}
	}
	return [2]int{-1, -1}
}

// scanAll runs the shared pass, split across GOMAXPROCS contiguous row
// shards when the dataset is large enough to amortize the per-shard
// scratch (counts are additive; shard partials merge by summation).
// It runs to completion once started — the caller bounds cancellation
// at one scan by checking its context before and after.
func scanAll(classCol []int32, nc int, plan *batchPlan, rows int) {
	pairs, ones, ks := plan.pairs, plan.ones, plan.ks
	shards := runtime.GOMAXPROCS(0)
	if max := rows / batchShardRows; shards > max {
		shards = max
	}
	if shards <= 1 {
		scanRange(classCol, nc, pairs, ones, ks, 0, rows)
		return
	}
	// Shard 0 scans into the plans' own scratch; each extra shard gets a
	// private copy of the scratch arrays, merged after the pass.
	extra := make([][]pairPlan, shards-1)
	extraOnes := make([][]onePlan, shards-1)
	extraKs := make([][]kPlan, shards-1)
	for s := range extra {
		ps := append([]pairPlan(nil), pairs...)
		for i := range ps {
			ps[i].scratch = make([]int64, len(pairs[i].scratch))
		}
		os := append([]onePlan(nil), ones...)
		for i := range os {
			os[i].scratch = make([]int64, len(ones[i].scratch))
		}
		kps := append([]kPlan(nil), ks...)
		for i := range kps {
			kps[i].scratch = make([]int64, len(ks[i].scratch))
		}
		extra[s], extraOnes[s], extraKs[s] = ps, os, kps
	}
	var wg sync.WaitGroup
	per := (rows + shards - 1) / shards
	for s := 0; s < shards; s++ {
		lo := s * per
		hi := lo + per
		if hi > rows {
			hi = rows
		}
		ps, os, kps := pairs, ones, ks
		if s > 0 {
			ps, os, kps = extra[s-1], extraOnes[s-1], extraKs[s-1]
		}
		wg.Add(1)
		go func(ps []pairPlan, os []onePlan, kps []kPlan, lo, hi int) {
			defer wg.Done()
			scanRange(classCol, nc, ps, os, kps, lo, hi)
		}(ps, os, kps, lo, hi)
	}
	wg.Wait()
	for s := range extra {
		for i := range pairs {
			AddCounts(pairs[i].scratch, extra[s][i].scratch)
		}
		for i := range ones {
			AddCounts(ones[i].scratch, extraOnes[s][i].scratch)
		}
		for i := range ks {
			AddCounts(ks[i].scratch, extraKs[s][i].scratch)
		}
	}
}

// scanBlockRows sizes the row blocks of the shared scan: small enough
// that a block's class and value columns stay cache-resident while
// every plan tallies it, large enough to amortize the per-plan loop
// setup. 2048 rows × 4 bytes = 8 KiB per column touched.
const scanBlockRows = 2048

// scanRange is the shared scan's inner loop over rows [lo, hi): each
// row with a present class bumps exactly one cell per plan. The +1
// shift routes a missing value (code -1) to slot 0, so the loop has no
// per-plan branch; extraction drops (or marginalizes over) that slot.
// Rows are processed in blocks with the plan loop outside the row
// loop, so each plan's column/scratch pointers hoist out of the hot
// loop and the block's columns are revisited while still in cache —
// the row-outer form re-derefs every plan per row and thrashes between
// all the plans' columns.
func scanRange(classCol []int32, nc int, pairs []pairPlan, ones []onePlan, ks []kPlan, lo, hi int) {
	for blo := lo; blo < hi; blo += scanBlockRows {
		bhi := blo + scanBlockRows
		if bhi > hi {
			bhi = hi
		}
		cls := classCol[blo:bhi]
		for i := range pairs {
			p := &pairs[i]
			colA, colB := p.colA[blo:bhi], p.colB[blo:bhi]
			scratch, strideA := p.scratch, p.strideA
			for r, cl := range cls {
				if cl < 0 {
					continue
				}
				scratch[(int(colA[r])+1)*strideA+(int(colB[r])+1)*nc+int(cl)]++
			}
		}
		for i := range ones {
			o := &ones[i]
			col, scratch := o.col[blo:bhi], o.scratch
			for r, cl := range cls {
				if cl < 0 {
					continue
				}
				scratch[(int(col[r])+1)*nc+int(cl)]++
			}
		}
		for i := range ks {
			kp := &ks[i]
			scratch, strides := kp.scratch, kp.strides
			cols := make([][]int32, len(kp.cols))
			for d := range kp.cols {
				cols[d] = kp.cols[d][blo:bhi]
			}
			for r, cl := range cls {
				if cl < 0 {
					continue
				}
				idx := int(cl)
				for d, col := range cols {
					idx += (int(col[r]) + 1) * strides[d]
				}
				scratch[idx]++
			}
		}
	}
}

// newCubeHeader builds the cube metadata exactly the way Build does, so
// batch-built cubes compare DeepEqual to individually built ones.
func newCubeHeader(ds *dataset.Dataset, attrs []int, nc int) *Cube {
	c := &Cube{
		attrIdx:    append([]int(nil), attrs...),
		classDict:  ds.ClassDict(),
		numClasses: nc,
	}
	size := nc
	for _, a := range attrs {
		d := cubeDim(ds, a)
		c.dims = append(c.dims, d)
		c.attrNames = append(c.attrNames, ds.Attr(a).Name)
		c.dicts = append(c.dicts, ds.Column(a).Dict)
		size *= d
	}
	c.counts = make([]int64, size)
	return c
}

// extractPair copies the present-value block of a pair plan's scratch
// into an exact cube: slot 0 of either dimension (rows where that value
// was missing) is dropped, matching Build's skip of such rows.
func extractPair(ds *dataset.Dataset, nc int, p *pairPlan) *Cube {
	c := newCubeHeader(ds, []int{p.a, p.b}, nc)
	blk := p.dimB * nc
	for va := 0; va < p.dimA; va++ {
		src := ((va+1)*(p.dimB+1) + 1) * nc
		copy(c.counts[va*blk:(va+1)*blk], p.scratch[src:src+blk])
	}
	for _, n := range c.counts {
		c.total += n
	}
	return c
}

// extractOne copies a dedicated 1-D plan's present-value block.
func extractOne(ds *dataset.Dataset, nc int, o *onePlan) *Cube {
	c := newCubeHeader(ds, []int{o.a}, nc)
	copy(c.counts, o.scratch[nc:(o.dim+1)*nc])
	for _, n := range c.counts {
		c.total += n
	}
	return c
}

// extractK copies the present-value block of a k-D plan's scratch into
// an exact cube: slot 0 of every condition dimension (rows where that
// value was missing) is dropped, matching Build's skip of such rows.
// The innermost dimension's present block is contiguous in both
// layouts, so the copy walks an odometer over the outer dimensions and
// moves dims[k-1]×nc cells at a time.
func extractK(ds *dataset.Dataset, nc int, p *kPlan) *Cube {
	c := newCubeHeader(ds, p.attrs, nc)
	k := len(p.dims)
	blk := p.dims[k-1] * nc
	idx := make([]int, k-1)
	dst := 0
	for {
		src := p.strides[k-1] // skip slot 0 of the innermost dimension
		for i := 0; i < k-1; i++ {
			src += (idx[i] + 1) * p.strides[i]
		}
		copy(c.counts[dst:dst+blk], p.scratch[src:src+blk])
		dst += blk
		i := k - 2
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < p.dims[i] {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	for _, n := range c.counts {
		c.total += n
	}
	return c
}

// extractDerivedOne reproduces attribute a's 1-D cube from a pair
// plan's scratch by marginalizing the partner dimension across *all*
// its slots — missing slot included, because a row with a present a and
// class is counted in the scratch wherever its partner value fell, and
// Build's 1-D cube keeps exactly those rows regardless of the partner.
func extractDerivedOne(ds *dataset.Dataset, nc int, a int, p *pairPlan, pos int) *Cube {
	c := newCubeHeader(ds, []int{a}, nc)
	if pos == 0 {
		for va := 0; va < p.dimA; va++ {
			dst := c.counts[va*nc : (va+1)*nc]
			base := (va + 1) * p.strideA
			for sb := 0; sb <= p.dimB; sb++ {
				AddCounts(dst, p.scratch[base+sb*nc:base+(sb+1)*nc])
			}
		}
	} else {
		for vb := 0; vb < p.dimB; vb++ {
			dst := c.counts[vb*nc : (vb+1)*nc]
			for sa := 0; sa <= p.dimA; sa++ {
				off := sa*p.strideA + (vb+1)*nc
				AddCounts(dst, p.scratch[off:off+nc])
			}
		}
	}
	for _, n := range c.counts {
		c.total += n
	}
	return c
}
