package rulecube

import (
	"fmt"
	"math/rand"
	"testing"

	"opmap/internal/dataset"
)

// Differential tests: cube cells against a brute-force recount of
// random datasets. Any systematic counting bug (offset arithmetic,
// missing-value handling, class indexing) surfaces here.

// randomDataset builds a random categorical dataset with occasional
// missing values.
func randomDataset(t *testing.T, seed int64, rows, attrs, card, classes int, missingRate float64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	schema := dataset.Schema{ClassIndex: attrs}
	for i := 0; i < attrs; i++ {
		schema.Attrs = append(schema.Attrs, dataset.Attribute{Name: fmt.Sprintf("a%d", i), Kind: dataset.Categorical})
	}
	schema.Attrs = append(schema.Attrs, dataset.Attribute{Name: "class", Kind: dataset.Categorical})
	b, err := dataset.NewBuilder(schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < attrs; i++ {
		d := dataset.NewDictionary()
		for v := 0; v < card; v++ {
			d.Code(fmt.Sprintf("v%d", v))
		}
		b.WithDict(i, d)
	}
	cd := dataset.NewDictionary()
	for c := 0; c < classes; c++ {
		cd.Code(fmt.Sprintf("c%d", c))
	}
	b.WithDict(attrs, cd)

	codes := make([]int32, attrs+1)
	for r := 0; r < rows; r++ {
		for i := 0; i < attrs; i++ {
			if rng.Float64() < missingRate {
				codes[i] = dataset.Missing
			} else {
				codes[i] = int32(rng.Intn(card))
			}
		}
		codes[attrs] = int32(rng.Intn(classes))
		if err := b.AddCodedRow(codes, nil); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestCubeMatchesBruteForce(t *testing.T) {
	for trial := int64(0); trial < 5; trial++ {
		ds := randomDataset(t, trial, 3000, 4, 5, 3, 0.05)
		// Random pair of attributes.
		rng := rand.New(rand.NewSource(trial + 100))
		a := rng.Intn(4)
		b := (a + 1 + rng.Intn(3)) % 4
		if a == b {
			b = (b + 1) % 4
		}
		cube, err := Build(ds, []int{a, b})
		if err != nil {
			t.Fatal(err)
		}
		// Brute-force recount.
		card := 5
		classes := 3
		want := make(map[[3]int32]int64)
		var total int64
		for r := 0; r < ds.NumRows(); r++ {
			va := ds.CatCode(r, a)
			vb := ds.CatCode(r, b)
			c := ds.ClassCode(r)
			if va < 0 || vb < 0 || c < 0 {
				continue
			}
			want[[3]int32{va, vb, c}]++
			total++
		}
		if cube.Total() != total {
			t.Fatalf("trial %d: total %d, brute force %d", trial, cube.Total(), total)
		}
		for va := int32(0); int(va) < card; va++ {
			for vb := int32(0); int(vb) < card; vb++ {
				for c := int32(0); int(c) < classes; c++ {
					got, err := cube.Count([]int32{va, vb}, c)
					if err != nil {
						t.Fatal(err)
					}
					if got != want[[3]int32{va, vb, c}] {
						t.Fatalf("trial %d: cell (%d,%d,%d): cube %d, brute force %d",
							trial, va, vb, c, got, want[[3]int32{va, vb, c}])
					}
				}
			}
		}
	}
}

func TestSliceDiceRollupComposition(t *testing.T) {
	ds := randomDataset(t, 9, 4000, 3, 4, 2, 0.03)
	cube, err := Build(ds, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Slice → rollup must equal building directly on the filtered data.
	sliced, err := cube.Slice(1, 2) // a1 = v2
	if err != nil {
		t.Fatal(err)
	}
	rolled, err := sliced.Rollup(1) // marginalize a2 away → cube over a0
	if err != nil {
		t.Fatal(err)
	}
	sub := ds.Filter(func(r int) bool {
		// The 3-dim cube skipped rows with ANY missing dim; mirror that.
		return ds.CatCode(r, 0) >= 0 && ds.CatCode(r, 1) == 2 && ds.CatCode(r, 2) >= 0
	})
	direct, err := Build(sub, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); int(v) < direct.Dim(0); v++ {
		for c := int32(0); c < 2; c++ {
			a, _ := rolled.Count([]int32{v}, c)
			b, _ := direct.Count([]int32{v}, c)
			if a != b {
				t.Fatalf("composition cell (%d,%d): %d != %d", v, c, a, b)
			}
		}
	}
	// Dice to all values must preserve every cell.
	all := []int32{0, 1, 2, 3}
	diced, err := cube.Dice(0, all)
	if err != nil {
		t.Fatal(err)
	}
	if diced.Total() != cube.Total() {
		t.Fatal("identity dice changed the total")
	}
}
