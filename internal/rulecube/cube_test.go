package rulecube

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"opmap/internal/car"
	"opmap/internal/dataset"
)

// fig1Dataset reproduces the paper's Fig. 1 cube: A1 ∈ {a,b,c,d},
// A2 ∈ {e,f,g}, class ∈ {yes,no}, 1158 records, cell (a,e,yes) = 100 and
// (a,e,no) = 50, cell (a,f,·) = 0.
func fig1Dataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	b, err := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "A1", Kind: dataset.Categorical},
			{Name: "A2", Kind: dataset.Categorical},
			{Name: "C", Kind: dataset.Categorical},
		},
		ClassIndex: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	b.WithDict(0, dataset.DictionaryOf("a", "b", "c", "d"))
	b.WithDict(1, dataset.DictionaryOf("e", "f", "g"))
	b.WithDict(2, dataset.DictionaryOf("yes", "no"))
	add := func(a1, a2, c string, n int) {
		for i := 0; i < n; i++ {
			if err := b.AddRow([]string{a1, a2, c}); err != nil {
				t.Fatal(err)
			}
		}
	}
	add("a", "e", "yes", 100)
	add("a", "e", "no", 50)
	add("a", "g", "yes", 8)
	add("b", "e", "yes", 200)
	add("b", "f", "no", 150)
	add("c", "f", "yes", 150)
	add("c", "g", "no", 200)
	add("d", "g", "yes", 150)
	add("d", "e", "no", 150)
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBuildReproducesFig1(t *testing.T) {
	ds := fig1Dataset(t)
	cube, err := Build(ds, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if cube.NumDims() != 2 || cube.NumClasses() != 2 {
		t.Fatalf("cube shape wrong: dims=%d classes=%d", cube.NumDims(), cube.NumClasses())
	}
	if cube.RuleCount() != 24 {
		t.Errorf("RuleCount = %d, want 24 (Fig. 1: 3×4×2 rules)", cube.RuleCount())
	}
	if cube.Total() != 1158 {
		t.Errorf("Total = %d, want 1158", cube.Total())
	}
	// Cell (a, e, yes) = 100 with confidence 100/150.
	n, err := cube.Count([]int32{0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("count(a,e,yes) = %d, want 100", n)
	}
	cf, err := cube.Confidence([]int32{0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cf-100.0/150) > 1e-12 {
		t.Errorf("conf(a,e,yes) = %v, want 100/150", cf)
	}
	sup, err := cube.Support([]int32{0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sup-100.0/1158) > 1e-12 {
		t.Errorf("sup(a,e,yes) = %v, want 100/1158", sup)
	}
	// Paper: "The rule A1=a, A2=f -> yes has the support of 0 and the
	// confidence of 0."
	cf, err = cube.Confidence([]int32{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cf != 0 {
		t.Errorf("conf(a,f,yes) = %v, want 0", cf)
	}
}

func TestBuildValidation(t *testing.T) {
	ds := fig1Dataset(t)
	if _, err := Build(ds, []int{2}); err == nil {
		t.Error("class as condition dim should fail")
	}
	if _, err := Build(ds, []int{0, 0}); err == nil {
		t.Error("duplicate attribute should fail")
	}
	if _, err := Build(ds, []int{99}); err == nil {
		t.Error("out-of-range attribute should fail")
	}
}

func TestCubeCoordinateValidation(t *testing.T) {
	ds := fig1Dataset(t)
	cube, _ := Build(ds, []int{0, 1})
	if _, err := cube.Count([]int32{0}, 0); err == nil {
		t.Error("wrong arity should fail")
	}
	if _, err := cube.Count([]int32{9, 0}, 0); err == nil {
		t.Error("out-of-range value should fail")
	} else if !strings.Contains(err.Error(), `"A1"`) {
		// The message must name the offending attribute, not just its
		// positional index.
		t.Errorf("out-of-range error %q does not name attribute A1", err)
	}
	if _, err := cube.Count([]int32{0, 9}, 0); err == nil {
		t.Error("out-of-range value in dim 2 should fail")
	} else if !strings.Contains(err.Error(), `"A2"`) {
		t.Errorf("out-of-range error %q does not name attribute A2", err)
	}
	if _, err := cube.Count([]int32{0, 0}, 9); err == nil {
		t.Error("out-of-range class should fail")
	}
}

func TestSliceMatchesSubPopulation(t *testing.T) {
	ds := fig1Dataset(t)
	cube, _ := Build(ds, []int{0, 1})
	// Slice A1=a: resulting 2-D cube over A2 must match a cube built on
	// the filtered dataset.
	sliced, err := cube.Slice(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sub := ds.Filter(func(r int) bool { return ds.CatCode(r, 0) == 0 })
	direct, err := Build(sub, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if sliced.Total() != direct.Total() {
		t.Fatalf("slice total %d != direct %d", sliced.Total(), direct.Total())
	}
	for v := int32(0); int(v) < sliced.Dim(0); v++ {
		for k := int32(0); k < 2; k++ {
			a, _ := sliced.Count([]int32{v}, k)
			b, _ := direct.Count([]int32{v}, k)
			if a != b {
				t.Errorf("cell (%d,%d): slice %d != direct %d", v, k, a, b)
			}
		}
	}
	if _, err := cube.Slice(5, 0); err == nil {
		t.Error("bad position should fail")
	}
	if _, err := cube.Slice(0, 99); err == nil {
		t.Error("bad value should fail")
	}
}

func TestRollupMarginalizes(t *testing.T) {
	ds := fig1Dataset(t)
	cube, _ := Build(ds, []int{0, 1})
	rolled, err := cube.Rollup(1) // marginalize A2 away
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Build(ds, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 4; v++ {
		for k := int32(0); k < 2; k++ {
			a, _ := rolled.Count([]int32{v}, k)
			b, _ := direct.Count([]int32{v}, k)
			if a != b {
				t.Errorf("rollup cell (%d,%d): %d != %d", v, k, a, b)
			}
		}
	}
	if rolled.Total() != cube.Total() {
		t.Error("rollup changed the total")
	}
}

func TestDice(t *testing.T) {
	ds := fig1Dataset(t)
	cube, _ := Build(ds, []int{0, 1})
	diced, err := cube.Dice(0, []int32{0, 3}) // A1 ∈ {a, d}
	if err != nil {
		t.Fatal(err)
	}
	if diced.Dim(0) != 2 {
		t.Fatalf("diced dim = %d, want 2", diced.Dim(0))
	}
	if diced.Dict(0).Label(0) != "a" || diced.Dict(0).Label(1) != "d" {
		t.Error("dice should re-encode values in the given order")
	}
	// Counts preserved under re-encoding.
	n, _ := diced.Count([]int32{0, 0}, 0) // a, e, yes
	if n != 100 {
		t.Errorf("diced count = %d, want 100", n)
	}
	n, _ = diced.Count([]int32{1, 2}, 0) // d, g, yes
	if n != 150 {
		t.Errorf("diced count = %d, want 150", n)
	}
	if _, err := cube.Dice(0, nil); err == nil {
		t.Error("empty dice should fail")
	}
	if _, err := cube.Dice(0, []int32{0, 0}); err == nil {
		t.Error("duplicate dice values should fail")
	}
	if _, err := cube.Dice(0, []int32{99}); err == nil {
		t.Error("bad dice value should fail")
	}
}

func TestConfidenceEquationOne(t *testing.T) {
	// Eq. (1): conf = sup(X,c) / Σ_j sup(X,c_j), verified cell by cell.
	ds := fig1Dataset(t)
	cube, _ := Build(ds, []int{0, 1})
	cube.ForEach(func(values []int32, class int32, count int64) {
		cond, err := cube.CondCount(values)
		if err != nil {
			t.Fatal(err)
		}
		cf, err := cube.Confidence(values, class)
		if err != nil {
			t.Fatal(err)
		}
		if cond == 0 {
			if cf != 0 {
				t.Fatalf("empty cell with nonzero confidence")
			}
			return
		}
		want := float64(count) / float64(cond)
		if math.Abs(cf-want) > 1e-12 {
			t.Fatalf("cell %v class %d: conf %v, want %v", values, class, cf, want)
		}
	})
}

func TestClassMarginalsAndScale(t *testing.T) {
	ds := fig1Dataset(t)
	cube, _ := Build(ds, []int{0})
	marg := cube.ClassMarginals()
	// yes: 100+8+200+150+150 = 608; no: 50+150+200+150 = 550.
	if marg[0] != 608 || marg[1] != 550 {
		t.Errorf("marginals = %v, want [608 550]", marg)
	}
	scale := cube.ScaleFactors()
	if scale[0] != 1 {
		t.Errorf("majority scale = %v, want 1", scale[0])
	}
	if math.Abs(scale[1]-608.0/550) > 1e-12 {
		t.Errorf("minority scale = %v, want 608/550", scale[1])
	}
}

func TestValueMarginals(t *testing.T) {
	ds := fig1Dataset(t)
	cube, _ := Build(ds, []int{0, 1})
	marg, err := cube.ValueMarginals(0)
	if err != nil {
		t.Fatal(err)
	}
	// A1=a: 158, b: 350, c: 350, d: 300.
	want := []int64{158, 350, 350, 300}
	for i, m := range marg {
		if m != want[i] {
			t.Errorf("marginal[%d] = %d, want %d", i, m, want[i])
		}
	}
	if _, err := cube.ValueMarginals(9); err == nil {
		t.Error("bad position should fail")
	}
}

func TestCubeRuleMaterialization(t *testing.T) {
	ds := fig1Dataset(t)
	cube, _ := Build(ds, []int{0, 1})
	r, err := cube.Rule([]int32{0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.SupCount != 100 || r.CondCount != 150 || r.Total != 1158 {
		t.Errorf("rule = %+v", r)
	}
	rules, err := cube.Rules()
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 24 {
		t.Errorf("materialized %d rules, want 24", len(rules))
	}
}

func TestMissingValuesSkipped(t *testing.T) {
	b, _ := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "a", Kind: dataset.Categorical},
			{Name: "c", Kind: dataset.Categorical},
		},
		ClassIndex: 1,
	})
	b.AddRow([]string{"x", "yes"})
	b.AddRow([]string{"?", "yes"})
	b.AddRow([]string{"x", "?"})
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Build(ds, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if cube.Total() != 1 {
		t.Errorf("total = %d, want 1 (rows with missing dim or class skipped)", cube.Total())
	}
}

func TestBuildStoreShapes(t *testing.T) {
	ds := fig1Dataset(t)
	store, err := BuildStore(ds, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 2 attrs → 2 one-D cubes + 1 pair cube.
	if store.CubeCount() != 3 {
		t.Errorf("CubeCount = %d, want 3", store.CubeCount())
	}
	if store.Cube1(0) == nil || store.Cube1(1) == nil {
		t.Error("missing 2-D cube")
	}
	if store.Cube2(0, 1) == nil || store.Cube2(1, 0) == nil {
		t.Error("pair lookup should be order-insensitive")
	}
	if store.Cube2(0, 0) != nil {
		t.Error("self-pair should not exist")
	}
	// SkipPairs.
	s2, err := BuildStore(ds, StoreOptions{SkipPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	if s2.CubeCount() != 2 {
		t.Errorf("SkipPairs CubeCount = %d, want 2", s2.CubeCount())
	}
	if _, err := BuildStore(ds, StoreOptions{Attrs: []int{2}}); err == nil {
		t.Error("class in store attrs should fail")
	}
}

func TestStoreCubesMatchDirectBuild(t *testing.T) {
	ds := fig1Dataset(t)
	store, _ := BuildStore(ds, StoreOptions{})
	direct, _ := Build(ds, []int{0, 1})
	got := store.Cube2(0, 1)
	direct.ForEach(func(values []int32, class int32, count int64) {
		n, err := got.Count(values, class)
		if err != nil {
			t.Fatal(err)
		}
		if n != count {
			t.Fatalf("store cube cell %v/%d = %d, direct = %d", values, class, n, count)
		}
	})
}

func TestRestrictedCube(t *testing.T) {
	ds := fig1Dataset(t)
	store, _ := BuildStore(ds, StoreOptions{SkipPairs: true})
	cube, err := store.RestrictedCube([]car.Condition{{Attr: 0, Value: 0}}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	// Within A1=a: A2=e has 150 records (100 yes / 50 no).
	n, _ := cube.Count([]int32{0}, 0)
	if n != 100 {
		t.Errorf("restricted count = %d, want 100", n)
	}
	if cube.Total() != 158 {
		t.Errorf("restricted total = %d, want 158", cube.Total())
	}
}

// Property: for any cube cell, 0 ≤ confidence ≤ 1 and the class-summed
// counts equal the condition count.
func TestCubeInvariants(t *testing.T) {
	ds := fig1Dataset(t)
	cube, _ := Build(ds, []int{0, 1})
	f := func(v1u, v2u, cu uint8) bool {
		v1 := int32(v1u % 4)
		v2 := int32(v2u % 3)
		c := int32(cu % 2)
		cf, err := cube.Confidence([]int32{v1, v2}, c)
		if err != nil || cf < 0 || cf > 1 {
			return false
		}
		var sum int64
		for k := int32(0); k < 2; k++ {
			n, err := cube.Count([]int32{v1, v2}, k)
			if err != nil {
				return false
			}
			sum += n
		}
		cond, err := cube.CondCount([]int32{v1, v2})
		return err == nil && sum == cond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: slicing on every value of a dimension partitions the total.
func TestSlicePartitionsTotal(t *testing.T) {
	ds := fig1Dataset(t)
	cube, _ := Build(ds, []int{0, 1})
	var sum int64
	for v := int32(0); v < 4; v++ {
		s, err := cube.Slice(0, v)
		if err != nil {
			t.Fatal(err)
		}
		sum += s.Total()
	}
	if sum != cube.Total() {
		t.Errorf("slices sum to %d, cube total %d", sum, cube.Total())
	}
}

func TestStoreStats(t *testing.T) {
	ds := fig1Dataset(t)
	store, err := BuildStore(ds, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.Attributes != 2 || st.Cubes != 3 {
		t.Errorf("stats = %+v", st)
	}
	// Cells: A1 cube 4·2=8, A2 cube 3·2=6, pair 4·3·2=24 → 38.
	if st.Cells != 38 {
		t.Errorf("cells = %d, want 38", st.Cells)
	}
	if st.Bytes != 38*8 {
		t.Errorf("bytes = %d", st.Bytes)
	}
	if st.MaxCubeCells != 24 {
		t.Errorf("max cube = %d, want 24 (Fig. 1's cube)", st.MaxCubeCells)
	}
}

func TestRuleCountSaturates(t *testing.T) {
	// A cube whose declared dims multiply past the int64 range must
	// report the MaxInt64 ceiling, never a wrapped-negative byte budget
	// (the engine LRU accounts cache size in SizeBytes).
	c := &Cube{dims: []int{1 << 31, 1 << 31, 1 << 31}, numClasses: 4}
	if got := c.RuleCount(); got != math.MaxInt64 {
		t.Fatalf("RuleCount = %d, want MaxInt64", got)
	}
	if got := c.SizeBytes(); got != math.MaxInt64 {
		t.Fatalf("SizeBytes = %d, want MaxInt64", got)
	}
	// Near the boundary: 2^31 × 2^30 × 2 = 2^62 cells fits an int64,
	// but the 8-bytes-per-cell step would overflow — SizeBytes must
	// still saturate while RuleCount stays exact and positive.
	near := &Cube{dims: []int{1 << 31, 1 << 30}, numClasses: 2}
	if got := near.RuleCount(); got != 1<<62 {
		t.Fatalf("RuleCount = %d, want 2^62", got)
	}
	if got := near.SizeBytes(); got != math.MaxInt64 {
		t.Fatalf("SizeBytes = %d, want MaxInt64 (8× cell count overflows)", got)
	}
}
