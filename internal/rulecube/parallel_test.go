package rulecube_test

import (
	"testing"

	"opmap/internal/rulecube"
	"opmap/internal/workload"
)

// TestParallelStoreMatchesSerial: pair counting must be identical under
// any parallelism.
func TestParallelStoreMatchesSerial(t *testing.T) {
	ds, err := workload.Scale(workload.ScaleConfig{Seed: 3, Records: 20000, Attrs: 12})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := rulecube.BuildStore(ds, rulecube.StoreOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 16} {
		parallel, err := rulecube.BuildStore(ds, rulecube.StoreOptions{Parallelism: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if parallel.CubeCount() != serial.CubeCount() {
			t.Fatalf("workers=%d: cube count %d != %d", workers, parallel.CubeCount(), serial.CubeCount())
		}
		attrs := serial.Attrs()
		for i, a := range attrs {
			for _, b := range attrs[i+1:] {
				sc := serial.Cube2(a, b)
				pc := parallel.Cube2(a, b)
				if pc == nil {
					t.Fatalf("workers=%d: pair (%d,%d) missing", workers, a, b)
				}
				sc.ForEach(func(values []int32, class int32, count int64) {
					n, err := pc.Count(values, class)
					if err != nil {
						t.Fatal(err)
					}
					if n != count {
						t.Fatalf("workers=%d: pair (%d,%d) cell %v/%d: %d != %d",
							workers, a, b, values, class, n, count)
					}
				})
			}
		}
	}
}

func TestParallelStoreMoreWorkersThanPairs(t *testing.T) {
	ds, err := workload.Scale(workload.ScaleConfig{Seed: 3, Records: 2000, Attrs: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 3 pairs, 64 requested workers: must clamp and still work.
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{Parallelism: 64})
	if err != nil {
		t.Fatal(err)
	}
	if store.CubeCount() != 3+3 {
		t.Errorf("cube count = %d, want 6", store.CubeCount())
	}
}
