package rulecube_test

import (
	"fmt"
	"testing"

	"opmap/internal/rulecube"
	"opmap/internal/workload"
)

// TestParallelStoreMatchesSerial: pair counting must be identical under
// any parallelism.
func TestParallelStoreMatchesSerial(t *testing.T) {
	ds, err := workload.Scale(workload.ScaleConfig{Seed: 3, Records: 20000, Attrs: 12})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := rulecube.BuildStore(ds, rulecube.StoreOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 16} {
		parallel, err := rulecube.BuildStore(ds, rulecube.StoreOptions{Parallelism: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if parallel.CubeCount() != serial.CubeCount() {
			t.Fatalf("workers=%d: cube count %d != %d", workers, parallel.CubeCount(), serial.CubeCount())
		}
		attrs := serial.Attrs()
		for i, a := range attrs {
			for _, b := range attrs[i+1:] {
				sc := serial.Cube2(a, b)
				pc := parallel.Cube2(a, b)
				if pc == nil {
					t.Fatalf("workers=%d: pair (%d,%d) missing", workers, a, b)
				}
				sc.ForEach(func(values []int32, class int32, count int64) {
					n, err := pc.Count(values, class)
					if err != nil {
						t.Fatal(err)
					}
					if n != count {
						t.Fatalf("workers=%d: pair (%d,%d) cell %v/%d: %d != %d",
							workers, a, b, values, class, n, count)
					}
				})
			}
		}
	}
}

// TestConcurrentReadersDuringForEach hammers a finished store with
// concurrent readers: several goroutines iterate the same cubes with
// ForEach while others read counts and confidences point-wise. A
// built store is immutable, so this must be race-free — the test
// exists to let `go test -race` prove it and to catch any future
// mutation sneaking into the read paths (lazy caches, memoization).
func TestConcurrentReadersDuringForEach(t *testing.T) {
	ds, err := workload.Scale(workload.ScaleConfig{Seed: 7, Records: 5000, Attrs: 6})
	if err != nil {
		t.Fatal(err)
	}
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	attrs := store.Attrs()
	if len(attrs) < 2 {
		t.Fatalf("need at least 2 attributes, got %d", len(attrs))
	}
	cube := store.Cube2(attrs[0], attrs[1])
	if cube == nil {
		t.Fatal("pair cube missing")
	}

	const readers = 8
	errs := make(chan error, 2*readers)
	done := make(chan struct{})
	// Half the goroutines sweep with ForEach...
	for g := 0; g < readers; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for rep := 0; rep < 3; rep++ {
				cube.ForEach(func(values []int32, class int32, count int64) {
					n, err := cube.Count(values, class)
					if err != nil {
						errs <- err
						return
					}
					if n != count {
						errs <- fmt.Errorf("cell %v/%d: concurrent Count %d != ForEach count %d", values, class, n, count)
					}
				})
			}
		}()
	}
	// ...while the other half reads point-wise state: marginals,
	// confidences and scale factors across every 1-D cube.
	for g := 0; g < readers; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for rep := 0; rep < 3; rep++ {
				for _, a := range attrs {
					c1 := store.Cube1(a)
					if _, err := c1.ValueMarginals(0); err != nil {
						errs <- err
						return
					}
					c1.ScaleFactors()
					for v := 0; v < c1.Dim(0); v++ {
						for k := 0; k < c1.NumClasses(); k++ {
							if _, err := c1.Confidence([]int32{int32(v)}, int32(k)); err != nil {
								errs <- err
								return
							}
						}
					}
				}
			}
		}()
	}
	for i := 0; i < 2*readers; i++ {
		<-done
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestParallelStoreMoreWorkersThanPairs(t *testing.T) {
	ds, err := workload.Scale(workload.ScaleConfig{Seed: 3, Records: 2000, Attrs: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 3 pairs, 64 requested workers: must clamp and still work.
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{Parallelism: 64})
	if err != nil {
		t.Fatal(err)
	}
	if store.CubeCount() != 3+3 {
		t.Errorf("cube count = %d, want 6", store.CubeCount())
	}
}
