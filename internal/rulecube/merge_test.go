package rulecube

import (
	"reflect"
	"strings"
	"testing"

	"opmap/internal/dataset"
)

// shardDataset builds a three-attribute categorical dataset (A1, A2,
// class C) from "a1 a2 c" rows with fresh dictionaries, so two shards
// built from different row sets see genuinely different code orders.
func shardDataset(t *testing.T, rows ...string) *dataset.Dataset {
	t.Helper()
	b, err := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "A1", Kind: dataset.Categorical},
			{Name: "A2", Kind: dataset.Categorical},
			{Name: "C", Kind: dataset.Categorical},
		},
		ClassIndex: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := b.AddRow(strings.Fields(r)); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// Shard rows chosen so the two shards have disjoint first-appearance
// orders: shard2 opens with labels shard1 never saw.
var (
	shard1Rows = []string{
		"a e yes", "a e no", "b f yes", "a g no", "b e yes", "? f no",
	}
	shard2Rows = []string{
		"c h no", "c e maybe", "a h yes", "d f no", "c ? maybe",
	}
)

func TestAddCounts(t *testing.T) {
	dst := []int64{1, 2, 3, 4}
	AddCounts(dst, []int64{10, 0, 5})
	if want := []int64{11, 2, 8, 4}; !reflect.DeepEqual(dst, want) {
		t.Fatalf("dst = %v, want %v", dst, want)
	}
}

func TestAddDelta(t *testing.T) {
	dst := []int64{1, 2, 3}
	AddDelta(dst, Delta{0: 5, 2: -1})
	if want := []int64{6, 2, 2}; !reflect.DeepEqual(dst, want) {
		t.Fatalf("dst = %v, want %v", dst, want)
	}
}

// TestStoreMergeMatchesSinglePass is the core merge oracle: build
// stores over two shards with non-identical dictionaries, merge, and
// require the result DeepEqual to the single-pass store over the
// concatenated rows — dataset included.
func TestStoreMergeMatchesSinglePass(t *testing.T) {
	ds1 := shardDataset(t, shard1Rows...)
	ds2 := shardDataset(t, shard2Rows...)
	st1, err := BuildStore(ds1, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := BuildStore(ds2, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st1.Merge(st2); err != nil {
		t.Fatal(err)
	}

	all := append(append([]string(nil), shard1Rows...), shard2Rows...)
	dsAll := shardDataset(t, all...)
	want, err := BuildStore(dsAll, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The merged store's dataset holds only shard1's rows (stores merge
	// counts, not rows — the session layer appends rows separately), so
	// append shard2's remapped rows before the full comparison.
	rm, err := st1.Dataset().UnionDicts(ds2)
	if err != nil {
		t.Fatal(err)
	}
	if err := st1.Dataset().AppendRemapped(ds2, rm); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st1, want) {
		t.Fatalf("merged store differs from single-pass store\n got: %+v\nwant: %+v", st1.Stats(), want.Stats())
	}
}

// TestStoreMergeZeroRowShard checks both positions of an empty shard:
// empty-into-populated and populated-into-empty.
func TestStoreMergeZeroRowShard(t *testing.T) {
	buildPair := func() (*Store, *Store, *Store) {
		t.Helper()
		empty, err := BuildStore(shardDataset(t), StoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		full, err := BuildStore(shardDataset(t, shard1Rows...), StoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := BuildStore(shardDataset(t, shard1Rows...), StoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return empty, full, want
	}

	t.Run("empty destination", func(t *testing.T) {
		empty, full, want := buildPair()
		if err := empty.Merge(full); err != nil {
			t.Fatal(err)
		}
		rm, err := empty.Dataset().UnionDicts(full.Dataset())
		if err != nil {
			t.Fatal(err)
		}
		if err := empty.Dataset().AppendRemapped(full.Dataset(), rm); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(empty, want) {
			t.Fatalf("empty-destination merge differs from single-pass store")
		}
	})
	t.Run("empty source", func(t *testing.T) {
		empty, full, want := buildPair()
		if err := full.Merge(empty); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(full, want) {
			t.Fatalf("empty-source merge changed the store")
		}
	})
}

func TestStoreMergeSchemaMismatchNamesAttribute(t *testing.T) {
	st1, err := BuildStore(shardDataset(t, shard1Rows...), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "A1", Kind: dataset.Categorical},
			{Name: "B2", Kind: dataset.Categorical},
			{Name: "C", Kind: dataset.Categorical},
		},
		ClassIndex: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddRow([]string{"a", "e", "yes"}); err != nil {
		t.Fatal(err)
	}
	other, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st2, err := BuildStore(other, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	err = st1.Merge(st2)
	if err == nil || !strings.Contains(err.Error(), `"A2"`) {
		t.Fatalf("err = %v, want mismatch naming \"A2\"", err)
	}
}

func TestCubeMergeDimensionMismatch(t *testing.T) {
	ds := shardDataset(t, shard1Rows...)
	c1, err := Build(ds, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Build(ds, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Merge(c2, nil, nil); err == nil {
		t.Fatal("merging cubes over different attributes should fail")
	}
	pair, err := Build(ds, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Merge(pair, nil, nil); err == nil {
		t.Fatal("merging cubes of different dimensionality should fail")
	}
}

// TestIngestRowsMatchesApplyRow: a batched ingest must land exactly
// where the equivalent ApplyRow sequence lands.
func TestIngestRowsMatchesApplyRow(t *testing.T) {
	base := shardDataset(t, shard1Rows...)
	stBatch, err := BuildStore(base, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stRow, err := BuildStore(shardDataset(t, shard1Rows...), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Grow the dictionaries the way appended rows would, including a
	// label unseen at build time, then apply the same coded rows both
	// ways. Row layout: [A1, A2, C]; -1 is a missing value.
	growDicts := func(st *Store) {
		st.Dataset().Column(0).Dict.Code("z")
		st.Dataset().ClassDict().Code("new")
	}
	growDicts(stBatch)
	growDicts(stRow)
	rows := [][]int32{
		{0, 1, 0},
		{2, 0, 2}, // the fresh "z" value and "new" class
		{-1, 2, 1},
		{1, -1, 0},
		{2, 2, -1}, // missing class: skipped everywhere
	}
	classes := make([]int32, len(rows))
	for i, r := range rows {
		classes[i] = r[2]
	}
	if err := stBatch.IngestRows(rows, classes); err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if err := stRow.ApplyRow(r, classes[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(stBatch, stRow) {
		t.Fatal("batched IngestRows differs from row-by-row ApplyRow")
	}
}

func TestIngestRowsValidatesBeforeMutating(t *testing.T) {
	ds := shardDataset(t, shard1Rows...)
	c, err := Build(ds, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	before := append([]int64(nil), c.counts...)
	total := c.total
	// Second row's value code is beyond the dimension (dict not grown):
	// the whole batch must be rejected with nothing applied.
	_, err = c.IngestRows([][]int32{{0, 0, 0}, {99, 0, 0}}, []int32{0, 0})
	if err == nil {
		t.Fatal("expected error for out-of-range code")
	}
	if !reflect.DeepEqual(c.counts, before) || c.total != total {
		t.Fatal("failed batch mutated the cube")
	}
}

func TestIngestRowsLengthMismatch(t *testing.T) {
	ds := shardDataset(t, shard1Rows...)
	c, err := Build(ds, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestRows([][]int32{{0, 0, 0}}, []int32{0, 1}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}
