package rulecube_test

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"opmap/internal/rulecube"
)

// boundsStream builds the prefix of a store stream by hand: magic,
// version, and whatever the test appends. It lets each case plant one
// hostile length field at a known position without bit-hunting through
// a real stream.
type boundsStream struct{ buf bytes.Buffer }

func (s *boundsStream) uvarint(v uint64) *boundsStream {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	s.buf.Write(b[:n])
	return s
}

func (s *boundsStream) str(v string) *boundsStream {
	s.uvarint(uint64(len(v)))
	s.buf.WriteString(v)
	return s
}

func newBoundsStream() *boundsStream {
	s := &boundsStream{}
	s.buf.WriteString("OMAPCUBE")
	s.uvarint(1) // store version
	return s
}

// TestReadStoreBounds pins the read-side allocation guards: a hostile
// length field must fail before any large allocation, with an error
// naming the block it sits in.
func TestReadStoreBounds(t *testing.T) {
	const huge = 1 << 30
	cases := []struct {
		name    string
		stream  *boundsStream
		wantSub []string
	}{
		{
			name: "attribute name length",
			// One attribute at index 0 whose name claims 1 GiB.
			stream:  newBoundsStream().uvarint(1).uvarint(0).uvarint(huge),
			wantSub: []string{"attribute 0 name", "exceeds limit"},
		},
		{
			name: "attribute dictionary size",
			// Valid name, then a dictionary claiming 1<<30 entries.
			stream:  newBoundsStream().uvarint(1).uvarint(0).str("A1").uvarint(huge),
			wantSub: []string{"attribute 0 dictionary", "exceeds limit"},
		},
		{
			name: "dictionary label length",
			// Dictionary of one label whose length claims 1 GiB.
			stream:  newBoundsStream().uvarint(1).uvarint(0).str("A1").uvarint(1).uvarint(huge),
			wantSub: []string{"attribute 0 dictionary", "exceeds limit"},
		},
		{
			name: "class name length",
			// One complete attribute (empty dict), class at index 1, then
			// an oversized class name.
			stream:  newBoundsStream().uvarint(1).uvarint(0).str("A1").uvarint(0).uvarint(1).uvarint(huge),
			wantSub: []string{"class name", "exceeds limit"},
		},
		{
			name:    "class dictionary size",
			stream:  newBoundsStream().uvarint(1).uvarint(0).str("A1").uvarint(0).uvarint(1).str("C").uvarint(huge),
			wantSub: []string{"class dictionary", "exceeds limit"},
		},
		{
			name:    "attribute count",
			stream:  newBoundsStream().uvarint(huge),
			wantSub: []string{"attribute count"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := rulecube.ReadStore(bytes.NewReader(tc.stream.buf.Bytes()))
			if err == nil {
				t.Fatal("hostile stream accepted")
			}
			for _, sub := range tc.wantSub {
				if !strings.Contains(err.Error(), sub) {
					t.Errorf("error %q does not name %q", err, sub)
				}
			}
		})
	}
}
