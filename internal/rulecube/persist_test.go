package rulecube_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"opmap/internal/compare"
	"opmap/internal/dataset"
	"opmap/internal/rulecube"
	"opmap/internal/workload"
)

// fig1Dataset mirrors the in-package fixture (the paper's Fig. 1 cube)
// for this external test package.
func fig1Dataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	b, err := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "A1", Kind: dataset.Categorical},
			{Name: "A2", Kind: dataset.Categorical},
			{Name: "C", Kind: dataset.Categorical},
		},
		ClassIndex: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	b.WithDict(0, dataset.DictionaryOf("a", "b", "c", "d"))
	b.WithDict(1, dataset.DictionaryOf("e", "f", "g"))
	b.WithDict(2, dataset.DictionaryOf("yes", "no"))
	add := func(a1, a2, c string, n int) {
		for i := 0; i < n; i++ {
			if err := b.AddRow([]string{a1, a2, c}); err != nil {
				t.Fatal(err)
			}
		}
	}
	add("a", "e", "yes", 100)
	add("a", "e", "no", 50)
	add("a", "g", "yes", 8)
	add("b", "e", "yes", 200)
	add("b", "f", "no", 150)
	add("c", "f", "yes", 150)
	add("c", "g", "no", 200)
	add("d", "g", "yes", 150)
	add("d", "e", "no", 150)
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestStoreRoundTrip(t *testing.T) {
	ds := fig1Dataset(t)
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rulecube.WriteStore(&buf, store); err != nil {
		t.Fatal(err)
	}
	back, err := rulecube.ReadStore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.CubeCount() != store.CubeCount() {
		t.Fatalf("cube count %d != %d", back.CubeCount(), store.CubeCount())
	}
	// Every cell of every cube survives.
	for _, a := range store.Attrs() {
		orig := store.Cube1(a)
		got := back.Cube1(a)
		if got == nil {
			t.Fatalf("cube %d missing after round trip", a)
		}
		orig.ForEach(func(values []int32, class int32, count int64) {
			n, err := got.Count(values, class)
			if err != nil {
				t.Fatal(err)
			}
			if n != count {
				t.Fatalf("cube %d cell %v/%d: %d != %d", a, values, class, n, count)
			}
		})
		if got.Total() != orig.Total() {
			t.Fatalf("cube %d total changed", a)
		}
	}
	pair := store.Cube2(0, 1)
	gotPair := back.Cube2(0, 1)
	if gotPair == nil {
		t.Fatal("pair cube missing")
	}
	pair.ForEach(func(values []int32, class int32, count int64) {
		n, err := gotPair.Count(values, class)
		if err != nil {
			t.Fatal(err)
		}
		if n != count {
			t.Fatalf("pair cell %v/%d: %d != %d", values, class, n, count)
		}
	})
	// Metadata survives: names, dictionaries, class labels.
	if back.Dataset().Attr(0).Name != "A1" {
		t.Errorf("attr name = %q", back.Dataset().Attr(0).Name)
	}
	if back.Cube1(0).Dict(0).Label(0) != "a" {
		t.Error("value dictionary lost")
	}
	if back.Dataset().ClassDict().Label(1) != "no" {
		t.Error("class dictionary lost")
	}
	if back.Dataset().ClassIndex() != ds.ClassIndex() {
		t.Errorf("class index = %d, want %d", back.Dataset().ClassIndex(), ds.ClassIndex())
	}
}

func TestStoreFileRoundTrip(t *testing.T) {
	ds := fig1Dataset(t)
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cubes.omap")
	if err := rulecube.WriteStoreFile(path, store); err != nil {
		t.Fatal(err)
	}
	back, err := rulecube.ReadStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.CubeCount() != store.CubeCount() {
		t.Error("file round trip lost cubes")
	}
	if _, err := rulecube.ReadStoreFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestReadStoreDetectsCorruption(t *testing.T) {
	ds := fig1Dataset(t)
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rulecube.WriteStore(&buf, store); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, good...)
	bad[0] ^= 0xFF
	if _, err := rulecube.ReadStore(bytes.NewReader(bad)); err == nil {
		t.Error("corrupted magic accepted")
	}
	// Flipped byte in the body → CRC mismatch (or structural error).
	bad = append([]byte{}, good...)
	bad[len(bad)/2] ^= 0x01
	if _, err := rulecube.ReadStore(bytes.NewReader(bad)); err == nil {
		t.Error("corrupted body accepted")
	}
	// Truncation.
	if _, err := rulecube.ReadStore(bytes.NewReader(good[:len(good)-6])); err == nil {
		t.Error("truncated stream accepted")
	}
	// Flipped CRC trailer.
	bad = append([]byte{}, good...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := rulecube.ReadStore(bytes.NewReader(bad)); err == nil {
		t.Error("corrupted CRC accepted")
	}
}

// TestPersistedStoreServesComparisons is the workflow test: cubes built
// offline, saved, reloaded in a fresh process, and used for the paper's
// comparison — without the raw data.
func TestPersistedStoreServesComparisons(t *testing.T) {
	ds, gt, err := workload.CallLog(workload.CallLogConfig{Seed: 4, Records: 30000, NoiseAttrs: 2})
	if err != nil {
		t.Fatal(err)
	}
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rulecube.WriteStore(&buf, store); err != nil {
		t.Fatal(err)
	}
	back, err := rulecube.ReadStore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	attr := ds.AttrIndex(gt.PhoneAttr)
	v1, _ := ds.Column(attr).Dict.Lookup(gt.GoodPhone)
	v2, _ := ds.Column(attr).Dict.Lookup(gt.BadPhone)
	cls, _ := ds.ClassDict().Lookup(gt.DropClass)
	in := compare.Input{Attr: attr, V1: v1, V2: v2, Class: cls}

	orig, err := compare.New(store).Compare(in, compare.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := compare.New(back).Compare(in, compare.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(orig.Ranked) != len(reloaded.Ranked) {
		t.Fatal("ranking sizes differ after reload")
	}
	for i := range orig.Ranked {
		if orig.Ranked[i].Name != reloaded.Ranked[i].Name ||
			orig.Ranked[i].Score != reloaded.Ranked[i].Score {
			t.Fatalf("rank %d differs after reload: %+v vs %+v",
				i, orig.Ranked[i], reloaded.Ranked[i])
		}
	}
}
