package rulecube

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"opmap/internal/dataset"
	"opmap/internal/testutil"
)

// Differential tests for k ≥ 3 cubes: every cell of a 3-D/4-D cube —
// built directly, batch-built, composed through slice/dice/rollup, or
// merged from row shards — against a brute-force recount of the rows.

// naiveCells recounts the cube over attrs straight off the dataset:
// one map entry per nonzero cell, keyed by the printed coordinate
// vector plus class. Rows with the class or any dimension missing are
// skipped, mirroring Build.
func naiveCells(ds *dataset.Dataset, attrs []int) (cells map[string]int64, total int64) {
	cells = make(map[string]int64)
	coord := make([]int32, len(attrs))
	for r := 0; r < ds.NumRows(); r++ {
		c := ds.ClassCode(r)
		if c < 0 {
			continue
		}
		ok := true
		for i, a := range attrs {
			v := ds.CatCode(r, a)
			if v < 0 {
				ok = false
				break
			}
			coord[i] = v
		}
		if !ok {
			continue
		}
		cells[fmt.Sprint(coord, c)]++
		total++
	}
	return cells, total
}

// cubeCells flattens a cube's nonzero cells into the naive map form.
func cubeCells(c *Cube) map[string]int64 {
	out := make(map[string]int64)
	c.ForEach(func(values []int32, class int32, count int64) {
		if count != 0 {
			out[fmt.Sprint(values, class)] += count
		}
	})
	return out
}

// TestNDCubeMatchesBruteForce checks every cell of random 3-D and 4-D
// cubes, built one at a time and through the shared-scan batch, against
// the brute-force recount.
func TestNDCubeMatchesBruteForce(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	for _, k := range []int{3, 4} {
		for trial := int64(0); trial < 3; trial++ {
			ds := randomDataset(t, 40*int64(k)+trial, 2500, 5, 4, 3, 0.05)
			rng := rand.New(rand.NewSource(trial + 500))
			attrs := rng.Perm(5)[:k]

			cube, err := Build(ds, attrs)
			if err != nil {
				t.Fatal(err)
			}
			want, total := naiveCells(ds, attrs)
			if cube.Total() != total {
				t.Fatalf("k=%d trial %d: total %d, brute force %d", k, trial, cube.Total(), total)
			}
			if got := cubeCells(cube); !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d trial %d attrs %v: cube cells differ from brute force", k, trial, attrs)
			}

			// The batch path must produce the identical cube, including
			// when the request rides alongside others and a duplicate.
			reqs := []CubeReq{CubeReqOf(attrs), {A: attrs[0], B: attrs[1]}, CubeReqOf(attrs)}
			cubes, err := BuildMany(context.Background(), ds, reqs)
			if err != nil {
				t.Fatal(err)
			}
			for _, i := range []int{0, 2} {
				if cubes[i].Total() != total {
					t.Fatalf("k=%d trial %d: BuildMany[%d] total %d, want %d", k, trial, i, cubes[i].Total(), total)
				}
				if got := cubeCells(cubes[i]); !reflect.DeepEqual(got, want) {
					t.Fatalf("k=%d trial %d: BuildMany[%d] cells differ from brute force", k, trial, i)
				}
			}
		}
	}
}

// TestNDSliceDiceRollupRoundTrip composes the operators on a 4-D cube
// and checks each result cell-for-cell against a direct recount of the
// equivalent filtered or marginalized rows.
func TestNDSliceDiceRollupRoundTrip(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	ds := randomDataset(t, 77, 3000, 4, 4, 3, 0.04)
	cube, err := Build(ds, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}

	// Slice a1=2: identical to a 3-D brute force over the matching rows
	// (the 4-D cube skipped rows with ANY dim missing; mirror that).
	sliced, err := cube.Slice(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	sub := ds.Filter(func(r int) bool {
		return ds.CatCode(r, 0) >= 0 && ds.CatCode(r, 1) == 2 &&
			ds.CatCode(r, 2) >= 0 && ds.CatCode(r, 3) >= 0
	})
	want, total := naiveCells(sub, []int{0, 2, 3})
	if sliced.Total() != total {
		t.Fatalf("slice total %d, brute force %d", sliced.Total(), total)
	}
	if got := cubeCells(sliced); !reflect.DeepEqual(got, want) {
		t.Fatal("slice cells differ from brute force on the filtered rows")
	}

	// Rollup of a3 from the slice: the remaining 2-D cube over (a0,a2).
	rolled, err := sliced.Rollup(2)
	if err != nil {
		t.Fatal(err)
	}
	want2, total2 := naiveCells(sub, []int{0, 2})
	// naiveCells over (a0,a2) counts rows regardless of a3, but the
	// rolled cube descends from the 4-D build, which required a3 to be
	// present — sub already filters a3, so the two populations agree.
	if rolled.Total() != total2 {
		t.Fatalf("rollup total %d, brute force %d", rolled.Total(), total2)
	}
	if got := cubeCells(rolled); !reflect.DeepEqual(got, want2) {
		t.Fatal("rollup cells differ from brute force")
	}

	// Dice to a value subset: equal to the brute force with the other
	// values filtered out.
	keep := []int32{0, 3}
	diced, err := cube.Dice(2, keep)
	if err != nil {
		t.Fatal(err)
	}
	dsub := ds.Filter(func(r int) bool {
		v := ds.CatCode(r, 2)
		return v == 0 || v == 3
	})
	wantD, totalD := naiveCells(dsub, []int{0, 1, 2, 3})
	if diced.Total() != totalD {
		t.Fatalf("dice total %d, brute force %d", diced.Total(), totalD)
	}
	// Dice re-encodes the restricted dimension to the kept values in
	// order; translate the diced coordinates back to the original codes
	// before comparing against the recount.
	gotD := make(map[string]int64)
	diced.ForEach(func(values []int32, class int32, n int64) {
		if n != 0 {
			orig := append([]int32(nil), values...)
			orig[2] = keep[values[2]]
			gotD[fmt.Sprint(orig, class)] += n
		}
	})
	if !reflect.DeepEqual(gotD, wantD) {
		t.Fatal("dice cells differ from brute force")
	}

	// Identity dice changes nothing.
	all, err := cube.Dice(0, []int32{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cubeCells(all), cubeCells(cube)) || all.Total() != cube.Total() {
		t.Fatal("identity dice changed cells")
	}
}

// TestNDMergeAdditivity shards the rows in two, builds a k-D cube per
// shard, merges, and requires exact equality with the whole-dataset
// brute force — the additive-merge invariant at k ≥ 3.
func TestNDMergeAdditivity(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	for _, k := range []int{3, 4} {
		ds := randomDataset(t, 321+int64(k), 2800, 4, 4, 3, 0.05)
		attrs := []int{0, 1, 2, 3}[:k]
		half := ds.NumRows() / 2
		lo := ds.Filter(func(r int) bool { return r < half })
		hi := ds.Filter(func(r int) bool { return r >= half })

		a, err := Build(lo, attrs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(hi, attrs)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Merge(b, nil, nil); err != nil {
			t.Fatal(err)
		}
		want, total := naiveCells(ds, attrs)
		if a.Total() != total {
			t.Fatalf("k=%d: merged total %d, brute force %d", k, a.Total(), total)
		}
		if got := cubeCells(a); !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d: merged cells differ from whole-dataset brute force", k)
		}
	}
}
