package rulecube_test

import (
	"bytes"
	"testing"

	"opmap/internal/rulecube"
)

// FuzzReadStore hardens the persistence reader against arbitrary bytes:
// whatever the input, ReadStore must return an error or a usable store —
// never panic, never allocate absurdly.
func FuzzReadStore(f *testing.F) {
	// Seed with a valid store and a few mutations of it.
	ds := fig1Dataset(f)
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rulecube.WriteStore(&buf, store); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("OMAPCUBE"))
	f.Add([]byte{})
	mutated := append([]byte{}, valid...)
	mutated[len(mutated)/3] ^= 0x40
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := rulecube.ReadStore(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed store must answer basic queries without
		// panicking.
		for _, a := range s.Attrs() {
			c := s.Cube1(a)
			if c == nil {
				continue
			}
			_ = c.ClassMarginals()
			_ = c.RuleCount()
		}
	})
}
