package rulecube

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"opmap/internal/atomicfile"
	"opmap/internal/dataset"
)

// Persistence for cube stores. The deployed system generates cubes
// offline ("e.g., in the evening", Section V.C) and serves interactive
// sessions from them; that workflow needs a durable format. The format
// is a little-endian binary stream with a magic header, a schema block
// (attribute names and dictionaries), one block per cube, and a CRC32
// trailer. Counts are varint-encoded because most cells in sparse
// high-cardinality cubes are zero or small.

const (
	storeMagic   = "OMAPCUBE"
	storeVersion = 1

	// maxCubeCells bounds a single cube's cell count on read: corrupt or
	// hostile streams must not drive huge allocations. 1<<24 cells
	// (128 MiB of counts) is far beyond any real 3-D rule cube.
	maxCubeCells = 1 << 24

	// maxStringLen bounds every length-prefixed string on read. Attribute
	// names and dictionary labels come from CSV headers and cell values;
	// 1 MiB is far beyond any real one and small enough that a corrupt
	// uvarint cannot drive a large allocation before the CRC check.
	maxStringLen = 1 << 20

	// maxDictEntries bounds dictionary sizes on read, mirroring
	// maxCubeCells: a dictionary can have at most one entry per dataset
	// row, and 16M distinct labels is past any dataset this serves.
	maxDictEntries = 1 << 24
)

type crcWriter struct {
	w   *bufio.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

type crcReader struct {
	r   *bufio.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

func (c *crcReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.crc = crc32.Update(c.crc, crc32.IEEETable, []byte{b})
	}
	return b, err
}

func writeUvarint(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w io.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// readString reads one length-prefixed string, rejecting lengths over
// maxStringLen before allocating. block names the stream section being
// decoded so corrupt-file errors point at the offending block.
func readString(r *crcReader, block string) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("rulecube: %s: string length %d exceeds limit %d; corrupt stream", block, n, maxStringLen)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeDict(w io.Writer, d *dataset.Dictionary) error {
	labels := d.Labels()
	if err := writeUvarint(w, uint64(len(labels))); err != nil {
		return err
	}
	for _, l := range labels {
		if err := writeString(w, l); err != nil {
			return err
		}
	}
	return nil
}

// readDict reads one dictionary block, rejecting entry counts over
// maxDictEntries before any label is decoded. block names the stream
// section for error messages.
func readDict(r *crcReader, block string) (*dataset.Dictionary, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxDictEntries {
		return nil, fmt.Errorf("rulecube: %s: dictionary size %d exceeds limit %d; corrupt stream", block, n, maxDictEntries)
	}
	d := dataset.NewDictionary()
	for i := uint64(0); i < n; i++ {
		l, err := readString(r, block)
		if err != nil {
			return nil, err
		}
		d.Code(l)
	}
	return d, nil
}

// WriteStore serializes the store to w. Only cube contents and the
// metadata needed to query them travel; the raw dataset does not.
func WriteStore(w io.Writer, s *Store) error {
	cw := &crcWriter{w: bufio.NewWriter(w)}
	if _, err := io.WriteString(cw, storeMagic); err != nil {
		return err
	}
	if err := writeUvarint(cw, storeVersion); err != nil {
		return err
	}

	ds := s.ds
	// Schema block: attribute names + dicts for the store's attributes
	// and the class.
	if err := writeUvarint(cw, uint64(len(s.attrs))); err != nil {
		return err
	}
	for _, a := range s.attrs {
		if err := writeUvarint(cw, uint64(a)); err != nil {
			return err
		}
		if err := writeString(cw, ds.Attr(a).Name); err != nil {
			return err
		}
		if err := writeDict(cw, ds.Column(a).Dict); err != nil {
			return err
		}
	}
	if err := writeUvarint(cw, uint64(ds.ClassIndex())); err != nil {
		return err
	}
	if err := writeString(cw, ds.Attr(ds.ClassIndex()).Name); err != nil {
		return err
	}
	if err := writeDict(cw, ds.ClassDict()); err != nil {
		return err
	}

	writeCube := func(c *Cube) error {
		if err := writeUvarint(cw, uint64(len(c.attrIdx))); err != nil {
			return err
		}
		for _, a := range c.attrIdx {
			if err := writeUvarint(cw, uint64(a)); err != nil {
				return err
			}
		}
		if err := writeUvarint(cw, uint64(c.total)); err != nil {
			return err
		}
		if err := writeUvarint(cw, uint64(len(c.counts))); err != nil {
			return err
		}
		for _, n := range c.counts {
			if err := writeUvarint(cw, uint64(n)); err != nil {
				return err
			}
		}
		return nil
	}

	oneAttrs := s.oneDAttrs()
	if err := writeUvarint(cw, uint64(len(oneAttrs))); err != nil {
		return err
	}
	for _, a := range oneAttrs {
		if err := writeCube(s.Cube1(a)); err != nil {
			return err
		}
	}
	pairs := s.twoDPairs()
	if err := writeUvarint(cw, uint64(len(pairs))); err != nil {
		return err
	}
	for _, p := range pairs {
		if err := writeCube(s.Cube2(p[0], p[1])); err != nil {
			return err
		}
	}

	// Trailer: CRC of everything written so far.
	crc := cw.crc
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], crc)
	if _, err := cw.w.Write(buf[:]); err != nil {
		return err
	}
	return cw.w.Flush()
}

// WriteStoreFile is WriteStore to a file path. The write is atomic: the
// stream is staged next to path and renamed over it only once fully
// synced, so a crash mid-write cannot leave a truncated store where the
// next startup expects a good one.
func WriteStoreFile(path string, s *Store) error {
	return atomicfile.WriteFile(path, func(w io.Writer) error {
		return WriteStore(w, s)
	})
}

// ReadStore deserializes a store previously written with WriteStore.
// The returned store answers cube queries; Dataset() returns a schema-
// only dataset with zero rows (RestrictedCube, which needs raw rows, is
// unavailable and returns an error through the empty dataset's counts).
func ReadStore(r io.Reader) (*Store, error) {
	cr := &crcReader{r: bufio.NewReader(r)}
	magic := make([]byte, len(storeMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("rulecube: reading magic: %w", err)
	}
	if string(magic) != storeMagic {
		return nil, fmt.Errorf("rulecube: bad magic %q", magic)
	}
	ver, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, err
	}
	if ver != storeVersion {
		return nil, fmt.Errorf("rulecube: unsupported store version %d", ver)
	}

	nAttrs, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, err
	}
	if nAttrs > 1<<20 {
		return nil, fmt.Errorf("rulecube: attribute count %d implausible", nAttrs)
	}
	type attrMeta struct {
		idx  int
		name string
		dict *dataset.Dictionary
	}
	metas := make([]attrMeta, nAttrs)
	maxIdx := 0
	for i := range metas {
		idx, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, err
		}
		if idx > 1<<20 {
			return nil, fmt.Errorf("rulecube: attribute index %d implausible", idx)
		}
		name, err := readString(cr, fmt.Sprintf("attribute %d name", i))
		if err != nil {
			return nil, err
		}
		dict, err := readDict(cr, fmt.Sprintf("attribute %d dictionary", i))
		if err != nil {
			return nil, err
		}
		metas[i] = attrMeta{idx: int(idx), name: name, dict: dict}
		if int(idx) > maxIdx {
			maxIdx = int(idx)
		}
	}
	classIdx64, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, err
	}
	if classIdx64 > 1<<20 {
		return nil, fmt.Errorf("rulecube: class index %d implausible", classIdx64)
	}
	classIdx := int(classIdx64)
	className, err := readString(cr, "class name")
	if err != nil {
		return nil, err
	}
	classDict, err := readDict(cr, "class dictionary")
	if err != nil {
		return nil, err
	}
	for _, m := range metas {
		if m.idx == classIdx {
			return nil, fmt.Errorf("rulecube: class index %d collides with a stored attribute", classIdx)
		}
	}

	// Rebuild a schema-only dataset so the Store's metadata accessors
	// work: attributes at their original indices, padding any gaps with
	// placeholder attributes.
	width := maxIdx + 1
	if classIdx > maxIdx {
		width = classIdx + 1
	}
	attrs := make([]dataset.Attribute, width)
	for i := range attrs {
		attrs[i] = dataset.Attribute{Name: fmt.Sprintf("__unused_%d", i), Kind: dataset.Categorical}
	}
	for _, m := range metas {
		attrs[m.idx] = dataset.Attribute{Name: m.name, Kind: dataset.Categorical}
	}
	attrs[classIdx] = dataset.Attribute{Name: className, Kind: dataset.Categorical}
	b, err := dataset.NewBuilder(dataset.Schema{Attrs: attrs, ClassIndex: classIdx})
	if err != nil {
		return nil, err
	}
	for _, m := range metas {
		b.WithDict(m.idx, m.dict)
	}
	b.WithDict(classIdx, classDict)
	ds, err := b.Build()
	if err != nil {
		return nil, err
	}

	s := &Store{
		ds:   ds,
		oneD: make(map[int]*Cube),
		twoD: make(map[[2]int]*Cube),
	}
	for _, m := range metas {
		s.attrs = append(s.attrs, m.idx)
	}

	dictOf := func(idx int) (*dataset.Dictionary, string, error) {
		for _, m := range metas {
			if m.idx == idx {
				return m.dict, m.name, nil
			}
		}
		return nil, "", fmt.Errorf("rulecube: cube references unknown attribute %d", idx)
	}

	readCube := func() (*Cube, error) {
		nd, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, err
		}
		if nd > 16 {
			return nil, fmt.Errorf("rulecube: cube dimensionality %d implausible", nd)
		}
		c := &Cube{classDict: classDict, numClasses: classDict.Len()}
		size := c.numClasses
		if size > maxCubeCells {
			return nil, fmt.Errorf("rulecube: class count %d implausible", size)
		}
		for i := uint64(0); i < nd; i++ {
			idx, err := binary.ReadUvarint(cr)
			if err != nil {
				return nil, err
			}
			dict, name, err := dictOf(int(idx))
			if err != nil {
				return nil, err
			}
			c.attrIdx = append(c.attrIdx, int(idx))
			c.attrNames = append(c.attrNames, name)
			c.dicts = append(c.dicts, dict)
			card := dict.Len()
			if card == 0 {
				card = 1
			}
			c.dims = append(c.dims, card)
			size *= card
			if size > maxCubeCells {
				return nil, fmt.Errorf("rulecube: cube exceeds %d cells; corrupt stream", maxCubeCells)
			}
		}
		total, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, err
		}
		c.total = int64(total)
		nCells, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, err
		}
		if int(nCells) != size {
			return nil, fmt.Errorf("rulecube: cube has %d cells, expected %d", nCells, size)
		}
		c.counts = make([]int64, size)
		var sum int64
		for i := range c.counts {
			v, err := binary.ReadUvarint(cr)
			if err != nil {
				return nil, err
			}
			c.counts[i] = int64(v)
			sum += int64(v)
		}
		if sum != c.total {
			return nil, fmt.Errorf("rulecube: cube counts sum to %d, header says %d", sum, c.total)
		}
		return c, nil
	}

	nOne, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nOne; i++ {
		c, err := readCube()
		if err != nil {
			return nil, err
		}
		if len(c.attrIdx) != 1 {
			return nil, fmt.Errorf("rulecube: expected 2-D cube, got %d dims", len(c.attrIdx)+1)
		}
		s.putCube1(c.attrIdx[0], c)
	}
	nTwo, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nTwo; i++ {
		c, err := readCube()
		if err != nil {
			return nil, err
		}
		if len(c.attrIdx) != 2 {
			return nil, fmt.Errorf("rulecube: expected 3-D cube, got %d dims", len(c.attrIdx)+1)
		}
		s.putCube2(c.attrIdx[0], c.attrIdx[1], c)
	}

	// Verify the trailer CRC (computed over everything before it).
	want := cr.crc
	var buf [4]byte
	if _, err := io.ReadFull(cr.r, buf[:]); err != nil {
		return nil, fmt.Errorf("rulecube: reading CRC trailer: %w", err)
	}
	got := binary.LittleEndian.Uint32(buf[:])
	if got != want {
		return nil, fmt.Errorf("rulecube: CRC mismatch: stream %08x, computed %08x", got, want)
	}
	return s, nil
}

// ReadStoreFile is ReadStore from a file path.
func ReadStoreFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadStore(f)
}
