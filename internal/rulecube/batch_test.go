package rulecube

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"opmap/internal/dataset"
	"opmap/internal/faultinject"
	"opmap/internal/obsv"
)

// randomDatasetMissingClass is randomDataset with missing values in the
// class column too, so the batch oracle covers the rows the scan must
// skip entirely.
func randomDatasetMissingClass(t *testing.T, seed int64, rows, attrs, card, classes int, missingRate float64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	schema := dataset.Schema{ClassIndex: attrs}
	for i := 0; i < attrs; i++ {
		schema.Attrs = append(schema.Attrs, dataset.Attribute{Name: fmt.Sprintf("a%d", i), Kind: dataset.Categorical})
	}
	schema.Attrs = append(schema.Attrs, dataset.Attribute{Name: "class", Kind: dataset.Categorical})
	b, err := dataset.NewBuilder(schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < attrs; i++ {
		d := dataset.NewDictionary()
		for v := 0; v < card; v++ {
			d.Code(fmt.Sprintf("v%d", v))
		}
		b.WithDict(i, d)
	}
	cd := dataset.NewDictionary()
	for c := 0; c < classes; c++ {
		cd.Code(fmt.Sprintf("c%d", c))
	}
	b.WithDict(attrs, cd)
	codes := make([]int32, attrs+1)
	for r := 0; r < rows; r++ {
		for i := 0; i <= attrs; i++ {
			if rng.Float64() < missingRate {
				codes[i] = dataset.Missing
			} else if i == attrs {
				codes[i] = int32(rng.Intn(classes))
			} else {
				codes[i] = int32(rng.Intn(card))
			}
		}
		if err := b.AddCodedRow(codes, nil); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestBuildManyOracle checks every request shape against Build: pair
// cubes in both dimension orders, 1-D cubes derived from a pair plan's
// scratch, 1-D cubes with a dedicated plan, and duplicate requests.
func TestBuildManyOracle(t *testing.T) {
	for trial := int64(0); trial < 4; trial++ {
		ds := randomDatasetMissingClass(t, trial, 2500, 5, 4, 3, 0.08)
		reqs := []CubeReq{
			{A: 0, B: 1},
			{A: 1, B: 0}, // reversed dimension order is a distinct cube
			{A: 2, B: 3},
			{A: 0, B: -1}, // derived from pair (0,1)
			{A: 3, B: -1}, // derived from pair (2,3), partner position
			{A: 4, B: -1}, // no covering pair: dedicated 1-D plan
			{A: 0, B: 1},  // duplicate shares the cube
		}
		got, err := BuildMany(context.Background(), ds, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(reqs) {
			t.Fatalf("got %d cubes, want %d", len(got), len(reqs))
		}
		for i, q := range reqs {
			attrs := []int{q.A}
			if q.B >= 0 {
				attrs = append(attrs, q.B)
			}
			want, err := Build(ds, attrs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got[i], want) {
				t.Errorf("trial %d req %d (%+v): batch cube differs from Build", trial, i, q)
			}
		}
		if got[0] != got[6] {
			t.Error("duplicate requests should share one cube")
		}
	}
}

func TestBuildManyValidation(t *testing.T) {
	ds := fig1Dataset(t)
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		reqs []CubeReq
	}{
		{"out of range", []CubeReq{{A: 9, B: -1}}},
		{"negative", []CubeReq{{A: -1, B: -1}}},
		{"class dim", []CubeReq{{A: 2, B: -1}}},
		{"class pair", []CubeReq{{A: 0, B: 2}}},
		{"self pair", []CubeReq{{A: 1, B: 1}}},
	} {
		if _, err := BuildMany(ctx, ds, tc.reqs); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	out, err := BuildMany(ctx, ds, nil)
	if err != nil || out != nil {
		t.Errorf("empty request list: got (%v, %v), want (nil, nil)", out, err)
	}
}

func TestBuildManyCounters(t *testing.T) {
	ds := fig1Dataset(t)
	scans := obsv.Default().Counter(CubeScansCounterName)
	built := obsv.Default().Counter(CubesBuiltCounterName)
	s0, b0 := scans.Value(), built.Value()
	// 4 requests, 3 distinct cubes, one scan.
	_, err := BuildMany(context.Background(), ds, []CubeReq{
		{A: 0, B: 1}, {A: 0, B: -1}, {A: 1, B: -1}, {A: 0, B: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := scans.Value() - s0; d != 1 {
		t.Errorf("scan counter advanced by %d, want 1", d)
	}
	if d := built.Value() - b0; d != 3 {
		t.Errorf("built counter advanced by %d, want 3", d)
	}
	// The sequential path advances the scan counter once per cube.
	s1 := scans.Value()
	if _, err := BuildCube(ds, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if d := scans.Value() - s1; d != 1 {
		t.Errorf("single build advanced scans by %d, want 1", d)
	}
}

func TestBuildManyCancelAndFault(t *testing.T) {
	ds := fig1Dataset(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildMany(ctx, ds, []CubeReq{{A: 0, B: 1}}); err != context.Canceled {
		t.Errorf("canceled ctx: got %v", err)
	}
	disarm, err := faultinject.Arm(faultinject.Fault{Site: faultinject.SiteCubeBatch, Kind: faultinject.Error})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	if _, err := BuildMany(context.Background(), ds, []CubeReq{{A: 0, B: 1}}); err == nil {
		t.Error("armed batch fault: expected error")
	}
}

// TestBuildManySharded forces the parallel shard-and-merge path by
// raising GOMAXPROCS over a dataset large enough to split, and checks
// the merged counts against Build.
func TestBuildManySharded(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rows := 3 * batchShardRows
	ds := randomDatasetMissingClass(t, 42, rows, 3, 4, 2, 0.05)
	got, err := BuildMany(context.Background(), ds, []CubeReq{{A: 0, B: 1}, {A: 2, B: -1}})
	if err != nil {
		t.Fatal(err)
	}
	for i, attrs := range [][]int{{0, 1}, {2}} {
		want, err := Build(ds, attrs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("sharded cube %d differs from Build", i)
		}
	}
}

// BenchmarkBatchVsSequential records the shared-scan win over N
// independent builds for a sweep-shaped request set (one split
// attribute against every other).
func BenchmarkBatchVsSequential(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const rows, attrs, card, classes = 20000, 40, 8, 3
	schema := dataset.Schema{ClassIndex: attrs}
	for i := 0; i < attrs; i++ {
		schema.Attrs = append(schema.Attrs, dataset.Attribute{Name: fmt.Sprintf("a%d", i), Kind: dataset.Categorical})
	}
	schema.Attrs = append(schema.Attrs, dataset.Attribute{Name: "class", Kind: dataset.Categorical})
	bl, err := dataset.NewBuilder(schema)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < attrs; i++ {
		d := dataset.NewDictionary()
		for v := 0; v < card; v++ {
			d.Code(fmt.Sprintf("v%d", v))
		}
		bl.WithDict(i, d)
	}
	cd := dataset.NewDictionary()
	for c := 0; c < classes; c++ {
		cd.Code(fmt.Sprintf("c%d", c))
	}
	bl.WithDict(attrs, cd)
	codes := make([]int32, attrs+1)
	for r := 0; r < rows; r++ {
		for i := 0; i < attrs; i++ {
			codes[i] = int32(rng.Intn(card))
		}
		codes[attrs] = int32(rng.Intn(classes))
		if err := bl.AddCodedRow(codes, nil); err != nil {
			b.Fatal(err)
		}
	}
	ds, err := bl.Build()
	if err != nil {
		b.Fatal(err)
	}
	reqs := []CubeReq{{A: 0, B: -1}}
	for ai := 1; ai < attrs; ai++ {
		reqs = append(reqs, CubeReq{A: 0, B: ai})
		reqs = append(reqs, CubeReq{A: ai, B: -1})
	}
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BuildMany(context.Background(), ds, reqs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range reqs {
				attrsList := []int{q.A}
				if q.B >= 0 {
					attrsList = append(attrsList, q.B)
				}
				if _, err := Build(ds, attrsList); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
