// Package rulecube implements rule cubes (Section III.B of the paper): a
// rule cube over attributes {A_i1..A_ip} plus the class attribute is a
// (p+1)-dimensional array whose cell (v1..vp, c) holds the support count
// of the rule A_i1=v1, .., A_ip=vp -> C=c. Mining with zero minimum
// support/confidence corresponds to fully counting the array, which
// removes holes from the knowledge space. OLAP-style slice, dice and
// roll-up operations navigate cubes; a Store materializes all 2-D and
// 3-D cubes of a dataset the way the deployed Opportunity Map does.
package rulecube

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"opmap/internal/car"
	"opmap/internal/dataset"
	"opmap/internal/faultinject"
	"opmap/internal/obsv"
)

// Cube is a rule cube: p condition dimensions plus the class dimension.
type Cube struct {
	attrIdx    []int                 // dataset attribute indices of the p condition dims
	attrNames  []string              // names of the condition dims
	dicts      []*dataset.Dictionary // value dictionaries of the condition dims
	classDict  *dataset.Dictionary
	dims       []int // cardinality of each condition dim
	numClasses int
	counts     []int64 // row-major: (((v1*dim2)+v2)...)*numClasses + class
	total      int64   // total records represented (sum of all cells)
}

// NumDims returns the number of condition dimensions p (the cube has
// p+1 dimensions counting the class).
func (c *Cube) NumDims() int { return len(c.dims) }

// AttrIndices returns the dataset attribute indices of the condition
// dimensions, in cube order. The caller must not modify the slice.
func (c *Cube) AttrIndices() []int { return c.attrIdx }

// AttrNames returns the names of the condition dimensions.
func (c *Cube) AttrNames() []string { return c.attrNames }

// Dim returns the cardinality of condition dimension pos.
func (c *Cube) Dim(pos int) int { return c.dims[pos] }

// Dict returns the value dictionary of condition dimension pos.
func (c *Cube) Dict(pos int) *dataset.Dictionary { return c.dicts[pos] }

// ClassDict returns the class dictionary.
func (c *Cube) ClassDict() *dataset.Dictionary { return c.classDict }

// NumClasses returns the number of class values.
func (c *Cube) NumClasses() int { return c.numClasses }

// Total returns the total record count in the cube.
func (c *Cube) Total() int64 { return c.total }

// offset computes the flat index for the given cell coordinates.
func (c *Cube) offset(values []int32, class int32) (int, error) {
	if len(values) != len(c.dims) {
		return 0, fmt.Errorf("rulecube: got %d coordinates for a %d-dimensional cube", len(values), len(c.dims))
	}
	idx := 0
	for i, v := range values {
		if v < 0 || int(v) >= c.dims[i] {
			// Name the offending attribute: "coordinate 1" means nothing
			// to a caller holding a store of hundreds of cubes.
			return 0, fmt.Errorf("rulecube: coordinate %d (attribute %q) = %d out of range [0,%d)", i, c.attrNames[i], v, c.dims[i])
		}
		idx = idx*c.dims[i] + int(v)
	}
	if class < 0 || int(class) >= c.numClasses {
		return 0, fmt.Errorf("rulecube: class %d out of range [0,%d)", class, c.numClasses)
	}
	return idx*c.numClasses + int(class), nil
}

// Count returns the support count of the cell (values..., class): the
// number of records with those attribute values and that class.
func (c *Cube) Count(values []int32, class int32) (int64, error) {
	off, err := c.offset(values, class)
	if err != nil {
		return 0, err
	}
	return c.counts[off], nil
}

// CondCount returns sup(values) summed over all classes — the
// denominator of Eq. (1).
func (c *Cube) CondCount(values []int32) (int64, error) {
	off, err := c.offset(values, 0)
	if err != nil {
		return 0, err
	}
	var s int64
	for k := 0; k < c.numClasses; k++ {
		s += c.counts[off+k]
	}
	return s, nil
}

// Support returns the relative support count/total of the cell.
func (c *Cube) Support(values []int32, class int32) (float64, error) {
	n, err := c.Count(values, class)
	if err != nil {
		return 0, err
	}
	if c.total == 0 {
		return 0, nil
	}
	return float64(n) / float64(c.total), nil
}

// Confidence computes Eq. (1): conf(values -> class) =
// sup(values, class) / Σ_j sup(values, c_j). Empty denominators yield 0,
// matching the paper's Fig. 1 discussion (zero-count rules have
// confidence 0).
func (c *Cube) Confidence(values []int32, class int32) (float64, error) {
	num, err := c.Count(values, class)
	if err != nil {
		return 0, err
	}
	den, err := c.CondCount(values)
	if err != nil {
		return 0, err
	}
	if den == 0 {
		return 0, nil
	}
	return float64(num) / float64(den), nil
}

// Rule materializes the cell (values..., class) as a car.Rule.
func (c *Cube) Rule(values []int32, class int32) (car.Rule, error) {
	sup, err := c.Count(values, class)
	if err != nil {
		return car.Rule{}, err
	}
	cond, err := c.CondCount(values)
	if err != nil {
		return car.Rule{}, err
	}
	conds := make([]car.Condition, len(values))
	for i, v := range values {
		conds[i] = car.Condition{Attr: c.attrIdx[i], Value: v}
	}
	return car.Rule{Conditions: conds, Class: class, SupCount: sup, CondCount: cond, Total: c.total}, nil
}

// Build counts a rule cube over the given condition attributes of ds.
// Rows with a missing value in any cube dimension (including the class)
// are skipped. ds must be fully categorical.
func Build(ds *dataset.Dataset, attrs []int) (*Cube, error) {
	if !ds.AllCategorical() {
		return nil, fmt.Errorf("rulecube: dataset has continuous attributes; discretize first")
	}
	classIdx := ds.ClassIndex()
	seen := make(map[int]bool, len(attrs))
	for _, a := range attrs {
		if a < 0 || a >= ds.NumAttrs() {
			return nil, fmt.Errorf("rulecube: attribute index %d out of range", a)
		}
		if a == classIdx {
			return nil, fmt.Errorf("rulecube: class attribute cannot be a condition dimension")
		}
		if seen[a] {
			return nil, fmt.Errorf("rulecube: duplicate attribute %d", a)
		}
		seen[a] = true
	}
	c := &Cube{
		attrIdx:    append([]int(nil), attrs...),
		classDict:  ds.ClassDict(),
		numClasses: ds.NumClasses(),
	}
	size := c.numClasses
	for _, a := range attrs {
		card := ds.Cardinality(a)
		if card == 0 {
			card = 1 // an attribute with an empty domain still needs a slot
		}
		c.dims = append(c.dims, card)
		c.attrNames = append(c.attrNames, ds.Attr(a).Name)
		c.dicts = append(c.dicts, ds.Column(a).Dict)
		size *= card
	}
	c.counts = make([]int64, size)

	cols := make([][]int32, len(attrs))
	for i, a := range attrs {
		cols[i] = ds.Column(a).Codes
	}
	classCol := ds.Column(classIdx).Codes

rows:
	for r := 0; r < ds.NumRows(); r++ {
		cl := classCol[r]
		if cl < 0 {
			continue
		}
		idx := 0
		for i := range cols {
			v := cols[i][r]
			if v < 0 {
				continue rows
			}
			idx = idx*c.dims[i] + int(v)
		}
		c.counts[idx*c.numClasses+int(cl)]++
		c.total++
	}
	return c, nil
}

// Slice fixes condition dimension pos to the given value and returns the
// resulting cube with one fewer dimension (the OLAP slice of Section
// III.B; comparing two phones is two slices of a 3-D cube).
func (c *Cube) Slice(pos int, value int32) (*Cube, error) {
	if pos < 0 || pos >= len(c.dims) {
		return nil, fmt.Errorf("rulecube: slice position %d out of range", pos)
	}
	if value < 0 || int(value) >= c.dims[pos] {
		return nil, fmt.Errorf("rulecube: slice value %d out of range [0,%d)", value, c.dims[pos])
	}
	out := c.dropDim(pos)
	rest := make([]int32, 0, len(c.dims)-1)
	c.forEach(func(values []int32, class int32, n int64) {
		if values[pos] != value || n == 0 {
			return
		}
		rest = dropAtInto(rest, values, pos)
		off, _ := out.offset(rest, class)
		out.counts[off] += n
		out.total += n
	})
	return out, nil
}

// Dice restricts condition dimension pos to a subset of values,
// re-encoding that dimension to the chosen values in the given order.
func (c *Cube) Dice(pos int, values []int32) (*Cube, error) {
	if pos < 0 || pos >= len(c.dims) {
		return nil, fmt.Errorf("rulecube: dice position %d out of range", pos)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("rulecube: dice needs at least one value")
	}
	remap := make(map[int32]int32, len(values))
	dict := dataset.NewDictionary()
	for i, v := range values {
		if v < 0 || int(v) >= c.dims[pos] {
			return nil, fmt.Errorf("rulecube: dice value %d out of range [0,%d)", v, c.dims[pos])
		}
		if _, dup := remap[v]; dup {
			return nil, fmt.Errorf("rulecube: duplicate dice value %d", v)
		}
		remap[v] = int32(i)
		dict.Code(c.dicts[pos].Label(v))
	}
	out := &Cube{
		attrIdx:    append([]int(nil), c.attrIdx...),
		attrNames:  append([]string(nil), c.attrNames...),
		dicts:      append([]*dataset.Dictionary(nil), c.dicts...),
		classDict:  c.classDict,
		numClasses: c.numClasses,
		dims:       append([]int(nil), c.dims...),
	}
	out.dims[pos] = len(values)
	out.dicts[pos] = dict
	size := out.numClasses
	for _, d := range out.dims {
		size *= d
	}
	out.counts = make([]int64, size)
	mapped := make([]int32, len(c.dims))
	c.forEach(func(vals []int32, class int32, n int64) {
		if n == 0 {
			return
		}
		nv, ok := remap[vals[pos]]
		if !ok {
			return
		}
		copy(mapped, vals)
		mapped[pos] = nv
		off, _ := out.offset(mapped, class)
		out.counts[off] += n
		out.total += n
	})
	return out, nil
}

// Rollup marginalizes condition dimension pos out of the cube (the OLAP
// roll-up; rule cubes have a single aggregation level, so roll-up simply
// sums the dimension away).
func (c *Cube) Rollup(pos int) (*Cube, error) {
	if pos < 0 || pos >= len(c.dims) {
		return nil, fmt.Errorf("rulecube: rollup position %d out of range", pos)
	}
	out := c.dropDim(pos)
	rest := make([]int32, 0, len(c.dims)-1)
	c.forEach(func(values []int32, class int32, n int64) {
		if n == 0 {
			return
		}
		rest = dropAtInto(rest, values, pos)
		off, _ := out.offset(rest, class)
		out.counts[off] += n
		out.total += n
	})
	return out, nil
}

// dropDim builds an empty cube lacking condition dimension pos.
func (c *Cube) dropDim(pos int) *Cube {
	out := &Cube{
		classDict:  c.classDict,
		numClasses: c.numClasses,
	}
	size := c.numClasses
	for i := range c.dims {
		if i == pos {
			continue
		}
		out.attrIdx = append(out.attrIdx, c.attrIdx[i])
		out.attrNames = append(out.attrNames, c.attrNames[i])
		out.dicts = append(out.dicts, c.dicts[i])
		out.dims = append(out.dims, c.dims[i])
		size *= c.dims[i]
	}
	out.counts = make([]int64, size)
	return out
}

// dropAtInto writes values minus position pos into dst's backing array
// and returns the filled slice. Slice and Rollup call it once per cube
// cell; reusing one scratch buffer across the whole pass keeps the
// hot loop allocation-free.
func dropAtInto(dst, values []int32, pos int) []int32 {
	dst = append(dst[:0], values[:pos]...)
	return append(dst, values[pos+1:]...)
}

// forEach visits every cell of the cube.
func (c *Cube) forEach(f func(values []int32, class int32, count int64)) {
	values := make([]int32, len(c.dims))
	var rec func(dim, base int)
	rec = func(dim, base int) {
		if dim == len(c.dims) {
			for k := 0; k < c.numClasses; k++ {
				f(values, int32(k), c.counts[base*c.numClasses+k])
			}
			return
		}
		for v := 0; v < c.dims[dim]; v++ {
			values[dim] = int32(v)
			rec(dim+1, base*c.dims[dim]+v)
		}
	}
	rec(0, 0)
}

// ForEach exposes cube cell iteration to other packages. The values
// slice is reused between calls; callers must copy it to retain it.
func (c *Cube) ForEach(f func(values []int32, class int32, count int64)) { c.forEach(f) }

// ClassMarginals returns the per-class record totals of the cube.
func (c *Cube) ClassMarginals() []int64 {
	out := make([]int64, c.numClasses)
	for i, n := range c.counts {
		out[i%c.numClasses] += n
	}
	return out
}

// ValueMarginals returns the per-value record totals of condition
// dimension pos (summed over all other dimensions and classes).
func (c *Cube) ValueMarginals(pos int) ([]int64, error) {
	if pos < 0 || pos >= len(c.dims) {
		return nil, fmt.Errorf("rulecube: position %d out of range", pos)
	}
	out := make([]int64, c.dims[pos])
	c.forEach(func(values []int32, _ int32, n int64) {
		out[values[pos]] += n
	})
	return out, nil
}

// ScaleFactors returns per-class visual scaling factors that equalize
// class prominence (Section V.B: "The system supports automatic scaling
// among classes to address the class imbalance issue"). The factor for
// class k is maxCount/count_k; empty classes get factor 0.
func (c *Cube) ScaleFactors() []float64 {
	marg := c.ClassMarginals()
	var max int64
	for _, m := range marg {
		if m > max {
			max = m
		}
	}
	out := make([]float64, len(marg))
	if max == 0 {
		return out
	}
	for k, m := range marg {
		if m > 0 {
			out[k] = float64(max) / float64(m)
		}
	}
	return out
}

// RuleCount returns the number of rules the cube represents: the number
// of cells (Fig. 1 represents 3×4×2 = 24 rules). The product saturates
// at math.MaxInt64 — a cube whose declared dims multiply past the
// int64 range reports the ceiling rather than a wrapped negative, so
// cache byte accounting built on it can never go negative.
func (c *Cube) RuleCount() int64 {
	n := int64(c.numClasses)
	if n <= 0 {
		n = 1
	}
	for _, d := range c.dims {
		card := int64(d)
		if card <= 0 {
			card = 1
		}
		if n > math.MaxInt64/card {
			return math.MaxInt64
		}
		n *= card
	}
	return n
}

// Rules materializes every cell as a car.Rule, in cell order. Intended
// for small cubes (display, tests); large cubes should use ForEach. A
// cell that cannot be materialized surfaces as the first error instead
// of being silently dropped from the slice.
func (c *Cube) Rules() ([]car.Rule, error) {
	n := c.RuleCount()
	if n > int64(len(c.counts)) {
		n = int64(len(c.counts))
	}
	out := make([]car.Rule, 0, n)
	var firstErr error
	c.forEach(func(values []int32, class int32, _ int64) {
		r, err := c.Rule(values, class)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		out = append(out, r)
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// SizeBytes approximates the memory held by the cube's count array
// (8 bytes per cell). Dictionaries and headers are shared with the
// dataset and not charged here; this is the figure cache budgets and
// StoreStats account in. Like RuleCount it saturates at math.MaxInt64
// instead of wrapping negative.
func (c *Cube) SizeBytes() int64 {
	n := c.RuleCount()
	if n > math.MaxInt64/8 {
		return math.MaxInt64
	}
	return n * 8
}

// EstimateCubeBytes predicts SizeBytes for a cube over attrs without
// building it, saturating at math.MaxInt64 for absurd cardinality
// products. Lazy engines use it to decide whether a build fits the
// cache budget before paying for the data pass.
func EstimateCubeBytes(ds *dataset.Dataset, attrs []int) int64 {
	cells := int64(ds.NumClasses())
	if cells <= 0 {
		cells = 1
	}
	for _, a := range attrs {
		card := int64(ds.Cardinality(a))
		if card <= 0 {
			card = 1
		}
		if cells > (1<<62)/card {
			return 1<<63 - 1
		}
		cells *= card
	}
	if cells > (1<<62)/8 {
		return 1<<63 - 1
	}
	return cells * 8
}

// BuildCube counts a single rule cube over attrs, advancing the
// cubes-built counter and (when hot metrics are armed) the per-cube
// build-duration histogram. It is the unit of work a lazy engine
// schedules; BuildStore is a loop over BuildCube for every attribute
// and pair.
func BuildCube(ds *dataset.Dataset, attrs []int) (*Cube, error) {
	return buildCounted(ds, attrs)
}

// pairKey normalizes an attribute pair for Store lookup.
func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// StoreOptions configures Store materialization.
type StoreOptions struct {
	// Attrs restricts the attributes materialized (class excluded
	// automatically). Nil means all non-class attributes.
	Attrs []int
	// SkipPairs disables materializing 3-D cubes, leaving only the 2-D
	// (attribute × class) cubes.
	SkipPairs bool
	// Parallelism is the number of goroutines counting pair cubes.
	// Zero means GOMAXPROCS; 1 forces the serial path. Cube generation
	// is the paper's offline step (Fig. 10/11) and parallelizes
	// embarrassingly across attribute pairs.
	Parallelism int
}

// Store holds the materialized rule cubes of a dataset: one 2-D cube per
// attribute (attribute × class) and one 3-D cube per attribute pair
// (A × B × class), mirroring the deployed system ("In our current
// implementation, we store all 3-dimensional rule cubes").
type Store struct {
	ds    *dataset.Dataset
	attrs []int
	oneD  map[int]*Cube
	twoD  map[[2]int]*Cube
}

// CubesBuiltCounterName is the counter advanced once per cube counted
// during a store build, so a /metrics scrape shows offline-build
// progress and totals.
const CubesBuiltCounterName = "opmap_cubes_built_total"

// buildCounted is Build plus the store-build instrumentation: the
// cubes-built counter always advances on success, and when hot
// instrumentation is armed (obsv.ArmHot) the individual count's
// duration is observed too. Disarmed, the extra cost per cube is one
// atomic load and one counter increment — noise next to the full data
// pass each build performs.
func buildCounted(ds *dataset.Dataset, attrs []int) (*Cube, error) {
	var (
		h     *obsv.Histogram
		start time.Time
	)
	if obsv.HotArmed() {
		h = obsv.Default().Histogram(obsv.CubeBuildHistogramName, nil)
		start = time.Now()
	}
	cube, err := Build(ds, attrs)
	if err != nil {
		return nil, err
	}
	if h != nil {
		h.ObserveSince(start)
	}
	obsv.Default().Counter(CubesBuiltCounterName).Inc()
	// An individually built cube is one full dataset pass; BuildMany
	// advances the same counter once however many cubes it produced.
	obsv.Default().Counter(CubeScansCounterName).Inc()
	return cube, nil
}

// BuildStore materializes the cube store for ds.
func BuildStore(ds *dataset.Dataset, opts StoreOptions) (*Store, error) {
	return BuildStoreContext(context.Background(), ds, opts)
}

// BuildStoreContext is BuildStore under a context: cancellation is
// observed between cube builds (each individual cube is one pass over
// the rows, so the response to a cancel is bounded by a single build),
// the parallel pair loop stops dispatching work as soon as any build
// fails or ctx is done, and no goroutine outlives the call.
func BuildStoreContext(ctx context.Context, ds *dataset.Dataset, opts StoreOptions) (*Store, error) {
	if !ds.AllCategorical() {
		return nil, fmt.Errorf("rulecube: dataset has continuous attributes; discretize first")
	}
	attrs, err := normalizeStoreAttrs(ds, opts.Attrs)
	if err != nil {
		return nil, err
	}
	s := &Store{
		ds:    ds,
		attrs: attrs,
		oneD:  make(map[int]*Cube, len(attrs)),
		twoD:  make(map[[2]int]*Cube),
	}
	for _, a := range attrs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := faultinject.HitContext(ctx, faultinject.SiteCubeBuildOne); err != nil {
			return nil, err
		}
		cube, err := buildCounted(ds, []int{a})
		if err != nil {
			return nil, err
		}
		s.putCube1(a, cube)
	}
	if opts.SkipPairs {
		return s, nil
	}
	pairs := enumeratePairs(attrs)
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers <= 1 {
		for _, p := range pairs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := faultinject.HitContext(ctx, faultinject.SiteCubeBuildPair); err != nil {
				return nil, err
			}
			cube, err := buildCounted(ds, []int{p[0], p[1]})
			if err != nil {
				return nil, err
			}
			s.putCube2(p[0], p[1], cube)
		}
		return s, nil
	}
	if err := s.buildPairsParallel(ctx, pairs, workers); err != nil {
		return nil, err
	}
	return s, nil
}

// normalizeStoreAttrs resolves the store's attribute list: nil means
// every attribute except the class; an explicit list is copied,
// validated against the class index, and sorted.
func normalizeStoreAttrs(ds *dataset.Dataset, attrs []int) ([]int, error) {
	if attrs == nil {
		for a := 0; a < ds.NumAttrs(); a++ {
			if a != ds.ClassIndex() {
				attrs = append(attrs, a)
			}
		}
	} else {
		attrs = append([]int(nil), attrs...)
		for _, a := range attrs {
			if a == ds.ClassIndex() {
				return nil, fmt.Errorf("rulecube: class attribute in store attribute list")
			}
		}
	}
	sort.Ints(attrs)
	return attrs, nil
}

// enumeratePairs lists the unordered attribute pairs (a, b) with a < b
// in the sorted attrs slice, the job list for the pair-cube build.
func enumeratePairs(attrs []int) [][2]int {
	var pairs [][2]int
	for i, a := range attrs {
		for _, b := range attrs[i+1:] {
			pairs = append(pairs, [2]int{a, b})
		}
	}
	return pairs
}

// buildPairsParallel counts the pair cubes with a worker pool. The
// results channel is buffered to len(pairs) so a worker can never
// block on it; the dispatcher stops feeding jobs as soon as any
// worker reports an error or ctx is done (at most the in-flight
// builds complete after that), and every worker has exited by the
// time the function returns.
func (s *Store) buildPairsParallel(ctx context.Context, pairs [][2]int, workers int) error {
	type result struct {
		pair [2]int
		cube *Cube
		err  error
	}
	jobs := make(chan [2]int)
	results := make(chan result, len(pairs))
	abort := make(chan struct{})
	var abortOnce sync.Once
	fail := func() { abortOnce.Do(func() { close(abort) }) }

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range jobs {
				if ctx.Err() != nil {
					fail()
					return
				}
				if err := faultinject.HitContext(ctx, faultinject.SiteCubeBuildPair); err != nil {
					results <- result{pair: p, err: err}
					fail()
					continue
				}
				cube, err := buildCounted(s.ds, []int{p[0], p[1]})
				if err != nil {
					fail()
				}
				results <- result{pair: p, cube: cube, err: err}
			}
		}()
	}
	go func() {
	dispatch:
		for _, p := range pairs {
			// Poll the stop conditions first so a closed abort wins the
			// race against a ready worker.
			select {
			case <-abort:
				break dispatch
			case <-ctx.Done():
				break dispatch
			default:
			}
			select {
			case jobs <- p:
			case <-abort:
				break dispatch
			case <-ctx.Done():
				break dispatch
			}
		}
		close(jobs)
	}()
	go func() {
		wg.Wait()
		close(results)
	}()
	var firstErr error
	for r := range results {
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		s.putCube2(r.pair[0], r.pair[1], r.cube)
	}
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return firstErr
}

// Dataset returns the dataset the store was built from.
func (s *Store) Dataset() *dataset.Dataset { return s.ds }

// Attrs returns the materialized attribute indices in ascending order.
func (s *Store) Attrs() []int { return s.attrs }

// Cube1 returns the 2-D cube (attr × class), or nil if not materialized.
func (s *Store) Cube1(attr int) *Cube { return s.oneD[attr] }

// Cube2 returns the 3-D cube over the attribute pair, or nil. The cube's
// first dimension is min(a,b) and second is max(a,b).
func (s *Store) Cube2(a, b int) *Cube { return s.twoD[pairKey(a, b)] }

// putCube1 records the 2-D cube for attr. All writes to the oneD map
// go through here so the cubeaccess lint can confine cube-cache map
// access to the owning accessors.
func (s *Store) putCube1(attr int, c *Cube) { s.oneD[attr] = c }

// putCube2 records the 3-D cube for the (normalized) attribute pair.
func (s *Store) putCube2(a, b int, c *Cube) { s.twoD[pairKey(a, b)] = c }

// oneDAttrs returns the attribute indices with a materialized 1-D cube,
// in ascending order.
func (s *Store) oneDAttrs() []int {
	out := make([]int, 0, len(s.oneD))
	for a := range s.oneD {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// twoDPairs returns the materialized pair keys in ascending order.
func (s *Store) twoDPairs() [][2]int {
	out := make([][2]int, 0, len(s.twoD))
	for p := range s.twoD {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// forEachCube visits every materialized cube (1-D then 2-D, unordered
// within each group).
func (s *Store) forEachCube(f func(c *Cube)) {
	for _, c := range s.oneD {
		f(c)
	}
	for _, c := range s.twoD {
		f(c)
	}
}

// CubeCount returns the number of materialized cubes.
func (s *Store) CubeCount() int { return len(s.oneD) + len(s.twoD) }

// StoreStats summarizes a store's size — the quantified form of the
// paper's combinatorial-explosion concern (Section III.B: storing all
// rules "will result in a huge number of rules"; the two-condition cap
// keeps it tractable).
type StoreStats struct {
	Attributes int
	Cubes      int
	// Cells is the total cell count across all cubes = the number of
	// rules the store represents.
	Cells int64
	// Bytes approximates count-array memory (8 bytes per cell).
	Bytes int64
	// MaxCubeCells is the largest single cube.
	MaxCubeCells int64
}

// Stats computes the store's size summary. Sums saturate at
// math.MaxInt64 like the per-cube figures they aggregate.
func (s *Store) Stats() StoreStats {
	st := StoreStats{Attributes: len(s.attrs)}
	s.forEachCube(func(c *Cube) {
		st.Cubes++
		n := c.RuleCount()
		if st.Cells > math.MaxInt64-n {
			st.Cells = math.MaxInt64
		} else {
			st.Cells += n
		}
		b := c.SizeBytes()
		if st.Bytes > math.MaxInt64-b {
			st.Bytes = math.MaxInt64
		} else {
			st.Bytes += b
		}
		if n > st.MaxCubeCells {
			st.MaxCubeCells = n
		}
	})
	return st
}

// RestrictedCube mines a higher-dimensional cube on demand by fixing
// conditions and cubing the remaining attributes over the matching
// sub-population ("a restricted mining can be carried out",
// Section III.B). The fixed conditions select rows; the returned cube is
// over attrs within that sub-population.
func (s *Store) RestrictedCube(fixed []car.Condition, attrs []int) (*Cube, error) {
	sub := s.ds.Filter(func(r int) bool {
		for _, f := range fixed {
			if s.ds.CatCode(r, f.Attr) != f.Value {
				return false
			}
		}
		return true
	})
	return Build(sub, attrs)
}
