package rulecube

import (
	"fmt"

	"opmap/internal/dataset"
)

// This file is the additive-merge primitive the build, ingest, and
// snapshot layers share. Contingency counts are additive: two cubes
// counted over disjoint row sets combine exactly by cell-wise
// summation, provided both sides agree on what each cell means. When
// they don't — two shards loaded from different CSV slices register
// labels in different orders — the merge remaps source coordinates
// through the dictionary union (dataset.UnionDicts) first. Everything
// that combines counts funnels through here: BuildMany's row-shard
// scratch merge (AddCounts), WAL ingest's delta application
// (AddDelta via IngestRows), and shard-snapshot assembly
// (Store.Merge).

// AddCounts accumulates src into dst element-wise: dst[i] += src[i].
// This is the raw merge primitive for two count arrays with identical
// layout; src must not be longer than dst. Callers whose layouts
// differ (different dims or code orders) go through Cube.Merge, which
// remaps coordinates before summing.
func AddCounts(dst, src []int64) {
	for i, n := range src {
		dst[i] += n
	}
}

// Delta is a sparse bundle of cell increments, keyed by flat cell
// index. Streaming ingest accumulates one per cube per batch — a
// handful of touched cells in a potentially large cube — and folds it
// in with AddDelta, the sparse twin of AddCounts.
type Delta map[int]int64

// AddDelta folds a sparse delta into a counts array: dst[i] += d[i]
// for every keyed cell. Keys must be valid indices into dst.
func AddDelta(dst []int64, d Delta) {
	for i, n := range d {
		dst[i] += n
	}
}

// cellIndex computes the flat condition-cell index of a row for this
// cube, excluding the class factor. rowCodes is the full working row
// (codes indexed by dataset attribute index). A missing value in any
// cube dimension reports ok=false (the row is skipped, Build's rule);
// a code beyond a dimension is an error, never a silent miscount.
// ApplyRow and IngestRows share this indexing so the apply paths
// cannot drift apart.
func (c *Cube) cellIndex(rowCodes []int32) (int, bool, error) {
	idx := 0
	for i, a := range c.attrIdx {
		if a < 0 || a >= len(rowCodes) {
			return 0, false, fmt.Errorf("rulecube: cube dimension %q indexes attribute %d beyond row width %d", c.attrNames[i], a, len(rowCodes))
		}
		v := rowCodes[a]
		if v < 0 {
			return 0, false, nil
		}
		if int(v) >= c.dims[i] {
			return 0, false, fmt.Errorf("rulecube: value code %d for %q beyond dimension %d; SyncDims not run", v, c.attrNames[i], c.dims[i])
		}
		idx = idx*c.dims[i] + int(v)
	}
	return idx, true, nil
}

// IngestRows folds a batch of appended records into the cube. rows
// holds full working-dataset rows (codes indexed by dataset attribute
// index), classes the parallel class codes. Rows with a missing class
// or a missing value in any cube dimension are skipped, exactly as
// ApplyRow skips them. The batch is validated in full while
// accumulating a sparse delta, then applied atomically with AddDelta —
// on error nothing has mutated. Returns the number of rows counted.
// The caller must have called SyncDims since the last dictionary
// growth.
func (c *Cube) IngestRows(rows [][]int32, classes []int32) (int, error) {
	if len(rows) != len(classes) {
		return 0, fmt.Errorf("rulecube: %d rows but %d class codes", len(rows), len(classes))
	}
	delta := make(Delta)
	applied := 0
	for r, codes := range rows {
		class := classes[r]
		if class < 0 {
			continue
		}
		if int(class) >= c.numClasses {
			return 0, fmt.Errorf("rulecube: class code %d beyond %d classes; SyncDims not run", class, c.numClasses)
		}
		idx, ok, err := c.cellIndex(codes)
		if err != nil {
			return 0, err
		}
		if !ok {
			continue
		}
		delta[idx*c.numClasses+int(class)]++
		applied++
	}
	AddDelta(c.counts, delta)
	c.total += int64(applied)
	return applied, nil
}

// IngestRows folds a batch of appended records into every materialized
// cube of the store, growing dimensions first where dictionaries ran
// ahead. Each cube's batch applies atomically, but a mid-store error
// leaves earlier cubes updated — callers treat any error as fatal to
// the engine (the session drops and rebuilds). The caller owns
// concurrency: the store is not safe for writes concurrent with reads.
func (st *Store) IngestRows(rows [][]int32, classes []int32) error {
	if len(rows) == 0 {
		return nil
	}
	for _, a := range st.oneDAttrs() {
		c := st.Cube1(a)
		c.SyncDims()
		if _, err := c.IngestRows(rows, classes); err != nil {
			return err
		}
	}
	for _, p := range st.twoDPairs() {
		c := st.Cube2(p[0], p[1])
		c.SyncDims()
		if _, err := c.IngestRows(rows, classes); err != nil {
			return err
		}
	}
	return nil
}

// Merge folds src's counts into c, remapping source coordinates on the
// way in. dims[i] translates src codes of condition dimension i into
// c's codes (nil means identity), class translates class codes; both
// come from dataset.UnionDicts on the underlying datasets. The two
// cubes must be over the same attribute indices and names. c's
// dictionaries must already hold the union (SyncDims runs here, so
// growth from the union is absorbed); src is never modified.
//
// When the layouts already agree — equal dims, equal class count,
// identity remaps — the merge is one AddCounts pass. Otherwise each
// nonzero source cell is decomposed into coordinates, remapped, and
// recomposed under c's layout.
func (c *Cube) Merge(src *Cube, dims [][]int32, class []int32) error {
	if src == nil {
		return fmt.Errorf("rulecube: merge source cube is nil")
	}
	if len(src.attrIdx) != len(c.attrIdx) {
		return fmt.Errorf("rulecube: cube dimension count mismatch: %d vs %d", len(src.attrIdx), len(c.attrIdx))
	}
	for i := range c.attrIdx {
		if c.attrIdx[i] != src.attrIdx[i] || c.attrNames[i] != src.attrNames[i] {
			return fmt.Errorf("rulecube: cube dimension %d mismatch: %q (attr %d) vs %q (attr %d)",
				i, c.attrNames[i], c.attrIdx[i], src.attrNames[i], src.attrIdx[i])
		}
	}
	if dims != nil && len(dims) != len(src.dims) {
		return fmt.Errorf("rulecube: %d dimension remaps for %d dimensions", len(dims), len(src.dims))
	}
	c.SyncDims()
	if len(src.counts) == 0 {
		c.total += src.total
		return nil
	}

	identity := src.numClasses == c.numClasses && dataset.RemapIsIdentity(class)
	if identity {
		for i := range c.dims {
			if src.dims[i] != c.dims[i] || (dims != nil && !dataset.RemapIsIdentity(dims[i])) {
				identity = false
				break
			}
		}
	}
	if identity {
		AddCounts(c.counts, src.counts)
		c.total += src.total
		return nil
	}

	var total int64
	for flat, v := range src.counts {
		if v == 0 {
			continue
		}
		rem := flat
		cls := rem % src.numClasses
		rem /= src.numClasses
		if class != nil {
			if cls >= len(class) {
				return fmt.Errorf("rulecube: class code %d beyond %d-entry class remap", cls, len(class))
			}
			cls = int(class[cls])
		}
		if cls < 0 || cls >= c.numClasses {
			return fmt.Errorf("rulecube: remapped class code %d beyond %d classes", cls, c.numClasses)
		}
		// Coordinates come out last-dimension-first; fold them into the
		// destination flat index with place values over c's dims, the
		// same recomposition SyncDims uses.
		idx := 0
		place := 1
		for i := len(src.dims) - 1; i >= 0; i-- {
			coord := rem % src.dims[i]
			rem /= src.dims[i]
			if dims != nil && dims[i] != nil {
				tr := dims[i]
				if coord >= len(tr) {
					return fmt.Errorf("rulecube: value code %d for %q beyond %d-entry remap", coord, c.attrNames[i], len(tr))
				}
				coord = int(tr[coord])
			}
			if coord < 0 || coord >= c.dims[i] {
				return fmt.Errorf("rulecube: remapped value code %d for %q beyond dimension %d", coord, c.attrNames[i], c.dims[i])
			}
			idx += coord * place
			place *= c.dims[i]
		}
		c.counts[idx*c.numClasses+cls] += v
		total += v
	}
	c.total += total
	return nil
}

// Merge folds every cube of src into st, unioning the underlying
// datasets' dictionaries first and remapping source counts through the
// union. The two stores must cover the same attribute set; schema
// mismatches surface from UnionDicts naming the offending attribute.
// st's dataset dictionaries grow in place (its cubes share them);
// src — dataset and cubes — is never modified. Row storage is not
// merged: counts describe rows the destination dataset may not hold,
// which is exactly the shard-merge contract (the session layer appends
// remapped rows separately when it needs them).
func (st *Store) Merge(src *Store) error {
	if src == nil {
		return fmt.Errorf("rulecube: merge source store is nil")
	}
	if len(st.attrs) != len(src.attrs) {
		return fmt.Errorf("rulecube: store attribute sets differ: %d vs %d attributes", len(st.attrs), len(src.attrs))
	}
	for i := range st.attrs {
		if st.attrs[i] != src.attrs[i] {
			return fmt.Errorf("rulecube: store attribute sets differ at %d: %d vs %d", i, st.attrs[i], src.attrs[i])
		}
	}
	rm, err := st.ds.UnionDicts(src.ds)
	if err != nil {
		return err
	}
	// The union may have grown st.ds's dictionaries; bring every
	// destination cube to the union layout, including any with no
	// source counterpart.
	st.forEachCube(func(c *Cube) { c.SyncDims() })
	classRemap := rm.Attr(st.ds.ClassIndex())
	for _, a := range src.oneDAttrs() {
		sc := src.Cube1(a)
		dc := st.Cube1(a)
		if dc == nil {
			dc = newCubeHeader(st.ds, []int{a}, st.ds.NumClasses())
			st.putCube1(a, dc)
		}
		if err := dc.Merge(sc, [][]int32{rm.Attr(a)}, classRemap); err != nil {
			return err
		}
	}
	for _, p := range src.twoDPairs() {
		sc := src.Cube2(p[0], p[1])
		dc := st.Cube2(p[0], p[1])
		if dc == nil {
			dc = newCubeHeader(st.ds, []int{p[0], p[1]}, st.ds.NumClasses())
			st.putCube2(p[0], p[1], dc)
		}
		if err := dc.Merge(sc, [][]int32{rm.Attr(p[0]), rm.Attr(p[1])}, classRemap); err != nil {
			return err
		}
	}
	return nil
}
