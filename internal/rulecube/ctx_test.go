package rulecube

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"opmap/internal/dataset"
	"opmap/internal/faultinject"
	"opmap/internal/testutil"
)

// wideDataset builds a small dataset with nAttrs binary attributes plus
// a class, so the store has nAttrs·(nAttrs−1)/2 pair cubes — enough
// work for cancellation to land mid-build.
func wideDataset(t *testing.T, nAttrs int) *dataset.Dataset {
	t.Helper()
	attrs := make([]dataset.Attribute, nAttrs+1)
	for i := 0; i < nAttrs; i++ {
		attrs[i] = dataset.Attribute{Name: fmt.Sprintf("a%d", i), Kind: dataset.Categorical}
	}
	attrs[nAttrs] = dataset.Attribute{Name: "class", Kind: dataset.Categorical}
	b, err := dataset.NewBuilder(dataset.Schema{Attrs: attrs, ClassIndex: nAttrs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= nAttrs; i++ {
		b.WithDict(i, dataset.DictionaryOf("u", "v"))
	}
	row := make([]string, nAttrs+1)
	for j := 0; j < 64; j++ {
		for i := 0; i <= nAttrs; i++ {
			if (j>>(uint(i)%6))&1 == 0 {
				row[i] = "u"
			} else {
				row[i] = "v"
			}
		}
		if err := b.AddRow(row); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBuildStoreContextPreCanceled(t *testing.T) {
	ds := wideDataset(t, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", workers), func(t *testing.T) {
			defer testutil.VerifyNoLeak(t)()
			store, err := BuildStoreContext(ctx, ds, StoreOptions{Parallelism: workers})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if store != nil {
				t.Error("canceled build must not return a store")
			}
		})
	}
}

// TestBuildStoreContextCancelMidBuild is the acceptance check: cancel
// while pair cubes are being counted, and the build must return
// ctx.Err() within 100ms without leaking worker goroutines or
// dispatching the remaining pairs.
func TestBuildStoreContextCancelMidBuild(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	defer faultinject.Reset()
	ds := wideDataset(t, 8) // 28 pairs
	disarm, err := faultinject.Arm(faultinject.Fault{
		Site:  faultinject.SiteCubeBuildPair,
		Kind:  faultinject.Delay,
		Delay: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := BuildStoreContext(ctx, ds, StoreOptions{Parallelism: 4})
		done <- err
	}()

	time.Sleep(20 * time.Millisecond) // let some pairs start
	cancel()
	start := time.Now()
	select {
	case err := <-done:
		if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
			t.Errorf("build returned %v after cancel, want <= 100ms", elapsed)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("build did not return within 2s of cancel")
	}
	// The dispatcher must have stopped handing out pairs: with 28 pairs
	// at 50ms each on 4 workers the full build takes ~350ms, so a
	// cancel at 20ms must leave most pairs undispatched.
	if hits := faultinject.HitCount(faultinject.SiteCubeBuildPair); hits >= 28 {
		t.Errorf("all %d pairs were dispatched despite cancellation", hits)
	}
}

func TestBuildStoreContextSerialCancel(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	defer faultinject.Reset()
	ds := wideDataset(t, 6)
	disarm, err := faultinject.Arm(faultinject.Fault{
		Site:  faultinject.SiteCubeBuildPair,
		Kind:  faultinject.Delay,
		Delay: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := BuildStoreContext(ctx, ds, StoreOptions{Parallelism: 1})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("serial build did not return within 2s of cancel")
	}
}

// TestBuildStoreContextFaultError proves an injected pair-build error
// fails the store build and still drains the worker pool cleanly.
func TestBuildStoreContextFaultError(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	defer faultinject.Reset()
	ds := wideDataset(t, 8)
	disarm, err := faultinject.Arm(faultinject.Fault{
		Site:  faultinject.SiteCubeBuildPair,
		Kind:  faultinject.Error,
		Times: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	store, err := BuildStoreContext(context.Background(), ds, StoreOptions{Parallelism: 4})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if store != nil {
		t.Error("failed build must not return a store")
	}
}

func TestBuildStoreContextFaultOneD(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	defer faultinject.Reset()
	ds := wideDataset(t, 4)
	disarm, err := faultinject.Arm(faultinject.Fault{
		Site: faultinject.SiteCubeBuildOne,
		Kind: faultinject.Error,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	if _, err := BuildStoreContext(context.Background(), ds, StoreOptions{}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

// TestBuildStoreContextUnchanged pins backward compatibility: a build
// under a background context equals the context-free build.
func TestBuildStoreContextUnchanged(t *testing.T) {
	ds := wideDataset(t, 5)
	plain, err := BuildStore(ds, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := BuildStoreContext(context.Background(), ds, StoreOptions{Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	if plain.CubeCount() != ctxed.CubeCount() {
		t.Errorf("cube counts differ: %d vs %d", plain.CubeCount(), ctxed.CubeCount())
	}
	if ps, cs := plain.Stats(), ctxed.Stats(); ps != cs {
		t.Errorf("store stats differ: %+v vs %+v", ps, cs)
	}
}
