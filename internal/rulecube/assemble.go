package rulecube

import (
	"fmt"
	"sort"

	"opmap/internal/dataset"
)

// Cubes returns every materialized cube in deterministic order: 1-D
// cubes by attribute index, then 2-D cubes by normalized pair. The
// slice is fresh; the cubes are the store's own.
func (s *Store) Cubes() []*Cube {
	out := make([]*Cube, 0, s.CubeCount())
	for _, a := range s.oneDAttrs() {
		out = append(out, s.Cube1(a))
	}
	for _, p := range s.twoDPairs() {
		out = append(out, s.Cube2(p[0], p[1]))
	}
	return out
}

// AssembleStore builds a Store over ds from cubes counted earlier —
// the warm-start path: a snapshot carries serialized cubes plus a
// schema-only dataset, and assembly rebinds them without a single data
// pass. Every cube is validated against ds (attribute membership,
// per-dimension cardinality, class count) and its dictionaries are
// rebound to ds's, so the assembled store has one source of truth for
// labels; the caller must not keep using the cubes' previous bindings.
// cubes may cover any subset of attrs (a lazy session snapshots only
// its resident cubes); attrs defines the servable set.
func AssembleStore(ds *dataset.Dataset, attrs []int, cubes []*Cube) (*Store, error) {
	if ds == nil {
		return nil, fmt.Errorf("rulecube: assemble: nil dataset")
	}
	if !ds.AllCategorical() {
		return nil, fmt.Errorf("rulecube: assemble: dataset has continuous attributes; discretize first")
	}
	sorted := append([]int(nil), attrs...)
	sort.Ints(sorted)
	inSet := make(map[int]bool, len(sorted))
	for _, a := range sorted {
		if a < 0 || a >= ds.NumAttrs() {
			return nil, fmt.Errorf("rulecube: assemble: attribute index %d outside schema of %d attributes", a, ds.NumAttrs())
		}
		if a == ds.ClassIndex() {
			return nil, fmt.Errorf("rulecube: assemble: attribute %d is the class", a)
		}
		if inSet[a] {
			return nil, fmt.Errorf("rulecube: assemble: duplicate attribute %d", a)
		}
		inSet[a] = true
	}
	s := &Store{
		ds:    ds,
		attrs: sorted,
		oneD:  make(map[int]*Cube),
		twoD:  make(map[[2]int]*Cube),
	}
	for _, c := range cubes {
		if err := rebindCube(ds, inSet, c); err != nil {
			return nil, err
		}
		switch c.NumDims() {
		case 1:
			a := c.attrIdx[0]
			if s.Cube1(a) != nil {
				return nil, fmt.Errorf("rulecube: assemble: duplicate cube for attribute %d", a)
			}
			s.putCube1(a, c)
		case 2:
			a, b := c.attrIdx[0], c.attrIdx[1]
			if s.Cube2(a, b) != nil {
				return nil, fmt.Errorf("rulecube: assemble: duplicate cube for pair (%d,%d)", a, b)
			}
			s.putCube2(a, b, c)
		default:
			return nil, fmt.Errorf("rulecube: assemble: cube with %d condition dimensions (want 1 or 2)", c.NumDims())
		}
	}
	return s, nil
}

// rebindCube validates a cube against ds and repoints its dictionaries
// and attribute names at ds's. The cube's code space must line up with
// ds's dictionaries — guaranteed when both were derived from the same
// source in the same code order, which the per-dimension cardinality
// and class-count checks enforce.
func rebindCube(ds *dataset.Dataset, inSet map[int]bool, c *Cube) error {
	if c == nil {
		return fmt.Errorf("rulecube: assemble: nil cube")
	}
	if c.NumClasses() != ds.NumClasses() {
		return fmt.Errorf("rulecube: assemble: cube has %d classes, dataset has %d", c.NumClasses(), ds.NumClasses())
	}
	for i, a := range c.attrIdx {
		if !inSet[a] {
			return fmt.Errorf("rulecube: assemble: cube references attribute %d outside the store's set", a)
		}
		card := ds.Cardinality(a)
		if card == 0 {
			card = 1
		}
		if c.dims[i] != card {
			return fmt.Errorf("rulecube: assemble: cube dimension %d for attribute %q has cardinality %d, dataset says %d",
				i, ds.Attr(a).Name, c.dims[i], card)
		}
		c.attrNames[i] = ds.Attr(a).Name
		c.dicts[i] = ds.Column(a).Dict
	}
	c.classDict = ds.ClassDict()
	return nil
}
