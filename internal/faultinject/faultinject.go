// Package faultinject provides deterministic, seedable fault injection
// for the analysis pipeline. Long-running stages (cube counting, sweep
// fan-out, permutation rounds, the GI miner, the serving daemon's
// request path) call Hit/HitContext at named sites; by default the call
// is a single atomic load and does nothing. Tests arm faults — a delay,
// an error, or a panic — at a site to exercise mid-build failures, slow
// stages, cancellation races and the server's panic recovery without
// touching the production code paths.
//
// The registry is process-global on purpose: the whole point is to
// reach sites buried several layers below the code under test. Tests
// that arm faults must disarm them (or call Reset) before returning and
// must not run in parallel with each other.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Named fault points compiled into the pipeline. Each constant is the
// site string the corresponding stage passes to Hit/HitContext.
const (
	// SiteCubeBuildOne fires before each 2-D (attribute × class) cube
	// build in rulecube.BuildStoreContext.
	SiteCubeBuildOne = "cube.build.one"
	// SiteCubeBuildPair fires before each 3-D pair-cube build, on both
	// the serial and the parallel worker path.
	SiteCubeBuildPair = "cube.build.pair"
	// SiteCubeBatch fires once per rulecube.BuildMany call, before the
	// shared scan starts.
	SiteCubeBatch = "cube.build.batch"
	// SiteCompareAttr fires before each candidate attribute is scored in
	// a comparison (pairwise and one-vs-rest).
	SiteCompareAttr = "compare.attr"
	// SiteSweepPair fires before each screened pair is compared in a
	// sweep.
	SiteSweepPair = "sweep.pair"
	// SiteDrillNode fires before each (node, candidate attribute) pair
	// the drill-down planner scores during a frontier expansion.
	SiteDrillNode = "drill.node"
	// SitePermRound fires before each permutation-test round.
	SitePermRound = "permtest.round"
	// SiteGIAttr fires before each attribute the GI miner processes.
	SiteGIAttr = "gi.attr"
	// SiteServerHandle fires inside the opmapd request path, after the
	// middleware and before the endpoint handler.
	SiteServerHandle = "server.handle"
	// SiteAtomicWriteData fires inside atomicfile.WriteFile before the
	// payload is written to the staging file — an Error fault here
	// simulates a crash mid-write, which must leave the destination
	// untouched.
	SiteAtomicWriteData = "atomicfile.write"
	// SiteAtomicWriteRename fires after the staging file is synced and
	// closed, immediately before the rename — an Error fault here
	// simulates a crash in the narrowest window, after which the old
	// destination must still be intact.
	SiteAtomicWriteRename = "atomicfile.rename"
	// SiteWALAppend fires inside wal.Log.Append before the record bytes
	// are written — an Error fault here simulates a crash before the
	// record reaches the log, so the row must not be acknowledged and
	// the log must stay appendable.
	SiteWALAppend = "wal.append"
	// SiteWALFsync fires after the record bytes are written and before
	// the fsync — the torn-tail window. An Error fault here simulates a
	// crash mid-write: the record may be present but is not durable, the
	// append must not be acknowledged, and recovery must truncate it.
	SiteWALFsync = "wal.fsync"
	// SiteWALReplay fires before each replayed record is handed to the
	// replay callback, so tests can interrupt recovery mid-stream.
	SiteWALReplay = "wal.replay"
)

// ErrInjected is the error returned by an Error fault whose Fault.Err
// is nil. Callers can errors.Is against it to tell injected failures
// from real ones.
var ErrInjected = errors.New("injected failure")

// Kind selects what an armed fault does when it fires.
type Kind uint8

const (
	// Delay sleeps for Fault.Delay (interruptibly under HitContext)
	// before letting the site proceed.
	Delay Kind = iota + 1
	// Error makes the site return Fault.Err (ErrInjected when nil).
	Error
	// Panic makes the site panic. Only arm this at sites whose callers
	// recover (the server middleware does; library call sites do not).
	Panic
)

// Fault describes one fault to arm at a named site.
type Fault struct {
	Site  string
	Kind  Kind
	Delay time.Duration // Delay faults: how long to stall the site
	Err   error         // Error faults: the error to inject (nil = ErrInjected)

	// After skips the first After hits of this fault before it becomes
	// eligible to fire (0 = eligible from the first hit).
	After int
	// Times caps how many times the fault fires (0 = every eligible hit).
	Times int
	// Prob fires the fault on each eligible hit with this probability,
	// drawn from a rand.Rand seeded with Seed, so a given (Prob, Seed)
	// pair reproduces the same firing sequence. Zero means fire on
	// every eligible hit.
	Prob float64
	Seed int64
}

// armed is one registered fault with its firing state.
type armed struct {
	f     Fault
	rng   *rand.Rand // nil unless Prob > 0
	hits  int
	fired int
}

var (
	// active gates the fast path: Hit returns immediately while it is
	// zero, so the disabled cost at every site is one atomic load.
	active atomic.Int32

	mu     sync.Mutex
	sites  = make(map[string][]*armed)
	counts = make(map[string]int64)
)

// Arm registers a fault and returns a function that disarms it. Tests
// should `defer disarm()` (or defer Reset).
func Arm(f Fault) (disarm func(), err error) {
	if f.Site == "" {
		return nil, fmt.Errorf("faultinject: empty site")
	}
	switch f.Kind {
	case Delay, Error, Panic:
	default:
		return nil, fmt.Errorf("faultinject: unknown fault kind %d", f.Kind)
	}
	if f.Prob < 0 || f.Prob > 1 {
		return nil, fmt.Errorf("faultinject: probability %v outside [0,1]", f.Prob)
	}
	a := &armed{f: f}
	if f.Prob > 0 {
		a.rng = rand.New(rand.NewSource(f.Seed))
	}
	mu.Lock()
	sites[f.Site] = append(sites[f.Site], a)
	mu.Unlock()
	active.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			mu.Lock()
			list := sites[f.Site]
			for i, x := range list {
				if x == a {
					sites[f.Site] = append(list[:i], list[i+1:]...)
					break
				}
			}
			mu.Unlock()
			active.Add(-1)
		})
	}, nil
}

// Reset disarms every fault and clears the hit counters.
func Reset() {
	mu.Lock()
	n := 0
	for _, list := range sites {
		n += len(list)
	}
	sites = make(map[string][]*armed)
	counts = make(map[string]int64)
	mu.Unlock()
	active.Add(int32(-n))
}

// Enabled reports whether any fault is armed.
func Enabled() bool { return active.Load() > 0 }

// HitCount returns how many times the site was hit while at least one
// fault (at any site) was armed. Sites are not counted on the disabled
// fast path, so counts are meaningful only during a test window.
func HitCount(site string) int64 {
	mu.Lock()
	defer mu.Unlock()
	return counts[site]
}

// Hit is HitContext with a background context: delays are not
// interruptible.
func Hit(site string) error { return HitContext(context.Background(), site) }

// HitContext marks one pass through a named fault point. With no fault
// armed it returns nil at the cost of one atomic load. With faults
// armed it applies the first eligible fault for the site: Delay sleeps
// (returning ctx.Err() if ctx expires first), Error returns the
// injected error, Panic panics.
func HitContext(ctx context.Context, site string) error {
	if active.Load() == 0 {
		return nil
	}
	mu.Lock()
	counts[site]++
	var fire *Fault
	for _, a := range sites[site] {
		a.hits++
		if a.hits <= a.f.After {
			continue
		}
		if a.f.Times > 0 && a.fired >= a.f.Times {
			continue
		}
		if a.rng != nil && a.rng.Float64() >= a.f.Prob {
			continue
		}
		a.fired++
		f := a.f
		fire = &f
		break
	}
	mu.Unlock()
	if fire == nil {
		return nil
	}
	switch fire.Kind {
	case Delay:
		t := time.NewTimer(fire.Delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	case Error:
		if fire.Err != nil {
			return fmt.Errorf("faultinject: site %s: %w", site, fire.Err)
		}
		return fmt.Errorf("faultinject: site %s: %w", site, ErrInjected)
	default: // Panic
		panic(fmt.Sprintf("faultinject: injected panic at site %s", site))
	}
}
