package faultinject_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"opmap/internal/faultinject"
)

func TestDisabledFastPath(t *testing.T) {
	faultinject.Reset()
	if faultinject.Enabled() {
		t.Fatal("no faults armed, Enabled() = true")
	}
	if err := faultinject.Hit("some.site"); err != nil {
		t.Fatalf("disabled Hit returned %v", err)
	}
	if n := faultinject.HitCount("some.site"); n != 0 {
		t.Fatalf("disabled hits counted: %d", n)
	}
}

func TestErrorFault(t *testing.T) {
	defer faultinject.Reset()
	disarm, err := faultinject.Arm(faultinject.Fault{Site: "s", Kind: faultinject.Error})
	if err != nil {
		t.Fatal(err)
	}
	err = faultinject.Hit("s")
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Hit = %v, want ErrInjected", err)
	}
	if err := faultinject.Hit("other"); err != nil {
		t.Fatalf("unarmed site returned %v", err)
	}
	disarm()
	disarm() // idempotent
	if err := faultinject.Hit("s"); err != nil {
		t.Fatalf("after disarm, Hit = %v", err)
	}
}

func TestCustomError(t *testing.T) {
	defer faultinject.Reset()
	sentinel := errors.New("boom")
	if _, err := faultinject.Arm(faultinject.Fault{Site: "s", Kind: faultinject.Error, Err: sentinel}); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Hit("s"); !errors.Is(err, sentinel) {
		t.Fatalf("Hit = %v, want wrapped sentinel", err)
	}
}

func TestAfterAndTimes(t *testing.T) {
	defer faultinject.Reset()
	_, err := faultinject.Arm(faultinject.Fault{Site: "s", Kind: faultinject.Error, After: 2, Times: 2})
	if err != nil {
		t.Fatal(err)
	}
	var got []bool
	for i := 0; i < 6; i++ {
		got = append(got, faultinject.Hit("s") != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d fired=%v, want %v (sequence %v)", i, got[i], want[i], got)
		}
	}
	if n := faultinject.HitCount("s"); n != 6 {
		t.Fatalf("HitCount = %d, want 6", n)
	}
}

// TestProbDeterminism: the same (Prob, Seed) must reproduce the same
// firing sequence across arms.
func TestProbDeterminism(t *testing.T) {
	sequence := func() []bool {
		defer faultinject.Reset()
		if _, err := faultinject.Arm(faultinject.Fault{Site: "s", Kind: faultinject.Error, Prob: 0.5, Seed: 42}); err != nil {
			t.Fatal(err)
		}
		var out []bool
		for i := 0; i < 32; i++ {
			out = append(out, faultinject.Hit("s") != nil)
		}
		return out
	}
	a, b := sequence(), sequence()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs between identical seeds", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("Prob=0.5 fired %d/%d times; want a mix", fired, len(a))
	}
}

func TestDelayInterruptedByContext(t *testing.T) {
	defer faultinject.Reset()
	if _, err := faultinject.Arm(faultinject.Fault{Site: "s", Kind: faultinject.Delay, Delay: 10 * time.Second}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := faultinject.HitContext(ctx, "s")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("HitContext = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("delay ignored context: took %v", elapsed)
	}
}

func TestDelayCompletes(t *testing.T) {
	defer faultinject.Reset()
	if _, err := faultinject.Arm(faultinject.Fault{Site: "s", Kind: faultinject.Delay, Delay: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := faultinject.Hit("s"); err != nil {
		t.Fatalf("Hit = %v", err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("delay too short: %v", elapsed)
	}
}

func TestPanicFault(t *testing.T) {
	defer faultinject.Reset()
	if _, err := faultinject.Arm(faultinject.Fault{Site: "s", Kind: faultinject.Panic}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Panic fault did not panic")
		}
	}()
	_ = faultinject.Hit("s")
}

func TestArmValidation(t *testing.T) {
	defer faultinject.Reset()
	cases := []faultinject.Fault{
		{Site: "", Kind: faultinject.Error},
		{Site: "s"},
		{Site: "s", Kind: faultinject.Error, Prob: 1.5},
		{Site: "s", Kind: faultinject.Error, Prob: -0.1},
	}
	for _, f := range cases {
		if _, err := faultinject.Arm(f); err == nil {
			t.Errorf("Arm(%+v) accepted invalid fault", f)
		}
	}
	if faultinject.Enabled() {
		t.Error("rejected faults left the registry enabled")
	}
}
