package obsv

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity. Records below the logger's level are
// dropped before any formatting work happens.
type Level int32

// Severities, lowest first. levelOff is internal: it sits above every
// real level so the no-op logger never formats anything.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	levelOff
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("Level(%d)", int32(l))
	}
}

// ParseLevel converts a flag value ("debug", "info", "warn", "error")
// to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("obsv: unknown log level %q (want debug|info|warn|error)", s)
	}
}

// Logger writes leveled key=value records, one per line:
//
//	ts=2026-08-05T10:11:12.131Z level=info msg="built cubes" request_id=6f1a-0003 cubes=861
//
// The request id is read from the context (WithRequestID) so every
// log line of one request carries the same correlation key without
// threading it through call signatures. Methods take the context
// first, per the project's ctxrule convention, and are safe for
// concurrent use.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	lvl atomic.Int32
	now func() time.Time // stubbed in tests for deterministic ts fields
}

// NewLogger returns a logger writing records at or above level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	l := &Logger{w: w, now: time.Now}
	l.lvl.Store(int32(level))
	return l
}

// Nop returns a logger that drops everything (the default for library
// callers that do not configure logging).
func Nop() *Logger {
	l := &Logger{w: io.Discard, now: time.Now}
	l.lvl.Store(int32(levelOff))
	return l
}

// SetLevel changes the minimum level at runtime.
func (l *Logger) SetLevel(level Level) { l.lvl.Store(int32(level)) }

// Enabled reports whether records at the given level are emitted.
func (l *Logger) Enabled(level Level) bool { return int32(level) >= l.lvl.Load() }

// Debug logs at debug level. kv is alternating key/value pairs.
func (l *Logger) Debug(ctx context.Context, msg string, kv ...any) {
	l.log(ctx, LevelDebug, msg, kv)
}

// Info logs at info level. kv is alternating key/value pairs.
func (l *Logger) Info(ctx context.Context, msg string, kv ...any) {
	l.log(ctx, LevelInfo, msg, kv)
}

// Warn logs at warn level. kv is alternating key/value pairs.
func (l *Logger) Warn(ctx context.Context, msg string, kv ...any) {
	l.log(ctx, LevelWarn, msg, kv)
}

// Error logs at error level. kv is alternating key/value pairs.
func (l *Logger) Error(ctx context.Context, msg string, kv ...any) {
	l.log(ctx, LevelError, msg, kv)
}

func (l *Logger) log(ctx context.Context, level Level, msg string, kv []any) {
	if l == nil || !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(l.now().UTC().Format(time.RFC3339Nano))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(quoteValue(msg))
	if id := RequestID(ctx); id != "" {
		b.WriteString(" request_id=")
		b.WriteString(quoteValue(id))
	}
	for i := 0; i < len(kv); i += 2 {
		k, ok := kv[i].(string)
		if !ok {
			k = fmt.Sprintf("%v", kv[i])
		}
		var v any = "(missing)"
		if i+1 < len(kv) {
			v = kv[i+1]
		}
		b.WriteByte(' ')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(formatValue(v))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	// A write error has nowhere to go: the logger IS the error sink.
	_, _ = io.WriteString(l.w, b.String())
}

// formatValue renders one logfmt value, quoting only when needed.
func formatValue(v any) string {
	switch t := v.(type) {
	case string:
		return quoteValue(t)
	case error:
		return quoteValue(t.Error())
	case time.Duration:
		return t.String()
	case fmt.Stringer:
		return quoteValue(t.String())
	default:
		return quoteValue(fmt.Sprintf("%v", t))
	}
}

// quoteValue quotes a string when it is empty or contains characters
// that would break the key=value grammar.
func quoteValue(s string) string {
	if s == "" {
		return `""`
	}
	if strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}

// requestIDKey is the context key for the per-request correlation id.
type requestIDKey struct{}

// WithRequestID returns a context carrying the request id, which the
// logger appends to every record logged under that context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the context's request id, or "".
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

var (
	reqSeq   atomic.Uint64
	reqEpoch = time.Now().UnixNano()
)

// NewRequestID returns a process-unique request id: a short prefix
// derived from the process start time plus a sequence number. No
// global RNG is involved (the seededrand analyzer forbids it), and
// ids stay cheap and collision-free within one process — which is all
// a correlation key needs.
func NewRequestID() string {
	return fmt.Sprintf("%06x-%04x", uint64(reqEpoch)&0xffffff, reqSeq.Add(1))
}
