// Package obsv is the project's zero-dependency observability layer:
// an atomic metrics registry (counters, gauges, histograms) with
// Prometheus-text and JSON exposition, a leveled key=value structured
// logger with request-id propagation through contexts, and cheap
// stage-timing spans recorded by every pipeline entry point. The
// paper's Opportunity Map was a deployed diagnostic system; a serving
// reproduction needs the same property the deployment had — when a
// request times out or sheds, the operator can see it after the fact.
// Everything here is stdlib-only and lock-free on the hot paths: a
// counter increment is one atomic add, a histogram observe is two, and
// hot-path instrumentation that is disarmed (the default) costs a
// single atomic load.
package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is not
// usable; obtain counters from a Registry.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter. Negative n is ignored: counters only go
// up (use a Gauge for values that go down).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (e.g. in-flight requests).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (possibly negative) to the gauge.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets is the default histogram bucketing: latency-oriented
// upper bounds in seconds from 100µs to 10s, roughly log-spaced the
// way Prometheus client libraries do it.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram accumulates observations into fixed buckets. Observations
// are in seconds (the unit every duration metric in this project
// uses). All methods are safe for concurrent use; Observe is two
// atomic adds plus a CAS loop for the sum.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b))}
}

// Observe records one observation (in seconds).
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values in seconds.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// HistogramSnapshot is a consistent-enough point-in-time view of a
// histogram for exposition (buckets are read one by one, so a
// concurrent observe may straddle the read; exposition tolerates
// that the way Prometheus scrapes do).
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets []BucketSnapshot `json:"buckets"`
}

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	LE    string `json:"le"` // upper bound; "+Inf" for the overflow bucket
	Count int64  `json:"count"`
}

// Snapshot captures the histogram's current buckets, count and sum.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{Count: h.count.Load(), Sum: h.Sum()}
	var cum int64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		snap.Buckets = append(snap.Buckets, BucketSnapshot{LE: formatFloat(b), Count: cum})
	}
	snap.Buckets = append(snap.Buckets, BucketSnapshot{LE: "+Inf", Count: snap.Count})
	return snap
}

// Registry is a named collection of metrics. Lookup is guarded by a
// read-write mutex; the metrics themselves are lock-free, so the
// steady-state cost of an instrumented site is one map read under
// RLock plus the atomic operation.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry used by the pipeline's
// stage spans and the serving daemon. The known pipeline stage
// histograms are pre-registered so exposition shows every stage —
// including the ones that have not run yet — at count 0.
func Default() *Registry {
	defaultOnce.Do(func() {
		defaultReg = NewRegistry()
		for _, s := range PipelineStages {
			defaultReg.Histogram(StageHistogramName, nil, "stage", s)
		}
		defaultReg.Histogram(CubeBuildHistogramName, nil)
		defaultReg.Histogram(CompareAttrHistogramName, nil)
		defaultReg.Counter(DrillDownRunsCounterName)
		defaultReg.Counter(DrillDownNodesCounterName)
	})
	return defaultReg
}

// key builds the registry key from a metric name and label pairs
// (k1, v1, k2, v2, ...). Labels are rendered in the given order, so
// call sites must use a consistent order for the same metric. A
// dangling key without a value is paired with "".
func key(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	b.WriteString(formatLabels(labels))
	b.WriteByte('}')
	return b.String()
}

func formatLabels(labels []string) string {
	var b strings.Builder
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i+1 < len(labels) {
			v = labels[i+1]
		}
		b.WriteString(labels[i])
		b.WriteByte('=')
		b.WriteString(strconv.Quote(v))
	}
	return b.String()
}

// Counter returns the named counter, creating it on first use. The
// variadic labels are key/value pairs ("path", "/api/compare").
func (r *Registry) Counter(name string, labels ...string) *Counter {
	k := key(name, labels)
	r.mu.RLock()
	c := r.counters[k]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[k]; c == nil {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	k := key(name, labels)
	r.mu.RLock()
	g := r.gauges[k]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[k]; g == nil {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (nil means DefBuckets) on first use. Buckets of
// an already-registered histogram are not changed.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	k := key(name, labels)
	r.mu.RLock()
	h := r.hists[k]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[k]; h == nil {
		h = newHistogram(buckets)
		r.hists[k] = h
	}
	return h
}

// baseName strips the label block from a registry key.
func baseName(k string) string {
	if i := strings.IndexByte(k, '{'); i >= 0 {
		return k[:i]
	}
	return k
}

// labelBlock returns the label block of a registry key without the
// braces, or "".
func labelBlock(k string) string {
	if i := strings.IndexByte(k, '{'); i >= 0 {
		return strings.TrimSuffix(k[i+1:], "}")
	}
	return ""
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// sortedKeys returns the map's keys grouped by base metric name (a
// TYPE line is emitted once per base), then lexically.
func sortedKeys[M any](m map[string]M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		bi, bj := baseName(out[i]), baseName(out[j])
		if bi != bj {
			return bi < bj
		}
		return out[i] < out[j]
	})
	return out
}

// WritePrometheus writes every metric in the Prometheus text
// exposition format (version 0.0.4), sorted by name so output is
// deterministic for a given registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	r.mu.RUnlock()

	var b strings.Builder
	writeSimple := func(keys []string, typ string, value func(k string) string) {
		lastBase := ""
		for _, k := range keys {
			if base := baseName(k); base != lastBase {
				fmt.Fprintf(&b, "# TYPE %s %s\n", base, typ)
				lastBase = base
			}
			fmt.Fprintf(&b, "%s %s\n", k, value(k))
		}
	}
	writeSimple(sortedKeys(counters), "counter", func(k string) string {
		return strconv.FormatInt(counters[k].Value(), 10)
	})
	writeSimple(sortedKeys(gauges), "gauge", func(k string) string {
		return strconv.FormatInt(gauges[k].Value(), 10)
	})

	lastBase := ""
	for _, k := range sortedKeys(hists) {
		base, labels := baseName(k), labelBlock(k)
		if base != lastBase {
			fmt.Fprintf(&b, "# TYPE %s histogram\n", base)
			lastBase = base
		}
		snap := hists[k].Snapshot()
		for _, bk := range snap.Buckets {
			if labels == "" {
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", base, bk.LE, bk.Count)
			} else {
				fmt.Fprintf(&b, "%s_bucket{%s,le=%q} %d\n", base, labels, bk.LE, bk.Count)
			}
		}
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		fmt.Fprintf(&b, "%s_sum%s %s\n", base, suffix, formatFloat(snap.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", base, suffix, snap.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON writes every metric as one JSON document: counters and
// gauges as name → value, histograms as name → snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.RLock()
	doc := struct {
		Counters   map[string]int64             `json:"counters"`
		Gauges     map[string]int64             `json:"gauges"`
		Histograms map[string]HistogramSnapshot `json:"histograms"`
	}{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, c := range r.counters {
		doc.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		doc.Gauges[k] = g.Value()
	}
	for k, h := range r.hists {
		hists[k] = h
	}
	r.mu.RUnlock()
	for k, h := range hists {
		doc.Histograms[k] = h.Snapshot()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
