package obsv

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentMetrics hammers one counter, one gauge and one
// histogram from many goroutines under -race: the registry lookups
// and the atomic metric operations must both be data-race-free, and
// no increment may be lost.
func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	const (
		goroutines = 16
		perG       = 1000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("test_ops_total", "worker", "w").Inc()
				r.Gauge("test_inflight").Add(1)
				r.Gauge("test_inflight").Add(-1)
				r.Histogram("test_latency_seconds", nil).Observe(0.003)
			}
		}()
	}
	wg.Wait()
	want := int64(goroutines * perG)
	if got := r.Counter("test_ops_total", "worker", "w").Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := r.Gauge("test_inflight").Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	h := r.Histogram("test_latency_seconds", nil)
	if got := h.Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	wantSum := 0.003 * float64(want)
	if got := h.Sum(); got < wantSum*0.999 || got > wantSum*1.001 {
		t.Errorf("histogram sum = %v, want ≈%v", got, wantSum)
	}
	snap := h.Snapshot()
	if last := snap.Buckets[len(snap.Buckets)-1]; last.LE != "+Inf" || last.Count != want {
		t.Errorf("+Inf bucket = %+v, want count %d", last, want)
	}
}

// TestConcurrentRegistryCreation races get-or-create on distinct and
// identical names: every goroutine must end up with the same metric
// instance for the same key.
func TestConcurrentRegistryCreation(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	counters := make([]*Counter, 8)
	for g := range counters {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			counters[g] = r.Counter("shared_total", "path", "/x")
			counters[g].Inc()
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(counters); g++ {
		if counters[g] != counters[0] {
			t.Fatalf("goroutine %d got a different counter instance", g)
		}
	}
	if got := counters[0].Value(); got != int64(len(counters)) {
		t.Errorf("shared counter = %d, want %d", got, len(counters))
	}
}

// TestPrometheusExpositionGolden pins the exact text exposition
// format: TYPE lines per metric family, sorted series, cumulative
// histogram buckets with the +Inf overflow, and _sum/_count lines.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("opmapd_requests_total", "path", "/api/sweep", "status", "200").Add(3)
	r.Counter("opmapd_requests_total", "path", "/api/compare", "status", "200").Inc()
	r.Counter("opmapd_sheds_total")
	r.Gauge("opmapd_inflight").Set(2)
	h := r.Histogram("opmap_stage_duration_seconds", []float64{0.01, 0.1, 1}, "stage", "compare")
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.25)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	// Deterministic order: counters, gauges, histograms; within each
	// kind, series sorted by family then labels.
	want := `# TYPE opmapd_requests_total counter
opmapd_requests_total{path="/api/compare",status="200"} 1
opmapd_requests_total{path="/api/sweep",status="200"} 3
# TYPE opmapd_sheds_total counter
opmapd_sheds_total 0
# TYPE opmapd_inflight gauge
opmapd_inflight 2
# TYPE opmap_stage_duration_seconds histogram
opmap_stage_duration_seconds_bucket{stage="compare",le="0.01"} 1
opmap_stage_duration_seconds_bucket{stage="compare",le="0.1"} 2
opmap_stage_duration_seconds_bucket{stage="compare",le="1"} 3
opmap_stage_duration_seconds_bucket{stage="compare",le="+Inf"} 3
opmap_stage_duration_seconds_sum{stage="compare"} 0.305
opmap_stage_duration_seconds_count{stage="compare"} 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestJSONExposition checks the JSON form round-trips through
// encoding/json and carries the same values as the metrics.
func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total").Add(7)
	r.Gauge("inflight").Set(1)
	r.Histogram("lat_seconds", []float64{0.1, 1}).Observe(0.5)

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Count   int64   `json:"count"`
			Sum     float64 `json:"sum"`
			Buckets []struct {
				LE    string `json:"le"`
				Count int64  `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("exposition is not JSON: %v\n%s", err, b.String())
	}
	if doc.Counters["reqs_total"] != 7 {
		t.Errorf("counters[reqs_total] = %d, want 7", doc.Counters["reqs_total"])
	}
	if doc.Gauges["inflight"] != 1 {
		t.Errorf("gauges[inflight] = %d, want 1", doc.Gauges["inflight"])
	}
	hist := doc.Histograms["lat_seconds"]
	if hist.Count != 1 || len(hist.Buckets) != 3 {
		t.Errorf("histograms[lat_seconds] = %+v, want count 1 with 3 buckets", hist)
	}
	// 0.5 falls into the le=1 bucket but not le=0.1.
	if hist.Buckets[0].Count != 0 || hist.Buckets[1].Count != 1 {
		t.Errorf("bucket counts = %+v, want [0 1 1]", hist.Buckets)
	}
}

// TestCounterIgnoresNegative pins the counter contract: counters are
// monotone, negative adds are dropped.
func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mono_total")
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Errorf("counter after Add(-3) = %d, want 5", got)
	}
}

// TestDefaultPreregistersStages: the process registry exposes every
// pipeline stage histogram before any stage has run, so a /metrics
// scrape right after startup already shows the full stage set.
func TestDefaultPreregistersStages(t *testing.T) {
	var b strings.Builder
	if err := Default().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, s := range PipelineStages {
		if !strings.Contains(out, `opmap_stage_duration_seconds_count{stage="`+s+`"}`) {
			t.Errorf("default exposition is missing stage %q", s)
		}
	}
	for _, name := range []string{CubeBuildHistogramName, CompareAttrHistogramName} {
		if !strings.Contains(out, name+"_count") {
			t.Errorf("default exposition is missing hot histogram %q", name)
		}
	}
}

// TestStageSpanRecords: a span observes exactly one duration into the
// stage's histogram in the default registry.
func TestStageSpanRecords(t *testing.T) {
	h := Default().Histogram(StageHistogramName, nil, "stage", "test_stage_span")
	before := h.Count()
	done := Stage("test_stage_span")
	done()
	if got := h.Count() - before; got != 1 {
		t.Errorf("span recorded %d observations, want 1", got)
	}
}

// TestHotArming pins the default: hot-path instrumentation is off
// until armed, and disarming restores the cheap path.
func TestHotArming(t *testing.T) {
	if HotArmed() {
		t.Fatal("hot instrumentation armed by default")
	}
	ArmHot(true)
	if !HotArmed() {
		t.Fatal("ArmHot(true) did not arm")
	}
	ArmHot(false)
	if HotArmed() {
		t.Fatal("ArmHot(false) did not disarm")
	}
}
