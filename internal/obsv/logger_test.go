package obsv

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func testLogger(level Level) (*Logger, *strings.Builder) {
	var b syncBuilder
	l := NewLogger(&b, level)
	l.now = func() time.Time { return time.Date(2026, 8, 5, 10, 0, 0, 0, time.UTC) }
	return l, &b.b
}

// syncBuilder serializes writes so the test can read the buffer after
// concurrent logging without a race.
type syncBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func TestLoggerFormat(t *testing.T) {
	l, b := testLogger(LevelInfo)
	ctx := WithRequestID(context.Background(), "abc-001")
	l.Info(ctx, "request served", "method", "GET", "path", "/api/compare", "status", 200, "dur", 1500*time.Microsecond)
	want := `ts=2026-08-05T10:00:00Z level=info msg="request served" request_id=abc-001 method=GET path=/api/compare status=200 dur=1.5ms` + "\n"
	if got := b.String(); got != want {
		t.Errorf("log line:\n got %q\nwant %q", got, want)
	}
}

func TestLoggerQuoting(t *testing.T) {
	l, b := testLogger(LevelInfo)
	l.Info(context.Background(), "msg", "err", errors.New(`boom: x="1"`), "empty", "")
	out := b.String()
	if !strings.Contains(out, `err="boom: x=\"1\""`) {
		t.Errorf("error value not quoted: %q", out)
	}
	if !strings.Contains(out, `empty=""`) {
		t.Errorf("empty value not quoted: %q", out)
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	l, b := testLogger(LevelWarn)
	ctx := context.Background()
	l.Debug(ctx, "dropped")
	l.Info(ctx, "dropped")
	l.Warn(ctx, "kept-warn")
	l.Error(ctx, "kept-error")
	out := b.String()
	if strings.Contains(out, "dropped") {
		t.Errorf("below-level records emitted: %q", out)
	}
	if !strings.Contains(out, "kept-warn") || !strings.Contains(out, "kept-error") {
		t.Errorf("at/above-level records missing: %q", out)
	}
	l.SetLevel(LevelDebug)
	l.Debug(ctx, "now-kept")
	if !strings.Contains(b.String(), "now-kept") {
		t.Error("SetLevel(debug) did not take effect")
	}
}

func TestLoggerOddKVAndNonStringKey(t *testing.T) {
	l, b := testLogger(LevelInfo)
	l.Info(context.Background(), "m", "lonely")
	if !strings.Contains(b.String(), "lonely=(missing)") {
		t.Errorf("odd kv pair not annotated: %q", b.String())
	}
}

func TestNopLoggerDropsEverything(t *testing.T) {
	// Must not panic and must stay silent; also covers the nil receiver.
	Nop().Error(context.Background(), "into the void")
	var l *Logger
	l.Info(context.Background(), "nil receiver")
}

func TestLoggerConcurrent(t *testing.T) {
	var sb syncBuilder
	l := NewLogger(&sb, LevelInfo)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Info(context.Background(), "line", "g", g, "i", i)
			}
		}(g)
	}
	wg.Wait()
	sb.mu.Lock()
	lines := strings.Split(strings.TrimSuffix(sb.b.String(), "\n"), "\n")
	sb.mu.Unlock()
	if len(lines) != 8*50 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*50)
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "ts=") || !strings.Contains(line, "msg=line") {
			t.Fatalf("interleaved/corrupt line: %q", line)
		}
	}
}

func TestRequestIDPropagation(t *testing.T) {
	if got := RequestID(context.Background()); got != "" {
		t.Errorf("RequestID on bare context = %q, want empty", got)
	}
	ctx := WithRequestID(context.Background(), "req-42")
	if got := RequestID(ctx); got != "req-42" {
		t.Errorf("RequestID = %q, want req-42", got)
	}
	a, b := NewRequestID(), NewRequestID()
	if a == b || a == "" {
		t.Errorf("NewRequestID not unique: %q vs %q", a, b)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) did not fail")
	}
}
