package obsv

import (
	"sync/atomic"
	"time"
)

// Stage-duration instrumentation. Every pipeline entry point opens a
// span (one clock read) and closes it when the stage returns (one
// more clock read plus a histogram observe), so BENCH_*.json and the
// /metrics endpoint can report real per-stage timings. Hot loops —
// the per-pair cube builds and the per-attribute compare scoring —
// are gated behind ArmHot: disarmed (the default) they cost a single
// atomic load per iteration and take no clock readings at all.

// StageHistogramName is the histogram family every stage span records
// into, labeled by stage.
const StageHistogramName = "opmap_stage_duration_seconds"

// Hot-path histogram families (disarmed by default; see ArmHot).
const (
	// CubeBuildHistogramName times each individual cube count in a
	// store build (the offline step's unit of work).
	CubeBuildHistogramName = "opmap_cube_build_seconds"
	// CompareAttrHistogramName times each candidate attribute scored
	// in the compare hot loop.
	CompareAttrHistogramName = "opmap_compare_attr_seconds"
)

// Pipeline stage names, one per instrumented entry point.
const (
	StageBuildCubes       = "build_cubes"
	StageCompare          = "compare"
	StageCompareOneVsRest = "compare_one_vs_rest"
	// StageCompareOneVsRestAll spans the batch one-vs-rest run over
	// every value of an attribute (one span for the whole fan-out).
	StageCompareOneVsRestAll = "compare_one_vs_rest_all"
	StageSweep               = "sweep"
	StagePermutationTest     = "permutation_test"
	StageImpressions         = "impressions"
	StageGIMine              = "gi_mine"
	// StageDrillDown spans one multi-condition drill-down run (root
	// comparison plus every frontier expansion).
	StageDrillDown = "drilldown"
)

// PipelineStages lists every known stage, in pipeline order. Default()
// pre-registers a histogram per stage so /metrics shows the full set
// even before a stage has run.
var PipelineStages = []string{
	StageBuildCubes,
	StageCompare,
	StageCompareOneVsRest,
	StageCompareOneVsRestAll,
	StageSweep,
	StagePermutationTest,
	StageImpressions,
	StageGIMine,
	StageDrillDown,
}

// Drill-down counter families, pre-registered by Default() so the
// explorer's metrics appear at zero before the first query.
const (
	// DrillDownRunsCounterName counts completed drill-down runs.
	DrillDownRunsCounterName = "opmap_drilldown_runs_total"
	// DrillDownNodesCounterName counts frontier nodes expanded across
	// all drill-down runs (the planner's unit of work).
	DrillDownNodesCounterName = "opmap_drilldown_nodes_total"
)

// Stage opens a timing span for the named pipeline stage and returns
// the closer. Idiomatic use is one line at the top of the entry point:
//
//	defer obsv.Stage(obsv.StageCompare)()
func Stage(name string) func() {
	h := Default().Histogram(StageHistogramName, nil, "stage", name)
	start := time.Now()
	return func() { h.ObserveSince(start) }
}

var hotArmed atomic.Bool

// ArmHot enables (or disables) hot-path instrumentation process-wide:
// the per-cube and per-attribute timers consulted via HotArmed. It is
// off by default so steady-state serving pays one atomic load per
// loop iteration and nothing else.
func ArmHot(on bool) { hotArmed.Store(on) }

// HotArmed reports whether hot-path instrumentation is armed.
func HotArmed() bool { return hotArmed.Load() }
