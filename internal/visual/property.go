package visual

import (
	"fmt"
	"io"

	"opmap/internal/compare"
)

// PropertyView renders the Fig. 8 view of a property attribute: for each
// value, the two sub-populations' record counts side by side, making the
// zero-count sides — the reason the attribute is an artifact — visually
// explicit ("It can be seen in the first grid on the left that the first
// phone does not use that attribute value at all (0 count)").
func PropertyView(w io.Writer, score compare.AttrScore, label1, label2 string) {
	fmt.Fprintf(w, "Property attribute %q — exclusivity ratio %.2f\n", score.Name, score.PropertyRatio)
	if !score.Property {
		fmt.Fprintf(w, "(note: below the property threshold; shown for inspection)\n")
	}
	var maxN int64 = 1
	for _, d := range score.Values {
		if d.N1 > maxN {
			maxN = d.N1
		}
		if d.N2 > maxN {
			maxN = d.N2
		}
	}
	const width = 24
	for _, d := range score.Values {
		fmt.Fprintf(w, "%-20s\n", d.Label)
		for _, side := range []struct {
			label string
			n     int64
		}{
			{label1, d.N1},
			{label2, d.N2},
		} {
			bar := hbar(float64(side.n)/float64(maxN), width)
			marker := ""
			if side.n == 0 {
				marker = "  <- 0 count (never uses this value)"
			}
			fmt.Fprintf(w, "  %-10s %s n=%d%s\n", side.label, bar, side.n, marker)
		}
	}
}
