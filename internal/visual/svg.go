package visual

import (
	"fmt"
	"io"
	"strings"

	"opmap/internal/compare"
	"opmap/internal/rulecube"
	"opmap/internal/stats"
)

// SVG rendering of the comparison and detailed views, so the figures can
// be saved as static vector images (the paper's Figs. 6–8 are GUI
// screenshots; these are their reproducible equivalents).

const (
	svgBarWidth   = 26
	svgBarGap     = 10
	svgGroupGap   = 34
	svgChartH     = 220
	svgMarginLeft = 56
	svgMarginTop  = 30
	svgMarginBot  = 64
)

type svgBuf struct {
	strings.Builder
}

func (b *svgBuf) rect(x, y, w, h float64, fill string, opacity float64) {
	fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="%.2f"/>`+"\n", x, y, w, h, fill, opacity)
}

func (b *svgBuf) line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n", x1, y1, x2, y2, stroke, width)
}

func (b *svgBuf) text(x, y float64, size int, anchor, s string) {
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="%d" font-family="sans-serif" text-anchor="%s">%s</text>`+"\n", x, y, size, anchor, escape(s))
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// ComparisonSVG renders the Fig. 7-style grouped bar chart for one
// compared attribute: per value, two bars (sub-population 1 and 2) with
// the CI margin drawn as a lighter cap region and the observed
// confidence as a red line, exactly as the paper describes its
// visualization ("The red lines are the actual drop rates... The grey
// region at the top of each bar is the confidence interval").
func ComparisonSVG(w io.Writer, res *compare.Result, score compare.AttrScore, label1, label2 string) error {
	n := len(score.Values)
	if n == 0 {
		return fmt.Errorf("visual: attribute %q has no values to draw", score.Name)
	}
	var maxCf float64
	for _, d := range score.Values {
		if v := d.Cf1 + d.E1; v > maxCf {
			maxCf = v
		}
		if v := d.Cf2 + d.E2; v > maxCf {
			maxCf = v
		}
	}
	if stats.IsZero(maxCf) {
		maxCf = 1
	}
	maxCf *= 1.1

	groupW := 2*svgBarWidth + svgBarGap
	width := svgMarginLeft + n*(groupW+svgGroupGap) + 20
	height := svgMarginTop + svgChartH + svgMarginBot

	var b svgBuf
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	b.text(float64(width)/2, 18, 14, "middle",
		fmt.Sprintf("%s: %s vs %s (M=%.1f)", score.Name, label1, label2, score.Score))

	yOf := func(cf float64) float64 {
		return svgMarginTop + svgChartH*(1-cf/maxCf)
	}
	// Axis and gridlines.
	b.line(svgMarginLeft, svgMarginTop, svgMarginLeft, svgMarginTop+svgChartH, "#444", 1)
	b.line(svgMarginLeft, svgMarginTop+svgChartH, float64(width-10), svgMarginTop+svgChartH, "#444", 1)
	for i := 0; i <= 4; i++ {
		cf := maxCf * float64(i) / 4
		y := yOf(cf)
		b.line(svgMarginLeft-4, y, svgMarginLeft, y, "#444", 1)
		b.text(svgMarginLeft-8, y+4, 10, "end", fmt.Sprintf("%.1f%%", 100*cf))
	}

	x := float64(svgMarginLeft + svgGroupGap/2)
	for _, d := range score.Values {
		drawBar := func(bx float64, cf, e float64, fill string) {
			y := yOf(cf)
			b.rect(bx, y, svgBarWidth, svgMarginTop+svgChartH-y, fill, 0.85)
			// CI region cap.
			top := yOf(cf + e)
			if top < y {
				b.rect(bx, top, svgBarWidth, y-top, "#999999", 0.45)
			}
			// Observed confidence as a red line.
			b.line(bx, y, bx+svgBarWidth, y, "#cc0000", 2)
		}
		drawBar(x, d.Cf1, d.E1, "#4878a8")
		drawBar(x+svgBarWidth+svgBarGap, d.Cf2, d.E2, "#a85448")
		b.text(x+float64(groupW)/2, svgMarginTop+svgChartH+16, 10, "middle", d.Label)
		b.text(x+float64(groupW)/2, svgMarginTop+svgChartH+30, 9, "middle",
			fmt.Sprintf("n=%d|%d", d.N1, d.N2))
		if d.W > 0 {
			b.text(x+float64(groupW)/2, svgMarginTop+svgChartH+44, 9, "middle",
				fmt.Sprintf("W=%.0f", d.W))
		}
		x += float64(groupW + svgGroupGap)
	}
	// Legend.
	ly := float64(height - 12)
	b.rect(svgMarginLeft, ly-10, 12, 12, "#4878a8", 0.85)
	b.text(svgMarginLeft+16, ly, 11, "start", label1)
	b.rect(svgMarginLeft+110, ly-10, 12, 12, "#a85448", 0.85)
	b.text(svgMarginLeft+126, ly, 11, "start", label2)
	b.WriteString("</svg>\n")

	_, err := io.WriteString(w, b.String())
	return err
}

// DetailedSVG renders the Fig. 6-style detailed 2-D cube view: one bar
// group per attribute value, one bar per class, height = confidence.
func DetailedSVG(w io.Writer, cube *rulecube.Cube) error {
	if cube.NumDims() != 1 {
		return fmt.Errorf("visual: DetailedSVG needs a 2-D rule cube")
	}
	card := cube.Dim(0)
	nc := cube.NumClasses()
	palette := []string{"#4878a8", "#a85448", "#6a994e", "#bc8034", "#7161a8", "#4aa0a0"}

	var maxCf float64
	for v := 0; v < card; v++ {
		for k := 0; k < nc; k++ {
			cf, err := cube.Confidence([]int32{int32(v)}, int32(k))
			if err != nil {
				return err
			}
			if cf > maxCf {
				maxCf = cf
			}
		}
	}
	if stats.IsZero(maxCf) {
		maxCf = 1
	}
	maxCf *= 1.1

	barW := 16
	groupW := nc*barW + 8
	width := svgMarginLeft + card*(groupW+20) + 20
	height := svgMarginTop + svgChartH + svgMarginBot

	var b svgBuf
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	b.text(float64(width)/2, 18, 14, "middle", fmt.Sprintf("%s × class", cube.AttrNames()[0]))
	yOf := func(cf float64) float64 { return svgMarginTop + svgChartH*(1-cf/maxCf) }
	b.line(svgMarginLeft, svgMarginTop, svgMarginLeft, svgMarginTop+svgChartH, "#444", 1)
	b.line(svgMarginLeft, svgMarginTop+svgChartH, float64(width-10), svgMarginTop+svgChartH, "#444", 1)
	for i := 0; i <= 4; i++ {
		cf := maxCf * float64(i) / 4
		y := yOf(cf)
		b.text(svgMarginLeft-8, y+4, 10, "end", fmt.Sprintf("%.1f%%", 100*cf))
	}
	x := float64(svgMarginLeft + 10)
	for v := 0; v < card; v++ {
		for k := 0; k < nc; k++ {
			cf, err := cube.Confidence([]int32{int32(v)}, int32(k))
			if err != nil {
				return err
			}
			y := yOf(cf)
			b.rect(x+float64(k*barW), y, float64(barW-2), svgMarginTop+svgChartH-y, palette[k%len(palette)], 0.85)
		}
		b.text(x+float64(groupW)/2, svgMarginTop+svgChartH+16, 10, "middle", cube.Dict(0).Label(int32(v)))
		x += float64(groupW + 20)
	}
	ly := float64(height - 12)
	lx := float64(svgMarginLeft)
	for k := 0; k < nc; k++ {
		b.rect(lx, ly-10, 12, 12, palette[k%len(palette)], 0.85)
		b.text(lx+16, ly, 11, "start", cube.ClassDict().Label(int32(k)))
		lx += 150
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
