package visual

import (
	"bytes"
	"strings"
	"testing"

	"opmap/internal/compare"
	"opmap/internal/dataset"
	"opmap/internal/gi"
	"opmap/internal/rulecube"
	"opmap/internal/workload"
)

func fixtures(t *testing.T) (*rulecube.Store, *compare.Result, compare.AttrScore, workload.GroundTruth) {
	t.Helper()
	ds, gt, err := workload.CallLog(workload.CallLogConfig{Seed: 21, Records: 30000, NoiseAttrs: 2})
	if err != nil {
		t.Fatal(err)
	}
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	attr := ds.AttrIndex(gt.PhoneAttr)
	v1, _ := ds.Column(attr).Dict.Lookup(gt.GoodPhone)
	v2, _ := ds.Column(attr).Dict.Lookup(gt.BadPhone)
	cls, _ := ds.ClassDict().Lookup(gt.DropClass)
	res, err := compare.New(store).Compare(compare.Input{Attr: attr, V1: v1, V2: v2, Class: cls}, compare.Options{})
	if err != nil {
		t.Fatal(err)
	}
	score, _, ok := res.Find(gt.DistinguishingAttr)
	if !ok {
		t.Fatal("distinguishing attribute missing")
	}
	return store, res, score, gt
}

func TestOverallRendersEveryAttribute(t *testing.T) {
	store, _, _, gt := fixtures(t)
	var buf bytes.Buffer
	rep, err := gi.MineAll(store, gi.TrendOptions{}, gi.ExceptionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Overall(&buf, store, OverallOptions{Scale: true, Trends: rep.Trends}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{gt.PhoneAttr, gt.DistinguishingAttr, gt.PropertyAttr} {
		if !strings.Contains(out, name) {
			t.Errorf("overall view missing attribute %q", name)
		}
	}
	if !strings.Contains(out, gt.DropClass) {
		t.Error("overall view missing class distribution")
	}
	// Class scaling note: sparklines should be present (block glyphs).
	if !strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Error("no bars rendered")
	}
}

func TestOverallTruncatesWideAttributes(t *testing.T) {
	store, _, _, _ := fixtures(t)
	var buf bytes.Buffer
	if err := Overall(&buf, store, OverallOptions{Scale: true, MaxValuesPerGrid: 2}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "values)") {
		t.Error("wide attributes should be marked as truncated")
	}
}

func TestDetailedShowsCountsAndRates(t *testing.T) {
	store, _, _, gt := fixtures(t)
	cube := store.Cube1(store.Dataset().AttrIndex(gt.PhoneAttr))
	var buf bytes.Buffer
	if err := Detailed(&buf, cube); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, gt.GoodPhone) || !strings.Contains(out, gt.BadPhone) {
		t.Error("detailed view missing phone values")
	}
	if !strings.Contains(out, "n=") || !strings.Contains(out, "%") {
		t.Error("detailed view missing counts/percentages (Fig. 6 requirement)")
	}
}

func TestDetailedRejects3D(t *testing.T) {
	store, _, _, _ := fixtures(t)
	attrs := store.Attrs()
	cube := store.Cube2(attrs[0], attrs[1])
	if err := Detailed(&bytes.Buffer{}, cube); err == nil {
		t.Error("3-D cube should be rejected")
	}
}

func TestComparisonViewShowsCIAndContributions(t *testing.T) {
	_, res, score, gt := fixtures(t)
	var buf bytes.Buffer
	Comparison(&buf, res, score, gt.GoodPhone, gt.BadPhone)
	out := buf.String()
	if !strings.Contains(out, "±") {
		t.Error("comparison view missing CI margins")
	}
	if !strings.Contains(out, "W=") {
		t.Error("comparison view missing contributions")
	}
	if !strings.Contains(out, "morning") {
		t.Error("comparison view missing value labels")
	}
	if !strings.Contains(out, "▒") {
		t.Error("comparison bars missing CI region glyphs (Fig. 7 grey regions)")
	}
}

func TestRankingSeparatesPropertyAttributes(t *testing.T) {
	_, res, _, gt := fixtures(t)
	var buf bytes.Buffer
	Ranking(&buf, res, 5)
	out := buf.String()
	if !strings.Contains(out, "Property attributes") {
		t.Error("ranking missing property section")
	}
	if !strings.Contains(out, gt.PropertyAttr) {
		t.Error("property attribute not listed")
	}
	// The top line must be the planted distinguishing attribute.
	lines := strings.Split(out, "\n")
	if len(lines) < 2 || !strings.Contains(lines[1], gt.DistinguishingAttr) {
		t.Errorf("first ranked line %q should name %q", lines[1], gt.DistinguishingAttr)
	}
}

func TestComparisonSVGWellFormed(t *testing.T) {
	_, res, score, gt := fixtures(t)
	var buf bytes.Buffer
	if err := ComparisonSVG(&buf, res, score, gt.GoodPhone, gt.BadPhone); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Error("SVG not well formed")
	}
	// Red observed-rate lines and grey CI rects per the paper's Fig. 7.
	if !strings.Contains(out, "#cc0000") {
		t.Error("missing red observed-rate lines")
	}
	if !strings.Contains(out, "#999999") {
		t.Error("missing grey CI regions")
	}
	if strings.Count(out, "<rect") < 2*len(score.Values) {
		t.Error("too few bars")
	}
}

func TestComparisonSVGEmptyScore(t *testing.T) {
	_, res, _, _ := fixtures(t)
	if err := ComparisonSVG(&bytes.Buffer{}, res, compare.AttrScore{Name: "empty"}, "a", "b"); err == nil {
		t.Error("empty score should fail")
	}
}

func TestDetailedSVGWellFormed(t *testing.T) {
	store, _, _, gt := fixtures(t)
	cube := store.Cube1(store.Dataset().AttrIndex(gt.DistinguishingAttr))
	var buf bytes.Buffer
	if err := DetailedSVG(&buf, cube); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") {
		t.Error("not an SVG")
	}
	if !strings.Contains(out, "morning") {
		t.Error("missing value labels")
	}
	// Escaping check.
	if strings.Contains(out, "<text") && strings.Contains(out, "&lt;script") {
		t.Error("unexpected content")
	}
}

func TestSVGEscape(t *testing.T) {
	if escape(`<a&"b>`) != "&lt;a&amp;&quot;b&gt;" {
		t.Errorf("escape = %q", escape(`<a&"b>`))
	}
}

func TestSparklineBounds(t *testing.T) {
	s := sparkline([]float64{-1, 0, 0.5, 1, 2}, 1)
	if len([]rune(s)) != 5 {
		t.Errorf("sparkline length %d, want 5", len([]rune(s)))
	}
	// Out-of-range values clamp to first/last glyph.
	runes := []rune(s)
	if runes[0] != barGlyphs[0] || runes[4] != barGlyphs[len(barGlyphs)-1] {
		t.Error("clamping broken")
	}
	if sparkline([]float64{0.5}, 0) == "" {
		t.Error("zero max should not panic or return empty")
	}
}

func TestHbar(t *testing.T) {
	if hbar(0.5, 10) != "█████·····" {
		t.Errorf("hbar = %q", hbar(0.5, 10))
	}
	if hbar(-1, 4) != "····" || hbar(2, 4) != "████" {
		t.Error("hbar clamping broken")
	}
}

func TestCIBar(t *testing.T) {
	b := ciBar(0.5, 0.25, 1, 8)
	if len([]rune(b)) != 8 {
		t.Fatalf("width = %d", len([]rune(b)))
	}
	if !strings.Contains(b, "▒") {
		t.Error("CI region missing")
	}
	// Zero margin → no fuzzy region.
	if strings.Contains(ciBar(0.5, 0, 1, 8), "▒") {
		t.Error("zero margin should have no CI region")
	}
}

func TestTrendArrow(t *testing.T) {
	if trendArrow(gi.Increasing) != "↑" || trendArrow(gi.Decreasing) != "↓" || trendArrow(gi.Stable) != "→" {
		t.Error("trend arrows wrong")
	}
	if trendArrow(gi.NoTrend) != " " {
		t.Error("no-trend should be blank")
	}
}

func TestDictEdge(t *testing.T) {
	// Property view content is exercised via Ranking; ensure rendering a
	// cube with one empty class doesn't panic.
	b, _ := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "a", Kind: dataset.Categorical},
			{Name: "c", Kind: dataset.Categorical},
		},
		ClassIndex: 1,
	})
	b.WithDict(1, dataset.DictionaryOf("only", "never"))
	b.AddRow([]string{"x", "only"})
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cube, err := rulecube.Build(ds, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := Detailed(&bytes.Buffer{}, cube); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyView(t *testing.T) {
	_, res, _, gt := fixtures(t)
	var prop compare.AttrScore
	found := false
	for _, p := range res.Property {
		if p.Name == gt.PropertyAttr {
			prop = p
			found = true
		}
	}
	if !found {
		t.Fatal("planted property attribute missing")
	}
	var buf bytes.Buffer
	PropertyView(&buf, prop, gt.GoodPhone, gt.BadPhone)
	out := buf.String()
	if !strings.Contains(out, "exclusivity ratio 1.00") {
		t.Error("ratio missing")
	}
	if !strings.Contains(out, "<- 0 count") {
		t.Error("zero-count marker missing (the Fig. 8 point)")
	}
	if !strings.Contains(out, gt.PropertyAttr) {
		t.Error("attribute name missing")
	}
	// A non-property score renders with a caveat, not a panic.
	buf.Reset()
	PropertyView(&buf, compare.AttrScore{Name: "x"}, "a", "b")
	if !strings.Contains(buf.String(), "below the property threshold") {
		t.Error("non-property caveat missing")
	}
}

func TestDetailed3D(t *testing.T) {
	store, _, _, gt := fixtures(t)
	ds := store.Dataset()
	cube := store.Cube2(ds.AttrIndex(gt.PhoneAttr), ds.AttrIndex(gt.DistinguishingAttr))
	var buf bytes.Buffer
	if err := Detailed3D(&buf, cube); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, gt.PhoneAttr) || !strings.Contains(out, gt.DistinguishingAttr) {
		t.Error("3-D view missing attribute names")
	}
	if !strings.Contains(out, gt.GoodPhone) {
		t.Error("3-D view missing first-dimension values")
	}
	if !strings.Contains(out, "morning=") {
		t.Error("3-D view missing annotated second-dimension confidences")
	}
	// Rejects 2-D cubes.
	if err := Detailed3D(&bytes.Buffer{}, store.Cube1(ds.AttrIndex(gt.PhoneAttr))); err == nil {
		t.Error("2-D cube should be rejected")
	}
}

func TestOverallSVGWellFormed(t *testing.T) {
	store, _, _, gt := fixtures(t)
	rep, err := gi.MineAll(store, gi.TrendOptions{}, gi.ExceptionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := OverallSVG(&buf, store, OverallOptions{Scale: true, Trends: rep.Trends}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("SVG not well formed")
	}
	for _, name := range []string{gt.PhoneAttr, gt.DistinguishingAttr} {
		if !strings.Contains(out, name) {
			t.Errorf("overall SVG missing attribute %q", name)
		}
	}
	if !strings.Contains(out, gt.DropClass) {
		t.Error("overall SVG missing class headers")
	}
	// One grid frame per attribute per class.
	wantFrames := len(store.Attrs()) * store.Dataset().NumClasses()
	if strings.Count(out, "#f4f4f4") != wantFrames {
		t.Errorf("grid frames = %d, want %d", strings.Count(out, "#f4f4f4"), wantFrames)
	}
}
