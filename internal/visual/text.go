// Package visual renders rule cubes and comparison results as static
// text and SVG — the deterministic counterpart of the Opportunity Map
// GUI (Section V.A–B). The overall view corresponds to Fig. 5 (all 2-D
// rule cubes in an attribute × class matrix with class scaling and trend
// arrows), the detailed view to Fig. 6, the comparison view with
// confidence-interval regions to Fig. 7, and the property-attribute view
// to Fig. 8.
package visual

import (
	"fmt"
	"io"
	"strings"

	"opmap/internal/compare"
	"opmap/internal/gi"
	"opmap/internal/rulecube"
	"opmap/internal/stats"
)

// barGlyphs are eighth-block glyphs for sub-character bar resolution.
var barGlyphs = []rune(" ▁▂▃▄▅▆▇█")

// sparkline renders values in [0, max] as a one-line bar strip.
func sparkline(values []float64, max float64) string {
	if max <= 0 {
		max = 1
	}
	var sb strings.Builder
	for _, v := range values {
		frac := v / max
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		idx := int(frac * float64(len(barGlyphs)-1))
		sb.WriteRune(barGlyphs[idx])
	}
	return sb.String()
}

// hbar renders a horizontal bar of width proportional to frac in [0,1].
func hbar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	full := int(frac * float64(width))
	return strings.Repeat("█", full) + strings.Repeat("·", width-full)
}

func trendArrow(kind gi.TrendKind) string {
	switch kind {
	case gi.Increasing:
		return "↑"
	case gi.Decreasing:
		return "↓"
	case gi.Stable:
		return "→"
	default:
		return " "
	}
}

// OverallOptions tunes the overall (Fig. 5) text view.
type OverallOptions struct {
	// Scale applies per-class scaling so minority classes are visible
	// (the paper's automatic scaling). Default true via NewOverall.
	Scale bool
	// MaxValuesPerGrid truncates wide attributes (the paper colors such
	// grids light blue); zero means 24.
	MaxValuesPerGrid int
	// Trends, if non-nil, annotates grids with trend arrows.
	Trends []gi.Trend
}

// Overall writes the Fig. 5-style overall visualization of a cube store:
// one row per class, one block per attribute showing the confidences of
// all one-condition rules for that class as a sparkline, plus each
// attribute's data-distribution strip.
func Overall(w io.Writer, store *rulecube.Store, opts OverallOptions) error {
	maxVals := opts.MaxValuesPerGrid
	if maxVals == 0 {
		maxVals = 24
	}
	trendFor := func(attr int, class int32) string {
		for _, t := range opts.Trends {
			if t.Attr == attr && t.Class == class {
				return trendArrow(t.Kind)
			}
		}
		return " "
	}

	ds := store.Dataset()
	classDict := ds.ClassDict()
	classDist := ds.ClassDistribution()
	var totalRecords int64
	for _, n := range classDist {
		totalRecords += n
	}
	fmt.Fprintf(w, "Overall visualization — %d attributes × %d classes (%d records)\n", len(store.Attrs()), ds.NumClasses(), totalRecords)
	fmt.Fprintf(w, "Class distribution:\n")
	for k, n := range classDist {
		frac := 0.0
		if totalRecords > 0 {
			frac = float64(n) / float64(totalRecords)
		}
		fmt.Fprintf(w, "  %-24s %s %6.2f%% (%d)\n", classDict.Label(int32(k)), hbar(frac, 24), 100*frac, n)
	}
	fmt.Fprintln(w)

	for _, a := range store.Attrs() {
		cube := store.Cube1(a)
		card := cube.Dim(0)
		truncated := ""
		shown := card
		if shown > maxVals {
			shown = maxVals
			truncated = fmt.Sprintf(" …(+%d values)", card-shown)
		}
		marg, err := cube.ValueMarginals(0)
		if err != nil {
			return err
		}
		var maxMarg int64
		for _, m := range marg {
			if m > maxMarg {
				maxMarg = m
			}
		}
		dist := make([]float64, shown)
		for v := 0; v < shown; v++ {
			if maxMarg > 0 {
				dist[v] = float64(marg[v]) / float64(maxMarg)
			}
		}
		fmt.Fprintf(w, "%-24s dist %s%s\n", ds.Attr(a).Name, sparkline(dist, 1), truncated)

		scale := make([]float64, cube.NumClasses())
		for k := range scale {
			scale[k] = 1
		}
		if opts.Scale {
			scale = cube.ScaleFactors()
		}
		for k := int32(0); int(k) < cube.NumClasses(); k++ {
			confs := make([]float64, shown)
			var maxConf float64
			for v := 0; v < shown; v++ {
				cf, err := cube.Confidence([]int32{int32(v)}, k)
				if err != nil {
					return err
				}
				confs[v] = cf * scale[k]
				if confs[v] > maxConf {
					maxConf = confs[v]
				}
			}
			if stats.IsZero(maxConf) {
				maxConf = 1
			}
			fmt.Fprintf(w, "  %s %-22s %s\n", trendFor(a, k), classDict.Label(k), sparkline(confs, maxConf))
		}
	}
	return nil
}

// Detailed writes the Fig. 6-style detailed view of one 2-D rule cube:
// exact confidences, counts and percentages per value and class.
func Detailed(w io.Writer, cube *rulecube.Cube) error {
	if cube.NumDims() != 1 {
		return fmt.Errorf("visual: Detailed needs a 2-D rule cube, got %d condition dims", cube.NumDims())
	}
	fmt.Fprintf(w, "Detailed view — %s × class (%d records)\n", cube.AttrNames()[0], cube.Total())
	dict := cube.Dict(0)
	classDict := cube.ClassDict()
	for v := int32(0); int(v) < cube.Dim(0); v++ {
		cond, err := cube.CondCount([]int32{v})
		if err != nil {
			return err
		}
		share := 0.0
		if cube.Total() > 0 {
			share = float64(cond) / float64(cube.Total())
		}
		fmt.Fprintf(w, "%-20s  n=%-9d (%.2f%% of data)\n", dict.Label(v), cond, 100*share)
		for k := int32(0); int(k) < cube.NumClasses(); k++ {
			n, err := cube.Count([]int32{v}, k)
			if err != nil {
				return err
			}
			cf, err := cube.Confidence([]int32{v}, k)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "    %-24s %s %7.3f%%  (%d)\n", classDict.Label(k), hbar(cf, 30), 100*cf, n)
		}
	}
	return nil
}

// Comparison writes the Fig. 7-style view of one compared attribute:
// for each value, the two sub-populations' confidences side by side with
// their confidence-interval margins and the value's contribution W_k.
func Comparison(w io.Writer, res *compare.Result, score compare.AttrScore, label1, label2 string) {
	fmt.Fprintf(w, "Comparison on %q — %s (cf=%.4f) vs %s (cf=%.4f), ratio %.2f\n",
		score.Name, label1, res.Cf1, label2, res.Cf2, res.Ratio)
	if score.Property {
		fmt.Fprintf(w, "PROPERTY ATTRIBUTE (ratio %.2f > threshold): shown for reference only\n", score.PropertyRatio)
	}
	fmt.Fprintf(w, "M = %.2f (normalized %.4f)\n", score.Score, score.NormScore)

	var maxCf float64
	for _, d := range score.Values {
		hi := d.Cf1 + d.E1
		if d.Cf2+d.E2 > hi {
			hi = d.Cf2 + d.E2
		}
		if hi > maxCf {
			maxCf = hi
		}
	}
	if stats.IsZero(maxCf) {
		maxCf = 1
	}
	const width = 28
	for _, d := range score.Values {
		fmt.Fprintf(w, "%-20s\n", d.Label)
		fmt.Fprintf(w, "  %-10s %s %7.3f%% ±%.3f%%  (n=%d)\n", label1, ciBar(d.Cf1, d.E1, maxCf, width), 100*d.Cf1, 100*d.E1, d.N1)
		fmt.Fprintf(w, "  %-10s %s %7.3f%% ±%.3f%%  (n=%d)", label2, ciBar(d.Cf2, d.E2, maxCf, width), 100*d.Cf2, 100*d.E2, d.N2)
		if d.W > 0 {
			fmt.Fprintf(w, "   W=%.1f", d.W)
		}
		fmt.Fprintln(w)
	}
}

// ciBar renders a bar to value/max with a trailing CI region of '▒' up
// to (value+margin)/max, the text analogue of Fig. 7's grey regions.
func ciBar(value, margin, max float64, width int) string {
	v := value / max
	hi := (value + margin) / max
	if v < 0 {
		v = 0
	}
	if hi > 1 {
		hi = 1
	}
	if v > 1 {
		v = 1
	}
	solid := int(v * float64(width))
	fuzzy := int(hi*float64(width)) - solid
	if fuzzy < 0 {
		fuzzy = 0
	}
	rest := width - solid - fuzzy
	if rest < 0 {
		rest = 0
	}
	return strings.Repeat("█", solid) + strings.Repeat("▒", fuzzy) + strings.Repeat("·", rest)
}

// Ranking writes the ranked attribute list of a comparison result, with
// property attributes listed separately (Fig. 8's separate list).
func Ranking(w io.Writer, res *compare.Result, topN int) {
	fmt.Fprintf(w, "Attribute ranking (top %d of %d; %d property attributes set aside)\n",
		min(topN, len(res.Ranked)), len(res.Ranked), len(res.Property))
	var maxScore float64
	if len(res.Ranked) > 0 {
		maxScore = res.Ranked[0].Score
	}
	if stats.IsZero(maxScore) {
		maxScore = 1
	}
	for i, s := range res.Ranked {
		if i >= topN {
			break
		}
		fmt.Fprintf(w, "%3d. %-28s %s M=%.2f\n", i+1, s.Name, hbar(s.Score/maxScore, 24), s.Score)
	}
	if len(res.Property) > 0 {
		fmt.Fprintln(w, "Property attributes (Section IV.C):")
		for _, s := range res.Property {
			fmt.Fprintf(w, "   - %-28s ratio=%.2f M=%.2f\n", s.Name, s.PropertyRatio, s.Score)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
