package visual

import (
	"fmt"
	"io"

	"opmap/internal/rulecube"
	"opmap/internal/stats"
)

// OverallSVG renders the Fig. 5 overall visualization as an SVG
// document: one row per attribute, one grid per class holding the
// confidences of all one-condition rules as thumbnail bars, with
// per-class scaling and trend arrows — the static equivalent of the
// deployed system's entry screen.
func OverallSVG(w io.Writer, store *rulecube.Store, opts OverallOptions) error {
	maxVals := opts.MaxValuesPerGrid
	if maxVals == 0 {
		maxVals = 24
	}
	ds := store.Dataset()
	classDict := ds.ClassDict()
	numClasses := ds.NumClasses()
	attrs := store.Attrs()

	const (
		rowH    = 34
		gridW   = 150
		gridGap = 14
		nameW   = 190
		headerH = 46
		barPad  = 1
	)
	width := nameW + numClasses*(gridW+gridGap) + 20
	height := headerH + len(attrs)*rowH + 20

	trendFor := func(attr int, class int32) string {
		for _, t := range opts.Trends {
			if t.Attr == attr && t.Class == class {
				return trendArrow(t.Kind)
			}
		}
		return ""
	}

	var b svgBuf
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.text(float64(nameW), 16, 13, "start",
		fmt.Sprintf("Overall view — %d attributes × %d classes", len(attrs), numClasses))
	for k := 0; k < numClasses; k++ {
		x := float64(nameW + k*(gridW+gridGap))
		b.text(x, headerH-8, 11, "start", classDict.Label(int32(k)))
	}

	palette := []string{"#4878a8", "#a85448", "#6a994e", "#bc8034", "#7161a8", "#4aa0a0"}
	for row, a := range attrs {
		y := float64(headerH + row*rowH)
		cube := store.Cube1(a)
		card := cube.Dim(0)
		shown := card
		if shown > maxVals {
			shown = maxVals
		}
		name := ds.Attr(a).Name
		if card > maxVals {
			name += fmt.Sprintf(" (+%d)", card-shown)
		}
		b.text(4, y+rowH/2+4, 11, "start", name)

		scale := make([]float64, numClasses)
		for k := range scale {
			scale[k] = 1
		}
		if opts.Scale {
			scale = cube.ScaleFactors()
		}
		for k := 0; k < numClasses; k++ {
			gx := float64(nameW + k*(gridW+gridGap))
			// Grid frame.
			b.rect(gx, y+2, gridW, rowH-6, "#f4f4f4", 1)
			var maxConf float64
			confs := make([]float64, shown)
			for v := 0; v < shown; v++ {
				cf, err := cube.Confidence([]int32{int32(v)}, int32(k))
				if err != nil {
					return err
				}
				confs[v] = cf * scale[k]
				if confs[v] > maxConf {
					maxConf = confs[v]
				}
			}
			if stats.IsZero(maxConf) {
				maxConf = 1
			}
			barW := float64(gridW)/float64(shown) - barPad
			if barW < 1 {
				barW = 1
			}
			for v := 0; v < shown; v++ {
				h := (rowH - 8) * confs[v] / maxConf
				b.rect(gx+float64(v)*(barW+barPad), y+2+(rowH-6)-h, barW, h, palette[k%len(palette)], 0.85)
			}
			if arrow := trendFor(a, int32(k)); arrow != "" {
				b.text(gx+gridW-2, y+12, 11, "end", arrow)
			}
		}
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
