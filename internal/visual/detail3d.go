package visual

import (
	"fmt"
	"io"

	"opmap/internal/rulecube"
	"opmap/internal/stats"
)

// Detailed3D renders a 3-D rule cube (two condition attributes × class)
// as a matrix of grids: one row per value of the first attribute, one
// column block per class, each cell holding the confidence bar of the
// second attribute's values — the "3-dimensional rule cube" detailed
// view of Section V.B. Slicing the first dimension to two values and
// reading one class column is exactly the comparison layout of Fig. 7.
func Detailed3D(w io.Writer, cube *rulecube.Cube) error {
	if cube.NumDims() != 2 {
		return fmt.Errorf("visual: Detailed3D needs a 3-D rule cube, got %d condition dims", cube.NumDims())
	}
	names := cube.AttrNames()
	fmt.Fprintf(w, "Detailed view — %s × %s × class (%d records)\n", names[0], names[1], cube.Total())

	d0, d1 := cube.Dim(0), cube.Dim(1)
	classDict := cube.ClassDict()
	dict0, dict1 := cube.Dict(0), cube.Dict(1)

	// Per-class maximum confidence for scaling, so minority classes
	// remain visible (the paper's class scaling).
	maxConf := make([]float64, cube.NumClasses())
	for v0 := 0; v0 < d0; v0++ {
		for v1 := 0; v1 < d1; v1++ {
			for k := 0; k < cube.NumClasses(); k++ {
				cf, err := cube.Confidence([]int32{int32(v0), int32(v1)}, int32(k))
				if err != nil {
					return err
				}
				if cf > maxConf[k] {
					maxConf[k] = cf
				}
			}
		}
	}

	for v0 := 0; v0 < d0; v0++ {
		var rowTotal int64
		for v1 := 0; v1 < d1; v1++ {
			n, err := cube.CondCount([]int32{int32(v0), int32(v1)})
			if err != nil {
				return err
			}
			rowTotal += n
		}
		fmt.Fprintf(w, "%s=%s (n=%d)\n", names[0], dict0.Label(int32(v0)), rowTotal)
		for k := int32(0); int(k) < cube.NumClasses(); k++ {
			confs := make([]float64, d1)
			for v1 := 0; v1 < d1; v1++ {
				cf, err := cube.Confidence([]int32{int32(v0), int32(v1)}, k)
				if err != nil {
					return err
				}
				confs[v1] = cf
			}
			scale := maxConf[k]
			if stats.IsZero(scale) {
				scale = 1
			}
			fmt.Fprintf(w, "  %-24s %s", classDict.Label(k), sparkline(confs, scale))
			// Annotate the per-value confidences for narrow cubes.
			if d1 <= 8 {
				fmt.Fprint(w, "  [")
				for v1 := 0; v1 < d1; v1++ {
					if v1 > 0 {
						fmt.Fprint(w, " ")
					}
					fmt.Fprintf(w, "%s=%.2f%%", dict1.Label(int32(v1)), 100*confs[v1])
				}
				fmt.Fprint(w, "]")
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}
