package compare

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"opmap/internal/faultinject"
	"opmap/internal/testutil"
)

func TestCompareContextPreCanceled(t *testing.T) {
	store, gt, ds := buildCaseStudy(t, 4000, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := New(store).CompareContext(ctx, inputFor(t, ds, gt), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCompareContextFaultError(t *testing.T) {
	defer faultinject.Reset()
	store, gt, ds := buildCaseStudy(t, 4000, 6)
	disarm, err := faultinject.Arm(faultinject.Fault{
		Site: faultinject.SiteCompareAttr,
		Kind: faultinject.Error,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	if _, err := New(store).CompareContext(context.Background(), inputFor(t, ds, gt), Options{}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

// TestSweepContextStrictFaultFailsWithPairLabel pins the strict-mode
// contract: a failing pair fails the sweep with the pair named, so a
// deadline is attributable to a specific comparison.
func TestSweepContextStrictFaultFailsWithPairLabel(t *testing.T) {
	defer faultinject.Reset()
	store, gt, ds := buildCaseStudy(t, 4000, 6)
	disarm, err := faultinject.Arm(faultinject.Fault{
		Site: faultinject.SiteSweepPair,
		Kind: faultinject.Error,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	attr := ds.AttrIndex(gt.PhoneAttr)
	cls, _ := ds.ClassDict().Lookup(gt.DropClass)
	_, err = New(store).SweepContext(context.Background(), attr, cls, SweepOptions{})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "sweep pair") {
		t.Errorf("strict sweep error %q does not name the failing pair", err)
	}
}

// TestSweepContextPartialAnnotatesAndContinues: in partial mode a
// single failing pair is annotated in Errors and the remaining pairs
// still compare.
func TestSweepContextPartialAnnotatesAndContinues(t *testing.T) {
	defer faultinject.Reset()
	store, gt, ds := buildCaseStudy(t, 4000, 6)
	disarm, err := faultinject.Arm(faultinject.Fault{
		Site:  faultinject.SiteSweepPair,
		Kind:  faultinject.Error,
		Times: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	attr := ds.AttrIndex(gt.PhoneAttr)
	cls, _ := ds.ClassDict().Lookup(gt.DropClass)
	// Loosen the screen so several pairs survive: the test needs at
	// least one pair after the injected failure.
	screen := ScreenOptions{MinSupport: 1, MinZ: 0.001}
	cmp := New(store)
	pairs, err := cmp.ScreenPairs(attr, cls, screen)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) < 2 {
		t.Fatalf("fixture yields %d screened pairs, need >= 2", len(pairs))
	}
	res, err := cmp.SweepContext(context.Background(), attr, cls, SweepOptions{Partial: true, Screen: screen})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Error("Partial not set despite an annotated pair")
	}
	if len(res.Errors) != 1 {
		t.Fatalf("Errors = %v, want exactly the one injected pair", res.Errors)
	}
	if !strings.Contains(res.Errors[0].Err, faultinject.ErrInjected.Error()) {
		t.Errorf("annotation %q does not carry the injected error", res.Errors[0].Err)
	}
	if res.PairsCompared == 0 {
		t.Error("no pairs compared after the injected failure; partial mode must continue")
	}
}

// TestSweepContextPartialDeadline: with the context already gone,
// partial mode returns an empty-but-well-formed result annotating
// every comparable pair instead of an error.
func TestSweepContextPartialDeadline(t *testing.T) {
	store, gt, ds := buildCaseStudy(t, 4000, 6)
	attr := ds.AttrIndex(gt.PhoneAttr)
	cls, _ := ds.ClassDict().Lookup(gt.DropClass)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := New(store).SweepContext(ctx, attr, cls, SweepOptions{Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Error("Partial not set on expired context")
	}
	if res.PairsCompared != 0 {
		t.Errorf("PairsCompared = %d on a pre-canceled context", res.PairsCompared)
	}
	if len(res.Errors) == 0 {
		t.Fatal("no pairs annotated")
	}
	for _, e := range res.Errors {
		if !strings.Contains(e.Err, context.Canceled.Error()) {
			t.Errorf("annotation %q does not mention cancellation", e.Err)
		}
	}
}

// TestSweepContextCancelMidSweep is the bounded-return acceptance test
// for sweeps: cancel during a stalled pair and SweepContext must
// return ctx.Err() within 100ms.
func TestSweepContextCancelMidSweep(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	defer faultinject.Reset()
	store, gt, ds := buildCaseStudy(t, 4000, 6)
	disarm, err := faultinject.Arm(faultinject.Fault{
		Site:  faultinject.SiteSweepPair,
		Kind:  faultinject.Delay,
		Delay: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	attr := ds.AttrIndex(gt.PhoneAttr)
	cls, _ := ds.ClassDict().Lookup(gt.DropClass)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := New(store).SweepContext(ctx, attr, cls, SweepOptions{})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // land inside the stalled pair
	cancel()
	start := time.Now()
	select {
	case err := <-done:
		if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
			t.Errorf("sweep returned %v after cancel, want <= 100ms", elapsed)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sweep did not return within 2s of cancel")
	}
}

// TestOneVsRestContextPartial: an expired context with
// PartialOnDeadline yields a degraded result with every candidate
// attribute annotated instead of an error.
func TestOneVsRestContextPartial(t *testing.T) {
	store, gt, ds := buildCaseStudy(t, 4000, 6)
	in := inputFor(t, ds, gt)
	ovr := OneVsRestInput{Attr: in.Attr, Value: in.V1, Class: in.Class}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	// Strict mode: the cancellation is an error.
	if _, err := New(store).OneVsRestContext(ctx, ovr, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("strict err = %v, want context.Canceled", err)
	}

	res, err := New(store).OneVsRestContext(ctx, ovr, Options{PartialOnDeadline: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Error("Partial not set on expired context")
	}
	if len(res.Ranked) != 0 {
		t.Errorf("Ranked has %d entries on a pre-canceled context", len(res.Ranked))
	}
	want := ds.NumAttrs() - 2 // all but the comparison attribute and the class
	if len(res.Unscored) != want {
		t.Errorf("Unscored = %d attributes, want %d", len(res.Unscored), want)
	}
}

func TestPermutationTestContextPreCanceled(t *testing.T) {
	_, gt, ds := buildCaseStudy(t, 4000, 6)
	in := inputFor(t, ds, gt)
	attr := ds.AttrIndex(gt.DistinguishingAttr)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := PermutationTestContext(ctx, ds, in, attr, 50, 7, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
