package compare

import (
	"fmt"
	"sort"

	"opmap/internal/stats"
)

// Sweep runs the full screen-then-compare loop over an attribute: every
// significantly different value pair is compared, and the distinguishing
// attributes are aggregated across pairs. The paper's application cares
// about exactly this distinction — situations where "all phones or even
// a particular model of phones are more likely to fail" (Section I). An
// attribute that tops the ranking for *many* pairs points at a systemic
// cause (network, environment); one that only distinguishes a single
// pair points at that product.

// SweepOptions configures a sweep.
type SweepOptions struct {
	// Screen tunes the pair-screening stage.
	Screen ScreenOptions
	// Compare tunes each comparison.
	Compare Options
	// TopK is how many leading attributes of each comparison count as
	// "distinguishing" for the aggregation. Zero means 3.
	TopK int
	// MinScore ignores ranked attributes below this M when aggregating
	// (defaults to 0: any positive score counts).
	MinScore float64
}

func (o SweepOptions) topK() int {
	if o.TopK == 0 {
		return 3
	}
	return o.TopK
}

// SweepAttribute aggregates one attribute's appearances across pair
// comparisons.
type SweepAttribute struct {
	Attr int
	Name string
	// Pairs is how many compared pairs ranked the attribute within the
	// sweep's TopK with M > MinScore.
	Pairs int
	// BestScore and BestPair identify the strongest single appearance.
	BestScore float64
	BestPair  [2]string
	// TotalScore sums M across qualifying appearances.
	TotalScore float64
}

// SweepResult is the aggregate of a sweep.
type SweepResult struct {
	// PairsCompared is the number of screened pairs that completed a
	// comparison (pairs with an undefined ratio are skipped).
	PairsCompared int
	PairsSkipped  int
	// Attributes lists aggregated distinguishing attributes, most
	// recurrent first (ties by total score).
	Attributes []SweepAttribute
	// Comparisons holds each pair's full result for drill-down, keyed in
	// screening order.
	Comparisons []*Result
	PairLabels  [][2]string
}

// Sweep screens attr's value pairs on the class and compares every
// significant pair.
func (c *Comparator) Sweep(attr int, class int32, opts SweepOptions) (*SweepResult, error) {
	pairs, err := c.ScreenPairs(attr, class, opts.Screen)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{}
	agg := make(map[int]*SweepAttribute)
	for _, p := range pairs {
		if stats.IsZero(p.Cf1) {
			res.PairsSkipped++ // ratio undefined; the comparator cannot take it
			continue
		}
		cmp, err := c.Compare(Input{Attr: attr, V1: p.V1, V2: p.V2, Class: class}, opts.Compare)
		if err != nil {
			return nil, fmt.Errorf("compare: sweep pair (%s,%s): %w", p.Label1, p.Label2, err)
		}
		res.PairsCompared++
		res.Comparisons = append(res.Comparisons, cmp)
		res.PairLabels = append(res.PairLabels, [2]string{p.Label1, p.Label2})
		for rank, s := range cmp.Ranked {
			if rank >= opts.topK() || s.Score <= opts.MinScore {
				break
			}
			a := agg[s.Attr]
			if a == nil {
				a = &SweepAttribute{Attr: s.Attr, Name: s.Name}
				agg[s.Attr] = a
			}
			a.Pairs++
			a.TotalScore += s.Score
			if s.Score > a.BestScore {
				a.BestScore = s.Score
				a.BestPair = [2]string{p.Label1, p.Label2}
			}
		}
	}
	for _, a := range agg {
		res.Attributes = append(res.Attributes, *a)
	}
	sort.SliceStable(res.Attributes, func(i, j int) bool {
		if res.Attributes[i].Pairs != res.Attributes[j].Pairs {
			return res.Attributes[i].Pairs > res.Attributes[j].Pairs
		}
		switch {
		case res.Attributes[i].TotalScore > res.Attributes[j].TotalScore:
			return true
		case res.Attributes[j].TotalScore > res.Attributes[i].TotalScore:
			return false
		}
		return res.Attributes[i].Name < res.Attributes[j].Name
	})
	return res, nil
}
