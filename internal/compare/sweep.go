package compare

import (
	"context"
	"fmt"
	"math"
	"sort"

	"opmap/internal/faultinject"
	"opmap/internal/stats"
)

// Sweep runs the full screen-then-compare loop over an attribute: every
// significantly different value pair is compared, and the distinguishing
// attributes are aggregated across pairs. The paper's application cares
// about exactly this distinction — situations where "all phones or even
// a particular model of phones are more likely to fail" (Section I). An
// attribute that tops the ranking for *many* pairs points at a systemic
// cause (network, environment); one that only distinguishes a single
// pair points at that product.

// SweepOptions configures a sweep.
type SweepOptions struct {
	// Screen tunes the pair-screening stage.
	Screen ScreenOptions
	// Compare tunes each comparison.
	Compare Options
	// TopK is how many leading attributes of each comparison count as
	// "distinguishing" for the aggregation. Zero means 3.
	TopK int
	// MinScore ignores ranked attributes below this M when aggregating
	// (defaults to 0: any positive score counts).
	MinScore float64
	// Partial makes SweepContext return the pairs compared so far when
	// the context expires mid-sweep, annotating the skipped pairs in
	// SweepResult.Errors, instead of failing the whole sweep.
	Partial bool
	// DisableBatch turns off the up-front shared-scan cube prefetch
	// (engine.CubeSource.Cubes) so every cube is faulted in one by one,
	// as before the batch engine existed. Results are identical either
	// way; the flag exists for benchmarking the shared-scan win and for
	// oracle tests, and is not part of result-cache identity.
	DisableBatch bool
}

// validate rejects option values the aggregation loop would otherwise
// misread silently: a negative TopK used to flow through topK() and
// terminate every per-pair aggregation immediately (an empty sweep with
// no error), and a NaN MinScore disables the score floor entirely
// because every comparison against NaN is false.
func (o SweepOptions) validate() error {
	if o.TopK < 0 {
		return fmt.Errorf("compare: negative TopK %d", o.TopK)
	}
	if math.IsNaN(o.MinScore) {
		return fmt.Errorf("compare: MinScore must not be NaN")
	}
	return nil
}

func (o SweepOptions) topK() int {
	if o.TopK == 0 {
		return 3
	}
	return o.TopK
}

// SweepAttribute aggregates one attribute's appearances across pair
// comparisons.
type SweepAttribute struct {
	Attr int
	Name string
	// Pairs is how many compared pairs ranked the attribute within the
	// sweep's TopK with M > MinScore.
	Pairs int
	// BestScore and BestPair identify the strongest single appearance.
	BestScore float64
	BestPair  [2]string
	// TotalScore sums M across qualifying appearances.
	TotalScore float64
}

// SweepResult is the aggregate of a sweep.
type SweepResult struct {
	// PairsCompared is the number of screened pairs that completed a
	// comparison (pairs with an undefined ratio are skipped).
	PairsCompared int
	PairsSkipped  int
	// Attributes lists aggregated distinguishing attributes, most
	// recurrent first (ties by total score).
	Attributes []SweepAttribute
	// Comparisons holds each pair's full result for drill-down, keyed in
	// screening order.
	Comparisons []*Result
	PairLabels  [][2]string
	// Partial is set when the sweep stopped early because the context
	// expired and SweepOptions.Partial allowed degradation; the pairs
	// that were not compared are annotated in Errors.
	Partial bool
	Errors  []ItemError
}

// Sweep screens attr's value pairs on the class and compares every
// significant pair.
func (c *Comparator) Sweep(attr int, class int32, opts SweepOptions) (*SweepResult, error) {
	return c.SweepContext(context.Background(), attr, class, opts)
}

// SweepContext is Sweep under a context, checked once per screened
// pair. When opts.Partial is set and the context expires mid-sweep the
// pairs compared so far are aggregated and returned with Partial set
// and the remaining pairs annotated in Errors; otherwise the first
// context or comparison error fails the sweep.
func (c *Comparator) SweepContext(ctx context.Context, attr int, class int32, opts SweepOptions) (*SweepResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if !opts.DisableBatch {
		// Declare the sweep's full cube needs up front: the split
		// attribute's 1-D cube (screening and rule counting) plus every
		// (split, candidate) pair cube. A lazy source answers all cache
		// misses from one shared dataset scan; afterwards the loop below
		// only hits resident cubes.
		if err := c.prefetchPairs(ctx, attr, opts.Compare.Attrs, false); err != nil {
			return nil, err
		}
	}
	pairs, err := c.ScreenPairsContext(ctx, attr, class, opts.Screen)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{}
	agg := make(map[int]*SweepAttribute)
	for i, p := range pairs {
		if stats.IsZero(p.Cf1) {
			res.PairsSkipped++ // ratio undefined; the comparator cannot take it
			continue
		}
		err := ctxOrFault(ctx, faultinject.SiteSweepPair)
		if err == nil {
			var cmp *Result
			cmp, err = c.CompareContext(ctx, Input{Attr: attr, V1: p.V1, V2: p.V2, Class: class}, opts.Compare)
			if err == nil {
				res.PairsCompared++
				aggregatePair(res, agg, cmp, p.Label1, p.Label2, opts)
				continue
			}
		}
		if !opts.Partial {
			return nil, fmt.Errorf("compare: sweep pair (%s,%s): %w", p.Label1, p.Label2, err)
		}
		res.Partial = true
		res.Errors = append(res.Errors, ItemError{
			Item: p.Label1 + " vs " + p.Label2,
			Err:  err.Error(),
		})
		if ctx.Err() != nil {
			// The context is gone: annotate the rest without attempting them.
			for _, q := range pairs[i+1:] {
				if stats.IsZero(q.Cf1) {
					res.PairsSkipped++
					continue
				}
				res.Errors = append(res.Errors, ItemError{
					Item: q.Label1 + " vs " + q.Label2,
					Err:  ctx.Err().Error(),
				})
			}
			break
		}
	}
	finishSweep(res, agg)
	return res, nil
}

// aggregatePair folds one pair's comparison into the sweep aggregate.
func aggregatePair(res *SweepResult, agg map[int]*SweepAttribute, cmp *Result, label1, label2 string, opts SweepOptions) {
	res.Comparisons = append(res.Comparisons, cmp)
	res.PairLabels = append(res.PairLabels, [2]string{label1, label2})
	for rank, s := range cmp.Ranked {
		if rank >= opts.topK() || s.Score <= opts.MinScore {
			break
		}
		a := agg[s.Attr]
		if a == nil {
			a = &SweepAttribute{Attr: s.Attr, Name: s.Name}
			agg[s.Attr] = a
		}
		a.Pairs++
		a.TotalScore += s.Score
		if s.Score > a.BestScore {
			a.BestScore = s.Score
			a.BestPair = [2]string{label1, label2}
		}
	}
}

// finishSweep flattens and orders the aggregate; it runs on both the
// complete and the partial path so degraded results stay sorted.
func finishSweep(res *SweepResult, agg map[int]*SweepAttribute) {
	for _, a := range agg {
		res.Attributes = append(res.Attributes, *a)
	}
	sort.SliceStable(res.Attributes, func(i, j int) bool {
		if res.Attributes[i].Pairs != res.Attributes[j].Pairs {
			return res.Attributes[i].Pairs > res.Attributes[j].Pairs
		}
		switch {
		case res.Attributes[i].TotalScore > res.Attributes[j].TotalScore:
			return true
		case res.Attributes[j].TotalScore > res.Attributes[i].TotalScore:
			return false
		}
		return res.Attributes[i].Name < res.Attributes[j].Name
	})
}
