package compare

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests of the interestingness measure's mathematical
// invariants (Section IV.A), all with CI disabled so the raw Eq. 1–3
// algebra is under test.

// randomTable draws a random but valid per-value contingency table with
// a nonzero class rate on both sides.
func randomTable(rng *rand.Rand, card int) (n1, c1, n2, c2 []int64) {
	n1 = make([]int64, card)
	c1 = make([]int64, card)
	n2 = make([]int64, card)
	c2 = make([]int64, card)
	for k := 0; k < card; k++ {
		n1[k] = int64(rng.Intn(5000) + 100)
		n2[k] = int64(rng.Intn(5000) + 100)
		c1[k] = int64(rng.Intn(int(n1[k]/4) + 1))
		c2[k] = int64(rng.Intn(int(n2[k]/4) + 1))
	}
	// Guarantee nonzero totals on both sides.
	c1[0]++
	c2[0]++
	return
}

// TestMeasureNonNegative: M ≥ 0 always (Eq. 2 clips negative F).
func TestMeasureNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n1, c1, n2, c2 := randomTable(rng, 2+rng.Intn(6))
		score, _, err := CompareValues("a", nil, n1, c1, n2, c2, noCI)
		if err != nil {
			t.Fatal(err)
		}
		if score.Score < 0 {
			t.Fatalf("trial %d: M = %v < 0", trial, score.Score)
		}
		for _, d := range score.Values {
			if d.W < 0 {
				t.Fatalf("trial %d: W = %v < 0", trial, d.W)
			}
		}
	}
}

// TestMeasurePermutationInvariant: shuffling the value order leaves M
// unchanged (it is a sum over values).
func TestMeasurePermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		card := 3 + rng.Intn(5)
		n1, c1, n2, c2 := randomTable(rng, card)
		base, _, err := CompareValues("a", nil, n1, c1, n2, c2, noCI)
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(card)
		pn1 := make([]int64, card)
		pc1 := make([]int64, card)
		pn2 := make([]int64, card)
		pc2 := make([]int64, card)
		for i, p := range perm {
			pn1[i], pc1[i], pn2[i], pc2[i] = n1[p], c1[p], n2[p], c2[p]
		}
		shuffled, _, err := CompareValues("a", nil, pn1, pc1, pn2, pc2, noCI)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(base.Score-shuffled.Score) > 1e-6*math.Max(1, base.Score) {
			t.Fatalf("trial %d: M changed under permutation: %v vs %v", trial, base.Score, shuffled.Score)
		}
	}
}

// TestMeasureCountScaling: multiplying every count by a constant k
// multiplies M by exactly k (confidences are ratios; W scales with N_2k).
func TestMeasureCountScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		card := 2 + rng.Intn(4)
		n1, c1, n2, c2 := randomTable(rng, card)
		k := int64(2 + rng.Intn(5))
		scale := func(xs []int64) []int64 {
			out := make([]int64, len(xs))
			for i, x := range xs {
				out[i] = x * k
			}
			return out
		}
		base, _, err := CompareValues("a", nil, n1, c1, n2, c2, noCI)
		if err != nil {
			t.Fatal(err)
		}
		scaled, _, err := CompareValues("a", nil, scale(n1), scale(c1), scale(n2), scale(c2), noCI)
		if err != nil {
			t.Fatal(err)
		}
		want := base.Score * float64(k)
		if math.Abs(scaled.Score-want) > 1e-6*math.Max(1, want) {
			t.Fatalf("trial %d: scaling by %d: M %v, want %v", trial, k, scaled.Score, want)
		}
		// NormScore, by contrast, is scale-invariant.
		if math.Abs(scaled.NormScore-base.NormScore) > 1e-9 {
			t.Fatalf("trial %d: NormScore changed under count scaling: %v vs %v",
				trial, base.NormScore, scaled.NormScore)
		}
	}
}

// TestMeasureZeroWhenProportional: for any base rates and any value
// distribution, making cf_2k = ratio·cf_1k for every k yields M = 0.
func TestMeasureZeroWhenProportional(t *testing.T) {
	f := func(seeds [4]uint16) bool {
		rng := rand.New(rand.NewSource(int64(seeds[0]) + int64(seeds[1])<<16))
		card := 2 + rng.Intn(4)
		n := make([]int64, card)
		c1 := make([]int64, card)
		c2 := make([]int64, card)
		for k := 0; k < card; k++ {
			n[k] = 10000
			base := int64(rng.Intn(200) + 50) // cf1k in [0.5%, 2.5%]
			c1[k] = base
			c2[k] = base * 2 // cf2k = 2·cf1k everywhere ⇒ ratio exactly 2
		}
		score, res, err := CompareValues("a", nil, n, c1, n, c2, noCI)
		if err != nil {
			return false
		}
		return math.Abs(res.Ratio-2) < 1e-9 && score.Score < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestMeasureMonotoneInConcentration: moving class records of D2 from a
// low-cf1 value into an already-excess value increases M (concentration
// is more interesting, the Fig. 4(B) intuition).
func TestMeasureMonotoneInConcentration(t *testing.T) {
	n1 := []int64{10000, 10000}
	c1 := []int64{200, 200} // flat 2%
	n2 := []int64{10000, 10000}
	for extra := int64(0); extra <= 200; extra += 50 {
		// Keep D2's total class count fixed at 800: shift `extra` drops
		// from value 1 into value 0.
		c2a := []int64{400 + extra, 400 - extra}
		a, _, err := CompareValues("a", nil, n1, c1, n2, c2a, noCI)
		if err != nil {
			t.Fatal(err)
		}
		c2b := []int64{400 + extra + 50, 400 - extra - 50}
		b, _, err := CompareValues("a", nil, n1, c1, n2, c2b, noCI)
		if err != nil {
			t.Fatal(err)
		}
		if b.Score <= a.Score {
			t.Fatalf("extra=%d: concentrating increased M from %v to %v (should grow)", extra, a.Score, b.Score)
		}
	}
}

// TestCINeverIncreasesContribution: for every value, the CI-adjusted W
// is at most the raw W (rcf2 ≤ cf2 and rcf1 ≥ cf1 ⇒ F shrinks).
func TestCINeverIncreasesContribution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		card := 2 + rng.Intn(5)
		n1, c1, n2, c2 := randomTable(rng, card)
		raw, _, err := CompareValues("a", nil, n1, c1, n2, c2, noCI)
		if err != nil {
			t.Fatal(err)
		}
		adj, _, err := CompareValues("a", nil, n1, c1, n2, c2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if adj.Score > raw.Score+1e-9 {
			t.Fatalf("trial %d: CI increased M: %v > %v", trial, adj.Score, raw.Score)
		}
		for k := range raw.Values {
			if adj.Values[k].W > raw.Values[k].W+1e-9 {
				t.Fatalf("trial %d value %d: CI increased W", trial, k)
			}
		}
	}
}

// TestOrientationInvariance: swapping which sub-population is passed
// first never changes the measure (orientation is normalized).
func TestOrientationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		card := 2 + rng.Intn(4)
		n1, c1, n2, c2 := randomTable(rng, card)
		a, _, errA := CompareValues("a", nil, n1, c1, n2, c2, noCI)
		b, _, errB := CompareValues("a", nil, n2, c2, n1, c1, noCI)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("trial %d: error asymmetry: %v vs %v", trial, errA, errB)
		}
		if errA != nil {
			continue
		}
		if math.Abs(a.Score-b.Score) > 1e-9*math.Max(1, a.Score) {
			t.Fatalf("trial %d: orientation changed M: %v vs %v", trial, a.Score, b.Score)
		}
	}
}
