package compare

import (
	"math"
	"testing"
)

func TestOneVsRestRecoversPlantedCause(t *testing.T) {
	// The bad phone's drops concentrate in the morning, so comparing
	// "morning vs rest" on the drop class should surface Phone-Model as
	// the best-distinguishing attribute (only the bad phone misbehaves
	// in the morning) — the Section III.C scenario.
	store, gt, ds := buildCaseStudy(t, 60000, 5)
	timeAttr := ds.AttrIndex(gt.DistinguishingAttr)
	morning, ok := ds.Column(timeAttr).Dict.Lookup(gt.MorningValue)
	if !ok {
		t.Fatal("morning value missing")
	}
	cls, _ := ds.ClassDict().Lookup(gt.DropClass)
	res, err := New(store).OneVsRest(OneVsRestInput{Attr: timeAttr, Value: morning, Class: cls}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cf1 >= res.Cf2 {
		t.Fatalf("orientation broken: cf1=%v cf2=%v", res.Cf1, res.Cf2)
	}
	// Morning is the worse side, so the comparison should NOT be swapped
	// (rest has the lower drop rate).
	if !res.Swapped {
		t.Error("morning side has the higher rate; expected Swapped=true orientation bookkeeping")
	}
	if len(res.Ranked) == 0 {
		t.Fatal("no ranked attributes")
	}
	first := res.Ranked[0].Name
	if first != gt.PhoneAttr && first != gt.PropertyAttr {
		t.Errorf("top attribute = %q, want %q (or its proxy %q)", first, gt.PhoneAttr, gt.PropertyAttr)
	}
}

func TestOneVsRestCountsConsistent(t *testing.T) {
	store, gt, ds := buildCaseStudy(t, 20000, 2)
	timeAttr := ds.AttrIndex(gt.DistinguishingAttr)
	cls, _ := ds.ClassDict().Lookup(gt.DropClass)
	res, err := New(store).OneVsRest(OneVsRestInput{Attr: timeAttr, Value: 0, Class: cls}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The two sides partition the cube total.
	if res.Rule1.CondCount+res.Rule2.CondCount != store.Cube1(timeAttr).Total() {
		t.Errorf("sides do not partition the data: %d + %d != %d",
			res.Rule1.CondCount, res.Rule2.CondCount, store.Cube1(timeAttr).Total())
	}
	// Per candidate attribute, N1+N2 per value equals the marginal.
	for _, s := range append(res.Ranked, res.Property...) {
		marg := store.Cube1(s.Attr)
		for _, d := range s.Values {
			all, err := marg.CondCount([]int32{d.Value})
			if err != nil {
				t.Fatal(err)
			}
			if d.N1+d.N2 != all {
				t.Fatalf("%s=%s: %d + %d != marginal %d", s.Name, d.Label, d.N1, d.N2, all)
			}
		}
	}
}

func TestOneVsRestValidation(t *testing.T) {
	store, gt, ds := buildCaseStudy(t, 5000, 0)
	cls, _ := ds.ClassDict().Lookup(gt.DropClass)
	c := New(store)
	timeAttr := ds.AttrIndex(gt.DistinguishingAttr)
	if _, err := c.OneVsRest(OneVsRestInput{Attr: ds.ClassIndex(), Value: 0, Class: cls}, Options{}); err == nil {
		t.Error("class attribute should fail")
	}
	if _, err := c.OneVsRest(OneVsRestInput{Attr: timeAttr, Value: 99, Class: cls}, Options{}); err == nil {
		t.Error("bad value should fail")
	}
	if _, err := c.OneVsRest(OneVsRestInput{Attr: timeAttr, Value: 0, Class: 99}, Options{}); err == nil {
		t.Error("bad class should fail")
	}
	if _, err := c.OneVsRest(OneVsRestInput{Attr: timeAttr, Value: 0, Class: cls}, Options{MinRuleSupport: 1 << 40}); err == nil {
		t.Error("MinRuleSupport should reject")
	}
}

func TestOneVsRestAgreesWithScanOnTwoValueAttr(t *testing.T) {
	// For a two-valued attribute, one-vs-rest IS the pairwise comparison.
	store, gt, ds := buildCaseStudy(t, 40000, 2)
	// Build a two-valued view by comparing hardware version? Phone has 6
	// values; use Signal-Band (3 values)? Need exactly 2. Construct via
	// the proportional attr? Simplest: dice isn't available on datasets,
	// so check internal consistency instead: one-vs-rest on value v of a
	// 2-valued attribute equals Compare(v, other).
	// The call log has no 2-valued attribute, so synthesize agreement on
	// counts: OneVsRest(phone=good) rest-side counts must equal the sum
	// of all other phones' counts.
	phone := ds.AttrIndex(gt.PhoneAttr)
	good, _ := ds.Column(phone).Dict.Lookup(gt.GoodPhone)
	cls, _ := ds.ClassDict().Lookup(gt.DropClass)
	res, err := New(store).OneVsRest(OneVsRestInput{Attr: phone, Value: good, Class: cls}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cube := store.Cube1(phone)
	var restCond, restSup int64
	for v := int32(0); int(v) < cube.Dim(0); v++ {
		if v == good {
			continue
		}
		n, _ := cube.CondCount([]int32{v})
		s, _ := cube.Count([]int32{v}, cls)
		restCond += n
		restSup += s
	}
	// The good phone has the lower rate, so Rule2 is the rest side.
	if res.Rule2.CondCount != restCond || res.Rule2.SupCount != restSup {
		t.Errorf("rest side counts (%d,%d), want (%d,%d)",
			res.Rule2.CondCount, res.Rule2.SupCount, restCond, restSup)
	}
}

func TestScreenPairsFindsPlantedGap(t *testing.T) {
	store, gt, ds := buildCaseStudy(t, 60000, 2)
	phone := ds.AttrIndex(gt.PhoneAttr)
	cls, _ := ds.ClassDict().Lookup(gt.DropClass)
	pairs, err := New(store).ScreenPairs(phone, cls, ScreenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("no candidate pairs")
	}
	top := pairs[0]
	// The most significant gap must involve the bad phone.
	if top.Label1 != gt.BadPhone && top.Label2 != gt.BadPhone {
		t.Errorf("top pair (%s,%s) does not involve the bad phone %q", top.Label1, top.Label2, gt.BadPhone)
	}
	if top.Cf1 >= top.Cf2 {
		t.Error("pair not oriented")
	}
	if top.Z < 2 {
		t.Errorf("top z = %v", top.Z)
	}
	if top.PValue > 0.05 {
		t.Errorf("top p = %v", top.PValue)
	}
	// Sorted by descending z among finite-ratio pairs.
	for i := 1; i < len(pairs); i++ {
		if math.IsInf(pairs[i-1].Ratio, 1) && !math.IsInf(pairs[i].Ratio, 1) {
			t.Fatal("infinite-ratio pairs must sort last")
		}
		if !math.IsInf(pairs[i-1].Ratio, 1) && !math.IsInf(pairs[i].Ratio, 1) &&
			pairs[i].Z > pairs[i-1].Z+1e-12 {
			t.Fatal("pairs not sorted by z")
		}
	}
}

func TestScreenPairsOptions(t *testing.T) {
	store, gt, ds := buildCaseStudy(t, 20000, 0)
	phone := ds.AttrIndex(gt.PhoneAttr)
	cls, _ := ds.ClassDict().Lookup(gt.DropClass)
	c := New(store)
	all, err := c.ScreenPairs(phone, cls, ScreenOptions{MinZ: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := c.ScreenPairs(phone, cls, ScreenOptions{MinZ: 0.0001, MaxPairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 2 {
		t.Errorf("MaxPairs not honored: %d", len(capped))
	}
	if len(all) < len(capped) {
		t.Error("cap returned more than uncapped")
	}
	// Huge min support filters all values.
	none, err := c.ScreenPairs(phone, cls, ScreenOptions{MinSupport: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Error("MinSupport not honored")
	}
	if _, err := c.ScreenPairs(ds.ClassIndex(), cls, ScreenOptions{}); err == nil {
		t.Error("class attribute should fail")
	}
	if _, err := c.ScreenPairs(phone, 99, ScreenOptions{}); err == nil {
		t.Error("bad class should fail")
	}
}

func TestTwoProportionZ(t *testing.T) {
	// Identical proportions → z = 0.
	if z := twoProportionZ(10, 100, 20, 200); z != 0 {
		t.Errorf("equal proportions z = %v", z)
	}
	// Known value: 10/100 vs 20/100, pooled 0.15.
	z := twoProportionZ(10, 100, 20, 100)
	want := (0.2 - 0.1) / math.Sqrt(0.15*0.85*(0.02))
	if math.Abs(z-want) > 1e-12 {
		t.Errorf("z = %v, want %v", z, want)
	}
	if twoProportionZ(0, 0, 5, 10) != 0 {
		t.Error("zero n should yield 0")
	}
	if twoProportionZ(0, 10, 0, 10) != 0 {
		t.Error("zero pooled should yield 0")
	}
}

func TestScreenThenCompareWorkflow(t *testing.T) {
	// The intended workflow: screen pairs, feed the top pair to Compare.
	store, gt, ds := buildCaseStudy(t, 60000, 2)
	phone := ds.AttrIndex(gt.PhoneAttr)
	cls, _ := ds.ClassDict().Lookup(gt.DropClass)
	c := New(store)
	pairs, err := c.ScreenPairs(phone, cls, ScreenOptions{MaxPairs: 1})
	if err != nil || len(pairs) == 0 {
		t.Fatalf("screening failed: %v", err)
	}
	res, err := c.Compare(Input{Attr: phone, V1: pairs[0].V1, V2: pairs[0].V2, Class: cls}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranked[0].Name != gt.DistinguishingAttr {
		t.Errorf("screen→compare top = %q, want %q", res.Ranked[0].Name, gt.DistinguishingAttr)
	}
}
