package compare

import (
	"context"
	"fmt"
	"math"
	"sort"

	"opmap/internal/dataset"
	"opmap/internal/rulecube"
	"opmap/internal/stats"
)

// Pair screening automates the step that precedes a comparison: the
// user notices in the detailed view that two values of an attribute have
// very different confidences ("drop rates of the two phones are very
// different"). With hundreds of products, finding the pairs worth
// comparing is itself tedious — "Imagine in the application, many pairs
// of phones need to be compared" (Section III.C). ScreenPairs ranks all
// value pairs of an attribute by the statistical significance of their
// confidence gap, so the analyst starts from the most divergent pair.

// PairCandidate is a value pair whose class confidences differ.
type PairCandidate struct {
	Attr   int
	V1, V2 int32 // oriented so conf(V1) < conf(V2)
	Label1 string
	Label2 string

	Cf1, Cf2 float64
	N1, N2   int64
	// Ratio is Cf2/Cf1 (Inf when Cf1 is 0 — such pairs cannot feed the
	// comparator directly and are ranked last).
	Ratio float64
	// Z is the two-proportion z statistic of the gap; PValue its
	// two-sided p-value; QValue the Benjamini–Hochberg adjusted p-value
	// across all screened pairs of the attribute (screening is a
	// multiple-testing exercise).
	Z      float64
	PValue float64
	QValue float64
}

// ScreenOptions tunes pair screening.
type ScreenOptions struct {
	// MinSupport skips values with fewer records. Zero means 100 — the
	// paper assumes "both supports are large enough for meaningful
	// analysis".
	MinSupport int64
	// MaxPairs caps the result. Zero means all pairs.
	MaxPairs int
	// MinZ drops pairs whose |z| is below this. Zero means 2.
	MinZ float64
}

func (o ScreenOptions) minSupport() int64 {
	if o.MinSupport == 0 {
		return 100
	}
	return o.MinSupport
}

func (o ScreenOptions) minZ() float64 {
	if stats.IsZero(o.MinZ) {
		return 2
	}
	return o.MinZ
}

// ScreenPairs ranks the value pairs of attr by the significance of
// their confidence difference on the class, most significant first.
func (c *Comparator) ScreenPairs(attr int, class int32, opts ScreenOptions) ([]PairCandidate, error) {
	return c.ScreenPairsContext(context.Background(), attr, class, opts)
}

// ScreenPairsContext is ScreenPairs under a context: a lazy source may
// need to materialize the attribute's 1-D cube first.
func (c *Comparator) ScreenPairsContext(ctx context.Context, attr int, class int32, opts ScreenOptions) ([]PairCandidate, error) {
	ds := c.ds
	if attr < 0 || attr >= ds.NumAttrs() || attr == ds.ClassIndex() {
		return nil, fmt.Errorf("compare: invalid attribute %d", attr)
	}
	if class < 0 || int(class) >= ds.NumClasses() {
		return nil, fmt.Errorf("compare: class %d out of range", class)
	}
	cube, err := c.src.Cube1(ctx, attr)
	if err != nil {
		return nil, fmt.Errorf("compare: attribute %d unavailable: %w", attr, err)
	}
	// The screen itself is cardinality-bounded work over the resident
	// cube and runs to completion even under a canceled context: the
	// sweep's partial mode depends on a complete candidate list so it
	// can annotate every pair it will not compare.
	sides, err := collectSides(cube, class, opts)
	if err != nil {
		return nil, err
	}
	out := screenCandidates(sides, cube.Dict(0), attr, opts)
	applyFDR(out)
	sort.SliceStable(out, func(i, j int) bool {
		// Pairs the comparator can consume (finite ratio) first, then by
		// descending significance.
		fi, fj := math.IsInf(out[i].Ratio, 1), math.IsInf(out[j].Ratio, 1)
		if fi != fj {
			return !fi
		}
		switch {
		case out[i].Z > out[j].Z:
			return true
		case out[j].Z > out[i].Z:
			return false
		}
		return out[i].Label1+out[i].Label2 < out[j].Label1+out[j].Label2
	})
	if opts.MaxPairs > 0 && len(out) > opts.MaxPairs {
		out = out[:opts.MaxPairs]
	}
	return out, nil
}

// side is one attribute value that passed the support screen, with its
// condition count, class count and confidence.
type side struct {
	v    int32
	n, s int64
	cf   float64
}

// collectSides reads each value's condition and class counts from the
// 1-D cube and keeps the values meeting the support threshold.
func collectSides(cube *rulecube.Cube, class int32, opts ScreenOptions) ([]side, error) {
	var sides []side
	for v := int32(0); int(v) < cube.Dim(0); v++ {
		n, err := cube.CondCount([]int32{v})
		if err != nil {
			return nil, err
		}
		if n < opts.minSupport() {
			continue
		}
		s, err := cube.Count([]int32{v}, class)
		if err != nil {
			return nil, err
		}
		sides = append(sides, side{v: v, n: n, s: s, cf: float64(s) / float64(n)})
	}
	return sides, nil
}

// screenCandidates forms every value pair whose confidence difference
// clears the z threshold, oriented so Cf1 <= Cf2.
func screenCandidates(sides []side, dict *dataset.Dictionary, attr int, opts ScreenOptions) []PairCandidate {
	var out []PairCandidate
	for i := 0; i < len(sides); i++ {
		for j := i + 1; j < len(sides); j++ {
			a, b := sides[i], sides[j]
			if a.cf > b.cf {
				a, b = b, a
			}
			z := twoProportionZ(a.s, a.n, b.s, b.n)
			if math.Abs(z) < opts.minZ() {
				continue
			}
			pc := PairCandidate{
				Attr:   attr,
				V1:     a.v,
				V2:     b.v,
				Label1: dict.Label(a.v),
				Label2: dict.Label(b.v),
				Cf1:    a.cf,
				Cf2:    b.cf,
				N1:     a.n,
				N2:     b.n,
				Z:      math.Abs(z),
				PValue: 2 * (1 - stats.NormalCDF(math.Abs(z))),
			}
			if a.cf > 0 {
				pc.Ratio = b.cf / a.cf
			} else {
				pc.Ratio = math.Inf(1)
			}
			out = append(out, pc)
		}
	}
	return out
}

// applyFDR fills each candidate's QValue with the Benjamini-Hochberg
// adjustment across all screened pairs.
func applyFDR(out []PairCandidate) {
	ps := make([]float64, len(out))
	for i := range out {
		ps[i] = out[i].PValue
	}
	for i, q := range stats.AdjustBH(ps) {
		out[i].QValue = q
	}
}

// twoProportionZ computes the pooled two-proportion z statistic for
// (s1/n1) vs (s2/n2).
func twoProportionZ(s1, n1, s2, n2 int64) float64 {
	if n1 == 0 || n2 == 0 {
		return 0
	}
	p1 := float64(s1) / float64(n1)
	p2 := float64(s2) / float64(n2)
	pooled := float64(s1+s2) / float64(n1+n2)
	se := math.Sqrt(pooled * (1 - pooled) * (1/float64(n1) + 1/float64(n2)))
	if stats.IsZero(se) {
		return 0
	}
	return (p2 - p1) / se
}
