package compare

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"opmap/internal/dataset"
	"opmap/internal/rulecube"
	"opmap/internal/workload"
)

// noCI disables the interval adjustment so tests can check the raw
// Eq. 1–3 arithmetic exactly.
var noCI = Options{DisableCI: true}

// TestMeasureBoundaryMin reproduces Fig. 2(A)/Fig. 4(A): when the bad
// phone's drop rate is exactly ratio× the good phone's for every value,
// the attribute is expected and M must be 0.
func TestMeasureBoundaryMin(t *testing.T) {
	// Good phone: 2% drops everywhere; bad phone: 4% everywhere.
	// 10000 calls per time-of-day per phone.
	n1 := []int64{10000, 10000, 10000}
	c1 := []int64{200, 200, 200} // 2%
	n2 := []int64{10000, 10000, 10000}
	c2 := []int64{400, 400, 400} // 4%
	score, res, err := CompareValues("Time-of-Call", []string{"morning", "afternoon", "evening"}, n1, c1, n2, c2, noCI)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio != 2 {
		t.Fatalf("ratio = %v, want 2", res.Ratio)
	}
	if score.Score != 0 {
		t.Errorf("proportional situation: M = %v, want 0 (Fig. 4(A))", score.Score)
	}
	for _, d := range score.Values {
		if d.F > 1e-12 {
			t.Errorf("value %s has positive F = %v in the expected situation", d.Label, d.F)
		}
	}
}

// TestMeasureBoundaryMax reproduces Fig. 4(B): all of D2's drops in one
// value at 100% confidence where D1 is lowest — the maximal M.
func TestMeasureBoundaryMax(t *testing.T) {
	// D1 (ph1): 2% overall, evening lowest (1%).
	n1 := []int64{10000, 10000, 10000}
	c1 := []int64{250, 250, 100}
	// D2 (ph2): 4% overall = 1200 drops out of 30000, ALL in the evening
	// with 100% drop rate there (evening has exactly 1200 calls).
	n2 := []int64{14400, 14400, 1200}
	c2 := []int64{0, 0, 1200}
	score, res, err := CompareValues("Time-of-Call", []string{"morning", "afternoon", "evening"}, n1, c1, n2, c2, noCI)
	if err != nil {
		t.Fatal(err)
	}
	// Hand computation: cf2 = 1200/30000 = 0.04, cf1 = 600/30000 = 0.02,
	// ratio 2. Evening: cf2k = 1, cf1k = 0.01 ⇒ F = 1 − 0.02 = 0.98,
	// W = 0.98·1200 = 1176. Morning/afternoon: cf2k = 0 ⇒ F < 0 ⇒ 0.
	if math.Abs(res.Cf2-0.04) > 1e-12 || math.Abs(res.Cf1-0.02) > 1e-12 {
		t.Fatalf("cf1=%v cf2=%v", res.Cf1, res.Cf2)
	}
	want := (1 - 0.01*2) * 1200
	if math.Abs(score.Score-want) > 1e-9 {
		t.Errorf("M = %v, want %v", score.Score, want)
	}
	// This is the maximum over any redistribution: compare with a spread
	// configuration of the same totals.
	n2b := []int64{10000, 10000, 10000}
	c2b := []int64{400, 400, 400}
	spread, _, err := CompareValues("Time-of-Call", nil, n1, c1, n2b, c2b, noCI)
	if err != nil {
		t.Fatal(err)
	}
	if spread.Score >= score.Score {
		t.Errorf("concentrated M (%v) should exceed spread M (%v)", score.Score, spread.Score)
	}
}

// TestMeasureFig2BInteresting reproduces Fig. 2(B): same drop rates in
// afternoon/evening, big morning excess → positive M concentrated in the
// morning value.
func TestMeasureFig2B(t *testing.T) {
	n1 := []int64{10000, 10000, 10000}
	c1 := []int64{200, 200, 200} // ph1 flat 2%
	n2 := []int64{10000, 10000, 10000}
	c2 := []int64{800, 200, 200} // ph2: 8% mornings, 2% otherwise
	score, res, err := CompareValues("Time-of-Call", []string{"morning", "afternoon", "evening"}, n1, c1, n2, c2, noCI)
	if err != nil {
		t.Fatal(err)
	}
	if score.Score <= 0 {
		t.Fatalf("M = %v, want positive", score.Score)
	}
	morning := score.Values[0]
	if morning.W <= 0 {
		t.Error("morning should carry positive contribution")
	}
	for _, d := range score.Values[1:] {
		if d.W != 0 {
			t.Errorf("%s W = %v, want 0 (cf2k below expectation there)", d.Label, d.W)
		}
	}
	// Expected morning F = 0.08 − 0.02·(cf2/cf1).
	ratio := res.Ratio
	wantF := 0.08 - 0.02*ratio
	if math.Abs(morning.F-wantF) > 1e-12 {
		t.Errorf("morning F = %v, want %v", morning.F, wantF)
	}
}

func TestCompareValuesOrientation(t *testing.T) {
	// Passing the *higher*-confidence population first must auto-swap.
	n1 := []int64{100, 100}
	c1 := []int64{40, 40} // 40%
	n2 := []int64{100, 100}
	c2 := []int64{10, 10} // 10%
	_, res, err := CompareValues("a", nil, n1, c1, n2, c2, noCI)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Swapped {
		t.Error("expected orientation swap")
	}
	if res.Cf1 != 0.10 || res.Cf2 != 0.40 {
		t.Errorf("cf1=%v cf2=%v after swap", res.Cf1, res.Cf2)
	}
}

func TestCompareValuesValidation(t *testing.T) {
	if _, _, err := CompareValues("a", nil, []int64{1}, []int64{0, 0}, []int64{1}, []int64{0}, noCI); err == nil {
		t.Error("ragged slices should fail")
	}
	if _, _, err := CompareValues("a", nil, []int64{1}, []int64{2}, []int64{1}, []int64{0}, noCI); err == nil {
		t.Error("c > n should fail")
	}
	if _, _, err := CompareValues("a", nil, []int64{0}, []int64{0}, []int64{1}, []int64{1}, noCI); err == nil {
		t.Error("empty sub-population should fail")
	}
	// Zero confidence on the lower side makes the ratio undefined.
	if _, _, err := CompareValues("a", nil, []int64{100}, []int64{0}, []int64{100}, []int64{10}, noCI); err == nil {
		t.Error("zero cf1 should fail")
	}
}

// TestCIAdjustmentSuppressesNoise: with tiny counts, a large raw
// confidence gap should be suppressed by the CI revision (Section IV.B's
// whole purpose).
func TestCIAdjustmentSuppressesNoise(t *testing.T) {
	// Value with 5 records in each population: 0/5 vs 2/5 looks like a
	// dramatic gap but is statistically meaningless.
	n1 := []int64{5, 10000}
	c1 := []int64{0, 200}
	n2 := []int64{5, 10000}
	c2 := []int64{2, 405}
	raw, _, err := CompareValues("a", nil, n1, c1, n2, c2, noCI)
	if err != nil {
		t.Fatal(err)
	}
	adjusted, _, err := CompareValues("a", nil, n1, c1, n2, c2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rawSmall := raw.Values[0].W
	adjSmall := adjusted.Values[0].W
	if adjSmall >= rawSmall {
		t.Errorf("CI adjustment did not shrink the noisy value's contribution: raw=%v adj=%v", rawSmall, adjSmall)
	}
	if adjSmall != 0 {
		t.Errorf("n=5 value should be fully suppressed at the 0.95 level, got W=%v", adjSmall)
	}
}

func TestCIRevisedConfidencesMatchFormula(t *testing.T) {
	n1 := []int64{400, 600}
	c1 := []int64{40, 60}
	n2 := []int64{500, 500}
	c2 := []int64{100, 50}
	score, _, err := CompareValues("a", nil, n1, c1, n2, c2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	z := 1.96
	for _, d := range score.Values {
		e1 := z * math.Sqrt(d.Cf1*(1-d.Cf1)/float64(d.N1))
		e2 := z * math.Sqrt(d.Cf2*(1-d.Cf2)/float64(d.N2))
		if math.Abs(d.E1-e1) > 1e-12 || math.Abs(d.E2-e2) > 1e-12 {
			t.Errorf("%s: margins (%v,%v), want (%v,%v)", d.Label, d.E1, d.E2, e1, e2)
		}
		if math.Abs(d.RCf1-math.Min(1, d.Cf1+e1)) > 1e-12 {
			t.Errorf("rcf1 wrong for %s", d.Label)
		}
		if math.Abs(d.RCf2-math.Max(0, d.Cf2-e2)) > 1e-12 {
			t.Errorf("rcf2 wrong for %s", d.Label)
		}
	}
}

func TestWilsonOptionDiffers(t *testing.T) {
	n1 := []int64{50, 60}
	c1 := []int64{5, 6}
	n2 := []int64{50, 60}
	c2 := []int64{20, 6}
	wald, _, err := CompareValues("a", nil, n1, c1, n2, c2, Options{Method: Wald})
	if err != nil {
		t.Fatal(err)
	}
	wilson, _, err := CompareValues("a", nil, n1, c1, n2, c2, Options{Method: Wilson})
	if err != nil {
		t.Fatal(err)
	}
	if wald.Values[0].E1 == wilson.Values[0].E1 {
		t.Error("Wilson and Wald margins should differ on small samples")
	}
}

// Property attribute detection (Section IV.C).
func TestPropertyAttributeDetection(t *testing.T) {
	// Two values, each exclusive to one sub-population: P=2, T=0,
	// ratio 1 > 0.9 → property.
	n1 := []int64{100, 0}
	c1 := []int64{5, 0}
	n2 := []int64{0, 100}
	c2 := []int64{0, 20}
	score, _, err := CompareValues("Phone-Hardware-Version", nil, n1, c1, n2, c2, noCI)
	if err != nil {
		t.Fatal(err)
	}
	if !score.Property {
		t.Error("exclusive-value attribute must be a property attribute")
	}
	if score.PropertyRatio != 1 {
		t.Errorf("ratio = %v, want 1", score.PropertyRatio)
	}
}

func TestPropertyThresholdBoundary(t *testing.T) {
	// 9 exclusive values + 1 shared: ratio 0.9, NOT > 0.9 ⇒ not property.
	n1 := make([]int64, 10)
	c1 := make([]int64, 10)
	n2 := make([]int64, 10)
	c2 := make([]int64, 10)
	for i := 0; i < 9; i++ {
		if i%2 == 0 {
			n1[i] = 50
			c1[i] = 1
		} else {
			n2[i] = 50
			c2[i] = 5
		}
	}
	n1[9], c1[9] = 1000, 20
	n2[9], c2[9] = 1000, 40
	score, _, err := CompareValues("edge", nil, n1, c1, n2, c2, noCI)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(score.PropertyRatio-0.9) > 1e-12 {
		t.Fatalf("ratio = %v, want exactly 0.9", score.PropertyRatio)
	}
	if score.Property {
		t.Error("ratio exactly at the threshold must NOT be a property attribute (strict >)")
	}
	// With a lower threshold it becomes one.
	score2, _, err := CompareValues("edge", nil, n1, c1, n2, c2, Options{DisableCI: true, PropertyThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !score2.Property {
		t.Error("threshold 0.5 should classify ratio 0.9 as property")
	}
}

func TestBothZeroValuesIgnored(t *testing.T) {
	// A value absent from both populations contributes to neither P nor T.
	n1 := []int64{100, 0, 100}
	c1 := []int64{2, 0, 2}
	n2 := []int64{100, 0, 100}
	c2 := []int64{8, 0, 8}
	score, _, err := CompareValues("a", nil, n1, c1, n2, c2, noCI)
	if err != nil {
		t.Fatal(err)
	}
	if len(score.Values) != 2 {
		t.Errorf("got %d value details, want 2 (both-zero value dropped)", len(score.Values))
	}
	if score.Property {
		t.Error("attribute with all shared values must not be property")
	}
}

// buildCaseStudy builds the planted call log and its cube store once.
func buildCaseStudy(t testing.TB, records, noise int) (*rulecube.Store, workload.GroundTruth, *dataset.Dataset) {
	t.Helper()
	ds, gt, err := workload.CallLog(workload.CallLogConfig{
		Seed:       42,
		Records:    records,
		NumPhones:  6,
		NoiseAttrs: noise,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return store, gt, ds
}

func inputFor(t testing.TB, ds *dataset.Dataset, gt workload.GroundTruth) Input {
	t.Helper()
	attr := ds.AttrIndex(gt.PhoneAttr)
	v1, ok1 := ds.Column(attr).Dict.Lookup(gt.GoodPhone)
	v2, ok2 := ds.Column(attr).Dict.Lookup(gt.BadPhone)
	cls, ok3 := ds.ClassDict().Lookup(gt.DropClass)
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("ground truth labels missing from dataset")
	}
	return Input{Attr: attr, V1: v1, V2: v2, Class: cls}
}

// TestCaseStudyRecoversPlantedAttribute is the Fig. 7 check: the planted
// distinguishing attribute must rank #1, the proportional attribute must
// not be near the top, and the property attribute must be set aside.
func TestCaseStudyRecoversPlantedAttribute(t *testing.T) {
	store, gt, ds := buildCaseStudy(t, 60000, 10)
	res, err := New(store).Compare(inputFor(t, ds, gt), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranked) == 0 {
		t.Fatal("no ranked attributes")
	}
	if res.Ranked[0].Name != gt.DistinguishingAttr {
		t.Errorf("top attribute = %q, want %q", res.Ranked[0].Name, gt.DistinguishingAttr)
	}
	// Secondary planted attribute should outrank all noise attributes.
	_, secRank, ok := res.Find(gt.SecondaryAttr)
	if !ok {
		t.Fatalf("secondary attribute missing")
	}
	for _, noise := range gt.NoiseAttrs {
		_, nRank, ok := res.Find(noise)
		if !ok {
			continue
		}
		if nRank != 0 && nRank < secRank {
			t.Errorf("noise %q (rank %d) outranks planted secondary %q (rank %d)", noise, nRank, gt.SecondaryAttr, secRank)
		}
	}
	// Property attribute must be in the property list, not the ranking.
	found := false
	for _, p := range res.Property {
		if p.Name == gt.PropertyAttr {
			found = true
		}
	}
	if !found {
		t.Errorf("planted property attribute %q not detected", gt.PropertyAttr)
	}
	for _, r := range res.Ranked {
		if r.Name == gt.PropertyAttr {
			t.Errorf("property attribute %q leaked into the main ranking", gt.PropertyAttr)
		}
	}
}

// TestProportionalAttributeScoresLow: Fig. 2(A)'s planted proportional
// attribute must score well below the distinguishing attribute.
func TestProportionalAttributeScoresLow(t *testing.T) {
	store, gt, ds := buildCaseStudy(t, 60000, 0)
	res, err := New(store).Compare(inputFor(t, ds, gt), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dist, _, _ := res.Find(gt.DistinguishingAttr)
	prop, _, ok := res.Find(gt.ProportionalAttr)
	if !ok {
		t.Fatal("proportional attribute missing")
	}
	if prop.Score > dist.Score/3 {
		t.Errorf("proportional attribute M=%v too close to distinguishing M=%v", prop.Score, dist.Score)
	}
}

// TestCubeAndScanAgree: the cube-backed and raw-scan paths must produce
// identical rankings and scores.
func TestCubeAndScanAgree(t *testing.T) {
	store, gt, ds := buildCaseStudy(t, 20000, 5)
	in := inputFor(t, ds, gt)
	a, err := New(store).Compare(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Scan(ds, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Ranked) != len(b.Ranked) || len(a.Property) != len(b.Property) {
		t.Fatalf("shape mismatch: (%d,%d) vs (%d,%d)", len(a.Ranked), len(a.Property), len(b.Ranked), len(b.Property))
	}
	for i := range a.Ranked {
		if a.Ranked[i].Name != b.Ranked[i].Name {
			t.Fatalf("rank %d: %q vs %q", i, a.Ranked[i].Name, b.Ranked[i].Name)
		}
		if math.Abs(a.Ranked[i].Score-b.Ranked[i].Score) > 1e-9 {
			t.Fatalf("score mismatch for %q: %v vs %v", a.Ranked[i].Name, a.Ranked[i].Score, b.Ranked[i].Score)
		}
	}
}

func TestCompareInputValidation(t *testing.T) {
	store, gt, ds := buildCaseStudy(t, 2000, 0)
	in := inputFor(t, ds, gt)
	c := New(store)

	bad := in
	bad.V1 = bad.V2
	if _, err := c.Compare(bad, Options{}); err == nil {
		t.Error("same values should fail")
	}
	bad = in
	bad.Attr = ds.ClassIndex()
	if _, err := c.Compare(bad, Options{}); err == nil {
		t.Error("class as comparison attribute should fail")
	}
	bad = in
	bad.Class = 99
	if _, err := c.Compare(bad, Options{}); err == nil {
		t.Error("bad class should fail")
	}
	bad = in
	bad.V2 = 99
	if _, err := c.Compare(bad, Options{}); err == nil {
		t.Error("bad value should fail")
	}
	if _, err := c.Compare(in, Options{MinRuleSupport: 1 << 40}); err == nil {
		t.Error("MinRuleSupport should reject small sub-populations")
	}
	if _, err := c.Compare(in, Options{Attrs: []int{in.Attr}}); err == nil {
		t.Error("comparison attribute in Attrs should fail")
	}
}

func TestCompareAttrSubset(t *testing.T) {
	store, gt, ds := buildCaseStudy(t, 20000, 3)
	in := inputFor(t, ds, gt)
	sub := []int{ds.AttrIndex(gt.DistinguishingAttr), ds.AttrIndex(gt.ProportionalAttr)}
	res, err := New(store).Compare(in, Options{Attrs: sub})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranked)+len(res.Property) != 2 {
		t.Errorf("got %d attributes, want 2", len(res.Ranked)+len(res.Property))
	}
}

func TestResultHelpers(t *testing.T) {
	store, gt, ds := buildCaseStudy(t, 20000, 3)
	res, err := New(store).Compare(inputFor(t, ds, gt), Options{})
	if err != nil {
		t.Fatal(err)
	}
	top := res.Top(2)
	if len(top) != 2 {
		t.Fatalf("Top(2) returned %d", len(top))
	}
	if top[0].Score < top[1].Score {
		t.Error("Top not sorted")
	}
	if res.Top(1000); len(res.Top(1000)) != len(res.Ranked) {
		t.Error("Top should clamp")
	}
	if _, _, ok := res.Find("no-such-attr"); ok {
		t.Error("Find should miss unknown attributes")
	}
	s, rank, ok := res.Find(gt.DistinguishingAttr)
	if !ok || rank < 1 || s.Name != gt.DistinguishingAttr {
		t.Error("Find broken for ranked attribute")
	}
	_, prank, ok := res.Find(gt.PropertyAttr)
	if !ok || prank != 0 {
		t.Error("property attributes should report rank 0")
	}
}

func TestNormScoreBounded(t *testing.T) {
	store, gt, ds := buildCaseStudy(t, 30000, 5)
	res, err := New(store).Compare(inputFor(t, ds, gt), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Ranked {
		if s.NormScore < 0 {
			t.Errorf("%s NormScore = %v < 0", s.Name, s.NormScore)
		}
		// NormScore is M/(cf2·|D2|); since W_k ≤ F_k·N_2k ≤ 1·N_2k and
		// Σ N_2k = |D2|, NormScore ≤ 1/cf2. For our 4% rates that's 25,
		// but in practice it should stay small; just sanity-bound it.
		if s.NormScore > 1/res.Cf2+1e-9 {
			t.Errorf("%s NormScore = %v exceeds theoretical bound", s.Name, s.NormScore)
		}
	}
}

func TestScanRejectsContinuous(t *testing.T) {
	b, _ := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "x", Kind: dataset.Continuous},
			{Name: "c", Kind: dataset.Categorical},
		},
		ClassIndex: 1,
	})
	b.AddRow([]string{"1", "y"})
	ds, _ := b.Build()
	if _, err := Scan(ds, Input{}, Options{}); err == nil {
		t.Error("continuous dataset should be rejected")
	}
}

func TestIntervalMethodString(t *testing.T) {
	if Wald.String() != "wald" || Wilson.String() != "wilson" {
		t.Error("IntervalMethod.String broken")
	}
	if IntervalMethod(9).String() == "" {
		t.Error("unknown method should render")
	}
}

// TestCompareWithMissingValues: the pipeline must survive gappy noise
// attributes (rows with missing values are excluded from the affected
// cubes) and still recover the planted attribute.
func TestCompareWithMissingValues(t *testing.T) {
	ds, gt, err := workload.CallLog(workload.CallLogConfig{
		Seed: 12, Records: 40000, NoiseAttrs: 4, MissingRate: 0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(store).Compare(inputFor(t, ds, gt), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranked[0].Name != gt.DistinguishingAttr {
		t.Errorf("with missing values, top = %q", res.Ranked[0].Name)
	}
}

// TestCompareSingleValuedCandidate: a candidate attribute with one value
// carries no distinguishing power — M must be 0 and it must not be a
// property attribute (the value occurs in both sub-populations).
func TestCompareSingleValuedCandidate(t *testing.T) {
	b, err := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "phone", Kind: dataset.Categorical},
			{Name: "constant", Kind: dataset.Categorical},
			{Name: "c", Kind: dataset.Categorical},
		},
		ClassIndex: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	b.WithDict(0, dataset.DictionaryOf("p1", "p2"))
	b.WithDict(1, dataset.DictionaryOf("only"))
	b.WithDict(2, dataset.DictionaryOf("ok", "bad"))
	emit := func(p int32, bad bool, n int) {
		cls := int32(0)
		if bad {
			cls = 1
		}
		for i := 0; i < n; i++ {
			b.AddCodedRow([]int32{p, 0, cls}, nil)
		}
	}
	emit(0, true, 20)
	emit(0, false, 980)
	emit(1, true, 40)
	emit(1, false, 960)
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(store).Compare(Input{Attr: 0, V1: 0, V2: 1, Class: 1}, Options{DisableCI: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranked) != 1 {
		t.Fatalf("ranked = %d", len(res.Ranked))
	}
	s := res.Ranked[0]
	if s.Score != 0 {
		t.Errorf("single-valued candidate M = %v, want 0", s.Score)
	}
	if s.Property {
		t.Error("shared single value must not be a property attribute")
	}
}

// TestCompareEqualConfidences: cf1 == cf2 yields ratio 1; the measure
// reduces to counting where D2 beats D1 — still well defined.
func TestCompareEqualConfidences(t *testing.T) {
	n1 := []int64{1000, 1000}
	c1 := []int64{30, 10} // 2% overall
	n2 := []int64{1000, 1000}
	c2 := []int64{10, 30} // 2% overall
	score, res, err := CompareValues("a", nil, n1, c1, n2, c2, noCI)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio != 1 {
		t.Fatalf("ratio = %v", res.Ratio)
	}
	// Value 1: cf2k 3% vs expected cf1k·1 = 1% → F=0.02, W=20.
	if math.Abs(score.Score-20) > 1e-9 {
		t.Errorf("M = %v, want 20", score.Score)
	}
}

// TestConcurrentComparisons backs the documented claim that read-only
// queries may run concurrently once the store is built. Run under
// -race in CI.
func TestConcurrentComparisons(t *testing.T) {
	store, gt, ds := buildCaseStudy(t, 20000, 3)
	in := inputFor(t, ds, gt)
	c := New(store)
	want, err := c.Compare(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := c.Compare(in, Options{})
				if err != nil {
					errs <- err
					return
				}
				if res.Ranked[0].Name != want.Ranked[0].Name {
					errs <- fmt.Errorf("concurrent result diverged")
					return
				}
				if _, err := c.ScreenPairs(in.Attr, in.Class, ScreenOptions{}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
