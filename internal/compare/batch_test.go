package compare

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"opmap/internal/engine"
	"opmap/internal/obsv"
	"opmap/internal/rulecube"
)

// batchSources builds the planted call log with an eager and a cold
// lazy comparator over it, for batch ≡ sequential oracle checks.
func batchSources(t testing.TB, records, noise int) (*Comparator, *Comparator, int, int32) {
	t.Helper()
	store, gt, ds := buildCaseStudy(t, records, noise)
	lazy, err := engine.NewLazy(ds, engine.LazyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	attr := ds.AttrIndex(gt.PhoneAttr)
	cls, ok := ds.ClassDict().Lookup(gt.DropClass)
	if !ok {
		t.Fatal("ground truth class missing")
	}
	return New(store), NewSource(lazy), attr, cls
}

// TestSweepBatchOracle is the tentpole oracle: a batched sweep must be
// byte-for-byte identical to the per-pair sequential loop, on the eager
// store and on a cold lazy engine.
func TestSweepBatchOracle(t *testing.T) {
	eager, lazy, attr, cls := batchSources(t, 30000, 3)
	ref, err := eager.Sweep(attr, cls, SweepOptions{DisableBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	if ref.PairsCompared == 0 {
		t.Fatal("reference sweep compared nothing")
	}
	for name, c := range map[string]*Comparator{"eager": eager, "lazy": lazy} {
		got, err := c.Sweep(attr, cls, SweepOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("%s: batched sweep differs from sequential reference", name)
		}
	}
}

// TestOneVsRestAllBatchOracle checks the all-values one-vs-rest the
// same way, on both sources and with a restricted candidate list.
func TestOneVsRestAllBatchOracle(t *testing.T) {
	eager, lazy, attr, cls := batchSources(t, 30000, 3)
	for _, opts := range []Options{{}, {Attrs: []int{1, 2}}} {
		ref, err := eager.OneVsRestAll(attr, cls, OneVsRestAllOptions{Compare: opts, DisableBatch: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(ref.Results) == 0 {
			t.Fatal("reference one-vs-rest-all ranked nothing")
		}
		for name, c := range map[string]*Comparator{"eager": eager, "lazy": lazy} {
			got, err := c.OneVsRestAll(attr, cls, OneVsRestAllOptions{Compare: opts})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("%s (opts %+v): batched one-vs-rest-all differs from sequential reference", name, opts)
			}
		}
	}
}

// TestSweepSingleScan asserts the acceptance criterion directly: a full
// batched sweep over a cold lazy engine performs exactly one dataset
// scan, where the sequential loop performs one per cube.
func TestSweepSingleScan(t *testing.T) {
	_, lazy, attr, cls := batchSources(t, 20000, 3)
	scans := obsv.Default().Counter(rulecube.CubeScansCounterName)
	s0 := scans.Value()
	if _, err := lazy.Sweep(attr, cls, SweepOptions{}); err != nil {
		t.Fatal(err)
	}
	if d := scans.Value() - s0; d != 1 {
		t.Errorf("batched sweep performed %d scans, want exactly 1", d)
	}

	// The sequential loop on a second cold engine pays one scan per cube.
	_, gt, ds := buildCaseStudy(t, 20000, 3)
	cold, err := engine.NewLazy(ds, engine.LazyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a := ds.AttrIndex(gt.PhoneAttr)
	s1 := scans.Value()
	if _, err := NewSource(cold).Sweep(a, cls, SweepOptions{DisableBatch: true}); err != nil {
		t.Fatal(err)
	}
	if d := scans.Value() - s1; d <= 1 {
		t.Errorf("sequential sweep performed %d scans, expected one per cube", d)
	}
}

// TestOneVsRestAllSkipsUndefined plants an undefined comparison (every
// side below MinRuleSupport) and checks values are skipped, not fatal.
func TestOneVsRestAllSkipsUndefined(t *testing.T) {
	eager, _, attr, cls := batchSources(t, 5000, 1)
	res, err := eager.OneVsRestAll(attr, cls, OneVsRestAllOptions{
		Compare: Options{MinRuleSupport: 1 << 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 0 {
		t.Errorf("ranked %d values despite impossible MinRuleSupport", len(res.Results))
	}
	if len(res.Skipped) == 0 {
		t.Error("no values annotated as skipped")
	}
	for _, e := range res.Skipped {
		if e.Err == "" || e.Item == "" {
			t.Errorf("skipped annotation incomplete: %+v", e)
		}
	}
}

// TestRankSelfVsClassDistinct is the satellite bugfix check: an
// explicit candidate list naming the split attribute and one naming the
// class must fail with two distinguishable errors, on every entry
// point.
func TestRankSelfVsClassDistinct(t *testing.T) {
	eager, _, attr, cls := batchSources(t, 5000, 1)
	ds := eager.ds
	classIdx := ds.ClassIndex()
	check := func(name string, run func(opts Options) error) {
		if err := run(Options{Attrs: []int{attr}}); !errors.Is(err, ErrRankSelf) {
			t.Errorf("%s with split attr in Attrs: got %v, want ErrRankSelf", name, err)
		}
		if err := run(Options{Attrs: []int{classIdx}}); !errors.Is(err, ErrRankClass) {
			t.Errorf("%s with class in Attrs: got %v, want ErrRankClass", name, err)
		}
		if err := run(Options{Attrs: []int{classIdx}}); errors.Is(err, ErrRankSelf) {
			t.Errorf("%s: class error must not match ErrRankSelf", name)
		}
	}
	var v2 int32
	if ds.Cardinality(attr) > 1 {
		v2 = 1
	}
	check("Compare", func(opts Options) error {
		_, err := eager.Compare(Input{Attr: attr, V1: 0, V2: v2, Class: cls}, opts)
		return err
	})
	check("OneVsRest", func(opts Options) error {
		_, err := eager.OneVsRest(OneVsRestInput{Attr: attr, Value: 0, Class: cls}, opts)
		return err
	})
	check("OneVsRestAll", func(opts Options) error {
		_, err := eager.OneVsRestAll(attr, cls, OneVsRestAllOptions{Compare: opts})
		return err
	})
}

// TestSweepOptionValidation is the satellite bugfix check for the
// option sanitization: a negative TopK and a NaN MinScore used to be
// accepted and silently empty the aggregation.
func TestSweepOptionValidation(t *testing.T) {
	eager, _, attr, cls := batchSources(t, 5000, 1)
	if _, err := eager.Sweep(attr, cls, SweepOptions{TopK: -1}); err == nil {
		t.Error("negative TopK accepted")
	}
	if _, err := eager.Sweep(attr, cls, SweepOptions{MinScore: math.NaN()}); err == nil {
		t.Error("NaN MinScore accepted")
	}
	// A sanity check that valid extremes still work.
	if _, err := eager.Sweep(attr, cls, SweepOptions{TopK: 1 << 20, MinScore: -1}); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

// TestOneVsRestAllValidation covers the request-level errors of the new
// entry point.
func TestOneVsRestAllValidation(t *testing.T) {
	eager, _, attr, cls := batchSources(t, 5000, 1)
	ds := eager.ds
	if _, err := eager.OneVsRestAll(-1, cls, OneVsRestAllOptions{}); err == nil {
		t.Error("negative attribute accepted")
	}
	if _, err := eager.OneVsRestAll(ds.ClassIndex(), cls, OneVsRestAllOptions{}); err == nil {
		t.Error("class as split attribute accepted")
	}
	if _, err := eager.OneVsRestAll(attr, int32(ds.NumClasses()), OneVsRestAllOptions{}); err == nil {
		t.Error("out-of-range class accepted")
	}
	if _, err := eager.OneVsRestAll(attr, cls, OneVsRestAllOptions{Compare: Options{Attrs: []int{99}}}); err == nil {
		t.Error("out-of-range candidate accepted")
	}
}

// FuzzSweepOptions fuzzes the sweep option surface: invalid options
// (negative TopK, NaN MinScore) must error, everything else must run
// the sweep without panicking and return a well-formed aggregate.
func FuzzSweepOptions(f *testing.F) {
	store, gt, ds := buildCaseStudy(f, 4000, 1)
	attr := ds.AttrIndex(gt.PhoneAttr)
	cls, ok := ds.ClassDict().Lookup(gt.DropClass)
	if !ok {
		f.Fatal("ground truth class missing")
	}
	c := New(store)
	f.Add(0, 0.0, false)
	f.Add(-3, 0.0, true)
	f.Add(2, math.Inf(1), false)
	f.Add(1, -1.5, true)
	f.Fuzz(func(t *testing.T, topK int, minScore float64, disableBatch bool) {
		opts := SweepOptions{TopK: topK, MinScore: minScore, DisableBatch: disableBatch}
		res, err := c.Sweep(attr, cls, opts)
		if topK < 0 || math.IsNaN(minScore) {
			if err == nil {
				t.Fatalf("invalid options %+v accepted", opts)
			}
			return
		}
		if err != nil {
			t.Fatalf("valid options %+v rejected: %v", opts, err)
		}
		if len(res.Comparisons) != res.PairsCompared || len(res.PairLabels) != res.PairsCompared {
			t.Fatal("comparison bookkeeping inconsistent")
		}
		for _, a := range res.Attributes {
			if a.Pairs <= 0 || a.Pairs > res.PairsCompared {
				t.Fatalf("aggregate %q counts %d pairs of %d compared", a.Name, a.Pairs, res.PairsCompared)
			}
		}
	})
}

// TestSweepBatchContext checks a canceled context fails a batched sweep
// promptly on both strict and partial paths.
func TestSweepBatchContext(t *testing.T) {
	_, lazy, attr, cls := batchSources(t, 5000, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := lazy.SweepContext(ctx, attr, cls, SweepOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled batched sweep: got %v", err)
	}
}
