package compare

import (
	"fmt"

	"opmap/internal/car"
	"opmap/internal/dataset"
)

// Conditional comparison: run the Section IV comparison *within* a fixed
// sub-population. After the top-ranked attribute isolates where the
// problem lives ("the morning calls make ph2 bad"), the natural
// follow-up is to re-compare the two phones restricted to that context
// to find second-order causes — the drill-down the paper supports via
// restricted mining of longer rules (Section III.B).

// ScanWhere runs the comparison on the subset of ds matching every
// fixed condition. The fixed attributes and the comparison attribute
// must be distinct; fixed attributes are excluded from the ranking
// (their value is constant within the subset).
func ScanWhere(ds *dataset.Dataset, fixed []car.Condition, in Input, opts Options) (*Result, error) {
	if !ds.AllCategorical() {
		return nil, fmt.Errorf("compare: dataset has continuous attributes; discretize first")
	}
	seen := map[int]bool{}
	for _, f := range fixed {
		if f.Attr < 0 || f.Attr >= ds.NumAttrs() {
			return nil, fmt.Errorf("compare: fixed attribute %d out of range", f.Attr)
		}
		if f.Attr == ds.ClassIndex() {
			return nil, fmt.Errorf("compare: fixed condition on the class attribute")
		}
		if f.Attr == in.Attr {
			return nil, fmt.Errorf("compare: fixed condition on the comparison attribute")
		}
		if seen[f.Attr] {
			return nil, fmt.Errorf("compare: duplicate fixed attribute %d", f.Attr)
		}
		if f.Value < 0 || int(f.Value) >= ds.Cardinality(f.Attr) {
			return nil, fmt.Errorf("compare: fixed value %d out of range for attribute %d", f.Value, f.Attr)
		}
		seen[f.Attr] = true
	}
	sub := ds.Filter(func(r int) bool {
		for _, f := range fixed {
			if ds.CatCode(r, f.Attr) != f.Value {
				return false
			}
		}
		return true
	})
	if sub.NumRows() == 0 {
		return nil, fmt.Errorf("compare: no records match the fixed conditions")
	}
	// Rank only attributes that can vary within the subset.
	if opts.Attrs == nil {
		for a := 0; a < ds.NumAttrs(); a++ {
			if a == in.Attr || a == ds.ClassIndex() || seen[a] {
				continue
			}
			opts.Attrs = append(opts.Attrs, a)
		}
	} else {
		for _, a := range opts.Attrs {
			if seen[a] {
				return nil, fmt.Errorf("compare: attribute %d is fixed and cannot be ranked", a)
			}
		}
	}
	return Scan(sub, in, opts)
}
