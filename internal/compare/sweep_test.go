package compare

import (
	"testing"
)

func TestSweepAggregatesSystemicCause(t *testing.T) {
	// The planted call log: phone ph2 is the only bad phone, and its
	// excess lives in Time-of-Call. Every significant pair involves ph2,
	// and each such comparison ranks Time-of-Call first — so the sweep
	// must surface Time-of-Call as the recurrent distinguishing
	// attribute, with ph2 in its best pair.
	store, gt, ds := buildCaseStudy(t, 60000, 2)
	phone := ds.AttrIndex(gt.PhoneAttr)
	cls, _ := ds.ClassDict().Lookup(gt.DropClass)
	res, err := New(store).Sweep(phone, cls, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PairsCompared == 0 {
		t.Fatal("sweep compared nothing")
	}
	if len(res.Attributes) == 0 {
		t.Fatal("no aggregated attributes")
	}
	top := res.Attributes[0]
	if top.Name != gt.DistinguishingAttr {
		t.Errorf("sweep top = %q, want %q", top.Name, gt.DistinguishingAttr)
	}
	if top.Pairs < 2 {
		t.Errorf("recurrent attribute appeared in %d pairs, want ≥ 2", top.Pairs)
	}
	if top.BestPair[0] != gt.BadPhone && top.BestPair[1] != gt.BadPhone {
		t.Errorf("best pair %v does not involve the bad phone", top.BestPair)
	}
	if len(res.Comparisons) != res.PairsCompared || len(res.PairLabels) != res.PairsCompared {
		t.Error("comparison bookkeeping inconsistent")
	}
}

func TestSweepOptionsRespected(t *testing.T) {
	store, gt, ds := buildCaseStudy(t, 30000, 1)
	phone := ds.AttrIndex(gt.PhoneAttr)
	cls, _ := ds.ClassDict().Lookup(gt.DropClass)
	c := New(store)
	// A huge MinScore filters every appearance.
	res, err := c.Sweep(phone, cls, SweepOptions{MinScore: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attributes) != 0 {
		t.Error("MinScore not honored")
	}
	// MaxPairs bounds the work.
	res, err = c.Sweep(phone, cls, SweepOptions{Screen: ScreenOptions{MaxPairs: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.PairsCompared > 1 {
		t.Errorf("compared %d pairs with MaxPairs 1", res.PairsCompared)
	}
	// Bad attribute propagates the screening error.
	if _, err := c.Sweep(ds.ClassIndex(), cls, SweepOptions{}); err == nil {
		t.Error("class attribute should fail")
	}
}
