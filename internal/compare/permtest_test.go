package compare

import (
	"testing"
)

func TestPermutationTestPlantedVsNoise(t *testing.T) {
	_, gt, ds := buildCaseStudy(t, 40000, 1)
	in := inputFor(t, ds, gt)

	planted, err := PermutationTest(ds, in, ds.AttrIndex(gt.DistinguishingAttr), 100, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if planted.PValue > 0.05 {
		t.Errorf("planted attribute p = %v, want ≤ 0.05", planted.PValue)
	}
	if planted.Observed <= planted.NullQ95 {
		t.Errorf("observed M %v should exceed the null 95th percentile %v", planted.Observed, planted.NullQ95)
	}

	noise, err := PermutationTest(ds, in, ds.AttrIndex(gt.NoiseAttrs[0]), 100, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if noise.PValue < 0.2 {
		t.Errorf("noise attribute p = %v, want clearly insignificant", noise.PValue)
	}
}

func TestPermutationTestValidation(t *testing.T) {
	_, gt, ds := buildCaseStudy(t, 5000, 1)
	in := inputFor(t, ds, gt)
	if _, err := PermutationTest(ds, in, in.Attr, 10, 1, Options{}); err == nil {
		t.Error("comparison attribute as candidate should fail")
	}
	if _, err := PermutationTest(ds, in, ds.ClassIndex(), 10, 1, Options{}); err == nil {
		t.Error("class as candidate should fail")
	}
	if _, err := PermutationTest(ds, in, 99, 10, 1, Options{}); err == nil {
		t.Error("out-of-range candidate should fail")
	}
}

func TestPermutationTestDeterministic(t *testing.T) {
	_, gt, ds := buildCaseStudy(t, 10000, 1)
	in := inputFor(t, ds, gt)
	attr := ds.AttrIndex(gt.DistinguishingAttr)
	a, err := PermutationTest(ds, in, attr, 50, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PermutationTest(ds, in, attr, 50, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.PValue != b.PValue || a.NullMean != b.NullMean {
		t.Error("same seed must reproduce the test exactly")
	}
	c, err := PermutationTest(ds, in, attr, 50, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.NullMean == c.NullMean {
		t.Log("different seeds gave identical null means (possible but unlikely)")
	}
}

func TestPermutationTestDefaultRounds(t *testing.T) {
	_, gt, ds := buildCaseStudy(t, 5000, 0)
	in := inputFor(t, ds, gt)
	res, err := PermutationTest(ds, in, ds.AttrIndex(gt.ProportionalAttr), 0, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 150 {
		t.Errorf("default rounds = %d, want ≈200 (some may be skipped)", res.Rounds)
	}
	// PValue is always in (0, 1].
	if res.PValue <= 0 || res.PValue > 1 {
		t.Errorf("p = %v", res.PValue)
	}
}
