package compare

import (
	"context"
	"errors"
	"fmt"

	"opmap/internal/car"
	"opmap/internal/dataset"
	"opmap/internal/faultinject"
	"opmap/internal/rulecube"
)

// ErrValueUndefined classifies one-vs-rest failures that are properties
// of the data rather than of the request: a degenerate split, a side
// below MinRuleSupport, a class absent from both sides, or an undefined
// confidence ratio. OneVsRestAll skips such values instead of failing
// the whole run; callers can test with errors.Is.
var ErrValueUndefined = errors.New("compare: value comparison undefined")

// undefinedError carries a specific message while matching
// ErrValueUndefined under errors.Is, so the long-standing error texts
// stay stable for callers that match on them.
type undefinedError struct{ msg string }

func (e *undefinedError) Error() string { return e.msg }

// Is makes errors.Is(err, ErrValueUndefined) true for every
// undefinedError without changing its message.
func (e *undefinedError) Is(target error) bool { return target == ErrValueUndefined }

func undefinedf(format string, args ...any) error {
	return &undefinedError{msg: fmt.Sprintf(format, args...)}
}

// One-vs-rest comparison. Section III.C of the paper notes the
// comparison capability is not only for product pairs: "we may find
// that in general calls in the morning tend to drop much more
// frequently than in the afternoon. Then, it is interesting to know
// what cause this poor performance in the morning." OneVsRest compares
// the sub-population A=v against the complement A≠v: D1/D2 are oriented
// so the higher-confidence side is D2 exactly as in the pairwise case,
// and the same measure (Eq. 1–3) ranks the explaining attributes.

// OneVsRestInput selects a value of an attribute and the class of
// interest; the second sub-population is everything else.
type OneVsRestInput struct {
	Attr  int
	Value int32
	Class int32
}

// OneVsRest runs the comparison of A=v versus A≠v over the cube store.
// Missing values of A are excluded from both sub-populations (they are
// not counted in cubes).
func (c *Comparator) OneVsRest(in OneVsRestInput, opts Options) (*Result, error) {
	return c.OneVsRestContext(context.Background(), in, opts)
}

// OneVsRestContext is OneVsRest under a context, checked once per
// candidate attribute. With opts.PartialOnDeadline set, a context that
// expires mid-ranking yields the attributes scored so far with
// Result.Partial set and the rest annotated in Result.Unscored;
// otherwise the call fails with the context's error.
func (c *Comparator) OneVsRestContext(ctx context.Context, in OneVsRestInput, opts Options) (*Result, error) {
	ds := c.ds
	if in.Attr < 0 || in.Attr >= ds.NumAttrs() || in.Attr == ds.ClassIndex() {
		return nil, fmt.Errorf("compare: invalid comparison attribute %d", in.Attr)
	}
	card := ds.Cardinality(in.Attr)
	if in.Value < 0 || int(in.Value) >= card {
		return nil, fmt.Errorf("compare: value %d out of range [0,%d)", in.Value, card)
	}
	if in.Class < 0 || int(in.Class) >= ds.NumClasses() {
		return nil, fmt.Errorf("compare: class %d out of range", in.Class)
	}
	cube, err := c.src.Cube1(ctx, in.Attr)
	if err != nil {
		return nil, fmt.Errorf("compare: attribute %d unavailable: %w", in.Attr, err)
	}

	// Counts of the two sides from the 2-D cube.
	condV, err := cube.CondCount([]int32{in.Value})
	if err != nil {
		return nil, err
	}
	supV, err := cube.Count([]int32{in.Value}, in.Class)
	if err != nil {
		return nil, err
	}
	classTotals := cube.ClassMarginals()
	total := cube.Total()
	condRest := total - condV
	supRest := classTotals[in.Class] - supV

	if condV == 0 || condRest == 0 {
		return nil, undefinedf("compare: degenerate split (|D_v|=%d, |D_rest|=%d)", condV, condRest)
	}
	if opts.MinRuleSupport > 0 && (condV < opts.MinRuleSupport || condRest < opts.MinRuleSupport) {
		return nil, undefinedf("compare: sub-population below MinRuleSupport %d", opts.MinRuleSupport)
	}
	cfV := float64(supV) / float64(condV)
	cfRest := float64(supRest) / float64(condRest)
	if supV == 0 && supRest == 0 {
		return nil, undefinedf("compare: class %d absent from both sides", in.Class)
	}

	// Orient: sub-population 1 is the lower-confidence side.
	res := &Result{Options: opts}
	restIsHigh := cfRest >= cfV
	mkRule := func(cond, sup int64) carRule {
		return carRule{cond: cond, sup: sup}
	}
	lo, hi := mkRule(condV, supV), mkRule(condRest, supRest)
	if !restIsHigh {
		lo, hi = hi, lo
		res.Swapped = true
	}
	res.Cf1 = float64(lo.sup) / float64(lo.cond)
	res.Cf2 = float64(hi.sup) / float64(hi.cond)
	if lo.sup == 0 {
		return nil, undefinedf("compare: lower-confidence side has zero confidence; ratio undefined")
	}
	res.Ratio = res.Cf2 / res.Cf1
	// car.Rule cannot express the negated "rest" condition; both sides
	// carry the positive condition for display, and the counts tell the
	// sides apart (the value side has CondCount == condV).
	mk := func(r carRule) car.Rule {
		return car.Rule{
			Conditions: []car.Condition{{Attr: in.Attr, Value: in.Value}},
			Class:      in.Class,
			SupCount:   r.sup,
			CondCount:  r.cond,
			Total:      total,
		}
	}
	res.Rule1 = mk(lo)
	res.Rule2 = mk(hi)

	comp := &computation{result: res}
	attrs, err := resolveRankAttrs(ds, in.Attr, opts.Attrs)
	if err != nil {
		return nil, err
	}
	for i, ai := range attrs {
		if err := ctxOrFault(ctx, faultinject.SiteCompareAttr); err != nil {
			if !opts.PartialOnDeadline || ctx.Err() == nil {
				return nil, err
			}
			res.Partial = true
			for _, rest := range attrs[i:] {
				res.Unscored = append(res.Unscored, ItemError{
					Item: ds.Attr(rest).Name,
					Err:  err.Error(),
				})
			}
			break
		}
		pair, err := c.src.Cube2(ctx, in.Attr, ai)
		if err != nil {
			return nil, fmt.Errorf("compare: pair cube (%d,%d) unavailable: %w", in.Attr, ai, err)
		}
		marginal, err := c.src.Cube1(ctx, ai)
		if err != nil {
			return nil, fmt.Errorf("compare: attribute %d unavailable: %w", ai, err)
		}
		tab, err := oneVsRestTable(pair, marginal, in.Attr, ai, in.Value, in.Class, restIsHigh)
		if err != nil {
			return nil, err
		}
		score, err := scoreAttribute(ds, ai, tab, comp, opts)
		if err != nil {
			return nil, err
		}
		comp.add(score)
	}
	comp.finish()
	return res, nil
}

// carRule is a minimal count pair used during orientation.
type carRule struct{ cond, sup int64 }

// defaultRankAttrs lists every attribute except the split attribute and
// the class, the default candidate set for ranking.
func defaultRankAttrs(ds *dataset.Dataset, splitAttr int) []int {
	var attrs []int
	for a := 0; a < ds.NumAttrs(); a++ {
		if a != splitAttr && a != ds.ClassIndex() {
			attrs = append(attrs, a)
		}
	}
	return attrs
}

// oneVsRestTable builds the per-value contingency rows of candidate
// attribute ai for the split A=v vs A≠v: the "value" side comes from the
// pair cube sliced at v; the "rest" side is the candidate's marginal
// cube minus the value side.
func oneVsRestTable(pair, marginal *rulecube.Cube, a1, ai int, v, class int32, restIsHigh bool) (valueTable, error) {
	idx := pair.AttrIndices()
	var posA1, posAi int
	switch {
	case idx[0] == a1 && idx[1] == ai:
		posA1, posAi = 0, 1
	case idx[0] == ai && idx[1] == a1:
		posA1, posAi = 1, 0
	default:
		return valueTable{}, fmt.Errorf("compare: cube dimensions %v do not match (%d,%d)", idx, a1, ai)
	}
	card := pair.Dim(posAi)
	t := newValueTable(card)
	coords := make([]int32, 2)
	coords[posA1] = v
	for k := int32(0); int(k) < card; k++ {
		coords[posAi] = k
		condV, err := pair.CondCount(coords)
		if err != nil {
			return valueTable{}, err
		}
		supV, err := pair.Count(coords, class)
		if err != nil {
			return valueTable{}, err
		}
		condAll, err := marginal.CondCount([]int32{k})
		if err != nil {
			return valueTable{}, err
		}
		supAll, err := marginal.Count([]int32{k}, class)
		if err != nil {
			return valueTable{}, err
		}
		if restIsHigh {
			t.n1[k], t.c1[k] = condV, supV
			t.n2[k], t.c2[k] = condAll-condV, supAll-supV
		} else {
			t.n1[k], t.c1[k] = condAll-condV, supAll-supV
			t.n2[k], t.c2[k] = condV, supV
		}
	}
	return t, nil
}
