package compare

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"opmap/internal/dataset"
	"opmap/internal/faultinject"
	"opmap/internal/obsv"
)

// Permutation test for the interestingness measure. The paper justifies
// M's extremes analytically (Section IV.A) and guards individual
// confidences with intervals (IV.B), but offers no significance level
// for a whole attribute's M. The permutation test supplies one: shuffle
// the records between D1 and D2 (keeping the sub-population sizes),
// recompute M each time, and report how often chance alone reaches the
// observed value. A planted attribute earns a tiny p-value; a noise
// attribute does not — useful when deciding how deep into the ranking
// to send the engineers.

// PermutationResult summarizes a test.
type PermutationResult struct {
	Attr     int
	AttrName string

	Observed float64 // M on the real split
	// PValue is (1 + #{permuted M ≥ observed}) / (1 + rounds), the
	// add-one estimator that never returns 0.
	PValue float64
	// NullMean and NullQ95 describe the permutation distribution.
	NullMean float64
	NullQ95  float64
	Rounds   int // rounds that produced a valid M (cf1 > 0)
}

// PermutationTest runs a permutation test of candidate attribute attr
// for the comparison in over the raw dataset. rounds defaults to 200
// when ≤ 0. The test scans the data (cube cells cannot be permuted), so
// its cost scales with |D1|+|D2| per round.
func PermutationTest(ds *dataset.Dataset, in Input, attr int, rounds int, seed int64, opts Options) (PermutationResult, error) {
	return PermutationTestContext(context.Background(), ds, in, attr, rounds, seed, opts)
}

// PermutationTestContext is PermutationTest under a context, checked
// once per permutation round. It is strict: cancellation mid-test
// returns ctx.Err() (a truncated null distribution would bias the
// p-value, so there is no partial mode).
func PermutationTestContext(ctx context.Context, ds *dataset.Dataset, in Input, attr int, rounds int, seed int64, opts Options) (PermutationResult, error) {
	defer obsv.Stage(obsv.StagePermutationTest)()
	if !ds.AllCategorical() {
		return PermutationResult{}, fmt.Errorf("compare: dataset has continuous attributes; discretize first")
	}
	if attr < 0 || attr >= ds.NumAttrs() || attr == ds.ClassIndex() || attr == in.Attr {
		return PermutationResult{}, fmt.Errorf("compare: invalid candidate attribute %d", attr)
	}
	if rounds <= 0 {
		rounds = 200
	}

	// Observed score via the standard scan restricted to this attribute.
	obs, err := Scan(ds, in, withAttrs(opts, attr))
	if err != nil {
		return PermutationResult{}, err
	}
	score, _, ok := obs.Find(ds.Attr(attr).Name)
	if !ok {
		return PermutationResult{}, fmt.Errorf("compare: attribute %q produced no score", ds.Attr(attr).Name)
	}

	// Collect the member rows of both sub-populations, with their
	// candidate-attribute value and class membership. One pass over the
	// rows; cancellation granularity is the pass (same convention as a
	// single cube build).
	pool, n1 := collectPool(ds, in, attr, obs.Swapped)
	if n1 == 0 || n1 == len(pool) {
		return PermutationResult{}, fmt.Errorf("compare: degenerate sub-populations")
	}

	card := ds.Cardinality(attr)
	rng := rand.New(rand.NewSource(seed))
	var null []float64
	exceed := 0
	for round := 0; round < rounds; round++ {
		if err := ctxOrFault(ctx, faultinject.SitePermRound); err != nil {
			return PermutationResult{}, err
		}
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		tab := newValueTable(card)
		var t1n, t1c, t2n, t2c int64
		for i, m := range pool {
			if m.value < 0 {
				continue
			}
			if i < n1 {
				tab.n1[m.value]++
				t1n++
				if m.inClass {
					tab.c1[m.value]++
					t1c++
				}
			} else {
				tab.n2[m.value]++
				t2n++
				if m.inClass {
					tab.c2[m.value]++
					t2c++
				}
			}
		}
		m, valid := permScore(tab, t1n, t1c, t2n, t2c, opts)
		if !valid {
			continue
		}
		null = append(null, m)
		if m >= score.Score {
			exceed++
		}
	}
	if len(null) == 0 {
		return PermutationResult{}, fmt.Errorf("compare: no valid permutation rounds (class too rare)")
	}
	res := PermutationResult{
		Attr:     attr,
		AttrName: ds.Attr(attr).Name,
		Observed: score.Score,
		PValue:   float64(1+exceed) / float64(1+len(null)),
		Rounds:   len(null),
	}
	res.NullMean, res.NullQ95 = summarizeNull(null)
	return res, nil
}

// member is one row of a permutation pool: its candidate-attribute
// value and whether the row belongs to the target class.
type member struct {
	value   int32
	inClass bool
}

// collectPool gathers the member rows of both sub-populations in one
// pass over the dataset, in row order; n1 counts the first
// sub-population's rows. The permutation rounds shuffle the pool and
// re-partition it at n1.
func collectPool(ds *dataset.Dataset, in Input, attr int, swapped bool) (pool []member, n1 int) {
	a1 := ds.Column(in.Attr).Codes
	ai := ds.Column(attr).Codes
	cls := ds.Column(ds.ClassIndex()).Codes
	v1, v2 := in.V1, in.V2
	// Match the observed orientation: prepare() may have swapped.
	if swapped {
		v1, v2 = v2, v1
	}
	for r := range a1 {
		switch a1[r] {
		case v1:
			pool = append(pool, member{ai[r], cls[r] == in.Class})
			n1++
		case v2:
			pool = append(pool, member{ai[r], cls[r] == in.Class})
		}
	}
	return pool, n1
}

// summarizeNull reduces the null distribution to its mean and 95th
// percentile. Sorts in place.
func summarizeNull(null []float64) (mean, q95 float64) {
	var sum float64
	for _, m := range null {
		sum += m
	}
	sort.Float64s(null)
	return sum / float64(len(null)), null[int(0.95*float64(len(null)-1))]
}

// permScore computes M for a permuted table, orienting so cf1 < cf2.
func permScore(tab valueTable, t1n, t1c, t2n, t2c int64, opts Options) (float64, bool) {
	if t1n == 0 || t2n == 0 {
		return 0, false
	}
	cf1 := float64(t1c) / float64(t1n)
	cf2 := float64(t2c) / float64(t2n)
	if cf1 > cf2 {
		tab.n1, tab.n2 = tab.n2, tab.n1
		tab.c1, tab.c2 = tab.c2, tab.c1
		cf1, cf2 = cf2, cf1
	}
	if t1c == 0 || t2c == 0 {
		return 0, false
	}
	res := &Result{Cf1: cf1, Cf2: cf2, Ratio: cf2 / cf1, Options: opts}
	comp := &computation{result: res}
	ds, err := syntheticAttr("perm", permDict(len(tab.n1)))
	if err != nil {
		return 0, false
	}
	score, err := scoreAttribute(ds, 0, tab, comp, opts)
	if err != nil {
		return 0, false
	}
	return score.Score, true
}

func permDict(card int) *dataset.Dictionary {
	d := dataset.NewDictionary()
	for i := 0; i < card; i++ {
		d.Code(fmt.Sprintf("v%d", i))
	}
	return d
}

// withAttrs restricts opts to a single candidate attribute.
func withAttrs(opts Options, attr int) Options {
	opts.Attrs = []int{attr}
	return opts
}
