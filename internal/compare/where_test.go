package compare

import (
	"testing"

	"opmap/internal/car"
)

func TestScanWhereRestrictsPopulation(t *testing.T) {
	_, gt, ds := buildCaseStudy(t, 60000, 2)
	in := inputFor(t, ds, gt)
	timeAttr := ds.AttrIndex(gt.DistinguishingAttr)
	morning, _ := ds.Column(timeAttr).Dict.Lookup(gt.MorningValue)

	// Within morning calls, the two phones' gap is larger than overall
	// (the planted excess lives there).
	overall, err := Scan(ds, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	within, err := ScanWhere(ds, []car.Condition{{Attr: timeAttr, Value: morning}}, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if within.Cf2 <= overall.Cf2 {
		t.Errorf("morning-restricted bad-phone rate %.4f should exceed overall %.4f", within.Cf2, overall.Cf2)
	}
	// The fixed attribute is not ranked.
	if _, _, ok := within.Find(gt.DistinguishingAttr); ok {
		t.Error("fixed attribute leaked into the ranking")
	}
	// Counts match a manual filter.
	var n2 int64
	for r := 0; r < ds.NumRows(); r++ {
		if ds.CatCode(r, timeAttr) == morning && ds.CatCode(r, in.Attr) == within.Rule2.Conditions[0].Value {
			n2++
		}
	}
	if within.Rule2.CondCount != n2 {
		t.Errorf("restricted |D2| = %d, manual count %d", within.Rule2.CondCount, n2)
	}
}

func TestScanWhereValidation(t *testing.T) {
	_, gt, ds := buildCaseStudy(t, 5000, 0)
	in := inputFor(t, ds, gt)
	timeAttr := ds.AttrIndex(gt.DistinguishingAttr)

	if _, err := ScanWhere(ds, []car.Condition{{Attr: ds.ClassIndex(), Value: 0}}, in, Options{}); err == nil {
		t.Error("fixed class should fail")
	}
	if _, err := ScanWhere(ds, []car.Condition{{Attr: in.Attr, Value: 0}}, in, Options{}); err == nil {
		t.Error("fixed comparison attribute should fail")
	}
	if _, err := ScanWhere(ds, []car.Condition{{Attr: timeAttr, Value: 0}, {Attr: timeAttr, Value: 1}}, in, Options{}); err == nil {
		t.Error("duplicate fixed attribute should fail")
	}
	if _, err := ScanWhere(ds, []car.Condition{{Attr: timeAttr, Value: 99}}, in, Options{}); err == nil {
		t.Error("bad fixed value should fail")
	}
	if _, err := ScanWhere(ds, []car.Condition{{Attr: 99, Value: 0}}, in, Options{}); err == nil {
		t.Error("bad fixed attribute should fail")
	}
	if _, err := ScanWhere(ds, []car.Condition{{Attr: timeAttr, Value: 0}}, in,
		Options{Attrs: []int{timeAttr}}); err == nil {
		t.Error("ranking a fixed attribute should fail")
	}
}

func TestScanWhereEmptyIntersection(t *testing.T) {
	_, gt, ds := buildCaseStudy(t, 2000, 0)
	in := inputFor(t, ds, gt)
	// Hardware version is tied to the phone: fixing hw of phone 3 while
	// comparing ph1 vs ph2 leaves no matching records for either phone.
	hw := ds.AttrIndex(gt.PropertyAttr)
	if _, err := ScanWhere(ds, []car.Condition{{Attr: hw, Value: 2}}, in, Options{}); err == nil {
		t.Error("empty sub-populations should fail")
	}
}

func TestScreenPairsQValues(t *testing.T) {
	store, gt, ds := buildCaseStudy(t, 40000, 0)
	phone := ds.AttrIndex(gt.PhoneAttr)
	cls, _ := ds.ClassDict().Lookup(gt.DropClass)
	pairs, err := New(store).ScreenPairs(phone, cls, ScreenOptions{MinZ: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("no pairs")
	}
	for _, p := range pairs {
		if p.QValue < p.PValue-1e-12 {
			t.Errorf("q (%v) below p (%v)", p.QValue, p.PValue)
		}
		if p.QValue < 0 || p.QValue > 1 {
			t.Errorf("q out of range: %v", p.QValue)
		}
	}
}
