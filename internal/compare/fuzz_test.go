package compare

import (
	"testing"
)

// FuzzComparator fuzzes the computational core (Eq. 1–3) with random
// small count tables and asserts the paper's invariants:
//
//   - M_i ≥ 0 and M_i is the sum of the per-value contributions;
//   - W_k ≥ 0, and W_k == 0 whenever F_k ≤ 0 (only positive excess
//     confidence counts, Eq. 2);
//   - exactly proportional distributions (D2 = 2×D1 per value) score
//     M_i == 0, the Fig. 2(A) boundary case: doubling every count
//     changes no confidence, so nothing is actionable.
func FuzzComparator(f *testing.F) {
	f.Add(uint8(10), uint8(2), uint8(10), uint8(1), uint8(10), uint8(4), uint8(10), uint8(2), uint8(10), uint8(6), uint8(10), uint8(3), false)
	f.Add(uint8(5), uint8(0), uint8(7), uint8(7), uint8(0), uint8(0), uint8(3), uint8(1), uint8(9), uint8(2), uint8(1), uint8(1), true)
	f.Add(uint8(1), uint8(1), uint8(1), uint8(0), uint8(2), uint8(2), uint8(0), uint8(0), uint8(255), uint8(128), uint8(64), uint8(32), false)
	f.Fuzz(func(t *testing.T, a0, b0, a1, b1, a2, b2, x0, y0, x1, y1, x2, y2 uint8, disableCI bool) {
		// Build a 3-value table with guaranteed-valid counts: each class
		// count is reduced modulo its value count + 1 so c ≤ n.
		clamp := func(n, c uint8) (int64, int64) {
			nn := int64(n % 32)
			if nn == 0 {
				return 0, 0
			}
			return nn, int64(c) % (nn + 1)
		}
		n1 := make([]int64, 3)
		c1 := make([]int64, 3)
		n2 := make([]int64, 3)
		c2 := make([]int64, 3)
		n1[0], c1[0] = clamp(a0, b0)
		n1[1], c1[1] = clamp(a1, b1)
		n1[2], c1[2] = clamp(a2, b2)
		n2[0], c2[0] = clamp(x0, y0)
		n2[1], c2[1] = clamp(x1, y1)
		n2[2], c2[2] = clamp(x2, y2)

		opts := Options{DisableCI: disableCI}
		score, res, err := CompareValues("Fuzzed", nil, n1, c1, n2, c2, opts)
		if err != nil {
			// Degenerate tables (empty sub-population, zero confidence on
			// the lower side) are rejected by contract, not scored.
			t.Skip()
		}

		if score.Score < 0 {
			t.Fatalf("M = %v < 0 (table n1=%v c1=%v n2=%v c2=%v)", score.Score, n1, c1, n2, c2)
		}
		var sum float64
		for _, d := range score.Values {
			if d.W < 0 {
				t.Fatalf("W_k = %v < 0 for value %q", d.W, d.Label)
			}
			if d.F <= 0 && d.W != 0 {
				t.Fatalf("W_k = %v nonzero with F_k = %v ≤ 0 for value %q", d.W, d.F, d.Label)
			}
			sum += d.W
		}
		if sum != score.Score {
			t.Fatalf("M = %v is not the sum of contributions %v", score.Score, sum)
		}
		if res.Ratio < 1 {
			t.Fatalf("confidence ratio %v < 1; CompareValues must orient so cf2 ≥ cf1", res.Ratio)
		}

		// Proportionality invariant: doubling the D1 table as D2 leaves
		// every confidence bit-identical (small integers scaled by a
		// power of two), so M must be exactly zero — with raw
		// confidences F_k == 0, and with CI revision F_k ≤ 0.
		d2n := make([]int64, 3)
		d2c := make([]int64, 3)
		for k := range n1 {
			d2n[k] = 2 * n1[k]
			d2c[k] = 2 * c1[k]
		}
		for _, ci := range []bool{true, false} {
			pScore, _, err := CompareValues("Proportional", nil, n1, c1, d2n, d2c, Options{DisableCI: ci})
			if err != nil {
				continue
			}
			if pScore.Score != 0 {
				t.Fatalf("proportional distributions scored M = %v (DisableCI=%v, n1=%v c1=%v)", pScore.Score, ci, n1, c1)
			}
		}
	})
}
