package compare

import (
	"context"
	"errors"
	"fmt"

	"opmap/internal/dataset"
	"opmap/internal/engine"
)

// Batch comparison support. A sweep or a one-vs-rest run over every
// value of an attribute knows its complete cube working set before the
// first comparison starts: the split attribute's 1-D cube, one pair
// cube per candidate attribute, and (for one-vs-rest) each candidate's
// 1-D marginal. Declaring that set through engine.CubeSource.Cubes lets
// a lazy source materialize every missing cube from ONE shared dataset
// scan (rulecube.BuildMany) instead of one scan per cube.

// prefetchPairs bulk-materializes the split attribute's 1-D cube and
// the (split, candidate) pair cube for every candidate — plus each
// candidate's own 1-D marginal when withMarginals is set (the
// one-vs-rest table needs it). Candidate-list validation errors are
// returned; anything else is best-effort: attributes outside the
// source's served set are left out, and a failed bulk build is ignored,
// so the sequential loop reproduces any real failure with its usual
// shape (and partial modes can still degrade per item).
func (c *Comparator) prefetchPairs(ctx context.Context, attr int, explicit []int, withMarginals bool) error {
	attrs, err := resolveRankAttrs(c.ds, attr, explicit)
	if err != nil {
		return err
	}
	reqs := batchReqsFor(c.src.Attrs(), attr, attrs, withMarginals)
	if reqs == nil {
		return nil // let the sequential path report the unavailable attribute
	}
	if _, err := c.src.Cubes(ctx, reqs); err != nil {
		return nil // best-effort: the per-cube path will surface real failures
	}
	return nil
}

// annotateSkippedValues marks the value range [from, card) as skipped
// with one shared reason — the tail a partial run never reached.
func annotateSkippedValues(res *OneVsRestAllResult, dict *dataset.Dictionary, from, card int, reason string) {
	for v := from; v < card; v++ {
		res.Skipped = append(res.Skipped, ItemError{Item: dict.Label(int32(v)), Err: reason})
	}
}

// batchReqsFor assembles the bulk cube request list for a fan-out over
// attr ranking attrs: the split attribute's 1-D cube, each served
// candidate's pair cube, and (withMarginals) its 1-D marginal. A nil
// return means the split attribute itself is not served.
func batchReqsFor(servedList []int, attr int, attrs []int, withMarginals bool) []engine.CubeReq {
	served := make(map[int]bool, len(servedList))
	for _, a := range servedList {
		served[a] = true
	}
	if !served[attr] {
		return nil
	}
	reqs := make([]engine.CubeReq, 0, 2*len(attrs)+1)
	reqs = append(reqs, engine.CubeReq{A: attr, B: -1})
	for _, ai := range attrs {
		if !served[ai] {
			continue
		}
		reqs = append(reqs, engine.CubeReq{A: attr, B: ai})
		if withMarginals {
			reqs = append(reqs, engine.CubeReq{A: ai, B: -1})
		}
	}
	return reqs
}

// OneVsRestAllOptions configures a one-vs-rest comparison over every
// value of the split attribute.
type OneVsRestAllOptions struct {
	// Compare tunes each per-value one-vs-rest ranking.
	Compare Options
	// DisableBatch turns off the up-front shared-scan cube prefetch so
	// every cube is faulted in one by one. Results are identical either
	// way; the flag exists for benchmarking and oracle tests.
	DisableBatch bool
}

// OneVsRestAllResult aggregates the one-vs-rest rankings of every value
// of one attribute.
type OneVsRestAllResult struct {
	// Attr is the split attribute's index.
	Attr int
	// Values, Labels and Results are parallel, in ascending value-code
	// order: one entry per value whose one-vs-rest comparison is
	// defined on the data.
	Values  []int32
	Labels  []string
	Results []*Result
	// Skipped annotates the values whose comparison is undefined on
	// this data (ErrValueUndefined) — or, on a degraded partial run,
	// was not attempted before the context expired.
	Skipped []ItemError
	// Partial is set when the context expired mid-run and
	// Compare.PartialOnDeadline allowed degradation, either between
	// values (the rest are annotated in Skipped) or inside one value's
	// ranking (that Result carries its own Partial flag).
	Partial bool
}

// OneVsRestAll runs OneVsRest for every value of attr against the
// class, skipping values whose comparison is undefined on the data
// (degenerate splits, zero-confidence sides, …) instead of failing.
func (c *Comparator) OneVsRestAll(attr int, class int32, opts OneVsRestAllOptions) (*OneVsRestAllResult, error) {
	return c.OneVsRestAllContext(context.Background(), attr, class, opts)
}

// OneVsRestAllContext is OneVsRestAll under a context. Its full cube
// working set is declared up front so a lazy source serves the whole
// run from one shared dataset scan. With Compare.PartialOnDeadline set,
// a context that expires mid-run yields the values ranked so far with
// Partial set and the rest annotated in Skipped; otherwise the call
// fails with the first error.
func (c *Comparator) OneVsRestAllContext(ctx context.Context, attr int, class int32, opts OneVsRestAllOptions) (*OneVsRestAllResult, error) {
	ds := c.ds
	if attr < 0 || attr >= ds.NumAttrs() || attr == ds.ClassIndex() {
		return nil, fmt.Errorf("compare: invalid comparison attribute %d", attr)
	}
	if class < 0 || int(class) >= ds.NumClasses() {
		return nil, fmt.Errorf("compare: class %d out of range [0,%d)", class, ds.NumClasses())
	}
	// Validate the candidate list up front on both paths, so a bad
	// explicit list fails identically with and without batching.
	if _, err := resolveRankAttrs(ds, attr, opts.Compare.Attrs); err != nil {
		return nil, err
	}
	if !opts.DisableBatch {
		if err := c.prefetchPairs(ctx, attr, opts.Compare.Attrs, true); err != nil {
			return nil, err
		}
	}
	dict := ds.Column(attr).Dict
	res := &OneVsRestAllResult{Attr: attr}
	card := ds.Cardinality(attr)
	annotateRest := func(from int, reason string) {
		annotateSkippedValues(res, dict, from, card, reason)
	}
	for v := 0; v < card; v++ {
		if err := ctx.Err(); err != nil {
			if !opts.Compare.PartialOnDeadline {
				return nil, err
			}
			res.Partial = true
			annotateRest(v, err.Error())
			break
		}
		label := dict.Label(int32(v))
		one, err := c.OneVsRestContext(ctx, OneVsRestInput{Attr: attr, Value: int32(v), Class: class}, opts.Compare)
		switch {
		case err == nil:
			res.Values = append(res.Values, int32(v))
			res.Labels = append(res.Labels, label)
			res.Results = append(res.Results, one)
			res.Partial = res.Partial || one.Partial
		case errors.Is(err, ErrValueUndefined):
			res.Skipped = append(res.Skipped, ItemError{Item: label, Err: err.Error()})
		case ctx.Err() != nil && opts.Compare.PartialOnDeadline:
			res.Partial = true
			res.Skipped = append(res.Skipped, ItemError{Item: label, Err: err.Error()})
			annotateRest(v+1, ctx.Err().Error())
			return res, nil
		default:
			return nil, fmt.Errorf("compare: one-vs-rest %s=%s: %w", ds.Attr(attr).Name, label, err)
		}
	}
	return res, nil
}
