// Package compare implements the paper's contribution: automated
// comparison of two sub-populations with respect to a target class
// (Sections III.C and IV). Given two one-condition rules
//
//	Rule 1: A1 = v_i -> c_a   (confidence cf1)
//	Rule 2: A1 = v_j -> c_a   (confidence cf2, cf1 < cf2)
//
// the comparator ranks every other attribute by how well it explains the
// confidence gap between the sub-populations D1 = {A1=v_i} and
// D2 = {A1=v_j}:
//
//	F_k = rcf_2k − rcf_1k · (cf2/cf1)       // per value v_k  (Eq. 1)
//	W_k = F_k · N_2k  if F_k > 0, else 0    // contribution    (Eq. 2)
//	M_i = Σ_k W_k                            // interestingness (Eq. 3)
//
// where rcf_1k = cf_1k + e_1k and rcf_2k = cf_2k − e_2k are the
// confidence-interval-revised confidences of Section IV.B. Attributes
// whose values almost never co-occur in both sub-populations are
// *property attributes* (Section IV.C) and are ranked separately.
package compare

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"opmap/internal/car"
	"opmap/internal/dataset"
	"opmap/internal/engine"
	"opmap/internal/faultinject"
	"opmap/internal/obsv"
	"opmap/internal/rulecube"
	"opmap/internal/stats"
)

// IntervalMethod selects how confidence-interval margins are computed.
type IntervalMethod uint8

const (
	// Wald is the normal-approximation interval the paper uses
	// (e = z·sqrt(cf(1−cf)/N)).
	Wald IntervalMethod = iota
	// Wilson is the Wilson score interval, better behaved at extreme
	// proportions (an extension beyond the paper).
	Wilson
)

// String implements fmt.Stringer.
func (m IntervalMethod) String() string {
	switch m {
	case Wald:
		return "wald"
	case Wilson:
		return "wilson"
	default:
		return fmt.Sprintf("IntervalMethod(%d)", uint8(m))
	}
}

// Options configures a comparison. The zero value reproduces the paper:
// 0.95 confidence level, Wald intervals, property threshold 0.90.
type Options struct {
	// Level is the statistical confidence level (Table I). Zero means 0.95.
	Level stats.ConfidenceLevel
	// DisableCI switches off the interval adjustment, using raw
	// confidences in Eq. 1 (for the ablation the paper motivates in
	// Section IV.B).
	DisableCI bool
	// Method selects the interval formula when CI is enabled.
	Method IntervalMethod
	// PropertyThreshold is λ in Section IV.C; an attribute is a property
	// attribute when P/(P+T) > λ. Zero means 0.90.
	PropertyThreshold float64
	// MinRuleSupport optionally rejects input rules whose condition
	// count is below this (the paper assumes "both supports are large
	// enough for meaningful analysis (which is decided by the user)").
	MinRuleSupport int64
	// Attrs restricts the attributes ranked. Nil means every attribute
	// other than the comparison attribute and the class.
	Attrs []int
	// PartialOnDeadline makes OneVsRestContext return the attributes
	// scored so far — with the rest annotated in Result.Unscored — when
	// the context expires mid-ranking, instead of failing the whole
	// call. Pairwise CompareContext is always strict so that sweeps can
	// attribute a deadline to a specific pair.
	PartialOnDeadline bool
}

func (o Options) level() stats.ConfidenceLevel {
	if stats.IsZero(float64(o.Level)) {
		return stats.Level95
	}
	return o.Level
}

func (o Options) propertyThreshold() float64 {
	if stats.IsZero(o.PropertyThreshold) {
		return 0.90
	}
	return o.PropertyThreshold
}

// ErrRankSelf reports an explicit Options.Attrs entry equal to the
// comparison (split) attribute: an attribute cannot be ranked against
// itself. Distinct from ErrRankClass so callers (and the HTTP layer)
// can tell the two request mistakes apart.
var ErrRankSelf = errors.New("cannot be ranked against the comparison attribute itself")

// ErrRankClass reports an explicit Options.Attrs entry equal to the
// class attribute: the class is the ranking target, never a candidate.
var ErrRankClass = errors.New("the class attribute cannot be ranked")

// resolveRankAttrs resolves the candidate ranking attributes of a
// comparison split on splitAttr: nil means every attribute except the
// split attribute and the class; an explicit list is copied and
// validated, wrapping ErrRankSelf for a split-attribute entry and
// ErrRankClass for a class entry. Shared by the pairwise, one-vs-rest
// and batch-prefetch paths so all three reject bad lists identically.
func resolveRankAttrs(ds *dataset.Dataset, splitAttr int, explicit []int) ([]int, error) {
	if explicit == nil {
		return defaultRankAttrs(ds, splitAttr), nil
	}
	attrs := append([]int(nil), explicit...)
	for _, a := range attrs {
		if a < 0 || a >= ds.NumAttrs() {
			return nil, fmt.Errorf("compare: attribute index %d out of range", a)
		}
		switch a {
		case splitAttr:
			return nil, fmt.Errorf("compare: attribute %q %w", ds.Attr(a).Name, ErrRankSelf)
		case ds.ClassIndex():
			return nil, fmt.Errorf("compare: attribute %q: %w", ds.Attr(a).Name, ErrRankClass)
		}
	}
	return attrs, nil
}

// Input identifies the two sub-populations and the class of interest.
type Input struct {
	Attr   int   // A1: the attribute whose two values are compared
	V1, V2 int32 // the two values (e.g. two phone models)
	Class  int32 // c_a: the class of interest (e.g. "dropped")
}

// ValueDetail is the per-value breakdown behind an attribute's score —
// exactly the data Fig. 7 visualizes (side-by-side confidences with CI
// regions).
type ValueDetail struct {
	Value int32  // value code of the candidate attribute
	Label string // value label

	N1, N2 int64 // records with this value in D1 / D2
	C1, C2 int64 // of those, records in class c_a

	Cf1, Cf2   float64 // raw confidences cf_1k, cf_2k
	E1, E2     float64 // CI margins e_1k, e_2k (0 when CI disabled)
	RCf1, RCf2 float64 // revised confidences used in Eq. 1

	F float64 // excess confidence beyond expectation (Eq. 1)
	W float64 // contribution W_k (Eq. 2)
}

// AttrScore is the comparison result for one candidate attribute.
type AttrScore struct {
	Attr int    // dataset attribute index
	Name string // attribute name

	Score float64 // M_i (Eq. 3)
	// NormScore is Score normalized by cf2·|D2| (the order of magnitude
	// of the attainable maximum, Section IV.A's boundary discussion), so
	// scores are comparable across datasets. Extension beyond the paper.
	NormScore float64

	Property      bool    // Section IV.C property attribute
	PropertyRatio float64 // P/(P+T); NaN when P+T = 0

	Values []ValueDetail // per-value breakdown, in value-code order
}

// Result is a full comparison: the oriented input rules and the ranking.
type Result struct {
	// Rule1 and Rule2 are the input one-condition rules, oriented so
	// that Rule1 has the lower confidence (cf1 < cf2). Swapped records
	// whether the caller's V1/V2 were exchanged to achieve this.
	Rule1, Rule2 car.Rule
	Swapped      bool

	Cf1, Cf2 float64 // confidences of the oriented rules
	Ratio    float64 // cf2/cf1, the expectation multiplier

	// Ranked lists non-property attributes by descending score.
	Ranked []AttrScore
	// Property lists property attributes (Section IV.C), kept viewable
	// but out of the main ranking, by descending score.
	Property []AttrScore

	// Partial is set when the ranking is incomplete because the context
	// expired and Options.PartialOnDeadline allowed degradation; the
	// attributes that were not scored are listed in Unscored.
	Partial  bool
	Unscored []ItemError

	Options Options
}

// ItemError annotates one item (an attribute, a value pair) that a
// degraded call could not complete, with the reason. Err is a plain
// string so results marshal cleanly to JSON.
type ItemError struct {
	Item string `json:"item"`
	Err  string `json:"err"`
}

// Top returns the n highest-ranked non-property attributes.
func (r *Result) Top(n int) []AttrScore {
	if n > len(r.Ranked) {
		n = len(r.Ranked)
	}
	return r.Ranked[:n]
}

// Find returns the score entry (ranked or property) for the named
// attribute, with its 1-based rank among non-property attributes (0 for
// property attributes), or ok=false.
func (r *Result) Find(name string) (score AttrScore, rank int, ok bool) {
	for i, s := range r.Ranked {
		if s.Name == name {
			return s, i + 1, true
		}
	}
	for _, s := range r.Property {
		if s.Name == name {
			return s, 0, true
		}
	}
	return AttrScore{}, 0, false
}

// Comparator evaluates comparisons against a cube source — either a
// fully materialized store (the deployed configuration: because only
// cube cells are read, the comparison time is independent of the raw
// dataset size, Section V.C) or a lazy engine that materializes cubes
// on first touch.
type Comparator struct {
	src engine.CubeSource
	ds  *dataset.Dataset
}

// New returns a Comparator over the given eager store. Kept as the
// store-based constructor; NewSource accepts any engine.
func New(store *rulecube.Store) *Comparator {
	return NewSource(engine.NewEager(store))
}

// NewSource returns a Comparator over any cube source.
func NewSource(src engine.CubeSource) *Comparator {
	return &Comparator{src: src, ds: src.Dataset()}
}

// Compare runs the full ranking of Fig. 3's algorithm: for each
// candidate attribute it computes M_i from the 3-D rule cube
// (A1 × A_i × class) and ranks the attributes.
func (c *Comparator) Compare(in Input, opts Options) (*Result, error) {
	return c.CompareContext(context.Background(), in, opts)
}

// ctxOrFault is the per-item check inserted into the pipeline loops:
// it returns the context's error as soon as it is done, and otherwise
// passes through the named fault point.
func ctxOrFault(ctx context.Context, site string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return faultinject.HitContext(ctx, site)
}

// CompareContext is Compare under a context, checked once per
// candidate attribute. It is always strict: on cancellation it returns
// ctx.Err() rather than a partial ranking (degradation belongs to the
// fan-out callers, SweepContext and OneVsRestContext).
func (c *Comparator) CompareContext(ctx context.Context, in Input, opts Options) (*Result, error) {
	total := func() (int64, error) {
		// The comparison attribute's 1-D cube totals the countable
		// records (attribute and class both present) — the same
		// population OneVsRest totals over, and, unlike the working
		// dataset's physical row count, correct for sessions restored
		// from a snapshot whose dataset holds only post-restore rows.
		cube, err := c.src.Cube1(ctx, in.Attr)
		if err != nil {
			return 0, fmt.Errorf("compare: attribute %d unavailable: %w", in.Attr, err)
		}
		return cube.Total(), nil
	}
	res, attrs, err := prepare(c.ds, in, opts, total, func(attr int, value, class int32) (condCount, supCount int64, err error) {
		cube, err := c.src.Cube1(ctx, attr)
		if err != nil {
			return 0, 0, fmt.Errorf("compare: attribute %d unavailable: %w", attr, err)
		}
		cond, err := cube.CondCount([]int32{value})
		if err != nil {
			return 0, 0, err
		}
		sup, err := cube.Count([]int32{value}, class)
		if err != nil {
			return 0, 0, err
		}
		return cond, sup, nil
	})
	if err != nil {
		return nil, err
	}

	// Hot-path timing: disarmed (the default) this loop pays one atomic
	// load up front and nothing per attribute; armed, each candidate's
	// scoring is observed individually.
	var attrTimes *obsv.Histogram
	if obsv.HotArmed() {
		attrTimes = obsv.Default().Histogram(obsv.CompareAttrHistogramName, nil)
	}
	for _, ai := range attrs {
		if err := ctxOrFault(ctx, faultinject.SiteCompareAttr); err != nil {
			return nil, err
		}
		var attrStart time.Time
		if attrTimes != nil {
			attrStart = time.Now()
		}
		cube, err := c.src.Cube2(ctx, in.Attr, ai)
		if err != nil {
			return nil, fmt.Errorf("compare: pair cube (%d,%d) unavailable: %w", in.Attr, ai, err)
		}
		tab, err := pairTable(cube, in.Attr, ai, res.v1, res.v2, in.Class)
		if err != nil {
			return nil, err
		}
		score, err := scoreAttribute(c.ds, ai, tab, res, opts)
		if err != nil {
			return nil, err
		}
		res.add(score)
		if attrTimes != nil {
			attrTimes.ObserveSince(attrStart)
		}
	}
	res.finish()
	return res.result, nil
}

// pairTable extracts, from the 3-D cube over (min,max) attribute order,
// the per-value contingency rows for A1=v1 and A1=v2: for each value v_k
// of candidate attribute ai, the total and class-c_a counts in each
// sub-population.
func pairTable(cube *rulecube.Cube, a1, ai int, v1, v2, class int32) (valueTable, error) {
	idx := cube.AttrIndices()
	var posA1, posAi int
	switch {
	case idx[0] == a1 && idx[1] == ai:
		posA1, posAi = 0, 1
	case idx[0] == ai && idx[1] == a1:
		posA1, posAi = 1, 0
	default:
		return valueTable{}, fmt.Errorf("compare: cube dimensions %v do not match attributes (%d,%d)", idx, a1, ai)
	}
	card := cube.Dim(posAi)
	t := newValueTable(card)
	coords := make([]int32, 2)
	for _, side := range []struct {
		v1   int32
		n, c []int64
	}{
		{v1, t.n1, t.c1},
		{v2, t.n2, t.c2},
	} {
		coords[posA1] = side.v1
		for k := int32(0); int(k) < card; k++ {
			coords[posAi] = k
			cond, err := cube.CondCount(coords)
			if err != nil {
				return valueTable{}, err
			}
			sup, err := cube.Count(coords, class)
			if err != nil {
				return valueTable{}, err
			}
			side.n[k] = cond
			side.c[k] = sup
		}
	}
	return t, nil
}

// valueTable holds the per-value counts of one candidate attribute in
// both sub-populations.
type valueTable struct {
	n1, c1 []int64 // per value: total and class-c_a counts in D1
	n2, c2 []int64 // per value: total and class-c_a counts in D2
}

func newValueTable(card int) valueTable {
	return valueTable{
		n1: make([]int64, card),
		c1: make([]int64, card),
		n2: make([]int64, card),
		c2: make([]int64, card),
	}
}

// computation carries the oriented comparison state while attributes are
// scored.
type computation struct {
	result *Result
	v1, v2 int32 // oriented value codes (v1 = lower-confidence side)
}

func (c *computation) add(s AttrScore) {
	if s.Property {
		c.result.Property = append(c.result.Property, s)
		return
	}
	c.result.Ranked = append(c.result.Ranked, s)
}

func (c *computation) finish() {
	byScore := func(s []AttrScore) func(i, j int) bool {
		return func(i, j int) bool {
			switch {
			case s[i].Score > s[j].Score:
				return true
			case s[j].Score > s[i].Score:
				return false
			}
			return s[i].Name < s[j].Name
		}
	}
	sort.SliceStable(c.result.Ranked, byScore(c.result.Ranked))
	sort.SliceStable(c.result.Property, byScore(c.result.Property))
}

// ruleCounter abstracts how the two input rules' counts are obtained
// (cube store vs. raw scan).
type ruleCounter func(attr int, value, class int32) (condCount, supCount int64, err error)

// prepare validates the input, counts the two input rules, orients them
// so cf1 < cf2, and resolves the candidate attribute list. total is
// called only after the input validates; it supplies the record count
// the input rules' Support is relative to (records where the
// comparison attribute and the class are both present).
func prepare(ds *dataset.Dataset, in Input, opts Options, total func() (int64, error), count ruleCounter) (*computation, []int, error) {
	if in.Attr < 0 || in.Attr >= ds.NumAttrs() || in.Attr == ds.ClassIndex() {
		return nil, nil, fmt.Errorf("compare: invalid comparison attribute %d", in.Attr)
	}
	card := ds.Cardinality(in.Attr)
	if in.V1 < 0 || int(in.V1) >= card || in.V2 < 0 || int(in.V2) >= card {
		return nil, nil, fmt.Errorf("compare: values %d,%d out of range [0,%d) for attribute %q", in.V1, in.V2, card, ds.Attr(in.Attr).Name)
	}
	if in.V1 == in.V2 {
		return nil, nil, fmt.Errorf("compare: the two values must differ")
	}
	if in.Class < 0 || int(in.Class) >= ds.NumClasses() {
		return nil, nil, fmt.Errorf("compare: class %d out of range [0,%d)", in.Class, ds.NumClasses())
	}

	n1, c1, err := count(in.Attr, in.V1, in.Class)
	if err != nil {
		return nil, nil, err
	}
	n2, c2, err := count(in.Attr, in.V2, in.Class)
	if err != nil {
		return nil, nil, err
	}
	if opts.MinRuleSupport > 0 {
		if n1 < opts.MinRuleSupport || n2 < opts.MinRuleSupport {
			return nil, nil, fmt.Errorf("compare: sub-population sizes %d and %d below MinRuleSupport %d", n1, n2, opts.MinRuleSupport)
		}
	}
	if n1 == 0 || n2 == 0 {
		return nil, nil, fmt.Errorf("compare: empty sub-population (|D1|=%d, |D2|=%d)", n1, n2)
	}
	tot, err := total()
	if err != nil {
		return nil, nil, err
	}

	mk := func(v int32, cond, sup int64) car.Rule {
		return car.Rule{
			Conditions: []car.Condition{{Attr: in.Attr, Value: v}},
			Class:      in.Class,
			SupCount:   sup,
			CondCount:  cond,
			Total:      tot,
		}
	}
	r1, r2 := mk(in.V1, n1, c1), mk(in.V2, n2, c2)
	swapped := false
	if r1.Confidence() > r2.Confidence() {
		r1, r2 = r2, r1
		in.V1, in.V2 = in.V2, in.V1
		swapped = true
	}
	cf1, cf2 := r1.Confidence(), r2.Confidence()
	if r1.SupCount == 0 {
		return nil, nil, fmt.Errorf("compare: rule %s has zero confidence; the expectation ratio cf2/cf1 is undefined", r1.Format(ds))
	}

	attrs, err := resolveRankAttrs(ds, in.Attr, opts.Attrs)
	if err != nil {
		return nil, nil, err
	}

	res := &Result{
		Rule1:   r1,
		Rule2:   r2,
		Swapped: swapped,
		Cf1:     cf1,
		Cf2:     cf2,
		Ratio:   cf2 / cf1,
		Options: opts,
	}
	return &computation{result: res, v1: in.V1, v2: in.V2}, attrs, nil
}

// scoreAttribute computes M_i (Eq. 1–3) and the property classification
// for one candidate attribute from its value table.
func scoreAttribute(ds *dataset.Dataset, attr int, tab valueTable, comp *computation, opts Options) (AttrScore, error) {
	res := comp.result
	dict := ds.Column(attr).Dict
	z := 0.0
	if !opts.DisableCI {
		var err error
		z, err = stats.ZValue(opts.level())
		if err != nil {
			return AttrScore{}, err
		}
	}

	score := AttrScore{Attr: attr, Name: ds.Attr(attr).Name}
	var p, t int
	var m float64
	for k := range tab.n1 {
		n1, c1, n2, c2 := tab.n1[k], tab.c1[k], tab.n2[k], tab.c2[k]
		if n1 == 0 && n2 == 0 {
			continue // value occurs in neither sub-population: ignore
		}
		switch {
		case n1 > 0 && n2 > 0:
			t++
		default:
			p++
		}
		d := ValueDetail{Value: int32(k), Label: dict.Label(int32(k)), N1: n1, N2: n2, C1: c1, C2: c2}
		if n1 > 0 {
			d.Cf1 = float64(c1) / float64(n1)
		}
		if n2 > 0 {
			d.Cf2 = float64(c2) / float64(n2)
		}
		d.RCf1, d.RCf2 = d.Cf1, d.Cf2
		if !opts.DisableCI {
			d.E1 = margin(opts.Method, z, d.Cf1, n1, c1, opts.level())
			d.E2 = margin(opts.Method, z, d.Cf2, n2, c2, opts.level())
			d.RCf1 = math.Min(1, d.Cf1+d.E1)
			d.RCf2 = math.Max(0, d.Cf2-d.E2)
		}
		// Eq. 1–2: the expected confidence of cf_2k is cf_1k·(cf2/cf1);
		// F_k is the excess beyond it, counted only when positive.
		d.F = d.RCf2 - d.RCf1*res.Ratio
		if d.F > 0 && n2 > 0 {
			d.W = d.F * float64(n2)
		}
		m += d.W
		score.Values = append(score.Values, d)
	}
	score.Score = m
	if denom := res.Cf2 * float64(res.Rule2.CondCount); denom > 0 {
		score.NormScore = m / denom
	}
	if p+t > 0 {
		score.PropertyRatio = float64(p) / float64(p+t)
		score.Property = score.PropertyRatio > opts.propertyThreshold()
	} else {
		score.PropertyRatio = math.NaN()
	}
	return score, nil
}

// margin computes the CI half-width for a confidence value.
func margin(method IntervalMethod, z, cf float64, n, c int64, level stats.ConfidenceLevel) float64 {
	if n == 0 {
		return 0.5
	}
	switch method {
	case Wilson:
		ci, err := stats.WilsonCI(c, n, level)
		if err != nil {
			return 0.5
		}
		return ci.Margin
	default:
		return z * math.Sqrt(cf*(1-cf)/float64(n))
	}
}

// Scan runs the same comparison by scanning the raw dataset instead of
// reading cubes. It exists for datasets without a materialized store and
// as the baseline of the cube-vs-scan ablation: its cost grows with the
// number of records, whereas Comparator.Compare does not.
func Scan(ds *dataset.Dataset, in Input, opts Options) (*Result, error) {
	if !ds.AllCategorical() {
		return nil, fmt.Errorf("compare: dataset has continuous attributes; discretize first")
	}
	total := func() (int64, error) {
		// Mirror the cube path's population exactly: records where the
		// comparison attribute and the class are both present.
		var n int64
		col := ds.Column(in.Attr).Codes
		cls := ds.Column(ds.ClassIndex()).Codes
		for r := range col {
			if col[r] >= 0 && cls[r] >= 0 {
				n++
			}
		}
		return n, nil
	}
	res, attrs, err := prepare(ds, in, opts, total, func(attr int, value, class int32) (int64, int64, error) {
		var cond, sup int64
		col := ds.Column(attr).Codes
		cls := ds.Column(ds.ClassIndex()).Codes
		for r := range col {
			if col[r] != value {
				continue
			}
			cond++
			if cls[r] == class {
				sup++
			}
		}
		return cond, sup, nil
	})
	if err != nil {
		return nil, err
	}

	// One pass per candidate attribute over the two relevant columns.
	a1Col := ds.Column(in.Attr).Codes
	clsCol := ds.Column(ds.ClassIndex()).Codes
	for _, ai := range attrs {
		card := ds.Cardinality(ai)
		tab := newValueTable(card)
		aiCol := ds.Column(ai).Codes
		for r := range a1Col {
			v := aiCol[r]
			if v < 0 {
				continue
			}
			isClass := clsCol[r] == in.Class
			switch a1Col[r] {
			case res.v1:
				tab.n1[v]++
				if isClass {
					tab.c1[v]++
				}
			case res.v2:
				tab.n2[v]++
				if isClass {
					tab.c2[v]++
				}
			}
		}
		score, err := scoreAttribute(ds, ai, tab, res, opts)
		if err != nil {
			return nil, err
		}
		res.add(score)
	}
	res.finish()
	return res.result, nil
}

// CompareValues scores a single candidate attribute from explicit
// per-value counts, without a dataset. It is the computational core
// exposed for tests and for the boundary-condition demonstrations of
// Fig. 2/Fig. 4: n1/c1 are the per-value total and class counts in D1,
// n2/c2 in D2. Labels may be nil.
func CompareValues(name string, labels []string, n1, c1, n2, c2 []int64, opts Options) (AttrScore, Result, error) {
	card := len(n1)
	if len(c1) != card || len(n2) != card || len(c2) != card {
		return AttrScore{}, Result{}, fmt.Errorf("compare: count slices must have equal length")
	}
	var t1n, t1c, t2n, t2c int64
	for k := 0; k < card; k++ {
		if c1[k] > n1[k] || c2[k] > n2[k] || n1[k] < 0 || n2[k] < 0 || c1[k] < 0 || c2[k] < 0 {
			return AttrScore{}, Result{}, fmt.Errorf("compare: invalid counts at value %d", k)
		}
		t1n += n1[k]
		t1c += c1[k]
		t2n += n2[k]
		t2c += c2[k]
	}
	if t1n == 0 || t2n == 0 {
		return AttrScore{}, Result{}, fmt.Errorf("compare: empty sub-population")
	}
	cf1 := float64(t1c) / float64(t1n)
	cf2 := float64(t2c) / float64(t2n)
	swapped := false
	if cf1 > cf2 {
		n1, n2 = n2, n1
		c1, c2 = c2, c1
		t1n, t2n = t2n, t1n
		t1c, t2c = t2c, t1c
		cf1, cf2 = cf2, cf1
		swapped = true
	}
	if t1c == 0 {
		return AttrScore{}, Result{}, fmt.Errorf("compare: lower-confidence rule has zero confidence")
	}
	res := Result{
		Rule1:   car.Rule{SupCount: t1c, CondCount: t1n, Total: t1n + t2n},
		Rule2:   car.Rule{SupCount: t2c, CondCount: t2n, Total: t1n + t2n},
		Swapped: swapped,
		Cf1:     cf1,
		Cf2:     cf2,
		Ratio:   cf2 / cf1,
		Options: opts,
	}
	comp := &computation{result: &res}
	tab := valueTable{n1: n1, c1: c1, n2: n2, c2: c2}
	dict := dataset.NewDictionary()
	for k := 0; k < card; k++ {
		if labels != nil && k < len(labels) {
			dict.Code(labels[k])
		} else {
			dict.Code(fmt.Sprintf("v%d", k))
		}
	}
	// Build a one-attribute façade dataset so scoreAttribute can resolve
	// names/labels uniformly.
	ds, err := syntheticAttr(name, dict)
	if err != nil {
		return AttrScore{}, Result{}, err
	}
	score, err := scoreAttribute(ds, 0, tab, comp, opts)
	if err != nil {
		return AttrScore{}, Result{}, err
	}
	comp.add(score)
	comp.finish()
	return score, res, nil
}

// syntheticAttr builds a tiny dataset whose attribute 0 carries the
// given name and dictionary; only metadata is consulted by
// scoreAttribute. The schema is statically valid, so errors indicate a
// builder regression and are propagated rather than panicking.
func syntheticAttr(name string, dict *dataset.Dictionary) (*dataset.Dataset, error) {
	if name == "" {
		name = "attr"
	}
	b, err := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: name, Kind: dataset.Categorical},
			{Name: "__class", Kind: dataset.Categorical},
		},
		ClassIndex: 1,
	})
	if err != nil {
		return nil, fmt.Errorf("compare: building synthetic attribute: %w", err)
	}
	b.WithDict(0, dict)
	ds, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("compare: building synthetic attribute: %w", err)
	}
	return ds, nil
}
