// Package gi implements the general-impressions (GI) miner of the
// Opportunity Map system (Section V.A, from the authors' prior work
// [17, 20]): automatic identification of unit trends across an
// attribute's value sequence, exceptional cells in rule cubes, and
// influential attributes. These are the analyses the overall
// visualization (Fig. 5) decorates with trend arrows and that guide the
// user toward attributes worth a detailed look.
package gi

import (
	"context"
	"fmt"
	"math"
	"sort"

	"opmap/internal/engine"
	"opmap/internal/faultinject"
	"opmap/internal/obsv"
	"opmap/internal/rulecube"
	"opmap/internal/stats"
)

// TrendKind classifies a unit trend over an attribute's ordered values.
type TrendKind uint8

const (
	// NoTrend means the confidences are neither monotone nor flat.
	NoTrend TrendKind = iota
	// Increasing confidences (green arrow in Fig. 5).
	Increasing
	// Decreasing confidences (red arrow in Fig. 5).
	Decreasing
	// Stable confidences (gray arrow in Fig. 5).
	Stable
)

// String implements fmt.Stringer.
func (k TrendKind) String() string {
	switch k {
	case NoTrend:
		return "none"
	case Increasing:
		return "increasing"
	case Decreasing:
		return "decreasing"
	case Stable:
		return "stable"
	default:
		return fmt.Sprintf("TrendKind(%d)", uint8(k))
	}
}

// Trend is a detected unit trend of one class's confidence across the
// ordered values of one attribute.
type Trend struct {
	Attr        int
	AttrName    string
	Class       int32
	ClassLabel  string
	Kind        TrendKind
	Confidences []float64 // per value, in value-code order
	// Strength in [0,1]: fraction of adjacent steps consistent with the
	// trend direction (1 = perfectly monotone). For Stable it is
	// 1 − (max−min)/tolerance scaled into [0,1].
	Strength float64
}

// TrendOptions tunes trend detection.
type TrendOptions struct {
	// Tolerance is the absolute confidence change below which a step
	// counts as flat. Zero means 0.005.
	Tolerance float64
	// MinStrength is the minimum strength to report a trend. Zero means
	// 0.8 (allowing occasional flat steps in a monotone run).
	MinStrength float64
	// MinSupportPerValue skips values backed by fewer records. Zero
	// means 1.
	MinSupportPerValue int64
}

func (o TrendOptions) tolerance() float64 {
	if stats.IsZero(o.Tolerance) {
		return 0.005
	}
	return o.Tolerance
}

func (o TrendOptions) minStrength() float64 {
	if stats.IsZero(o.MinStrength) {
		return 0.8
	}
	return o.MinStrength
}

// Trends scans a 2-D rule cube (attribute × class) for unit trends of
// each class's confidence across the attribute's values in dictionary
// order (the natural order for discretized intervals and ordinal
// attributes).
func Trends(cube *rulecube.Cube, opts TrendOptions) ([]Trend, error) {
	if cube.NumDims() != 1 {
		return nil, fmt.Errorf("gi: Trends needs a 2-D rule cube, got %d condition dims", cube.NumDims())
	}
	minSup := opts.MinSupportPerValue
	if minSup == 0 {
		minSup = 1
	}
	card := cube.Dim(0)
	var out []Trend
	for cls := int32(0); int(cls) < cube.NumClasses(); cls++ {
		var confs []float64
		for v := int32(0); int(v) < card; v++ {
			cond, err := cube.CondCount([]int32{v})
			if err != nil {
				return nil, err
			}
			if cond < minSup {
				continue // skip unsupported values rather than fabricating 0
			}
			cf, err := cube.Confidence([]int32{v}, cls)
			if err != nil {
				return nil, err
			}
			confs = append(confs, cf)
		}
		if len(confs) < 2 {
			continue
		}
		kind, strength := classify(confs, opts.tolerance())
		if kind == NoTrend || strength < opts.minStrength() {
			continue
		}
		out = append(out, Trend{
			Attr:        cube.AttrIndices()[0],
			AttrName:    cube.AttrNames()[0],
			Class:       cls,
			ClassLabel:  cube.ClassDict().Label(cls),
			Kind:        kind,
			Confidences: confs,
			Strength:    strength,
		})
	}
	return out, nil
}

// classify decides the trend kind of a confidence sequence.
func classify(confs []float64, tol float64) (TrendKind, float64) {
	ups, downs, flats := 0, 0, 0
	for i := 1; i < len(confs); i++ {
		d := confs[i] - confs[i-1]
		switch {
		case d > tol:
			ups++
		case d < -tol:
			downs++
		default:
			flats++
		}
	}
	steps := float64(len(confs) - 1)
	switch {
	case ups == 0 && downs == 0:
		return Stable, 1
	case downs == 0 && ups > 0:
		return Increasing, (float64(ups) + float64(flats)) / steps
	case ups == 0 && downs > 0:
		return Decreasing, (float64(downs) + float64(flats)) / steps
	default:
		// Mixed: monotone enough if one direction dominates strongly.
		if float64(ups)/steps >= 0.8 {
			return Increasing, float64(ups) / steps
		}
		if float64(downs)/steps >= 0.8 {
			return Decreasing, float64(downs) / steps
		}
		return NoTrend, 0
	}
}

// ConditionalTrend is a unit trend detected within one sub-population:
// for the first dimension's value v, the class confidence across the
// second dimension's values is monotone or stable. Comparing each
// product's own trend ("ph2's drop rate rises toward the morning while
// ph1's is flat") is the 3-D-cube reading of Fig. 7.
type ConditionalTrend struct {
	FixedAttr  int
	FixedName  string
	FixedValue int32
	FixedLabel string
	Trend      Trend
}

// TrendsWithin scans a 3-D rule cube for unit trends of the second
// dimension's confidences within each value of the first dimension.
func TrendsWithin(cube *rulecube.Cube, opts TrendOptions) ([]ConditionalTrend, error) {
	if cube.NumDims() != 2 {
		return nil, fmt.Errorf("gi: TrendsWithin needs a 3-D rule cube, got %d condition dims", cube.NumDims())
	}
	var out []ConditionalTrend
	for v := int32(0); int(v) < cube.Dim(0); v++ {
		sliced, err := cube.Slice(0, v)
		if err != nil {
			return nil, err
		}
		trends, err := Trends(sliced, opts)
		if err != nil {
			return nil, err
		}
		for _, tr := range trends {
			out = append(out, ConditionalTrend{
				FixedAttr:  cube.AttrIndices()[0],
				FixedName:  cube.AttrNames()[0],
				FixedValue: v,
				FixedLabel: cube.Dict(0).Label(v),
				Trend:      tr,
			})
		}
	}
	return out, nil
}

// Exception is a cube cell whose confidence deviates strongly from its
// attribute's typical confidence for that class.
type Exception struct {
	Attr       int
	AttrName   string
	Value      int32
	ValueLabel string
	Class      int32
	ClassLabel string
	Confidence float64
	Expected   float64 // mean confidence of the class across values
	ZScore     float64 // deviation in attribute-level standard deviations
	Support    int64   // records behind the cell
}

// ExceptionOptions tunes exception mining.
type ExceptionOptions struct {
	// MinZ is the minimum |z| to report. Zero means 2.
	MinZ float64
	// MinSupport skips cells backed by fewer records. Zero means 30
	// (below that the normal approximation is meaningless).
	MinSupport int64
}

func (o ExceptionOptions) minZ() float64 {
	if stats.IsZero(o.MinZ) {
		return 2
	}
	return o.MinZ
}

func (o ExceptionOptions) minSupport() int64 {
	if o.MinSupport == 0 {
		return 30
	}
	return o.MinSupport
}

// Exceptions finds exceptional cells in a 2-D rule cube: values whose
// class confidence is far from the attribute's mean confidence for that
// class, measured in standard deviations across values.
func Exceptions(cube *rulecube.Cube, opts ExceptionOptions) ([]Exception, error) {
	if cube.NumDims() != 1 {
		return nil, fmt.Errorf("gi: Exceptions needs a 2-D rule cube, got %d condition dims", cube.NumDims())
	}
	card := cube.Dim(0)
	var out []Exception
	for cls := int32(0); int(cls) < cube.NumClasses(); cls++ {
		type cell struct {
			v    int32
			cf   float64
			cond int64
		}
		var cells []cell
		var confs []float64
		for v := int32(0); int(v) < card; v++ {
			cond, err := cube.CondCount([]int32{v})
			if err != nil {
				return nil, err
			}
			if cond < opts.minSupport() {
				continue
			}
			cf, err := cube.Confidence([]int32{v}, cls)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell{v, cf, cond})
			confs = append(confs, cf)
		}
		if len(cells) < 3 {
			continue
		}
		mean := stats.Mean(confs)
		sd := stats.StdDev(confs)
		if stats.IsZero(sd) {
			continue
		}
		for _, c := range cells {
			z := (c.cf - mean) / sd
			if math.Abs(z) < opts.minZ() {
				continue
			}
			out = append(out, Exception{
				Attr:       cube.AttrIndices()[0],
				AttrName:   cube.AttrNames()[0],
				Value:      c.v,
				ValueLabel: cube.Dict(0).Label(c.v),
				Class:      cls,
				ClassLabel: cube.ClassDict().Label(cls),
				Confidence: c.cf,
				Expected:   mean,
				ZScore:     z,
				Support:    c.cond,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return math.Abs(out[i].ZScore) > math.Abs(out[j].ZScore)
	})
	return out, nil
}

// Influence measures how strongly an attribute's values modulate the
// class distribution.
type Influence struct {
	Attr     int
	AttrName string
	// ChiSquare is Pearson's statistic of the value × class table; DF
	// its degrees of freedom; PValue the upper-tail p-value.
	ChiSquare float64
	DF        int
	PValue    float64
	// MutualInformation is I(attr; class) in bits.
	MutualInformation float64
}

// InfluentialAttributes ranks every materialized attribute of the store
// by how much it influences the class, using the chi-square statistic of
// its value × class contingency table (ties broken by mutual
// information). This realizes the "important attributes" part of the GI
// miner.
func InfluentialAttributes(store *rulecube.Store) ([]Influence, error) {
	return InfluentialAttributesContext(context.Background(), store)
}

// InfluentialAttributesContext is InfluentialAttributes under a
// context, checked once per attribute.
func InfluentialAttributesContext(ctx context.Context, store *rulecube.Store) ([]Influence, error) {
	return InfluentialAttributesSource(ctx, engine.NewEager(store))
}

// InfluentialAttributesSource is the engine-agnostic form: a lazy
// source materializes each attribute's 1-D cube on first touch.
func InfluentialAttributesSource(ctx context.Context, src engine.CubeSource) ([]Influence, error) {
	var out []Influence
	for _, a := range src.Attrs() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := faultinject.HitContext(ctx, faultinject.SiteGIAttr); err != nil {
			return nil, err
		}
		cube, err := src.Cube1(ctx, a)
		if err != nil {
			return nil, err
		}
		inf, err := influenceOf(cube)
		if err != nil {
			return nil, err
		}
		out = append(out, inf)
	}
	sort.SliceStable(out, func(i, j int) bool {
		switch {
		case out[i].ChiSquare > out[j].ChiSquare:
			return true
		case out[j].ChiSquare > out[i].ChiSquare:
			return false
		}
		return out[i].MutualInformation > out[j].MutualInformation
	})
	return out, nil
}

func influenceOf(cube *rulecube.Cube) (Influence, error) {
	if cube.NumDims() != 1 {
		return Influence{}, fmt.Errorf("gi: influence needs a 2-D rule cube")
	}
	card := cube.Dim(0)
	nc := cube.NumClasses()
	table := make([][]int64, card)
	for v := 0; v < card; v++ {
		table[v] = make([]int64, nc)
		for k := 0; k < nc; k++ {
			n, err := cube.Count([]int32{int32(v)}, int32(k))
			if err != nil {
				return Influence{}, err
			}
			table[v][k] = n
		}
	}
	chi2, df, err := stats.ChiSquare(table)
	if err != nil {
		return Influence{}, err
	}
	return Influence{
		Attr:              cube.AttrIndices()[0],
		AttrName:          cube.AttrNames()[0],
		ChiSquare:         chi2,
		DF:                df,
		PValue:            stats.ChiSquarePValue(chi2, df),
		MutualInformation: mutualInformation(table),
	}, nil
}

// mutualInformation computes I(X;Y) in bits from a contingency table.
func mutualInformation(table [][]int64) float64 {
	var total float64
	rows := make([]float64, len(table))
	var cols []float64
	for i, row := range table {
		if cols == nil {
			cols = make([]float64, len(row))
		}
		for j, n := range row {
			rows[i] += float64(n)
			cols[j] += float64(n)
			total += float64(n)
		}
	}
	if stats.IsZero(total) {
		return 0
	}
	var mi float64
	for i, row := range table {
		for j, n := range row {
			if n == 0 {
				continue
			}
			pxy := float64(n) / total
			px := rows[i] / total
			py := cols[j] / total
			mi += pxy * math.Log2(pxy/(px*py))
		}
	}
	if mi < 0 {
		mi = 0 // guard against floating-point jitter
	}
	return mi
}

// Report bundles all general impressions of a store for one pass.
type Report struct {
	Trends      []Trend
	Exceptions  []Exception
	Influential []Influence
}

// MineAll runs trends, exceptions and influence over every materialized
// 2-D cube in the store.
func MineAll(store *rulecube.Store, topts TrendOptions, eopts ExceptionOptions) (*Report, error) {
	return MineAllContext(context.Background(), store, topts, eopts)
}

// MineAllContext is MineAll under a context, checked once per
// attribute. It is strict: a partial impressions report would silently
// miss trends, so cancellation returns ctx.Err().
func MineAllContext(ctx context.Context, store *rulecube.Store, topts TrendOptions, eopts ExceptionOptions) (*Report, error) {
	return MineAllSource(ctx, engine.NewEager(store), topts, eopts)
}

// MineAllSource is the engine-agnostic form of MineAllContext. Only
// 1-D cubes are touched, so a lazy source serves an impressions report
// without materializing any pair cube.
func MineAllSource(ctx context.Context, src engine.CubeSource, topts TrendOptions, eopts ExceptionOptions) (*Report, error) {
	defer obsv.Stage(obsv.StageGIMine)()
	rep := &Report{}
	for _, a := range src.Attrs() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := faultinject.HitContext(ctx, faultinject.SiteGIAttr); err != nil {
			return nil, err
		}
		cube, err := src.Cube1(ctx, a)
		if err != nil {
			return nil, err
		}
		tr, err := Trends(cube, topts)
		if err != nil {
			return nil, err
		}
		rep.Trends = append(rep.Trends, tr...)
		ex, err := Exceptions(cube, eopts)
		if err != nil {
			return nil, err
		}
		rep.Exceptions = append(rep.Exceptions, ex...)
	}
	inf, err := InfluentialAttributesSource(ctx, src)
	if err != nil {
		return nil, err
	}
	rep.Influential = inf
	sort.SliceStable(rep.Exceptions, func(i, j int) bool {
		return math.Abs(rep.Exceptions[i].ZScore) > math.Abs(rep.Exceptions[j].ZScore)
	})
	return rep, nil
}
