package gi

import (
	"context"
	"errors"
	"testing"

	"opmap/internal/faultinject"
	"opmap/internal/rulecube"
)

func ctxStore(t *testing.T) *rulecube.Store {
	t.Helper()
	store, err := rulecube.BuildStore(trendDataset(t), rulecube.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func TestMineAllContextPreCanceled(t *testing.T) {
	store := ctxStore(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MineAllContext(ctx, store, TrendOptions{}, ExceptionOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("MineAllContext err = %v, want context.Canceled", err)
	}
	if _, err := InfluentialAttributesContext(ctx, store); !errors.Is(err, context.Canceled) {
		t.Fatalf("InfluentialAttributesContext err = %v, want context.Canceled", err)
	}
}

func TestMineAllContextFaultError(t *testing.T) {
	defer faultinject.Reset()
	store := ctxStore(t)
	disarm, err := faultinject.Arm(faultinject.Fault{
		Site: faultinject.SiteGIAttr,
		Kind: faultinject.Error,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	if _, err := MineAllContext(context.Background(), store, TrendOptions{}, ExceptionOptions{}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

// TestMineAllContextUnchanged pins that the wrapper is behaviorally
// identical to the pre-context API.
func TestMineAllContextUnchanged(t *testing.T) {
	store := ctxStore(t)
	plain, err := MineAll(store, TrendOptions{}, ExceptionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := MineAllContext(context.Background(), store, TrendOptions{}, ExceptionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Trends) != len(ctxed.Trends) || len(plain.Exceptions) != len(ctxed.Exceptions) || len(plain.Influential) != len(ctxed.Influential) {
		t.Errorf("reports differ: %d/%d/%d vs %d/%d/%d trends/exceptions/influences",
			len(plain.Trends), len(plain.Exceptions), len(plain.Influential),
			len(ctxed.Trends), len(ctxed.Exceptions), len(ctxed.Influential))
	}
}
