package gi

import (
	"math"
	"testing"

	"opmap/internal/dataset"
	"opmap/internal/rulecube"
)

// trendDataset builds a dataset whose class-1 confidence strictly
// increases across the ordinal attribute "level" and is flat across
// "flat", with a spike on "spiky"'s 3rd value.
func trendDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	b, err := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "level", Kind: dataset.Categorical},
			{Name: "flat", Kind: dataset.Categorical},
			{Name: "spiky", Kind: dataset.Categorical},
			{Name: "class", Kind: dataset.Categorical},
		},
		ClassIndex: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	b.WithDict(0, dataset.DictionaryOf("l0", "l1", "l2", "l3"))
	b.WithDict(1, dataset.DictionaryOf("f0", "f1", "f2"))
	b.WithDict(2, dataset.DictionaryOf("s0", "s1", "s2", "s3", "s4"))
	b.WithDict(3, dataset.DictionaryOf("neg", "pos"))
	codes := make([]int32, 4)
	// level value k has pos-rate 10%·(k+1); flat has 20% everywhere;
	// spiky s2 has 80%, others 10%. We construct exact counts.
	emit := func(level, flat, spiky int32, pos bool, n int) {
		for i := 0; i < n; i++ {
			codes[0], codes[1], codes[2] = level, flat, spiky
			if pos {
				codes[3] = 1
			} else {
				codes[3] = 0
			}
			if err := b.AddCodedRow(codes, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Build level trend exactly: 1000 records per level value.
	for lv := int32(0); lv < 4; lv++ {
		posN := 100 * (int(lv) + 1)
		flat := lv % 3
		spiky := lv % 5
		emit(lv, flat, spiky, true, posN)
		emit(lv, flat, spiky, false, 1000-posN)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func cube1(t *testing.T, ds *dataset.Dataset, attr int) *rulecube.Cube {
	t.Helper()
	c, err := rulecube.Build(ds, []int{attr})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTrendsIncreasing(t *testing.T) {
	ds := trendDataset(t)
	trends, err := Trends(cube1(t, ds, 0), TrendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var found *Trend
	for i := range trends {
		if trends[i].ClassLabel == "pos" {
			found = &trends[i]
		}
	}
	if found == nil {
		t.Fatal("no trend detected for pos class on level")
	}
	if found.Kind != Increasing {
		t.Errorf("kind = %v, want increasing", found.Kind)
	}
	if found.Strength != 1 {
		t.Errorf("strength = %v, want 1 (perfectly monotone)", found.Strength)
	}
	// The complementary class must be decreasing.
	for _, tr := range trends {
		if tr.ClassLabel == "neg" && tr.Kind != Decreasing {
			t.Errorf("neg trend = %v, want decreasing", tr.Kind)
		}
	}
}

func TestTrendsStable(t *testing.T) {
	// Flat confidences → stable trend.
	b, _ := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "a", Kind: dataset.Categorical},
			{Name: "c", Kind: dataset.Categorical},
		},
		ClassIndex: 1,
	})
	b.WithDict(0, dataset.DictionaryOf("x", "y", "z"))
	b.WithDict(1, dataset.DictionaryOf("n", "p"))
	for v := int32(0); v < 3; v++ {
		for i := 0; i < 80; i++ {
			b.AddCodedRow([]int32{v, 0}, nil)
		}
		for i := 0; i < 20; i++ {
			b.AddCodedRow([]int32{v, 1}, nil)
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	trends, err := Trends(cube1(t, ds, 0), TrendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(trends) != 2 {
		t.Fatalf("got %d trends, want 2 (both classes stable)", len(trends))
	}
	for _, tr := range trends {
		if tr.Kind != Stable {
			t.Errorf("kind = %v, want stable", tr.Kind)
		}
	}
}

func TestTrendsRejects3D(t *testing.T) {
	ds := trendDataset(t)
	c, err := rulecube.Build(ds, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Trends(c, TrendOptions{}); err == nil {
		t.Error("3-D cube should be rejected")
	}
}

func TestClassifyMixed(t *testing.T) {
	kind, _ := classify([]float64{0.1, 0.5, 0.2, 0.6, 0.1}, 0.005)
	if kind != NoTrend {
		t.Errorf("zigzag classified as %v", kind)
	}
	kind, strength := classify([]float64{0.1, 0.2, 0.2, 0.3}, 0.005)
	if kind != Increasing {
		t.Errorf("mostly-up = %v, want increasing", kind)
	}
	if strength != 1 {
		t.Errorf("flat steps should count toward monotone strength, got %v", strength)
	}
}

func TestExceptionsFindsSpike(t *testing.T) {
	// 6 values at 10% plus one at 80%.
	b, _ := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "a", Kind: dataset.Categorical},
			{Name: "c", Kind: dataset.Categorical},
		},
		ClassIndex: 1,
	})
	dict := dataset.NewDictionary()
	for i := 0; i < 7; i++ {
		dict.Code(string(rune('a' + i)))
	}
	b.WithDict(0, dict)
	b.WithDict(1, dataset.DictionaryOf("n", "p"))
	for v := int32(0); v < 7; v++ {
		posRate := 0.1
		if v == 3 {
			posRate = 0.8
		}
		pos := int(posRate * 200)
		for i := 0; i < pos; i++ {
			b.AddCodedRow([]int32{v, 1}, nil)
		}
		for i := 0; i < 200-pos; i++ {
			b.AddCodedRow([]int32{v, 0}, nil)
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	exs, err := Exceptions(cube1(t, ds, 0), ExceptionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(exs) == 0 {
		t.Fatal("spike not detected")
	}
	// Both classes flag value "d" (pos spikes up, neg mirrors down); find
	// the pos-class exception and check its direction and magnitude.
	var top *Exception
	for i := range exs {
		if exs[i].ClassLabel == "p" {
			top = &exs[i]
			break
		}
	}
	if top == nil {
		t.Fatal("no exception on the pos class")
	}
	if top.ValueLabel != "d" {
		t.Errorf("pos exception at %q, want %q", top.ValueLabel, "d")
	}
	if top.ZScore < 2 {
		t.Errorf("z = %v, want ≥ 2", top.ZScore)
	}
	if top.Confidence != 0.8 {
		t.Errorf("confidence = %v", top.Confidence)
	}
}

func TestExceptionsMinSupport(t *testing.T) {
	ds := trendDataset(t)
	// Absurd min support filters everything.
	exs, err := Exceptions(cube1(t, ds, 0), ExceptionOptions{MinSupport: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(exs) != 0 {
		t.Error("min support not honored")
	}
}

func TestInfluentialAttributesOrder(t *testing.T) {
	ds := trendDataset(t)
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{SkipPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	infs, err := InfluentialAttributes(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(infs) != 3 {
		t.Fatalf("got %d influences, want 3", len(infs))
	}
	// "level" carries the class signal; "flat"'s signal is a side effect
	// of the deterministic construction but weaker.
	if infs[0].AttrName != "level" {
		t.Errorf("top influence = %q, want level", infs[0].AttrName)
	}
	for i := 1; i < len(infs); i++ {
		if infs[i].ChiSquare > infs[i-1].ChiSquare {
			t.Error("influences not sorted by chi-square")
		}
	}
	if infs[0].PValue > 0.01 {
		t.Errorf("level p-value = %v, want tiny", infs[0].PValue)
	}
	if infs[0].MutualInformation <= 0 {
		t.Error("level MI should be positive")
	}
}

func TestMineAll(t *testing.T) {
	ds := trendDataset(t)
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{SkipPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := MineAll(store, TrendOptions{}, ExceptionOptions{MinSupport: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Influential) != 3 {
		t.Error("influences missing")
	}
	if len(rep.Trends) == 0 {
		t.Error("trends missing")
	}
	// Exceptions sorted by |z|.
	for i := 1; i < len(rep.Exceptions); i++ {
		if math.Abs(rep.Exceptions[i].ZScore) > math.Abs(rep.Exceptions[i-1].ZScore)+1e-12 {
			t.Error("exceptions not sorted")
		}
	}
}

func TestTrendKindString(t *testing.T) {
	for k, want := range map[TrendKind]string{
		NoTrend: "none", Increasing: "increasing", Decreasing: "decreasing", Stable: "stable",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if TrendKind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestTrendsWithin(t *testing.T) {
	// Build a 3-D cube where group g1's pos-rate increases across the
	// ordinal attribute and g0's stays flat.
	b, _ := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "group", Kind: dataset.Categorical},
			{Name: "level", Kind: dataset.Categorical},
			{Name: "class", Kind: dataset.Categorical},
		},
		ClassIndex: 2,
	})
	b.WithDict(0, dataset.DictionaryOf("g0", "g1"))
	b.WithDict(1, dataset.DictionaryOf("l0", "l1", "l2", "l3"))
	b.WithDict(2, dataset.DictionaryOf("neg", "pos"))
	emit := func(g, l int32, posN, total int) {
		for i := 0; i < posN; i++ {
			b.AddCodedRow([]int32{g, l, 1}, nil)
		}
		for i := 0; i < total-posN; i++ {
			b.AddCodedRow([]int32{g, l, 0}, nil)
		}
	}
	for l := int32(0); l < 4; l++ {
		emit(0, l, 100, 1000)            // g0 flat 10%
		emit(1, l, 100*(int(l)+1), 1000) // g1 rising 10..40%
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cube, err := rulecube.Build(ds, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	cts, err := TrendsWithin(cube, TrendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var g0Kind, g1Kind TrendKind
	for _, ct := range cts {
		if ct.Trend.ClassLabel != "pos" {
			continue
		}
		switch ct.FixedLabel {
		case "g0":
			g0Kind = ct.Trend.Kind
		case "g1":
			g1Kind = ct.Trend.Kind
		}
		if ct.FixedName != "group" || ct.Trend.AttrName != "level" {
			t.Errorf("metadata wrong: %+v", ct)
		}
	}
	if g1Kind != Increasing {
		t.Errorf("g1 trend = %v, want increasing", g1Kind)
	}
	if g0Kind != Stable {
		t.Errorf("g0 trend = %v, want stable", g0Kind)
	}
	// 2-D cubes rejected.
	flat, err := rulecube.Build(ds, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrendsWithin(flat, TrendOptions{}); err == nil {
		t.Error("2-D cube should be rejected")
	}
}
