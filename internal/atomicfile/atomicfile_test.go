package atomicfile_test

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"opmap/internal/atomicfile"
	"opmap/internal/faultinject"
)

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return string(b)
}

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := atomicfile.WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "first")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, path); got != "first" {
		t.Fatalf("content = %q, want %q", got, "first")
	}
	if err := atomicfile.WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "second, longer than the first")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, path); got != "second, longer than the first" {
		t.Fatalf("content = %q after replace", got)
	}
}

// TestWriteFileFailureKeepsOldContent is the crash-safety contract: a
// writer that fails partway (full disk, killed process simulated by an
// error after partial output) must leave the previous good file intact
// and no staging files behind.
func TestWriteFileFailureKeepsOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.omap")
	if err := atomicfile.WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "good snapshot")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	err := atomicfile.WriteFile(path, func(w io.Writer) error {
		if _, err := io.WriteString(w, "partial gar"); err != nil {
			return err
		}
		return fmt.Errorf("disk full")
	})
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("want wrapped write error, got %v", err)
	}
	if got := readFile(t, path); got != "good snapshot" {
		t.Fatalf("destination corrupted: %q", got)
	}
	assertNoTemps(t, dir)
}

// TestWriteFileCrashSimulation drives the two injected crash windows:
// before any data is staged and after staging but before the rename.
// In both, the previously written destination must survive unchanged.
func TestWriteFileCrashSimulation(t *testing.T) {
	for _, site := range []string{faultinject.SiteAtomicWriteData, faultinject.SiteAtomicWriteRename} {
		t.Run(site, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "snap.bin")
			if err := atomicfile.WriteFile(path, func(w io.Writer) error {
				_, err := io.WriteString(w, "pre-crash")
				return err
			}); err != nil {
				t.Fatal(err)
			}
			disarm, err := faultinject.Arm(faultinject.Fault{Site: site, Kind: faultinject.Error})
			if err != nil {
				t.Fatal(err)
			}
			defer disarm()
			err = atomicfile.WriteFile(path, func(w io.Writer) error {
				_, err := io.WriteString(w, "post-crash")
				return err
			})
			if err == nil {
				t.Fatal("injected crash did not surface as an error")
			}
			if got := readFile(t, path); got != "pre-crash" {
				t.Fatalf("crash at %s corrupted destination: %q", site, got)
			}
			assertNoTemps(t, dir)
		})
	}
}

// TestCleanupTemps removes exactly the staging orphans a kill -9
// between CreateTemp and rename would leave, and nothing else.
func TestCleanupTemps(t *testing.T) {
	dir := t.TempDir()
	// Simulate the post-kill state: an orphaned staging file with
	// partial content next to a good destination file.
	orphan := filepath.Join(dir, ".atomictmp-12345")
	if err := os.WriteFile(orphan, []byte("trunca"), 0o600); err != nil {
		t.Fatal(err)
	}
	keep := filepath.Join(dir, "snap.bin")
	if err := os.WriteFile(keep, []byte("good"), 0o600); err != nil {
		t.Fatal(err)
	}
	n, err := atomicfile.CleanupTemps(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("removed %d temps, want 1", n)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan still present: %v", err)
	}
	if got := readFile(t, keep); got != "good" {
		t.Fatalf("cleanup touched a real file: %q", got)
	}
}

func assertNoTemps(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".atomictmp-") {
			t.Fatalf("staging file leaked: %s", e.Name())
		}
	}
}
