// Package atomicfile is the project's single durable-write path: every
// file the system persists (cube stores, session snapshots, CSV/ARFF
// exports) goes through WriteFile, which stages the bytes in a
// temporary file in the destination directory, fsyncs the data, renames
// it over the destination, and fsyncs the directory. A crash — process
// kill, full disk, power loss — at any point leaves either the old file
// or the new file at the destination, never a truncated hybrid. The
// previous direct-os.Create writers could be killed mid-write and leave
// a corrupt artifact exactly where the next startup looks for a good
// one; the deployed Opportunity Map regenerates cubes overnight
// (Section V.C of the paper), so a clobbered store file means analysts
// lose the serving day, which is the failure mode this package closes.
package atomicfile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"opmap/internal/faultinject"
)

// tempPattern is the CreateTemp pattern for staging files. The prefix
// is dot-hidden and distinctive so CleanupTemps can identify orphans
// left behind by a crash without ever touching user files.
const tempPattern = ".atomictmp-*"

// WriteFile atomically replaces path with the bytes produced by write.
// The data is staged in a temporary file in path's directory (rename is
// only atomic within one filesystem), synced to stable storage, renamed
// over path, and the directory entry is synced too. On any error the
// destination is untouched and the temporary file is removed.
func WriteFile(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, tempPattern)
	if err != nil {
		return fmt.Errorf("atomicfile: staging in %s: %w", dir, err)
	}
	tmp := f.Name()
	// Any failure from here on must not leave the staging file behind.
	fail := func(step string, err error) error {
		// The close error is secondary: the original failure is what the
		// caller needs, and the staging file is removed either way.
		_ = f.Close()
		os.Remove(tmp)
		return fmt.Errorf("atomicfile: %s for %s: %w", step, path, err)
	}
	if err := faultinject.Hit(faultinject.SiteAtomicWriteData); err != nil {
		return fail("writing data", err)
	}
	if err := write(f); err != nil {
		return fail("writing data", err)
	}
	if err := f.Sync(); err != nil {
		return fail("syncing data", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicfile: closing staging file for %s: %w", path, err)
	}
	if err := faultinject.Hit(faultinject.SiteAtomicWriteRename); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicfile: renaming onto %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicfile: renaming onto %s: %w", path, err)
	}
	// Sync the directory so the rename itself survives a crash. Some
	// platforms cannot fsync a directory; treat that as best-effort the
	// way the standard library's os.Rename callers do.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// CleanupTemps removes staging files orphaned in dir by a crash between
// CreateTemp and rename. It returns how many were removed. Only files
// matching this package's staging pattern are considered; everything
// else in the directory is left alone.
func CleanupTemps(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	prefix := strings.TrimSuffix(tempPattern, "*")
	removed := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), prefix) {
			continue
		}
		if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
			return removed, err
		}
		removed++
	}
	return removed, nil
}
