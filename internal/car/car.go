// Package car implements class association rule (CAR) mining: rules of
// the form X -> y where X is a set of attribute=value conditions over
// distinct attributes and y is a class label (Section III.A of the
// paper, following Liu et al.'s CBA rule generator). Unlike a
// classification learner, the miner enumerates *all* rules meeting the
// support and confidence thresholds — the completeness property the
// paper argues is essential for diagnostic mining.
package car

import (
	"fmt"
	"sort"
	"strings"

	"opmap/internal/dataset"
)

// Condition is a single attribute=value test.
type Condition struct {
	Attr  int   // attribute index in the dataset schema
	Value int32 // dictionary code of the value
}

// Rule is a class association rule X -> class with its statistics.
type Rule struct {
	Conditions []Condition // sorted by attribute index; distinct attributes
	Class      int32       // class code
	SupCount   int64       // records matching conditions AND class
	CondCount  int64       // records matching conditions
	Total      int64       // dataset size when mined
}

// Support returns the rule's relative support sup(X, y)/|D|.
func (r Rule) Support() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.SupCount) / float64(r.Total)
}

// Confidence returns Pr(y | X) = sup(X, y)/sup(X).
func (r Rule) Confidence() float64 {
	if r.CondCount == 0 {
		return 0
	}
	return float64(r.SupCount) / float64(r.CondCount)
}

// String renders the rule with attribute and value labels from ds.
func (r Rule) String() string { return r.Format(nil) }

// Format renders the rule; with a non-nil dataset the attribute and
// value names are resolved, otherwise indices are printed.
func (r Rule) Format(ds *dataset.Dataset) string {
	var sb strings.Builder
	for i, c := range r.Conditions {
		if i > 0 {
			sb.WriteString(", ")
		}
		if ds != nil {
			fmt.Fprintf(&sb, "%s=%s", ds.Attr(c.Attr).Name, ds.Column(c.Attr).Dict.Label(c.Value))
		} else {
			fmt.Fprintf(&sb, "A%d=%d", c.Attr, c.Value)
		}
	}
	if len(r.Conditions) == 0 {
		sb.WriteString("true")
	}
	if ds != nil {
		fmt.Fprintf(&sb, " -> %s", ds.ClassDict().Label(r.Class))
	} else {
		fmt.Fprintf(&sb, " -> class %d", r.Class)
	}
	fmt.Fprintf(&sb, " [sup=%.4f conf=%.4f]", r.Support(), r.Confidence())
	return sb.String()
}

// Options configures mining.
type Options struct {
	// MinSupport is the minimum relative support in [0,1]. The rule-cube
	// pipeline mines with 0 to avoid holes in the knowledge space.
	MinSupport float64
	// MinConfidence is the minimum confidence in [0,1].
	MinConfidence float64
	// MaxConditions caps rule length. The deployed system stores
	// two-condition rules (all 3-D rule cubes); zero means 2.
	MaxConditions int
	// Fixed pins conditions that every mined rule must contain
	// ("restricted mining" for longer rules, Section III.B). The
	// attributes in Fixed do not count against MaxConditions.
	Fixed []Condition
	// Attrs restricts the candidate attributes (class excluded
	// automatically). Nil means all non-class attributes.
	Attrs []int
}

// RuleSet is the result of a mining run.
type RuleSet struct {
	Rules []Rule
	Total int64 // records mined over
}

// Len returns the number of rules.
func (rs *RuleSet) Len() int { return len(rs.Rules) }

// SortByConfidence orders rules by descending confidence, breaking ties
// by descending support then ascending condition count — the CBA
// precedence order.
func (rs *RuleSet) SortByConfidence() {
	sort.SliceStable(rs.Rules, func(i, j int) bool {
		a, b := rs.Rules[i], rs.Rules[j]
		switch {
		case a.Confidence() > b.Confidence():
			return true
		case b.Confidence() > a.Confidence():
			return false
		}
		if a.SupCount != b.SupCount {
			return a.SupCount > b.SupCount
		}
		return len(a.Conditions) < len(b.Conditions)
	})
}

// FilterClass returns the subset of rules predicting the given class.
func (rs *RuleSet) FilterClass(class int32) *RuleSet {
	out := &RuleSet{Total: rs.Total}
	for _, r := range rs.Rules {
		if r.Class == class {
			out.Rules = append(out.Rules, r)
		}
	}
	return out
}

// Mine enumerates class association rules of ds under the options using
// level-wise (Apriori-style) candidate generation over condition sets,
// with class-conditional counting. ds must be fully categorical.
func Mine(ds *dataset.Dataset, opts Options) (*RuleSet, error) {
	if !ds.AllCategorical() {
		return nil, fmt.Errorf("car: dataset has continuous attributes; discretize first")
	}
	if opts.MinSupport < 0 || opts.MinSupport > 1 {
		return nil, fmt.Errorf("car: MinSupport %v out of [0,1]", opts.MinSupport)
	}
	if opts.MinConfidence < 0 || opts.MinConfidence > 1 {
		return nil, fmt.Errorf("car: MinConfidence %v out of [0,1]", opts.MinConfidence)
	}
	maxLen := opts.MaxConditions
	if maxLen == 0 {
		maxLen = 2
	}

	classIdx := ds.ClassIndex()
	numClasses := ds.NumClasses()
	total := int64(ds.NumRows())
	minCount := int64(opts.MinSupport * float64(total))

	// Restrict to the fixed-condition sub-population first.
	work := ds
	if len(opts.Fixed) > 0 {
		for _, f := range opts.Fixed {
			if f.Attr == classIdx {
				return nil, fmt.Errorf("car: fixed condition on class attribute")
			}
		}
		work = ds.Filter(func(r int) bool {
			for _, f := range opts.Fixed {
				if ds.CatCode(r, f.Attr) != f.Value {
					return false
				}
			}
			return true
		})
	}

	candidateAttrs := opts.Attrs
	if candidateAttrs == nil {
		for a := 0; a < ds.NumAttrs(); a++ {
			if a != classIdx {
				candidateAttrs = append(candidateAttrs, a)
			}
		}
	} else {
		for _, a := range candidateAttrs {
			if a < 0 || a >= ds.NumAttrs() {
				return nil, fmt.Errorf("car: attribute index %d out of range", a)
			}
			if a == classIdx {
				return nil, fmt.Errorf("car: class attribute cannot be a rule condition")
			}
		}
	}
	fixedAttrs := make(map[int]bool, len(opts.Fixed))
	for _, f := range opts.Fixed {
		fixedAttrs[f.Attr] = true
	}
	var attrs []int
	for _, a := range candidateAttrs {
		if !fixedAttrs[a] {
			attrs = append(attrs, a)
		}
	}
	sort.Ints(attrs)

	rs := &RuleSet{Total: total}
	// Level-wise frontier of condition sets that remain frequent.
	type node struct {
		conds []Condition
		rows  []int32 // row indices within work matching conds; nil at level 0 meaning "all"
	}
	frontier := []node{{}}
	for level := 1; level <= maxLen; level++ {
		var next []node
		for _, nd := range frontier {
			lastAttr := -1
			if len(nd.conds) > 0 {
				lastAttr = nd.conds[len(nd.conds)-1].Attr
			}
			for _, a := range attrs {
				if a <= lastAttr {
					continue // enforce sorted attribute order to avoid duplicates
				}
				card := work.Cardinality(a)
				// Partition the node's rows by attribute a's value and class.
				counts := make([]int64, card)                 // per value
				classCounts := make([]int64, card*numClasses) // per (value, class)
				iterate(work, nd.rows, func(r int32) {
					code := work.CatCode(int(r), a)
					if code < 0 {
						return
					}
					counts[code]++
					cc := work.ClassCode(int(r))
					if cc >= 0 {
						classCounts[int(code)*numClasses+int(cc)]++
					}
				})
				for v := int32(0); int(v) < card; v++ {
					condCount := counts[v]
					if condCount < minCount || condCount == 0 {
						continue
					}
					conds := append(append([]Condition{}, nd.conds...), Condition{Attr: a, Value: v})
					// Emit a rule per class meeting the thresholds.
					for c := 0; c < numClasses; c++ {
						supCount := classCounts[int(v)*numClasses+c]
						if supCount < minCount {
							continue
						}
						conf := float64(supCount) / float64(condCount)
						if conf < opts.MinConfidence {
							continue
						}
						full := append(append([]Condition{}, opts.Fixed...), conds...)
						sortConds(full)
						rs.Rules = append(rs.Rules, Rule{
							Conditions: full,
							Class:      int32(c),
							SupCount:   supCount,
							CondCount:  condCount,
							Total:      total,
						})
					}
					if level < maxLen {
						rows := collect(work, nd.rows, a, v)
						next = append(next, node{conds: conds, rows: rows})
					}
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	return rs, nil
}

// iterate calls f for each row in rows, or for every row when rows is
// nil (the level-0 "all rows" sentinel).
func iterate(ds *dataset.Dataset, rows []int32, f func(int32)) {
	if rows == nil {
		for r := 0; r < ds.NumRows(); r++ {
			f(int32(r))
		}
		return
	}
	for _, r := range rows {
		f(r)
	}
}

func collect(ds *dataset.Dataset, rows []int32, attr int, value int32) []int32 {
	var out []int32
	iterate(ds, rows, func(r int32) {
		if ds.CatCode(int(r), attr) == value {
			out = append(out, r)
		}
	})
	if out == nil {
		out = []int32{}
	}
	return out
}

func sortConds(conds []Condition) {
	sort.Slice(conds, func(i, j int) bool { return conds[i].Attr < conds[j].Attr })
}

// OneConditionRule counts and returns the single rule Attr=Value ->
// Class over ds, regardless of thresholds. It is the primitive the
// comparator uses for its two input rules.
func OneConditionRule(ds *dataset.Dataset, attr int, value, class int32) (Rule, error) {
	if attr < 0 || attr >= ds.NumAttrs() || attr == ds.ClassIndex() {
		return Rule{}, fmt.Errorf("car: invalid condition attribute %d", attr)
	}
	var condCount, supCount int64
	for r := 0; r < ds.NumRows(); r++ {
		if ds.CatCode(r, attr) != value {
			continue
		}
		condCount++
		if ds.ClassCode(r) == class {
			supCount++
		}
	}
	return Rule{
		Conditions: []Condition{{Attr: attr, Value: value}},
		Class:      class,
		SupCount:   supCount,
		CondCount:  condCount,
		Total:      int64(ds.NumRows()),
	}, nil
}
