package car

import (
	"fmt"
	"math/rand"
	"testing"

	"opmap/internal/dataset"
)

// Differential test: every mined rule's counts against a brute-force
// recount over random data, and completeness — every condition set with
// enough support must appear.

func randomCatDataset(t *testing.T, seed int64, rows, attrs, card, classes int) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	schema := dataset.Schema{ClassIndex: attrs}
	for i := 0; i < attrs; i++ {
		schema.Attrs = append(schema.Attrs, dataset.Attribute{Name: fmt.Sprintf("a%d", i), Kind: dataset.Categorical})
	}
	schema.Attrs = append(schema.Attrs, dataset.Attribute{Name: "class", Kind: dataset.Categorical})
	b, err := dataset.NewBuilder(schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < attrs; i++ {
		d := dataset.NewDictionary()
		for v := 0; v < card; v++ {
			d.Code(fmt.Sprintf("v%d", v))
		}
		b.WithDict(i, d)
	}
	cd := dataset.NewDictionary()
	for c := 0; c < classes; c++ {
		cd.Code(fmt.Sprintf("c%d", c))
	}
	b.WithDict(attrs, cd)
	codes := make([]int32, attrs+1)
	for r := 0; r < rows; r++ {
		for i := 0; i < attrs; i++ {
			codes[i] = int32(rng.Intn(card))
		}
		codes[attrs] = int32(rng.Intn(classes))
		if err := b.AddCodedRow(codes, nil); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func bruteCount(ds *dataset.Dataset, conds []Condition, class int32) (cond, sup int64) {
rows:
	for r := 0; r < ds.NumRows(); r++ {
		for _, c := range conds {
			if ds.CatCode(r, c.Attr) != c.Value {
				continue rows
			}
		}
		cond++
		if ds.ClassCode(r) == class {
			sup++
		}
	}
	return
}

func TestMineCountsMatchBruteForce(t *testing.T) {
	ds := randomCatDataset(t, 3, 2000, 4, 3, 2)
	rs, err := Mine(ds, Options{MaxConditions: 2, MinSupport: 0.01, MinConfidence: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() == 0 {
		t.Fatal("nothing mined")
	}
	for _, r := range rs.Rules {
		cond, sup := bruteCount(ds, r.Conditions, r.Class)
		if cond != r.CondCount || sup != r.SupCount {
			t.Fatalf("rule %s: mined (%d,%d), brute force (%d,%d)",
				r.Format(ds), r.CondCount, r.SupCount, cond, sup)
		}
	}
}

func TestMineCompleteness(t *testing.T) {
	// Every 2-condition set meeting the thresholds must be present.
	ds := randomCatDataset(t, 5, 1500, 3, 3, 2)
	minSup := 0.02
	minConf := 0.3
	rs, err := Mine(ds, Options{MaxConditions: 2, MinSupport: minSup, MinConfidence: minConf})
	if err != nil {
		t.Fatal(err)
	}
	mined := make(map[string]bool, rs.Len())
	for _, r := range rs.Rules {
		mined[r.Format(ds)] = true
	}
	total := int64(ds.NumRows())
	minCount := int64(minSup * float64(total))
	for a := 0; a < 2; a++ {
		for b := a + 1; b < 3; b++ {
			for va := int32(0); va < 3; va++ {
				for vb := int32(0); vb < 3; vb++ {
					conds := []Condition{{Attr: a, Value: va}, {Attr: b, Value: vb}}
					for cls := int32(0); cls < 2; cls++ {
						cond, sup := bruteCount(ds, conds, cls)
						if sup < minCount || cond == 0 {
							continue
						}
						if float64(sup)/float64(cond) < minConf {
							continue
						}
						r := Rule{Conditions: conds, Class: cls, SupCount: sup, CondCount: cond, Total: total}
						if !mined[r.Format(ds)] {
							t.Fatalf("qualifying rule missing from mined set: %s", r.Format(ds))
						}
					}
				}
			}
		}
	}
}
