package car

import (
	"math"
	"strings"
	"testing"

	"opmap/internal/dataset"
)

// paperFig1Dataset reproduces the Fig. 1 rule-cube example: attributes
// A1 ∈ {a,b,c,d}, A2 ∈ {e,f,g}, class ∈ {yes,no}, 1158 records, with the
// cell (A1=a, A2=e, yes) holding 100 records and (A1=a, A2=e, no) 50.
func paperFig1Dataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	b, err := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "A1", Kind: dataset.Categorical},
			{Name: "A2", Kind: dataset.Categorical},
			{Name: "C", Kind: dataset.Categorical},
		},
		ClassIndex: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	b.WithDict(0, dataset.DictionaryOf("a", "b", "c", "d"))
	b.WithDict(1, dataset.DictionaryOf("e", "f", "g"))
	b.WithDict(2, dataset.DictionaryOf("yes", "no"))
	add := func(a1, a2, c string, n int) {
		for i := 0; i < n; i++ {
			if err := b.AddRow([]string{a1, a2, c}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Fig. 1's highlighted cells plus filler to reach 1158 records.
	add("a", "e", "yes", 100)
	add("a", "e", "no", 50)
	add("a", "g", "yes", 8) // A1=a, A2=f, yes has support 0 per the paper
	add("b", "e", "yes", 200)
	add("b", "f", "no", 150)
	add("c", "f", "yes", 150)
	add("c", "g", "no", 200)
	add("d", "g", "yes", 150)
	add("d", "e", "no", 150)
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != 1158 {
		t.Fatalf("fixture has %d rows, want 1158", ds.NumRows())
	}
	return ds
}

func find(rs *RuleSet, ds *dataset.Dataset, spec string) (Rule, bool) {
	for _, r := range rs.Rules {
		if strings.HasPrefix(r.Format(ds), spec) {
			return r, true
		}
	}
	return Rule{}, false
}

func TestMineReproducesPaperExample(t *testing.T) {
	ds := paperFig1Dataset(t)
	rs, err := Mine(ds, Options{MaxConditions: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Rule A1=a, A2=e -> yes: support 100/1158, confidence 100/150.
	r, ok := find(rs, ds, "A1=a, A2=e -> yes")
	if !ok {
		t.Fatal("paper's example rule not mined")
	}
	if r.SupCount != 100 || r.CondCount != 150 {
		t.Errorf("counts = %d/%d, want 100/150", r.SupCount, r.CondCount)
	}
	if math.Abs(r.Support()-100.0/1158) > 1e-12 {
		t.Errorf("support = %v, want %v", r.Support(), 100.0/1158)
	}
	if math.Abs(r.Confidence()-100.0/150) > 1e-12 {
		t.Errorf("confidence = %v, want %v", r.Confidence(), 100.0/150)
	}
}

func TestMineZeroThresholdCoversAllObservedCells(t *testing.T) {
	ds := paperFig1Dataset(t)
	rs, err := Mine(ds, Options{MaxConditions: 2})
	if err != nil {
		t.Fatal(err)
	}
	// With thresholds 0, every observed (A1,A2) pair appears with every
	// class that occurs in it; single-condition rules too.
	var oneCond, twoCond int
	for _, r := range rs.Rules {
		switch len(r.Conditions) {
		case 1:
			oneCond++
		case 2:
			twoCond++
		default:
			t.Fatalf("rule with %d conditions beyond MaxConditions", len(r.Conditions))
		}
	}
	if oneCond == 0 || twoCond == 0 {
		t.Fatalf("rule lengths missing: one=%d two=%d", oneCond, twoCond)
	}
	// A rule that truly has zero condition count must not appear (its
	// cell is a hole, represented in cubes, not in the mined set).
	if _, ok := find(rs, ds, "A1=a, A2=f ->"); ok {
		t.Error("zero-support condition set should not yield rules")
	}
}

func TestMineThresholds(t *testing.T) {
	ds := paperFig1Dataset(t)
	rs, err := Mine(ds, Options{MinSupport: 0.1, MinConfidence: 0.6, MaxConditions: 2})
	if err != nil {
		t.Fatal(err)
	}
	minSup := 0.1
	minCount := int64(minSup * 1158)
	for _, r := range rs.Rules {
		if r.SupCount < minCount {
			t.Errorf("rule %s below min support", r.Format(ds))
		}
		if r.Confidence() < 0.6 {
			t.Errorf("rule %s below min confidence", r.Format(ds))
		}
	}
	if rs.Len() == 0 {
		t.Error("thresholded mining found nothing")
	}
}

func TestMineRestricted(t *testing.T) {
	ds := paperFig1Dataset(t)
	fixed := []Condition{{Attr: 0, Value: 0}} // A1=a
	rs, err := Mine(ds, Options{MaxConditions: 1, Fixed: fixed})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() == 0 {
		t.Fatal("restricted mining found nothing")
	}
	for _, r := range rs.Rules {
		hasFixed := false
		for _, c := range r.Conditions {
			if c.Attr == 0 && c.Value == 0 {
				hasFixed = true
			}
		}
		if !hasFixed {
			t.Errorf("rule %s lacks the fixed condition", r.Format(ds))
		}
	}
	// Counts are measured in the restricted sub-population: confidence
	// of A1=a, A2=e -> yes is still 100/150.
	r, ok := find(rs, ds, "A1=a, A2=e -> yes")
	if !ok {
		t.Fatal("restricted rule missing")
	}
	if r.SupCount != 100 || r.CondCount != 150 {
		t.Errorf("restricted counts %d/%d, want 100/150", r.SupCount, r.CondCount)
	}
}

func TestMineAttrSubset(t *testing.T) {
	ds := paperFig1Dataset(t)
	rs, err := Mine(ds, Options{MaxConditions: 2, Attrs: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs.Rules {
		for _, c := range r.Conditions {
			if c.Attr != 1 {
				t.Fatalf("rule uses attribute %d outside the subset", c.Attr)
			}
		}
	}
}

func TestMineValidation(t *testing.T) {
	ds := paperFig1Dataset(t)
	if _, err := Mine(ds, Options{MinSupport: -1}); err == nil {
		t.Error("negative support should fail")
	}
	if _, err := Mine(ds, Options{MinConfidence: 2}); err == nil {
		t.Error("confidence > 1 should fail")
	}
	if _, err := Mine(ds, Options{Fixed: []Condition{{Attr: 2, Value: 0}}}); err == nil {
		t.Error("fixed condition on class should fail")
	}
	if _, err := Mine(ds, Options{Attrs: []int{2}}); err == nil {
		t.Error("class attribute in Attrs should fail")
	}
	if _, err := Mine(ds, Options{Attrs: []int{99}}); err == nil {
		t.Error("out-of-range attribute should fail")
	}
}

func TestMineRejectsContinuous(t *testing.T) {
	b, _ := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "x", Kind: dataset.Continuous},
			{Name: "c", Kind: dataset.Categorical},
		},
		ClassIndex: 1,
	})
	b.AddRow([]string{"1.0", "yes"})
	ds, _ := b.Build()
	if _, err := Mine(ds, Options{}); err == nil {
		t.Error("continuous dataset should be rejected")
	}
}

func TestMineThreeConditionRules(t *testing.T) {
	// Add a third attribute and mine length-3 rules.
	b, _ := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "A1", Kind: dataset.Categorical},
			{Name: "A2", Kind: dataset.Categorical},
			{Name: "A3", Kind: dataset.Categorical},
			{Name: "C", Kind: dataset.Categorical},
		},
		ClassIndex: 3,
	})
	rows := [][]string{
		{"x", "p", "m", "yes"},
		{"x", "p", "m", "yes"},
		{"x", "p", "n", "no"},
		{"y", "q", "m", "no"},
		{"y", "q", "n", "no"},
	}
	for _, r := range rows {
		if err := b.AddRow(r); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Mine(ds, Options{MaxConditions: 3})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := find(rs, ds, "A1=x, A2=p, A3=m -> yes")
	if !ok {
		t.Fatal("3-condition rule not mined")
	}
	if r.SupCount != 2 || r.CondCount != 2 {
		t.Errorf("counts %d/%d, want 2/2", r.SupCount, r.CondCount)
	}
}

func TestMineNoDuplicateRules(t *testing.T) {
	ds := paperFig1Dataset(t)
	rs, err := Mine(ds, Options{MaxConditions: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, r := range rs.Rules {
		key := r.Format(ds)
		if seen[key] {
			t.Fatalf("duplicate rule %s", key)
		}
		seen[key] = true
	}
}

func TestSortByConfidence(t *testing.T) {
	ds := paperFig1Dataset(t)
	rs, err := Mine(ds, Options{MaxConditions: 2})
	if err != nil {
		t.Fatal(err)
	}
	rs.SortByConfidence()
	for i := 1; i < rs.Len(); i++ {
		if rs.Rules[i].Confidence() > rs.Rules[i-1].Confidence()+1e-12 {
			t.Fatalf("rules not sorted at %d", i)
		}
	}
}

func TestFilterClass(t *testing.T) {
	ds := paperFig1Dataset(t)
	rs, err := Mine(ds, Options{MaxConditions: 1})
	if err != nil {
		t.Fatal(err)
	}
	yes := rs.FilterClass(0)
	if yes.Len() == 0 {
		t.Fatal("no yes-rules")
	}
	for _, r := range yes.Rules {
		if r.Class != 0 {
			t.Fatal("FilterClass leaked another class")
		}
	}
}

func TestOneConditionRule(t *testing.T) {
	ds := paperFig1Dataset(t)
	r, err := OneConditionRule(ds, 0, 0, 0) // A1=a -> yes
	if err != nil {
		t.Fatal(err)
	}
	// A1=a: 100+50+8 = 158 records; yes: 100+8 = 108.
	if r.CondCount != 158 || r.SupCount != 108 {
		t.Errorf("counts %d/%d, want 158/108", r.CondCount, r.SupCount)
	}
	if _, err := OneConditionRule(ds, 2, 0, 0); err == nil {
		t.Error("class attribute as condition should fail")
	}
	if _, err := OneConditionRule(ds, -1, 0, 0); err == nil {
		t.Error("negative attribute should fail")
	}
}

func TestRuleFormatWithoutDataset(t *testing.T) {
	r := Rule{
		Conditions: []Condition{{Attr: 3, Value: 2}},
		Class:      1,
		SupCount:   5,
		CondCount:  10,
		Total:      100,
	}
	s := r.String()
	if !strings.Contains(s, "A3=2") || !strings.Contains(s, "class 1") {
		t.Errorf("format = %q", s)
	}
	empty := Rule{Total: 10}
	if !strings.Contains(empty.String(), "true") {
		t.Error("empty-condition rule should render as 'true -> ...'")
	}
}
