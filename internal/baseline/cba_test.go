package baseline

import (
	"testing"

	"opmap/internal/dataset"
)

func TestCBAOnSeparableData(t *testing.T) {
	b, _ := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "x", Kind: dataset.Categorical},
			{Name: "c", Kind: dataset.Categorical},
		},
		ClassIndex: 1,
	})
	for i := 0; i < 200; i++ {
		v, c := "a", "neg"
		if i%2 == 0 {
			v, c = "b", "pos"
		}
		b.AddRow([]string{v, c})
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cls, err := BuildCBA(ds, CBAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := cls.Accuracy(ds); acc != 1 {
		t.Errorf("separable accuracy = %v, want 1", acc)
	}
	if len(cls.Rules) == 0 {
		t.Fatal("no rules kept")
	}
	// Both 100%-confidence one-condition rules suffice.
	if len(cls.Rules) > 2 {
		t.Errorf("kept %d rules, want ≤ 2", len(cls.Rules))
	}
}

func TestCBAOnCallLog(t *testing.T) {
	ds := callLog(t, 30000)
	cls, err := BuildCBA(ds, CBAOptions{MinSupport: 0.005, MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	acc := cls.Accuracy(ds)
	// Majority class is ~96%; CBA must not be worse than the default
	// classifier.
	dist := ds.ClassDistribution()
	var max, total int64
	for _, n := range dist {
		total += n
		if n > max {
			max = n
		}
	}
	baseline := float64(max) / float64(total)
	if acc < baseline-1e-9 {
		t.Errorf("CBA accuracy %.4f below default-class baseline %.4f", acc, baseline)
	}
	// Prediction-side completeness: only a small slice of the candidate
	// rules survives.
	if cls.TotalCandidates > 0 && cls.UsageRatio() > 0.5 {
		t.Errorf("CBA kept %.1f%% of candidate rules; expected heavy pruning", 100*cls.UsageRatio())
	}
}

func TestCBADefaultClassFallback(t *testing.T) {
	// Every record covered by rules → default falls back to the global
	// majority without crashing.
	b, _ := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "x", Kind: dataset.Categorical},
			{Name: "c", Kind: dataset.Categorical},
		},
		ClassIndex: 1,
	})
	for i := 0; i < 50; i++ {
		b.AddRow([]string{"only", "yes"})
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cls, err := BuildCBA(ds, CBAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.ClassDict().Label(cls.DefaultClass); got != "yes" {
		t.Errorf("default class = %q", got)
	}
	if cls.Accuracy(ds) != 1 {
		t.Error("trivial data should be classified perfectly")
	}
}

func TestCBARejectsContinuous(t *testing.T) {
	b, _ := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "x", Kind: dataset.Continuous},
			{Name: "c", Kind: dataset.Categorical},
		},
		ClassIndex: 1,
	})
	b.AddRow([]string{"1", "y"})
	ds, _ := b.Build()
	if _, err := BuildCBA(ds, CBAOptions{}); err == nil {
		t.Error("continuous dataset should be rejected")
	}
}

func TestCBARuleOrderIsPrecedence(t *testing.T) {
	ds := callLog(t, 20000)
	cls, err := BuildCBA(ds, CBAOptions{MinSupport: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(cls.Rules); i++ {
		a, b := cls.Rules[i-1], cls.Rules[i]
		if b.Confidence() > a.Confidence()+1e-12 {
			t.Fatal("rule list violates confidence precedence")
		}
	}
}
