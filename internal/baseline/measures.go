// Package baseline implements the approaches the paper positions itself
// against (Section II): classical rule-ranking interestingness measures,
// decision-tree rule induction (to demonstrate the completeness problem
// of Section III.A), and discovery-driven exception mining from data
// cubes in the style of Sarawagi et al. These baselines let the
// evaluation show *why* attribute-level comparison is needed, not just
// that it works.
package baseline

import (
	"fmt"
	"math"
	"sort"

	"opmap/internal/car"
	"opmap/internal/dataset"
	"opmap/internal/stats"
)

// Measure identifies a classical objective interestingness measure for a
// rule X -> y.
type Measure uint8

// Supported measures. All are computed from the contingency counts
// n(X,y), n(X), n(y), N.
const (
	Confidence Measure = iota
	Support
	Lift
	Leverage
	Conviction
	ChiSquared
	Laplace
	Cosine
	Jaccard
	Certainty
	AddedValue
)

var measureNames = map[Measure]string{
	Confidence: "confidence",
	Support:    "support",
	Lift:       "lift",
	Leverage:   "leverage",
	Conviction: "conviction",
	ChiSquared: "chi-squared",
	Laplace:    "laplace",
	Cosine:     "cosine",
	Jaccard:    "jaccard",
	Certainty:  "certainty",
	AddedValue: "added-value",
}

// String implements fmt.Stringer.
func (m Measure) String() string {
	if n, ok := measureNames[m]; ok {
		return n
	}
	return fmt.Sprintf("Measure(%d)", uint8(m))
}

// AllMeasures lists every supported measure.
func AllMeasures() []Measure {
	out := make([]Measure, 0, len(measureNames))
	for m := range measureNames {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Evaluate computes the measure for a rule given the class marginal
// counts of the dataset it was mined from. classCount is n(y), the
// number of records in the rule's class; total is N.
func Evaluate(m Measure, r car.Rule, classCount int64) (float64, error) {
	n := float64(r.Total)
	nx := float64(r.CondCount)
	ny := float64(classCount)
	nxy := float64(r.SupCount)
	if n <= 0 {
		return 0, fmt.Errorf("baseline: rule has zero total")
	}
	if nxy > nx || nxy > ny || nx > n || ny > n {
		return 0, fmt.Errorf("baseline: inconsistent counts nxy=%v nx=%v ny=%v n=%v", nxy, nx, ny, n)
	}
	px := nx / n
	py := ny / n
	pxy := nxy / n
	var conf float64
	if nx > 0 {
		conf = nxy / nx
	}
	switch m {
	case Confidence:
		return conf, nil
	case Support:
		return pxy, nil
	case Lift:
		if stats.IsZero(px) || stats.IsZero(py) {
			return 0, nil
		}
		return pxy / (px * py), nil
	case Leverage:
		return pxy - px*py, nil
	case Conviction:
		if stats.IsZero(1 - conf) {
			return math.Inf(1), nil
		}
		return (1 - py) / (1 - conf), nil
	case ChiSquared:
		// 2×2 chi-square of X vs y membership.
		e := func(a, b float64) float64 { return a * b / n }
		cells := [4][2]float64{
			{nxy, e(nx, ny)},
			{nx - nxy, e(nx, n-ny)},
			{ny - nxy, e(n-nx, ny)},
			{n - nx - ny + nxy, e(n-nx, n-ny)},
		}
		var chi2 float64
		for _, c := range cells {
			if stats.IsZero(c[1]) {
				continue
			}
			d := c[0] - c[1]
			chi2 += d * d / c[1]
		}
		return chi2, nil
	case Laplace:
		return (nxy + 1) / (nx + 2), nil
	case Cosine:
		if stats.IsZero(nx) || stats.IsZero(ny) {
			return 0, nil
		}
		return nxy / math.Sqrt(nx*ny), nil
	case Jaccard:
		den := nx + ny - nxy
		if stats.IsZero(den) {
			return 0, nil
		}
		return nxy / den, nil
	case Certainty:
		if stats.IsZero(1 - py) {
			return 0, nil
		}
		return (conf - py) / (1 - py), nil
	case AddedValue:
		return conf - py, nil
	default:
		return 0, fmt.Errorf("baseline: unknown measure %v", m)
	}
}

// RankedRule pairs a rule with its measure value.
type RankedRule struct {
	Rule  car.Rule
	Value float64
}

// RankRules evaluates the measure on every rule of rs (using the class
// distribution of ds for marginals) and returns the rules sorted by
// descending value. This is the "rule ranking" baseline of Section II —
// the approach whose top ranks, the authors report, are dominated by
// artifacts of the data.
func RankRules(ds *dataset.Dataset, rs *car.RuleSet, m Measure) ([]RankedRule, error) {
	classDist := ds.ClassDistribution()
	out := make([]RankedRule, 0, len(rs.Rules))
	for _, r := range rs.Rules {
		if int(r.Class) >= len(classDist) {
			return nil, fmt.Errorf("baseline: rule class %d outside dataset classes", r.Class)
		}
		v, err := Evaluate(m, r, classDist[r.Class])
		if err != nil {
			return nil, err
		}
		out = append(out, RankedRule{Rule: r, Value: v})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Value > out[j].Value })
	return out, nil
}

// AttrOfTopRules summarizes which attributes dominate the top-k ranked
// rules — used in the evaluation to contrast rule-level ranking with the
// comparator's attribute-level ranking.
func AttrOfTopRules(ranked []RankedRule, k int) map[int]int {
	if k > len(ranked) {
		k = len(ranked)
	}
	counts := make(map[int]int)
	for _, rr := range ranked[:k] {
		for _, c := range rr.Rule.Conditions {
			counts[c.Attr]++
		}
	}
	return counts
}
