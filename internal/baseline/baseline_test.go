package baseline

import (
	"math"
	"testing"

	"opmap/internal/car"
	"opmap/internal/dataset"
	"opmap/internal/rulecube"
	"opmap/internal/workload"
)

func callLog(t testing.TB, records int) *dataset.Dataset {
	t.Helper()
	ds, _, err := workload.CallLog(workload.CallLogConfig{Seed: 11, Records: records, NoiseAttrs: 3})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestEvaluateMeasures(t *testing.T) {
	// Rule with nxy=30, nx=100, ny=200, n=1000.
	r := car.Rule{SupCount: 30, CondCount: 100, Total: 1000}
	classCount := int64(200)
	cases := []struct {
		m    Measure
		want float64
	}{
		{Confidence, 0.3},
		{Support, 0.03},
		{Lift, 0.03 / (0.1 * 0.2)},
		{Leverage, 0.03 - 0.1*0.2},
		{Conviction, (1 - 0.2) / (1 - 0.3)},
		{Laplace, 31.0 / 102},
		{Cosine, 30 / math.Sqrt(100*200)},
		{Jaccard, 30.0 / (100 + 200 - 30)},
		{Certainty, (0.3 - 0.2) / (1 - 0.2)},
		{AddedValue, 0.3 - 0.2},
	}
	for _, c := range cases {
		got, err := Evaluate(c.m, r, classCount)
		if err != nil {
			t.Fatalf("%v: %v", c.m, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v = %v, want %v", c.m, got, c.want)
		}
	}
}

func TestEvaluateChiSquared(t *testing.T) {
	r := car.Rule{SupCount: 30, CondCount: 100, Total: 1000}
	got, err := Evaluate(ChiSquared, r, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against the generic contingency implementation.
	want, _, err := chiFromCounts(30, 100, 200, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("chi2 = %v, want %v", got, want)
	}
}

func chiFromCounts(nxy, nx, ny, n int64) (float64, int, error) {
	tab := [][]int64{
		{nxy, nx - nxy},
		{ny - nxy, n - nx - ny + nxy},
	}
	// stats.ChiSquare is in another package; inline Pearson here.
	var rt, ct [2]float64
	var g float64
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			rt[i] += float64(tab[i][j])
			ct[j] += float64(tab[i][j])
			g += float64(tab[i][j])
		}
	}
	var chi float64
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			e := rt[i] * ct[j] / g
			d := float64(tab[i][j]) - e
			chi += d * d / e
		}
	}
	return chi, 1, nil
}

func TestEvaluateEdgeCases(t *testing.T) {
	// Perfect confidence → infinite conviction.
	r := car.Rule{SupCount: 10, CondCount: 10, Total: 100}
	v, err := Evaluate(Conviction, r, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(v, 1) {
		t.Errorf("conviction = %v, want +Inf", v)
	}
	// Zero total errors.
	if _, err := Evaluate(Lift, car.Rule{}, 0); err == nil {
		t.Error("zero total should fail")
	}
	// Inconsistent counts error.
	if _, err := Evaluate(Lift, car.Rule{SupCount: 10, CondCount: 5, Total: 100}, 50); err == nil {
		t.Error("nxy > nx should fail")
	}
}

func TestMeasureStrings(t *testing.T) {
	for _, m := range AllMeasures() {
		if m.String() == "" || m.String()[0] == 'M' {
			t.Errorf("measure %d has bad name %q", m, m.String())
		}
	}
	if Measure(200).String() == "" {
		t.Error("unknown measure should render")
	}
	if len(AllMeasures()) != 11 {
		t.Errorf("AllMeasures returned %d, want 11", len(AllMeasures()))
	}
}

func TestRankRulesOrdering(t *testing.T) {
	ds := callLog(t, 20000)
	rs, err := car.Mine(ds, car.Options{MaxConditions: 1})
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := RankRules(ds, rs, Lift)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != rs.Len() {
		t.Fatalf("ranked %d of %d rules", len(ranked), rs.Len())
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Value > ranked[i-1].Value+1e-12 {
			t.Fatal("rules not sorted descending")
		}
	}
}

func TestAttrOfTopRules(t *testing.T) {
	ds := callLog(t, 20000)
	rs, err := car.Mine(ds, car.Options{MaxConditions: 1})
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := RankRules(ds, rs, Confidence)
	if err != nil {
		t.Fatal(err)
	}
	counts := AttrOfTopRules(ranked, 10)
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 10 {
		t.Errorf("top-10 condition count = %d, want 10 for 1-condition rules", total)
	}
	if got := AttrOfTopRules(ranked, 1<<30); got == nil {
		t.Error("oversized k should clamp, not fail")
	}
}

func TestDecisionTreeLearnsPlantedSignal(t *testing.T) {
	ds := callLog(t, 40000)
	tree, err := Learn(ds, TreeOptions{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Leaves() == 0 {
		t.Fatal("tree has no leaves")
	}
	acc := tree.Accuracy(ds)
	// The majority class is ~96%, so accuracy must be at least that.
	if acc < 0.9 {
		t.Errorf("training accuracy %.3f unexpectedly low", acc)
	}
	if dump := tree.Dump(); dump == "" {
		t.Error("Dump is empty")
	}
}

func TestDecisionTreePureLeaf(t *testing.T) {
	// A perfectly separable dataset: one split, pure leaves.
	b, _ := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "x", Kind: dataset.Categorical},
			{Name: "c", Kind: dataset.Categorical},
		},
		ClassIndex: 1,
	})
	for i := 0; i < 100; i++ {
		v, c := "a", "neg"
		if i%2 == 0 {
			v, c = "b", "pos"
		}
		b.AddRow([]string{v, c})
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Learn(ds, TreeOptions{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := tree.Accuracy(ds); acc != 1 {
		t.Errorf("separable data accuracy = %v, want 1", acc)
	}
	if tree.Root.IsLeaf() {
		t.Error("root should split")
	}
}

func TestDecisionTreeRejectsContinuous(t *testing.T) {
	b, _ := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "x", Kind: dataset.Continuous},
			{Name: "c", Kind: dataset.Categorical},
		},
		ClassIndex: 1,
	})
	b.AddRow([]string{"1", "y"})
	ds, _ := b.Build()
	if _, err := Learn(ds, TreeOptions{}); err == nil {
		t.Error("continuous dataset should be rejected")
	}
}

// TestCompletenessProblem quantifies Section III.A: the tree's rule
// count must be a small fraction of the exhaustive CAR rule set.
func TestCompletenessProblem(t *testing.T) {
	ds := callLog(t, 30000)
	rep, err := Completeness(ds, TreeOptions{MaxDepth: 2}, car.Options{MaxConditions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CARRules == 0 || rep.TreeRules == 0 {
		t.Fatalf("degenerate report %+v", rep)
	}
	if rep.CoverageRatio > 0.2 {
		t.Errorf("tree covers %.1f%% of the rule space; the completeness problem should be visible (<20%%)", 100*rep.CoverageRatio)
	}
}

func TestTreeRulesConsistency(t *testing.T) {
	ds := callLog(t, 20000)
	tree, err := Learn(ds, TreeOptions{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tree.Rules() {
		if r.SupCount > r.CondCount {
			t.Fatalf("rule %v has sup > cond", r)
		}
		if r.CondCount == 0 {
			t.Fatal("empty leaf rule")
		}
		// Conditions must use distinct attributes in sorted order.
		for i := 1; i < len(r.Conditions); i++ {
			if r.Conditions[i].Attr <= r.Conditions[i-1].Attr {
				t.Fatal("conditions not sorted/distinct")
			}
		}
	}
}

func TestExploreCubeFindsPlantedCell(t *testing.T) {
	// Build a 2-attribute dataset with an interaction cell: A=a2 & B=b1
	// has 60% positives, all else 10%.
	b, _ := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "A", Kind: dataset.Categorical},
			{Name: "B", Kind: dataset.Categorical},
			{Name: "c", Kind: dataset.Categorical},
		},
		ClassIndex: 2,
	})
	b.WithDict(0, dataset.DictionaryOf("a0", "a1", "a2", "a3"))
	b.WithDict(1, dataset.DictionaryOf("b0", "b1", "b2"))
	b.WithDict(2, dataset.DictionaryOf("neg", "pos"))
	for av := int32(0); av < 4; av++ {
		for bv := int32(0); bv < 3; bv++ {
			pos := 20
			if av == 2 && bv == 1 {
				pos = 120
			}
			for i := 0; i < pos; i++ {
				b.AddCodedRow([]int32{av, bv, 1}, nil)
			}
			for i := 0; i < 200-pos; i++ {
				b.AddCodedRow([]int32{av, bv, 0}, nil)
			}
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cube, err := rulecube.Build(ds, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// With an additive model the interaction leaks into the planted
	// cell's row and column effects, so its standardized residual sits
	// near 2.45; probe with a threshold of 2.
	exs, err := ExploreCube(cube, ExplorerOptions{Class: 1, MinSelfExp: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(exs) == 0 {
		t.Fatal("planted interaction cell not found")
	}
	top := exs[0]
	if top.Labels[0] != "a2" || top.Labels[1] != "b1" {
		t.Errorf("top exception at (%s,%s), want (a2,b1)", top.Labels[0], top.Labels[1])
	}
	if top.SelfExp < 2 {
		t.Errorf("SelfExp = %v", top.SelfExp)
	}
	if top.Observed != 0.6 {
		t.Errorf("observed = %v, want 0.6", top.Observed)
	}
}

func TestExploreCubeNoSignal(t *testing.T) {
	// Uniform confidences → no exceptions.
	b, _ := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "A", Kind: dataset.Categorical},
			{Name: "B", Kind: dataset.Categorical},
			{Name: "c", Kind: dataset.Categorical},
		},
		ClassIndex: 2,
	})
	b.WithDict(0, dataset.DictionaryOf("a0", "a1", "a2"))
	b.WithDict(1, dataset.DictionaryOf("b0", "b1", "b2"))
	b.WithDict(2, dataset.DictionaryOf("neg", "pos"))
	for av := int32(0); av < 3; av++ {
		for bv := int32(0); bv < 3; bv++ {
			for i := 0; i < 90; i++ {
				b.AddCodedRow([]int32{av, bv, 0}, nil)
			}
			for i := 0; i < 10; i++ {
				b.AddCodedRow([]int32{av, bv, 1}, nil)
			}
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cube, err := rulecube.Build(ds, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	exs, err := ExploreCube(cube, ExplorerOptions{Class: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(exs) != 0 {
		t.Errorf("uniform cube produced %d exceptions", len(exs))
	}
}

func TestExploreCubeRejects2D(t *testing.T) {
	ds := callLog(t, 1000)
	cube, err := rulecube.Build(ds, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExploreCube(cube, ExplorerOptions{}); err == nil {
		t.Error("2-D cube should be rejected")
	}
}

func TestExploreStore(t *testing.T) {
	ds := callLog(t, 30000)
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	byPair, err := ExploreStore(store, ExplorerOptions{Class: -1})
	if err != nil {
		t.Fatal(err)
	}
	// The planted Phone-Model × Time-of-Call interaction should surface
	// in at least one pair.
	if len(byPair) == 0 {
		t.Error("no exceptional pairs found in planted data")
	}
}
