package baseline

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"opmap/internal/car"
	"opmap/internal/dataset"
	"opmap/internal/stats"
)

// Rule querying, the third related-work approach the paper engaged with
// (Section II: "[7, 22, 34, 35] report several rule query languages to
// enable the user to specify what rules that he/she needs ... We tried
// this approach, but our users did not know what to ask"). This small
// query language over a mined rule set makes that baseline concrete, so
// the evaluation can demonstrate both what querying can do and why it
// cannot replace automated comparison: a query retrieves rules the user
// already suspects; the comparator finds the attribute the user never
// thought to ask about.
//
// Grammar (case-insensitive keywords; clauses joined by AND):
//
//	query   := clause { "and" clause }
//	clause  := "class" "=" value
//	         | "attr"  "=" name            // rule mentions the attribute
//	         | name "=" value              // rule contains the condition
//	         | ("sup"|"conf") op number    // op ∈ {>, >=, <, <=, =}
//	         | "len" op number             // number of conditions
//
// Example: `class=dropped and Phone-Model=ph2 and conf >= 0.05 and len <= 2`.

// RuleQuery is a compiled query.
type RuleQuery struct {
	clauses []ruleClause
	source  string
}

type ruleClause func(ds *dataset.Dataset, r car.Rule) bool

// ParseRuleQuery compiles a query string against the dataset's schema
// (attribute and value names are validated eagerly so typos fail fast).
func ParseRuleQuery(ds *dataset.Dataset, query string) (*RuleQuery, error) {
	parts := splitAnd(query)
	if len(parts) == 0 {
		return nil, fmt.Errorf("baseline: empty rule query")
	}
	q := &RuleQuery{source: query}
	for _, part := range parts {
		clause, err := parseClause(ds, part)
		if err != nil {
			return nil, err
		}
		q.clauses = append(q.clauses, clause)
	}
	return q, nil
}

// splitAnd splits on the keyword "and" (word boundaries, any case).
func splitAnd(s string) []string {
	fields := strings.Fields(s)
	var parts []string
	var cur []string
	for _, f := range fields {
		if strings.EqualFold(f, "and") {
			if len(cur) > 0 {
				parts = append(parts, strings.Join(cur, " "))
				cur = nil
			}
			continue
		}
		cur = append(cur, f)
	}
	if len(cur) > 0 {
		parts = append(parts, strings.Join(cur, " "))
	}
	return parts
}

var queryOps = []string{">=", "<=", "!=", "=", ">", "<"}

func splitOp(s string) (left, op, right string, err error) {
	for _, candidate := range queryOps {
		if i := strings.Index(s, candidate); i >= 0 {
			return strings.TrimSpace(s[:i]), candidate, strings.TrimSpace(s[i+len(candidate):]), nil
		}
	}
	return "", "", "", fmt.Errorf("baseline: clause %q has no operator", s)
}

func parseClause(ds *dataset.Dataset, clause string) (ruleClause, error) {
	left, op, right, err := splitOp(clause)
	if err != nil {
		return nil, err
	}
	if left == "" || right == "" {
		return nil, fmt.Errorf("baseline: malformed clause %q", clause)
	}
	lower := strings.ToLower(left)
	switch lower {
	case "sup", "conf", "len":
		val, err := strconv.ParseFloat(right, 64)
		if err != nil {
			return nil, fmt.Errorf("baseline: clause %q: %q is not a number", clause, right)
		}
		return numericClause(lower, op, val)
	case "class":
		if op != "=" && op != "!=" {
			return nil, fmt.Errorf("baseline: class supports = and != only")
		}
		code, ok := ds.ClassDict().Lookup(right)
		if !ok {
			return nil, fmt.Errorf("baseline: unknown class %q", right)
		}
		negate := op == "!="
		return func(_ *dataset.Dataset, r car.Rule) bool {
			return (r.Class == code) != negate
		}, nil
	case "attr":
		if op != "=" {
			return nil, fmt.Errorf("baseline: attr supports = only")
		}
		idx := ds.AttrIndex(right)
		if idx < 0 {
			return nil, fmt.Errorf("baseline: unknown attribute %q", right)
		}
		return func(_ *dataset.Dataset, r car.Rule) bool {
			for _, c := range r.Conditions {
				if c.Attr == idx {
					return true
				}
			}
			return false
		}, nil
	default:
		// attribute = value condition clause
		if op != "=" && op != "!=" {
			return nil, fmt.Errorf("baseline: condition clauses support = and != only")
		}
		idx := ds.AttrIndex(left)
		if idx < 0 {
			return nil, fmt.Errorf("baseline: unknown attribute %q", left)
		}
		code, ok := ds.Column(idx).Dict.Lookup(right)
		if !ok {
			return nil, fmt.Errorf("baseline: attribute %q has no value %q", left, right)
		}
		negate := op == "!="
		return func(_ *dataset.Dataset, r car.Rule) bool {
			for _, c := range r.Conditions {
				if c.Attr == idx && c.Value == code {
					return !negate
				}
			}
			return negate
		}, nil
	}
}

func numericClause(field, op string, val float64) (ruleClause, error) {
	get := func(r car.Rule) float64 {
		switch field {
		case "sup":
			return r.Support()
		case "conf":
			return r.Confidence()
		default:
			return float64(len(r.Conditions))
		}
	}
	var cmp func(a, b float64) bool
	switch op {
	case ">":
		cmp = func(a, b float64) bool { return a > b }
	case ">=":
		cmp = func(a, b float64) bool { return a >= b }
	case "<":
		cmp = func(a, b float64) bool { return a < b }
	case "<=":
		cmp = func(a, b float64) bool { return a <= b }
	case "=":
		cmp = stats.SameValue
	case "!=":
		cmp = func(a, b float64) bool { return !stats.SameValue(a, b) }
	default:
		return nil, fmt.Errorf("baseline: unsupported operator %q", op)
	}
	return func(_ *dataset.Dataset, r car.Rule) bool {
		return cmp(get(r), val)
	}, nil
}

// Apply filters a rule set, returning matches sorted by descending
// confidence then support.
func (q *RuleQuery) Apply(ds *dataset.Dataset, rs *car.RuleSet) []car.Rule {
	var out []car.Rule
rules:
	for _, r := range rs.Rules {
		for _, clause := range q.clauses {
			if !clause(ds, r) {
				continue rules
			}
		}
		out = append(out, r)
	}
	sort.SliceStable(out, func(i, j int) bool {
		switch {
		case out[i].Confidence() > out[j].Confidence():
			return true
		case out[j].Confidence() > out[i].Confidence():
			return false
		}
		return out[i].SupCount > out[j].SupCount
	})
	return out
}

// String returns the original query text.
func (q *RuleQuery) String() string { return q.source }
