package baseline

import (
	"fmt"
	"sort"
	"strings"

	"opmap/internal/car"
	"opmap/internal/dataset"
	"opmap/internal/stats"
)

// Decision-tree rule induction, the classification baseline of Section
// III.A. The paper's point: "A typical classification algorithm only
// finds a very small subset of the rules that exist in data" — the
// completeness problem. This learner (ID3-style multiway splits with
// gain ratio, pre-pruning) extracts its leaf rules so the evaluation can
// count how few of the data's rules a classifier surfaces compared with
// exhaustive CAR mining over rule cubes.

// TreeOptions configures tree induction.
type TreeOptions struct {
	// MaxDepth bounds tree depth; zero means 8.
	MaxDepth int
	// MinLeaf is the minimum records per leaf; zero means 25.
	MinLeaf int
	// MinGainRatio is the pre-pruning threshold; zero means 1e-3.
	MinGainRatio float64
}

func (o TreeOptions) maxDepth() int {
	if o.MaxDepth == 0 {
		return 8
	}
	return o.MaxDepth
}

func (o TreeOptions) minLeaf() int {
	if o.MinLeaf == 0 {
		return 25
	}
	return o.MinLeaf
}

func (o TreeOptions) minGainRatio() float64 {
	if stats.IsZero(o.MinGainRatio) {
		return 1e-3
	}
	return o.MinGainRatio
}

// TreeNode is a node of the induced decision tree.
type TreeNode struct {
	// Attr is the split attribute, or -1 for a leaf.
	Attr int
	// Children maps each value code of Attr to a child (nil children are
	// empty branches predicting the parent majority).
	Children []*TreeNode
	// Class is the majority class at this node.
	Class int32
	// Count is the number of training records reaching the node;
	// ClassCount those of the majority class.
	Count, ClassCount int64
}

// IsLeaf reports whether the node is a leaf.
func (n *TreeNode) IsLeaf() bool { return n.Attr < 0 }

// Tree is an induced decision tree.
type Tree struct {
	Root    *TreeNode
	ds      *dataset.Dataset
	nLeaves int
}

// Leaves returns the number of leaves.
func (t *Tree) Leaves() int { return t.nLeaves }

// Learn induces a decision tree on ds (fully categorical).
func Learn(ds *dataset.Dataset, opts TreeOptions) (*Tree, error) {
	if !ds.AllCategorical() {
		return nil, fmt.Errorf("baseline: decision tree needs a categorical dataset; discretize first")
	}
	rows := make([]int32, ds.NumRows())
	for i := range rows {
		rows[i] = int32(i)
	}
	avail := make([]bool, ds.NumAttrs())
	for a := range avail {
		avail[a] = a != ds.ClassIndex()
	}
	t := &Tree{ds: ds}
	t.Root = t.grow(rows, avail, opts, opts.maxDepth())
	return t, nil
}

func (t *Tree) grow(rows []int32, avail []bool, opts TreeOptions, depth int) *TreeNode {
	ds := t.ds
	classCounts := make([]int64, ds.NumClasses())
	for _, r := range rows {
		c := ds.ClassCode(int(r))
		if c >= 0 {
			classCounts[c]++
		}
	}
	node := &TreeNode{Attr: -1, Count: int64(len(rows))}
	var best int64 = -1
	for c, n := range classCounts {
		if n > best {
			best = n
			node.Class = int32(c)
		}
	}
	node.ClassCount = best
	baseEnt := stats.Entropy(classCounts)
	if stats.IsZero(baseEnt) || depth <= 0 || len(rows) < 2*opts.minLeaf() {
		t.nLeaves++
		return node
	}

	bestAttr, bestRatio := -1, opts.minGainRatio()
	for a := range avail {
		if !avail[a] {
			continue
		}
		ratio := gainRatio(ds, rows, a, baseEnt)
		if ratio > bestRatio {
			bestRatio = ratio
			bestAttr = a
		}
	}
	if bestAttr < 0 {
		t.nLeaves++
		return node
	}

	card := ds.Cardinality(bestAttr)
	parts := make([][]int32, card)
	for _, r := range rows {
		v := ds.CatCode(int(r), bestAttr)
		if v >= 0 {
			parts[v] = append(parts[v], r)
		}
	}
	node.Attr = bestAttr
	node.Children = make([]*TreeNode, card)
	childAvail := append([]bool(nil), avail...)
	childAvail[bestAttr] = false
	for v, part := range parts {
		if len(part) < opts.minLeaf() {
			continue // empty branch: parent majority applies
		}
		node.Children[v] = t.grow(part, childAvail, opts, depth-1)
	}
	return node
}

func gainRatio(ds *dataset.Dataset, rows []int32, attr int, baseEnt float64) float64 {
	card := ds.Cardinality(attr)
	nc := ds.NumClasses()
	counts := make([]int64, card)
	classCounts := make([][]int64, card)
	for v := range classCounts {
		classCounts[v] = make([]int64, nc)
	}
	var total int64
	for _, r := range rows {
		v := ds.CatCode(int(r), attr)
		if v < 0 {
			continue
		}
		counts[v]++
		total++
		c := ds.ClassCode(int(r))
		if c >= 0 {
			classCounts[v][c]++
		}
	}
	if total == 0 {
		return 0
	}
	var condEnt float64
	for v := 0; v < card; v++ {
		if counts[v] == 0 {
			continue
		}
		condEnt += float64(counts[v]) / float64(total) * stats.Entropy(classCounts[v])
	}
	gain := baseEnt - condEnt
	splitInfo := stats.Entropy(counts)
	if stats.IsZero(splitInfo) {
		return 0
	}
	return gain / splitInfo
}

// Predict returns the predicted class code for the given row of a
// dataset sharing the training schema.
func (t *Tree) Predict(ds *dataset.Dataset, row int) int32 {
	node := t.Root
	for !node.IsLeaf() {
		v := ds.CatCode(row, node.Attr)
		if v < 0 || int(v) >= len(node.Children) || node.Children[v] == nil {
			return node.Class
		}
		node = node.Children[v]
	}
	return node.Class
}

// Accuracy evaluates the tree on ds.
func (t *Tree) Accuracy(ds *dataset.Dataset) float64 {
	if ds.NumRows() == 0 {
		return 0
	}
	correct := 0
	for r := 0; r < ds.NumRows(); r++ {
		if t.Predict(ds, r) == ds.ClassCode(r) {
			correct++
		}
	}
	return float64(correct) / float64(ds.NumRows())
}

// Rules extracts one rule per leaf (the path conditions -> leaf class),
// with support counts measured on the training data. Comparing
// len(tree.Rules()) with the size of an exhaustive CAR rule set
// quantifies the completeness problem.
func (t *Tree) Rules() []car.Rule {
	var out []car.Rule
	var walk func(n *TreeNode, conds []car.Condition)
	walk = func(n *TreeNode, conds []car.Condition) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			cp := append([]car.Condition(nil), conds...)
			sort.Slice(cp, func(i, j int) bool { return cp[i].Attr < cp[j].Attr })
			out = append(out, car.Rule{
				Conditions: cp,
				Class:      n.Class,
				SupCount:   n.ClassCount,
				CondCount:  n.Count,
				Total:      int64(t.ds.NumRows()),
			})
			return
		}
		for v, child := range n.Children {
			walk(child, append(conds, car.Condition{Attr: n.Attr, Value: int32(v)}))
		}
	}
	walk(t.Root, nil)
	return out
}

// Dump renders the tree as an indented string for inspection.
func (t *Tree) Dump() string {
	var sb strings.Builder
	var walk func(n *TreeNode, prefix string)
	walk = func(n *TreeNode, prefix string) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			fmt.Fprintf(&sb, "%s=> %s (%d/%d)\n", prefix, t.ds.ClassDict().Label(n.Class), n.ClassCount, n.Count)
			return
		}
		name := t.ds.Attr(n.Attr).Name
		for v, child := range n.Children {
			if child == nil {
				continue
			}
			fmt.Fprintf(&sb, "%s%s=%s\n", prefix, name, t.ds.Column(n.Attr).Dict.Label(int32(v)))
			walk(child, prefix+"  ")
		}
	}
	walk(t.Root, "")
	return sb.String()
}

// CompletenessReport contrasts the rule coverage of a decision tree with
// exhaustive CAR mining, quantifying Section III.A's completeness
// problem.
type CompletenessReport struct {
	TreeRules     int
	CARRules      int
	TreeMaxDepth  int
	CoverageRatio float64 // TreeRules / CARRules
}

// Completeness learns a tree, mines CARs at the given thresholds with
// the same maximum rule length, and reports the ratio of rule counts.
func Completeness(ds *dataset.Dataset, topts TreeOptions, copts car.Options) (CompletenessReport, error) {
	tree, err := Learn(ds, topts)
	if err != nil {
		return CompletenessReport{}, err
	}
	rs, err := car.Mine(ds, copts)
	if err != nil {
		return CompletenessReport{}, err
	}
	rep := CompletenessReport{
		TreeRules:    len(tree.Rules()),
		CARRules:     rs.Len(),
		TreeMaxDepth: topts.maxDepth(),
	}
	if rep.CARRules > 0 {
		rep.CoverageRatio = float64(rep.TreeRules) / float64(rep.CARRules)
	}
	return rep, nil
}
