package baseline

import (
	"fmt"
	"sort"

	"opmap/internal/car"
	"opmap/internal/dataset"
	"opmap/internal/stats"
)

// CBA-CB: the classifier builder of Liu, Hsu & Ma's CBA (the paper's
// reference [18] and the lineage of its CAR generator). It orders rules
// by precedence (confidence, then support, then generality), greedily
// keeps each rule that correctly classifies at least one still-uncovered
// training record, and closes with a default class. It rounds out the
// classification side of the baseline suite: the same exhaustive rule
// set that powers diagnosis can also predict, but prediction keeps only
// a sliver of it — the completeness problem seen from the other side.

// CBAOptions configures classifier building.
type CBAOptions struct {
	// MinSupport and MinConfidence feed the CAR miner. Zeros mean 1%
	// support, 50% confidence (CBA's customary defaults).
	MinSupport    float64
	MinConfidence float64
	// MaxConditions caps rule length; zero means 2.
	MaxConditions int
}

// CBAClassifier is an ordered rule list with a default class.
type CBAClassifier struct {
	Rules        []car.Rule
	DefaultClass int32
	// TotalCandidates is the size of the mined rule set the classifier
	// was distilled from.
	TotalCandidates int
}

// BuildCBA mines CARs and distills them into a classifier over ds.
func BuildCBA(ds *dataset.Dataset, opts CBAOptions) (*CBAClassifier, error) {
	if !ds.AllCategorical() {
		return nil, fmt.Errorf("baseline: CBA needs a categorical dataset; discretize first")
	}
	minSup := opts.MinSupport
	if stats.IsZero(minSup) {
		minSup = 0.01
	}
	minConf := opts.MinConfidence
	if stats.IsZero(minConf) {
		minConf = 0.5
	}
	rs, err := car.Mine(ds, car.Options{
		MinSupport:    minSup,
		MinConfidence: minConf,
		MaxConditions: opts.MaxConditions,
	})
	if err != nil {
		return nil, err
	}
	// Precedence order: confidence desc, support desc, fewer conditions,
	// then a deterministic tiebreak.
	rules := append([]car.Rule(nil), rs.Rules...)
	sort.SliceStable(rules, func(i, j int) bool {
		a, b := rules[i], rules[j]
		switch {
		case a.Confidence() > b.Confidence():
			return true
		case b.Confidence() > a.Confidence():
			return false
		}
		if a.SupCount != b.SupCount {
			return a.SupCount > b.SupCount
		}
		return len(a.Conditions) < len(b.Conditions)
	})

	covered := make([]bool, ds.NumRows())
	remaining := ds.NumRows()
	var kept []car.Rule
	for _, r := range rules {
		if remaining == 0 {
			break
		}
		helps := false
		var newlyCovered []int
		for row := 0; row < ds.NumRows(); row++ {
			if covered[row] || !matches(ds, row, r.Conditions) {
				continue
			}
			newlyCovered = append(newlyCovered, row)
			if ds.ClassCode(row) == r.Class {
				helps = true
			}
		}
		if !helps {
			continue
		}
		kept = append(kept, r)
		for _, row := range newlyCovered {
			covered[row] = true
			remaining--
		}
	}

	// Default class: majority among uncovered records, falling back to
	// the global majority.
	classCounts := make([]int64, ds.NumClasses())
	for row := 0; row < ds.NumRows(); row++ {
		if !covered[row] {
			if c := ds.ClassCode(row); c >= 0 {
				classCounts[c]++
			}
		}
	}
	def := int32(0)
	var best int64 = -1
	any := false
	for c, n := range classCounts {
		if n > 0 {
			any = true
		}
		if n > best {
			best = n
			def = int32(c)
		}
	}
	if !any {
		global := ds.ClassDistribution()
		best = -1
		for c, n := range global {
			if n > best {
				best = n
				def = int32(c)
			}
		}
	}
	return &CBAClassifier{Rules: kept, DefaultClass: def, TotalCandidates: rs.Len()}, nil
}

func matches(ds *dataset.Dataset, row int, conds []car.Condition) bool {
	for _, c := range conds {
		if ds.CatCode(row, c.Attr) != c.Value {
			return false
		}
	}
	return true
}

// Predict returns the class of the first matching rule, or the default.
func (c *CBAClassifier) Predict(ds *dataset.Dataset, row int) int32 {
	for _, r := range c.Rules {
		if matches(ds, row, r.Conditions) {
			return r.Class
		}
	}
	return c.DefaultClass
}

// Accuracy evaluates the classifier on ds.
func (c *CBAClassifier) Accuracy(ds *dataset.Dataset) float64 {
	if ds.NumRows() == 0 {
		return 0
	}
	correct := 0
	for row := 0; row < ds.NumRows(); row++ {
		if c.Predict(ds, row) == ds.ClassCode(row) {
			correct++
		}
	}
	return float64(correct) / float64(ds.NumRows())
}

// UsageRatio reports what fraction of the mined candidate rules the
// classifier actually keeps — the prediction-side view of Section
// III.A's completeness problem.
func (c *CBAClassifier) UsageRatio() float64 {
	if c.TotalCandidates == 0 {
		return 0
	}
	return float64(len(c.Rules)) / float64(c.TotalCandidates)
}
