package baseline

import (
	"strings"
	"testing"

	"opmap/internal/car"
	"opmap/internal/dataset"
)

func minedCallLog(t *testing.T) (*car.RuleSet, *dataset.Dataset) {
	t.Helper()
	ds := callLog(t, 20000)
	rs, err := car.Mine(ds, car.Options{MaxConditions: 2, MinSupport: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	return rs, ds
}

func TestRuleQueryFilters(t *testing.T) {
	rs, ds := minedCallLog(t)

	q, err := ParseRuleQuery(ds, "class=dropped-in-progress and Phone-Model=ph2 and conf >= 0.03")
	if err != nil {
		t.Fatal(err)
	}
	matches := q.Apply(ds, rs)
	if len(matches) == 0 {
		t.Fatal("no matches for the planted bad phone")
	}
	dropCode, _ := ds.ClassDict().Lookup("dropped-in-progress")
	phone := ds.AttrIndex("Phone-Model")
	ph2, _ := ds.Column(phone).Dict.Lookup("ph2")
	for _, r := range matches {
		if r.Class != dropCode {
			t.Fatalf("rule %s has wrong class", r.Format(ds))
		}
		if r.Confidence() < 0.03 {
			t.Fatalf("rule %s below conf bound", r.Format(ds))
		}
		found := false
		for _, c := range r.Conditions {
			if c.Attr == phone && c.Value == ph2 {
				found = true
			}
		}
		if !found {
			t.Fatalf("rule %s lacks the condition", r.Format(ds))
		}
	}
	// Sorted by confidence.
	for i := 1; i < len(matches); i++ {
		if matches[i].Confidence() > matches[i-1].Confidence()+1e-12 {
			t.Fatal("matches not sorted")
		}
	}
}

func TestRuleQueryAttrAndLen(t *testing.T) {
	rs, ds := minedCallLog(t)
	q, err := ParseRuleQuery(ds, "attr=Time-of-Call and len = 1")
	if err != nil {
		t.Fatal(err)
	}
	matches := q.Apply(ds, rs)
	if len(matches) == 0 {
		t.Fatal("no one-condition Time-of-Call rules")
	}
	timeA := ds.AttrIndex("Time-of-Call")
	for _, r := range matches {
		if len(r.Conditions) != 1 || r.Conditions[0].Attr != timeA {
			t.Fatalf("unexpected rule %s", r.Format(ds))
		}
	}
}

func TestRuleQueryNegation(t *testing.T) {
	rs, ds := minedCallLog(t)
	q, err := ParseRuleQuery(ds, "class!=ended-successfully and sup > 0.001")
	if err != nil {
		t.Fatal(err)
	}
	okCode, _ := ds.ClassDict().Lookup("ended-successfully")
	for _, r := range q.Apply(ds, rs) {
		if r.Class == okCode {
			t.Fatal("negated class leaked through")
		}
	}
}

func TestRuleQueryValidation(t *testing.T) {
	_, ds := minedCallLog(t)
	bad := []string{
		"",
		"and and",
		"class ~ dropped",
		"class=nope",
		"attr=nope",
		"Nope-Attr=x",
		"Phone-Model=nope",
		"conf >= lots",
		"class > x",
		"attr != Phone-Model",
		"= dangling",
	}
	for _, qs := range bad {
		if _, err := ParseRuleQuery(ds, qs); err == nil {
			t.Errorf("query %q should fail to parse", qs)
		}
	}
	// The error message names the problem.
	_, err := ParseRuleQuery(ds, "Phone-Model=nope")
	if err == nil || !strings.Contains(err.Error(), "no value") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestRuleQueryString(t *testing.T) {
	_, ds := minedCallLog(t)
	q, err := ParseRuleQuery(ds, "len <= 2")
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != "len <= 2" {
		t.Errorf("String() = %q", q.String())
	}
}
