package baseline

import (
	"fmt"
	"math"
	"sort"

	"opmap/internal/rulecube"
	"opmap/internal/stats"
)

// Discovery-driven cube exception mining in the style of Sarawagi,
// Agrawal & Megiddo (Section II's OLAP-framework related work): a cube
// cell is exceptional when its value differs dramatically from what an
// additive model over the cube's marginals predicts. The paper contrasts
// its comparator against this: exception mining flags surprising cells,
// whereas the comparator explains the *difference between two chosen
// sub-populations*. Implementing both lets the evaluation show they
// answer different questions.

// CellException is a cube cell whose confidence deviates from the
// additive-model expectation.
type CellException struct {
	Values     []int32 // cell coordinates in cube dimension order
	Labels     []string
	Class      int32
	ClassLabel string
	Observed   float64 // observed confidence of the cell for the class
	Expected   float64 // additive-model expectation
	Residual   float64 // Observed − Expected
	// SelfExp is the standardized residual (residual / residual stddev
	// across the cube), the cell's surprise score.
	SelfExp float64
	Support int64
}

// ExplorerOptions tunes exception mining.
type ExplorerOptions struct {
	// MinSelfExp is the minimum |SelfExp| to report; zero means 2.5.
	MinSelfExp float64
	// MinSupport skips cells backed by fewer records; zero means 30.
	MinSupport int64
	// Class restricts mining to one class code; negative means all.
	Class int32
}

func (o ExplorerOptions) minSelfExp() float64 {
	if stats.IsZero(o.MinSelfExp) {
		return 2.5
	}
	return o.MinSelfExp
}

func (o ExplorerOptions) minSupport() int64 {
	if o.MinSupport == 0 {
		return 30
	}
	return o.MinSupport
}

// ExploreCube finds exceptional cells of a 3-D rule cube (two condition
// dimensions plus class). The additive model for the confidence of cell
// (i, j) for a class is
//
//	ŷ(i,j) = μ + α_i + β_j
//
// with μ the grand mean confidence and α/β the row/column effects
// (means minus grand mean), the standard ANOVA-style decomposition used
// by discovery-driven exploration.
func ExploreCube(cube *rulecube.Cube, opts ExplorerOptions) ([]CellException, error) {
	if cube.NumDims() != 2 {
		return nil, fmt.Errorf("baseline: ExploreCube needs a 3-D rule cube, got %d condition dims", cube.NumDims())
	}
	d0, d1 := cube.Dim(0), cube.Dim(1)
	var out []CellException
	for cls := int32(0); int(cls) < cube.NumClasses(); cls++ {
		if opts.Class >= 0 && cls != opts.Class {
			continue
		}
		conf := make([][]float64, d0)
		sup := make([][]int64, d0)
		valid := make([][]bool, d0)
		for i := 0; i < d0; i++ {
			conf[i] = make([]float64, d1)
			sup[i] = make([]int64, d1)
			valid[i] = make([]bool, d1)
			for j := 0; j < d1; j++ {
				coords := []int32{int32(i), int32(j)}
				n, err := cube.CondCount(coords)
				if err != nil {
					return nil, err
				}
				sup[i][j] = n
				if n < opts.minSupport() {
					continue
				}
				cf, err := cube.Confidence(coords, cls)
				if err != nil {
					return nil, err
				}
				conf[i][j] = cf
				valid[i][j] = true
			}
		}
		// Grand mean and row/column effects over valid cells.
		var grand float64
		var nValid int
		rowSum := make([]float64, d0)
		rowN := make([]int, d0)
		colSum := make([]float64, d1)
		colN := make([]int, d1)
		for i := 0; i < d0; i++ {
			for j := 0; j < d1; j++ {
				if !valid[i][j] {
					continue
				}
				grand += conf[i][j]
				nValid++
				rowSum[i] += conf[i][j]
				rowN[i]++
				colSum[j] += conf[i][j]
				colN[j]++
			}
		}
		if nValid < 4 {
			continue
		}
		grand /= float64(nValid)
		// Residuals and their spread.
		var residuals []float64
		type cellRef struct {
			i, j int
			res  float64
			exp  float64
		}
		var cells []cellRef
		for i := 0; i < d0; i++ {
			if rowN[i] == 0 {
				continue
			}
			alpha := rowSum[i]/float64(rowN[i]) - grand
			for j := 0; j < d1; j++ {
				if !valid[i][j] || colN[j] == 0 {
					continue
				}
				beta := colSum[j]/float64(colN[j]) - grand
				expected := grand + alpha + beta
				res := conf[i][j] - expected
				residuals = append(residuals, res)
				cells = append(cells, cellRef{i, j, res, expected})
			}
		}
		sd := stats.StdDev(residuals)
		if stats.IsZero(sd) {
			continue
		}
		for _, c := range cells {
			self := c.res / sd
			if math.Abs(self) < opts.minSelfExp() {
				continue
			}
			out = append(out, CellException{
				Values: []int32{int32(c.i), int32(c.j)},
				Labels: []string{
					cube.Dict(0).Label(int32(c.i)),
					cube.Dict(1).Label(int32(c.j)),
				},
				Class:      cls,
				ClassLabel: cube.ClassDict().Label(cls),
				Observed:   conf[c.i][c.j],
				Expected:   c.exp,
				Residual:   c.res,
				SelfExp:    self,
				Support:    sup[c.i][c.j],
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return math.Abs(out[i].SelfExp) > math.Abs(out[j].SelfExp)
	})
	return out, nil
}

// ExploreStore runs ExploreCube over every materialized 3-D cube of the
// store and returns the exceptions pooled and sorted by |SelfExp|, with
// the cube's attribute names attached via Labels ordering.
func ExploreStore(store *rulecube.Store, opts ExplorerOptions) (map[[2]int][]CellException, error) {
	out := make(map[[2]int][]CellException)
	attrs := store.Attrs()
	for i, a := range attrs {
		for _, b := range attrs[i+1:] {
			cube := store.Cube2(a, b)
			if cube == nil {
				continue
			}
			ex, err := ExploreCube(cube, opts)
			if err != nil {
				return nil, err
			}
			if len(ex) > 0 {
				out[[2]int{a, b}] = ex
			}
		}
	}
	return out, nil
}
