package discretize

import (
	"math"
	"math/rand"
	"sort"
	"strconv"
	"testing"
	"testing/quick"

	"opmap/internal/dataset"
)

func TestEqualWidthCuts(t *testing.T) {
	values := []float64{0, 10}
	cuts, err := EqualWidth{Bins: 5}.Cuts(values, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 4, 6, 8}
	if len(cuts) != len(want) {
		t.Fatalf("cuts = %v, want %v", cuts, want)
	}
	for i := range want {
		if math.Abs(cuts[i]-want[i]) > 1e-9 {
			t.Errorf("cut %d = %v, want %v", i, cuts[i], want[i])
		}
	}
}

func TestEqualWidthDegenerate(t *testing.T) {
	// Constant column → no cuts.
	cuts, err := EqualWidth{Bins: 4}.Cuts([]float64{3, 3, 3}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 0 {
		t.Errorf("constant column cuts = %v, want none", cuts)
	}
	// Only NaN → no cuts, no error.
	cuts, err = EqualWidth{Bins: 4}.Cuts([]float64{math.NaN()}, nil, 0)
	if err != nil || len(cuts) != 0 {
		t.Errorf("NaN-only column: cuts=%v err=%v", cuts, err)
	}
	if _, err := (EqualWidth{Bins: 0}).Cuts([]float64{1}, nil, 0); err == nil {
		t.Error("zero bins should fail")
	}
}

func TestEqualFrequencyCuts(t *testing.T) {
	values := make([]float64, 100)
	for i := range values {
		values[i] = float64(i)
	}
	cuts, err := EqualFrequency{Bins: 4}.Cuts(values, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 3 {
		t.Fatalf("cuts = %v, want 3 cuts", cuts)
	}
	// Each bin should get about 25 values.
	counts := make([]int, 4)
	for _, v := range values {
		counts[BinOf(cuts, v)]++
	}
	for i, c := range counts {
		if c < 20 || c > 30 {
			t.Errorf("bin %d holds %d values, want ≈25", i, c)
		}
	}
}

func TestEqualFrequencySkewed(t *testing.T) {
	// Heavily repeated values must not create duplicate or empty-tail cuts.
	values := []float64{1, 1, 1, 1, 1, 1, 1, 1, 2, 3}
	cuts, err := EqualFrequency{Bins: 4}.Cuts(values, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			t.Fatalf("cuts not strictly increasing: %v", cuts)
		}
	}
	if len(cuts) > 0 && cuts[len(cuts)-1] >= 3 {
		t.Errorf("trailing cut at the max creates an empty interval: %v", cuts)
	}
}

func TestManualCuts(t *testing.T) {
	cuts, err := Manual{Points: []float64{5, 1, 5, 3}}.Cuts(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 5}
	if len(cuts) != 3 {
		t.Fatalf("cuts = %v, want %v (sorted, deduped)", cuts, want)
	}
	for i := range want {
		if cuts[i] != want[i] {
			t.Errorf("cuts = %v, want %v", cuts, want)
		}
	}
	if _, err := (Manual{Points: []float64{math.NaN()}}).Cuts(nil, nil, 0); err == nil {
		t.Error("NaN cut should fail")
	}
}

func TestMDLPSeparatesClasses(t *testing.T) {
	// Values < 10 are class 0, values ≥ 10 are class 1: MDLP must place a
	// cut near 10 and no spurious ones.
	var values []float64
	var classes []int32
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			values = append(values, rng.Float64()*9)
			classes = append(classes, 0)
		} else {
			values = append(values, 10+rng.Float64()*9)
			classes = append(classes, 1)
		}
	}
	cuts, err := MDLP{}.Cuts(values, classes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 1 {
		t.Fatalf("cuts = %v, want exactly 1", cuts)
	}
	if cuts[0] < 9 || cuts[0] > 10 {
		t.Errorf("cut at %v, want within (9,10)", cuts[0])
	}
}

func TestMDLPNoSignalNoCuts(t *testing.T) {
	// Class independent of value: MDL must refuse to cut.
	var values []float64
	var classes []int32
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		values = append(values, rng.Float64()*100)
		classes = append(classes, int32(rng.Intn(2)))
	}
	cuts, err := MDLP{}.Cuts(values, classes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 0 {
		t.Errorf("noise column got cuts %v, want none", cuts)
	}
}

func TestMDLPThreeWay(t *testing.T) {
	// Three bands, three classes: expect 2 cuts.
	var values []float64
	var classes []int32
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		band := i % 3
		values = append(values, float64(band*20)+rng.Float64()*10)
		classes = append(classes, int32(band))
	}
	cuts, err := MDLP{}.Cuts(values, classes, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 2 {
		t.Fatalf("cuts = %v, want 2", cuts)
	}
}

func TestMDLPValidation(t *testing.T) {
	if _, err := (MDLP{}).Cuts([]float64{1}, []int32{0, 1}, 2); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := (MDLP{}).Cuts([]float64{1}, []int32{0}, 0); err == nil {
		t.Error("zero classes should fail")
	}
	// All-missing input: no cuts, no error.
	cuts, err := MDLP{}.Cuts([]float64{math.NaN()}, []int32{0}, 2)
	if err != nil || cuts != nil {
		t.Errorf("NaN-only: cuts=%v err=%v", cuts, err)
	}
}

func TestBinOf(t *testing.T) {
	cuts := []float64{2, 4, 6}
	cases := []struct {
		v    float64
		want int
	}{
		{1, 0}, {2, 0}, {2.5, 1}, {4, 1}, {5, 2}, {6, 2}, {7, 3},
	}
	for _, c := range cases {
		if got := BinOf(cuts, c.v); got != c.want {
			t.Errorf("BinOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	if BinOf(nil, 5) != 0 {
		t.Error("no cuts means bin 0")
	}
}

// Property: BinOf is monotone in its argument and always in range.
func TestBinOfMonotone(t *testing.T) {
	cuts := []float64{-3, 0, 1.5, 8}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		ba, bb := BinOf(cuts, a), BinOf(cuts, b)
		return ba <= bb && ba >= 0 && bb <= len(cuts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalLabel(t *testing.T) {
	cuts := []float64{2, 4}
	if l := IntervalLabel(cuts, 0); l != "(-inf,2]" {
		t.Errorf("bin 0 label = %q", l)
	}
	if l := IntervalLabel(cuts, 1); l != "(2,4]" {
		t.Errorf("bin 1 label = %q", l)
	}
	if l := IntervalLabel(cuts, 2); l != "(4,+inf)" {
		t.Errorf("bin 2 label = %q", l)
	}
	if l := IntervalLabel(nil, 0); l != "(-inf,+inf)" {
		t.Errorf("no-cuts label = %q", l)
	}
}

func mixedDataset(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	b, err := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "cat", Kind: dataset.Categorical},
			{Name: "x", Kind: dataset.Continuous},
			{Name: "class", Kind: dataset.Categorical},
		},
		ClassIndex: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		x := rng.Float64() * 20
		class := "lo"
		if x > 10 {
			class = "hi"
		}
		cat := "a"
		if i%3 == 0 {
			cat = "b"
		}
		var xs string
		if i%17 == 0 {
			xs = "?"
		} else {
			xs = trimFloat(x)
		}
		if err := b.AddRow([]string{cat, xs, class}); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func TestApplyMixedDataset(t *testing.T) {
	ds := mixedDataset(t, 500)
	out, cuts, err := Apply(ds, MDLP{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllCategorical() {
		t.Fatal("Apply must yield a fully categorical dataset")
	}
	if out.NumRows() != ds.NumRows() {
		t.Fatal("Apply changed row count")
	}
	xCuts := cuts["x"]
	if len(xCuts) != 1 || xCuts[0] < 9 || xCuts[0] > 11 {
		t.Errorf("x cuts = %v, want single cut near 10", xCuts)
	}
	// Categorical columns are untouched.
	xi := out.AttrIndex("cat")
	if out.Label(0, xi) != ds.Label(0, xi) {
		t.Error("categorical column changed")
	}
	// Missing continuous values stay missing.
	found := false
	xa := out.AttrIndex("x")
	for r := 0; r < out.NumRows(); r++ {
		if ds.Label(r, xa) == dataset.MissingLabel {
			found = true
			if out.Label(r, xa) != dataset.MissingLabel {
				t.Fatal("missing value gained a bin")
			}
		}
	}
	if !found {
		t.Fatal("test data should contain missing values")
	}
	// Interval dictionary is ordered: labels in bin order.
	labels := out.Column(xa).Dict.Labels()
	if len(labels) != len(xCuts)+1 {
		t.Errorf("got %d interval labels for %d cuts", len(labels), len(xCuts))
	}
}

func TestApplyPreservesOrdinalOrder(t *testing.T) {
	ds := mixedDataset(t, 300)
	out, cuts, err := Apply(ds, EqualWidth{Bins: 4})
	if err != nil {
		t.Fatal(err)
	}
	xa := out.AttrIndex("x")
	xCuts := cuts["x"]
	// Every row's bin code must equal BinOf(cuts, value).
	for r := 0; r < ds.NumRows(); r++ {
		v := ds.ContValue(r, xa)
		if math.IsNaN(v) {
			continue
		}
		want := int32(BinOf(xCuts, v))
		if got := out.CatCode(r, xa); got != want {
			t.Fatalf("row %d: bin %d, want %d", r, got, want)
		}
	}
}

func TestDiscretizerNames(t *testing.T) {
	for _, d := range []Discretizer{EqualWidth{Bins: 3}, EqualFrequency{Bins: 3}, Manual{}, MDLP{}} {
		if d.Name() == "" {
			t.Errorf("%T has empty name", d)
		}
	}
}

// Property: cuts from any strategy are strictly increasing.
func TestCutsStrictlyIncreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	values := make([]float64, 400)
	classes := make([]int32, 400)
	for i := range values {
		values[i] = rng.NormFloat64() * 10
		if values[i] > 2 {
			classes[i] = 1
		}
	}
	for _, d := range []Discretizer{EqualWidth{Bins: 7}, EqualFrequency{Bins: 7}, MDLP{}} {
		cuts, err := d.Cuts(values, classes, 2)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if !sort.Float64sAreSorted(cuts) {
			t.Errorf("%s: cuts not sorted: %v", d.Name(), cuts)
		}
		for i := 1; i < len(cuts); i++ {
			if cuts[i] == cuts[i-1] {
				t.Errorf("%s: duplicate cut %v", d.Name(), cuts[i])
			}
		}
	}
}
