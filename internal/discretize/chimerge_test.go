package discretize

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestChiMergeSeparatesClasses(t *testing.T) {
	// Two clean bands: a single cut near the boundary.
	var values []float64
	var classes []int32
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		if i%2 == 0 {
			values = append(values, rng.Float64()*10)
			classes = append(classes, 0)
		} else {
			values = append(values, 12+rng.Float64()*10)
			classes = append(classes, 1)
		}
	}
	cuts, err := ChiMerge{}.Cuts(values, classes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 1 {
		t.Fatalf("cuts = %v, want exactly 1", cuts)
	}
	if cuts[0] < 10 || cuts[0] > 12 {
		t.Errorf("cut at %v, want within (10,12)", cuts[0])
	}
}

func TestChiMergeNoSignalMergesHeavily(t *testing.T) {
	// Per-pair significance testing at 0.95 keeps a tail of spurious
	// boundaries on pure noise (ChiMerge's documented behaviour), but
	// the vast majority of the ~400 distinct values must merge away, and
	// a stricter threshold must merge strictly more.
	var values []float64
	var classes []int32
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 400; i++ {
		values = append(values, rng.Float64()*100)
		classes = append(classes, int32(rng.Intn(2)))
	}
	cuts95, err := ChiMerge{}.Cuts(values, classes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts95) > 80 {
		t.Errorf("noise kept %d of ~400 boundaries; merging broken", len(cuts95))
	}
	cuts999, err := ChiMerge{Threshold: 10.83}.Cuts(values, classes, 2) // 0.999 level
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts999) >= len(cuts95) {
		t.Errorf("stricter threshold kept %d cuts vs %d at 0.95", len(cuts999), len(cuts95))
	}
	// The practical configuration for noisy data: a hard cap.
	capped, err := ChiMerge{MaxIntervals: 6}.Cuts(values, classes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) > 5 {
		t.Errorf("MaxIntervals=6 kept %d cuts", len(capped))
	}
}

func TestChiMergeMaxIntervals(t *testing.T) {
	// Strong three-band signal, but the cap forces two intervals.
	var values []float64
	var classes []int32
	for i := 0; i < 300; i++ {
		band := i % 3
		values = append(values, float64(band*20)+float64(i%10))
		classes = append(classes, int32(band))
	}
	cuts, err := ChiMerge{MaxIntervals: 2}.Cuts(values, classes, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) > 1 {
		t.Errorf("MaxIntervals=2 produced %d cuts", len(cuts))
	}
}

func TestChiMergeMinIntervals(t *testing.T) {
	// MinIntervals keeps boundaries even in pure noise.
	var values []float64
	var classes []int32
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		values = append(values, rng.Float64()*50)
		classes = append(classes, int32(rng.Intn(2)))
	}
	cuts, err := ChiMerge{MinIntervals: 4, Threshold: 1e12}.Cuts(values, classes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 3 {
		t.Errorf("MinIntervals=4 yielded %d cuts, want 3", len(cuts))
	}
}

func TestChiMergeValidation(t *testing.T) {
	if _, err := (ChiMerge{}).Cuts([]float64{1}, []int32{0, 1}, 2); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := (ChiMerge{}).Cuts([]float64{1}, []int32{0}, 0); err == nil {
		t.Error("zero classes should fail")
	}
	cuts, err := ChiMerge{}.Cuts(nil, nil, 2)
	if err != nil || cuts != nil {
		t.Errorf("empty input: cuts=%v err=%v", cuts, err)
	}
}

func TestChiMergeSortedStrict(t *testing.T) {
	var values []float64
	var classes []int32
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		v := rng.NormFloat64() * 5
		values = append(values, v)
		if v > 0 {
			classes = append(classes, 1)
		} else {
			classes = append(classes, 0)
		}
	}
	cuts, err := ChiMerge{}.Cuts(values, classes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(cuts) {
		t.Errorf("cuts not sorted: %v", cuts)
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] == cuts[i-1] {
			t.Errorf("duplicate cut %v", cuts[i])
		}
	}
}

func TestChiMergeManyClassesThreshold(t *testing.T) {
	// df > 10 exercises the Wilson–Hilferty fallback; just assert it
	// runs and produces sane cuts.
	var values []float64
	var classes []int32
	for i := 0; i < 600; i++ {
		band := i % 12
		values = append(values, float64(band)+0.1*float64(i%7))
		classes = append(classes, int32(band))
	}
	cuts, err := ChiMerge{}.Cuts(values, classes, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) == 0 {
		t.Error("strong 12-class signal should keep cuts")
	}
}

func TestPairChi2(t *testing.T) {
	// Identical distributions → 0.
	if chi := pairChi2([]int64{10, 10}, []int64{20, 20}); chi != 0 {
		t.Errorf("identical distributions chi = %v", chi)
	}
	// Disjoint classes → large.
	if chi := pairChi2([]int64{20, 0}, []int64{0, 20}); chi < 10 {
		t.Errorf("disjoint distributions chi = %v", chi)
	}
	if chi := pairChi2([]int64{0, 0}, []int64{0, 0}); chi != 0 {
		t.Errorf("empty pair chi = %v", chi)
	}
}

func TestChiMergePrebinsHighCardinality(t *testing.T) {
	// 20k distinct values must complete quickly (the merge loop is
	// quadratic without pre-binning) and still find the planted boundary.
	var values []float64
	var classes []int32
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		v := rng.Float64() * 100
		values = append(values, v)
		if v > 50 {
			classes = append(classes, 1)
		} else {
			classes = append(classes, 0)
		}
	}
	start := time.Now()
	cuts, err := ChiMerge{}.Cuts(values, classes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("high-cardinality ChiMerge took %v; pre-binning broken", elapsed)
	}
	if len(cuts) == 0 {
		t.Fatal("no cuts on cleanly separated data")
	}
	found := false
	for _, c := range cuts {
		if c > 49 && c < 51 {
			found = true
		}
	}
	if !found {
		t.Errorf("no cut near the planted boundary 50: %v", cuts)
	}
}

func TestPrebinPreservesTotals(t *testing.T) {
	ivs := []cmInterval{
		{lo: 1, hi: 1, counts: []int64{3, 1}},
		{lo: 2, hi: 2, counts: []int64{2, 2}},
		{lo: 3, hi: 3, counts: []int64{0, 4}},
		{lo: 4, hi: 4, counts: []int64{1, 1}},
		{lo: 5, hi: 5, counts: []int64{5, 0}},
	}
	out := prebin(ivs, 2, 2)
	if len(out) > 3 {
		t.Errorf("prebin kept %d intervals for target 2", len(out))
	}
	var wantA, wantB, gotA, gotB int64
	for _, iv := range ivs {
		wantA += iv.counts[0]
		wantB += iv.counts[1]
	}
	for _, iv := range out {
		gotA += iv.counts[0]
		gotB += iv.counts[1]
	}
	if gotA != wantA || gotB != wantB {
		t.Errorf("prebin lost counts: (%d,%d) vs (%d,%d)", gotA, gotB, wantA, wantB)
	}
	// Ranges nest: first lo and last hi preserved.
	if out[0].lo != 1 || out[len(out)-1].hi != 5 {
		t.Error("prebin broke the value range")
	}
}
