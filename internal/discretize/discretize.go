// Package discretize converts continuous attributes into categorical
// interval attributes, the first stage of the Opportunity Map pipeline
// (Section V.A: "Given a data set, all continuous attributes are first
// discretized using the discretizer (a manual discretization option is
// also available)").
//
// Four strategies are provided: equal-width binning, equal-frequency
// binning, the supervised entropy-MDLP method of Fayyad & Irani (the
// usual default for class association rule mining), and manual cut
// points.
package discretize

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"opmap/internal/dataset"
	"opmap/internal/stats"
)

// Discretizer computes cut points for one continuous attribute.
// values[i] pairs with classes[i]; NaN values are skipped. The returned
// cuts are strictly increasing interior boundaries: k cuts produce k+1
// intervals (-inf, c0], (c0, c1], ..., (ck-1, +inf).
type Discretizer interface {
	Cuts(values []float64, classes []int32, numClasses int) ([]float64, error)
	Name() string
}

// EqualWidth divides the observed range into Bins equal-width intervals.
type EqualWidth struct {
	Bins int
}

// Name implements Discretizer.
func (e EqualWidth) Name() string { return fmt.Sprintf("equal-width(%d)", e.Bins) }

// Cuts implements Discretizer.
func (e EqualWidth) Cuts(values []float64, _ []int32, _ int) ([]float64, error) {
	if e.Bins < 1 {
		return nil, fmt.Errorf("discretize: equal-width needs at least 1 bin, got %d", e.Bins)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo > hi { // no non-missing values
		return nil, nil
	}
	if stats.SameValue(lo, hi) || e.Bins == 1 {
		return nil, nil
	}
	width := (hi - lo) / float64(e.Bins)
	cuts := make([]float64, 0, e.Bins-1)
	for i := 1; i < e.Bins; i++ {
		c := lo + width*float64(i)
		if len(cuts) == 0 || c > cuts[len(cuts)-1] {
			cuts = append(cuts, c)
		}
	}
	return cuts, nil
}

// EqualFrequency divides the data into Bins intervals holding roughly
// equal record counts (quantile binning).
type EqualFrequency struct {
	Bins int
}

// Name implements Discretizer.
func (e EqualFrequency) Name() string { return fmt.Sprintf("equal-frequency(%d)", e.Bins) }

// Cuts implements Discretizer.
func (e EqualFrequency) Cuts(values []float64, _ []int32, _ int) ([]float64, error) {
	if e.Bins < 1 {
		return nil, fmt.Errorf("discretize: equal-frequency needs at least 1 bin, got %d", e.Bins)
	}
	clean := make([]float64, 0, len(values))
	for _, v := range values {
		if !math.IsNaN(v) {
			clean = append(clean, v)
		}
	}
	if len(clean) == 0 || e.Bins == 1 {
		return nil, nil
	}
	sort.Float64s(clean)
	cuts := make([]float64, 0, e.Bins-1)
	for i := 1; i < e.Bins; i++ {
		pos := float64(i) * float64(len(clean)) / float64(e.Bins)
		idx := int(pos)
		if idx >= len(clean) {
			idx = len(clean) - 1
		}
		c := clean[idx]
		if len(cuts) == 0 || c > cuts[len(cuts)-1] {
			cuts = append(cuts, c)
		}
	}
	// Drop a trailing cut equal to the maximum, which would create an
	// empty last interval.
	for len(cuts) > 0 && cuts[len(cuts)-1] >= clean[len(clean)-1] {
		cuts = cuts[:len(cuts)-1]
	}
	return cuts, nil
}

// Manual uses caller-provided cut points (the paper's manual option).
type Manual struct {
	Points []float64
}

// Name implements Discretizer.
func (m Manual) Name() string { return fmt.Sprintf("manual(%d cuts)", len(m.Points)) }

// Cuts implements Discretizer.
func (m Manual) Cuts(_ []float64, _ []int32, _ int) ([]float64, error) {
	cuts := append([]float64(nil), m.Points...)
	sort.Float64s(cuts)
	// Deduplicate.
	out := cuts[:0]
	for i, c := range cuts {
		if math.IsNaN(c) {
			return nil, fmt.Errorf("discretize: manual cut point is NaN")
		}
		if i == 0 || !stats.SameValue(c, cuts[i-1]) {
			out = append(out, c)
		}
	}
	return out, nil
}

// MDLP is the supervised entropy-minimization discretizer of Fayyad &
// Irani (1993) with the minimum-description-length stopping criterion.
// It recursively picks the boundary that minimizes the class-entropy of
// the induced partition and stops when the information gain no longer
// pays for the partition's description length.
type MDLP struct {
	// MaxDepth bounds recursion (and thus intervals ≤ 2^MaxDepth).
	// Zero means 16.
	MaxDepth int
	// MinIntervalSize is the minimum number of records per interval.
	// Zero means 1.
	MinIntervalSize int
}

// Name implements Discretizer.
func (MDLP) Name() string { return "entropy-mdlp" }

type labeledValue struct {
	v float64
	c int32
}

// Cuts implements Discretizer.
func (m MDLP) Cuts(values []float64, classes []int32, numClasses int) ([]float64, error) {
	if len(values) != len(classes) {
		return nil, fmt.Errorf("discretize: %d values but %d class labels", len(values), len(classes))
	}
	if numClasses < 1 {
		return nil, fmt.Errorf("discretize: numClasses must be positive, got %d", numClasses)
	}
	pairs := make([]labeledValue, 0, len(values))
	for i, v := range values {
		if math.IsNaN(v) || classes[i] < 0 {
			continue
		}
		pairs = append(pairs, labeledValue{v, classes[i]})
	}
	if len(pairs) == 0 {
		return nil, nil
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })

	maxDepth := m.MaxDepth
	if maxDepth == 0 {
		maxDepth = 16
	}
	minSize := m.MinIntervalSize
	if minSize == 0 {
		minSize = 1
	}

	var cuts []float64
	m.split(pairs, numClasses, maxDepth, minSize, &cuts)
	sort.Float64s(cuts)
	return cuts, nil
}

// split recursively partitions pairs (sorted by value) and appends
// accepted cut points.
func (m MDLP) split(pairs []labeledValue, numClasses, depth, minSize int, cuts *[]float64) {
	if depth <= 0 || len(pairs) < 2*minSize {
		return
	}
	total := classCounts(pairs, numClasses)
	baseEnt := entropyOf(total)
	if stats.IsZero(baseEnt) {
		return // pure node
	}
	n := float64(len(pairs))

	bestIdx := -1
	bestEnt := math.Inf(1)
	left := make([]int64, numClasses)
	right := append([]int64(nil), total...)
	for i := 0; i < len(pairs)-1; i++ {
		c := pairs[i].c
		left[c]++
		right[c]--
		// Candidate boundaries lie between distinct adjacent values only.
		if stats.SameValue(pairs[i].v, pairs[i+1].v) {
			continue
		}
		nl := float64(i + 1)
		nr := n - nl
		if int(nl) < minSize || int(nr) < minSize {
			continue
		}
		ent := nl/n*entropyOf(left) + nr/n*entropyOf(right)
		if ent < bestEnt {
			bestEnt = ent
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return
	}

	// MDL acceptance criterion (Fayyad & Irani 1993).
	gain := baseEnt - bestEnt
	leftPart := pairs[:bestIdx+1]
	rightPart := pairs[bestIdx+1:]
	k := liveClasses(classCounts(pairs, numClasses))
	k1 := liveClasses(classCounts(leftPart, numClasses))
	k2 := liveClasses(classCounts(rightPart, numClasses))
	entL := entropyOf(classCounts(leftPart, numClasses))
	entR := entropyOf(classCounts(rightPart, numClasses))
	delta := math.Log2(math.Pow(3, float64(k))-2) - (float64(k)*baseEnt - float64(k1)*entL - float64(k2)*entR)
	threshold := (math.Log2(n-1) + delta) / n
	if gain <= threshold {
		return
	}

	cut := (pairs[bestIdx].v + pairs[bestIdx+1].v) / 2
	*cuts = append(*cuts, cut)
	m.split(leftPart, numClasses, depth-1, minSize, cuts)
	m.split(rightPart, numClasses, depth-1, minSize, cuts)
}

func classCounts(pairs []labeledValue, numClasses int) []int64 {
	counts := make([]int64, numClasses)
	for _, p := range pairs {
		counts[p.c]++
	}
	return counts
}

func liveClasses(counts []int64) int {
	k := 0
	for _, c := range counts {
		if c > 0 {
			k++
		}
	}
	return k
}

func entropyOf(counts []int64) float64 {
	var total float64
	for _, c := range counts {
		total += float64(c)
	}
	if stats.IsZero(total) {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / total
		h -= p * math.Log2(p)
	}
	return h
}

// IntervalLabel formats the half-open interval a value in bin i of the
// given cuts belongs to, e.g. "(-inf,3.5]", "(3.5,7]", "(7,+inf)".
func IntervalLabel(cuts []float64, bin int) string {
	format := func(f float64) string { return strconv.FormatFloat(f, 'g', 6, 64) }
	switch {
	case len(cuts) == 0:
		return "(-inf,+inf)"
	case bin <= 0:
		return "(-inf," + format(cuts[0]) + "]"
	case bin >= len(cuts):
		return "(" + format(cuts[len(cuts)-1]) + ",+inf)"
	default:
		return "(" + format(cuts[bin-1]) + "," + format(cuts[bin]) + "]"
	}
}

// BinOf returns the bin index of v for the given sorted cuts:
// bin i covers (cuts[i-1], cuts[i]].
func BinOf(cuts []float64, v float64) int {
	// Binary search for the first cut >= v.
	lo, hi := 0, len(cuts)
	for lo < hi {
		mid := (lo + hi) / 2
		if cuts[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Apply discretizes every continuous attribute of ds using d and returns
// a fully categorical dataset. Interval labels become the dictionary of
// each discretized attribute, in ascending interval order, so ordinal
// structure (used by the trend miner) is preserved. The mapping of each
// attribute is returned for reporting.
func Apply(ds *dataset.Dataset, d Discretizer) (*dataset.Dataset, map[string][]float64, error) {
	schema := ds.Schema()
	outAttrs := make([]dataset.Attribute, len(schema.Attrs))
	for i, a := range schema.Attrs {
		outAttrs[i] = dataset.Attribute{Name: a.Name, Kind: dataset.Categorical}
	}
	b, err := dataset.NewBuilder(dataset.Schema{Attrs: outAttrs, ClassIndex: schema.ClassIndex})
	if err != nil {
		return nil, nil, err
	}

	classes := make([]int32, ds.NumRows())
	for r := range classes {
		classes[r] = ds.ClassCode(r)
	}

	cutsByAttr := make(map[string][]float64)
	colCuts := make([][]float64, ds.NumAttrs())
	for i := 0; i < ds.NumAttrs(); i++ {
		col := ds.Column(i)
		if col.Kind == dataset.Categorical {
			b.WithDict(i, col.Dict.Clone())
			continue
		}
		cuts, err := d.Cuts(col.Values, classes, ds.NumClasses())
		if err != nil {
			return nil, nil, fmt.Errorf("discretize: attribute %q: %w", schema.Attrs[i].Name, err)
		}
		colCuts[i] = cuts
		cutsByAttr[schema.Attrs[i].Name] = cuts
		dict := dataset.NewDictionary()
		for bin := 0; bin <= len(cuts); bin++ {
			dict.Code(IntervalLabel(cuts, bin))
		}
		b.WithDict(i, dict)
	}

	codes := make([]int32, ds.NumAttrs())
	for r := 0; r < ds.NumRows(); r++ {
		for i := 0; i < ds.NumAttrs(); i++ {
			col := ds.Column(i)
			if col.Kind == dataset.Categorical {
				codes[i] = col.Codes[r]
				continue
			}
			v := col.Values[r]
			if math.IsNaN(v) {
				codes[i] = dataset.Missing
				continue
			}
			codes[i] = int32(BinOf(colCuts[i], v))
		}
		if err := b.AddCodedRow(codes, nil); err != nil {
			return nil, nil, err
		}
	}
	out, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return out, cutsByAttr, nil
}
