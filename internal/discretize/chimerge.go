package discretize

import (
	"fmt"
	"math"
	"sort"

	"opmap/internal/stats"
)

// ChiMerge is Kerber's (1992) bottom-up supervised discretizer: start
// with one interval per distinct value and repeatedly merge the adjacent
// pair whose class distributions are most similar (lowest chi-square),
// until every adjacent pair differs significantly or the interval budget
// is reached. It complements MDLP: top-down entropy splitting can miss
// boundaries that bottom-up merging preserves, and ChiMerge gives direct
// control over the significance threshold.
type ChiMerge struct {
	// Threshold is the chi-square value below which adjacent intervals
	// merge. Zero means the 0.95 critical value for the data's
	// (numClasses−1) degrees of freedom.
	Threshold float64
	// MaxIntervals caps the result; merging continues past the threshold
	// until the cap is met. Zero means no cap.
	MaxIntervals int
	// MinIntervals stops merging when reached even if pairs remain
	// insignificant. Zero means 1.
	MinIntervals int
	// MaxInitialIntervals pre-bins high-cardinality continuous columns
	// into at most this many quantile groups before merging (identical
	// values are never split). The merge loop is quadratic in the
	// initial interval count, so unbounded distinct values make raw
	// ChiMerge impractical; pre-binning is the standard remedy. Zero
	// means 512.
	MaxInitialIntervals int
}

// Name implements Discretizer.
func (c ChiMerge) Name() string { return "chimerge" }

// chi2Critical95 holds upper-tail 0.95 critical values of the
// chi-square distribution for df = 1..10 (Kerber's default level).
var chi2Critical95 = []float64{
	3.841, 5.991, 7.815, 9.488, 11.070, 12.592, 14.067, 15.507, 16.919, 18.307,
}

type cmInterval struct {
	lo, hi float64 // value range covered (inclusive)
	counts []int64 // class counts
}

// Cuts implements Discretizer.
func (c ChiMerge) Cuts(values []float64, classes []int32, numClasses int) ([]float64, error) {
	if len(values) != len(classes) {
		return nil, fmt.Errorf("discretize: %d values but %d class labels", len(values), len(classes))
	}
	if numClasses < 1 {
		return nil, fmt.Errorf("discretize: numClasses must be positive, got %d", numClasses)
	}
	minIv := c.MinIntervals
	if minIv < 1 {
		minIv = 1
	}
	threshold := c.Threshold
	if stats.IsZero(threshold) {
		df := numClasses - 1
		if df < 1 {
			df = 1
		}
		if df <= len(chi2Critical95) {
			threshold = chi2Critical95[df-1]
		} else {
			// Wilson–Hilferty approximation of the 0.95 quantile.
			k := float64(df)
			threshold = k * math.Pow(1-2/(9*k)+1.645*math.Sqrt(2/(9*k)), 3)
		}
	}

	// Group by distinct value.
	type pt struct {
		v float64
		c int32
	}
	pts := make([]pt, 0, len(values))
	for i, v := range values {
		if math.IsNaN(v) || classes[i] < 0 {
			continue
		}
		pts = append(pts, pt{v, classes[i]})
	}
	if len(pts) == 0 {
		return nil, nil
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].v < pts[j].v })

	var ivs []cmInterval
	for _, p := range pts {
		if len(ivs) > 0 && stats.SameValue(ivs[len(ivs)-1].hi, p.v) {
			ivs[len(ivs)-1].counts[p.c]++
			continue
		}
		counts := make([]int64, numClasses)
		counts[p.c]++
		ivs = append(ivs, cmInterval{lo: p.v, hi: p.v, counts: counts})
	}

	// Pre-bin high-cardinality columns: the merge loop below is
	// quadratic in len(ivs).
	maxInit := c.MaxInitialIntervals
	if maxInit == 0 {
		maxInit = 512
	}
	if maxInit > 1 && len(ivs) > maxInit {
		ivs = prebin(ivs, maxInit, numClasses)
	}

	// Merge until done, keeping per-pair chi values cached; each merge
	// invalidates only the two pairs touching the merged interval.
	chis := make([]float64, 0, len(ivs))
	for i := 0; i+1 < len(ivs); i++ {
		chis = append(chis, pairChi2(ivs[i].counts, ivs[i+1].counts))
	}
	for len(ivs) > minIv && len(chis) > 0 {
		bestIdx, bestChi := 0, chis[0]
		for i := 1; i < len(chis); i++ {
			if chis[i] < bestChi {
				bestChi = chis[i]
				bestIdx = i
			}
		}
		overCap := c.MaxIntervals > 0 && len(ivs) > c.MaxIntervals
		if bestChi >= threshold && !overCap {
			break // every adjacent pair differs significantly
		}
		merged := cmInterval{
			lo:     ivs[bestIdx].lo,
			hi:     ivs[bestIdx+1].hi,
			counts: make([]int64, numClasses),
		}
		for k := 0; k < numClasses; k++ {
			merged.counts[k] = ivs[bestIdx].counts[k] + ivs[bestIdx+1].counts[k]
		}
		ivs[bestIdx] = merged
		ivs = append(ivs[:bestIdx+1], ivs[bestIdx+2:]...)
		chis = append(chis[:bestIdx], chis[bestIdx+1:]...)
		if bestIdx > 0 {
			chis[bestIdx-1] = pairChi2(ivs[bestIdx-1].counts, ivs[bestIdx].counts)
		}
		if bestIdx < len(chis) {
			chis[bestIdx] = pairChi2(ivs[bestIdx].counts, ivs[bestIdx+1].counts)
		}
	}

	cuts := make([]float64, 0, len(ivs)-1)
	for i := 0; i+1 < len(ivs); i++ {
		cuts = append(cuts, (ivs[i].hi+ivs[i+1].lo)/2)
	}
	return cuts, nil
}

// prebin coalesces value-level intervals into about target quantile
// groups of roughly equal record counts, never splitting a distinct
// value (intervals are whole units).
func prebin(ivs []cmInterval, target, numClasses int) []cmInterval {
	var total int64
	for _, iv := range ivs {
		for _, n := range iv.counts {
			total += n
		}
	}
	per := total / int64(target)
	if per < 1 {
		per = 1
	}
	out := make([]cmInterval, 0, target)
	var cur cmInterval
	var curN int64
	open := false
	for _, iv := range ivs {
		var n int64
		for _, c := range iv.counts {
			n += c
		}
		if !open {
			cur = cmInterval{lo: iv.lo, hi: iv.hi, counts: append([]int64(nil), iv.counts...)}
			curN = n
			open = true
		} else {
			cur.hi = iv.hi
			for k := 0; k < numClasses; k++ {
				cur.counts[k] += iv.counts[k]
			}
			curN += n
		}
		if curN >= per {
			out = append(out, cur)
			open = false
		}
	}
	if open {
		out = append(out, cur)
	}
	return out
}

// pairChi2 is the chi-square statistic of a 2×k table formed by two
// adjacent intervals' class counts, with Kerber's convention that empty
// expected cells contribute via a small epsilon.
func pairChi2(a, b []int64) float64 {
	k := len(a)
	rowA, rowB := int64(0), int64(0)
	col := make([]int64, k)
	for j := 0; j < k; j++ {
		rowA += a[j]
		rowB += b[j]
		col[j] = a[j] + b[j]
	}
	total := rowA + rowB
	if total == 0 {
		return 0
	}
	var chi float64
	for j := 0; j < k; j++ {
		if col[j] == 0 {
			continue
		}
		ea := float64(rowA) * float64(col[j]) / float64(total)
		eb := float64(rowB) * float64(col[j]) / float64(total)
		if ea > 0 {
			d := float64(a[j]) - ea
			chi += d * d / ea
		}
		if eb > 0 {
			d := float64(b[j]) - eb
			chi += d * d / eb
		}
	}
	return chi
}
