// Package bad exercises exhaustive: enum switches that miss members
// without failing loudly.
package bad

// Kind is a project-style enum: a named integer type with its
// package-level constant set.
type Kind uint8

const (
	Alpha Kind = iota
	Beta
	Gamma
)

// Name misses Gamma and has no default at all.
func Name(k Kind) string {
	switch k { // want `switch over Kind does not cover Gamma`
	case Alpha:
		return "alpha"
	case Beta:
		return "beta"
	}
	return ""
}

// Describe misses Gamma behind a default that silently falls through.
func Describe(k Kind) string {
	out := ""
	switch k { // want `missing Gamma and its default clause neither returns an error nor panics`
	case Alpha:
		out = "alpha"
	case Beta:
		out = "beta"
	default:
		out = "?"
	}
	return out
}

// Mode is a string-backed enum; the rule is the same.
type Mode string

const (
	Eager Mode = "eager"
	Lazy  Mode = "lazy"
)

// Pick misses Lazy.
func Pick(m Mode) int {
	switch m { // want `switch over Mode does not cover Lazy`
	case Eager:
		return 1
	}
	return 0
}
