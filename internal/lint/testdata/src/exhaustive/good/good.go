// Package good exercises exhaustive: every enum switch covers the set
// or fails loudly.
package good

import "errors"

// Kind is a project-style enum.
type Kind uint8

const (
	Alpha Kind = iota
	Beta
	Gamma
)

// Name covers every member.
func Name(k Kind) string {
	switch k {
	case Alpha:
		return "alpha"
	case Beta:
		return "beta"
	case Gamma:
		return "gamma"
	}
	return ""
}

// Parse misses Gamma but its default returns an error, so adding a
// member cannot silently fall through.
func Parse(k Kind) (string, error) {
	switch k {
	case Alpha:
		return "alpha", nil
	case Beta:
		return "beta", nil
	default:
		return "", errors.New("unknown kind")
	}
}

// Must misses Gamma but panics on anything else.
func Must(k Kind) string {
	switch k {
	case Alpha:
		return "alpha"
	case Beta:
		return "beta"
	default:
		panic("unknown kind")
	}
}

// single has one constant, below the enum threshold.
type single uint8

const only single = 0

// One switches over a non-enum; not checked.
func One(s single) bool {
	switch s {
	case only:
		return true
	}
	return false
}

// Tagless switches are flow control, not enum dispatch.
func Tagless(n int) string {
	switch {
	case n > 0:
		return "pos"
	default:
		return "other"
	}
}
