// Package good draws random numbers only from explicitly seeded
// sources, which the seededrand analyzer must accept.
package good

import "math/rand"

// Draw uses an explicit seeded source; the constructors and the
// methods on the returned *rand.Rand are all allowed.
func Draw(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Indices builds a deterministic permutation from a seeded source.
func Indices(seed int64, n int) []int {
	r := rand.New(rand.NewSource(seed))
	return r.Perm(n)
}
