// Package bad exercises the seededrand analyzer: draws from the
// process-global math/rand source make runs irreproducible.
package bad

import "math/rand"

// Jitter draws from the global source.
func Jitter() float64 {
	return rand.Float64() // want `call to global math/rand.Float64`
}

// Pick selects an index using the global source.
func Pick(n int) int {
	return rand.Intn(n) // want `call to global math/rand.Intn`
}

// Shuffle permutes indices using the global source.
func Shuffle(n int, swap func(i, j int)) {
	rand.Shuffle(n, swap) // want `call to global math/rand.Shuffle`
}
