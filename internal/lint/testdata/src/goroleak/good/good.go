// Package good exercises goroleak: every goroutine is tied to a
// WaitGroup, a channel, or a context.
package good

import (
	"context"
	"sync"
)

var counter int

// WaitGrouped goroutines signal completion through wg.Done.
func WaitGrouped(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			counter++
		}()
	}
	wg.Wait()
}

// ChannelSend goroutines hand their result to the spawner.
func ChannelSend() int {
	out := make(chan int)
	go func() {
		out <- 42
	}()
	return <-out
}

// Closer goroutines that close a channel announce completion.
func Closer(items []int) <-chan int {
	out := make(chan int, len(items))
	go func() {
		defer close(out)
		for _, v := range items {
			out <- v
		}
	}()
	return out
}

// CtxBound goroutines watch their context.
func CtxBound(ctx context.Context) {
	go func() {
		<-ctx.Done()
		counter++
	}()
}

// NamedWithCtx passes the context to the callee, which owns the
// tether.
func NamedWithCtx(ctx context.Context) {
	go run(ctx)
}

func run(ctx context.Context) { <-ctx.Done() }

// NamedWithChan passes a channel to the callee.
func NamedWithChan() <-chan int {
	out := make(chan int, 1)
	go produce(out)
	return out
}

func produce(out chan<- int) { out <- 1 }
