// Package bad exercises goroleak: goroutines with no visible
// completion tether.
package bad

var counter int

func work() { counter++ }

// Fire spawns a literal that touches no channel, context or WaitGroup.
func Fire() {
	go func() { // want `goroutine has no visible completion tether`
		counter++
	}()
}

// FireNamed spawns a named function with no tether-carrying argument.
func FireNamed() {
	go work() // want `goroutine has no visible completion tether`
}

// FireLoop leaks one goroutine per element.
func FireLoop(n int) {
	for i := 0; i < n; i++ {
		go func(v int) { // want `goroutine has no visible completion tether`
			counter += v
		}(i)
	}
}
