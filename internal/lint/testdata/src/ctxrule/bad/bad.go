// Package bad exercises every ctxrule violation: a context stored in
// a struct field, and context parameters that are not first, in plain
// functions, methods, function literals, interface methods and
// func-typed declarations.
package bad

import "context"

// Job stores a context across calls.
type Job struct {
	ctx  context.Context // want `context\.Context stored in a struct field`
	name string
}

// Run consumes the fields so the struct compiles without vet noise.
func (j Job) Run() (string, error) { return j.name, j.ctx.Err() }

// Second takes its context after another parameter.
func Second(name string, ctx context.Context) error { // want `context\.Context must be the first parameter`
	_ = name
	return ctx.Err()
}

// Method has the same flaw on a method.
func (j Job) Method(n int, ctx context.Context) error { // want `context\.Context must be the first parameter`
	_ = n
	return ctx.Err()
}

// literal is a function literal with a trailing context.
var literal = func(n int, ctx context.Context) error { // want `context\.Context must be the first parameter`
	_ = n
	return ctx.Err()
}

// Runner declares an interface method with a trailing context.
type Runner interface {
	Run(name string, ctx context.Context) error // want `context\.Context must be the first parameter`
}

// Callback is a func type with a trailing context.
type Callback func(n int, ctx context.Context) error // want `context\.Context must be the first parameter`
