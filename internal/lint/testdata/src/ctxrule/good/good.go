// Package good holds context usage the ctxrule analyzer must accept:
// context first (or absent), passed down call chains rather than
// stored.
package good

import "context"

// First takes the context in the conventional position.
func First(ctx context.Context, name string) error {
	_ = name
	return ctx.Err()
}

// Only takes nothing but a context.
func Only(ctx context.Context) error { return ctx.Err() }

// NoContext takes no context at all.
func NoContext(a, b int) int { return a + b }

// Runner declares interface methods with the context first.
type Runner interface {
	Run(ctx context.Context, name string) error
}

// Callback is a func type with the context first.
type Callback func(ctx context.Context, n int) error

// literal is a function literal with the context first.
var literal = func(ctx context.Context, n int) error {
	_ = n
	return ctx.Err()
}

// Config is a struct that carries plain data, not a context.
type Config struct {
	Name  string
	Count int
}

// Apply threads the context through instead of storing it.
func (c Config) Apply(ctx context.Context) error {
	_ = c.Name
	return ctx.Err()
}
