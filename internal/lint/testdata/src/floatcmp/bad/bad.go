// Package bad exercises the floatcmp analyzer: every float equality
// here must be flagged.
package bad

// Confidences compares raw confidences directly, the pattern the
// analyzer exists to forbid.
func Confidences(cf1, cf2 float64) bool {
	if cf1 == cf2 { // want `floating-point == comparison`
		return true
	}
	return cf1 != cf2 // want `floating-point != comparison`
}

// Mixed compares a float32 against an untyped constant; the constant
// side is also float-typed, so this is still a float comparison.
func Mixed(x float32) bool {
	return x == 0 // want `floating-point == comparison`
}

// Score is a named float type; the underlying type is what matters.
type Score float64

// SameScore compares two named-float values.
func SameScore(a, b Score) bool {
	return a == b // want `floating-point == comparison`
}
