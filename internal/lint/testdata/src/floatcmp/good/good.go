// Package good holds float handling the floatcmp analyzer must accept.
package good

// Threshold uses an ordering comparison, which is fine.
func Threshold(a, b float64) bool {
	return a > b
}

// Counts compares integers; equality on integer counts is the
// recommended replacement for comparing derived ratios.
func Counts(a, b int64) bool {
	return a == b
}

// Tristate orders floats for sorting with a three-way switch instead
// of an equality test.
func Tristate(a, b float64) int {
	switch {
	case a > b:
		return 1
	case b > a:
		return -1
	}
	return 0
}
