// Package bad exercises errclose: dropped Close/Sync/Flush errors on
// write paths.
package bad

import (
	"bufio"
	"encoding/csv"
	"os"
)

// Export drops both the Sync and Close errors of a created file.
func Export(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	f.Sync()  // want `f\.Sync error is dropped on a write path`
	f.Close() // want `f\.Close error is dropped on a write path`
	return nil
}

// DeferClose drops the Close error in a defer on an os.OpenFile
// write handle.
func DeferClose(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() // want `f\.Close error is dropped on a write path`
	_, err = f.Write(data)
	return err
}

// Buffered drops the bufio.Writer Flush error, where buffered bytes
// actually reach the file.
func Buffered(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if _, err := bw.Write(data); err != nil {
		return err
	}
	bw.Flush() // want `bw\.Flush error is dropped on a write path`
	return f.Close()
}

// Records flushes a csv.Writer without ever consulting its Error.
func Records(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(f)
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush() // want `csv\.Writer\.Flush buffers write errors`
	return f.Close()
}

// Closure drops the Close error of a handle captured from the
// enclosing function.
func Closure(path string) error {
	f, err := os.CreateTemp("", path)
	if err != nil {
		return err
	}
	cleanup := func() {
		f.Close() // want `f\.Close error is dropped on a write path`
	}
	defer cleanup()
	_, err = f.WriteString("x")
	return err
}
