// Package good exercises errclose: finalizer errors checked, handed
// to the caller, or explicitly discarded.
package good

import (
	"bufio"
	"encoding/csv"
	"os"
)

// Export checks every finalizer error on the write path.
func Export(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// Buffered returns the Flush error directly.
func Buffered(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if _, err := bw.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// Records consults csv.Writer.Error after the flush, which is where
// the csv package surfaces buffered write failures.
func Records(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(f)
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			_ = f.Close()
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// ReadPath closes a read-only handle; a failed close after a
// successful read loses nothing, so the bare defer is fine.
func ReadPath(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// Discard explicitly throws the error away, which the analyzer reads
// as a reviewed decision.
func Discard(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, werr := f.WriteString("x")
	_ = f.Close()
	return werr
}
