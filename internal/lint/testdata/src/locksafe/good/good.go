// Package good uses lock-containing structs only through pointers and
// in-place construction; the locksafe analyzer must stay silent.
package good

import "sync"

// Counter guards its count with a mutex.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Inc locks through a pointer receiver.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// NewCounter constructs a fresh value; a composite literal is a
// creation, not a copy of a live lock.
func NewCounter() *Counter {
	c := Counter{}
	return &c
}

// Drain iterates by index, never copying an element.
func Drain(cs []*Counter) int {
	total := 0
	for i := range cs {
		total += cs[i].n
	}
	return total
}

// Observe takes the counter by pointer.
func Observe(c *Counter) int {
	return c.n
}
