// Package bad exercises the locksafe analyzer: every construct here
// copies a struct that contains a sync lock.
package bad

import "sync"

// Counter guards its count with a mutex.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Registry embeds an RWMutex protecting m.
type Registry struct {
	sync.RWMutex
	m map[string]int
}

// Value reads the count through a by-value receiver, copying the lock.
func (c Counter) Value() int { // want `receiver passes a value containing sync.Mutex`
	return c.n
}

// Observe takes the counter by value.
func Observe(c Counter) int { // want `parameter passes a value containing sync.Mutex`
	return c.n
}

// Export returns the counter by value.
func Export(c *Counter) Counter { // want `result passes a value containing sync.Mutex`
	return *c // want `return copies a value containing sync.Mutex`
}

// Snapshot copies a live counter into a local through an assignment.
func Snapshot(c *Counter) int {
	cp := *c // want `assignment copies a value containing sync.Mutex`
	return cp.n
}

// Clone copies a live counter through a variable initializer.
func Clone(c *Counter) int {
	var cp Counter = *c // want `variable initializer copies a value containing sync.Mutex`
	return cp.n
}

// Publish hands the counter to an observer by value.
func Publish(c *Counter) {
	observe(*c) // want `call passes a value containing sync.Mutex`
}

func observe(c Counter) int { // want `parameter passes a value containing sync.Mutex`
	return c.n
}

// Drain sums counters, copying each one through the range variable.
func Drain(cs []Counter) int {
	total := 0
	for _, c := range cs { // want `range clause copies a value containing sync.Mutex`
		total += c.n
	}
	return total
}

// Dup copies a registry, which embeds its lock.
func Dup(r *Registry) {
	var sink Registry
	sink = *r // want `assignment copies a value containing sync.RWMutex`
	use(&sink)
}

func use(*Registry) {}
