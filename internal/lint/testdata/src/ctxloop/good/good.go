// Package good exercises ctxloop: every loop observes its context, or
// sits in code the analyzer exempts.
package good

import "context"

// Poll checks ctx.Err once per iteration.
func Poll(ctx context.Context, rows []int) (int, error) {
	total := 0
	for _, r := range rows {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		total += r
	}
	return total, nil
}

// Callee passes ctx to a context-taking function each iteration.
func Callee(ctx context.Context, rows []int) error {
	for _, r := range rows {
		if err := step(ctx, r); err != nil {
			return err
		}
	}
	return nil
}

func step(ctx context.Context, r int) error { return ctx.Err() }

// Channel ranges end when the producer closes the channel; the
// producer owns cancellation.
func Channel(ctx context.Context, ch <-chan int) int {
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// Select drains via ctx.Done, the canonical cancellable loop.
func Select(ctx context.Context, ch <-chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case v, ok := <-ch:
			if !ok {
				return total
			}
			total += v
		}
	}
}

// NoCtx has no context parameter, so its loops are out of scope.
func NoCtx(rows []int) int {
	total := 0
	for _, r := range rows {
		total += r
	}
	return total
}

// OwnCtx literals with their own context parameter are separate units.
func OwnCtx(ctx context.Context) func(context.Context, []int) (int, error) {
	if err := ctx.Err(); err != nil {
		return nil
	}
	return func(ctx context.Context, rows []int) (int, error) {
		total := 0
		for _, r := range rows {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			total += r
		}
		return total, nil
	}
}
