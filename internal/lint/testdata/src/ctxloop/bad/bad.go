// Package bad exercises ctxloop: loops in context-taking functions
// that never observe their context.
package bad

import "context"

// Sum scans rows without ever consulting ctx.
func Sum(ctx context.Context, rows []int) int {
	total := 0
	for _, r := range rows { // want `loop body never observes the function's context`
		total += r
	}
	return total
}

// Busy spins on a plain for loop with no ctx reference.
func Busy(ctx context.Context, n int) int {
	v := 0
	for i := 0; i < n; i++ { // want `loop body never observes the function's context`
		v += i
	}
	return v
}

// Nested flags only the outermost loop; the inner one is covered by
// the outer report.
func Nested(ctx context.Context, grid [][]int) int {
	total := 0
	for _, row := range grid { // want `loop body never observes the function's context`
		for _, v := range row {
			total += v
		}
	}
	return total
}

// Closure loops inside a non-ctx literal still owe the enclosing
// function's context a look.
func Closure(ctx context.Context, rows []int) int {
	f := func() int {
		s := 0
		for _, r := range rows { // want `loop body never observes the function's context`
			s += r
		}
		return s
	}
	return f()
}
