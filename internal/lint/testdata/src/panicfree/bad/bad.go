// Package bad exercises the panicfree analyzer: library code must
// return errors, not abort the process.
package bad

// Parse aborts on bad input instead of returning an error.
func Parse(s string) int {
	if s == "" {
		panic("empty input") // want `panic in library code`
	}
	return len(s)
}

// At indexes with a handwritten bounds check that panics.
func At(xs []int, i int) int {
	if i < 0 || i >= len(xs) {
		panic("index out of range") // want `panic in library code`
	}
	return xs[i]
}
