// Package good handles failures with errors; the panicfree analyzer
// must stay silent, including on identifiers that merely shadow the
// panic builtin.
package good

import "errors"

// Parse returns an error for bad input.
func Parse(s string) (int, error) {
	if s == "" {
		return 0, errors.New("empty input")
	}
	return len(s), nil
}

// Shadowed calls a local function named panic; that is not the
// builtin, so the analyzer must not flag it.
func Shadowed() {
	panic := func(string) {}
	panic("not the builtin")
}
