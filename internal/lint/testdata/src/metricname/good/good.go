// Package good exercises metricname: named constants with
// kind-correct suffixes, each declared exactly once.
package good

// Registry mirrors the obsv registry surface; the analyzer matches the
// receiver type by name.
type Registry struct{}

type Counter struct{}
type Gauge struct{}
type Histogram struct{}

func (r *Registry) Counter(name string, labels ...string) *Counter { return nil }
func (r *Registry) Gauge(name string, labels ...string) *Gauge     { return nil }
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	return nil
}

const (
	// requestsTotal counts requests; counters end _total.
	requestsTotal = "opmap_requests_total"
	// buildSeconds times builds; histograms end _seconds.
	buildSeconds = "opmap_build_seconds"
	// cacheBytes gauges resident bytes; gauges carry a unit suffix.
	cacheBytes = "opmap_cache_bytes"
	// inflight is a unit-less gauge, also fine.
	inflight = "opmapd_inflight"
)

// Register pre-registers every series from its declaring constant.
func Register(r *Registry) {
	r.Counter(requestsTotal, "path", "/api")
	r.Histogram(buildSeconds, nil)
	r.Gauge(cacheBytes)
	r.Gauge(inflight)
}

// notRegistry has a Counter method too, but its receiver type is not
// Registry, so the analyzer leaves it alone.
type notRegistry struct{}

func (n notRegistry) Counter(name string) int { return 0 }

// Other uses a literal on the unrelated type, which is fine.
func Other(n notRegistry) int { return n.Counter("whatever") }
