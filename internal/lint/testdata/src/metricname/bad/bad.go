// Package bad exercises metricname: runtime names, literals, grammar
// violations, wrong suffixes, and duplicate declaring constants.
package bad

// Registry mirrors the obsv registry surface; the analyzer matches the
// receiver type by name.
type Registry struct{}

type Counter struct{}
type Gauge struct{}
type Histogram struct{}

func (r *Registry) Counter(name string, labels ...string) *Counter { return nil }
func (r *Registry) Gauge(name string, labels ...string) *Gauge     { return nil }
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	return nil
}

const (
	badSuffixCounter = "opmap_queries"        // counter without _total
	badSuffixHist    = "opmap_build_total"    // histogram without _seconds
	badSuffixGauge   = "opmap_inflight_total" // gauge with a counter suffix
	badGrammar       = "opmapx_rows_total"    // prefix outside the grammar
)

// Register exercises every call-site rule.
func Register(r *Registry, dynamic string) {
	r.Counter(dynamic)                       // want `must be a compile-time string constant`
	r.Counter("opmap_literal_total")         // want `must be a named constant`
	r.Counter(badSuffixCounter)              // want `must end in _total`
	r.Histogram(badSuffixHist, nil)          // want `must end in _seconds`
	r.Gauge(badSuffixGauge)                  // want `must not use a counter \(_total\) or histogram \(_seconds\) suffix`
	r.Counter(badGrammar)                    // want `does not match the project grammar`
	r.Counter("opmap_" + dynamic + "_total") // want `must be a compile-time string constant`
}

const dupOriginal = "opmap_dup_total"

const dupCopy = "opmap_dup_total" // want `already declared as const dupOriginal`
