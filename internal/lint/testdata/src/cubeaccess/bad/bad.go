// Package bad exercises the cubeaccess analyzer: every construct here
// reaches into a cube cache map from outside the owning type.
package bad

// Cube is a stand-in for the rule cube count array.
type Cube struct{ cells []int64 }

// Store caches cubes in maps its methods keep consistent.
type Store struct {
	oneD map[int]*Cube
	twoD map[[2]int]*Cube
}

// Cube1 is the accessor; in-method access is the allowed pattern.
func (s *Store) Cube1(a int) *Cube { return s.oneD[a] }

// Reader wraps a Store but is not the owning type.
type Reader struct{ st *Store }

// Peek bypasses the accessor from a foreign method.
func (r *Reader) Peek(a int) *Cube {
	return r.st.oneD[a] // want `direct access to cube cache Store.oneD`
}

// Count ranges the cache from a free function.
func Count(s *Store) int {
	n := 0
	for range s.twoD { // want `direct access to cube cache Store.twoD`
		n++
	}
	return n
}

// Put writes the cache from a free function, skipping key
// canonicalization.
func Put(s *Store, a, b int, c *Cube) {
	s.twoD[[2]int{a, b}] = c // want `direct access to cube cache Store.twoD`
}

// Drop deletes through the builtin, which has no index expression.
func Drop(s *Store, a int) {
	delete(s.oneD, a) // want `direct access to cube cache Store.oneD`
}

// Size measures the cache with len from outside.
func Size(s *Store) int {
	return len(s.twoD) // want `direct access to cube cache Store.twoD`
}
