// Package good holds the blessed patterns: cube cache maps are only
// touched by methods of the owning type, and non-cube maps are free.
package good

// Cube is a stand-in for the rule cube count array.
type Cube struct{ cells []int64 }

// Store caches cubes behind accessor methods.
type Store struct {
	oneD  map[int]*Cube
	twoD  map[[2]int]*Cube
	names map[int]string
}

// Cube1 reads the 1-D cache from the owning type.
func (s *Store) Cube1(a int) *Cube { return s.oneD[a] }

// Cube2 canonicalizes the pair key inside the owner.
func (s *Store) Cube2(a, b int) *Cube {
	if a > b {
		a, b = b, a
	}
	return s.twoD[[2]int{a, b}]
}

// put is the owner's write path.
func (s *Store) put(a, b int, c *Cube) {
	s.twoD[[2]int{a, b}] = c
}

// count iterates from the owner.
func (s *Store) count() int {
	n := len(s.oneD)
	for range s.twoD {
		n++
	}
	return n
}

// Names reads a non-cube map from outside; only cube-valued maps are
// guarded.
func Names(s *Store) map[int]string { return s.names }

// Label indexes the non-cube map freely.
func Label(s *Store, a int) string { return s.names[a] }

// Local maps of cubes are not struct fields and stay free.
func Local(c *Cube) *Cube {
	m := map[int]*Cube{0: c}
	return m[0]
}
