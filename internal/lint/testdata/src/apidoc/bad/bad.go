// Package bad has undocumented exported API that the apidoc analyzer
// must flag. The trailing want comments are expectations, not docs:
// only a comment preceding the declaration documents it.
package bad

type Exported struct{} // want `exported type Exported is missing a doc comment`

func Run() {} // want `exported function Run is missing a doc comment`

func (Exported) Do() {} // want `exported method Exported.Do is missing a doc comment`

var Threshold = 0.5 // want `exported var Threshold is missing a doc comment`

const Limit = 10 // want `exported const Limit is missing a doc comment`
