// Package good documents every exported identifier; the apidoc
// analyzer must stay silent, including on unexported names and on
// group declarations covered by a single group comment.
package good

// Exported is a documented type.
type Exported struct{}

// Do performs the documented action.
func (Exported) Do() {}

// Run runs the documented entry point.
func Run() {}

// Tunables shared by Run; the group comment covers both names.
var (
	Threshold = 0.5
	Limit     = 10
)

type hidden struct{}

func helper(hidden) {}
