// Package lint implements the project's static-analysis engine: a
// small, zero-dependency framework (only go/parser, go/types and the
// stdlib "source" importer — no golang.org/x/tools) plus the
// project-specific analyzers that guard the comparator math and the
// parallel cube builder against silent correctness drift. A float ==
// on a confidence, an unseeded RNG in a figure path, or a copied mutex
// in the store builder invalidates the reproduction without failing a
// single test; the analyzers here turn each of those into a build
// break. The cmd/opmaplint driver runs every analyzer over the module
// and exits non-zero on findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Analyzer string         // analyzer that produced the finding
	Pos      token.Position // file:line:col of the offending node
	Symbol   string         // enclosing top-level declaration, if any
	Message  string
}

// String formats the diagnostic the way compilers do, so editors can
// jump to the position.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string // import path (or a synthetic path in tests)
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzer is one static check. Run inspects the package via the Pass
// and reports findings with Pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	// Skip, when non-nil, excludes packages by import path before Run
	// is called (e.g. apidoc only applies to the public root package).
	Skip func(pkgPath string) bool
	Run  func(*Pass)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	*Package
	analyzer *Analyzer
	allow    []Allow
	diags    *[]Diagnostic
}

// Reportf records a finding at pos unless an allowlist entry covers
// the enclosing declaration.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	sym := p.enclosingSymbol(pos)
	for _, a := range p.allow {
		if a.Analyzer == p.analyzer.Name && a.Package == p.Path && a.Symbol == sym {
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Symbol:   sym,
		Message:  fmt.Sprintf(format, args...),
	})
}

// enclosingSymbol names the top-level declaration containing pos:
// "Func" for functions, "Recv.Method" for methods, the first declared
// name for type/var/const groups, "" when pos sits outside any
// declaration.
func (p *Pass) enclosingSymbol(pos token.Pos) string {
	for _, f := range p.Files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			if pos < decl.Pos() || pos > decl.End() {
				continue
			}
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil && len(d.Recv.List) > 0 {
					return receiverTypeName(d.Recv.List[0].Type) + "." + d.Name.Name
				}
				return d.Name.Name
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					if pos < spec.Pos() || pos > spec.End() {
						continue
					}
					switch s := spec.(type) {
					case *ast.TypeSpec:
						return s.Name.Name
					case *ast.ValueSpec:
						if len(s.Names) > 0 {
							return s.Names[0].Name
						}
					}
				}
			}
		}
	}
	return ""
}

// receiverTypeName extracts the base type name from a method receiver
// expression (*T, T, or generic T[...]).
func receiverTypeName(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.StarExpr:
		return receiverTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return receiverTypeName(e.X)
	case *ast.IndexListExpr:
		return receiverTypeName(e.X)
	}
	return ""
}

// Loader parses and type-checks packages from source. One Loader
// shares a file set and a "source" importer across packages, so stdlib
// dependencies are type-checked once per process rather than once per
// package.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a Loader backed by the stdlib source importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load parses and type-checks the package in dir under the given
// import path. files lists the Go file names to include (as produced
// by go list's GoFiles); nil means every non-test .go file in dir.
// Test files are always excluded: the analyzers guard library code.
func (l *Loader) Load(path, dir string, files []string) (*Package, error) {
	if files == nil {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			files = append(files, name)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(files)
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(path, l.fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: l.fset, Files: parsed, Types: pkg, Info: info}, nil
}

// Run applies the analyzers to one package, honoring each analyzer's
// Skip predicate and the allowlist, and returns position-sorted
// diagnostics.
func Run(pkg *Package, analyzers []*Analyzer, allow []Allow) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Skip != nil && a.Skip(pkg.Path) {
			continue
		}
		a.Run(&Pass{Package: pkg, analyzer: a, allow: allow, diags: &diags})
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		if diags[i].Pos.Column != diags[j].Pos.Column {
			return diags[i].Pos.Column < diags[j].Pos.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// All lists every analyzer the opmaplint driver runs, in report order.
var All = []*Analyzer{
	FloatCmp, SeededRand, PanicFree, LockSafe, APIDoc, CtxRule, CubeAccess,
	CtxLoop, GoroLeak, ErrClose, MetricName, Exhaustive,
}
