package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CubeAccess flags direct map access (indexing or ranging) to a cube
// cache field — a struct field whose type is a map with *Cube (or
// Cube) values, like rulecube.Store's oneD/twoD or the lazy engine's
// pinned 1-D map — from outside the owning type's methods. Those maps
// carry invariants the accessors maintain (canonical (min,max) pair
// keys, LRU bookkeeping, byte accounting, mutex discipline); a stray
// `s.twoD[k]` in a helper bypasses all of them and compiles silently.
// Access from any method of the declaring type is allowed: that is
// where the accessors live.
var CubeAccess = &Analyzer{
	Name: "cubeaccess",
	Doc:  "flags map access to cube cache fields outside the owning type's methods",
	Run:  runCubeAccess,
}

func runCubeAccess(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			owner := receiverNamedType(p, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.IndexExpr:
					checkCubeMapAccess(p, owner, n.X, n.X.Pos())
				case *ast.RangeStmt:
					checkCubeMapAccess(p, owner, n.X, n.X.Pos())
				case *ast.CallExpr:
					// delete(s.twoD, k) and len(s.twoD) touch the map
					// without an index expression.
					for _, arg := range n.Args {
						checkCubeMapAccess(p, owner, arg, arg.Pos())
					}
				}
				return true
			})
		}
	}
}

// receiverNamedType resolves a method's receiver to its named type,
// or nil for free functions.
func receiverNamedType(p *Pass, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	return namedOf(p.Info.TypeOf(fd.Recv.List[0].Type))
}

// checkCubeMapAccess reports expr when it selects a cube-valued map
// field of a type other than owner.
func checkCubeMapAccess(p *Pass, owner *types.Named, expr ast.Expr, pos token.Pos) {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := p.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	field := selection.Obj()
	mp, ok := field.Type().Underlying().(*types.Map)
	if !ok || !isCubeType(mp.Elem()) {
		return
	}
	holder := namedOf(selection.Recv())
	if holder == nil {
		return
	}
	if owner != nil && owner.Obj() == holder.Obj() {
		return // an accessor method of the owning type
	}
	p.Reportf(pos, "direct access to cube cache %s.%s outside its owning type; go through %s's accessor methods",
		holder.Obj().Name(), field.Name(), holder.Obj().Name())
}

// isCubeType reports whether t is Cube or *Cube (any package's named
// Cube type).
func isCubeType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named := namedOf(t)
	return named != nil && named.Obj().Name() == "Cube"
}

// namedOf unwraps pointers down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}
