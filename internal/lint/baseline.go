package lint

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sort"

	"opmap/internal/atomicfile"
)

// The baseline is the driver's "fail only on what's new" mechanism: a
// git-tracked JSON file recording accepted findings by fingerprint
// (analyzer + file + symbol + message — deliberately not the line
// number, which shifts on every unrelated edit). A lint run subtracts
// the baseline from its findings and exits non-zero only for the
// remainder, so a large refactor can land with its historical debt
// recorded while any *new* violation still breaks the build. The
// baseline supersedes growing the in-source allowlist for bulk
// suppression: allow.go stays reserved for permanent, individually
// justified exceptions, and the baseline is expected to shrink to
// empty (the repo ships an empty one).

// BaselineVersion is the on-disk format version of lint_baseline.json.
const BaselineVersion = 1

// DefaultBaselineName is the conventional baseline filename at the
// module root.
const DefaultBaselineName = "lint_baseline.json"

// BaselineEntry is one accepted finding fingerprint. Count says how
// many identical findings (same fingerprint) the baseline absorbs;
// zero means one.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-root-relative, forward slashes
	Symbol   string `json:"symbol,omitempty"`
	Message  string `json:"message"`
	Count    int    `json:"count,omitempty"`
}

// Baseline is the parsed lint_baseline.json.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// fingerprint is the line-number-free identity of a finding.
type fingerprint struct {
	analyzer, file, symbol, message string
}

func (e BaselineEntry) fp() fingerprint {
	return fingerprint{e.Analyzer, e.File, e.Symbol, e.Message}
}

func diagFP(d Diagnostic) fingerprint {
	return fingerprint{d.Analyzer, d.Pos.Filename, d.Symbol, d.Message}
}

// LoadBaseline reads the baseline at path. A missing file is an empty
// baseline, not an error, so repos without accepted debt need no file
// at all.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return &Baseline{Version: BaselineVersion}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lint: reading baseline %s: %w", path, err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	if b.Version != BaselineVersion {
		return nil, fmt.Errorf("lint: baseline %s has version %d, this driver reads version %d", path, b.Version, BaselineVersion)
	}
	return &b, nil
}

// Apply splits diagnostics into new findings and baselined ones. Each
// baseline entry absorbs up to its Count matching diagnostics (position
// order); the split is deterministic for sorted input. stale reports
// entries whose budget was not fully used — debt that has been paid
// down and should be pruned from the file.
func (b *Baseline) Apply(diags []Diagnostic) (fresh, baselined []Diagnostic, stale []BaselineEntry) {
	budget := make(map[fingerprint]int, len(b.Findings))
	for _, e := range b.Findings {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		budget[e.fp()] += n
	}
	for _, d := range diags {
		fp := diagFP(d)
		if budget[fp] > 0 {
			budget[fp]--
			baselined = append(baselined, d)
			continue
		}
		fresh = append(fresh, d)
	}
	for _, e := range b.Findings {
		fp := e.fp()
		if budget[fp] > 0 {
			stale = append(stale, e)
			// Zero the remainder so a duplicated entry is only reported
			// stale once.
			budget[fp] = 0
		}
	}
	return fresh, baselined, stale
}

// BaselineFrom builds a baseline accepting exactly the given
// diagnostics, with identical findings collapsed into counted entries,
// sorted for a stable git diff.
func BaselineFrom(diags []Diagnostic) *Baseline {
	counts := make(map[fingerprint]int, len(diags))
	order := make([]fingerprint, 0, len(diags))
	for _, d := range diags {
		fp := diagFP(d)
		if counts[fp] == 0 {
			order = append(order, fp)
		}
		counts[fp]++
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.analyzer != b.analyzer {
			return a.analyzer < b.analyzer
		}
		if a.symbol != b.symbol {
			return a.symbol < b.symbol
		}
		return a.message < b.message
	})
	bl := &Baseline{Version: BaselineVersion}
	for _, fp := range order {
		e := BaselineEntry{Analyzer: fp.analyzer, File: fp.file, Symbol: fp.symbol, Message: fp.message}
		if n := counts[fp]; n > 1 {
			e.Count = n
		}
		bl.Findings = append(bl.Findings, e)
	}
	return bl
}

// Write persists the baseline to path through the project's atomic
// write path, so an interrupted -write-baseline cannot truncate a
// tracked file.
func (b *Baseline) Write(path string) error {
	if b.Findings == nil {
		b.Findings = []BaselineEntry{}
	}
	return atomicfile.WriteFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(b); err != nil {
			return fmt.Errorf("lint: encoding baseline %s: %w", path, err)
		}
		return nil
	})
}
