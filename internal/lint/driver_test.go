package lint_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"opmap/internal/lint"
)

// writeTestModule lays out a tiny two-package module in a temp dir:
// demo/a carries one deliberate floatcmp violation, demo/b imports a
// and is clean. Neither package imports the standard library, so the
// driver never has to consult the installed stdlib export data.
func writeTestModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module demo\n\ngo 1.22\n",
		"a/a.go": `// Package a is driver-test fodder.
package a

// Eq compares floats exactly, which floatcmp must flag.
func Eq(x, y float64) bool { return x == y }

// Sum is clean.
func Sum(x, y float64) float64 { return x + y }
`,
		"b/b.go": `// Package b depends on a.
package b

import "demo/a"

// UsesA exercises the in-module import edge.
func UsesA() float64 { return a.Sum(1, 2) }
`,
	}
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// drive runs the engine over the test module with only floatcmp
// enabled, so the expected finding set is exactly one diagnostic.
func drive(t *testing.T, root, cacheDir string) *lint.DriverResult {
	t.Helper()
	res, err := lint.Drive(lint.DriverConfig{
		Patterns:  []string{"./..."},
		Dir:       root,
		Analyzers: []*lint.Analyzer{lint.FloatCmp},
		CacheDir:  cacheDir,
	})
	if err != nil {
		t.Fatalf("Drive: %v", err)
	}
	return res
}

func TestDriveColdThenWarm(t *testing.T) {
	root := writeTestModule(t)
	cacheDir := filepath.Join(root, ".lintcache")

	cold := drive(t, root, cacheDir)
	if cold.Packages != 2 || cold.Analyzed != 2 || cold.CacheHits != 0 {
		t.Fatalf("cold run: packages=%d analyzed=%d hits=%d, want 2/2/0",
			cold.Packages, cold.Analyzed, cold.CacheHits)
	}
	if len(cold.Diags) != 1 {
		t.Fatalf("cold run diags = %v, want exactly the planted floatcmp finding", cold.Diags)
	}
	if d := cold.Diags[0]; d.Analyzer != "floatcmp" || d.Pos.Filename != filepath.Join("a", "a.go") {
		t.Fatalf("unexpected diagnostic %+v", d)
	}

	warm := drive(t, root, cacheDir)
	if warm.Analyzed != 0 || warm.CacheHits != 2 {
		t.Fatalf("warm run: analyzed=%d hits=%d, want 0 analyzed / 2 hits", warm.Analyzed, warm.CacheHits)
	}
	// Cached diagnostics must be byte-identical to fresh ones, or the
	// baseline diff would churn between cold and warm CI runs.
	if len(warm.Diags) != 1 || warm.Diags[0].String() != cold.Diags[0].String() {
		t.Fatalf("warm diags %v differ from cold %v", warm.Diags, cold.Diags)
	}
}

func TestDriveCacheInvalidation(t *testing.T) {
	root := writeTestModule(t)
	cacheDir := filepath.Join(root, ".lintcache")
	drive(t, root, cacheDir) // prime

	// Touching only the leaf package must leave its dependency cached.
	bPath := filepath.Join(root, "b", "b.go")
	src, err := os.ReadFile(bPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bPath, append(src, []byte("\n// edited\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	res := drive(t, root, cacheDir)
	if res.Analyzed != 1 || res.CacheHits != 1 {
		t.Fatalf("after editing b: analyzed=%d hits=%d, want 1/1", res.Analyzed, res.CacheHits)
	}

	// Touching the root package changes its content hash, and the
	// Merkle key of every dependent, so both re-analyze.
	aPath := filepath.Join(root, "a", "a.go")
	src, err = os.ReadFile(aPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(aPath, append(src, []byte("\n// edited\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	res = drive(t, root, cacheDir)
	if res.Analyzed != 2 || res.CacheHits != 0 {
		t.Fatalf("after editing a: analyzed=%d hits=%d, want 2/0", res.Analyzed, res.CacheHits)
	}
}

func TestDriveNoCacheWritesNothing(t *testing.T) {
	root := writeTestModule(t)
	cacheDir := filepath.Join(root, ".lintcache")
	res, err := lint.Drive(lint.DriverConfig{
		Patterns:  []string{"./..."},
		Dir:       root,
		Analyzers: []*lint.Analyzer{lint.FloatCmp},
		CacheDir:  cacheDir,
		NoCache:   true,
	})
	if err != nil {
		t.Fatalf("Drive: %v", err)
	}
	if res.CacheHits != 0 || res.Analyzed != 2 {
		t.Fatalf("no-cache run: analyzed=%d hits=%d, want 2/0", res.Analyzed, res.CacheHits)
	}
	if _, err := os.Stat(cacheDir); !os.IsNotExist(err) {
		t.Fatalf("NoCache run created %s (stat err %v)", cacheDir, err)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	root := writeTestModule(t)
	res := drive(t, root, filepath.Join(root, ".lintcache"))

	// A baseline captured from the run swallows every current finding.
	b := lint.BaselineFrom(res.Diags)
	fresh, baselined, stale := b.Apply(res.Diags)
	if len(fresh) != 0 || len(baselined) != 1 || len(stale) != 0 {
		t.Fatalf("self-apply: fresh=%d baselined=%d stale=%d, want 0/1/0",
			len(fresh), len(baselined), len(stale))
	}

	// Round-trip through disk.
	path := filepath.Join(root, lint.DefaultBaselineName)
	if err := b.Write(path); err != nil {
		t.Fatalf("Write: %v", err)
	}
	loaded, err := lint.LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if fresh, _, stale := loaded.Apply(res.Diags); len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("loaded baseline: fresh=%d stale=%d, want 0/0", len(fresh), len(stale))
	}

	// An empty baseline reports everything as new; a missing file loads
	// as empty rather than erroring, so bootstrap needs no setup step.
	empty, err := lint.LoadBaseline(filepath.Join(root, "does-not-exist.json"))
	if err != nil {
		t.Fatalf("LoadBaseline(missing): %v", err)
	}
	if fresh, _, _ := empty.Apply(res.Diags); len(fresh) != 1 {
		t.Fatalf("empty baseline fresh=%d, want 1", len(fresh))
	}

	// Fixing the finding leaves the baseline entry stale, which the CLI
	// surfaces so the baseline gets re-tightened.
	if _, _, stale := loaded.Apply(nil); len(stale) != 1 {
		t.Fatalf("stale entries = %d, want 1", len(stale))
	}
}

func TestReportFormats(t *testing.T) {
	root := writeTestModule(t)
	res := drive(t, root, filepath.Join(root, ".lintcache"))
	rep := lint.BuildReport(res, res.Diags, nil, nil)

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded lint.Report
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON output does not round-trip: %v", err)
	}
	if len(decoded.Findings) != 1 || decoded.Findings[0].Analyzer != "floatcmp" {
		t.Fatalf("decoded findings = %+v", decoded.Findings)
	}

	buf.Reset()
	if err := rep.WriteSARIF(&buf, []*lint.Analyzer{lint.FloatCmp}); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var sarif struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID        string `json:"ruleId"`
				BaselineState string `json:"baselineState"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &sarif); err != nil {
		t.Fatalf("SARIF output is not JSON: %v", err)
	}
	if sarif.Version != "2.1.0" || len(sarif.Runs) != 1 {
		t.Fatalf("sarif version=%q runs=%d", sarif.Version, len(sarif.Runs))
	}
	if rs := sarif.Runs[0].Results; len(rs) != 1 || rs[0].RuleID != "floatcmp" || rs[0].BaselineState != "new" {
		t.Fatalf("sarif results = %+v", sarif.Runs[0].Results)
	}
}
