package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// MetricName pins the observability surface: dashboards, alerts and
// ci.sh all grep metric names by exact string, so a name must be a
// compile-time constant (never assembled at runtime), must follow the
// project grammar, and must be declared exactly once per package. The
// grammar mirrors the conventions PR 4 established: `opmap_` for the
// pipeline/engine, `opmapd_` for the daemon, lower_snake body, and a
// kind-specific suffix — counters end `_total`, histograms `_seconds`,
// gauges carry a unit (`_bytes`) or none but never a counter/histogram
// suffix.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "metric names must be named compile-time constants matching opmap[d]_[a-z_]+ with kind-correct suffixes, declared exactly once",
	Skip: func(pkgPath string) bool { return false },
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkMetricCall(p, call)
				return true
			})
		}
		checkDuplicateMetricConsts(p)
	},
}

// metricNameRE is the project grammar for a metric name.
var metricNameRE = regexp.MustCompile(`^opmapd?_[a-z][a-z0-9_]*$`)

// metricKinds maps registry method names to the suffix rule they imply.
var metricKinds = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

// checkMetricCall validates one Counter/Gauge/Histogram call on a
// Registry-typed receiver.
func checkMetricCall(p *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !metricKinds[sel.Sel.Name] || len(call.Args) == 0 {
		return
	}
	if !isRegistryReceiver(p, sel.X) {
		return
	}
	kind := sel.Sel.Name
	arg := call.Args[0]
	tv, ok := p.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		p.Reportf(arg.Pos(), "metric name passed to %s must be a compile-time string constant, not a runtime value", kind)
		return
	}
	if !isNamedConstExpr(p, arg) {
		p.Reportf(arg.Pos(), "metric name passed to %s must be a named constant (declare a const and use it), not a literal or expression", kind)
		return
	}
	name := constant.StringVal(tv.Value)
	if !metricNameRE.MatchString(name) {
		p.Reportf(arg.Pos(), "metric name %q does not match the project grammar ^opmapd?_[a-z][a-z0-9_]*$", name)
		return
	}
	switch kind {
	case "Counter":
		if !strings.HasSuffix(name, "_total") {
			p.Reportf(arg.Pos(), "counter name %q must end in _total", name)
		}
	case "Histogram":
		if !strings.HasSuffix(name, "_seconds") {
			p.Reportf(arg.Pos(), "histogram name %q must end in _seconds", name)
		}
	case "Gauge":
		if strings.HasSuffix(name, "_total") || strings.HasSuffix(name, "_seconds") {
			p.Reportf(arg.Pos(), "gauge name %q must not use a counter (_total) or histogram (_seconds) suffix", name)
		}
	}
}

// isRegistryReceiver reports whether expr's static type is a named type
// called Registry (or a pointer to one). Matching by name rather than
// by package keeps golden-test packages self-contained.
func isRegistryReceiver(p *Pass, expr ast.Expr) bool {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// isNamedConstExpr reports whether expr is an identifier or selector
// resolving to a declared *types.Const.
func isNamedConstExpr(p *Pass, expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		_, ok := identObject(p, e).(*types.Const)
		return ok
	case *ast.SelectorExpr:
		_, ok := p.Info.Uses[e.Sel].(*types.Const)
		return ok
	case *ast.ParenExpr:
		return isNamedConstExpr(p, e.X)
	}
	return false
}

// checkDuplicateMetricConsts flags two package-level string constants
// declaring the same metric name: "registered exactly once" starts at
// the declaration site.
func checkDuplicateMetricConsts(p *Pass) {
	type site struct {
		name string
		pos  token.Pos
	}
	seen := make(map[string]site)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, nameID := range vs.Names {
					c, ok := p.Info.Defs[nameID].(*types.Const)
					if !ok || c.Val().Kind() != constant.String {
						continue
					}
					val := constant.StringVal(c.Val())
					if !metricNameRE.MatchString(val) {
						continue
					}
					if prev, dup := seen[val]; dup {
						p.Reportf(nameID.Pos(), "metric name %q already declared as const %s; a metric must have exactly one declaring constant", val, prev.name)
						continue
					}
					seen[val] = site{name: nameID.Name, pos: nameID.Pos()}
				}
			}
		}
	}
}
