package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// Machine-readable exposition. The driver produces one Report per run;
// text is for humans and the terminal, json for ci.sh and scripts, and
// sarif for code-scanning UIs (GitHub's security tab renders SARIF
// uploads inline on the diff). All three render the same Report, so a
// finding can never appear in one format and not another.

// Finding is one diagnostic flattened for exposition, annotated with
// whether the baseline absorbed it.
type Finding struct {
	Analyzer  string `json:"analyzer"`
	File      string `json:"file"`
	Line      int    `json:"line"`
	Column    int    `json:"column"`
	Symbol    string `json:"symbol,omitempty"`
	Message   string `json:"message"`
	Baselined bool   `json:"baselined,omitempty"`
}

// Report is one run's complete machine-readable result.
type Report struct {
	Module       string    `json:"module"`
	Packages     int       `json:"packages"`
	Analyzed     int       `json:"analyzed"`
	CacheHits    int       `json:"cache_hits"`
	NewFindings  int       `json:"new_findings"`
	Baselined    int       `json:"baselined"`
	StaleEntries int       `json:"stale_baseline_entries"`
	Findings     []Finding `json:"findings"`
}

// BuildReport assembles the Report from a driver result and the
// baseline split. Findings keep global position order; baselined ones
// are included (flagged) so formats can show the full picture.
func BuildReport(res *DriverResult, fresh, baselined []Diagnostic, stale []BaselineEntry) *Report {
	rep := &Report{
		Module:       res.ModulePath,
		Packages:     res.Packages,
		Analyzed:     res.Analyzed,
		CacheHits:    res.CacheHits,
		NewFindings:  len(fresh),
		Baselined:    len(baselined),
		StaleEntries: len(stale),
		Findings:     make([]Finding, 0, len(fresh)+len(baselined)),
	}
	all := make([]Diagnostic, 0, len(fresh)+len(baselined))
	all = append(all, fresh...)
	all = append(all, baselined...)
	sortDiags(all)
	// Recover the baselined flag by fingerprint count: every diagnostic
	// is either fresh or baselined, so membership survives the re-sort
	// as a multiset.
	budget := make(map[fingerprint]int, len(baselined))
	for _, d := range baselined {
		budget[diagFP(d)]++
	}
	for _, d := range all {
		f := Finding{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Symbol:   d.Symbol,
			Message:  d.Message,
		}
		if fp := diagFP(d); budget[fp] > 0 {
			budget[fp]--
			f.Baselined = true
		}
		rep.Findings = append(rep.Findings, f)
	}
	return rep
}

// Summary is the one-line human digest printed to stderr in every
// format, so CI logs always show the cache economics and the verdict.
func (r *Report) Summary() string {
	pct := 0.0
	if r.Packages > 0 {
		pct = 100 * float64(r.CacheHits) / float64(r.Packages)
	}
	s := fmt.Sprintf("opmaplint: %d packages, %d analyzed, cache hits %d (%.0f%%), findings: %d new, %d baselined",
		r.Packages, r.Analyzed, r.CacheHits, pct, r.NewFindings, r.Baselined)
	if r.StaleEntries > 0 {
		s += fmt.Sprintf(", %d stale baseline entrie(s) to prune", r.StaleEntries)
	}
	return s
}

// WriteText prints compiler-style lines for new findings (baselined
// ones are annotated and only shown when present) plus a trailer.
func (r *Report) WriteText(w io.Writer) error {
	for _, f := range r.Findings {
		suffix := ""
		if f.Baselined {
			suffix = " (baselined)"
		}
		if _, err := fmt.Fprintf(w, "%s:%d:%d: %s: %s%s\n", f.File, f.Line, f.Column, f.Analyzer, f.Message, suffix); err != nil {
			return err
		}
	}
	if r.NewFindings > 0 {
		if _, err := fmt.Fprintf(w, "opmaplint: %d new finding(s)\n", r.NewFindings); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the full report as one indented JSON document.
func (r *Report) WriteJSON(w io.Writer) error {
	if r.Findings == nil {
		r.Findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// SARIF 2.1.0 document skeleton, kept to the subset code-scanning
// consumers require.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name    string      `json:"name"`
	Version string      `json:"version"`
	Rules   []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID        string       `json:"id"`
	ShortDesc sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
	Baseline  string          `json:"baselineState,omitempty"`
}

type sarifLocation struct {
	Physical sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	Artifact sarifArtifact `json:"artifactLocation"`
	Region   sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF emits the report as a SARIF 2.1.0 run. Baselined findings
// carry baselineState "unchanged" so scanners show only new ones by
// default; new findings are "new".
func (r *Report) WriteSARIF(w io.Writer, analyzers []*Analyzer) error {
	drv := sarifDriver{Name: "opmaplint", Version: EngineVersion}
	for _, a := range analyzers {
		drv.Rules = append(drv.Rules, sarifRule{ID: a.Name, ShortDesc: sarifMessage{Text: a.Doc}})
	}
	run := sarifRun{Tool: sarifTool{Driver: drv}, Results: []sarifResult{}}
	for _, f := range r.Findings {
		state := "new"
		if f.Baselined {
			state = "unchanged"
		}
		run.Results = append(run.Results, sarifResult{
			RuleID:   f.Analyzer,
			Level:    "error",
			Message:  sarifMessage{Text: f.Message},
			Baseline: state,
			Locations: []sarifLocation{{Physical: sarifPhysical{
				Artifact: sarifArtifact{URI: f.File},
				Region:   sarifRegion{StartLine: f.Line, StartColumn: f.Column},
			}}},
		})
	}
	doc := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
