package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point operands. The
// comparator's F/W/M scores and the CI-revised confidences (Eq. 1–3,
// Section IV.B) are floats; exact equality on them is almost always a
// latent bug that shifts a ranking without failing a test. Code that
// genuinely needs exact comparison (tolerance helpers themselves,
// zero-value sentinel checks on option fields) carries an allowlist
// entry in allow.go; everything else should use
// stats.ApproxEqual/stats.ApproxEqualTol or restructure to compare the
// underlying integer counts.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags == and != between floating-point operands; use tolerance helpers from internal/stats",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if isFloat(p, be.X) && isFloat(p, be.Y) {
					p.Reportf(be.OpPos, "floating-point %s comparison; use stats.ApproxEqual or compare the integer counts", be.Op)
				}
				return true
			})
		}
	},
}

// isFloat reports whether the expression's type is a floating-point
// type (after any untyped-constant conversion recorded by the type
// checker).
func isFloat(p *Pass, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
