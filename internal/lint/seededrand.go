package lint

import (
	"go/ast"
	"go/types"
)

// SeededRand forbids the global top-level functions of math/rand (and
// math/rand/v2) in library code. The paper's figures and the sweep
// experiments must be bit-for-bit reproducible, so every random source
// has to be an explicit rand.New(rand.NewSource(seed)) whose seed is
// recorded in the workload config — a stray rand.Intn silently ties a
// figure to process-global state. Constructors (New, NewSource) and
// methods on an explicit *rand.Rand are fine; test files are not
// loaded by the engine at all.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "forbids global math/rand functions; use rand.New(rand.NewSource(seed)) for reproducibility",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				path := fn.Pkg().Path()
				if path != "math/rand" && path != "math/rand/v2" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods on an explicit source are fine
				}
				switch fn.Name() {
				case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
					return true // constructors build explicit sources
				}
				p.Reportf(call.Pos(), "call to global %s.%s; use an explicit seeded source (rand.New(rand.NewSource(seed))) so results are reproducible", path, fn.Name())
				return true
			})
		}
	},
}
