package lint

import (
	"go/ast"
	"strings"
)

// APIDoc requires doc comments on every exported identifier of the
// public API surface. It skips internal/, cmd/ and examples/ packages:
// only the root opmap package is imported by users, and an undocumented
// exported symbol there is an API the paper reproduction cannot explain.
// A declaration group's comment covers all names it declares, matching
// the usual Go convention for const/var blocks.
var APIDoc = &Analyzer{
	Name: "apidoc",
	Doc:  "requires doc comments on exported identifiers of the public (non-internal) packages",
	Skip: func(pkgPath string) bool {
		for _, seg := range strings.Split(pkgPath, "/") {
			switch seg {
			case "internal", "cmd", "examples", "main":
				return true
			}
		}
		return false
	},
	Run: func(p *Pass) {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc.Text() != "" {
						continue
					}
					if d.Recv != nil && len(d.Recv.List) > 0 {
						recv := receiverTypeName(d.Recv.List[0].Type)
						if !ast.IsExported(recv) {
							continue // method on unexported type is not API
						}
						p.Reportf(d.Name.Pos(), "exported method %s.%s is missing a doc comment", recv, d.Name.Name)
						continue
					}
					p.Reportf(d.Name.Pos(), "exported function %s is missing a doc comment", d.Name.Name)
				case *ast.GenDecl:
					groupDoc := d.Doc.Text() != ""
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && !groupDoc && s.Doc.Text() == "" {
								p.Reportf(s.Name.Pos(), "exported type %s is missing a doc comment", s.Name.Name)
							}
						case *ast.ValueSpec:
							if groupDoc || s.Doc.Text() != "" {
								continue
							}
							for _, name := range s.Names {
								if name.IsExported() {
									p.Reportf(name.Pos(), "exported %s %s is missing a doc comment", kindWord(d), name.Name)
								}
							}
						}
					}
				}
			}
		}
	},
}

func kindWord(d *ast.GenDecl) string {
	switch d.Tok.String() {
	case "const":
		return "const"
	case "var":
		return "var"
	}
	return "identifier"
}
