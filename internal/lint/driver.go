package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// The driver is the engine's orchestration layer: it enumerates
// packages with `go list`, arranges them into the module's import DAG,
// and runs a worker pool over that DAG so independent packages
// type-check and analyze concurrently while each dependent still sees
// its dependencies' completed *types.Package (shared through one
// process-wide map — a dependency is type-checked exactly once per
// run, never once per importer). The content-hash cache decides, per
// package, whether analysis can be skipped; a package is additionally
// spared type-checking when nothing downstream of it misses the cache.
// Output order is deterministic regardless of worker interleaving:
// diagnostics are collected per package and sorted by position at the
// end.

// DriverConfig parameterizes one lint run.
type DriverConfig struct {
	// Patterns are go-list package patterns; empty means ./...
	Patterns []string
	// Dir is the directory to resolve patterns from (the module root in
	// normal use). Empty means the current directory.
	Dir string
	// Analyzers is the analyzer set; nil means All.
	Analyzers []*Analyzer
	// Allow is the compiled-in allowlist applied during analysis.
	Allow []Allow
	// CacheDir overrides the result-cache location. Empty means
	// <module root>/.lintcache.
	CacheDir string
	// NoCache disables reading and writing the result cache.
	NoCache bool
	// Jobs bounds worker-pool parallelism; <=0 means GOMAXPROCS.
	Jobs int
}

// DriverResult is one completed lint run.
type DriverResult struct {
	// ModuleRoot is the absolute module root directory; Diags filenames
	// are relative to it.
	ModuleRoot string
	// ModulePath is the module's import path (e.g. "opmap").
	ModulePath string
	// Packages is how many packages the patterns matched.
	Packages int
	// Analyzed is how many packages were actually analyzed this run.
	Analyzed int
	// CacheHits is how many packages were served from the result cache.
	CacheHits int
	// Diags are all findings, allowlist already applied, sorted by
	// file/line/column/analyzer with module-root-relative filenames.
	Diags []Diagnostic
}

// listedPkg is the subset of `go list -json` output the driver needs.
type listedPkg struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	Imports    []string
}

// node is one package in the scheduling DAG.
type node struct {
	pkg        listedPkg
	deps       []*node // in-module imports
	dependents []*node
	key        string       // content-hash cache key
	diags      []Diagnostic // cached or freshly analyzed
	cached     bool         // analysis served from cache
	needsWork  bool         // must be parsed + type-checked this run
	pending    int          // unfinished needsWork deps
}

// Drive runs the full engine: list, schedule, type-check, analyze,
// collect. It returns diagnostics and run statistics; operational
// failures (a package that does not type-check, a broken pattern) are
// errors.
func Drive(cfg DriverConfig) (*DriverResult, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	analyzers := cfg.Analyzers
	if analyzers == nil {
		analyzers = All
	}
	modRoot, modPath, err := moduleInfo(dir)
	if err != nil {
		return nil, err
	}
	patterns := cfg.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	nodes := buildGraph(pkgs, modPath)

	cacheDir := cfg.CacheDir
	if cacheDir == "" {
		cacheDir = filepath.Join(modRoot, DefaultCacheDirName)
	}
	useCache := !cfg.NoCache
	if useCache {
		pruneCache(cacheDir)
	}

	// Phase 1: content-hash keys in dependency order, then cache lookup.
	engine := enginePrint(analyzers, cfg.Allow)
	order := topoOrder(nodes)
	for _, n := range order {
		depKeys := make([]string, 0, len(n.deps))
		for _, d := range n.deps {
			depKeys = append(depKeys, d.key)
		}
		n.key, err = packageKey(engine, n.pkg.ImportPath, n.pkg.Dir, n.pkg.GoFiles, depKeys)
		if err != nil {
			return nil, err
		}
		if useCache {
			if diags, ok := loadCached(cacheDir, n.key); ok {
				n.diags, n.cached = diags, true
			}
		}
	}

	// Phase 2: a package needs parsing and type-checking when its own
	// analysis missed the cache, or when any dependent is itself being
	// type-checked (its import of this package must resolve to real
	// types). Propagated in reverse dependency order.
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		n.needsWork = !n.cached
		for _, d := range n.dependents {
			if d.needsWork {
				n.needsWork = true
				break
			}
		}
	}

	if err := runPool(order, analyzers, cfg.Allow, cacheDir, useCache, modRoot, cfg.Jobs); err != nil {
		return nil, err
	}

	res := &DriverResult{ModuleRoot: modRoot, ModulePath: modPath, Packages: len(order)}
	for _, n := range order {
		if n.cached {
			res.CacheHits++
		} else {
			res.Analyzed++
		}
		res.Diags = append(res.Diags, n.diags...)
	}
	sortDiags(res.Diags)
	return res, nil
}

// runPool executes the worker pool over the DAG. Workers pull ready
// nodes (all needsWork dependencies finished), type-check them against
// the shared results map, analyze cache misses, and release their
// dependents. The first failure stops the pool.
func runPool(order []*node, analyzers []*Analyzer, allow []Allow, cacheDir string, useCache bool, modRoot string, jobs int) error {
	var work []*node
	for _, n := range order {
		if !n.needsWork {
			continue
		}
		n.pending = 0
		for _, d := range n.deps {
			if d.needsWork {
				n.pending++
			}
		}
		work = append(work, n)
	}
	if len(work) == 0 {
		return nil
	}
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(work) {
		jobs = len(work)
	}

	fset := token.NewFileSet()
	imp := &modImporter{std: importer.ForCompiler(fset, "source", nil)}

	var (
		mu          sync.Mutex
		cond        = sync.NewCond(&mu)
		ready       []*node
		outstanding = len(work)
		firstErr    error
		stopped     bool
	)
	for _, n := range work {
		if n.pending == 0 {
			ready = append(ready, n)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for len(ready) == 0 && outstanding > 0 && !stopped {
					cond.Wait()
				}
				if stopped || len(ready) == 0 {
					mu.Unlock()
					return
				}
				n := ready[len(ready)-1]
				ready = ready[:len(ready)-1]
				mu.Unlock()

				err := processNode(n, fset, imp, analyzers, allow, cacheDir, useCache, modRoot)

				mu.Lock()
				outstanding--
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					stopped = true
				} else {
					for _, d := range n.dependents {
						if !d.needsWork {
							continue
						}
						d.pending--
						if d.pending == 0 {
							ready = append(ready, d)
						}
					}
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// processNode parses, type-checks, and (on a cache miss) analyzes one
// package, publishing its types for dependents.
func processNode(n *node, fset *token.FileSet, imp *modImporter, analyzers []*Analyzer, allow []Allow, cacheDir string, useCache bool, modRoot string) error {
	files := make([]*ast.File, 0, len(n.pkg.GoFiles))
	names := append([]string(nil), n.pkg.GoFiles...)
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(n.pkg.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(n.pkg.ImportPath, fset, files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", n.pkg.ImportPath, err)
	}
	imp.publish(n.pkg.ImportPath, tpkg)
	if n.cached {
		return nil
	}
	pkg := &Package{Path: n.pkg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	diags := Run(pkg, analyzers, allow)
	for i := range diags {
		diags[i].Pos.Filename = relToRoot(modRoot, diags[i].Pos.Filename)
	}
	n.diags = diags
	if useCache {
		if err := storeCached(cacheDir, n.key, n.pkg.ImportPath, diags); err != nil {
			return err
		}
	}
	return nil
}

// modImporter resolves module-internal imports from the packages this
// run already type-checked and everything else (the standard library)
// through one mutex-guarded source importer, so stdlib dependencies
// are checked once per process no matter how many workers import them.
type modImporter struct {
	locals sync.Map // import path -> *types.Package
	mu     sync.Mutex
	std    types.Importer
}

func (m *modImporter) publish(path string, pkg *types.Package) { m.locals.Store(path, pkg) }

func (m *modImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.locals.Load(path); ok {
		return pkg.(*types.Package), nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.std.Import(path)
}

// buildGraph wires the in-module import edges between listed packages.
// Imports outside the listed set (possible with narrow patterns) fall
// through to the source importer at type-check time.
func buildGraph(pkgs []listedPkg, modPath string) map[string]*node {
	nodes := make(map[string]*node, len(pkgs))
	for _, p := range pkgs {
		nodes[p.ImportPath] = &node{pkg: p}
	}
	for _, n := range nodes {
		for _, imp := range n.pkg.Imports {
			if imp != modPath && !strings.HasPrefix(imp, modPath+"/") {
				continue
			}
			if dep, ok := nodes[imp]; ok {
				n.deps = append(n.deps, dep)
				dep.dependents = append(dep.dependents, n)
			}
		}
	}
	return nodes
}

// topoOrder returns nodes dependencies-first, ties broken by import
// path so every phase iterates deterministically.
func topoOrder(nodes map[string]*node) []*node {
	paths := make([]string, 0, len(nodes))
	for p := range nodes {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	order := make([]*node, 0, len(nodes))
	seen := make(map[*node]bool, len(nodes))
	var visit func(n *node)
	visit = func(n *node) {
		if seen[n] {
			return
		}
		seen[n] = true
		deps := append([]*node(nil), n.deps...)
		sort.Slice(deps, func(i, j int) bool { return deps[i].pkg.ImportPath < deps[j].pkg.ImportPath })
		for _, d := range deps {
			visit(d)
		}
		order = append(order, n)
	}
	for _, p := range paths {
		visit(nodes[p])
	}
	return order
}

// sortDiags orders findings by file, line, column, analyzer, message.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// relToRoot makes path relative to the module root when it is inside
// it, with forward slashes for stable cache and baseline entries.
func relToRoot(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(path)
}

// moduleInfo resolves the module root directory and module path for
// dir via the go command.
func moduleInfo(dir string) (root, path string, err error) {
	out, err := goCmd(dir, "env", "GOMOD")
	if err != nil {
		return "", "", err
	}
	gomod := strings.TrimSpace(out)
	if gomod == "" || gomod == os.DevNull {
		return "", "", fmt.Errorf("lint: %s is not inside a Go module", dir)
	}
	root = filepath.Dir(gomod)
	out, err = goCmd(dir, "list", "-m")
	if err != nil {
		return "", "", err
	}
	path = strings.TrimSpace(out)
	if path == "" {
		return "", "", fmt.Errorf("lint: cannot determine module path for %s", dir)
	}
	return root, path, nil
}

// goList resolves package patterns via the go command from dir.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{"list", "-json=Dir,ImportPath,GoFiles,Imports"}, patterns...)
	out, err := goCmd(dir, args...)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(strings.NewReader(out))
	var pkgs []listedPkg
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// goCmd runs the go tool in dir and returns stdout.
func goCmd(dir string, args ...string) (string, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go %s: %v\n%s", args[0], err, errb.String())
	}
	return out.String(), nil
}
