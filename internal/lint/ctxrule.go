package lint

import (
	"go/ast"
	"go/types"
)

// CtxRule enforces the project's context conventions on the ctx-aware
// pipeline APIs: a context.Context is always the first parameter of a
// function (so cancellation plumbing is visible at every call site and
// never an afterthought appended to a signature), and it is never
// stored in a struct field (a stored context outlives the call it was
// scoped to, silently decoupling cancellation from the work it was
// meant to bound). Both rules mirror the standard library's own
// guidance in the context package documentation.
var CtxRule = &Analyzer{
	Name: "ctxrule",
	Doc:  "context.Context must be the first parameter and must not be stored in a struct field",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.FuncType:
					// Covers declared functions, methods, function
					// literals, interface methods and func-typed
					// declarations alike.
					checkCtxParams(p, node)
				case *ast.StructType:
					checkCtxFields(p, node)
				}
				return true
			})
		}
	},
}

// checkCtxParams flags context.Context parameters that are not in the
// first position.
func checkCtxParams(p *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		if pos > 0 && isContextType(p, field.Type) {
			p.Reportf(field.Pos(), "context.Context must be the first parameter")
		}
		if n := len(field.Names); n > 0 {
			pos += n
		} else {
			pos++
		}
	}
}

// checkCtxFields flags struct fields of type context.Context.
func checkCtxFields(p *Pass, st *ast.StructType) {
	if st.Fields == nil {
		return
	}
	for _, field := range st.Fields.List {
		if isContextType(p, field.Type) {
			p.Reportf(field.Pos(), "context.Context stored in a struct field; pass it as the first parameter instead")
		}
	}
}

// isContextType reports whether expr denotes exactly context.Context.
func isContextType(p *Pass, expr ast.Expr) bool {
	tv, ok := p.Info.Types[expr]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
