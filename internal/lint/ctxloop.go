package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxLoop guards the pipeline's cancellation latency: inside a
// context-taking function in pipeline code, every outermost loop must
// observe its context — poll ctx.Err()/ctx.Done() or pass ctx to a
// callee — so a canceled request stops within one iteration instead of
// running a row-scale scan to completion. PR 2 threaded contexts
// through every entry point by hand; this analyzer keeps that invariant
// as the batch engine and row-sharded builds multiply the hot loops.
// Inner loops are exempt (poll granularity is the outer iteration, the
// convention BuildStoreContext documents), as are ranges over channels,
// whose producers own the cancellation path.
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc:  "outermost loops in context-taking pipeline functions must observe ctx (poll ctx.Err/Done or call a Context-taking function)",
	Skip: func(pkgPath string) bool { return !ctxLoopApplies(pkgPath) },
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body != nil {
						checkCtxFunc(p, fn.Type, fn.Body)
					}
				case *ast.FuncLit:
					checkCtxFunc(p, fn.Type, fn.Body)
				}
				return true
			})
		}
	},
}

// ctxLoopPackages are the pipeline packages the invariant covers: the
// public session API plus everything that scans rows, cubes or shards.
var ctxLoopPackages = []string{
	"opmap",
	"opmap/internal/rulecube",
	"opmap/internal/compare",
	"opmap/internal/gi",
	"opmap/internal/engine",
	"opmap/internal/discretize",
	"opmap/internal/snapshot",
	"opmap/internal/workload",
}

func ctxLoopApplies(pkgPath string) bool {
	for _, p := range ctxLoopPackages {
		if pkgPath == p {
			return true
		}
	}
	// Golden-test packages.
	return strings.HasPrefix(pkgPath, "ctxloop/")
}

// checkCtxFunc applies the rule to one function whose first parameter
// is a named context.Context.
func checkCtxFunc(p *Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	ctxObj := firstCtxParam(p, ft)
	if ctxObj == nil {
		return
	}
	checkLoops(p, body, ctxObj)
}

// firstCtxParam returns the *types.Var of the function's first
// parameter when it is a named context.Context, else nil.
func firstCtxParam(p *Pass, ft *ast.FuncType) types.Object {
	if ft.Params == nil || len(ft.Params.List) == 0 {
		return nil
	}
	first := ft.Params.List[0]
	if !isContextType(p, first.Type) || len(first.Names) == 0 {
		return nil
	}
	name := first.Names[0]
	if name.Name == "_" {
		return nil
	}
	return p.Info.Defs[name]
}

// checkLoops walks stmts for outermost for/range loops and reports the
// ones whose whole subtree never mentions ctx. Nested function
// literals with their own context parameter are excluded — they are
// checked as their own unit.
func checkLoops(p *Pass, node ast.Node, ctxObj types.Object) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ForStmt:
			checkOneLoop(p, s, ctxObj)
			return false
		case *ast.RangeStmt:
			if isChannelRange(p, s) {
				// Ranging over a channel ends when the producer stops;
				// cancellation is the producer's job.
				return false
			}
			checkOneLoop(p, s, ctxObj)
			return false
		case *ast.FuncLit:
			// A literal with its own ctx parameter is a separate unit;
			// one without inherits the enclosing ctx obligation.
			if firstCtxParam(p, s.Type) != nil {
				return false
			}
		}
		return true
	})
}

// checkOneLoop reports the loop unless its subtree references ctx.
func checkOneLoop(p *Pass, loop ast.Node, ctxObj types.Object) {
	if usesObject(p, loop, ctxObj) {
		return
	}
	p.Reportf(loop.Pos(), "loop body never observes the function's context; poll ctx.Err() (or ctx.Done()) or call a Context-taking function so cancellation stops row-scale work")
}

// usesObject reports whether any identifier under n resolves to obj.
func usesObject(p *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// isChannelRange reports whether the range expression is a channel.
func isChannelRange(p *Pass, s *ast.RangeStmt) bool {
	tv, ok := p.Info.Types[s.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}
