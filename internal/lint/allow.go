package lint

// Allow suppresses one analyzer for one top-level declaration. Policy:
// an entry is a last resort, never a convenience — it must name the
// exact symbol, and Reason must say why the flagged pattern is correct
// there (e.g. a documented Must* panic, or the one blessed exact-float
// fast path inside the tolerance helper itself). Entries are reviewed
// like code: if the symbol is deleted or renamed, delete the entry.
type Allow struct {
	Analyzer string // analyzer name, e.g. "floatcmp"
	Package  string // import path, e.g. "opmap/internal/stats"
	Symbol   string // enclosing top-level decl: "Func", "Type.Method", or first name of a group
	Reason   string // required justification, kept next to the entry
}

// Allowlist is the project's set of accepted findings. Every entry
// documents a deliberate exception; cmd/opmaplint applies it, and the
// analyzer golden tests run with a nil allowlist so the analyzers
// themselves stay honest.
var Allowlist = []Allow{
	{
		Analyzer: "floatcmp",
		Package:  "opmap/internal/stats",
		Symbol:   "ApproxEqualTol",
		Reason:   "the tolerance helper's fast path needs exact equality so infinities compare equal",
	},
	{
		Analyzer: "floatcmp",
		Package:  "opmap/internal/stats",
		Symbol:   "IsZero",
		Reason:   "the blessed exact-zero helper: zero-value option sentinels and integer-derived accumulators are exact by construction",
	},
	{
		Analyzer: "floatcmp",
		Package:  "opmap/internal/stats",
		Symbol:   "SameValue",
		Reason:   "the blessed exact-identity helper for deduplicating values drawn from the same data column",
	},
	{
		Analyzer: "panicfree",
		Package:  "opmap/internal/stats",
		Symbol:   "MustZValue",
		Reason:   "documented Must* helper for the statically-known Table I levels; the error-returning ZValue is the library path",
	},
	{
		Analyzer: "panicfree",
		Package:  "opmap/internal/dataset",
		Symbol:   "Dataset.CatCode",
		Reason:   "hot-path accessor documented to panic on kind misuse; every caller sits behind an AllCategorical() guard and an error return would put a branch in the cube-count inner loop",
	},
	{
		Analyzer: "panicfree",
		Package:  "opmap/internal/dataset",
		Symbol:   "Dataset.ContValue",
		Reason:   "hot-path accessor documented to panic on kind misuse, symmetric with CatCode",
	},
	{
		Analyzer: "panicfree",
		Package:  "opmap/internal/faultinject",
		Symbol:   "HitContext",
		Reason:   "the Panic fault kind exists to exercise recovery paths; panicking here is the documented, test-armed behaviour, never reachable with no fault armed",
	},
}
