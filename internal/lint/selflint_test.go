package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"opmap/internal/lint"
)

// TestSelfLint runs the full engine over this module with every
// analyzer enabled and asserts the result matches the committed
// baseline exactly: no new findings, no stale entries. This is the
// invariant CI enforces; keeping it as a test means `go test ./...`
// alone catches a regression that introduces a finding (or a fix that
// forgets to prune its baseline entry).
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("self-lint type-checks the whole module; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", root, err)
	}
	res, err := lint.Drive(lint.DriverConfig{
		Patterns: []string{"./..."},
		Dir:      root,
		Allow:    lint.Allowlist,
		// An isolated cache keeps the test hermetic from (and harmless
		// to) the developer's .lintcache.
		CacheDir: filepath.Join(t.TempDir(), "lintcache"),
	})
	if err != nil {
		t.Fatalf("Drive: %v", err)
	}
	if res.ModulePath != "opmap" {
		t.Fatalf("module path = %q, want opmap", res.ModulePath)
	}
	baseline, err := lint.LoadBaseline(filepath.Join(root, lint.DefaultBaselineName))
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	fresh, _, stale := baseline.Apply(res.Diags)
	for _, d := range fresh {
		t.Errorf("new finding not in baseline: %s", d)
	}
	for _, e := range stale {
		t.Errorf("stale baseline entry (finding fixed; prune it): %s %s %s", e.Analyzer, e.File, e.Message)
	}
}
